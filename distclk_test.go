package distclk

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"distclk/internal/exact"
	"distclk/internal/tsp"
)

func TestGenerateFamilies(t *testing.T) {
	for _, fam := range []string{"uniform", "clustered", "drill", "grid", "national"} {
		in, err := Generate(fam, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if in.N() != 100 {
			t.Fatalf("%s: n=%d", fam, in.N())
		}
	}
	if _, err := Generate("noise", 100, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	in, _ := Generate("uniform", 25, 1)
	path := filepath.Join(t.TempDir(), "t.tsp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tsp.WriteTSPLIB(f, in); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 25 {
		t.Fatalf("loaded n=%d", got.N())
	}
}

func TestSolveCLKFindsOptimum(t *testing.T) {
	in, _ := Generate("uniform", 15, 2)
	_, opt, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCLK(in, WithTarget(opt), WithBudget(20*time.Second), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != opt {
		t.Fatalf("CLK %d, optimum %d", res.Length, opt)
	}
	if err := res.Tour.Validate(15); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDistributedFindsOptimum(t *testing.T) {
	in, _ := Generate("clustered", 14, 4)
	_, opt, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDistributed(in, 4, WithTarget(opt), WithBudget(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Length != opt {
		t.Fatalf("DistCLK %d, optimum %d", res.Length, opt)
	}
	if res.Nodes != 4 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
}

func TestOptionsValidation(t *testing.T) {
	in, _ := Generate("uniform", 30, 5)
	if _, err := SolveCLK(in, WithKick("sideways")); err == nil {
		t.Error("bad kick accepted")
	}
	if _, err := SolveCLK(in, WithBudget(-time.Second)); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := SolveDistributed(in, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := SolveDistributed(in, 2, WithTopology("mesh")); err == nil {
		t.Error("bad topology accepted")
	}
	if _, err := SolveDistributed(in, 2, WithEAParameters(0, 5)); err == nil {
		t.Error("bad EA parameters accepted")
	}
	if _, err := New(in, WithMaxKicks(-1)); err == nil {
		t.Error("negative max kicks accepted")
	}
	if _, err := New(in, WithTarget(-5)); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := New(in, WithNodes(0)); err == nil {
		t.Error("zero nodes accepted by WithNodes")
	}
	if _, err := New(in, WithProgressInterval(0)); err == nil {
		t.Error("zero progress interval accepted")
	}
	if _, err := New(in, WithKicksPerCall(0)); err == nil {
		t.Error("zero kicks per call accepted")
	}
	if _, err := New(in, WithTourDiff(-1)); err == nil {
		t.Error("negative keyframe interval accepted")
	}
	if _, err := SolveDistributed(in, 2, WithGossip(0)); err == nil {
		t.Error("zero gossip fanout accepted")
	}
	if _, err := New(in, WithTourDiff(8)); err == nil {
		t.Error("WithTourDiff accepted without WithNodes")
	}
	if _, err := New(in, WithGossip(3)); err == nil {
		t.Error("WithGossip accepted without WithNodes")
	}
	if _, err := New(in, WithBatching()); err == nil {
		t.Error("WithBatching accepted without WithNodes")
	}
}

func TestAllOptionsApply(t *testing.T) {
	in, _ := Generate("uniform", 40, 6)
	res, err := SolveDistributed(in, 2,
		WithKick("geometric"),
		WithKicksPerCall(50),
		WithSeed(9),
		WithTopology("ring"),
		WithEAParameters(32, 128),
		WithWorkers(2),
		WithBudget(500*time.Millisecond),
		WithTourDiff(16),
		WithGossip(1),
		WithBatching(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tour.Validate(40); err != nil {
		t.Fatal(err)
	}
}

func TestStandInFacade(t *testing.T) {
	in, err := StandIn("pr2392", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 2392 {
		t.Fatalf("n=%d", in.N())
	}
}
