package distclk

// Benchmarks regenerating every table and figure of the paper's evaluation
// (delegating to the internal/bench harness at smoke scale — run
// cmd/experiments for larger, paper-shaped runs), micro-benchmarks of the
// hot paths, and ablation benchmarks for the design choices called out in
// DESIGN.md §4. Custom metrics: "gap%" is the final distance to the
// Held-Karp bound or run-best reference; lower is better.

import (
	"context"
	"io"
	"strconv"
	"testing"
	"time"

	"distclk/internal/bench"
	"distclk/internal/clk"
	"distclk/internal/construct"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/heldkarp"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// smokeOptions keeps each experiment benchmark to a few seconds.
func smokeOptions() bench.Options {
	return bench.Options{
		Runs:         1,
		CLKBudget:    time.Second,
		Nodes:        4,
		Seed:         1,
		SizeScale:    16,
		HKIters:      25,
		MaxInstances: 2,
		CV:           4,
		CR:           16,
		KicksPerCall: 10,
	}
}

func benchExperiment(b *testing.B, run func(*bench.Bench, io.Writer) error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := bench.New(smokeOptions())
		if err := run(h, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the speed-up table (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Table1(w) })
}

// BenchmarkTable2 regenerates the baseline comparison (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Table2(w) })
}

// BenchmarkTable3 regenerates the success-count table (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Table3(w) })
}

// BenchmarkTable4 regenerates the CLK quality table (paper Table 4).
func BenchmarkTable4(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Table4(w) })
}

// BenchmarkTable5 regenerates the DistCLK quality table (paper Table 5).
func BenchmarkTable5(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Table5(w) })
}

// BenchmarkFigure2 regenerates the kicking-strategy convergence plots.
func BenchmarkFigure2(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Figure2(w) })
}

// BenchmarkFigure3 regenerates the parallelization plots.
func BenchmarkFigure3(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Figure3(w) })
}

// BenchmarkMessages regenerates the §4 communication statistics.
func BenchmarkMessages(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Messages(w) })
}

// BenchmarkVariator regenerates the §4.2.1 perturbation-strength analysis.
func BenchmarkVariator(b *testing.B) {
	benchExperiment(b, func(h *bench.Bench, w io.Writer) error { return h.Variator(w) })
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

func microInstance(n int) *tsp.Instance {
	return tsp.Generate(tsp.FamilyUniform, n, 42)
}

// BenchmarkLKFullPass measures a full Lin-Kernighan descent from a greedy
// tour on 1000 cities.
func BenchmarkLKFullPass(b *testing.B) {
	in := microInstance(1000)
	nbr := neighbor.Build(in, 10)
	start := construct.Build(construct.Greedy, in, nbr, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := lk.NewOptimizer(in, nbr, start, lk.DefaultParams())
		o.OptimizeAll(nil)
	}
}

// BenchmarkCLKKick measures one kick + local re-optimization.
func BenchmarkCLKKick(b *testing.B) {
	in := microInstance(1000)
	s := clk.New(in, clk.DefaultParams(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KickOnce()
	}
}

// kickLoop is the shared body of the perf-trajectory benchmarks tracked in
// BENCH_*.json: a fixed, seeded warm-up phase whose incumbent length is
// reported as "tourlen" (bit-identical run over run and commit over
// commit — the guard that a speed-up did not change the search), then a
// timed steady-state phase reporting throughput as "kicks/sec".
func kickLoop(b *testing.B, family tsp.Family, n int, fixedKicks int) {
	in := tsp.Generate(family, n, 42)
	s := clk.New(in, clk.DefaultParams(), 1)
	for i := 0; i < fixedKicks; i++ {
		s.KickOnce()
	}
	lenAtFixed := s.BestLength() // deterministic: seed 1, fixedKicks kicks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.KickOnce()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "kicks/sec")
	b.ReportMetric(float64(lenAtFixed), "tourlen")
}

// BenchmarkOptimizeAfterKick is the acceptance benchmark for the flattened
// LK hot path: steady-state kicks on E1k (uniform 1000 cities). It must
// run at 0 allocs/op — every scratch buffer is pre-sized at construction.
func BenchmarkOptimizeAfterKick(b *testing.B) {
	kickLoop(b, tsp.FamilyUniform, 1000, 200)
}

// BenchmarkCLKKicksPerSec tracks full-solver kick throughput on the two
// synthetic testbed shapes used for the perf trajectory: E1k (uniform 1k,
// the DIMACS E-family stand-in) and C3k (clustered 3k, the C-family).
func BenchmarkCLKKicksPerSec(b *testing.B) {
	cases := []struct {
		name   string
		family tsp.Family
		n      int
	}{
		{"E1k", tsp.FamilyUniform, 1000},
		{"C3k", tsp.FamilyClustered, 3000},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			kickLoop(b, tc.family, tc.n, 50)
		})
	}
}

// BenchmarkParallelCLK tracks multi-worker kick throughput of the in-node
// parallel group on the E-family stand-ins at 1/2/4/8 workers. MaxKicks is
// the group total, so ns/op stays per-kick and "kicks/sec" is aggregate
// throughput — near-linear scaling in workers is the design target on
// multi-core hardware (a single-core machine shows flat scaling; the
// recorded snapshot's "cpu" field says which one produced it). "tourlen"
// is the final length; deterministic only for w1.
func BenchmarkParallelCLK(b *testing.B) {
	cases := []struct {
		name   string
		family tsp.Family
		n      int
	}{
		{"E1k", tsp.FamilyUniform, 1000},
		{"E10k", tsp.FamilyUniform, 10000},
	}
	for _, tc := range cases {
		in := tsp.Generate(tc.family, tc.n, 42)
		nbr := neighbor.Build(in, 10)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(tc.name+"/w"+itoa(workers), func(b *testing.B) {
				p := clk.DefaultParams()
				p.Neighbors = nbr
				g := clk.NewGroup(context.Background(), in, p, clk.GroupParams{Workers: workers}, 1)
				b.ReportAllocs()
				b.ResetTimer()
				res := g.Run(context.Background(), clk.Budget{MaxKicks: int64(b.N)})
				b.StopTimer()
				b.ReportMetric(float64(res.Kicks)/b.Elapsed().Seconds(), "kicks/sec")
				b.ReportMetric(float64(res.Length), "tourlen")
			})
		}
	}
}

// BenchmarkCandidateStrategies tracks the candidate-strategy x gain-rule
// cross-product on three testbed families: steady-state kick throughput
// ("kicks/sec"), the deterministic warm-up incumbent ("tourlen", the guard
// that a faster configuration did not silently trade away quality), and
// the one-off candidate construction cost ("build_ms", measured once per
// strategy outside the timed loop). The knn/strict rows reproduce the
// BenchmarkCLKKicksPerSec configuration, anchoring comparisons across
// BENCH_*.json snapshots.
func BenchmarkCandidateStrategies(b *testing.B) {
	families := []struct {
		name   string
		family tsp.Family
		n      int
	}{
		{"E1k", tsp.FamilyUniform, 1000},
		{"C1k", tsp.FamilyClustered, 1000},
		{"D1k", tsp.FamilyDrill, 1000},
		{"E5k", tsp.FamilyUniform, 5000},
	}
	gains := []struct {
		name  string
		relax int
	}{
		{"strict", 0},
		{"relaxed", 3},
	}
	for _, fc := range families {
		in := tsp.Generate(fc.family, fc.n, 42)
		for _, strat := range neighbor.Strategies() {
			buildStart := time.Now()
			nbr, err := strat.Build(nil, in, 10)
			buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
			if err != nil {
				b.Fatal(err)
			}
			for _, gain := range gains {
				b.Run(fc.name+"/"+strat.Name+"/"+gain.name, func(b *testing.B) {
					p := clk.DefaultParams()
					p.Neighbors = nbr
					p.LK.RelaxDepth = gain.relax
					s := clk.New(in, p, 1)
					for i := 0; i < 50; i++ {
						s.KickOnce()
					}
					lenAtFixed := s.BestLength() // deterministic: seed 1, 50 kicks
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s.KickOnce()
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "kicks/sec")
					b.ReportMetric(float64(lenAtFixed), "tourlen")
					b.ReportMetric(buildMS, "build_ms")
				})
			}
		}
	}
}

// BenchmarkFlip measures ArrayTour segment reversal.
func BenchmarkFlip(b *testing.B) {
	tour := lk.NewArrayTour(tsp.IdentityTour(10000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := int32(i % 10000)
		c := int32((i*7 + 13) % 10000)
		tour.Flip(a, c)
	}
}

// BenchmarkTourRepresentations compares flip costs of the array tour and
// the two-level doubly-linked tour across instance sizes. The array's
// shorter-side flips are cache-friendly and win at testbed scale; the
// two-level structure's O(sqrt(n)) bound pays off for million-city
// instances and adversarially long flips.
func BenchmarkTourRepresentations(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		perm := tsp.IdentityTour(n)
		b.Run("array/n="+itoa(n), func(b *testing.B) {
			at := lk.NewArrayTour(perm)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at.Flip(int32(i%n), int32((i*37+11)%n))
			}
		})
		b.Run("twolevel/n="+itoa(n), func(b *testing.B) {
			tl := lk.NewTwoLevelTour(perm)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tl.Flip(int32(i%n), int32((i*37+11)%n))
			}
		})
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// BenchmarkDoubleBridge measures the 4-exchange kick move.
func BenchmarkDoubleBridge(b *testing.B) {
	in := microInstance(2000)
	tour := lk.NewArrayTour(tsp.IdentityTour(2000))
	dist := in.DistFunc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cities := [4]int32{
			int32(i % 2000), int32((i + 500) % 2000),
			int32((i + 1000) % 2000), int32((i + 1500) % 2000),
		}
		clk.DoubleBridge(tour, cities, dist)
	}
}

// BenchmarkNeighborBuild measures k-d-tree candidate list construction.
func BenchmarkNeighborBuild(b *testing.B) {
	in := microInstance(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		neighbor.Build(in, 10)
	}
}

// BenchmarkConstruction compares the construction heuristics.
func BenchmarkConstruction(b *testing.B) {
	in := microInstance(2000)
	nbr := neighbor.Build(in, 8)
	for _, m := range []construct.Method{
		construct.QuickBoruvka, construct.Greedy,
		construct.NearestNeighbor, construct.SpaceFilling,
	} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var length int64
			for i := 0; i < b.N; i++ {
				length = construct.Build(m, in, nbr, nil).Length(in)
			}
			b.ReportMetric(float64(length), "tourlen")
		})
	}
}

// BenchmarkHKIteration measures one 1-tree computation (the ascent's inner
// loop) on 1000 cities.
func BenchmarkHKIteration(b *testing.B) {
	in := microInstance(1000)
	pi := make([]float64, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heldkarp.MinOneTree(in, pi)
	}
}

// BenchmarkTourCodec measures the wire encoding of a 10k-city tour.
func BenchmarkTourCodec(b *testing.B) {
	in := microInstance(120)
	_ = in
	tour := tsp.IdentityTour(10000)
	nw := dist.NewChanNetwork(2, topology.Complete)
	c0, c1 := nw.Comm(0), nw.Comm(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0.Broadcast(tour, int64(i))
		c1.Drain()
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §4). Each reports the achieved gap to the
// HK bound as "gap%" after a fixed small budget — lower is better.

func ablationGap(b *testing.B, run func(in *tsp.Instance) int64) {
	in := tsp.Generate(tsp.FamilyDrill, 500, 7)
	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 40})
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		length := run(in)
		gap = float64(length-hk.Bound) / float64(hk.Bound) * 100
	}
	b.ReportMetric(gap, "gap%")
}

// BenchmarkKickStrategies compares the four kicking strategies on a
// drilling instance (the class where the paper observes the strongest
// differences).
func BenchmarkKickStrategies(b *testing.B) {
	for _, kick := range clk.AllKickStrategies {
		b.Run(kick.String(), func(b *testing.B) {
			ablationGap(b, func(in *tsp.Instance) int64 {
				p := clk.DefaultParams()
				p.Kick = kick
				s := clk.New(in, p, 11)
				return s.Run(context.Background(), clk.Budget{MaxKicks: 400}).Length
			})
		})
	}
}

// BenchmarkAblationVariator compares the paper's variable-strength
// perturbation against plain fixed-strength kicks in the EA.
func BenchmarkAblationVariator(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "variable-strength"
		if disabled {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			ablationGap(b, func(in *tsp.Instance) int64 {
				cfg := core.DefaultConfig()
				cfg.DisablePerturbation = disabled
				cfg.KicksPerCall = 30
				node := core.NewNode(0, in, cfg, core.NopComm{}, 13)
				stats := node.Run(context.Background(), core.Budget{MaxIterations: 12})
				return stats.BestLength
			})
		})
	}
}

// BenchmarkAblationNoComm isolates cooperation: identical clusters with
// broadcasts delivered vs suppressed.
func BenchmarkAblationNoComm(b *testing.B) {
	run := func(topo topology.Kind, nodes int) int64 {
		in := tsp.Generate(tsp.FamilyDrill, 500, 7)
		cfg := core.DefaultConfig()
		cfg.KicksPerCall = 25
		res := dist.RunCluster(context.Background(), in, dist.ClusterConfig{
			Nodes:  nodes,
			Topo:   topo,
			EA:     cfg,
			Budget: core.Budget{MaxIterations: 6},
			Seed:   17,
		})
		return res.BestLength
	}
	b.Run("cooperating", func(b *testing.B) {
		ablationGap(b, func(in *tsp.Instance) int64 { return run(topology.Hypercube, 4) })
	})
	b.Run("isolated", func(b *testing.B) {
		// A ring of 1-node networks: same compute, no exchange. Emulated by
		// independent single nodes keeping the best.
		ablationGap(b, func(in *tsp.Instance) int64 {
			best := int64(1 << 62)
			for i := 0; i < 4; i++ {
				cfg := core.DefaultConfig()
				cfg.KicksPerCall = 25
				node := core.NewNode(i, in, cfg, core.NopComm{}, 17+int64(i)*1_000_000_007)
				if s := node.Run(context.Background(), core.Budget{MaxIterations: 6}); s.BestLength < best {
					best = s.BestLength
				}
			}
			return best
		})
	})
}

// BenchmarkAblationTopology compares overlays at equal node count.
func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []topology.Kind{topology.Hypercube, topology.Ring, topology.Complete} {
		b.Run(topo.String(), func(b *testing.B) {
			ablationGap(b, func(in *tsp.Instance) int64 {
				cfg := core.DefaultConfig()
				cfg.KicksPerCall = 25
				res := dist.RunCluster(context.Background(), in, dist.ClusterConfig{
					Nodes:  4,
					Topo:   topo,
					EA:     cfg,
					Budget: core.Budget{MaxIterations: 6},
					Seed:   19,
				})
				return res.BestLength
			})
		})
	}
}

// BenchmarkAblationNeighbors varies the candidate list size k.
func BenchmarkAblationNeighbors(b *testing.B) {
	for _, k := range []int{5, 8, 12, 16} {
		b.Run(string(rune('0'+k/10))+string(rune('0'+k%10)), func(b *testing.B) {
			ablationGap(b, func(in *tsp.Instance) int64 {
				p := clk.DefaultParams()
				p.NeighborK = k
				s := clk.New(in, p, 23)
				return s.Run(context.Background(), clk.Budget{MaxKicks: 300}).Length
			})
		})
	}
}
