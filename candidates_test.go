package distclk

import (
	"context"
	"testing"
	"time"

	"distclk/internal/tsp"
)

// TestWithCandidatesValidation: names are validated at option-apply time,
// impossible explicit choices at Solve time.
func TestWithCandidatesValidation(t *testing.T) {
	in, _ := Generate("uniform", 40, 3)
	if _, err := New(in, WithCandidates("voronoi")); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := New(in, WithRelaxedGain(-1)); err == nil {
		t.Error("negative relax depth accepted")
	}
	for _, name := range []string{"auto", "knn", "quadrant", "alpha", "delaunay"} {
		if _, err := New(in, WithCandidates(name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// delaunay on a matrix-only instance fails the solve with a clear
	// error; auto on the same instance succeeds (knn fallback).
	ex, err := tsp.NewExplicit("m5", 5, []int64{
		0, 2, 9, 10, 7,
		2, 0, 6, 4, 3,
		9, 6, 0, 8, 5,
		10, 4, 8, 0, 6,
		7, 3, 5, 6, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveCLK(ex, WithCandidates("delaunay"), WithBudget(time.Second)); err == nil {
		t.Error("delaunay on explicit instance: want Solve error")
	}
	if _, err := SolveCLK(ex, WithBudget(200*time.Millisecond)); err != nil {
		t.Errorf("auto on explicit instance: %v", err)
	}
}

// TestAutoCandidatesDeterministic pins the acceptance criterion: a fixed
// seed with WithCandidates("auto") yields byte-identical tours run over
// run (the probe, the strategy build, and the relaxed-gain search are all
// deterministic).
func TestAutoCandidatesDeterministic(t *testing.T) {
	run := func() Tour {
		in, _ := Generate("drill", 400, 11)
		res, err := SolveCLK(in,
			WithCandidates("auto"),
			WithMaxKicks(60),
			WithBudget(time.Minute),
			WithSeed(7),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.Tour
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("tour sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tours diverge at position %d for identical seeds", i)
		}
	}
}

// TestCandidateStrategiesSolve: every strategy drives a full solve to a
// valid tour, in both single-worker and distributed modes.
func TestCandidateStrategiesSolve(t *testing.T) {
	for _, name := range []string{"knn", "quadrant", "alpha", "delaunay"} {
		in, _ := Generate("uniform", 200, 5)
		s, err := New(in,
			WithCandidates(name),
			WithRelaxedGain(2),
			WithMaxKicks(40),
			WithBudget(30*time.Second),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Tour.Validate(200); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Distributed mode shares the same resolved lists across nodes.
	in, _ := Generate("clustered", 120, 9)
	res, err := SolveDistributed(in, 2,
		WithCandidates("quadrant"),
		WithKicksPerCall(30),
		WithBudget(2*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tour.Validate(120); err != nil {
		t.Fatal(err)
	}
}
