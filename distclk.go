// Package distclk is a distributed Chained Lin-Kernighan TSP solver — a
// from-scratch Go reproduction of Fischer & Merz, "A Distributed Chained
// Lin-Kernighan Algorithm for TSP Problems" (IPDPS/IPPS 2005).
//
// The package exposes the high-level API: load or generate instances, solve
// them with Chained Lin-Kernighan (the Concorde linkern heuristic rebuilt
// in Go), or with the paper's distributed evolutionary algorithm in which
// cooperating nodes exchange tours over a hypercube overlay. Lower layers
// (the LK engine, kicking strategies, transports, baselines, the experiment
// harness) live under internal/ and are driven by the cmd/ binaries.
package distclk

import (
	"fmt"
	"time"

	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// Instance is a symmetric TSP instance (see Load and Generate).
type Instance = tsp.Instance

// Tour is a permutation of the instance's cities.
type Tour = tsp.Tour

// Load reads a TSPLIB-format .tsp file.
func Load(path string) (*Instance, error) { return tsp.LoadTSPLIB(path) }

// Generate builds a synthetic instance. Families: "uniform", "clustered",
// "drill", "grid", "national" — stand-ins for the paper's testbed families.
func Generate(family string, n int, seed int64) (*Instance, error) {
	f, err := tsp.ParseFamily(family)
	if err != nil {
		return nil, err
	}
	return tsp.Generate(f, n, seed), nil
}

// StandIn generates the synthetic stand-in for a paper testbed instance
// name such as "fl3795" or "sw24978".
func StandIn(paperName string, seed int64) (*Instance, error) {
	return tsp.StandIn(paperName, seed)
}

// Result reports a solve.
type Result struct {
	// Tour is the best tour found.
	Tour Tour
	// Length is its length under the instance metric.
	Length int64
	// Elapsed is the wall-clock duration of the solve.
	Elapsed time.Duration
	// Nodes is the number of cooperating nodes (1 for plain CLK).
	Nodes int
	// Broadcasts counts tours exchanged (distributed runs only).
	Broadcasts int64
}

// options collects solver configuration; see the With* functions.
type options struct {
	kick     clk.KickStrategy
	budget   time.Duration
	maxKicks int64
	target   int64
	seed     int64
	topo     topology.Kind
	cv, cr   int
	kpc      int64
}

// Option configures SolveCLK and SolveDistributed.
type Option func(*options) error

func defaults() options {
	return options{
		kick:   clk.KickRandomWalk,
		budget: 10 * time.Second,
		seed:   1,
		topo:   topology.Hypercube,
		cv:     64,
		cr:     256,
	}
}

// WithKick selects the double-bridge kicking strategy: "random",
// "geometric", "close", or "random-walk" (default, as in the paper).
func WithKick(name string) Option {
	return func(o *options) error {
		k, err := clk.ParseKick(name)
		if err != nil {
			return err
		}
		o.kick = k
		return nil
	}
}

// WithBudget bounds the solve duration (per node for distributed solves,
// matching the paper's per-node CPU limits). Default 10s.
func WithBudget(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("distclk: non-positive budget %v", d)
		}
		o.budget = d
		return nil
	}
}

// WithMaxKicks bounds plain CLK by kick count instead of (or on top of)
// time.
func WithMaxKicks(k int64) Option {
	return func(o *options) error {
		o.maxKicks = k
		return nil
	}
}

// WithTarget stops the solve as soon as a tour of at most this length is
// found — the paper's known-optimum termination criterion.
func WithTarget(length int64) Option {
	return func(o *options) error {
		o.target = length
		return nil
	}
}

// WithSeed fixes the random seed (default 1).
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithTopology selects the overlay for distributed solves: "hypercube"
// (default, the paper's), "ring", "grid", or "complete".
func WithTopology(name string) Option {
	return func(o *options) error {
		k, err := topology.Parse(name)
		if err != nil {
			return err
		}
		o.topo = k
		return nil
	}
}

// WithEAParameters overrides the paper's c_v (perturbation strength
// divisor, default 64) and c_r (restart threshold, default 256). The
// defaults assume runs long enough for hundreds of EA iterations per node;
// for second-scale budgets, scale them down proportionally (e.g. 4 and 16)
// so the variable-strength mechanism engages within the compressed time
// scale.
func WithEAParameters(cv, cr int) Option {
	return func(o *options) error {
		if cv <= 0 || cr <= 0 {
			return fmt.Errorf("distclk: EA parameters must be positive")
		}
		o.cv, o.cr = cv, cr
		return nil
	}
}

// WithKicksPerCall bounds the embedded CLK run per EA iteration of a
// distributed solve (default max(20, n/10)). Smaller values yield more
// frequent exchange and perturbation decisions.
func WithKicksPerCall(k int64) Option {
	return func(o *options) error {
		if k <= 0 {
			return fmt.Errorf("distclk: kicks per call must be positive")
		}
		o.kpc = k
		return nil
	}
}

func build(opts []Option) (options, error) {
	o := defaults()
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// SolveCLK runs plain Chained Lin-Kernighan (the paper's ABCC-CLK
// reference configuration) on one goroutine.
func SolveCLK(in *Instance, opts ...Option) (Result, error) {
	o, err := build(opts)
	if err != nil {
		return Result{}, err
	}
	p := clk.DefaultParams()
	p.Kick = o.kick
	start := time.Now()
	s := clk.New(in, p, o.seed)
	res := s.Run(clk.Budget{
		MaxKicks: o.maxKicks,
		Deadline: start.Add(o.budget),
		Target:   o.target,
	})
	return Result{
		Tour:    res.Tour,
		Length:  res.Length,
		Elapsed: time.Since(start),
		Nodes:   1,
	}, nil
}

// SolveDistributed runs the paper's distributed algorithm with the given
// number of cooperating in-process nodes (the paper uses 8) under a
// per-node budget. For multi-machine deployments use cmd/hub and
// cmd/distclk instead.
func SolveDistributed(in *Instance, nodes int, opts ...Option) (Result, error) {
	if nodes <= 0 {
		return Result{}, fmt.Errorf("distclk: need at least one node, got %d", nodes)
	}
	o, err := build(opts)
	if err != nil {
		return Result{}, err
	}
	ea := core.DefaultConfig()
	ea.CV, ea.CR = o.cv, o.cr
	ea.CLK.Kick = o.kick
	ea.KicksPerCall = o.kpc
	start := time.Now()
	res := dist.RunCluster(in, dist.ClusterConfig{
		Nodes: nodes,
		Topo:  o.topo,
		EA:    ea,
		Budget: core.Budget{
			Deadline: start.Add(o.budget),
			Target:   o.target,
		},
		Seed: o.seed,
	})
	return Result{
		Tour:       res.BestTour,
		Length:     res.BestLength,
		Elapsed:    res.Elapsed,
		Nodes:      nodes,
		Broadcasts: res.Broadcasts(),
	}, nil
}
