// Package distclk is a distributed Chained Lin-Kernighan TSP solver — a
// from-scratch Go reproduction of Fischer & Merz, "A Distributed Chained
// Lin-Kernighan Algorithm for TSP Problems" (IPDPS/IPPS 2005).
//
// The package exposes the high-level API: load or generate instances, then
// solve them through a Solver — plain Chained Lin-Kernighan (the Concorde
// linkern heuristic rebuilt in Go) by default, or the paper's distributed
// evolutionary algorithm (WithNodes) in which cooperating nodes exchange
// tours over a hypercube overlay. WithWorkers makes either mode multi-core:
// concurrent kickers share the candidate tables and cooperate through a
// lock-free best-tour slot with periodic elite-tour merging. Every solve is
// context-driven: cancel the context or let its deadline fire and Solve
// promptly returns the best tour found so far. Progress exposes periodic
// snapshots of the running solve. Lower layers (the LK engine, kicking
// strategies, transports, baselines, the observability spine, the
// experiment harness) live under internal/ and are driven by the cmd/
// binaries.
//
// # Options matrix
//
// Options split into three groups; New validates the whole combination at
// once and reports every conflict in a single error.
//
// Mode-independent: WithKick, WithBudget, WithTarget, WithSeed,
// WithProgressInterval, WithWorkers (explicit n >= 1), WithCandidates,
// WithRelaxedGain, WithEventSink.
//
// Plain CLK only (reject WithNodes alongside them): WithMaxKicks,
// WithMergeEvery, the auto-sizing WithWorkers(0) — with cooperating
// nodes time-sharing the machine, the per-node worker count must be an
// explicit choice — and WithScratch, which additionally requires the
// classic single worker.
//
// Distributed EA only (require WithNodes): WithTopology, WithEAParameters,
// WithKicksPerCall, and the scaled exchange protocol — WithTourDiff,
// WithGossip, WithBatching.
package distclk

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// Instance is a symmetric TSP instance (see Load and Generate).
type Instance = tsp.Instance

// Tour is a permutation of the instance's cities.
type Tour = tsp.Tour

// Load reads a TSPLIB-format .tsp file.
func Load(path string) (*Instance, error) { return tsp.LoadTSPLIB(path) }

// Generate builds a synthetic instance. Families: "uniform", "clustered",
// "drill", "grid", "national" — stand-ins for the paper's testbed families.
func Generate(family string, n int, seed int64) (*Instance, error) {
	f, err := tsp.ParseFamily(family)
	if err != nil {
		return nil, err
	}
	return tsp.Generate(f, n, seed), nil
}

// StandIn generates the synthetic stand-in for a paper testbed instance
// name such as "fl3795" or "sw24978".
func StandIn(paperName string, seed int64) (*Instance, error) {
	return tsp.StandIn(paperName, seed)
}

// NodeStats reports one node's search statistics, sourced from the
// observability layer. For parallel plain-CLK solves (WithWorkers(n > 1))
// there is one entry per worker rather than per node.
type NodeStats struct {
	// Node is the node id for distributed solves, the worker id for
	// parallel plain-CLK solves, and 0 for a classic single-worker solve.
	Node int
	// BestLength is the node's own best tour length.
	BestLength int64
	// Kicks counts double-bridge kicks attempted.
	Kicks int64
	// Improvements counts strict LK chain improvements.
	Improvements int64
	// Restarts counts restart-rule firings.
	Restarts int64
	// BroadcastsSent counts tours broadcast to neighbours.
	BroadcastsSent int64
	// BroadcastsReceived counts tours drained from the inbox.
	BroadcastsReceived int64
	// BroadcastsAccepted counts received tours adopted as the node's best.
	BroadcastsAccepted int64
}

// Result reports a solve.
type Result struct {
	// Tour is the best tour found.
	Tour Tour
	// Length is its length under the instance metric.
	Length int64
	// Elapsed is the runtime-measured wall-clock duration of the solve
	// (engine construction included), identical in meaning for plain and
	// distributed solves.
	Elapsed time.Duration
	// Nodes is the number of cooperating nodes (1 for plain CLK).
	Nodes int
	// Broadcasts counts tours exchanged (distributed runs only).
	Broadcasts int64
	// PerNode carries each node's search statistics.
	PerNode []NodeStats
}

// Snapshot is one progress observation of a running solve.
type Snapshot struct {
	// Elapsed is wall-clock time since Solve started.
	Elapsed time.Duration
	// CPUPerNode approximates per-node CPU time consumed: nodes time-share
	// min(nodes, GOMAXPROCS) cores, so each receives that fraction of the
	// wall clock — the paper's "CPU time per node" axis.
	CPUPerNode time.Duration
	// BestLength is the best tour length found so far (0 before the first
	// tour exists).
	BestLength int64
	// Kicks is the total double-bridge kicks attempted across nodes.
	Kicks int64
	// Restarts is the total restart-rule firings across nodes.
	Restarts int64
	// Broadcasts is the total tours broadcast across nodes.
	Broadcasts int64
	// Workers is the number of concurrent in-node searchers per solve
	// (resolved: WithWorkers(0) shows the GOMAXPROCS value it picked).
	Workers int
	// WorkerKicks is the cumulative kick count per worker (plain CLK) or
	// per node (distributed solves), indexed by worker/node id.
	WorkerKicks []int64
}

// options collects solver configuration; see the With* functions.
type options struct {
	kick       clk.KickStrategy
	budget     time.Duration
	maxKicks   int64
	target     int64
	seed       int64
	topo       topology.Kind
	cv, cr     int
	kpc        int64
	nodes      int // 0 = plain CLK, >= 1 = distributed EA
	workers    int // resolved: always >= 1 after build
	mergeEvery int64
	interval   time.Duration
	candidates string
	relaxDepth int
	sink       obs.Sink
	scratch    *clk.Scratch
	exchange   dist.ExchangeConfig

	// Which option groups were explicitly set — build's combination check
	// (see the package-level options matrix) needs to tell defaults apart
	// from user choices.
	maxKicksSet bool
	topoSet     bool
	eaSet       bool
	kpcSet      bool
	workersSet  bool
	workersAuto bool
	mergeSet    bool
	relaxSet    bool
	exchangeSet bool
}

// Option configures a Solver.
type Option func(*options) error

func defaults() options {
	return options{
		kick:       clk.KickRandomWalk,
		budget:     10 * time.Second,
		seed:       1,
		topo:       topology.Hypercube,
		cv:         64,
		cr:         256,
		workers:    1,
		interval:   100 * time.Millisecond,
		candidates: "auto",
	}
}

// WithKick selects the double-bridge kicking strategy: "random",
// "geometric", "close", or "random-walk" (default, as in the paper).
func WithKick(name string) Option {
	return func(o *options) error {
		k, err := clk.ParseKick(name)
		if err != nil {
			return err
		}
		o.kick = k
		return nil
	}
}

// WithCandidates selects the candidate-set strategy bounding the LK
// search: "auto" (default — probe the instance and pick, see cmd/tspstat
// to preview the choice), "knn" (the historical default lists), "quadrant",
// "alpha", or "delaunay". Candidate lists are built once per solve and
// shared read-only across workers and nodes. An explicitly named strategy
// that cannot run on the instance (e.g. "delaunay" on a matrix-only
// instance) fails the solve with a descriptive error; "auto" always
// succeeds.
func WithCandidates(name string) Option {
	return func(o *options) error {
		if name != "auto" {
			if _, err := neighbor.ByName(name); err != nil {
				return fmt.Errorf("distclk: %w", err)
			}
		}
		o.candidates = name
		return nil
	}
}

// WithRelaxedGain sets the relaxed-gain depth of the LK search: chain
// depths below it may carry a bounded non-positive partial gain, letting
// chains cross equal-length plateaus (lattice-like instances). 0 forces
// the classic strictly-positive rule. Without this option the depth
// follows the WithCandidates("auto") recommendation (0 for named
// strategies).
func WithRelaxedGain(depth int) Option {
	return func(o *options) error {
		if depth < 0 {
			return fmt.Errorf("distclk: negative relaxed-gain depth %d", depth)
		}
		o.relaxDepth = depth
		o.relaxSet = true
		return nil
	}
}

// WithBudget bounds the solve duration (per node for distributed solves,
// matching the paper's per-node CPU limits). Default 10s. A tighter
// deadline on the Solve context wins.
func WithBudget(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("distclk: non-positive budget %v", d)
		}
		o.budget = d
		return nil
	}
}

// WithMaxKicks bounds plain CLK by kick count instead of (or on top of)
// time. Zero means unlimited. With WithWorkers(n > 1) the bound is the
// group total across workers. Plain CLK only.
func WithMaxKicks(k int64) Option {
	return func(o *options) error {
		o.maxKicksSet = true
		if k < 0 {
			return fmt.Errorf("distclk: negative max kicks %d", k)
		}
		o.maxKicks = k
		return nil
	}
}

// WithWorkers runs n concurrent kickers per solve (per node for
// distributed solves). They share the read-only candidate tables, keep
// private zero-allocation search state, publish improvements through a
// lock-free best-tour slot, and periodically fuse elite tours (see
// WithMergeEvery). n = 0 auto-sizes to GOMAXPROCS — plain CLK only, since
// cooperating nodes time-share the machine. Negative n is rejected. The
// default, n = 1, is the classic single kicker and stays byte-identical
// for a given seed; n > 1 trades that determinism for throughput.
func WithWorkers(n int) Option {
	return func(o *options) error {
		o.workersSet = true
		if n < 0 {
			return fmt.Errorf("distclk: negative worker count %d", n)
		}
		if n == 0 {
			o.workersAuto = true
			o.workers = runtime.GOMAXPROCS(0)
			return nil
		}
		o.workers = n
		return nil
	}
}

// WithMergeEvery sets the elite-merge cadence for parallel plain-CLK
// solves: every k group-total kicks, a merge pass fuses the best published
// tours with Lin-Kernighan restricted to the union of their edges (Cook &
// Seymour tour merging). Zero (the default) picks a cadence proportional
// to instance size; negative k is rejected. Requires WithWorkers(n > 1) —
// merging needs tours from at least two searchers — and plain CLK mode
// (distributed nodes already exchange tours by broadcast).
func WithMergeEvery(k int64) Option {
	return func(o *options) error {
		o.mergeSet = true
		if k < 0 {
			return fmt.Errorf("distclk: negative merge cadence %d", k)
		}
		o.mergeEvery = k
		return nil
	}
}

// WithTarget stops the solve as soon as a tour of at most this length is
// found — the paper's known-optimum termination criterion. Zero means no
// target.
func WithTarget(length int64) Option {
	return func(o *options) error {
		if length < 0 {
			return fmt.Errorf("distclk: negative target length %d", length)
		}
		o.target = length
		return nil
	}
}

// WithSeed fixes the random seed (default 1).
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithNodes selects the paper's distributed evolutionary algorithm with
// the given number of cooperating in-process nodes (the paper uses 8; 1
// runs the EA without neighbours, the paper's cooperation baseline).
// Without this option the Solver runs plain Chained Lin-Kernighan.
func WithNodes(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("distclk: need at least one node, got %d", n)
		}
		o.nodes = n
		return nil
	}
}

// WithTopology selects the overlay for distributed solves: "hypercube"
// (default, the paper's), "ring", "grid", "complete", or the hierarchical
// overlays built for clusters far past the paper's 8 nodes —
// "hier-hypercube" and "tree-of-rings", whose per-node degree stays flat
// as the cluster grows. Requires WithNodes.
func WithTopology(name string) Option {
	return func(o *options) error {
		o.topoSet = true
		k, err := topology.Parse(name)
		if err != nil {
			return err
		}
		o.topo = k
		return nil
	}
}

// WithEAParameters overrides the paper's c_v (perturbation strength
// divisor, default 64) and c_r (restart threshold, default 256). The
// defaults assume runs long enough for hundreds of EA iterations per node;
// for second-scale budgets, scale them down proportionally (e.g. 4 and 16)
// so the variable-strength mechanism engages within the compressed time
// scale.
func WithEAParameters(cv, cr int) Option {
	return func(o *options) error {
		o.eaSet = true
		if cv <= 0 || cr <= 0 {
			return fmt.Errorf("distclk: EA parameters must be positive")
		}
		o.cv, o.cr = cv, cr
		return nil
	}
}

// WithKicksPerCall bounds the embedded CLK run per EA iteration of a
// distributed solve (default max(20, n/10)). Smaller values yield more
// frequent exchange and perturbation decisions.
func WithKicksPerCall(k int64) Option {
	return func(o *options) error {
		o.kpcSet = true
		if k <= 0 {
			return fmt.Errorf("distclk: kicks per call must be positive")
		}
		o.kpc = k
		return nil
	}
}

// WithTourDiff switches tour exchange to the delta wire protocol: each
// (sender, peer) stream transmits only the changed segments of the tour
// against the peer's last-known generation, with a full tour every
// keyframe deltas (0 picks the default, 64) and automatic full-tour
// fallback on generation gaps, size-ineffective diffs, or peer restarts.
// Cuts bytes-on-wire roughly in proportion to how local successive
// improvements are; at 1024 nodes it is what keeps exchange traffic
// affordable. Requires WithNodes.
func WithTourDiff(keyframe int) Option {
	return func(o *options) error {
		if keyframe < 0 {
			return fmt.Errorf("distclk: negative tour-diff keyframe interval %d", keyframe)
		}
		o.exchangeSet = true
		o.exchange.Delta = true
		o.exchange.KeyframeEvery = keyframe
		return nil
	}
}

// WithGossip replaces topology-neighbour broadcast with gossip: every
// broadcast goes to fanout peers sampled uniformly from the whole
// cluster, spreading tours in O(log n) rounds regardless of overlay
// diameter. Requires WithNodes.
func WithGossip(fanout int) Option {
	return func(o *options) error {
		if fanout <= 0 {
			return fmt.Errorf("distclk: gossip fanout must be positive, got %d", fanout)
		}
		o.exchangeSet = true
		o.exchange.Gossip = true
		o.exchange.Fanout = fanout
		return nil
	}
}

// WithBatching coalesces queued tours per sender: if a peer's inbox
// already holds an undrained tour from the same sender, the better of the
// two replaces it instead of queueing both. At large node counts this
// bounds inbox growth during slow EA iterations without dropping
// information (the discarded tour was dominated). Requires WithNodes.
func WithBatching() Option {
	return func(o *options) error {
		o.exchangeSet = true
		o.exchange.Coalesce = true
		return nil
	}
}

// WithProgressInterval sets the sampling period of the Progress channel
// (default 100ms).
func WithProgressInterval(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("distclk: non-positive progress interval %v", d)
		}
		o.interval = d
		return nil
	}
}

// Event, EventKind and EventSink re-export the observability vocabulary
// (internal/obs) and Scratch the recyclable solve buffers (internal/clk)
// under importable names: external modules cannot import internal
// packages, but can name aliases, consume WithEventSink streams, and
// implement their own one-method EventSink.
type (
	Event     = obs.Event
	EventKind = obs.Kind
	EventSink = obs.Sink
	Scratch   = clk.Scratch
)

// WithEventSink streams the solve's raw observability events into sink as
// they happen — every decision point, including the high-frequency
// kick-level kinds (kick accepted/reverted fire once per kick).
// Long-lived consumers such as the solve service's SSE fan-out wrap the
// sink in obs.Filter, or use an obs.Broadcaster whose bounded per-
// subscriber buffers drop instead of blocking; a sink that blocks stalls
// the solve. The sink must be safe for concurrent Emit calls.
func WithEventSink(sink EventSink) Option {
	return func(o *options) error {
		if sink == nil {
			return fmt.Errorf("distclk: nil event sink (drop the option instead)")
		}
		o.sink = sink
		return nil
	}
}

// WithScratch recycles per-solve scratch memory — the CSR candidate
// tables, LK optimizer buffers, and kick buffers — from sc instead of
// allocating fresh, so a long-lived caller solving many instances in
// sequence (the solve service's sync.Pool) avoids the per-job allocation
// spike. A Scratch backs at most one live solve: reuse it only after the
// previous Solve returned. Classic single-worker plain CLK only
// (WithWorkers(1), no WithNodes): parallel workers and cluster nodes
// each need private state, which a single scratch cannot back.
func WithScratch(sc *Scratch) Option {
	return func(o *options) error {
		if sc == nil {
			return fmt.Errorf("distclk: nil scratch (drop the option instead)")
		}
		o.scratch = sc
		return nil
	}
}

// build applies the options and validates the whole configuration in one
// place; every invalid option and every conflicting combination is
// reported, joined into a single error.
func build(opts []Option) (options, error) {
	o := defaults()
	var errs []error
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			errs = append(errs, err)
		}
	}
	errs = append(errs, o.combos()...)
	if len(errs) > 0 {
		return o, errors.Join(errs...)
	}
	return o, nil
}

// combos checks the cross-option matrix documented in the package comment.
func (o *options) combos() []error {
	var errs []error
	if o.nodes > 0 {
		if o.maxKicksSet {
			errs = append(errs, fmt.Errorf("distclk: WithMaxKicks bounds plain CLK solves only; drop it or drop WithNodes"))
		}
		if o.mergeSet {
			errs = append(errs, fmt.Errorf("distclk: WithMergeEvery applies to parallel plain-CLK solves only; distributed nodes already exchange tours by broadcast"))
		}
		if o.workersAuto {
			errs = append(errs, fmt.Errorf("distclk: WithWorkers(0) auto-sizing conflicts with WithNodes: cooperating nodes time-share the machine, pick an explicit per-node worker count"))
		}
	} else {
		if o.topoSet {
			errs = append(errs, fmt.Errorf("distclk: WithTopology requires WithNodes (plain CLK has no overlay)"))
		}
		if o.eaSet {
			errs = append(errs, fmt.Errorf("distclk: WithEAParameters requires WithNodes (plain CLK runs no evolutionary loop)"))
		}
		if o.kpcSet {
			errs = append(errs, fmt.Errorf("distclk: WithKicksPerCall requires WithNodes (plain CLK kicks continuously; bound it with WithMaxKicks)"))
		}
		if o.exchangeSet {
			errs = append(errs, fmt.Errorf("distclk: WithTourDiff/WithGossip/WithBatching configure the exchange protocol and require WithNodes (plain CLK exchanges no tours)"))
		}
	}
	// workersAuto is exempt: on a single-core machine it resolves to one
	// worker and merging just never fires.
	if o.mergeSet && !o.workersAuto && o.workers == 1 {
		errs = append(errs, fmt.Errorf("distclk: WithMergeEvery requires WithWorkers(n > 1): tour merging fuses tours from at least two workers"))
	}
	if o.scratch != nil {
		if o.nodes > 0 {
			errs = append(errs, fmt.Errorf("distclk: WithScratch applies to plain CLK solves only; cluster nodes each need private state"))
		}
		if o.workersAuto || o.workers > 1 {
			errs = append(errs, fmt.Errorf("distclk: WithScratch requires the classic single worker; a scratch backs exactly one searcher"))
		}
	}
	return errs
}

// Solver is a configured, single-use solve: build it with New, optionally
// subscribe to Progress, then call Solve. A Solver must not be shared
// across goroutines (the Progress channel may be consumed elsewhere).
type Solver struct {
	in       *Instance
	o        options
	observer *obs.Observer
	progress chan Snapshot
	solved   bool
}

// New validates the options and builds a Solver over the instance.
func New(in *Instance, opts ...Option) (*Solver, error) {
	if in == nil {
		return nil, fmt.Errorf("distclk: nil instance")
	}
	o, err := build(opts)
	if err != nil {
		return nil, err
	}
	// One recorder per node, or — for parallel plain CLK — per worker.
	recs := o.nodes
	if recs == 0 {
		recs = o.workers
	}
	return &Solver{in: in, o: o, observer: obs.NewObserver(recs, o.sink)}, nil
}

// Progress returns a channel of periodic solve snapshots. Call Progress
// before Solve starts — e.g. on the goroutine that will call Solve, not
// inside the consuming goroutine, or the subscription may race with the
// solve and miss it. Sampling is latest-wins: a slow consumer sees fresh
// snapshots, never a backlog. The channel closes when Solve returns.
func (s *Solver) Progress() <-chan Snapshot {
	if s.progress == nil {
		s.progress = make(chan Snapshot, 1)
	}
	return s.progress
}

// snapshot samples the observer.
func (s *Solver) snapshot() Snapshot {
	counters := s.observer.Counters()
	var kicks, restarts, broadcasts int64
	workerKicks := make([]int64, len(counters))
	for i, c := range counters {
		kicks += c.Kicks
		restarts += c.Restarts
		broadcasts += c.BroadcastsSent
		workerKicks[i] = c.Kicks
	}
	elapsed := s.observer.Elapsed()
	nodes := s.observer.Nodes()
	procs := runtime.GOMAXPROCS(0)
	if procs > nodes {
		procs = nodes
	}
	return Snapshot{
		Elapsed:     elapsed,
		CPUPerNode:  time.Duration(float64(elapsed) * float64(procs) / float64(nodes)),
		BestLength:  s.observer.BestLength(),
		Kicks:       kicks,
		Restarts:    restarts,
		Broadcasts:  broadcasts,
		Workers:     s.o.workers,
		WorkerKicks: workerKicks,
	}
}

// pump samples progress every interval until done, closing the channel on
// exit. Each tick also records a snapshot event into the observer, so
// event traces carry the progress timeline.
func (s *Solver) pump(done <-chan struct{}) {
	ticker := time.NewTicker(s.o.interval)
	defer ticker.Stop()
	defer close(s.progress)
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			s.observer.Snapshot()
			snap := s.snapshot()
			select {
			case s.progress <- snap:
			default:
				// Latest wins: evict the stale snapshot, then retry once.
				select {
				case <-s.progress:
				default:
				}
				select {
				case s.progress <- snap:
				default:
				}
			}
		}
	}
}

// Solve runs the solve until the budget, target, kick bound, or ctx ends
// it — whichever comes first — and returns the best tour found.
// Cancellation is not an error: the best-so-far result comes back with a
// nil error. Solve may be called once per Solver.
func (s *Solver) Solve(ctx context.Context) (Result, error) {
	if s.solved {
		return Result{}, fmt.Errorf("distclk: Solve already called on this Solver")
	}
	s.solved = true
	ctx, cancel := context.WithTimeout(ctx, s.o.budget)
	defer cancel()

	done := make(chan struct{})
	if s.progress != nil {
		go s.pump(done)
	}
	defer close(done)

	// Resolve the candidate strategy eagerly: lists are built once here,
	// shared read-only by every worker and node, and an impossible
	// explicit choice (e.g. delaunay on a matrix-only instance) surfaces
	// as a Solve error instead of a silent engine fallback.
	nbr, relax, err := s.resolveCandidates()
	if err != nil {
		return Result{}, err
	}

	start := time.Now()
	var res Result
	if s.o.nodes == 0 {
		res = s.solveCLK(ctx, nbr, relax)
	} else {
		res = s.solveCluster(ctx, nbr, relax)
	}
	res.Elapsed = time.Since(start)
	for _, c := range s.observer.Counters() {
		res.PerNode = append(res.PerNode, NodeStats{
			Node:               c.Node,
			BestLength:         c.BestLength,
			Kicks:              c.Kicks,
			Improvements:       c.Improvements,
			Restarts:           c.Restarts,
			BroadcastsSent:     c.BroadcastsSent,
			BroadcastsReceived: c.BroadcastsReceived,
			BroadcastsAccepted: c.BroadcastsAccepted,
		})
	}
	return res, nil
}

// resolveCandidates builds the candidate lists and the relaxed-gain depth
// for this solve. An explicit WithRelaxedGain wins over the auto
// recommendation; named strategies recommend the classic rule.
func (s *Solver) resolveCandidates() (*neighbor.Lists, int, error) {
	nbr, choice, err := neighbor.SelectWith(s.o.scratch.CSR(), s.in, s.o.candidates, clk.DefaultParams().NeighborK)
	if err != nil {
		return nil, 0, fmt.Errorf("distclk: %w", err)
	}
	relax := choice.RelaxDepth
	if s.o.relaxSet {
		relax = s.o.relaxDepth
	}
	return nbr, relax, nil
}

func (s *Solver) solveCLK(ctx context.Context, nbr *neighbor.Lists, relax int) Result {
	p := clk.DefaultParams()
	p.Kick = s.o.kick
	p.Neighbors = nbr
	p.LK.RelaxDepth = relax
	b := clk.Budget{
		MaxKicks: s.o.maxKicks,
		Target:   s.o.target,
	}
	// One worker takes the classic single-goroutine path: byte-identical to
	// every release since the facade existed for a given seed.
	if s.o.workers == 1 {
		engine := clk.NewWith(s.o.scratch, s.in, p, s.o.seed)
		engine.Rec = s.observer.Recorder(0)
		engine.Rec.SetBest(engine.BestLength())
		res := engine.Run(ctx, b)
		return Result{
			Tour:   res.Tour,
			Length: res.Length,
			Nodes:  1,
		}
	}
	g := clk.NewGroup(ctx, s.in, p, clk.GroupParams{
		Workers:    s.o.workers,
		MergeEvery: s.o.mergeEvery,
	}, s.o.seed)
	for i := 0; i < g.Workers(); i++ {
		g.SetRecorder(i, s.observer.Recorder(i))
	}
	res := g.Run(ctx, b)
	return Result{
		Tour:   res.Tour,
		Length: res.Length,
		Nodes:  1,
	}
}

func (s *Solver) solveCluster(ctx context.Context, nbr *neighbor.Lists, relax int) Result {
	ea := core.DefaultConfig()
	ea.CV, ea.CR = s.o.cv, s.o.cr
	ea.CLK.Kick = s.o.kick
	ea.CLK.Neighbors = nbr
	ea.CLK.LK.RelaxDepth = relax
	ea.KicksPerCall = s.o.kpc
	ea.Workers = s.o.workers
	res := dist.RunCluster(ctx, s.in, dist.ClusterConfig{
		Nodes:    s.o.nodes,
		Topo:     s.o.topo,
		EA:       ea,
		Budget:   core.Budget{Target: s.o.target},
		Seed:     s.o.seed,
		Exchange: s.o.exchange,
		Obs:      s.observer,
	})
	return Result{
		Tour:       res.BestTour,
		Length:     res.BestLength,
		Nodes:      s.o.nodes,
		Broadcasts: res.Broadcasts(),
	}
}

// SolveCLK runs plain Chained Lin-Kernighan (the paper's ABCC-CLK
// reference configuration). It is a frozen compatibility shim: exactly
// New(in, opts...) followed by Solve with a background context, kept so
// pre-Solver callers never break. It gains new options automatically but
// will never grow parameters or behavior of its own.
//
// Deprecated: use New and (*Solver).Solve, which add cancellation and
// progress reporting.
func SolveCLK(in *Instance, opts ...Option) (Result, error) {
	s, err := New(in, opts...)
	if err != nil {
		return Result{}, err
	}
	return s.Solve(context.Background())
}

// SolveDistributed runs the paper's distributed algorithm with the given
// number of cooperating in-process nodes (the paper uses 8) under a
// per-node budget. For multi-machine deployments use cmd/hub and
// cmd/distclk instead. Like SolveCLK, it is a frozen compatibility shim:
// exactly New(in, WithNodes(nodes), opts...) followed by Solve with a
// background context, kept stable for pre-Solver callers.
//
// Deprecated: use New with WithNodes and (*Solver).Solve, which add
// cancellation and progress reporting.
func SolveDistributed(in *Instance, nodes int, opts ...Option) (Result, error) {
	if nodes <= 0 {
		return Result{}, fmt.Errorf("distclk: need at least one node, got %d", nodes)
	}
	s, err := New(in, append([]Option{WithNodes(nodes)}, opts...)...)
	if err != nil {
		return Result{}, err
	}
	return s.Solve(context.Background())
}
