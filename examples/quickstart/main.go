// Quickstart: generate a random 1000-city instance, solve it with plain
// Chained Lin-Kernighan for two seconds, then let eight cooperating nodes
// attack the same instance and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"distclk"
)

func main() {
	// A PCB-drilling instance — regular hole lattices separated by empty
	// board gaps, the structure (fl1577/fl3795 in TSPLIB) on which plain
	// CLK famously gets stuck in deep local optima.
	in, err := distclk.Generate("drill", 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s with %d cities\n\n", in.Name, in.N())

	single, err := distclk.SolveCLK(in,
		distclk.WithBudget(6*time.Second),
		distclk.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain CLK:    length %d in %v\n", single.Length, single.Elapsed.Round(time.Millisecond))

	// The distributed algorithm gets the same total CPU: 8 nodes share the
	// machine for the same wall-clock budget. c_v/c_r are scaled from the
	// paper's 64/256 to the compressed time scale (see EXPERIMENTS.md).
	multi, err := distclk.SolveDistributed(in, 8,
		distclk.WithBudget(6*time.Second),
		distclk.WithSeed(42),
		distclk.WithEAParameters(4, 16),
		distclk.WithKicksPerCall(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DistCLK (8):  length %d in %v, %d tours exchanged\n",
		multi.Length, multi.Elapsed.Round(time.Millisecond), multi.Broadcasts)

	if err := multi.Tour.Validate(in.N()); err != nil {
		log.Fatal(err)
	}
	diff := float64(single.Length-multi.Length) / float64(single.Length) * 100
	fmt.Printf("\ncooperation advantage: %.3f%%\n", diff)
}
