// Distributed demonstrates the paper's core claim on an fl3795-style
// drilling instance: plain CLK stalls in a deep local optimum, while the
// cooperating 8-node algorithm with variable-strength perturbation escapes
// — with the SAME total CPU budget (compare paper §4.2 and Figure 3(a)).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"distclk"
)

func main() {
	// A 900-city drilling instance with the fl3795 board structure,
	// scaled so plain CLK's stall happens within this demo's budget (the
	// full-size stand-in needs minutes: distclk.StandIn("fl3795", 1)).
	in, err := distclk.Generate("drill", 900, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s (%d cities, drilling-board structure)\n\n", in.Name, in.N())

	const totalCPU = 10 * time.Second

	fmt.Printf("plain CLK, %v budget...\n", totalCPU)
	single, err := distclk.SolveCLK(in, distclk.WithBudget(totalCPU), distclk.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  length %d\n\n", single.Length)

	// 8 nodes share the machine for the same wall budget -> same total CPU.
	fmt.Printf("DistCLK with 8 cooperating nodes, same total CPU...\n")
	// c_v/c_r scaled from the paper's 64/256 to this compressed time scale
	// so the variable-strength escalation engages (see EXPERIMENTS.md).
	multi, err := distclk.SolveDistributed(in, 8,
		distclk.WithBudget(totalCPU),
		distclk.WithSeed(5),
		distclk.WithTopology("hypercube"),
		distclk.WithEAParameters(4, 16),
		distclk.WithKicksPerCall(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  length %d, %d tours exchanged\n\n", multi.Length, multi.Broadcasts)

	switch {
	case multi.Length < single.Length:
		fmt.Printf("cooperation wins by %.3f%%\n",
			float64(single.Length-multi.Length)/float64(single.Length)*100)
	case multi.Length == single.Length:
		fmt.Println("both found the same tour length")
	default:
		fmt.Printf("plain CLK wins this seed by %.3f%% — rerun with more budget;\n"+
			"the paper's effect shows in expectation over runs\n",
			float64(multi.Length-single.Length)/float64(multi.Length)*100)
	}
}
