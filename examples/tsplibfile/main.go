// Tsplibfile shows the file-based workflow: write an instance to a TSPLIB
// .tsp file, load it back, solve it, store the tour as a .tour file, and
// re-evaluate the stored tour — the round trip a user with real TSPLIB
// data (e.g. from tsplib95) would follow.
//
//	go run ./examples/tsplibfile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"distclk"
	"distclk/internal/tsp"
)

func main() {
	dir, err := os.MkdirTemp("", "distclk-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Write an instance file (stands in for downloading one).
	gen, err := distclk.Generate("clustered", 600, 11)
	if err != nil {
		log.Fatal(err)
	}
	tspPath := filepath.Join(dir, "c600.tsp")
	f, err := os.Create(tspPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := tsp.WriteTSPLIB(f, gen); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s\n", tspPath)

	// 2. Load and solve.
	in, err := distclk.Load(tspPath)
	if err != nil {
		log.Fatal(err)
	}
	res, err := distclk.SolveCLK(in, distclk.WithBudget(2*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %s: length %d\n", in.Name, res.Length)

	// 3. Store the tour.
	tourPath := filepath.Join(dir, "c600.tour")
	tf, err := os.Create(tourPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := tsp.WriteTourFile(tf, in.Name, res.Tour); err != nil {
		log.Fatal(err)
	}
	tf.Close()
	fmt.Printf("wrote %s\n", tourPath)

	// 4. Read the tour back and re-evaluate it.
	rf, err := os.Open(tourPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := tsp.ReadTourFile(rf, in.N())
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if got := loaded.Length(in); got != res.Length {
		log.Fatalf("stored tour evaluates to %d, want %d", got, res.Length)
	}
	fmt.Printf("stored tour re-evaluates to %d — round trip OK\n", res.Length)
}
