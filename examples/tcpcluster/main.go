// Tcpcluster runs the paper's real network stack end to end in a single
// process: a bootstrap hub and four TCP nodes on localhost form a
// hypercube, solve cooperatively, and report per-node statistics. This is
// exactly the multi-machine deployment path (cmd/hub + cmd/distclk), just
// co-located for demonstration.
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"distclk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/topology"
)

func main() {
	const nodes = 4
	in, err := distclk.Generate("clustered", 400, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s (%d cities), %d TCP nodes in a hypercube\n\n", in.Name, in.N(), nodes)

	hub, err := dist.NewHub("127.0.0.1:0", nodes, topology.Hypercube)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	go hub.Serve(ctx)
	fmt.Printf("hub listening on %s\n", hub.Addr())

	var wg sync.WaitGroup
	stats := make([]core.Stats, nodes)
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			tn, err := dist.JoinTCP(ctx, hub.Addr(), "127.0.0.1:0", in.N())
			if err != nil {
				log.Printf("node %d join failed: %v", idx, err)
				return
			}
			defer tn.Close()
			cfg := core.DefaultConfig()
			cfg.CV, cfg.CR = 4, 16 // scaled to the short demo budget
			cfg.KicksPerCall = 10
			runCtx, cancel := context.WithTimeout(ctx, 4*time.Second)
			defer cancel()
			node := core.NewNode(tn.ID, in, cfg, tn, int64(idx+1))
			stats[idx] = node.Run(runCtx, core.Budget{})
		}(i)
	}
	wg.Wait()
	hub.Close()

	best := int64(0)
	for _, s := range stats {
		fmt.Printf("node %d: best %d, %d iterations, sent %d, received %d\n",
			s.NodeID, s.BestLength, s.Iterations, s.Broadcasts, s.Received)
		if s.BestLength > 0 && (best == 0 || s.BestLength < best) {
			best = s.BestLength
		}
	}
	fmt.Printf("\ncluster best (collected from local outputs, paper §2.3): %d\n", best)
}
