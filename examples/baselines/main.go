// Baselines runs the three reimplemented comparison solvers from the
// paper's Table 2 — LKH-style (alpha-nearness + deep LK), Walshaw-style
// multilevel CLK, and Cook&Seymour-style tour merging — against DistCLK on
// one instance, printing each solver's quality/time trade-off.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"time"

	"distclk"
	"distclk/internal/heldkarp"
	"distclk/internal/lkh"
	"distclk/internal/merge"
	"distclk/internal/multilevel"
)

func main() {
	in, err := distclk.Generate("grid", 800, 3)
	if err != nil {
		log.Fatal(err)
	}
	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 60})
	fmt.Printf("instance %s (%d cities), HK bound %d\n\n", in.Name, in.N(), hk.Bound)
	gap := func(l int64) float64 { return float64(l-hk.Bound) / float64(hk.Bound) * 100 }

	deadline := time.Now().Add(8 * time.Second)

	lp := lkh.DefaultParams()
	lp.Trials = 300
	lr := lkh.Solve(in, lp, 1, deadline, 0)
	fmt.Printf("%-22s length %10d  gap %6.3f%%  time %v\n",
		"LKH-style", lr.Length, gap(lr.Length), lr.Elapsed.Round(time.Millisecond))

	mr := multilevel.Solve(in, multilevel.DefaultParams(), 1, deadline, 0)
	fmt.Printf("%-22s length %10d  gap %6.3f%%  time %v (%d levels)\n",
		"multilevel CLK", mr.Length, gap(mr.Length), mr.Elapsed.Round(time.Millisecond), mr.Levels)

	tp := merge.DefaultParams()
	tp.Tours = 6
	tp.KicksPerTour = 150
	tr := merge.Solve(in, tp, 1, deadline, 0)
	fmt.Printf("%-22s length %10d  gap %6.3f%%  time %v (union %d edges, base best %d)\n",
		"tour merging", tr.Length, gap(tr.Length), tr.Elapsed.Round(time.Millisecond),
		tr.UnionEdges, tr.BaseBest)

	dr, err := distclk.SolveDistributed(in, 8, distclk.WithBudget(3*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s length %10d  gap %6.3f%%  time %v\n",
		"DistCLK (8 nodes)", dr.Length, gap(dr.Length), dr.Elapsed.Round(time.Millisecond))
}
