// Kickstrategies reproduces the paper's §4.1 observation on a drilling
// instance: kicking strategies matter, and Random degrades on structured
// instances while Random-walk stays robust (compare Figure 2(a)).
//
//	go run ./examples/kickstrategies
package main

import (
	"fmt"
	"log"
	"time"

	"distclk"
	"distclk/internal/heldkarp"
)

func main() {
	// A drilling-board stand-in, the instance family of fl1577/fl3795
	// where plain CLK famously stalls.
	in, err := distclk.Generate("drill", 1200, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s with %d cities\n", in.Name, in.N())

	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 60})
	fmt.Printf("Held-Karp lower bound: %d\n\n", hk.Bound)

	for _, kick := range []string{"random", "geometric", "close", "random-walk"} {
		res, err := distclk.SolveCLK(in,
			distclk.WithKick(kick),
			distclk.WithBudget(3*time.Second),
			distclk.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		gap := float64(res.Length-hk.Bound) / float64(hk.Bound) * 100
		fmt.Printf("%-12s length %10d   gap %6.3f%%   (%v)\n",
			kick, res.Length, gap, res.Elapsed.Round(time.Millisecond))
	}
}
