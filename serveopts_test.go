package distclk

import (
	"context"
	"testing"
	"time"

	"distclk/internal/clk"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
)

// WithEventSink must deliver the raw event stream — including the
// kick-level kinds the in-memory collector filters out — while the solve
// still returns a valid result.
func TestWithEventSinkSeesKickLevelEvents(t *testing.T) {
	in, _ := Generate("uniform", 120, 3)
	sink := obs.NewMemorySink()
	s, err := New(in,
		WithEventSink(sink),
		WithMaxKicks(50),
		WithBudget(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	kickLevel := 0
	for _, e := range sink.Events() {
		if !e.Kind.EALevel() {
			kickLevel++
		}
	}
	if kickLevel == 0 {
		t.Fatalf("event sink saw no kick-level events across %d events", sink.Len())
	}
}

// WithScratch must recycle the CSR candidate table across sequential
// solves (pool hit via pointer identity) and keep results byte-identical
// to a scratch-free solve with the same seed.
func TestWithScratchRecyclesAndMatchesFresh(t *testing.T) {
	in, _ := Generate("clustered", 200, 4)
	opts := func(extra ...Option) []Option {
		return append([]Option{WithMaxKicks(30), WithSeed(11), WithBudget(5 * time.Second)}, extra...)
	}
	fresh, err := SolveCLK(in, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	sc := &clk.Scratch{}
	var firstCSR *int32
	for round := 0; round < 3; round++ {
		s, err := New(in, opts(WithScratch(sc))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Length != fresh.Length {
			t.Fatalf("round %d: scratch solve length %d differs from fresh %d", round, res.Length, fresh.Length)
		}
		for i, c := range res.Tour {
			if c != fresh.Tour[i] {
				t.Fatalf("round %d: tour diverges at %d", round, i)
			}
		}
		probe := probeCSR(t, sc, in)
		if firstCSR == nil {
			firstCSR = probe
		} else if probe != firstCSR {
			t.Fatalf("round %d: CSR arrays re-allocated instead of recycled", round)
		}
	}
}

// probeCSR builds a candidate table from the scratch's storage and
// returns the address of its first payload element — stable across
// rounds exactly when the storage recycles its backing arrays.
func probeCSR(t *testing.T, sc *clk.Scratch, in *Instance) *int32 {
	t.Helper()
	l := neighbor.BuildWith(sc.CSR(), in, 8)
	if !sc.CSR().Owns(l) {
		t.Fatalf("scratch storage did not back the probe build")
	}
	return &l.Of(0)[0]
}

func TestWithScratchComboValidation(t *testing.T) {
	in, _ := Generate("uniform", 30, 5)
	sc := &clk.Scratch{}
	if _, err := New(in, WithScratch(sc), WithNodes(2)); err == nil {
		t.Error("WithScratch accepted alongside WithNodes")
	}
	if _, err := New(in, WithScratch(sc), WithWorkers(2)); err == nil {
		t.Error("WithScratch accepted alongside WithWorkers(2)")
	}
	if _, err := New(in, WithScratch(sc), WithWorkers(0)); err == nil {
		t.Error("WithScratch accepted alongside auto worker sizing")
	}
	if _, err := New(in, WithScratch(nil)); err == nil {
		t.Error("nil scratch accepted")
	}
	if _, err := New(in, WithEventSink(nil)); err == nil {
		t.Error("nil event sink accepted")
	}
}
