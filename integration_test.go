package distclk

// End-to-end integration tests spanning every layer: generation ->
// candidate lists -> construction -> LK -> Or-opt -> CLK -> distributed EA
// -> bounds, with invariants validated at each stage.

import (
	"context"
	"testing"
	"time"

	"distclk/internal/clk"
	"distclk/internal/construct"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/heldkarp"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// TestFullPipeline walks one instance through every stage and checks the
// quality ordering: each stage must not be worse than the one before, and
// the final tour must respect the Held-Karp bound.
func TestFullPipeline(t *testing.T) {
	// Uniform geometry: the Held-Karp bound is within ~1% of the optimum
	// there, so the final gap assertion is meaningful. (On tightly
	// clustered instances the 1-tree relaxation itself is several percent
	// loose — see EXPERIMENTS.md.)
	in := tsp.Generate(tsp.FamilyUniform, 400, 17)
	nbr := neighbor.Build(in, 10)

	// Stage 1: construction.
	tour := construct.Build(construct.QuickBoruvka, in, nbr, nil)
	if err := tour.Validate(400); err != nil {
		t.Fatal(err)
	}
	constructLen := tour.Length(in)

	// Stage 2: LK descent.
	opt := lk.NewOptimizer(in, nbr, tour, lk.DefaultParams())
	opt.OptimizeAll(nil)
	lkLen := opt.Length()
	if lkLen > constructLen {
		t.Fatalf("LK worsened construction: %d -> %d", constructLen, lkLen)
	}

	// Stage 3: Or-opt polish.
	polished, orGain := lk.OrOptPass(in, nbr, opt.Tour.Tour())
	orLen := polished.Length(in)
	if orLen != lkLen-orGain {
		t.Fatalf("Or-opt accounting: %d != %d - %d", orLen, lkLen, orGain)
	}

	// Stage 4: CLK chaining from the polished tour.
	solver := clk.New(in, clk.DefaultParams(), 3)
	solver.SetTour(polished)
	res := solver.Run(context.Background(), clk.Budget{MaxKicks: 150})
	if res.Length > orLen {
		t.Fatalf("CLK worsened polished tour: %d -> %d", orLen, res.Length)
	}

	// Stage 5: distributed EA seeded independently must land in the same
	// quality region (within 2% of the CLK result).
	ea := core.DefaultConfig()
	ea.CV, ea.CR = 4, 16
	ea.KicksPerCall = 10
	cctx, ccancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer ccancel()
	cres := dist.RunCluster(cctx, in, dist.ClusterConfig{
		Nodes:  4,
		Topo:   topology.Hypercube,
		EA:     ea,
		Budget: core.Budget{MaxIterations: 20},
		Seed:   5,
	})
	if err := cres.BestTour.Validate(400); err != nil {
		t.Fatal(err)
	}
	if float64(cres.BestLength) > float64(res.Length)*1.02 {
		t.Fatalf("distributed result %d far from CLK result %d", cres.BestLength, res.Length)
	}

	// Stage 6: bounds. Everything must respect Held-Karp.
	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 80, UpperBound: res.Length})
	for name, l := range map[string]int64{
		"construct": constructLen,
		"lk":        lkLen,
		"oropt":     orLen,
		"clk":       res.Length,
		"dist":      cres.BestLength,
	} {
		if l < hk.Bound {
			t.Fatalf("%s length %d below the Held-Karp bound %d — a solver or the bound is broken", name, l, hk.Bound)
		}
	}
	// The final tours should be within ~5% of the bound on clustered
	// instances at this effort.
	if float64(res.Length) > float64(hk.Bound)*1.05 {
		t.Errorf("CLK gap over HK bound too large: %d vs %d", res.Length, hk.Bound)
	}
}

// TestSeedDeterminismCLK: identical seeds must reproduce identical kick
// sequences (the solver is deterministic given seed and budget in kicks).
func TestSeedDeterminismCLK(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 23)
	run := func() int64 {
		s := clk.New(in, clk.DefaultParams(), 77)
		return s.Run(context.Background(), clk.Budget{MaxKicks: 60}).Length
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results: %d vs %d", a, b)
	}
}

// TestAllFamiliesThroughDistributedLoop smoke-tests the distributed loop
// on every instance family.
func TestAllFamiliesThroughDistributedLoop(t *testing.T) {
	for _, fam := range []tsp.Family{
		tsp.FamilyUniform, tsp.FamilyClustered, tsp.FamilyDrill,
		tsp.FamilyGrid, tsp.FamilyNational,
	} {
		in := tsp.Generate(fam, 150, 29)
		ea := core.DefaultConfig()
		ea.KicksPerCall = 5
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res := dist.RunCluster(ctx, in, dist.ClusterConfig{
			Nodes:  2,
			Topo:   topology.Ring,
			EA:     ea,
			Budget: core.Budget{MaxIterations: 4},
			Seed:   7,
		})
		cancel()
		if err := res.BestTour.Validate(150); err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if res.BestTour.Length(in) != res.BestLength {
			t.Fatalf("%v: length mismatch", fam)
		}
	}
}
