// Package topology defines the static overlay networks the distributed
// algorithm runs on. The paper arranges eight nodes in a hypercube (§2.2);
// ring, torus grid, and complete graphs are provided for ablation.
//
// Invariants:
//   - Neighbour lists are symmetric (i lists j iff j lists i), self-free,
//     and deterministic for (kind, n) — overlay shape never depends on
//     join order.
package topology
