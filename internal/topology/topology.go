package topology

import (
	"fmt"
	"math"
)

// Kind selects an overlay topology.
type Kind int

const (
	// Hypercube connects nodes whose binary ids differ in exactly one bit
	// (the paper's topology).
	Hypercube Kind = iota
	// Ring connects each node to its two cyclic neighbours.
	Ring
	// Grid is a near-square torus with four neighbours per node.
	Grid
	// Complete connects every pair of nodes.
	Complete
)

// String names the topology.
func (k Kind) String() string {
	switch k {
	case Hypercube:
		return "hypercube"
	case Ring:
		return "ring"
	case Grid:
		return "grid"
	case Complete:
		return "complete"
	}
	return "unknown"
}

// Parse maps a topology name to its constant.
func Parse(s string) (Kind, error) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown kind %q", s)
}

// Neighbors returns the neighbour ids of node id in a network of n nodes
// (ids 0..n-1). For non-power-of-two n, hypercube links to absent ids are
// dropped, matching a hub that only hands out assigned slots.
func Neighbors(k Kind, n, id int) []int {
	if n <= 1 || id < 0 || id >= n {
		return nil
	}
	switch k {
	case Hypercube:
		bits := int(math.Ceil(math.Log2(float64(n))))
		if bits == 0 {
			bits = 1
		}
		var out []int
		for b := 0; b < bits; b++ {
			o := id ^ (1 << uint(b))
			if o < n {
				out = append(out, o)
			}
		}
		return out
	case Ring:
		if n == 2 {
			return []int{1 - id}
		}
		return []int{(id + n - 1) % n, (id + 1) % n}
	case Grid:
		cols := int(math.Ceil(math.Sqrt(float64(n))))
		rows := (n + cols - 1) / cols
		r, c := id/cols, id%cols
		seen := map[int]bool{id: true}
		var out []int
		add := func(rr, cc int) {
			rr = (rr + rows) % rows
			cc = (cc + cols) % cols
			o := rr*cols + cc
			if o < n && !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
		add(r-1, c)
		add(r+1, c)
		add(r, c-1)
		add(r, c+1)
		return out
	case Complete:
		out := make([]int, 0, n-1)
		for o := 0; o < n; o++ {
			if o != id {
				out = append(out, o)
			}
		}
		return out
	}
	return nil
}

// Validate checks symmetry and connectivity of the topology for n nodes;
// the distributed algorithm relies on both so that improvements eventually
// reach every node.
func Validate(k Kind, n int) error {
	adj := make([][]int, n)
	for id := 0; id < n; id++ {
		adj[id] = Neighbors(k, n, id)
	}
	for id, ns := range adj {
		for _, o := range ns {
			if o < 0 || o >= n || o == id {
				return fmt.Errorf("topology: node %d has invalid neighbour %d", id, o)
			}
			found := false
			for _, back := range adj[o] {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("topology: edge %d->%d not symmetric", id, o)
			}
		}
	}
	if n == 0 {
		return nil
	}
	// BFS connectivity.
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, o := range adj[cur] {
			if !seen[o] {
				seen[o] = true
				count++
				queue = append(queue, o)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topology: %s with %d nodes is disconnected (%d reachable)", k, n, count)
	}
	return nil
}
