package topology

import (
	"fmt"
	"math"
)

// Kind selects an overlay topology.
type Kind int

const (
	// Hypercube connects nodes whose binary ids differ in exactly one bit
	// (the paper's topology).
	Hypercube Kind = iota
	// Ring connects each node to its two cyclic neighbours.
	Ring
	// Grid is a near-square torus with four neighbours per node.
	Grid
	// Complete connects every pair of nodes.
	Complete
	// HierHypercube is a hypercube of hypercubes: ids split into a group
	// half and a local half; every node joins a small hypercube inside its
	// group, and group gateways (local id 0) form a hypercube among
	// themselves. Degree stays ~log2(n)/2 for non-gateways, which keeps
	// fan-out flat as clusters grow to thousands of nodes.
	HierHypercube
	// TreeOfRings groups nodes into rings of ringSize; the rings form a
	// treeArity-ary tree, with each child ring's head (position 0) linked
	// to its parent ring's head. Constant degree ≤ 2+treeArity+1 with
	// O(log n) ring-hops of diameter.
	TreeOfRings
)

// Fixed layout parameters for TreeOfRings. Ring size 8 matches the
// paper's 8-node clusters (each ring is one "paper cluster"); arity 4
// keeps the tree shallow at 4096 nodes (512 rings → depth 5).
const (
	ringSize  = 8
	treeArity = 4
)

// String names the topology.
func (k Kind) String() string {
	switch k {
	case Hypercube:
		return "hypercube"
	case Ring:
		return "ring"
	case Grid:
		return "grid"
	case Complete:
		return "complete"
	case HierHypercube:
		return "hier-hypercube"
	case TreeOfRings:
		return "tree-of-rings"
	}
	return "unknown"
}

// Parse maps a topology name to its constant.
func Parse(s string) (Kind, error) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete, HierHypercube, TreeOfRings} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown kind %q", s)
}

// Neighbors returns the neighbour ids of node id in a network of n nodes
// (ids 0..n-1). For non-power-of-two n, hypercube links to absent ids are
// dropped, matching a hub that only hands out assigned slots.
func Neighbors(k Kind, n, id int) []int {
	if n <= 1 || id < 0 || id >= n {
		return nil
	}
	switch k {
	case Hypercube:
		bits := int(math.Ceil(math.Log2(float64(n))))
		if bits == 0 {
			bits = 1
		}
		var out []int
		for b := 0; b < bits; b++ {
			o := id ^ (1 << uint(b))
			if o < n {
				out = append(out, o)
			}
		}
		return out
	case Ring:
		if n == 2 {
			return []int{1 - id}
		}
		return []int{(id + n - 1) % n, (id + 1) % n}
	case Grid:
		cols := int(math.Ceil(math.Sqrt(float64(n))))
		rows := (n + cols - 1) / cols
		r, c := id/cols, id%cols
		seen := map[int]bool{id: true}
		var out []int
		add := func(rr, cc int) {
			rr = (rr + rows) % rows
			cc = (cc + cols) % cols
			o := rr*cols + cc
			if o < n && !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
		add(r-1, c)
		add(r+1, c)
		add(r, c-1)
		add(r, c+1)
		return out
	case Complete:
		out := make([]int, 0, n-1)
		for o := 0; o < n; o++ {
			if o != id {
				out = append(out, o)
			}
		}
		return out
	case HierHypercube:
		return hierHypercubeNeighbors(n, id)
	case TreeOfRings:
		return treeOfRingsNeighbors(n, id)
	}
	return nil
}

// hierHypercubeNeighbors splits the ceil(log2 n) address bits into a low
// "local" half and a high "group" half. Every node flips its local bits
// (intra-group hypercube); only the group gateway — local id 0, which is
// the smallest id of any non-empty group and therefore always present —
// additionally flips group bits (inter-group hypercube). Links to ids
// >= n are dropped, as in the flat hypercube.
func hierHypercubeNeighbors(n, id int) []int {
	bits := int(math.Ceil(math.Log2(float64(n))))
	if bits == 0 {
		bits = 1
	}
	lbits := bits / 2
	if lbits == 0 {
		lbits = 1
	}
	var out []int
	for b := 0; b < lbits && b < bits; b++ {
		o := id ^ (1 << uint(b))
		if o < n {
			out = append(out, o)
		}
	}
	if id&((1<<uint(lbits))-1) == 0 { // gateway: local part is zero
		for b := lbits; b < bits; b++ {
			o := id ^ (1 << uint(b))
			if o < n {
				out = append(out, o)
			}
		}
	}
	return out
}

// treeOfRingsNeighbors lays ids out as consecutive rings of ringSize
// (the last ring may be partial); ring r occupies ids [r*ringSize,
// (r+1)*ringSize). Rings form a treeArity-ary tree by ring index, and
// ring r's head (position 0) links to its parent ring's head. A partial
// tail ring degrades gracefully: 2 members become a single edge, 1
// member hangs off the parent head alone.
func treeOfRingsNeighbors(n, id int) []int {
	ring := id / ringSize
	pos := id % ringSize
	base := ring * ringSize
	size := n - base // members in this ring
	if size > ringSize {
		size = ringSize
	}
	var out []int
	switch {
	case size == 2:
		out = append(out, base+1-pos)
	case size > 2:
		out = append(out, base+(pos+size-1)%size, base+(pos+1)%size)
	}
	if pos == 0 {
		if ring > 0 { // link up to parent ring's head
			parent := (ring - 1) / treeArity
			out = append(out, parent*ringSize)
		}
		for c := 0; c < treeArity; c++ { // links down to child ring heads
			child := ring*treeArity + 1 + c
			if child*ringSize < n {
				out = append(out, child*ringSize)
			}
		}
	}
	return out
}

// Diameter returns the longest shortest-path hop count over all node
// pairs (BFS from every node), or -1 when the topology is disconnected.
// It quantifies how many exchange rounds an improvement needs to reach
// the whole cluster.
func Diameter(k Kind, n int) int {
	if n <= 1 {
		return 0
	}
	adj := make([][]int, n)
	for id := 0; id < n; id++ {
		adj[id] = Neighbors(k, n, id)
	}
	diameter := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		reached := 1
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, o := range adj[cur] {
				if dist[o] < 0 {
					dist[o] = dist[cur] + 1
					if dist[o] > diameter {
						diameter = dist[o]
					}
					reached++
					queue = append(queue, o)
				}
			}
		}
		if reached != n {
			return -1
		}
	}
	return diameter
}

// Validate checks symmetry and connectivity of the topology for n nodes;
// the distributed algorithm relies on both so that improvements eventually
// reach every node.
func Validate(k Kind, n int) error {
	adj := make([][]int, n)
	for id := 0; id < n; id++ {
		adj[id] = Neighbors(k, n, id)
	}
	for id, ns := range adj {
		for _, o := range ns {
			if o < 0 || o >= n || o == id {
				return fmt.Errorf("topology: node %d has invalid neighbour %d", id, o)
			}
			found := false
			for _, back := range adj[o] {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("topology: edge %d->%d not symmetric", id, o)
			}
		}
	}
	if n == 0 {
		return nil
	}
	// BFS connectivity.
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, o := range adj[cur] {
			if !seen[o] {
				seen[o] = true
				count++
				queue = append(queue, o)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topology: %s with %d nodes is disconnected (%d reachable)", k, n, count)
	}
	return nil
}
