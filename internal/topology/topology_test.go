package topology

import (
	"sort"
	"testing"
)

func TestHypercubeEight(t *testing.T) {
	// The paper's setup: 8 nodes, 3-bit hypercube, 3 neighbours each.
	want := map[int][]int{
		0: {1, 2, 4},
		1: {0, 3, 5},
		2: {0, 3, 6},
		3: {1, 2, 7},
		4: {0, 5, 6},
		5: {1, 4, 7},
		6: {2, 4, 7},
		7: {3, 5, 6},
	}
	for id, w := range want {
		got := Neighbors(Hypercube, 8, id)
		sort.Ints(got)
		if len(got) != len(w) {
			t.Fatalf("node %d: neighbours %v, want %v", id, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("node %d: neighbours %v, want %v", id, got, w)
			}
		}
	}
}

func TestValidateAllKindsAndSizes(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete} {
		for n := 2; n <= 17; n++ {
			if err := Validate(k, n); err != nil {
				t.Errorf("%v n=%d: %v", k, n, err)
			}
		}
	}
}

func TestSingleNodeHasNoNeighbors(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete} {
		if got := Neighbors(k, 1, 0); len(got) != 0 {
			t.Errorf("%v: single node has neighbours %v", k, got)
		}
	}
}

func TestRingDegree(t *testing.T) {
	for n := 3; n <= 10; n++ {
		for id := 0; id < n; id++ {
			if got := Neighbors(Ring, n, id); len(got) != 2 {
				t.Errorf("ring n=%d node %d: degree %d, want 2", n, id, len(got))
			}
		}
	}
	// n=2 degenerates to a single edge, not a double edge.
	if got := Neighbors(Ring, 2, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ring n=2: %v, want [1]", got)
	}
}

func TestCompleteDegree(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for id := 0; id < n; id++ {
			if got := Neighbors(Complete, n, id); len(got) != n-1 {
				t.Errorf("complete n=%d node %d: degree %d", n, id, len(got))
			}
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete} {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("mesh-of-trees"); err == nil {
		t.Error("Parse accepted unknown topology")
	}
}

func TestHypercubeNonPowerOfTwoStaysConnected(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 11, 13} {
		if err := Validate(Hypercube, n); err != nil {
			t.Errorf("hypercube n=%d: %v", n, err)
		}
	}
}

// TestHypercubeDegradedExactAdjacency pins the exact neighbour sets of the
// degraded (non-power-of-two) hypercube — the shape simnet exercises at
// n=6 and n=12 — so a refactor cannot silently reroute the overlay.
func TestHypercubeDegradedExactAdjacency(t *testing.T) {
	cases := []struct {
		n    int
		want map[int][]int
	}{
		{6, map[int][]int{
			0: {1, 2, 4},
			1: {0, 3, 5},
			2: {0, 3},
			3: {1, 2},
			4: {0, 5},
			5: {1, 4},
		}},
		{12, map[int][]int{
			0:  {1, 2, 4, 8},
			3:  {1, 2, 7, 11},
			7:  {3, 5, 6},
			11: {3, 9, 10},
		}},
	}
	for _, c := range cases {
		for id, w := range c.want {
			got := Neighbors(Hypercube, c.n, id)
			sort.Ints(got)
			if len(got) != len(w) {
				t.Fatalf("n=%d node %d: neighbours %v, want %v", c.n, id, got, w)
			}
			for i := range w {
				if got[i] != w[i] {
					t.Fatalf("n=%d node %d: neighbours %v, want %v", c.n, id, got, w)
				}
			}
		}
	}
}

// TestHypercubeDegradedSymmetric: dropped links must be dropped on both
// ends, or the TCP contact-back handshake would wedge.
func TestHypercubeDegradedSymmetric(t *testing.T) {
	for n := 3; n <= 16; n++ {
		adj := make([]map[int]bool, n)
		for id := 0; id < n; id++ {
			adj[id] = map[int]bool{}
			for _, o := range Neighbors(Hypercube, n, id) {
				if o < 0 || o >= n {
					t.Fatalf("n=%d node %d: neighbour %d out of range", n, id, o)
				}
				adj[id][o] = true
			}
		}
		for id := 0; id < n; id++ {
			for o := range adj[id] {
				if !adj[o][id] {
					t.Fatalf("n=%d: edge %d->%d not symmetric", n, id, o)
				}
			}
		}
	}
}
