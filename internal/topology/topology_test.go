package topology

import (
	"sort"
	"testing"
)

func TestHypercubeEight(t *testing.T) {
	// The paper's setup: 8 nodes, 3-bit hypercube, 3 neighbours each.
	want := map[int][]int{
		0: {1, 2, 4},
		1: {0, 3, 5},
		2: {0, 3, 6},
		3: {1, 2, 7},
		4: {0, 5, 6},
		5: {1, 4, 7},
		6: {2, 4, 7},
		7: {3, 5, 6},
	}
	for id, w := range want {
		got := Neighbors(Hypercube, 8, id)
		sort.Ints(got)
		if len(got) != len(w) {
			t.Fatalf("node %d: neighbours %v, want %v", id, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("node %d: neighbours %v, want %v", id, got, w)
			}
		}
	}
}

func TestValidateAllKindsAndSizes(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete, HierHypercube, TreeOfRings} {
		for n := 2; n <= 33; n++ {
			if err := Validate(k, n); err != nil {
				t.Errorf("%v n=%d: %v", k, n, err)
			}
		}
	}
}

// TestValidateAtScale: the hierarchical topologies exist for 512–4096
// node clusters; symmetry and connectivity must hold there too,
// including awkward non-power-of-two and non-multiple-of-ring sizes.
func TestValidateAtScale(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, HierHypercube, TreeOfRings} {
		for _, n := range []int{256, 513, 1024, 4096} {
			if err := Validate(k, n); err != nil {
				t.Errorf("%v n=%d: %v", k, n, err)
			}
		}
	}
}

func TestSingleNodeHasNoNeighbors(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete, HierHypercube, TreeOfRings} {
		if got := Neighbors(k, 1, 0); len(got) != 0 {
			t.Errorf("%v: single node has neighbours %v", k, got)
		}
	}
}

func TestRingDegree(t *testing.T) {
	for n := 3; n <= 10; n++ {
		for id := 0; id < n; id++ {
			if got := Neighbors(Ring, n, id); len(got) != 2 {
				t.Errorf("ring n=%d node %d: degree %d, want 2", n, id, len(got))
			}
		}
	}
	// n=2 degenerates to a single edge, not a double edge.
	if got := Neighbors(Ring, 2, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ring n=2: %v, want [1]", got)
	}
}

func TestCompleteDegree(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for id := 0; id < n; id++ {
			if got := Neighbors(Complete, n, id); len(got) != n-1 {
				t.Errorf("complete n=%d node %d: degree %d", n, id, len(got))
			}
		}
	}
}

// TestHierHypercubeAdjacency pins the exact 64-node shape: 6 address
// bits split 3 local + 3 group; everyone flips local bits, only gateways
// (local id 0) flip group bits.
func TestHierHypercubeAdjacency(t *testing.T) {
	want := map[int][]int{
		0:  {1, 2, 4, 8, 16, 32}, // gateway of group 0
		5:  {1, 4, 7},            // interior node: local links only
		8:  {0, 9, 10, 12, 24, 40},
		63: {59, 61, 62},
	}
	for id, w := range want {
		got := Neighbors(HierHypercube, 64, id)
		sort.Ints(got)
		if !equalInts(got, w) {
			t.Errorf("node %d: neighbours %v, want %v", id, got, w)
		}
	}
}

// TestTreeOfRingsAdjacency pins the 20-node shape: two full rings of 8
// plus a partial ring of 4, tree arity 4.
func TestTreeOfRingsAdjacency(t *testing.T) {
	want := map[int][]int{
		0:  {1, 7, 8, 16}, // root head: ring edges + child heads 8, 16
		8:  {0, 9, 15},    // ring-1 head: parent head + ring edges
		16: {0, 17, 19},   // partial-ring head
		19: {16, 18},      // partial-ring interior wraps mod 4
		3:  {2, 4},        // plain ring member
	}
	for id, w := range want {
		got := Neighbors(TreeOfRings, 20, id)
		sort.Ints(got)
		if !equalInts(got, w) {
			t.Errorf("node %d: neighbours %v, want %v", id, got, w)
		}
	}
	// Degenerate tails: a 2-member ring is a single edge plus the uplink;
	// a 1-member ring hangs off its parent alone.
	if got := Neighbors(TreeOfRings, 18, 16); !equalSorted(got, []int{0, 17}) {
		t.Errorf("n=18 node 16: %v, want [0 17]", got)
	}
	if got := Neighbors(TreeOfRings, 17, 16); !equalSorted(got, []int{0}) {
		t.Errorf("n=17 node 16: %v, want [0]", got)
	}
}

// TestDiameter pins hop diameters at 64 nodes: the scaling experiment
// reports these, and they encode the topology trade-off (flat hypercube
// shortest, ring longest, hierarchical kinds in between with lower
// degree).
func TestDiameter(t *testing.T) {
	cases := []struct {
		k    Kind
		n    int
		want int
	}{
		{Hypercube, 64, 6},
		{Ring, 64, 32},
		{Complete, 64, 1},
		{HierHypercube, 64, 9},
		{TreeOfRings, 64, 11},
		{Hypercube, 1, 0},
	}
	for _, c := range cases {
		if got := Diameter(c.k, c.n); got != c.want {
			t.Errorf("Diameter(%v, %d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

// TestHierDegreeStaysFlat: the point of the hierarchical kinds is
// bounded fan-out at large n — interior nodes must not grow with n.
func TestHierDegreeStaysFlat(t *testing.T) {
	for _, n := range []int{1024, 4096} {
		for id := 0; id < n; id++ {
			if d := len(Neighbors(TreeOfRings, n, id)); d > 2+treeArity+1 {
				t.Fatalf("tree-of-rings n=%d node %d: degree %d", n, id, d)
			}
		}
		// Non-gateway hier-hypercube nodes carry only the local half.
		lbits := 0
		for 1<<uint(lbits+lbits) < n {
			lbits++
		}
		for id := 0; id < n; id++ {
			if id%(1<<uint(lbits)) == 0 {
				continue
			}
			if d := len(Neighbors(HierHypercube, n, id)); d > lbits {
				t.Fatalf("hier-hypercube n=%d node %d: degree %d > %d", n, id, d, lbits)
			}
		}
	}
}

func equalInts(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func equalSorted(got, want []int) bool {
	g := append([]int(nil), got...)
	sort.Ints(g)
	return equalInts(g, want)
}

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{Hypercube, Ring, Grid, Complete, HierHypercube, TreeOfRings} {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("mesh-of-trees"); err == nil {
		t.Error("Parse accepted unknown topology")
	}
}

func TestHypercubeNonPowerOfTwoStaysConnected(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 11, 13} {
		if err := Validate(Hypercube, n); err != nil {
			t.Errorf("hypercube n=%d: %v", n, err)
		}
	}
}

// TestHypercubeDegradedExactAdjacency pins the exact neighbour sets of the
// degraded (non-power-of-two) hypercube — the shape simnet exercises at
// n=6 and n=12 — so a refactor cannot silently reroute the overlay.
func TestHypercubeDegradedExactAdjacency(t *testing.T) {
	cases := []struct {
		n    int
		want map[int][]int
	}{
		{6, map[int][]int{
			0: {1, 2, 4},
			1: {0, 3, 5},
			2: {0, 3},
			3: {1, 2},
			4: {0, 5},
			5: {1, 4},
		}},
		{12, map[int][]int{
			0:  {1, 2, 4, 8},
			3:  {1, 2, 7, 11},
			7:  {3, 5, 6},
			11: {3, 9, 10},
		}},
	}
	for _, c := range cases {
		for id, w := range c.want {
			got := Neighbors(Hypercube, c.n, id)
			sort.Ints(got)
			if len(got) != len(w) {
				t.Fatalf("n=%d node %d: neighbours %v, want %v", c.n, id, got, w)
			}
			for i := range w {
				if got[i] != w[i] {
					t.Fatalf("n=%d node %d: neighbours %v, want %v", c.n, id, got, w)
				}
			}
		}
	}
}

// TestHypercubeDegradedSymmetric: dropped links must be dropped on both
// ends, or the TCP contact-back handshake would wedge.
func TestHypercubeDegradedSymmetric(t *testing.T) {
	for n := 3; n <= 16; n++ {
		adj := make([]map[int]bool, n)
		for id := 0; id < n; id++ {
			adj[id] = map[int]bool{}
			for _, o := range Neighbors(Hypercube, n, id) {
				if o < 0 || o >= n {
					t.Fatalf("n=%d node %d: neighbour %d out of range", n, id, o)
				}
				adj[id][o] = true
			}
		}
		for id := 0; id < n; id++ {
			for o := range adj[id] {
				if !adj[o][id] {
					t.Fatalf("n=%d: edge %d->%d not symmetric", n, id, o)
				}
			}
		}
	}
}
