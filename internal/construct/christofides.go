package construct

import (
	"sort"

	"distclk/internal/tsp"
)

// christofides builds a tour with the Christofides skeleton the paper's
// §2.1 compares Quick-Borůvka against: minimum spanning tree, a matching
// on the odd-degree vertices, an Euler tour of the union, and shortcutting
// repeated cities. The matching is greedy (nearest unmatched odd vertex)
// rather than minimum-weight-perfect — the classic engineering compromise
// (exact blossom matching is O(n^3)); the tour quality stays within a few
// percent of true Christofides on geometric instances.
func christofides(in *tsp.Instance) tsp.Tour {
	n := in.N()
	if n < 3 {
		return tsp.IdentityTour(n)
	}
	dist := in.DistFunc()

	// Prim's MST over the complete graph, O(n^2).
	const unreached = int64(1) << 62
	parent := make([]int32, n)
	best := make([]int64, n)
	inTree := make([]bool, n)
	for i := range best {
		best[i] = unreached
		parent[i] = -1
	}
	inTree[0] = true
	cur := int32(0)
	adj := make([][]int32, n)
	for added := 1; added < n; added++ {
		for j := int32(0); j < int32(n); j++ {
			if inTree[j] {
				continue
			}
			if d := dist(cur, j); d < best[j] {
				best[j] = d
				parent[j] = cur
			}
		}
		next := int32(-1)
		nb := unreached
		for j := int32(0); j < int32(n); j++ {
			if !inTree[j] && best[j] < nb {
				nb = best[j]
				next = j
			}
		}
		inTree[next] = true
		adj[next] = append(adj[next], parent[next])
		adj[parent[next]] = append(adj[parent[next]], next)
		cur = next
	}

	// Odd-degree vertices, matched greedily by increasing pair distance.
	var odd []int32
	for c := int32(0); c < int32(n); c++ {
		if len(adj[c])%2 == 1 {
			odd = append(odd, c)
		}
	}
	type pair struct {
		d    int64
		a, b int32
	}
	pairs := make([]pair, 0, len(odd)*(len(odd)-1)/2)
	for i := 0; i < len(odd); i++ {
		for j := i + 1; j < len(odd); j++ {
			pairs = append(pairs, pair{dist(odd[i], odd[j]), odd[i], odd[j]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	matched := make(map[int32]bool, len(odd))
	for _, p := range pairs {
		if !matched[p.a] && !matched[p.b] {
			matched[p.a], matched[p.b] = true, true
			adj[p.a] = append(adj[p.a], p.b)
			adj[p.b] = append(adj[p.b], p.a)
		}
	}

	// Euler tour of the MST+matching multigraph (all degrees now even),
	// via Hierholzer's algorithm.
	next := make([]int, n) // per-vertex cursor into adj
	stack := []int32{0}
	var euler []int32
	// Track used edge endpoints as multiset counts.
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if next[v] < len(adj[v]) {
			u := adj[v][next[v]]
			next[v]++
			if u < 0 {
				continue // edge consumed from the other side
			}
			// Consume the reverse copy: find one unused entry u->v.
			for k := next[u]; k < len(adj[u]); k++ {
				if adj[u][k] == v {
					adj[u][k] = -1
					break
				}
			}
			stack = append(stack, u)
		} else {
			euler = append(euler, v)
			stack = stack[:len(stack)-1]
		}
	}

	// Shortcut repeated cities.
	seen := make([]bool, n)
	tour := make(tsp.Tour, 0, n)
	for _, c := range euler {
		if !seen[c] {
			seen[c] = true
			tour = append(tour, c)
		}
	}
	// Guard: if the multigraph was disconnected (cannot happen for an
	// MST-based graph, but stay safe), append missed cities.
	for c := int32(0); c < int32(n); c++ {
		if !seen[c] {
			tour = append(tour, c)
		}
	}
	return tour
}
