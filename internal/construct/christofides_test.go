package construct

import (
	"math/rand"
	"testing"

	"distclk/internal/exact"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func TestChristofidesValid(t *testing.T) {
	for _, n := range []int{3, 10, 77, 400} {
		in := tsp.Generate(tsp.FamilyUniform, n, int64(n))
		tour := Build(Christofides, in, nil, nil)
		if err := tour.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestChristofidesQuality(t *testing.T) {
	// Greedy-matching Christofides should clearly beat space-filling and
	// random, and land in the same league as greedy edge insertion.
	in := tsp.Generate(tsp.FamilyUniform, 600, 3)
	nbr := neighbor.Build(in, 10)
	rng := rand.New(rand.NewSource(5))
	chr := Build(Christofides, in, nil, nil).Length(in)
	sf := Build(SpaceFilling, in, nil, nil).Length(in)
	gr := Build(Greedy, in, nbr, rng).Length(in)
	if chr >= sf {
		t.Errorf("christofides %d not better than space-filling %d", chr, sf)
	}
	if float64(chr) > float64(gr)*1.15 {
		t.Errorf("christofides %d far worse than greedy %d", chr, gr)
	}
}

func TestChristofidesWithinApproximationBand(t *testing.T) {
	// True Christofides guarantees 1.5x optimum; the greedy-matching
	// variant loses the proof but should stay well under 1.6x on small
	// instances where we can compute the optimum.
	for seed := int64(1); seed <= 6; seed++ {
		in := tsp.Generate(tsp.FamilyUniform, 12, seed)
		_, opt, err := exact.HeldKarp(in)
		if err != nil {
			t.Fatal(err)
		}
		got := Build(Christofides, in, nil, nil).Length(in)
		if float64(got) > 1.6*float64(opt) {
			t.Errorf("seed %d: christofides %d vs optimum %d (ratio %.2f)",
				seed, got, opt, float64(got)/float64(opt))
		}
	}
}

func TestChristofidesClusteredAndDrill(t *testing.T) {
	for _, fam := range []tsp.Family{tsp.FamilyClustered, tsp.FamilyDrill} {
		in := tsp.Generate(fam, 300, 9)
		tour := Build(Christofides, in, nil, nil)
		if err := tour.Validate(300); err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
	}
}
