package construct

import (
	"math/rand"
	"testing"

	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

var allMethods = []Method{QuickBoruvka, Greedy, NearestNeighbor, SpaceFilling, Random}

func TestAllMethodsProduceValidTours(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fam := range []tsp.Family{tsp.FamilyUniform, tsp.FamilyClustered, tsp.FamilyDrill} {
		for _, n := range []int{5, 37, 200} {
			in := tsp.Generate(fam, n, int64(n))
			nbr := neighbor.Build(in, 8)
			for _, m := range allMethods {
				tour := Build(m, in, nbr, rng)
				if err := tour.Validate(n); err != nil {
					t.Fatalf("%v on %v n=%d: %v", m, fam, n, err)
				}
			}
		}
	}
}

func TestConstructionQualityOrdering(t *testing.T) {
	// Sanity: every heuristic beats random by a wide margin; greedy and
	// quick-Borůvka beat space-filling.
	in := tsp.Generate(tsp.FamilyUniform, 600, 3)
	nbr := neighbor.Build(in, 10)
	rng := rand.New(rand.NewSource(5))
	lengths := map[Method]int64{}
	for _, m := range allMethods {
		lengths[m] = Build(m, in, nbr, rng).Length(in)
	}
	for _, m := range []Method{QuickBoruvka, Greedy, NearestNeighbor, SpaceFilling} {
		if lengths[m]*2 > lengths[Random] {
			t.Errorf("%v (%d) not far below random (%d)", m, lengths[m], lengths[Random])
		}
	}
	for _, m := range []Method{QuickBoruvka, Greedy} {
		if lengths[m] > lengths[SpaceFilling] {
			t.Errorf("%v (%d) worse than space-filling (%d)", m, lengths[m], lengths[SpaceFilling])
		}
	}
}

func TestQuickBoruvkaDeterministic(t *testing.T) {
	in := tsp.Generate(tsp.FamilyGrid, 300, 7)
	nbr := neighbor.Build(in, 8)
	a := Build(QuickBoruvka, in, nbr, nil)
	b := Build(QuickBoruvka, in, nbr, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("quick-Borůvka not deterministic")
		}
	}
}

func TestExplicitInstanceConstruction(t *testing.T) {
	m := []int64{
		0, 1, 9, 9,
		1, 0, 1, 9,
		9, 1, 0, 1,
		9, 9, 1, 0,
	}
	in, err := tsp.NewExplicit("p4", 4, m)
	if err != nil {
		t.Fatal(err)
	}
	nbr := neighbor.Build(in, 3)
	for _, meth := range allMethods {
		tour := Build(meth, in, nbr, rand.New(rand.NewSource(1)))
		if err := tour.Validate(4); err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
	}
	// Greedy should find the path-like optimum 0-1-2-3 (length 1+1+1+9=12).
	g := Build(Greedy, in, nbr, nil)
	if got := g.Length(in); got != 12 {
		t.Errorf("greedy on path metric: %d, want 12", got)
	}
}

func TestNearestNeighborStartsAtRandomCity(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 100, 9)
	seen := map[int32]bool{}
	for s := int64(0); s < 10; s++ {
		tour := Build(NearestNeighbor, in, nil, rand.New(rand.NewSource(s)))
		seen[tour[0]] = true
	}
	if len(seen) < 3 {
		t.Errorf("NN start city not randomized: %d distinct starts", len(seen))
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range allMethods {
		if m.String() == "unknown" {
			t.Errorf("method %d unnamed", m)
		}
	}
}

func TestFragmentSetStitchesDegenerate(t *testing.T) {
	// Tiny instances exercise the fragment-closing fallbacks.
	for n := 3; n <= 6; n++ {
		in := tsp.Generate(tsp.FamilyUniform, n, int64(n))
		nbr := neighbor.Build(in, 2)
		tour := Build(QuickBoruvka, in, nbr, nil)
		if err := tour.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
