package construct

import (
	"math/rand"
	"sort"

	"distclk/internal/geom"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Method selects a construction heuristic.
type Method int

const (
	// QuickBoruvka is the matching-pass constructor from Applegate et al.
	QuickBoruvka Method = iota
	// Greedy inserts candidate edges globally by increasing weight.
	Greedy
	// NearestNeighbor grows the tour by repeatedly visiting the nearest
	// unvisited city.
	NearestNeighbor
	// SpaceFilling orders cities along a Hilbert curve.
	SpaceFilling
	// Random returns a uniformly random permutation.
	Random
	// Christofides is MST + greedy odd-vertex matching + Euler shortcut,
	// the constructor the paper's §2.1 compares Quick-Borůvka against
	// (there seeded with Held-Karp weights; see christofides.go).
	Christofides
)

// String names the method.
func (m Method) String() string {
	switch m {
	case QuickBoruvka:
		return "quick-boruvka"
	case Greedy:
		return "greedy"
	case NearestNeighbor:
		return "nearest-neighbor"
	case SpaceFilling:
		return "space-filling"
	case Random:
		return "random"
	case Christofides:
		return "christofides"
	}
	return "unknown"
}

// Build constructs a tour with the selected method. nbr supplies candidate
// edges for QuickBoruvka and Greedy (it may be nil, in which case lists with
// k=8 are built internally). rng drives tie-breaking and Random.
func Build(m Method, in *tsp.Instance, nbr *neighbor.Lists, rng *rand.Rand) tsp.Tour {
	switch m {
	case QuickBoruvka:
		return quickBoruvka(in, need(in, nbr))
	case Greedy:
		return greedy(in, need(in, nbr))
	case NearestNeighbor:
		start := int32(0)
		if rng != nil {
			start = int32(rng.Intn(in.N()))
		}
		return nearestNeighbor(in, start)
	case SpaceFilling:
		return spaceFilling(in)
	case Random:
		return randomTour(in.N(), rng)
	case Christofides:
		return christofides(in)
	}
	//lint:ignore nopanic Method is a closed enum; a value outside it is a programming error with no recovery, and Build's signature has no error path
	panic("construct: unknown method")
}

func need(in *tsp.Instance, nbr *neighbor.Lists) *neighbor.Lists {
	if nbr != nil {
		return nbr
	}
	return neighbor.Build(in, 8)
}

// fragmentSet tracks a partial 2-matching: per-city degree, the two tour
// neighbours chosen so far, and a union-find over path fragments.
type fragmentSet struct {
	deg    []uint8
	adj    [][2]int32
	parent []int32
}

func newFragmentSet(n int) *fragmentSet {
	f := &fragmentSet{
		deg:    make([]uint8, n),
		adj:    make([][2]int32, n),
		parent: make([]int32, n),
	}
	for i := range f.parent {
		f.parent[i] = int32(i)
		f.adj[i] = [2]int32{-1, -1}
	}
	return f
}

func (f *fragmentSet) find(x int32) int32 {
	for f.parent[x] != x {
		f.parent[x] = f.parent[f.parent[x]]
		x = f.parent[x]
	}
	return x
}

// canAdd reports whether edge (a,b) keeps the structure a set of paths.
func (f *fragmentSet) canAdd(a, b int32) bool {
	return a != b && f.deg[a] < 2 && f.deg[b] < 2 && f.find(a) != f.find(b)
}

func (f *fragmentSet) add(a, b int32) {
	f.adj[a][f.deg[a]] = b
	f.adj[b][f.deg[b]] = a
	f.deg[a]++
	f.deg[b]++
	f.parent[f.find(a)] = f.find(b)
}

// close stitches remaining path fragments (and isolated cities) into a
// single cycle, connecting nearest endpoints greedily, then emits the tour.
func (f *fragmentSet) close(in *tsp.Instance) tsp.Tour {
	n := len(f.deg)
	dist := in.DistFunc()
	// Endpoints are cities with degree < 2 (degree-0 cities count twice,
	// conceptually a path of one vertex).
	for {
		var ends []int32
		for c := int32(0); c < int32(n); c++ {
			if f.deg[c] < 2 {
				ends = append(ends, c)
			}
		}
		if len(ends) == 0 {
			break
		}
		if len(ends) == 2 && f.find(ends[0]) == f.find(ends[1]) {
			// Single open path: close the cycle.
			f.adj[ends[0]][f.deg[ends[0]]] = ends[1]
			f.adj[ends[1]][f.deg[ends[1]]] = ends[0]
			f.deg[ends[0]]++
			f.deg[ends[1]]++
			break
		}
		// Connect the first endpoint to the nearest endpoint of a
		// different fragment.
		a := ends[0]
		var best int32 = -1
		var bestD int64
		for _, b := range ends[1:] {
			if !f.canAdd(a, b) {
				continue
			}
			d := dist(a, b)
			if best < 0 || d < bestD {
				best, bestD = b, d
			}
		}
		if best < 0 {
			// a's fragment is the only one left but has >2 endpoints —
			// impossible for paths; guard anyway.
			break
		}
		f.add(a, best)
	}
	// Walk the adjacency into a tour.
	tour := make(tsp.Tour, 0, n)
	visited := make([]bool, n)
	cur, prev := int32(0), int32(-1)
	for len(tour) < n {
		tour = append(tour, cur)
		visited[cur] = true
		next := f.adj[cur][0]
		if next == prev || next < 0 || visited[next] {
			next = f.adj[cur][1]
		}
		if next < 0 || visited[next] {
			// Disconnected guard: jump to any unvisited city.
			next = -1
			for c := int32(0); c < int32(n); c++ {
				if !visited[c] {
					next = c
					break
				}
			}
			if next < 0 {
				break
			}
		}
		prev, cur = cur, next
	}
	return tour
}

// quickBoruvka implements the constructor from Applegate, Cook & Rohe:
// process cities in coordinate-sorted order; for each city with fewer than
// two incident tour edges, add its cheapest valid candidate edge. At most
// two passes are needed; leftovers are stitched.
func quickBoruvka(in *tsp.Instance, nbr *neighbor.Lists) tsp.Tour {
	n := in.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if !in.Explicit() {
		pts := in.Pts
		sort.Slice(order, func(i, j int) bool {
			a, b := pts[order[i]], pts[order[j]]
			if a.X != b.X {
				return a.X < b.X
			}
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return order[i] < order[j]
		})
	}
	f := newFragmentSet(n)
	for pass := 0; pass < 2; pass++ {
		for _, c := range order {
			for f.deg[c] < 2 {
				// Candidates are pre-sorted by distance, so the first
				// addable one is the cheapest — no metric calls needed.
				var best int32 = -1
				for _, o := range nbr.Of(c) {
					if f.canAdd(c, o) {
						best = o
						break
					}
				}
				if best < 0 {
					break
				}
				f.add(c, best)
			}
		}
	}
	return f.close(in)
}

// greedy sorts all candidate edges by weight and adds each edge that keeps
// the structure a set of paths.
func greedy(in *tsp.Instance, nbr *neighbor.Lists) tsp.Tour {
	n := in.N()
	type edge struct {
		d    int64
		a, b int32
	}
	edges := make([]edge, 0, n*nbr.K()/2)
	for c := int32(0); c < int32(n); c++ {
		cand, cd := nbr.Cand(c)
		for i, o := range cand {
			if c < o {
				edges = append(edges, edge{cd[i], c, o})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].d != edges[j].d {
			return edges[i].d < edges[j].d
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	f := newFragmentSet(n)
	for _, e := range edges {
		if f.canAdd(e.a, e.b) {
			f.add(e.a, e.b)
		}
	}
	return f.close(in)
}

func nearestNeighbor(in *tsp.Instance, start int32) tsp.Tour {
	n := in.N()
	if in.Explicit() {
		return nearestNeighborBrute(in, start)
	}
	tree := geom.NewKDTree(in.Pts)
	visited := make([]bool, n)
	tour := make(tsp.Tour, 0, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < n {
		next := int32(-1)
		for k := 8; ; k *= 2 {
			if k > n-1 {
				k = n - 1
			}
			for _, c := range tree.KNearest(in.Pts[cur], k, int(cur)) {
				if !visited[c] {
					next = c
					break
				}
			}
			if next >= 0 || k == n-1 {
				break
			}
		}
		if next < 0 {
			break
		}
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	return tour
}

func nearestNeighborBrute(in *tsp.Instance, start int32) tsp.Tour {
	n := in.N()
	dist := in.DistFunc()
	visited := make([]bool, n)
	tour := make(tsp.Tour, 0, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < n {
		next, bestD := int32(-1), int64(0)
		for c := int32(0); c < int32(n); c++ {
			if visited[c] {
				continue
			}
			d := dist(cur, c)
			if next < 0 || d < bestD {
				next, bestD = c, d
			}
		}
		if next < 0 {
			break
		}
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	return tour
}

func spaceFilling(in *tsp.Instance) tsp.Tour {
	n := in.N()
	tour := tsp.IdentityTour(n)
	if in.Explicit() {
		return tour
	}
	keys := geom.HilbertKeys(in.Pts)
	sort.Slice(tour, func(i, j int) bool {
		if keys[tour[i]] != keys[tour[j]] {
			return keys[tour[i]] < keys[tour[j]]
		}
		return tour[i] < tour[j]
	})
	return tour
}

func randomTour(n int, rng *rand.Rand) tsp.Tour {
	tour := tsp.IdentityTour(n)
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
	return tour
}
