// Package construct provides tour construction heuristics: Quick-Borůvka
// (the constructor used by Concorde's linkern and by the paper's CLK, §2.1),
// greedy edge matching, nearest neighbour, space-filling curve, and random
// tours. All constructors are deterministic for a fixed (instance, seed)
// and return a valid permutation; the EA's restart path (§4.2) re-invokes
// them to rebuild search state after stagnation.
package construct
