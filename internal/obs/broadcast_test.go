package obs

import (
	"sync"
	"testing"
)

func TestBroadcasterDeliversToAllSubscribers(t *testing.T) {
	b := NewBroadcaster()
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	for i := 0; i < 3; i++ {
		b.Emit(Event{Kind: KindImprove, Value: int64(i)})
	}
	b.Close()
	for name, s := range map[string]*Subscription{"s1": s1, "s2": s2} {
		var got []int64
		for e := range s.Events() {
			got = append(got, e.Value)
		}
		if len(got) != 3 {
			t.Fatalf("%s: got %d events, want 3", name, len(got))
		}
	}
	if b.Dropped() != 0 {
		t.Fatalf("dropped %d events on roomy buffers", b.Dropped())
	}
}

// A full subscriber loses events (counted) without blocking Emit or
// affecting other subscribers.
func TestBroadcasterDropsOnFullBufferWithoutBlocking(t *testing.T) {
	b := NewBroadcaster()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Emit(Event{Value: int64(i)}) // would deadlock here if Emit blocked
	}
	if d := slow.Dropped(); d != 9 {
		t.Fatalf("slow subscriber dropped %d, want 9", d)
	}
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", d)
	}
	if d := b.Dropped(); d != 9 {
		t.Fatalf("broadcaster total dropped %d, want 9", d)
	}
	b.Close()
	n := 0
	for range fast.Events() {
		n++
	}
	if n != 10 {
		t.Fatalf("fast subscriber received %d, want 10", n)
	}
}

// Cancel mid-stream detaches the subscriber; concurrent Emits must not
// panic (send-on-closed) or deadlock.
func TestBroadcasterCancelDuringEmit(t *testing.T) {
	b := NewBroadcaster()
	subs := make([]*Subscription, 8)
	for i := range subs {
		subs[i] = b.Subscribe(2)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			b.Emit(Event{Value: int64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for _, s := range subs {
			s.Cancel()
			s.Cancel() // idempotent
		}
	}()
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers still attached after cancel", n)
	}
	b.Close()
}

func TestBroadcasterSubscribeAfterCloseIsClosed(t *testing.T) {
	b := NewBroadcaster()
	b.Close()
	b.Close() // idempotent
	s := b.Subscribe(1)
	if _, ok := <-s.Events(); ok {
		t.Fatalf("subscription after Close delivered an event")
	}
	s.Cancel()                // still safe
	b.Emit(Event{Value: 1})   // no-op
	if b.Subscribers() != 0 { // nothing attached
		t.Fatalf("closed broadcaster has subscribers")
	}
}

// Broadcaster is a Sink: it composes with Filter.
func TestBroadcasterAsFilteredSink(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(8)
	var sink Sink = Filter(b, func(k Kind) bool { return k == KindImprove })
	sink.Emit(Event{Kind: KindImprove, Value: 42})
	sink.Emit(Event{Kind: KindKickAccepted, Value: 1})
	b.Close()
	var got []Event
	for e := range s.Events() {
		got = append(got, e)
	}
	if len(got) != 1 || got[0].Value != 42 {
		t.Fatalf("filtered broadcast got %+v, want one improve event", got)
	}
}
