package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindNamesAndLevels(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
	for _, k := range []Kind{KindKickAccepted, KindKickReverted, KindLKImprove, KindPerturb} {
		if k.EALevel() {
			t.Fatalf("%v must be kick-level", k)
		}
	}
	for _, k := range []Kind{KindImprove, KindImproveReceived, KindRestart, KindBroadcastSent, KindSnapshot} {
		if !k.EALevel() {
			t.Fatalf("%v must be EA-level", k)
		}
	}
}

func TestMemorySink(t *testing.T) {
	m := NewMemorySink()
	m.Emit(Event{Kind: KindRestart, Node: 1})
	m.Emit(Event{Kind: KindImprove, Node: 2, Value: 42})
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	events := m.Events()
	events[0].Node = 99 // must not alias internal storage
	if m.Events()[0].Node != 1 {
		t.Fatal("Events() returned aliased slice")
	}
}

func TestRingSinkEvicts(t *testing.T) {
	r := NewRingSink(3)
	for i := int64(0); i < 7; i++ {
		r.Emit(Event{Value: i})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Value != int64(4+i) {
			t.Fatalf("ring[%d] = %d, want %d (oldest first)", i, e.Value, 4+i)
		}
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d, want 7", r.Total())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLSink(&buf)
	j.Emit(Event{At: 1500 * time.Microsecond, Node: 3, Kind: KindBroadcastSent, Value: 8042, From: -1})
	j.Emit(Event{At: 2 * time.Millisecond, Node: 1, Kind: KindImproveReceived, Value: 8000, From: 3})
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "broadcast-sent" || lines[0]["at_ms"] != 1.5 {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if _, hasFrom := lines[0]["from"]; hasFrom {
		t.Fatal("from must be omitted when -1")
	}
	if lines[1]["from"] != float64(3) {
		t.Fatalf("line 1 from = %v, want 3", lines[1]["from"])
	}
}

func TestFilterAndMulti(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	s := Multi(Filter(a, Kind.EALevel), b)
	s.Emit(Event{Kind: KindKickAccepted})
	s.Emit(Event{Kind: KindRestart})
	if a.Len() != 1 {
		t.Fatalf("filtered sink got %d events, want 1", a.Len())
	}
	if b.Len() != 2 {
		t.Fatalf("unfiltered sink got %d events, want 2", b.Len())
	}
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Fatal("empty Multi must collapse to Nop")
	}
	if Multi(a) != Sink(a) {
		t.Fatal("single-sink Multi must collapse to the sink itself")
	}
}

func TestRecorderCountersAndBest(t *testing.T) {
	sink := NewMemorySink()
	r := NewRecorder(2, sink)
	r.SetBest(100)
	r.KickAccepted(95)
	r.KickReverted()
	r.LKImprove(90)
	r.Perturb(3)
	r.PerturbLevel(2)
	r.Restart()
	r.BroadcastSent(90)
	r.BroadcastReceived(88, 1)
	r.ImproveReceived(88, 1)
	r.Improve(85)
	r.Optimum(85)

	s := r.Snapshot()
	if s.Node != 2 || s.Kicks != 2 || s.KickAccepts != 1 || s.Improvements != 1 ||
		s.Perturbations != 3 || s.Restarts != 1 || s.BroadcastsSent != 1 ||
		s.BroadcastsReceived != 1 || s.BroadcastsAccepted != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.BestLength != 85 {
		t.Fatalf("best = %d, want 85", s.BestLength)
	}
	r.SetBest(200) // worse: must not raise best
	if r.Best() != 85 {
		t.Fatalf("best raised to %d", r.Best())
	}
	events := sink.Events()
	if len(events) != 11 {
		t.Fatalf("emitted %d events, want 11", len(events))
	}
	for _, e := range events {
		if e.Node != 2 {
			t.Fatalf("event node = %d, want 2", e.Node)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.KickAccepted(1)
	r.KickReverted()
	r.LKImprove(1)
	r.Improve(1)
	r.ImproveReceived(1, 0)
	r.Perturb(1)
	r.PerturbLevel(1)
	r.Restart()
	r.BroadcastSent(1)
	r.BroadcastReceived(1, 0)
	r.Optimum(1)
	r.SetBest(1)
	if r.Best() != 0 || r.Elapsed() != 0 {
		t.Fatal("nil recorder must read as zero")
	}
	if r.Snapshot().Node != -1 {
		t.Fatal("nil recorder snapshot must be node -1")
	}
}

func TestObserverCollectsAcrossNodes(t *testing.T) {
	extra := NewMemorySink()
	o := NewObserver(3, extra)
	o.Recorder(0).KickAccepted(50) // kick-level: extra only
	o.Recorder(0).Improve(50)
	o.Recorder(1).ImproveReceived(50, 0)
	o.Recorder(2).Restart()

	events := o.Events()
	if len(events) != 3 {
		t.Fatalf("collector has %d events, want 3 (kick-level excluded)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events not sorted by offset")
		}
	}
	if extra.Len() != 4 {
		t.Fatalf("extra sink got %d events, want all 4", extra.Len())
	}
	if o.BestLength() != 50 {
		t.Fatalf("best = %d, want 50", o.BestLength())
	}
	counters := o.Counters()
	if len(counters) != 3 || counters[1].BroadcastsAccepted != 1 {
		t.Fatalf("counters = %+v", counters)
	}
	if best := o.Snapshot(); best != 50 {
		t.Fatalf("snapshot best = %d, want 50", best)
	}
	snaps := 0
	for _, e := range o.Events() {
		if e.Kind == KindSnapshot {
			snaps++
			if e.Node != -1 {
				t.Fatalf("snapshot node = %d, want -1", e.Node)
			}
		}
	}
	if snaps != 1 {
		t.Fatalf("found %d snapshot events, want 1", snaps)
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.Recorder(0) != nil {
		t.Fatal("nil observer must hand out nil recorders")
	}
	if o.Nodes() != 0 || o.BestLength() != 0 || o.Snapshot() != 0 {
		t.Fatal("nil observer must read as zero")
	}
	if o.Events() != nil || o.Counters() != nil {
		t.Fatal("nil observer must return nil slices")
	}
}

// TestConcurrentRecorders exercises the layer the way a cluster does: many
// node goroutines hammering recorders that share one collector. Run under
// -race this validates the locking story.
func TestConcurrentRecorders(t *testing.T) {
	o := NewObserver(8, NewRingSink(64))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(r *Recorder) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.KickAccepted(int64(1000 - j))
				r.LKImprove(int64(1000 - j))
				if j%100 == 0 {
					r.BroadcastSent(int64(1000 - j))
				}
			}
		}(o.Recorder(i))
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() { // concurrent reader, as a metrics endpoint would be
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				o.BestLength()
				o.Counters()
				o.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	for _, s := range o.Counters() {
		if s.Kicks != 1000 || s.Improvements != 1000 || s.BroadcastsSent != 10 {
			t.Fatalf("counters lost updates: %+v", s)
		}
	}
	if o.BestLength() != 1 {
		t.Fatalf("best = %d, want 1", o.BestLength())
	}
}

func TestMetricsHandler(t *testing.T) {
	o := NewObserver(2, nil)
	o.Recorder(0).Improve(77)
	h := MetricsHandler(func() any { return o.Counters() })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got []CounterSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].BestLength != 77 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestNetworkKindsAreNamedAndEALevel(t *testing.T) {
	kinds := []Kind{
		KindMsgDropped, KindMsgDelivered, KindMsgDuplicated,
		KindPartitionStart, KindPartitionHeal, KindNodeCrash, KindNodeRestart,
	}
	for _, k := range kinds {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
		// Network faults are rare relative to kicks; they belong in the
		// collected EA-level stream.
		if !k.EALevel() {
			t.Fatalf("%v must be EA-level", k)
		}
	}
}

func TestRecorderMsgDropAccounting(t *testing.T) {
	sink := NewMemorySink()
	r := NewRecorder(3, sink)
	r.MsgDropped(4012, 1)
	r.MsgDropped(4012, 2)
	r.MsgDelivered(4012, 1)
	r.MsgDuplicated(4012, 2)

	if got := r.Snapshot().MsgDrops; got != 2 {
		t.Fatalf("MsgDrops = %d, want 2", got)
	}
	events := sink.Events()
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	if e := events[0]; e.Kind != KindMsgDropped || e.Node != 3 || e.From != 1 || e.Value != 4012 {
		t.Fatalf("bad drop event %+v", e)
	}
	if e := events[2]; e.Kind != KindMsgDelivered || e.From != 1 {
		t.Fatalf("bad delivery event %+v", e)
	}
	// Nil recorders swallow everything, as elsewhere in the package.
	var nilRec *Recorder
	nilRec.MsgDropped(1, 0)
	nilRec.MsgDelivered(1, 0)
	nilRec.MsgDuplicated(1, 0)
}

func TestVirtualObserverStampsWithInjectedClock(t *testing.T) {
	now := 5 * time.Second
	o := NewVirtualObserver(2, nil, func() time.Duration { return now })
	o.Recorder(0).Improve(100)
	now = 9 * time.Second
	o.Recorder(1).MsgDropped(100, 0)
	o.Record(KindPartitionStart, -1, 2, -1)

	events := o.Events()
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	if events[0].At != 5*time.Second {
		t.Fatalf("first event at %v, want the injected 5s", events[0].At)
	}
	if events[1].At != 9*time.Second || events[2].At != 9*time.Second {
		t.Fatalf("later events at %v/%v, want 9s", events[1].At, events[2].At)
	}
	if events[2].Node != -1 || events[2].Kind != KindPartitionStart {
		t.Fatalf("network-scoped event misrecorded: %+v", events[2])
	}
	if o.Elapsed() != 9*time.Second {
		t.Fatalf("Elapsed = %v, want virtual 9s", o.Elapsed())
	}
	if o.Counters()[1].MsgDrops != 1 {
		t.Fatalf("MsgDrops snapshot = %d, want 1", o.Counters()[1].MsgDrops)
	}
}
