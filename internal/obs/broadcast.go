package obs

import "sync"

// Broadcaster fans an event stream out to dynamically attached
// subscribers — the bridge between a solve's Sink and any number of live
// SSE/JSONL streaming clients (internal/serve). It is itself a Sink, so
// it composes with Filter/Multi like any other.
//
// Emit never blocks and never waits on a slow consumer: each subscriber
// has a bounded buffer, and an event that does not fit is dropped for
// that subscriber only, counted on its Dropped counter. A streaming
// client that stalls or disconnects therefore cannot stall the solver
// emitting into the broadcaster — the solver's hot loop stays decoupled
// from network backpressure by design.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	closed  bool
	dropped int64
}

// Subscription is one attached consumer. Receive from Events; call
// Cancel when done (safe to call more than once, and after Close).
type Subscription struct {
	b       *Broadcaster
	ch      chan Event
	dropped int64 // guarded by b.mu
	done    bool  // guarded by b.mu
}

// NewBroadcaster returns an empty broadcaster with no subscribers.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscription]struct{})}
}

// Subscribe attaches a consumer with the given buffer capacity (minimum
// 1). If the broadcaster is already closed the returned subscription's
// channel is closed immediately.
func (b *Broadcaster) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{b: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.done = true
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Emit delivers e to every subscriber whose buffer has room, dropping it
// for the rest. Never blocks.
func (b *Broadcaster) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
			b.dropped++
		}
	}
}

// Close detaches every subscriber and closes their channels; later Emits
// are no-ops and later Subscribes return closed subscriptions.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.done = true
		close(s.ch)
		delete(b.subs, s)
	}
}

// Dropped reports the total events dropped across all subscribers over
// the broadcaster's lifetime.
func (b *Broadcaster) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Subscribers reports the number of currently attached subscriptions.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Events is the subscription's receive channel. It is closed by Cancel
// or by the broadcaster's Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events this subscriber missed to a full
// buffer.
func (s *Subscription) Dropped() int64 {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscription and closes its channel. Idempotent;
// pending buffered events remain readable until drained.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	delete(s.b.subs, s)
	close(s.ch)
}
