// Package obs is the solver's structured observability layer: typed
// events at every search decision point (kicks, improvements, perturbation
// escalations, restarts, tour exchanges), lock-cheap atomic counters, and
// pluggable sinks. The paper's own evaluation (§4 message counts, §4.2.1
// variator-strength timeline) is computed from exactly these signals; the
// experiment harness, the smoke-tier reproduction pipeline
// (internal/report), the facade's progress snapshots and the binaries'
// -metrics endpoints all report through this package.
//
// Invariants:
//   - Emitting into a nil or no-op recorder costs a nil check; the hot
//     path never allocates for a disabled sink.
//   - Counters are single-writer atomics readable concurrently (live
//     metrics endpoints, progress pumps).
//   - Event sinks serialize internally, so recorders of concurrent nodes
//     can share one sink; a recorder's At clock is injectable (virtual
//     time in simnet, wall time elsewhere).
package obs
