package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// Counters are the solver's hot-path tallies. All fields are atomics so a
// metrics endpoint or progress pump can read them while the search mutates
// them; each counter has a single writer (its node's recorder), except
// MsgDrops, which the transport bumps on the *receiver's* recorder from
// whatever goroutine detected the loss (atomic adds keep that safe).
type Counters struct {
	Kicks              atomic.Int64 // double-bridge kicks attempted
	KickAccepts        atomic.Int64 // kicks whose re-optimized tour was kept
	Improvements       atomic.Int64 // strict LK chain improvements
	Perturbations      atomic.Int64 // double bridges applied as EA perturbation
	Restarts           atomic.Int64 // restart-rule firings (stagnation > c_r)
	BroadcastsSent     atomic.Int64 // tours broadcast to neighbours
	BroadcastsReceived atomic.Int64 // tours drained from the inbox
	BroadcastsAccepted atomic.Int64 // received tours adopted as node best
	MsgDrops           atomic.Int64 // tours lost in transit to this node
	Merges             atomic.Int64 // in-node elite merge passes completed
	Adoptions          atomic.Int64 // shared-best adoptions by stale workers
	FullSends          atomic.Int64 // whole tours sent (per peer)
	DeltaSends         atomic.Int64 // segment diffs sent (per peer)
	DeltaGaps          atomic.Int64 // deltas discarded for a generation gap
	Coalesced          atomic.Int64 // queued tours merged away before drain
	WireBytes          atomic.Int64 // payload bytes this node put on the wire
}

// CounterSnapshot is a point-in-time copy of one node's counters, safe to
// serialize.
type CounterSnapshot struct {
	Node               int   `json:"node"`
	BestLength         int64 `json:"best_length"`
	Kicks              int64 `json:"kicks"`
	KickAccepts        int64 `json:"kick_accepts"`
	Improvements       int64 `json:"improvements"`
	Perturbations      int64 `json:"perturbations"`
	Restarts           int64 `json:"restarts"`
	BroadcastsSent     int64 `json:"broadcasts_sent"`
	BroadcastsReceived int64 `json:"broadcasts_received"`
	BroadcastsAccepted int64 `json:"broadcasts_accepted"`
	MsgDrops           int64 `json:"msg_drops"`
	Merges             int64 `json:"merges,omitempty"`
	Adoptions          int64 `json:"adoptions,omitempty"`
	FullSends          int64 `json:"full_sends,omitempty"`
	DeltaSends         int64 `json:"delta_sends,omitempty"`
	DeltaGaps          int64 `json:"delta_gaps,omitempty"`
	Coalesced          int64 `json:"coalesced,omitempty"`
	WireBytes          int64 `json:"wire_bytes,omitempty"`
}

// Recorder is one node's handle into the observability layer: it stamps
// events with the node id and the shared run clock, bumps counters, and
// tracks the node's best length. All methods are safe on a nil receiver —
// solvers run unobserved at the cost of a nil check.
type Recorder struct {
	node  int
	start time.Time
	clock func() time.Duration // overrides wall time when set (virtual clocks)
	sink  Sink
	best  atomic.Int64
	c     Counters
}

// NewRecorder builds a recorder for `node` emitting into sink (nil means
// discard). The run clock starts now; see Observer for recorders sharing
// one clock.
func NewRecorder(node int, sink Sink) *Recorder {
	if sink == nil {
		sink = Nop
	}
	return &Recorder{node: node, start: time.Now(), sink: sink}
}

func (r *Recorder) now() time.Duration {
	if r.clock != nil {
		return r.clock()
	}
	return time.Since(r.start)
}

func (r *Recorder) emit(k Kind, value int64, from int) {
	r.sink.Emit(Event{
		At:    r.now(),
		Node:  r.node,
		Kind:  k,
		Value: value,
		From:  from,
	})
}

// KickAccepted records a kick whose re-optimized tour was kept.
func (r *Recorder) KickAccepted(length int64) {
	if r == nil {
		return
	}
	r.c.Kicks.Add(1)
	r.c.KickAccepts.Add(1)
	r.emit(KindKickAccepted, length, -1)
}

// KickReverted records a kick that was undone.
func (r *Recorder) KickReverted() {
	if r == nil {
		return
	}
	r.c.Kicks.Add(1)
	r.emit(KindKickReverted, 0, -1)
}

// LKImprove records a strict chain-level improvement.
func (r *Recorder) LKImprove(length int64) {
	if r == nil {
		return
	}
	r.c.Improvements.Add(1)
	r.setBest(length)
	r.emit(KindLKImprove, length, -1)
}

// Improve records a node-level best improvement produced locally.
func (r *Recorder) Improve(length int64) {
	if r == nil {
		return
	}
	r.setBest(length)
	r.emit(KindImprove, length, -1)
}

// ImproveReceived records the adoption of a neighbour's tour as node best.
func (r *Recorder) ImproveReceived(length int64, from int) {
	if r == nil {
		return
	}
	r.c.BroadcastsAccepted.Add(1)
	r.setBest(length)
	r.emit(KindImproveReceived, length, from)
}

// Perturb records an applied perturbation of `count` double bridges.
func (r *Recorder) Perturb(count int) {
	if r == nil {
		return
	}
	r.c.Perturbations.Add(int64(count))
	r.emit(KindPerturb, int64(count), -1)
}

// PerturbLevel records a change of the variable perturbation strength.
func (r *Recorder) PerturbLevel(level int) {
	if r == nil {
		return
	}
	r.emit(KindPerturbLevel, int64(level), -1)
}

// Restart records a restart-rule firing.
func (r *Recorder) Restart() {
	if r == nil {
		return
	}
	r.c.Restarts.Add(1)
	r.emit(KindRestart, 0, -1)
}

// BroadcastSent records a tour broadcast to the node's neighbours.
func (r *Recorder) BroadcastSent(length int64) {
	if r == nil {
		return
	}
	r.c.BroadcastsSent.Add(1)
	r.emit(KindBroadcastSent, length, -1)
}

// BroadcastReceived records a tour drained from the inbox.
func (r *Recorder) BroadcastReceived(length int64, from int) {
	if r == nil {
		return
	}
	r.c.BroadcastsReceived.Add(1)
	r.emit(KindBroadcastReceived, length, from)
}

// MsgDropped records a tour lost on its way to this node — full inbox,
// link loss, partition, or a dead receiver. from is the sending node. The
// transport calls this on the receiver's recorder, possibly from a sender's
// goroutine; the counter is atomic and sinks serialize, so that is safe.
func (r *Recorder) MsgDropped(length int64, from int) {
	if r == nil {
		return
	}
	r.c.MsgDrops.Add(1)
	r.emit(KindMsgDropped, length, from)
}

// MsgDelivered records a tour placed into this node's inbox by the network.
func (r *Recorder) MsgDelivered(length int64, from int) {
	if r == nil {
		return
	}
	r.emit(KindMsgDelivered, length, from)
}

// MsgDuplicated records a frame duplicated in transit to this node.
func (r *Recorder) MsgDuplicated(length int64, from int) {
	if r == nil {
		return
	}
	r.emit(KindMsgDuplicated, length, from)
}

// Merged records a completed in-node elite merge pass; length is the
// fused tour's length (recorded whether or not it beat the shared best).
func (r *Recorder) Merged(length int64) {
	if r == nil {
		return
	}
	r.c.Merges.Add(1)
	r.emit(KindMerge, length, -1)
}

// Adopted records this worker restarting from the shared best tour.
// from is the publishing worker id (-1 = the merge goroutine).
func (r *Recorder) Adopted(length int64, from int) {
	if r == nil {
		return
	}
	r.c.Adoptions.Add(1)
	r.emit(KindAdopt, length, from)
}

// FullSent records a whole tour put on the wire for peer `to`; bytes is
// the encoded payload size. Called on the sender's recorder.
func (r *Recorder) FullSent(bytes int64, to int) {
	if r == nil {
		return
	}
	r.c.FullSends.Add(1)
	r.c.WireBytes.Add(bytes)
	r.emit(KindFullSent, bytes, to)
}

// DeltaSent records a segment diff put on the wire for peer `to`; bytes
// is the encoded payload size. Called on the sender's recorder.
func (r *Recorder) DeltaSent(bytes int64, to int) {
	if r == nil {
		return
	}
	r.c.DeltaSends.Add(1)
	r.c.WireBytes.Add(bytes)
	r.emit(KindDeltaSent, bytes, to)
}

// DeltaGap records a delta this node had to discard because its base
// generation did not match the reconstruction state. from is the sender.
func (r *Recorder) DeltaGap(from int) {
	if r == nil {
		return
	}
	r.c.DeltaGaps.Add(1)
	r.emit(KindDeltaGap, 0, from)
}

// CoalescedMsg records that a queued tour from `from` was merged with a
// newer one before this node drained it; length is the survivor's.
func (r *Recorder) CoalescedMsg(length int64, from int) {
	if r == nil {
		return
	}
	r.c.Coalesced.Add(1)
	r.emit(KindCoalesced, length, from)
}

// Optimum records that the node reached the target length.
func (r *Recorder) Optimum(length int64) {
	if r == nil {
		return
	}
	r.setBest(length)
	r.emit(KindOptimum, length, -1)
}

// setBest lowers the published best length. Single writer (the node's own
// goroutine), so load-then-store is safe.
func (r *Recorder) setBest(length int64) {
	if cur := r.best.Load(); cur == 0 || length < cur {
		r.best.Store(length)
	}
}

// SetBest publishes the node's best-so-far length without emitting an
// event (initial tours, adopted incumbents).
func (r *Recorder) SetBest(length int64) {
	if r == nil {
		return
	}
	r.setBest(length)
}

// Best returns the node's best published length, 0 if none yet.
func (r *Recorder) Best() int64 {
	if r == nil {
		return 0
	}
	return r.best.Load()
}

// Elapsed returns time on the recorder's run clock (wall time since start,
// or the virtual clock's reading for virtual observers).
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// Snapshot copies the counters.
func (r *Recorder) Snapshot() CounterSnapshot {
	if r == nil {
		return CounterSnapshot{Node: -1}
	}
	return CounterSnapshot{
		Node:               r.node,
		BestLength:         r.best.Load(),
		Kicks:              r.c.Kicks.Load(),
		KickAccepts:        r.c.KickAccepts.Load(),
		Improvements:       r.c.Improvements.Load(),
		Perturbations:      r.c.Perturbations.Load(),
		Restarts:           r.c.Restarts.Load(),
		BroadcastsSent:     r.c.BroadcastsSent.Load(),
		BroadcastsReceived: r.c.BroadcastsReceived.Load(),
		BroadcastsAccepted: r.c.BroadcastsAccepted.Load(),
		MsgDrops:           r.c.MsgDrops.Load(),
		Merges:             r.c.Merges.Load(),
		Adoptions:          r.c.Adoptions.Load(),
		FullSends:          r.c.FullSends.Load(),
		DeltaSends:         r.c.DeltaSends.Load(),
		DeltaGaps:          r.c.DeltaGaps.Load(),
		Coalesced:          r.c.Coalesced.Load(),
		WireBytes:          r.c.WireBytes.Load(),
	}
}

// Observer owns the observability of one whole solve: a recorder per node,
// all on a shared run clock, EA-level events funnelled into one collector
// for post-run analysis, plus an optional extra sink receiving every event
// unfiltered (JSONL traces, live listeners).
type Observer struct {
	start     time.Time
	clock     func() time.Duration // virtual clock; nil = wall time
	sink      Sink                 // shared recorder sink: EA-filtered collector + extra
	collector *MemorySink
	recs      []*Recorder
}

// NewObserver builds an observer for `nodes` recorders. extra may be nil.
func NewObserver(nodes int, extra Sink) *Observer {
	return newObserver(nodes, extra, nil)
}

// NewVirtualObserver builds an observer whose recorders stamp events with
// the supplied clock instead of wall time — the simnet event loop passes
// its virtual clock so event logs replay byte-identically across runs.
func NewVirtualObserver(nodes int, extra Sink, clock func() time.Duration) *Observer {
	return newObserver(nodes, extra, clock)
}

func newObserver(nodes int, extra Sink, clock func() time.Duration) *Observer {
	o := &Observer{
		start:     time.Now(),
		clock:     clock,
		collector: NewMemorySink(),
		recs:      make([]*Recorder, nodes),
	}
	o.sink = Multi(Filter(o.collector, Kind.EALevel), extra)
	for i := range o.recs {
		o.recs[i] = &Recorder{node: i, start: o.start, clock: clock, sink: o.sink}
	}
	return o
}

// Recorder returns node i's recorder.
func (o *Observer) Recorder(i int) *Recorder {
	if o == nil {
		return nil
	}
	return o.recs[i]
}

// Nodes returns the number of recorders.
func (o *Observer) Nodes() int {
	if o == nil {
		return 0
	}
	return len(o.recs)
}

// Events returns all collected EA-level events ordered by run-clock offset.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	events := o.collector.Events()
	SortEvents(events)
	return events
}

// Counters returns a per-node counter snapshot.
func (o *Observer) Counters() []CounterSnapshot {
	if o == nil {
		return nil
	}
	out := make([]CounterSnapshot, len(o.recs))
	for i, r := range o.recs {
		out[i] = r.Snapshot()
	}
	return out
}

// BestLength returns the lowest published length across nodes, 0 if none.
func (o *Observer) BestLength() int64 {
	if o == nil {
		return 0
	}
	var best int64
	for _, r := range o.recs {
		if l := r.Best(); l != 0 && (best == 0 || l < best) {
			best = l
		}
	}
	return best
}

// Elapsed returns time on the observer's run clock (wall time since start,
// or the virtual clock's reading).
func (o *Observer) Elapsed() time.Duration {
	if o == nil {
		return 0
	}
	if o.clock != nil {
		return o.clock()
	}
	return time.Since(o.start)
}

// Snapshot records a whole-solve progress observation (Node = -1) into the
// collector and returns the best length it captured.
func (o *Observer) Snapshot() int64 {
	if o == nil {
		return 0
	}
	best := o.BestLength()
	o.collector.Emit(Event{
		At:    o.Elapsed(),
		Node:  -1,
		Kind:  KindSnapshot,
		Value: best,
		From:  -1,
	})
	return best
}

// Record emits a network- or harness-scoped event (partitions, crashes,
// deliveries) through the observer's shared sink, stamped with its clock.
// Use node = -1 for whole-network scope and from = -1 when no peer applies.
func (o *Observer) Record(k Kind, node int, value int64, from int) {
	if o == nil {
		return
	}
	o.sink.Emit(Event{
		At:    o.Elapsed(),
		Node:  node,
		Kind:  k,
		Value: value,
		From:  from,
	})
}

// MetricsHandler serves snap() as indented JSON — an expvar-style
// endpoint for long-running binaries.
func MetricsHandler(snap func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
}
