package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind tags an event with the decision point that produced it.
type Kind uint8

const (
	// KindKickAccepted: a double-bridge kick's re-optimized tour was
	// accepted as the chain incumbent (ties included). Value = new length.
	KindKickAccepted Kind = iota
	// KindKickReverted: the kick made the tour longer; the working tour
	// reverted to the incumbent.
	KindKickReverted
	// KindLKImprove: chained LK strictly improved its incumbent.
	// Value = new length. For a plain CLK run this is a global improvement;
	// inside the EA it is relative to the perturbed restart point.
	KindLKImprove
	// KindImprove: a node's own search produced a new global best tour
	// (the EA's SELECTBESTTOUR chose the local result). Value = length.
	KindImprove
	// KindImproveReceived: a tour received from a neighbour became the
	// node's best (a broadcast was accepted). Value = length, From = sender.
	KindImproveReceived
	// KindPerturb: the variable-strength perturbation was applied.
	// Value = NumPerturbations (double-bridge count).
	KindPerturb
	// KindPerturbLevel: the perturbation strength changed. Value = level.
	KindPerturbLevel
	// KindRestart: stagnation exceeded c_r; the incumbent was discarded and
	// rebuilt from scratch.
	KindRestart
	// KindBroadcastSent: the node broadcast its new best to its topology
	// neighbours. Value = length.
	KindBroadcastSent
	// KindBroadcastReceived: a tour arrived from a neighbour. Value =
	// length, From = sender.
	KindBroadcastReceived
	// KindOptimum: the target length was reached locally.
	KindOptimum
	// KindSnapshot: a periodic progress observation. Value = best length so
	// far; Node is -1 (whole-solve scope).
	KindSnapshot
	// KindMsgDropped: a tour in transit was lost — full inbox, link loss,
	// partition, or dead receiver. Node = intended receiver, From = sender,
	// Value = tour length.
	KindMsgDropped
	// KindMsgDelivered: the network placed a tour into a node's inbox
	// (link-level; distinct from KindBroadcastReceived, which fires when the
	// node drains it). Node = receiver, From = sender, Value = length.
	KindMsgDelivered
	// KindMsgDuplicated: a link duplicated a frame in transit. Node =
	// receiver, From = sender, Value = length.
	KindMsgDuplicated
	// KindPartitionStart: a network partition activated; traffic between
	// groups is dropped until it heals. Node = -1, Value = group count.
	KindPartitionStart
	// KindPartitionHeal: the partition healed. Node = -1.
	KindPartitionHeal
	// KindNodeCrash: a node crashed — it stops working and its queued inbox
	// is lost. Node = the crashed node.
	KindNodeCrash
	// KindNodeRestart: a crashed node came back. Node = restarted node,
	// Value = 1 when it restarted with freshly reconstructed search state.
	KindNodeRestart
	// KindMerge: an in-node elite merge pass finished — the union-graph
	// restricted LK fused the elite pool. Node = the worker group's recorder
	// (worker 0), Value = resulting tour length (recorded whether or not it
	// improved the shared best).
	KindMerge
	// KindAdopt: a stale worker restarted from the shared best tour
	// published by another worker (or the merger). Node = adopting worker,
	// From = publishing worker (-1 = the merger), Value = adopted length.
	KindAdopt
	// KindFullSent: a whole tour went on the wire to one peer — first
	// contact, keyframe cadence, or a delta that would not have been
	// smaller. Node = sender, From = receiver, Value = wire bytes.
	KindFullSent
	// KindDeltaSent: only the changed segments of a tour went on the wire
	// to one peer. Node = sender, From = receiver, Value = wire bytes.
	KindDeltaSent
	// KindDeltaGap: a delta arrived whose base generation did not match
	// the receiver's reconstruction state (loss, reorder, or restart); it
	// was discarded and the stream heals at the sender's next full tour.
	// Node = receiver, From = sender.
	KindDeltaGap
	// KindCoalesced: an undrained queued tour was merged with a newer one
	// from the same sender; only the better survived. Node = receiver,
	// From = sender, Value = surviving length.
	KindCoalesced

	numKinds
)

var kindNames = [numKinds]string{
	"kick-accepted",
	"kick-reverted",
	"lk-improve",
	"improve",
	"improve-received",
	"perturb",
	"perturb-level",
	"restart",
	"broadcast-sent",
	"broadcast-received",
	"optimum",
	"snapshot",
	"msg-dropped",
	"msg-delivered",
	"msg-duplicated",
	"partition-start",
	"partition-heal",
	"node-crash",
	"node-restart",
	"merge",
	"adopt",
	"full-sent",
	"delta-sent",
	"delta-gap",
	"coalesced",
}

// String names the kind; these names are the JSONL trace vocabulary.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// EALevel reports whether the kind is a low-frequency EA decision point.
// Kick-level kinds fire once per kick (potentially millions per run) and
// are excluded from unbounded in-memory collection; their totals live in
// Counters.
func (k Kind) EALevel() bool {
	switch k {
	case KindKickAccepted, KindKickReverted, KindLKImprove, KindPerturb,
		KindFullSent, KindDeltaSent, KindCoalesced:
		// The send/coalesce kinds fire once per peer per broadcast — at
		// 1024 nodes that is far too chatty for unbounded collection;
		// their totals live in Counters.
		return false
	}
	return true
}

// Event is one observation: node `Node` hit decision point `Kind` at
// offset `At` from the run start. Value carries the tour length or
// perturbation level; From is the sending node for received-tour events
// and -1 otherwise.
type Event struct {
	At    time.Duration
	Node  int
	Kind  Kind
	Value int64
	From  int
}

// Sink consumes events. Implementations must be safe for concurrent Emit
// calls: recorders of all cluster nodes share one sink.
type Sink interface {
	Emit(Event)
}

type nopSink struct{}

func (nopSink) Emit(Event) {}

// Nop discards every event.
var Nop Sink = nopSink{}

// SinkFunc adapts a function to the Sink interface. The function must be
// safe for concurrent calls.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// MemorySink retains every event, for tests and post-run analysis.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends the event.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len reports how many events were collected.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// RingSink keeps the most recent events in a fixed-size ring — bounded
// memory for arbitrarily long runs.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRingSink returns a ring retaining the last `capacity` events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit stores the event, evicting the oldest when full.
func (r *RingSink) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total reports how many events were emitted over the sink's lifetime
// (including evicted ones).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// jsonlEvent is the wire form of one trace line.
type jsonlEvent struct {
	AtMS  float64 `json:"at_ms"`
	Node  int     `json:"node"`
	Kind  string  `json:"kind"`
	Value int64   `json:"value,omitempty"`
	From  *int    `json:"from,omitempty"`
}

// JSONLSink writes one JSON object per event:
//
//	{"at_ms":152.4,"node":3,"kind":"broadcast-sent","value":8042}
//
// at_ms is the offset from run start in milliseconds; `from` appears only
// on received-tour events. Write errors are sticky: the first one is kept
// and later events are dropped.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w. The caller owns w's lifecycle (flush/close).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSONL line.
func (j *JSONLSink) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	we := jsonlEvent{
		AtMS:  float64(e.At.Microseconds()) / 1000,
		Node:  e.Node,
		Kind:  e.Kind.String(),
		Value: e.Value,
	}
	if e.From >= 0 {
		from := e.From
		we.From = &from
	}
	j.err = j.enc.Encode(we)
}

// Err returns the first write error, if any.
func (j *JSONLSink) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

type filterSink struct {
	next Sink
	keep func(Kind) bool
}

func (f filterSink) Emit(e Event) {
	if f.keep(e.Kind) {
		f.next.Emit(e)
	}
}

// Filter forwards only events whose kind satisfies keep.
func Filter(next Sink, keep func(Kind) bool) Sink {
	if next == nil {
		return Nop
	}
	return filterSink{next: next, keep: keep}
}

// Multi fans every event out to all non-nil sinks.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil && s != Nop {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// SortEvents orders events by offset (stable, so same-timestamp events
// keep emission order).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}
