package report

import (
	"context"
	"fmt"
	"time"

	"distclk/internal/bench"
	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/heldkarp"
	"distclk/internal/obs"
	"distclk/internal/simnet"
	"distclk/internal/stats"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// Trace is one run's non-increasing quality trace over a deterministic
// work axis: kick count for plain CLK, virtual microseconds for simnet
// cluster runs. (bench.Series carries wall-clock traces; this type exists
// because smoke-tier axes must never touch a wall clock.)
type Trace struct {
	Label string
	X     []int64 // kick index, or virtual time in microseconds
	L     []int64 // incumbent length at X
	Final int64
}

// At evaluates the step function at x (first value before the first point).
func (t Trace) At(x int64) int64 {
	if len(t.X) == 0 {
		return 0
	}
	cur := t.L[0]
	for i, xi := range t.X {
		if xi > x {
			break
		}
		cur = t.L[i]
	}
	return cur
}

// Reach returns the first x at which the trace is <= target.
func (t Trace) Reach(target int64) (int64, bool) {
	for i, l := range t.L {
		if l <= target {
			return t.X[i], true
		}
	}
	return 0, false
}

// meanAt averages runs' traces at x, ignoring empty series.
func meanAt(runs []Trace, x int64) float64 {
	var vals []float64
	for _, t := range runs {
		if v := t.At(x); v > 0 {
			vals = append(vals, float64(v))
		}
	}
	return stats.Mean(vals)
}

// bestFinal is the minimum final length across runs (0 if none).
func bestFinal(runs []Trace) int64 {
	var best int64
	for _, t := range runs {
		if t.Final > 0 && (best == 0 || t.Final < best) {
			best = t.Final
		}
	}
	return best
}

// meanReach averages the work to reach target over the runs that do.
func meanReach(runs []Trace, target int64) (mean float64, reached int) {
	var xs []float64
	for _, t := range runs {
		if x, ok := t.Reach(target); ok {
			xs = append(xs, float64(x))
		}
	}
	return stats.Mean(xs), len(xs)
}

// SimRun couples a cluster run's quality trace with the full simnet result
// (event stream, fault ledger, per-node stats).
type SimRun struct {
	Trace Trace
	Res   simnet.Result
}

// Runner executes manifest experiments through the repository's
// deterministic entry points: seeded clk.Solver loops budgeted in kicks,
// and simnet clusters budgeted in EA iterations on the virtual clock.
// Runs are cached so experiments sharing a configuration (Tables 3-5 and
// Figure 2 share CLK runs, for example) execute once.
type Runner struct {
	// Testbed resolves paper instance names to scaled stand-in specs.
	Testbed bench.Options

	instances map[string]*tsp.Instance
	hk        map[string]int64
	clkCache  map[string][]Trace
	simCache  map[string][]SimRun
}

// NewRunner prepares a smoke-tier runner.
func NewRunner() *Runner {
	opt := bench.QuickOptions()
	opt.SizeScale = smokeSizeScale
	opt.Seed = smokeInstanceSeed
	return &Runner{
		Testbed:   opt,
		instances: map[string]*tsp.Instance{},
		hk:        map[string]int64{},
		clkCache:  map[string][]Trace{},
		simCache:  map[string][]SimRun{},
	}
}

// Instance materializes (and caches) the stand-in for a paper instance.
func (r *Runner) Instance(name string) (*tsp.Instance, error) {
	if in, ok := r.instances[name]; ok {
		return in, nil
	}
	spec, err := r.Testbed.SpecByName(name)
	if err != nil {
		return nil, err
	}
	in := tsp.Generate(spec.Family, spec.N, smokeInstanceSeed)
	in.Name = spec.Paper + "-standin"
	r.instances[name] = in
	return in, nil
}

// HKBound computes (and caches) the Held-Karp quality denominator.
func (r *Runner) HKBound(name string) (int64, error) {
	if v, ok := r.hk[name]; ok {
		return v, nil
	}
	in, err := r.Instance(name)
	if err != nil {
		return 0, err
	}
	res := heldkarp.LowerBound(in, heldkarp.Options{Iterations: smokeHKIters})
	r.hk[name] = res.Bound
	return res.Bound, nil
}

// CLKRuns performs (and caches) `runs` seeded plain-CLK runs of `kicks`
// kicks each. The trace axis is the kick index; run r uses seed+101*r.
// KickOnce is single-goroutine and seeded, so each trace is a pure function
// of (instance, strategy, kicks, seed).
func (r *Runner) CLKRuns(name string, kick clk.KickStrategy, kicks int64, runs int, seed int64) ([]Trace, error) {
	key := fmt.Sprintf("%s/%v/%d/%d/%d", name, kick, kicks, runs, seed)
	if out, ok := r.clkCache[key]; ok {
		return out, nil
	}
	in, err := r.Instance(name)
	if err != nil {
		return nil, err
	}
	p := clk.DefaultParams()
	p.Kick = kick
	out := make([]Trace, runs)
	for run := 0; run < runs; run++ {
		s := clk.New(in, p, seed+101*int64(run))
		tr := Trace{Label: fmt.Sprintf("%s/CLK-%v/run%d", name, kick, run)}
		tr.X = append(tr.X, 0)
		tr.L = append(tr.L, s.BestLength())
		for k := int64(1); k <= kicks; k++ {
			if s.KickOnce() {
				tr.X = append(tr.X, k)
				tr.L = append(tr.L, s.BestLength())
			}
		}
		tr.Final = s.BestLength()
		out[run] = tr
	}
	r.clkCache[key] = out
	return out, nil
}

// CLKCandRuns is CLKRuns under an explicit candidate-strategy / gain-rule
// configuration (kick strategy stays the random-walk default): `cand` names
// a registered neighbor strategy, `relax` is the LK relaxed-gain depth
// (0 = classic rule). Run r uses seed+101*r, exactly as CLKRuns, and the
// traces share its cache keyed by the full configuration.
func (r *Runner) CLKCandRuns(name, cand string, relax int, kicks int64, runs int, seed int64) ([]Trace, error) {
	key := fmt.Sprintf("cand/%s/%s/%d/%d/%d/%d", name, cand, relax, kicks, runs, seed)
	if out, ok := r.clkCache[key]; ok {
		return out, nil
	}
	in, err := r.Instance(name)
	if err != nil {
		return nil, err
	}
	p := clk.DefaultParams()
	p.Candidates = cand
	p.LK.RelaxDepth = relax
	out := make([]Trace, runs)
	for run := 0; run < runs; run++ {
		s := clk.New(in, p, seed+101*int64(run))
		tr := Trace{Label: fmt.Sprintf("%s/CLK-%s-relax%d/run%d", name, cand, relax, run)}
		tr.X = append(tr.X, 0)
		tr.L = append(tr.L, s.BestLength())
		for k := int64(1); k <= kicks; k++ {
			if s.KickOnce() {
				tr.X = append(tr.X, k)
				tr.L = append(tr.L, s.BestLength())
			}
		}
		tr.Final = s.BestLength()
		out[run] = tr
	}
	r.clkCache[key] = out
	return out, nil
}

// SimRuns performs (and caches) `runs` simnet cluster runs: `nodes` nodes
// on a hypercube, `iters` EA iterations per node, fixed 5ms links, default
// 100ms step cost. The trace axis is virtual microseconds, read off the
// merged improvement events; run r uses seed+101*r. Determinism is
// simnet's replay contract (same instance+Config => byte-identical events).
func (r *Runner) SimRuns(name string, nodes int, iters int64, kick clk.KickStrategy, runs int, seed int64) ([]SimRun, error) {
	key := fmt.Sprintf("%s/%v/%d/%d/%d/%d", name, kick, nodes, iters, runs, seed)
	if out, ok := r.simCache[key]; ok {
		return out, nil
	}
	in, err := r.Instance(name)
	if err != nil {
		return nil, err
	}
	ea := core.DefaultConfig()
	ea.CLK.Kick = kick
	ea.CV = smokeCV
	ea.CR = smokeCR
	ea.KicksPerCall = smokeKicksPerCall
	out := make([]SimRun, runs)
	for run := 0; run < runs; run++ {
		cfg := simnet.Config{
			Nodes:  nodes,
			Topo:   topology.Hypercube,
			EA:     ea,
			Budget: core.Budget{MaxIterations: iters},
			Seed:   seed + 101*int64(run),
			Link: simnet.Link{
				Latency: simnet.Latency{Kind: simnet.LatencyFixed, Base: 5 * time.Millisecond},
			},
		}
		res := simnet.Run(context.Background(), in, cfg)
		tr := Trace{
			Label: fmt.Sprintf("%s/DistCLK%d/run%d", name, nodes, run),
			Final: res.BestLength,
		}
		best := int64(1 << 62)
		for _, e := range res.Events {
			if e.Kind != obs.KindImprove && e.Kind != obs.KindImproveReceived {
				continue
			}
			if e.Value < best {
				best = e.Value
				tr.X = append(tr.X, e.At.Microseconds())
				tr.L = append(tr.L, e.Value)
			}
		}
		tr.X = append(tr.X, res.VirtualElapsed.Microseconds())
		tr.L = append(tr.L, res.BestLength)
		out[run] = SimRun{Trace: tr, Res: res}
	}
	r.simCache[key] = out
	return out, nil
}

// ScaleInstance materializes (and caches) an n-city uniform instance for
// the scaling experiment's runs past the paper testbed sizes (the
// stand-ins cap at the 120-city smoke floor; delta-activation needs a
// longer improvement runway).
func (r *Runner) ScaleInstance(n int) *tsp.Instance {
	key := fmt.Sprintf("scale/uniform/%d", n)
	if in, ok := r.instances[key]; ok {
		return in
	}
	in := tsp.Generate(tsp.FamilyUniform, n, smokeInstanceSeed)
	in.Name = fmt.Sprintf("uniform%d", n)
	r.instances[key] = in
	return in
}

// ScaleHKBound computes (and caches) the Held-Karp denominator for a
// ScaleInstance.
func (r *Runner) ScaleHKBound(n int) int64 {
	key := fmt.Sprintf("scale/uniform/%d", n)
	if v, ok := r.hk[key]; ok {
		return v
	}
	res := heldkarp.LowerBound(r.ScaleInstance(n), heldkarp.Options{Iterations: smokeHKIters})
	r.hk[key] = res.Bound
	return res.Bound
}

// SimRunsEx performs (and caches) `runs` simnet cluster runs under an
// explicit simnet.Config — topology, exchange protocol, link model, EA
// constants and budget all come from the caller, unlike SimRuns' fixed
// hypercube. Run r overrides cfg.Seed with seed+101*r; key must uniquely
// describe (instance, cfg) for the cache. The trace axis is virtual
// microseconds, exactly as SimRuns.
func (r *Runner) SimRunsEx(key string, in *tsp.Instance, cfg simnet.Config, runs int, seed int64) []SimRun {
	ck := fmt.Sprintf("ex/%s/%d/%d", key, runs, seed)
	if out, ok := r.simCache[ck]; ok {
		return out
	}
	out := make([]SimRun, runs)
	for run := 0; run < runs; run++ {
		c := cfg
		c.Seed = seed + 101*int64(run)
		res := simnet.Run(context.Background(), in, c)
		tr := Trace{
			Label: fmt.Sprintf("%s/%v%d/run%d", in.Name, cfg.Topo, cfg.Nodes, run),
			Final: res.BestLength,
		}
		best := int64(1 << 62)
		for _, e := range res.Events {
			if e.Kind != obs.KindImprove && e.Kind != obs.KindImproveReceived {
				continue
			}
			if e.Value < best {
				best = e.Value
				tr.X = append(tr.X, e.At.Microseconds())
				tr.L = append(tr.L, e.Value)
			}
		}
		tr.X = append(tr.X, res.VirtualElapsed.Microseconds())
		tr.L = append(tr.L, res.BestLength)
		out[run] = SimRun{Trace: tr, Res: res}
	}
	r.simCache[ck] = out
	return out
}

// traces projects SimRuns to their quality traces.
func traces(runs []SimRun) []Trace {
	out := make([]Trace, len(runs))
	for i, s := range runs {
		out[i] = s.Trace
	}
	return out
}
