package report

import (
	"fmt"
	"math"
	"time"

	"distclk/internal/clk"
	"distclk/internal/lkh"
	"distclk/internal/merge"
	"distclk/internal/multilevel"
	"distclk/internal/obs"
	"distclk/internal/stats"
)

// gapCell formats a mean length as percent over the reference ("-" when no
// run produced a value).
func gapCell(mean float64, ref int64) string {
	if mean <= 0 || ref <= 0 {
		return "-"
	}
	g := stats.ExcessPercent(mean, float64(ref))
	if math.IsNaN(g) {
		return "-"
	}
	return fmt.Sprintf("%.3f%%", g)
}

// gapVal is gapCell's numeric twin (NaN when undefined).
func gapVal(mean float64, ref int64) float64 {
	if mean <= 0 || ref <= 0 {
		return math.NaN()
	}
	return stats.ExcessPercent(mean, float64(ref))
}

// msVal converts mean virtual microseconds to milliseconds.
func msVal(us float64) float64 { return us / 1000 }

// workCell formats a mean work value ("-" when no run reached the target).
func workCell(v float64, reached int, format string) string {
	if reached == 0 {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// lateX returns the largest trace timestamp across runs (the shared late
// checkpoint for virtual-time configs, where elapsed varies per run).
func lateX(runs []Trace) int64 {
	var max int64
	for _, t := range runs {
		if n := len(t.X); n > 0 && t.X[n-1] > max {
			max = t.X[n-1]
		}
	}
	return max
}

// minI returns the smaller of two positive int64s, treating 0 as missing.
func minI(a, b int64) int64 {
	if a == 0 || (b != 0 && b < a) {
		return b
	}
	return a
}

func runTable1(r *Runner, e *Experiment) (*Artifact, error) {
	// Quality levels are per-instance, as in the paper's Table 1: the
	// jittered-grid stand-in converges within +0.5% during construction,
	// so its interesting range is much tighter than the drilling board's.
	levelsByInstance := map[string][]float64{
		"pr2392": {0.5, 0.2, 0.1},
		"fl3795": {2.0, 1.0, 0.5},
	}
	tbl := &Table{Header: []string{"instance", "level", "CLK (kicks)", "1 node (ms)", "8 nodes (ms)", "factor"}}
	csv := CSVFile{
		Name: "smoke/table1.csv",
		Comment: schemaComment(e, "smoke/table1.csv",
			"columns: instance, level_pct (% over reference = best tour over all runs),",
			"  clk_kicks (mean kicks for plain CLK to reach the level; empty = never),",
			"  dist1_ms / dist8_ms (mean virtual ms per node on simnet), factor (dist1_ms/dist8_ms)",
			"budgets: CLK 960 kicks; DistCLK(1) 96 iters; DistCLK(8) 12 iters/node (equal total work)"),
		Header: []string{"instance", "level_pct", "clk_kicks", "dist1_ms", "dist8_ms", "factor"},
	}
	var deltas []Delta
	for bi, name := range e.Instances {
		clkRuns, err := r.CLKRuns(name, clk.KickRandomWalk, e.CLKKicks, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		one, err := r.SimRuns(name, 1, e.NodeIters*8, clk.KickRandomWalk, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		eight, err := r.SimRuns(name, 8, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		ref := minI(bestFinal(clkRuns), minI(bestFinal(traces(one)), bestFinal(traces(eight))))
		bestFactor, bestLevel := math.NaN(), 0.0
		for _, lv := range levelsByInstance[name] {
			target := int64(float64(ref) * (1 + lv/100))
			ck, cn := meanReach(clkRuns, target)
			t1, n1 := meanReach(traces(one), target)
			t8, n8 := meanReach(traces(eight), target)
			factor := "-"
			if n1 > 0 && n8 > 0 && t8 > 0 {
				f := stats.Ratio(t1, t8)
				factor = fmt.Sprintf("%.2f", f)
				bestFactor, bestLevel = f, lv // levels tighten monotonically
			}
			tbl.AddRow(name, fmt.Sprintf("+%.1f%%", lv),
				workCell(ck, cn, "%.0f"), workCell(msVal(t1), n1, "%.1f"),
				workCell(msVal(t8), n8, "%.1f"), factor)
			csv.AddRow(name, fmt.Sprintf("%.1f", lv),
				workCell(ck, cn, "%.0f"), workCell(msVal(t1), n1, "%.1f"),
				workCell(msVal(t8), n8, "%.1f"), factor)
		}
		b := e.Baselines[bi]
		repro := "no level reached by both cluster sizes"
		ok := false
		if !math.IsNaN(bestFactor) {
			repro = fmt.Sprintf("factor %.2f at level +%.1f%%", bestFactor, bestLevel)
			ok = bestFactor > 1
		}
		deltas = append(deltas, Delta{Exp: e.ID, Row: b.Row, Metric: b.Metric,
			Paper: b.Paper, Repro: repro, Claim: b.Claim, OK: ok})
	}
	notes := []string{
		"reference = best tour over all runs of the instance; CLK runs 10x the per-node kicks of the 8-node cluster (the paper's budget ratio); the CLK column is kicks, not ms — axes are deliberately work-denominated.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runTable2(r *Runner, e *Experiment) (*Artifact, error) {
	tbl := &Table{Header: []string{"instance", "solver", "distance"}}
	csv := CSVFile{
		Name: "smoke/table2.csv",
		Comment: schemaComment(e, "smoke/table2.csv",
			"columns: instance, solver, gap_pct (% over the best tour any solver found)",
			"budgets (deterministic, no deadlines): all baselines at their paper-default",
			"  trial/kick budgets (LKH n trials; TM 10 tours); DistCLK(8) 96 iters/node on simnet"),
		Header: []string{"instance", "solver", "gap_pct"},
	}
	type verdict struct{ mlWorst, distBeatsML bool }
	verdicts := make([]verdict, 0, len(e.Instances))
	for _, name := range e.Instances {
		in, err := r.Instance(name)
		if err != nil {
			return nil, err
		}
		// Baselines run their paper-default parameters with zero deadlines:
		// trial/kick budgets only, so output is a pure function of the seed.
		lkhLen := lkh.Solve(in, lkh.DefaultParams(), e.Seed, time.Time{}, 0).Length
		mlLen := multilevel.Solve(in, multilevel.DefaultParams(), e.Seed, time.Time{}, 0).Length
		tmLen := merge.Solve(in, merge.DefaultParams(), e.Seed, time.Time{}, 0).Length
		eight, err := r.SimRuns(name, 8, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		distLen := bestFinal(traces(eight))
		ref := minI(minI(lkhLen, mlLen), minI(tmLen, distLen))
		rows := []struct {
			solver string
			length int64
		}{
			{"LKH-style", lkhLen}, {"ML-CLK", mlLen}, {"TM-CLK", tmLen}, {"DistCLK(8)", distLen},
		}
		for _, row := range rows {
			tbl.AddRow(name, row.solver, gapCell(float64(row.length), ref))
			csv.AddRow(name, row.solver, fmt.Sprintf("%.3f", gapVal(float64(row.length), ref)))
		}
		verdicts = append(verdicts, verdict{
			mlWorst:     mlLen >= lkhLen && mlLen >= tmLen,
			distBeatsML: distLen < mlLen,
		})
	}
	allMLWorst, allDistBeatsML := true, true
	for _, v := range verdicts {
		allMLWorst = allMLWorst && v.mlWorst
		allDistBeatsML = allDistBeatsML && v.distBeatsML
	}
	deltas := []Delta{
		{Exp: e.ID, Row: e.Baselines[0].Row, Metric: e.Baselines[0].Metric, Paper: e.Baselines[0].Paper,
			Repro: fmt.Sprintf("ML-CLK worst baseline on %d of %d instances", countTrue(verdicts, func(v verdict) bool { return v.mlWorst }), len(verdicts)),
			Claim: e.Baselines[0].Claim, OK: allMLWorst},
		{Exp: e.ID, Row: e.Baselines[1].Row, Metric: e.Baselines[1].Metric, Paper: e.Baselines[1].Paper,
			Repro: fmt.Sprintf("DistCLK(8) below ML-CLK on %d of %d instances", countTrue(verdicts, func(v verdict) bool { return v.distBeatsML }), len(verdicts)),
			Claim: e.Baselines[1].Claim, OK: allDistBeatsML},
	}
	notes := []string{
		"distance = gap over the best tour any solver found; baselines run with zero deadlines and fixed trial/kick budgets so their output is seed-deterministic — the wall-clock time columns of the paper's table live in the quick tier above.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func countTrue[T any](xs []T, f func(T) bool) int {
	n := 0
	for _, x := range xs {
		if f(x) {
			n++
		}
	}
	return n
}

func runTable3(r *Runner, e *Experiment) (*Artifact, error) {
	tbl := &Table{Header: []string{"instance",
		"rnd CLK", "rnd Dist", "geo CLK", "geo Dist",
		"close CLK", "close Dist", "walk CLK", "walk Dist"}}
	csv := CSVFile{
		Name: "smoke/table3.csv",
		Comment: schemaComment(e, "smoke/table3.csv",
			"columns: instance, strategy, algo (clk|dist8), successes (runs reaching the",
			"  reference = best tour over all runs of the instance), runs",
			"budgets: CLK 400 kicks/run; DistCLK(8) 5 iters/node (50 kicks/node, the 10:1 ratio)"),
		Header: []string{"instance", "strategy", "algo", "successes", "runs"},
	}
	distWins, cells := 0, 0
	for _, name := range e.Instances {
		type group struct{ clk, dist []Trace }
		groups := make([]group, len(clk.AllKickStrategies))
		var ref int64
		for i, kick := range clk.AllKickStrategies {
			cr, err := r.CLKRuns(name, kick, e.CLKKicks, e.Runs, e.Seed)
			if err != nil {
				return nil, err
			}
			dr, err := r.SimRuns(name, 8, e.NodeIters, kick, e.Runs, e.Seed)
			if err != nil {
				return nil, err
			}
			groups[i] = group{clk: cr, dist: traces(dr)}
			ref = minI(ref, minI(bestFinal(cr), bestFinal(groups[i].dist)))
		}
		count := func(runs []Trace) int {
			n := 0
			for _, t := range runs {
				if t.Final == ref {
					n++
				}
			}
			return n
		}
		row := []interface{}{name}
		for i, kick := range clk.AllKickStrategies {
			nc, nd := count(groups[i].clk), count(groups[i].dist)
			row = append(row, fmt.Sprintf("%d/%d", nc, e.Runs), fmt.Sprintf("%d/%d", nd, e.Runs))
			csv.AddRow(name, fmt.Sprintf("%v", kick), "clk", nc, e.Runs)
			csv.AddRow(name, fmt.Sprintf("%v", kick), "dist8", nd, e.Runs)
			cells++
			if nd >= nc {
				distWins++
			}
		}
		tbl.AddRow(row...)
	}
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("DistCLK ties or beats CLK in %d of %d cells", distWins, cells),
		Claim: b.Claim, OK: distWins*2 >= cells}}
	notes := []string{
		"reference = best tour over all runs of the instance (optima of synthetic stand-ins are unknown); DistCLK runs a tenth of CLK's per-node kicks.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runTable4(r *Runner, e *Experiment) (*Artifact, error) {
	tbl := &Table{Header: []string{"instance",
		"rnd early", "rnd late", "geo early", "geo late",
		"close early", "close late", "walk early", "walk late"}}
	csv := CSVFile{
		Name: "smoke/table4.csv",
		Comment: schemaComment(e, "smoke/table4.csv",
			"columns: instance, strategy, early_gap_pct / late_gap_pct (mean distance to the",
			"  Held-Karp lower bound after 40 and 400 kicks; the paper's 1:10 checkpoint ratio)",
			fmt.Sprintf("denominators: HK ascent bounds, %d iterations", smokeHKIters)),
		Header: []string{"instance", "strategy", "early_gap_pct", "late_gap_pct"},
	}
	early := e.CLKKicks / 10
	geomNeverBest := true
	for _, name := range e.Instances {
		hk, err := r.HKBound(name)
		if err != nil {
			return nil, err
		}
		row := []interface{}{name}
		bestLate, geomLate := math.Inf(1), math.Inf(1)
		for _, kick := range clk.AllKickStrategies {
			runs, err := r.CLKRuns(name, kick, e.CLKKicks, e.Runs, e.Seed)
			if err != nil {
				return nil, err
			}
			eg, lg := gapVal(meanAt(runs, early), hk), gapVal(meanAt(runs, e.CLKKicks), hk)
			row = append(row, gapCell(meanAt(runs, early), hk), gapCell(meanAt(runs, e.CLKKicks), hk))
			csv.AddRow(name, fmt.Sprintf("%v", kick), fmt.Sprintf("%.3f", eg), fmt.Sprintf("%.3f", lg))
			if lg < bestLate {
				bestLate = lg
			}
			if kick == clk.KickGeometric {
				geomLate = lg
			}
		}
		if geomLate <= bestLate {
			geomNeverBest = false
		}
		tbl.AddRow(row...)
	}
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("geometric strictly best on %s", map[bool]string{true: "no instance", false: "at least one instance"}[geomNeverBest]),
		Claim: b.Claim, OK: geomNeverBest}}
	notes := []string{
		"mean distance to this repo's Held-Karp ascent bound (loose on clustered/drilling geometry — compare columns, not absolute values); early = 40 kicks, late = 400 kicks.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runTable5(r *Runner, e *Experiment) (*Artifact, error) {
	tbl := &Table{Header: []string{"instance",
		"rnd early", "rnd late", "geo early", "geo late",
		"close early", "close late", "walk early", "walk late"}}
	csv := CSVFile{
		Name: "smoke/table5.csv",
		Comment: schemaComment(e, "smoke/table5.csv",
			"columns: instance, strategy, early_gap_pct / late_gap_pct (mean distance to the",
			"  Held-Karp bound at 1/10 of the run's virtual time and at its end)",
			"budgets: DistCLK(8), 5 iters/node — one tenth of Table 4's per-node kicks"),
		Header: []string{"instance", "strategy", "early_gap_pct", "late_gap_pct"},
	}
	var diffs []float64
	for _, name := range e.Instances {
		hk, err := r.HKBound(name)
		if err != nil {
			return nil, err
		}
		row := []interface{}{name}
		bestDistLate, bestCLKLate := math.Inf(1), math.Inf(1)
		for _, kick := range clk.AllKickStrategies {
			dr, err := r.SimRuns(name, 8, e.NodeIters, kick, e.Runs, e.Seed)
			if err != nil {
				return nil, err
			}
			runs := traces(dr)
			late := lateX(runs)
			eg, lg := gapVal(meanAt(runs, late/10), hk), gapVal(meanAt(runs, late), hk)
			row = append(row, gapCell(meanAt(runs, late/10), hk), gapCell(meanAt(runs, late), hk))
			csv.AddRow(name, fmt.Sprintf("%v", kick), fmt.Sprintf("%.3f", eg), fmt.Sprintf("%.3f", lg))
			if lg < bestDistLate {
				bestDistLate = lg
			}
			// Table 4's CLK runs (cache hit) give the plain-CLK comparison.
			cr, err := r.CLKRuns(name, kick, e.CLKKicks, e.Runs, e.Seed)
			if err != nil {
				return nil, err
			}
			if clg := gapVal(meanAt(cr, e.CLKKicks), hk); clg < bestCLKLate {
				bestCLKLate = clg
			}
		}
		tbl.AddRow(row...)
		diffs = append(diffs, bestDistLate-bestCLKLate)
	}
	meanDiff := stats.Mean(diffs)
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("best-strategy late gap is %.3f points from Table 4's (mean over instances)", meanDiff),
		Claim: b.Claim, OK: meanDiff <= 1.0}}
	notes := []string{
		"compare against the Table 4 block above: each node spends 50 kicks (5 iterations x 10 kicks) against plain CLK's 400 — the paper's core tenth-of-the-budget claim, in kick currency.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runFigure2(r *Runner, e *Experiment) (*Artifact, error) {
	name := e.Instances[0]
	hk, err := r.HKBound(name)
	if err != nil {
		return nil, err
	}
	clkTbl := &Table{Header: []string{"kicks", "random", "geometric", "close", "random-walk"}}
	clkCSV := CSVFile{
		Name: "smoke/fig2_fl1577_clk.csv",
		Comment: schemaComment(e, "smoke/fig2_fl1577_clk.csv",
			"columns: label (<instance>/CLK-<strategy>/run<i>), kick (kick index at which the",
			"  incumbent improved), length (tour length after the improvement)"),
		Header: []string{"label", "kick", "length"},
	}
	byKick := map[clk.KickStrategy][]Trace{}
	for _, kick := range clk.AllKickStrategies {
		runs, err := r.CLKRuns(name, kick, e.CLKKicks, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		byKick[kick] = runs
		for _, t := range runs {
			for i := range t.X {
				clkCSV.AddRow(t.Label, t.X[i], t.L[i])
			}
		}
	}
	for _, cp := range []int64{40, 100, 200, 400} {
		row := []interface{}{cp}
		for _, kick := range clk.AllKickStrategies {
			row = append(row, gapCell(meanAt(byKick[kick], cp), hk))
		}
		clkTbl.AddRow(row...)
	}
	dr, err := r.SimRuns(name, 8, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
	if err != nil {
		return nil, err
	}
	distRuns := traces(dr)
	distCSV := CSVFile{
		Name: "smoke/fig2_fl1577_dist.csv",
		Comment: schemaComment(e, "smoke/fig2_fl1577_dist.csv",
			"columns: label (<instance>/DistCLK8/run<i>), virtual_ms (simnet virtual time of",
			"  the improvement, per-node), length (best tour length across the cluster)"),
		Header: []string{"label", "virtual_ms", "length"},
	}
	for _, t := range distRuns {
		for i := range t.X {
			distCSV.AddRow(t.Label, fmt.Sprintf("%.3f", msVal(float64(t.X[i]))), t.L[i])
		}
	}
	late := lateX(distRuns)
	distTbl := &Table{Header: []string{"virtual time", "DistCLK(8)"}}
	for _, frac := range []int64{5, 2, 1} {
		distTbl.AddRow(fmt.Sprintf("%.1f ms", msVal(float64(late/frac))),
			gapCell(meanAt(distRuns, late/frac), hk))
	}
	// Strategy separation: spread between the best and worst strategy at
	// the late checkpoint.
	bestLate, worstLate := math.Inf(1), math.Inf(-1)
	for _, kick := range clk.AllKickStrategies {
		g := gapVal(meanAt(byKick[kick], e.CLKKicks), hk)
		if g < bestLate {
			bestLate = g
		}
		if g > worstLate {
			worstLate = g
		}
	}
	spread := worstLate - bestLate
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("spread %.3f points at 400 kicks", spread),
		Claim: b.Claim, OK: spread > 0.1}}
	notes := []string{
		"full traces in results/smoke/fig2_fl1577_clk.csv (kick axis) and fig2_fl1577_dist.csv (virtual-ms axis); distances to the HK bound.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{clkTbl, distTbl}, notes),
		CSVs: []CSVFile{clkCSV, distCSV}, Deltas: deltas}, nil
}

func runFigure3(r *Runner, e *Experiment) (*Artifact, error) {
	name := e.Instances[0]
	hk, err := r.HKBound(name)
	if err != nil {
		return nil, err
	}
	csv := CSVFile{
		Name: "smoke/fig3_fl3795.csv",
		Comment: schemaComment(e, "smoke/fig3_fl3795.csv",
			"columns: label (<instance>/DistCLK<nodes>/run<i>), virtual_ms (simnet virtual",
			"  time of the improvement), length (best tour length across the cluster)",
			fmt.Sprintf("budgets: every node runs %d EA iterations — equal per-node budget,", e.NodeIters),
			"  the paper's per-node-time axis (larger clusters do proportionally more total work)"),
		Header: []string{"label", "virtual_ms", "length"},
	}
	byNodes := map[int][]Trace{}
	var finals []float64
	for _, n := range e.Nodes {
		dr, err := r.SimRuns(name, n, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
		if err != nil {
			return nil, err
		}
		runs := traces(dr)
		byNodes[n] = runs
		var fs []float64
		for _, t := range runs {
			fs = append(fs, float64(t.Final))
			for i := range t.X {
				csv.AddRow(t.Label, fmt.Sprintf("%.3f", msVal(float64(t.X[i]))), t.L[i])
			}
		}
		finals = append(finals, stats.Mean(fs))
	}
	late := lateX(byNodes[1])
	tbl := &Table{Header: []string{"virtual time", "DistCLK(1)", "DistCLK(2)", "DistCLK(4)", "DistCLK(8)"}}
	for _, frac := range []int64{8, 4, 2, 1} {
		row := []interface{}{fmt.Sprintf("%.1f ms", msVal(float64(late/frac)))}
		for _, n := range e.Nodes {
			row = append(row, gapCell(meanAt(byNodes[n], late/frac), hk))
		}
		tbl.AddRow(row...)
	}
	mean1, mean8 := finals[0], finals[len(finals)-1]
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("mean final length %0.f (8 nodes) vs %0.f (1 node)", mean8, mean1),
		Claim: b.Claim, OK: mean8 <= mean1}}
	notes := []string{
		"every node runs the same iteration budget (the paper's per-node-time axis), so larger clusters do proportionally more total work and finish at similar virtual times. Full traces in results/smoke/fig3_fl3795.csv.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runMessages(r *Runner, e *Experiment) (*Artifact, error) {
	name := e.Instances[0]
	dr, err := r.SimRuns(name, 8, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
	if err != nil {
		return nil, err
	}
	tbl := &Table{Header: []string{"run", "broadcasts", "per node", "in first 20% of virtual time"}}
	csv := CSVFile{
		Name: "smoke/messages.csv",
		Comment: schemaComment(e, "smoke/messages.csv",
			"columns: run, broadcasts (broadcast-sent events across the cluster), per_node,",
			"  early_pct (% of broadcasts within the first 20% of the run's virtual time)"),
		Header: []string{"run", "broadcasts", "per_node", "early_pct"},
	}
	var perNode []float64
	for i, run := range dr {
		var sent, early int
		cutoff := time.Duration(float64(run.Res.VirtualElapsed) * 0.2)
		for _, ev := range run.Res.Events {
			if ev.Kind != obs.KindBroadcastSent {
				continue
			}
			sent++
			if ev.At <= cutoff {
				early++
			}
		}
		pn := float64(sent) / 8
		perNode = append(perNode, pn)
		earlyPct := 0.0
		if sent > 0 {
			earlyPct = float64(early) / float64(sent) * 100
		}
		tbl.AddRow(i, sent, fmt.Sprintf("%.1f", pn), fmt.Sprintf("%.0f%%", earlyPct))
		csv.AddRow(i, sent, fmt.Sprintf("%.1f", pn), fmt.Sprintf("%.1f", earlyPct))
	}
	mean := stats.Mean(perNode)
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("%.1f broadcasts per node per run (mean)", mean),
		Claim: b.Claim, OK: mean < 20}}
	notes := []string{
		"a handful of messages per node per run — communication cost is negligible next to optimization, the paper's §4 conclusion; zero drops (fixed-latency loss-free links).",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}

func runVariator(r *Runner, e *Experiment) (*Artifact, error) {
	name := e.Instances[0]
	dr, err := r.SimRuns(name, 8, e.NodeIters, clk.KickRandomWalk, e.Runs, e.Seed)
	if err != nil {
		return nil, err
	}
	tbl := &Table{Header: []string{"run", "improvements", "max perturb level", "level-ups", "restarts"}}
	csv := CSVFile{
		Name: "smoke/variator.csv",
		Comment: schemaComment(e, "smoke/variator.csv",
			"columns: run, improvements (improve + improve-received events), max_level",
			"  (highest NumPerturbations level), level_ups (perturb-level events > 1), restarts",
			fmt.Sprintf("EA constants: c_v=%d, c_r=%d (quick-tier compression of the paper's 64/256)", smokeCV, smokeCR)),
		Header: []string{"run", "improvements", "max_level", "level_ups", "restarts"},
	}
	minMaxLevel := int64(1 << 62)
	for i, run := range dr {
		improves, levelUps, restarts := 0, 0, 0
		maxLevel := int64(1)
		for _, ev := range run.Res.Events {
			switch ev.Kind {
			case obs.KindImprove, obs.KindImproveReceived:
				improves++
			case obs.KindPerturbLevel:
				if ev.Value > 1 {
					levelUps++
				}
				if ev.Value > maxLevel {
					maxLevel = ev.Value
				}
			case obs.KindRestart:
				restarts++
			}
		}
		if maxLevel < minMaxLevel {
			minMaxLevel = maxLevel
		}
		tbl.AddRow(i, improves, maxLevel, levelUps, restarts)
		csv.AddRow(i, improves, maxLevel, levelUps, restarts)
	}
	b := e.Baselines[0]
	deltas := []Delta{{Exp: e.ID, Row: b.Row, Metric: b.Metric, Paper: b.Paper,
		Repro: fmt.Sprintf("max level >= %d in every run", minMaxLevel),
		Claim: b.Claim, OK: minMaxLevel >= 2}}
	notes := []string{
		fmt.Sprintf("levels follow NumPerturbations = NumNoImprovements/%d + 1; restart when the counter exceeds %d — the counter-driven escalation engages during every stagnation phase, the two narrated behaviours of §4.2.1.", smokeCV, smokeCR),
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{tbl}, notes), CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}
