package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// golden compares got against testdata/<name>, rewriting it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run %s -update` to create)", err, t.Name())
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// syntheticArtifact builds a fixed artifact so rendering is exercised
// without running any solver.
func syntheticArtifact() *Artifact {
	e := &Experiment{
		ID: "t9", Paper: "Table 9", Section: "§9.9",
		Title:     "synthetic rendering fixture",
		Instances: []string{"x100", "y200"},
		Runs:      2, Seed: 1, CLKKicks: 10, NodeIters: 3, Nodes: []int{8},
		Baselines: []Baseline{{Row: "x100", Metric: "gap", Paper: "0.1%", Claim: "gap < 1%"}},
	}
	tbl := &Table{Header: []string{"instance", "gap", "note"}}
	tbl.AddRow("x100", 0.125, "pipe | escaped")
	tbl.AddRow("y200", "-", "plain")
	csv := CSVFile{
		Name:    "smoke/t9.csv",
		Comment: schemaComment(e, "smoke/t9.csv", "columns: instance, gap_pct"),
		Header:  []string{"instance", "gap_pct"},
	}
	csv.AddRow("x100", 0.125)
	csv.AddRow("y200", int64(7))
	return &Artifact{
		Exp:  e,
		Body: sectionBody(e, []*Table{tbl}, []string{"a note"}),
		CSVs: []CSVFile{csv},
		Deltas: []Delta{{Exp: "t9", Row: "x100", Metric: "gap", Paper: "0.1%",
			Repro: "0.125%", Claim: "gap < 1%", OK: true}},
	}
}

func TestSectionBodyGolden(t *testing.T) {
	golden(t, "section_body.md", syntheticArtifact().Body)
}

func TestCSVRenderGolden(t *testing.T) {
	golden(t, "csv_render.csv", syntheticArtifact().CSVs[0].Render())
}

func TestReproductionMDGolden(t *testing.T) {
	a := syntheticArtifact()
	b := syntheticArtifact()
	b.Deltas[0].OK = false
	b.Deltas[0].Repro = "2.5%"
	golden(t, "reproduction.md", ReproductionMD([]*Artifact{a, b}))
}

func TestTableMarkdownEscapesPipes(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow("x|y")
	got := tbl.Markdown()
	want := "| a |\n| --- |\n| x\\|y |\n"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestManifestShape(t *testing.T) {
	seen := map[string]bool{}
	r := NewRunner()
	for _, e := range Manifest() {
		if e.ID == "" || seen[e.ID] {
			t.Errorf("experiment ID %q empty or duplicated", e.ID)
		}
		seen[e.ID] = true
		if e.run == nil {
			t.Errorf("%s: no run hook", e.ID)
		}
		if len(e.Baselines) == 0 {
			t.Errorf("%s: no baselines to diff against", e.ID)
		}
		// Paper reproductions need multiple seeds behind every claim. The
		// scaling extension checks deterministic protocol/topology
		// properties and its 1024-node cells are the cost ceiling of the
		// whole manifest, so a single seeded run is its deliberate budget.
		minRuns := 2
		if e.ID == "scaling" {
			minRuns = 1
		}
		if e.Runs < minRuns {
			t.Errorf("%s: fewer than %d runs", e.ID, minRuns)
		}
		for _, name := range e.Instances {
			if _, err := r.Testbed.SpecByName(name); err != nil {
				t.Errorf("%s: instance %s: %v", e.ID, name, err)
			}
		}
	}
}
