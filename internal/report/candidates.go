package report

import (
	"fmt"
	"math"

	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// candStrategies is the grid order of the candidate-strategy table: the
// registry order of internal/neighbor, default first.
var candStrategies = []string{"knn", "quadrant", "alpha", "delaunay"}

// candGains is the gain-rule axis: the classic strictly-positive partial
// gain rule, and the relaxed rule at the depth the auto-selector uses.
var candGains = []struct {
	name  string
	relax int
}{
	{"strict", 0},
	{"relaxed", 3},
}

// runCandidates renders the PR 7 extension table: the candidate-strategy x
// gain-rule cross-product at a fixed kick budget on three geometry families,
// plus the instance statistics the auto-selector reads and the choice it
// makes. Everything is seeded plain-CLK in kick currency, so the block is
// byte-stable like the paper tables.
func runCandidates(r *Runner, e *Experiment) (*Artifact, error) {
	grid := &Table{Header: []string{"instance", "gain", "knn", "quadrant", "alpha", "delaunay"}}
	auto := &Table{Header: []string{"instance", "cluster cv", "axis degeneracy", "auto choice", "relax depth"}}
	csv := CSVFile{
		Name: "smoke/candidates.csv",
		Comment: schemaComment(e, "smoke/candidates.csv",
			"columns: instance, strategy (candidate-set builder), gain (strict|relaxed, relaxed",
			"  = depth-3 bounded non-positive partial gains), early_gap_pct / late_gap_pct",
			"  (mean distance to the Held-Karp bound after 40 and 400 kicks)",
			fmt.Sprintf("denominators: HK ascent bounds, %d iterations", smokeHKIters)),
		Header: []string{"instance", "strategy", "gain", "early_gap_pct", "late_gap_pct"},
	}
	early := e.CLKKicks / 10
	nonDefaultWins := 0
	coordAware := true
	for _, name := range e.Instances {
		hk, err := r.HKBound(name)
		if err != nil {
			return nil, err
		}
		strictBase := math.NaN()
		type cell struct {
			strategy, gain string
			late           float64
		}
		var cells []cell
		for _, g := range candGains {
			row := []interface{}{name, g.name}
			for _, s := range candStrategies {
				runs, err := r.CLKCandRuns(name, s, g.relax, e.CLKKicks, e.Runs, e.Seed)
				if err != nil {
					return nil, err
				}
				eg := gapVal(meanAt(runs, early), hk)
				lg := gapVal(meanAt(runs, e.CLKKicks), hk)
				row = append(row, gapCell(meanAt(runs, e.CLKKicks), hk))
				csv.AddRow(name, s, g.name, fmt.Sprintf("%.3f", eg), fmt.Sprintf("%.3f", lg))
				if s == "knn" && g.relax == 0 {
					strictBase = lg
				}
				cells = append(cells, cell{s, g.name, lg})
			}
			grid.AddRow(row...)
		}
		for _, c := range cells {
			if c.strategy == "knn" && c.gain == "strict" {
				continue
			}
			if c.late <= strictBase {
				nonDefaultWins++
				break
			}
		}
		in, err := r.Instance(name)
		if err != nil {
			return nil, err
		}
		st := tsp.Describe(in)
		choice := neighbor.Auto(st)
		auto.AddRow(name, fmt.Sprintf("%.2f", st.ClusterCV),
			fmt.Sprintf("%.2f", st.AxisDegeneracy), choice.Strategy, choice.RelaxDepth)
		if choice.Strategy != "delaunay" && choice.Strategy != "quadrant" {
			coordAware = false
		}
	}
	b0, b1 := e.Baselines[0], e.Baselines[1]
	deltas := []Delta{
		{Exp: e.ID, Row: b0.Row, Metric: b0.Metric, Paper: b0.Paper,
			Repro: fmt.Sprintf("a non-default cell ties or beats knn/strict on %d of %d instances",
				nonDefaultWins, len(e.Instances)),
			Claim: b0.Claim, OK: nonDefaultWins == len(e.Instances)},
		{Exp: e.ID, Row: b1.Row, Metric: b1.Metric, Paper: b1.Paper,
			Repro: map[bool]string{
				true:  "auto picked delaunay or quadrant on every geometric instance",
				false: "auto picked knn or alpha on at least one geometric instance",
			}[coordAware],
			Claim: b1.Claim, OK: coordAware},
	}
	notes := []string{
		"cells are late (400-kick) mean distances to the HK bound; early checkpoints in results/smoke/candidates.csv. The second table shows the exact statistics tsp.Describe feeds neighbor.Auto and the resulting WithCandidates(\"auto\") choice — cmd/tspstat prints the same probe.",
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{grid, auto}, notes),
		CSVs: []CSVFile{csv}, Deltas: deltas}, nil
}
