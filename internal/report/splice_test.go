package report

import (
	"strings"
	"testing"
)

const spliceDoc = `# Title

prose before

<!-- repro:begin t1 -->
old generated content
<!-- repro:end t1 -->

prose between

<!-- repro:begin t2 -->
<!-- repro:end t2 -->

prose after
`

func TestSpliceReplacesRegion(t *testing.T) {
	out, err := Splice(spliceDoc, "t1", "new body\n")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "old generated content") {
		t.Error("old content survived the splice")
	}
	if !strings.Contains(out, "<!-- repro:begin t1 -->\nnew body\n<!-- repro:end t1 -->") {
		t.Errorf("body not spliced between markers:\n%s", out)
	}
	for _, keep := range []string{"# Title", "prose before", "prose between", "prose after",
		"<!-- repro:begin t2 -->"} {
		if !strings.Contains(out, keep) {
			t.Errorf("surrounding text %q lost", keep)
		}
	}
}

func TestSpliceIdempotent(t *testing.T) {
	once, err := Splice(spliceDoc, "t1", "body\n")
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Splice(once, "t1", "body\n")
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Errorf("splice not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestSpliceEmptyRegion(t *testing.T) {
	out, err := Splice(spliceDoc, "t2", "filled\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<!-- repro:begin t2 -->\nfilled\n<!-- repro:end t2 -->") {
		t.Errorf("empty marker region not filled:\n%s", out)
	}
}

func TestSpliceErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		id   string
	}{
		{"missing begin", "<!-- repro:end x -->\n", "x"},
		{"missing end", "<!-- repro:begin x -->\n", "x"},
		{"absent id", spliceDoc, "nope"},
		{"duplicate begin", "<!-- repro:begin x -->\n<!-- repro:begin x -->\n<!-- repro:end x -->\n", "x"},
		{"duplicate end", "<!-- repro:begin x -->\n<!-- repro:end x -->\n<!-- repro:end x -->\n", "x"},
		{"end before begin", "<!-- repro:end x -->\n<!-- repro:begin x -->\n", "x"},
	}
	for _, c := range cases {
		if _, err := Splice(c.doc, c.id, "body"); err == nil {
			t.Errorf("%s: expected error, got none", c.name)
		}
	}
}

func TestSpliceAll(t *testing.T) {
	out, err := SpliceAll(spliceDoc, []Section{{ID: "t1", Body: "one\n"}, {ID: "t2", Body: "two\n"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Errorf("sections not spliced:\n%s", out)
	}
	if _, err := SpliceAll(spliceDoc, []Section{{ID: "missing", Body: "x"}}); err == nil {
		t.Error("SpliceAll with unknown id: expected error")
	}
}
