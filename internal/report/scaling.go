package report

import (
	"fmt"
	"time"

	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/simnet"
	"distclk/internal/topology"
)

// The scaling experiment extends the paper past its 8-machine cluster:
// simnet runs the same EA on up to 1024 virtual nodes over the
// hierarchical topologies and the tour-diff wire protocol, entirely in
// virtual time. Two parts:
//
//   - A topology sweep at smoke-tier cost: {8, 64, 256, 1024} nodes ×
//     {ring, hier-hypercube, tree-of-rings} on the E1k.1 stand-in,
//     recording quality vs virtual CPU, diameter, and bytes on wire.
//   - A delta-activation run sized so the diff protocol dominates: a
//     600-city instance keeps every node in active LK descent, so almost
//     every broadcast after a stream's first full ships as a delta.
//
// Sweep budgets are deliberately tiny (the 1024-node rows are the cost
// ceiling of the whole manifest); the delta-activation run is the single
// most expensive artifact in the repository and is documented as such.
const (
	scaleSweepIters  = 6
	scaleSweepKicks  = 1
	scaleDeltaCities = 600
	scaleDeltaIters  = 24
	scaleDeltaCV     = 64
	scaleDeltaCR     = 256
	scaleDeltaLatMS  = 50
)

// scaleSweepTopos is the topology axis of the sweep, in render order.
var scaleSweepTopos = []topology.Kind{topology.Ring, topology.HierHypercube, topology.TreeOfRings}

// scaleSweepCfg builds the sweep Config for one (topology, nodes) cell.
func scaleSweepCfg(topo topology.Kind, nodes int) simnet.Config {
	ea := core.DefaultConfig()
	ea.CV, ea.CR = smokeCV, smokeCR
	ea.KicksPerCall = scaleSweepKicks
	return simnet.Config{
		Nodes:    nodes,
		Topo:     topo,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: scaleSweepIters},
		Exchange: dist.ExchangeConfig{Delta: true, KeyframeEvery: 16, Coalesce: true},
		Link: simnet.Link{
			Latency: simnet.Latency{Kind: simnet.LatencyFixed, Base: 5 * time.Millisecond},
		},
	}
}

// scaleDeltaCfg builds the delta-activation Config: a 1024-node ring with
// per-node search long enough that local improvements, not stream-first
// fulls, dominate the exchange count. The 50ms links keep foreign
// adoptions rare (an adopted tour resets every outgoing diff baseline,
// forcing full-tour fallbacks on the next broadcast).
func scaleDeltaCfg() simnet.Config {
	ea := core.DefaultConfig()
	ea.CV, ea.CR = scaleDeltaCV, scaleDeltaCR
	ea.KicksPerCall = 1
	return simnet.Config{
		Nodes:    1024,
		Topo:     topology.Ring,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: scaleDeltaIters},
		Exchange: dist.ExchangeConfig{Delta: true, KeyframeEvery: 64, Coalesce: true},
		Link: simnet.Link{
			Latency: simnet.Latency{Kind: simnet.LatencyFixed, Base: scaleDeltaLatMS * time.Millisecond},
		},
	}
}

// legacyWireBytes is what the run would have shipped under the legacy
// full-tour protocol: every exchanged tour at full encoding.
func legacyWireBytes(f simnet.FaultStats, cities int) int64 {
	return (f.FullTours + f.DeltaTours) * int64(dist.FullWireBytes(cities))
}

// deltaShare is the delta fraction of all exchanged tours.
func deltaShare(f simnet.FaultStats) float64 {
	total := f.FullTours + f.DeltaTours
	if total == 0 {
		return 0
	}
	return float64(f.DeltaTours) / float64(total)
}

func runScaling(r *Runner, e *Experiment) (*Artifact, error) {
	name := e.Instances[0]
	in, err := r.Instance(name)
	if err != nil {
		return nil, err
	}
	hk, err := r.HKBound(name)
	if err != nil {
		return nil, err
	}

	sweepTbl := &Table{Header: []string{"topology", "nodes", "diameter", "virtual ms", "gap@50%", "gap final", "delta share", "wire KB", "vs full-tour KB"}}
	sweepCSV := CSVFile{
		Name: "smoke/scaling.csv",
		Comment: schemaComment(e, "smoke/scaling.csv",
			"columns: topology, nodes, diameter (hop bound of the overlay), virtual_ms,",
			"  gap50_pct / gap_final_pct (% over the Held-Karp bound at 50% / 100% of the",
			"  run's virtual time — the quality-vs-virtual-CPU curve), broadcasts,",
			"  full_tours / delta_tours (wire messages by kind), delta_pct, wire_bytes,",
			"  legacy_bytes (what full-tour-only exchange would have shipped), coalesced",
			fmt.Sprintf("budgets: %d EA iterations/node, %d kick/call, c_v=%d c_r=%d, keyframe 16,",
				scaleSweepIters, scaleSweepKicks, smokeCV, smokeCR),
			"  coalescing on, fixed 5ms links, no faults"),
		Header: []string{"topology", "nodes", "diameter", "virtual_ms", "gap50_pct", "gap_final_pct",
			"broadcasts", "full_tours", "delta_tours", "delta_pct", "wire_bytes", "legacy_bytes", "coalesced"},
	}
	var sweepSavings, sweepLegacy int64
	allCellsSaved := true
	diam1024 := map[topology.Kind]int{}
	for _, topo := range scaleSweepTopos {
		for _, nodes := range e.Nodes {
			key := fmt.Sprintf("scaling/%s/%v/%d", name, topo, nodes)
			runs := r.SimRunsEx(key, in, scaleSweepCfg(topo, nodes), e.Runs, e.Seed)
			res := runs[0].Res
			tr := runs[0].Trace
			f := res.Faults
			d := topology.Diameter(topo, nodes)
			if nodes == 1024 {
				diam1024[topo] = d
			}
			vms := msVal(float64(res.VirtualElapsed.Microseconds()))
			half := res.VirtualElapsed.Microseconds() / 2
			legacy := legacyWireBytes(f, in.N())
			sweepSavings += legacy - f.WireBytes
			sweepLegacy += legacy
			if f.WireBytes >= legacy {
				allCellsSaved = false
			}
			share := deltaShare(f)
			sweepTbl.AddRow(topo.String(), nodes, d, fmt.Sprintf("%.0f", vms),
				gapCell(float64(tr.At(half)), hk), gapCell(float64(tr.Final), hk),
				fmt.Sprintf("%.0f%%", share*100),
				fmt.Sprintf("%.0f", float64(f.WireBytes)/1024), fmt.Sprintf("%.0f", float64(legacy)/1024))
			sweepCSV.AddRow(topo.String(), nodes, d, fmt.Sprintf("%.0f", vms),
				fmt.Sprintf("%.3f", gapVal(float64(tr.At(half)), hk)),
				fmt.Sprintf("%.3f", gapVal(float64(tr.Final), hk)),
				res.Broadcasts(), f.FullTours, f.DeltaTours,
				fmt.Sprintf("%.1f", share*100), f.WireBytes, legacy, f.Coalesced)
		}
	}

	dIn := r.ScaleInstance(scaleDeltaCities)
	dHK := r.ScaleHKBound(scaleDeltaCities)
	dRuns := r.SimRunsEx(fmt.Sprintf("scaling/delta/%d", scaleDeltaCities), dIn, scaleDeltaCfg(), 1, e.Seed)
	dRes := dRuns[0].Res
	df := dRes.Faults
	dShare := deltaShare(df)
	deltaTbl := &Table{Header: []string{"run", "broadcasts", "full tours", "delta tours", "delta share", "wire KB", "vs full-tour KB", "gap final"}}
	deltaTbl.AddRow(fmt.Sprintf("uniform%d, 1024-node ring", scaleDeltaCities),
		dRes.Broadcasts(), df.FullTours, df.DeltaTours, fmt.Sprintf("%.1f%%", dShare*100),
		fmt.Sprintf("%.0f", float64(df.WireBytes)/1024),
		fmt.Sprintf("%.0f", float64(legacyWireBytes(df, scaleDeltaCities))/1024),
		gapCell(float64(dRes.BestLength), dHK))
	deltaCSV := CSVFile{
		Name: "smoke/scaling_delta.csv",
		Comment: schemaComment(e, "smoke/scaling_delta.csv",
			"columns: cities, nodes, topology, iterations, broadcasts, full_tours,",
			"  delta_tours, delta_pct, delta_gaps, wire_bytes, legacy_bytes, coalesced,",
			"  virtual_ms, gap_final_pct (% over the Held-Karp bound)",
			fmt.Sprintf("config: %d-city uniform instance (seed %d), 1024-node ring, %d EA",
				scaleDeltaCities, smokeInstanceSeed, scaleDeltaIters),
			fmt.Sprintf("  iterations/node at 1 kick/call, c_v=%d c_r=%d, keyframe 64, coalescing on,",
				scaleDeltaCV, scaleDeltaCR),
			fmt.Sprintf("  fixed %dms links — sized so nodes stay in active LK descent and the", scaleDeltaLatMS),
			"  tour-diff protocol dominates the wire (see DESIGN.md §12)"),
		Header: []string{"cities", "nodes", "topology", "iterations", "broadcasts", "full_tours",
			"delta_tours", "delta_pct", "delta_gaps", "wire_bytes", "legacy_bytes", "coalesced",
			"virtual_ms", "gap_final_pct"},
	}
	deltaCSV.AddRow(scaleDeltaCities, 1024, topology.Ring.String(), scaleDeltaIters,
		dRes.Broadcasts(), df.FullTours, df.DeltaTours, fmt.Sprintf("%.1f", dShare*100),
		df.DeltaGaps, df.WireBytes, legacyWireBytes(df, scaleDeltaCities), df.Coalesced,
		fmt.Sprintf("%.0f", msVal(float64(dRes.VirtualElapsed.Microseconds()))),
		fmt.Sprintf("%.3f", gapVal(float64(dRes.BestLength), dHK)))

	ringD, hierD, treeD := diam1024[topology.Ring], diam1024[topology.HierHypercube], diam1024[topology.TreeOfRings]
	deltas := []Delta{
		{
			Exp: e.ID, Row: e.Baselines[0].Row, Metric: e.Baselines[0].Metric,
			Paper: e.Baselines[0].Paper,
			Repro: fmt.Sprintf("%.1f%% of %d exchanged tours are deltas (%d full / %d delta)",
				dShare*100, df.FullTours+df.DeltaTours, df.FullTours, df.DeltaTours),
			Claim: e.Baselines[0].Claim, OK: dShare > 0.80,
		},
		{
			Exp: e.ID, Row: e.Baselines[1].Row, Metric: e.Baselines[1].Metric,
			Paper: e.Baselines[1].Paper,
			Repro: fmt.Sprintf("%.0f%% of legacy bytes saved across the sweep (%d KB of %d KB)",
				float64(sweepSavings)/float64(sweepLegacy)*100, sweepSavings/1024, sweepLegacy/1024),
			Claim: e.Baselines[1].Claim, OK: allCellsSaved,
		},
		{
			Exp: e.ID, Row: e.Baselines[2].Row, Metric: e.Baselines[2].Metric,
			Paper: e.Baselines[2].Paper,
			Repro: fmt.Sprintf("diameter at 1024 nodes: ring %d, hier-hypercube %d, tree-of-rings %d",
				ringD, hierD, treeD),
			Claim: e.Baselines[2].Claim, OK: hierD < ringD && treeD < ringD,
		},
	}
	notes := []string{
		"the sweep holds per-node budgets fixed, so virtual time barely moves with cluster size while total virtual CPU grows 128x from 8 to 1024 nodes — quality per virtual-CPU-second is the curve to read. Full per-cell counters in results/smoke/scaling.csv.",
		fmt.Sprintf("the delta-activation run is sized so the wire protocol, not stream setup, dominates: every (sender, peer) stream opens with one unavoidable full tour (2048 on a 1024-ring), after which active LK descent on the %d-city instance ships almost every broadcast as a segment diff. Counters in results/smoke/scaling_delta.csv; wire format and fallback rules in DESIGN.md §12.", scaleDeltaCities),
	}
	return &Artifact{Exp: e, Body: sectionBody(e, []*Table{sweepTbl, deltaTbl}, notes),
		CSVs: []CSVFile{sweepCSV, deltaCSV}, Deltas: deltas}, nil
}
