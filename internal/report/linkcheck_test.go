package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	writeDoc(t, dir, "a.md", `# Doc A

## Some Heading

[good file](b.md) [good anchor](b.md#target-heading) [self](#some-heading)
[external](https://example.com/x) [sub](sub/c.md)
[bad file](missing.md) [bad anchor](b.md#nope) [bad self](#absent)
`)
	writeDoc(t, dir, "b.md", "# Doc B\n\n## Target Heading\n\ntext\n")
	writeDoc(t, dir, "sub/c.md", "# C\n\n[up](../a.md)\n")

	broken, err := CheckLinks(dir, []string{"a.md", "b.md", "sub/c.md"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a.md: #absent (missing anchor)",
		"a.md: b.md#nope (missing anchor)",
		"a.md: missing.md (missing file)",
	}
	if len(broken) != len(want) {
		t.Fatalf("got %d broken links %v, want %d", len(broken), broken, len(want))
	}
	for i := range want {
		if broken[i] != want[i] {
			t.Errorf("broken[%d] = %q, want %q", i, broken[i], want[i])
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Some Heading":                  "some-heading",
		"§4.2.1 variator strength":      "421-variator-strength",
		"Table 4 / Table 5 — checkmark": "table-4--table-5--checkmark",
		"`code` in heading":             "code-in-heading",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRepoDocLinks runs the real link check over the repository's documents
// — the same gate `make doc-links` applies in CI.
func TestRepoDocLinks(t *testing.T) {
	root := filepath.Join("..", "..")
	files := DocFiles(root)
	if len(files) < 3 {
		t.Fatalf("expected repo docs at %s, found %v", root, files)
	}
	broken, err := CheckLinks(root, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("broken intra-repo links:\n%s", strings.Join(broken, "\n"))
	}
}
