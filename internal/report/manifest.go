package report

// Smoke-tier constants. The smoke tier is the deterministic reproduction
// the repository commits and CI regenerates: paper instances stand in at
// 1/16 scale (bench's 120-city floor applies), plain CLK is budgeted in
// kicks, and clusters run on simnet's virtual clock — no wall time anywhere,
// so regeneration is byte-identical for a fixed manifest.
const (
	// smokeSizeScale divides the paper's instance sizes.
	smokeSizeScale = 16
	// smokeInstanceSeed fixes stand-in geometry (independent of run seeds).
	smokeInstanceSeed = 1
	// smokeHKIters bounds the Held-Karp ascent for quality denominators.
	smokeHKIters = 50
	// smokeCV/smokeCR are the EA constants scaled to smoke budgets, the
	// same compression quick mode uses (see EXPERIMENTS.md methodology).
	smokeCV = 4
	smokeCR = 16
	// smokeKicksPerCall bounds the embedded CLK run per EA iteration.
	smokeKicksPerCall = 10
)

// Baseline is one paper number (or narrated claim) an experiment is checked
// against. The smoke tier runs at ~1/1000 of the paper's compute, so most
// checks are shape claims (orderings, ratios > 1, counts per node) rather
// than absolute-value tolerances; the paper's number is recorded verbatim
// so REPRODUCTION.md can show both side by side.
type Baseline struct {
	// Row names the table row / figure feature the paper value belongs to.
	Row string
	// Metric is what is being compared (e.g. "speed-up factor").
	Metric string
	// Paper is the paper's reported value or statement, formatted.
	Paper string
	// Claim is the reproduction predicate the smoke tier must satisfy.
	Claim string
}

// Experiment declares one paper table/figure reproduction: instances, node
// counts, seeds, budgets, and the paper baselines it is diffed against.
// The run hook executes it through the deterministic Runner entry points.
type Experiment struct {
	// ID keys the EXPERIMENTS.md marker pair and the results/smoke files.
	ID string
	// Paper and Section locate the evaluation artifact ("Table 1", "§3.2").
	Paper   string
	Section string
	// Title is a one-line description of what the artifact shows.
	Title string
	// Instances are paper instance names resolved against the bench
	// testbed (synthetic stand-ins at smokeSizeScale).
	Instances []string
	// Runs and Seed define the run matrix: run r uses Seed + 101*r.
	Runs int
	Seed int64
	// CLKKicks budgets each plain-CLK run (0 = experiment has no CLK arm).
	CLKKicks int64
	// NodeIters budgets each node of the largest cluster in EA iterations;
	// smaller clusters receive proportionally more so total work is equal
	// (the paper's equal-total-CPU comparisons).
	NodeIters int64
	// Nodes lists the cluster sizes exercised.
	Nodes []int
	// Baselines are the paper values diffed in REPRODUCTION.md; the run
	// hook must produce exactly one Delta per baseline, in order.
	Baselines []Baseline

	run func(*Runner, *Experiment) (*Artifact, error)
}

// Run executes the experiment and returns its rendered artifact.
func (e *Experiment) Run(r *Runner) (*Artifact, error) { return e.run(r, e) }

// Artifact is the rendered output of one experiment: the markdown block
// spliced into EXPERIMENTS.md, the results/ CSV files, and the paper-delta
// rows for REPRODUCTION.md.
type Artifact struct {
	Exp    *Experiment
	Body   string
	CSVs   []CSVFile
	Deltas []Delta
}

// Delta is one row of the paper-vs-reproduction report.
type Delta struct {
	Exp    string
	Row    string
	Metric string
	// Paper is the paper's value; Repro the smoke tier's measurement.
	Paper string
	Repro string
	// Claim restates the predicate checked; OK reports whether it held.
	Claim string
	OK    bool
}

// Manifest returns the experiment registry in paper order: one entry per
// table/figure of the evaluation plus the two §4 analyses. Budgets follow
// the paper's ratios in deterministic currency: plain CLK gets 10x the
// per-node kicks of the 8-node cluster (NodeIters × smokeKicksPerCall).
func Manifest() []*Experiment {
	return []*Experiment{
		{
			ID:        "table1",
			Paper:     "Table 1",
			Section:   "§3.2",
			Title:     "speed-up: work to reach fixed quality levels, CLK vs DistCLK(1) vs DistCLK(8)",
			Instances: []string{"pr2392", "fl3795"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  960,
			NodeIters: 12,
			Nodes:     []int{1, 8},
			Baselines: []Baseline{
				{
					Row: "pr2392", Metric: "speed-up factor t(1 node)/t(8 nodes)",
					Paper: "23.01 at level +0.1% (super-linear, > 8)",
					Claim: "factor > 1 at the tightest level both cluster sizes reach",
				},
				{
					Row: "fl3795", Metric: "speed-up factor t(1 node)/t(8 nodes)",
					Paper: "CLK reaches no level in any run; DistCLK(8) reaches all",
					Claim: "factor > 1 at the tightest level both cluster sizes reach",
				},
			},
			run: runTable1,
		},
		{
			ID:        "table2",
			Paper:     "Table 2",
			Section:   "§3.3",
			Title:     "final quality vs the LKH-style, multilevel and tour-merging baselines",
			Instances: []string{"pr2392", "fl3795"},
			Runs:      2,
			Seed:      1,
			NodeIters: 96,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "ML-CLK", Metric: "final quality rank",
					Paper: "fastest baseline, worst quality on every instance",
					Claim: "ML-CLK has the worst gap of the three baselines on every instance",
				},
				{
					Row: "DistCLK(8)", Metric: "final gap vs baselines",
					Paper: "best final quality on every instance (quick tier); competitive as instances grow",
					Claim: "DistCLK(8) beats ML-CLK's final gap on every instance",
				},
			},
			run: runTable2,
		},
		{
			ID:        "table3",
			Paper:     "Table 3",
			Section:   "§3.3",
			Title:     "runs reaching the reference tour, per kicking strategy, CLK vs DistCLK(8)",
			Instances: []string{"C1k.1", "E1k.1", "fl1577"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  400,
			NodeIters: 5,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "all cells", Metric: "success counts, Dist vs CLK",
					Paper: "DistCLK dominates CLK everywhere except fl1577/random (38/40 on fl3795)",
					Claim: "DistCLK ties or beats CLK's count in at least half the strategy cells",
				},
			},
			run: runTable3,
		},
		{
			ID:        "table4",
			Paper:     "Table 4",
			Section:   "§3.3",
			Title:     "plain-CLK mean distance to the HK bound at early/late checkpoints per strategy",
			Instances: []string{"C1k.1", "E1k.1", "fl1577", "pr2392"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  400,
			Baselines: []Baseline{
				{
					Row: "geometric kick", Metric: "late-checkpoint rank",
					Paper: "worst CLK strategy on small instances",
					Claim: "geometric is the best strategy on no smoke instance",
				},
			},
			run: runTable4,
		},
		{
			ID:        "table5",
			Paper:     "Table 5",
			Section:   "§3.3",
			Title:     "DistCLK(8) mean distance to the HK bound at early/late virtual checkpoints",
			Instances: []string{"C1k.1", "E1k.1", "fl1577", "pr2392"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  400,
			NodeIters: 5,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "all instances", Metric: "late gap, Dist(1/10 kicks/node) vs CLK",
					Paper: "comparable or better quality at one tenth the per-node time",
					Claim: "mean late gap across instances within 1.0 point of Table 4's best strategy",
				},
			},
			run: runTable5,
		},
		{
			ID:        "fig2",
			Paper:     "Figure 2",
			Section:   "§3.3",
			Title:     "convergence: kicking strategies separate; DistCLK(8) vs plain CLK",
			Instances: []string{"fl1577"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  400,
			NodeIters: 5,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "fl1577", Metric: "strategy separation at the late checkpoint",
					Paper: "strategies separate clearly; ranking is instance-dependent",
					Claim: "best-to-worst strategy spread at the late checkpoint exceeds 0.1 points",
				},
			},
			run: runFigure2,
		},
		{
			ID:        "fig3",
			Paper:     "Figure 3",
			Section:   "§3.2",
			Title:     "parallelization: 1/2/4/8 nodes at equal per-node budget on the drilling stand-in",
			Instances: []string{"fl3795"},
			Runs:      2,
			Seed:      1,
			NodeIters: 12,
			Nodes:     []int{1, 2, 4, 8},
			Baselines: []Baseline{
				{
					Row: "fl3795", Metric: "final quality ordering",
					Paper: "the 8-node curve dominates 1 node, which dominates plain CLK",
					Claim: "DistCLK(8) final length <= DistCLK(1) final length",
				},
			},
			run: runFigure3,
		},
		{
			ID:        "messages",
			Paper:     "§4",
			Section:   "§4",
			Title:     "communication analysis: broadcasts per run and per node",
			Instances: []string{"sw24978"},
			Runs:      2,
			Seed:      1,
			NodeIters: 6,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "sw24978, 8 nodes", Metric: "broadcasts per node per run",
					Paper: "84.9 broadcasts per run (~11 per node); overhead negligible",
					Claim: "fewer than 20 broadcasts per node per run",
				},
			},
			run: runMessages,
		},
		{
			ID:        "variator",
			Paper:     "§4.2.1",
			Section:   "§4.2.1",
			Title:     "variator strength: NumPerturbations escalation and restart timeline",
			Instances: []string{"fl3795"},
			Runs:      2,
			Seed:      1,
			NodeIters: 8,
			Nodes:     []int{8},
			Baselines: []Baseline{
				{
					Row: "fl3795", Metric: "escalation engages during stagnation",
					Paper: "NumPerturbations escalates to 2-4 and resets on improvement",
					Claim: "max perturbation level >= 2 in every run",
				},
			},
			run: runVariator,
		},
		{
			ID:        "candidates",
			Paper:     "§2.1 (extension)",
			Section:   "§2.1",
			Title:     "candidate-set strategies x gain rule at a fixed kick budget, with the auto-selector's choices",
			Instances: []string{"E1k.1", "C1k.1", "fl3795"},
			Runs:      2,
			Seed:      1,
			CLKKicks:  400,
			Baselines: []Baseline{
				{
					Row: "all instances", Metric: "non-default configuration vs knn/strict late gap",
					Paper: "not tabulated (the paper fixes one neighbor-list scheme; relaxed gain is the companion speed-up technique)",
					Claim: "on every instance some non-default strategy or gain cell ties or beats knn/strict",
				},
				{
					Row: "auto selector", Metric: "choice per geometry",
					Paper: "n/a (repo extension; see DESIGN.md §10)",
					Claim: "auto picks a coordinate-aware strategy (delaunay or quadrant) on every geometric instance",
				},
			},
			run: runCandidates,
		},
		{
			ID:        "scaling",
			Paper:     "§3.2 (extension)",
			Section:   "§3.2",
			Title:     "scaling past the paper: 8-1024 virtual nodes, hierarchical topologies, tour-diff wire protocol",
			Instances: []string{"E1k.1"},
			Runs:      1,
			Seed:      1,
			NodeIters: scaleSweepIters,
			Nodes:     []int{8, 64, 256, 1024},
			Baselines: []Baseline{
				{
					Row: "1024-node ring, delta activation", Metric: "delta share of exchanged tours",
					Paper: "n/a (the paper stops at 8 physical machines and ships full tours)",
					Claim: "delta sends exceed 80% of exchanges on the 1024-node ring run",
				},
				{
					Row: "topology sweep", Metric: "bytes on wire vs legacy full-tour exchange",
					Paper: "n/a (full tours only; §4 argues the traffic is negligible at 8 nodes)",
					Claim: "tour-diff broadcast ships fewer bytes than full-tour exchange in every cell",
				},
				{
					Row: "hierarchical overlays", Metric: "diameter at 1024 nodes",
					Paper: "n/a (hypercube only, up to 8 nodes)",
					Claim: "hier-hypercube and tree-of-rings both beat the ring's diameter at 1024 nodes",
				},
			},
			run: runScaling,
		},
	}
}
