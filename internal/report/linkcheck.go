package report

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRE matches inline markdown links [text](target). Reference-style links
// and autolinks are out of scope — the repo's docs use inline links only.
var linkRE = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// headingRE matches ATX headings for anchor extraction.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// slugRE strips characters GitHub drops when slugging a heading.
var slugRE = regexp.MustCompile(`[^\p{L}\p{N} \-_]`)

// slugify reproduces GitHub's heading-anchor slugs closely enough for this
// repo's docs: lowercase, punctuation stripped, spaces to hyphens.
func slugify(heading string) string {
	// Drop inline code/link markup before slugging.
	h := strings.NewReplacer("`", "", "*", "").Replace(heading)
	if m := linkRE.FindStringSubmatch(h); m != nil {
		h = linkRE.ReplaceAllString(h, "$1")
	}
	h = strings.ToLower(h)
	h = slugRE.ReplaceAllString(h, "")
	h = strings.ReplaceAll(h, " ", "-")
	return h
}

// anchors returns the set of heading anchors a markdown file defines.
func anchors(content string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]int{}
	for _, m := range headingRE.FindAllStringSubmatch(content, -1) {
		s := slugify(m[1])
		if n := seen[s]; n > 0 {
			out[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			out[s] = true
		}
		seen[s]++
	}
	return out
}

// CheckLinks verifies every intra-repo link in the given markdown files:
// relative targets must exist on disk (resolved against the linking file's
// directory), and fragment links into markdown files must name a real
// heading anchor. External (http/https/mailto) links are skipped. Returns
// one message per broken link, sorted, as "file: target (reason)".
func CheckLinks(root string, files []string) ([]string, error) {
	var broken []string
	for _, rel := range files {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		content := string(data)
		for _, m := range linkRE.FindAllStringSubmatch(content, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			dest := path // pure fragment links point into the same file
			if file != "" {
				dest = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(dest); err != nil {
					broken = append(broken, fmt.Sprintf("%s: %s (missing file)", rel, target))
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(dest, ".md") {
				continue // anchors into non-markdown files are browser-defined
			}
			destData, err := os.ReadFile(dest)
			if err != nil {
				return nil, err
			}
			if !anchors(string(destData))[frag] {
				broken = append(broken, fmt.Sprintf("%s: %s (missing anchor)", rel, target))
			}
		}
	}
	sort.Strings(broken)
	return broken, nil
}

// DocFiles lists the markdown files the repo's link check covers, relative
// to the repository root. Only files that exist are returned, so the check
// works before the first `make repro` generates REPRODUCTION.md.
func DocFiles(root string) []string {
	candidates := []string{
		"README.md", "DESIGN.md", "EXPERIMENTS.md", "REPRODUCTION.md",
		"ROADMAP.md", "results/README.md",
	}
	var out []string
	for _, f := range candidates {
		if _, err := os.Stat(filepath.Join(root, f)); err == nil {
			out = append(out, f)
		}
	}
	return out
}
