// Package report is the manifest-driven reproduction pipeline behind
// cmd/repro (paper §3 "Distributed Optimization Results" and §4
// "Analysis of the Algorithm").
//
// Manifest() declares one Experiment per paper table/figure — instances,
// node counts, seeds, budgets, and the paper baseline values — and a
// Runner executes them through the repository's deterministic entry
// points: seeded clk.Solver kick loops and simnet virtual-clock clusters.
// Rendered output is spliced into EXPERIMENTS.md between
// `<!-- repro:begin ID -->` markers, written to results/smoke/*.csv, and
// diffed against the paper in REPRODUCTION.md.
//
// Invariants:
//   - No wall clocks: trace axes are kick counts (plain CLK) and simnet
//     virtual microseconds (clusters), so regeneration is byte-identical
//     for a fixed manifest. CI enforces this via `make repro-smoke`.
//   - Run r of any config uses seed Seed+101*r; instance geometry uses
//     its own fixed seed, independent of run seeds.
//   - Every Experiment's run hook emits exactly one Delta per Baseline,
//     in manifest order.
//   - Rendering never iterates a map: tables, CSVs, and deltas are built
//     from slices in declared order with fixed-precision formatting.
//
//distlint:deterministic
package report
