package report

import "testing"

// findExp pulls one experiment out of the manifest by ID.
func findExp(t *testing.T, id string) *Experiment {
	t.Helper()
	for _, e := range Manifest() {
		if e.ID == id {
			return e
		}
	}
	t.Fatalf("experiment %s not in manifest", id)
	return nil
}

// TestExperimentDeterminism runs the cheapest manifest experiment twice with
// fresh runners and requires byte-identical artifacts — the property
// `make repro-smoke` enforces for the whole manifest in CI.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simnet cluster; skipped in -short")
	}
	e := findExp(t, "variator")
	first, err := e.Run(NewRunner())
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Run(NewRunner())
	if err != nil {
		t.Fatal(err)
	}
	if first.Body != second.Body {
		t.Errorf("markdown body differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s",
			first.Body, second.Body)
	}
	if len(first.CSVs) != len(second.CSVs) {
		t.Fatalf("CSV count differs: %d vs %d", len(first.CSVs), len(second.CSVs))
	}
	for i := range first.CSVs {
		if first.CSVs[i].Render() != second.CSVs[i].Render() {
			t.Errorf("CSV %s differs between identical runs", first.CSVs[i].Name)
		}
	}
	if len(first.Deltas) != len(e.Baselines) {
		t.Errorf("got %d deltas for %d baselines", len(first.Deltas), len(e.Baselines))
	}
}
