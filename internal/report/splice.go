package report

import (
	"fmt"
	"strings"
)

// Markers bracketing a generated region inside a committed document:
//
//	<!-- repro:begin ID -->
//	(generated content, owned by cmd/repro)
//	<!-- repro:end ID -->
//
// Everything outside marker pairs is hand-written and never touched.
func beginMarker(id string) string { return fmt.Sprintf("<!-- repro:begin %s -->", id) }
func endMarker(id string) string   { return fmt.Sprintf("<!-- repro:end %s -->", id) }

// Splice replaces the region between the id's begin/end markers in doc with
// body, keeping the marker lines themselves. The operation is idempotent:
// splicing the same body twice yields the same document. It fails if the
// markers are missing, duplicated, or out of order — a damaged marker must
// break the pipeline rather than silently orphan a section.
func Splice(doc, id, body string) (string, error) {
	begin, end := beginMarker(id), endMarker(id)
	bi := strings.Index(doc, begin)
	if bi < 0 {
		return "", fmt.Errorf("report: marker %q not found", begin)
	}
	if strings.Index(doc[bi+len(begin):], begin) >= 0 {
		return "", fmt.Errorf("report: marker %q appears more than once", begin)
	}
	ei := strings.Index(doc, end)
	if ei < 0 {
		return "", fmt.Errorf("report: marker %q not found", end)
	}
	if strings.Index(doc[ei+len(end):], end) >= 0 {
		return "", fmt.Errorf("report: marker %q appears more than once", end)
	}
	if ei < bi {
		return "", fmt.Errorf("report: end marker for %q precedes its begin marker", id)
	}
	body = strings.TrimRight(body, "\n")
	var out strings.Builder
	out.WriteString(doc[:bi+len(begin)])
	out.WriteString("\n")
	if body != "" {
		out.WriteString(body)
		out.WriteString("\n")
	}
	out.WriteString(doc[ei:])
	return out.String(), nil
}

// SpliceAll applies Splice for every (id, body) pair in order.
func SpliceAll(doc string, sections []Section) (string, error) {
	var err error
	for _, s := range sections {
		doc, err = Splice(doc, s.ID, s.Body)
		if err != nil {
			return "", err
		}
	}
	return doc, nil
}

// Section is one generated region destined for a marker pair.
type Section struct {
	ID   string
	Body string
}
