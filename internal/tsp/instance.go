package tsp

import (
	"fmt"
	"math"
	"sync/atomic"

	"distclk/internal/geom"
	"distclk/internal/par"
)

// Instance is a symmetric TSP instance. Geometric instances carry point
// coordinates and a metric; EXPLICIT instances carry a full distance matrix.
type Instance struct {
	Name    string
	Comment string
	Metric  geom.MetricKind
	Pts     []geom.Point

	// BestKnown is the optimal (or best known) tour length, 0 when unknown.
	// The experiment harness uses it as the success criterion when set.
	BestKnown int64

	// CacheLimit, when positive, overrides MaxCacheN as the city-count
	// ceiling for CacheMatrix. Set it deliberately before asking for a
	// quadratic matrix on a large instance.
	CacheLimit int

	// explicit holds the row-major n*n matrix for EXPLICIT instances.
	explicit []int64
	// cache holds an optional precomputed matrix for geometric instances.
	cache []int32
	n     int
}

// New creates a geometric instance over the given points.
func New(name string, metric geom.MetricKind, pts []geom.Point) *Instance {
	return &Instance{Name: name, Metric: metric, Pts: pts, n: len(pts)}
}

// NewExplicit creates an instance from a full n-by-n distance matrix.
// The matrix must be symmetric; Dist returns matrix[i*n+j].
func NewExplicit(name string, n int, matrix []int64) (*Instance, error) {
	if len(matrix) != n*n {
		return nil, fmt.Errorf("tsp: explicit matrix has %d entries, want %d", len(matrix), n*n)
	}
	return &Instance{Name: name, explicit: matrix, n: n}, nil
}

// N reports the number of cities.
func (in *Instance) N() int { return in.n }

// Explicit reports whether the instance is matrix-backed (no coordinates).
func (in *Instance) Explicit() bool { return in.explicit != nil }

// Dist returns the distance between cities i and j.
func (in *Instance) Dist(i, j int) int64 {
	if in.explicit != nil {
		return in.explicit[i*in.n+j]
	}
	if in.cache != nil {
		return int64(in.cache[i*in.n+j])
	}
	return in.Metric.Dist(in.Pts[i], in.Pts[j])
}

// DistCached is true once CacheMatrix has run (or the instance is EXPLICIT).
func (in *Instance) DistCached() bool { return in.cache != nil || in.explicit != nil }

// MaxCacheN bounds CacheMatrix by default: above this size the quadratic
// matrix is too large to be worth the memory (n^2 * 4 bytes). Set
// Instance.CacheLimit to raise or lower the ceiling per instance.
const MaxCacheN = 3000

// CacheMatrix precomputes the full distance matrix for geometric instances,
// turning Dist into an array lookup. It refuses — with an error naming the
// would-be allocation — instances above the cache limit (MaxCacheN, or
// Instance.CacheLimit when set) instead of silently allocating gigabytes;
// Dist and DistFunc keep evaluating the metric directly in that case, so a
// refusal is never fatal. Matrix rows are computed in parallel across
// GOMAXPROCS workers. It is a no-op for EXPLICIT or already-cached
// instances. A distance above MaxInt32 (no realistic TSPLIB instance)
// makes the whole matrix unrepresentable and is reported as an error.
func (in *Instance) CacheMatrix() error {
	if in.explicit != nil || in.cache != nil {
		return nil
	}
	limit := in.CacheLimit
	if limit <= 0 {
		limit = MaxCacheN
	}
	if in.n > limit {
		return fmt.Errorf("tsp: CacheMatrix refused for %q: %d cities exceeds limit %d (matrix would need %d MiB); Dist falls back to metric evaluation",
			in.Name, in.n, limit, int64(in.n)*int64(in.n)*4>>20)
	}
	n := in.n
	c := make([]int32, n*n)
	var overflow atomic.Bool
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Each worker owns rows [lo,hi); the symmetric writes c[j*n+i]
			// land in cells no other worker touches (each unordered pair is
			// written by the owner of its smaller index only).
			for j := i + 1; j < n; j++ {
				d := in.Metric.Dist(in.Pts[i], in.Pts[j])
				if d > 1<<31-1 {
					overflow.Store(true)
					return
				}
				c[i*n+j] = int32(d)
				c[j*n+i] = int32(d)
			}
		}
	})
	if overflow.Load() {
		return fmt.Errorf("tsp: CacheMatrix refused for %q: a distance overflows the int32 cache", in.Name)
	}
	in.cache = c
	return nil
}

// DistFunc returns a closure evaluating distances, binding the fastest
// available path once: matrix lookup when cached, otherwise a
// metric-specialized closure that skips the per-call metric dispatch.
func (in *Instance) DistFunc() func(i, j int32) int64 {
	switch {
	case in.explicit != nil:
		m, n := in.explicit, in.n
		return func(i, j int32) int64 { return m[int(i)*n+int(j)] }
	case in.cache != nil:
		m, n := in.cache, in.n
		return func(i, j int32) int64 { return int64(m[int(i)*n+int(j)]) }
	default:
		pts, metric := in.Pts, in.Metric
		switch metric {
		case geom.Euc2D:
			return func(i, j int32) int64 {
				a, b := pts[i], pts[j]
				dx, dy := a.X-b.X, a.Y-b.Y
				return int64(math.Sqrt(dx*dx+dy*dy) + 0.5)
			}
		case geom.Ceil2D:
			return func(i, j int32) int64 {
				a, b := pts[i], pts[j]
				dx, dy := a.X-b.X, a.Y-b.Y
				return int64(math.Ceil(math.Sqrt(dx*dx + dy*dy)))
			}
		default:
			return func(i, j int32) int64 { return metric.Dist(pts[i], pts[j]) }
		}
	}
}
