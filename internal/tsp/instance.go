// Package tsp defines TSP instances and tours: distance evaluation with
// optional matrix caching, TSPLIB file input/output, and seeded synthetic
// instance generators mirroring the families used in the paper's testbed.
package tsp

import (
	"fmt"

	"distclk/internal/geom"
)

// Instance is a symmetric TSP instance. Geometric instances carry point
// coordinates and a metric; EXPLICIT instances carry a full distance matrix.
type Instance struct {
	Name    string
	Comment string
	Metric  geom.MetricKind
	Pts     []geom.Point

	// BestKnown is the optimal (or best known) tour length, 0 when unknown.
	// The experiment harness uses it as the success criterion when set.
	BestKnown int64

	// explicit holds the row-major n*n matrix for EXPLICIT instances.
	explicit []int64
	// cache holds an optional precomputed matrix for geometric instances.
	cache []int32
	n     int
}

// New creates a geometric instance over the given points.
func New(name string, metric geom.MetricKind, pts []geom.Point) *Instance {
	return &Instance{Name: name, Metric: metric, Pts: pts, n: len(pts)}
}

// NewExplicit creates an instance from a full n-by-n distance matrix.
// The matrix must be symmetric; Dist returns matrix[i*n+j].
func NewExplicit(name string, n int, matrix []int64) (*Instance, error) {
	if len(matrix) != n*n {
		return nil, fmt.Errorf("tsp: explicit matrix has %d entries, want %d", len(matrix), n*n)
	}
	return &Instance{Name: name, explicit: matrix, n: n}, nil
}

// N reports the number of cities.
func (in *Instance) N() int { return in.n }

// Explicit reports whether the instance is matrix-backed (no coordinates).
func (in *Instance) Explicit() bool { return in.explicit != nil }

// Dist returns the distance between cities i and j.
func (in *Instance) Dist(i, j int) int64 {
	if in.explicit != nil {
		return in.explicit[i*in.n+j]
	}
	if in.cache != nil {
		return int64(in.cache[i*in.n+j])
	}
	return in.Metric.Dist(in.Pts[i], in.Pts[j])
}

// DistCached is true once CacheMatrix has run (or the instance is EXPLICIT).
func (in *Instance) DistCached() bool { return in.cache != nil || in.explicit != nil }

// MaxCacheN bounds CacheMatrix: above this size the quadratic matrix is too
// large to be worth the memory (n^2 * 4 bytes).
const MaxCacheN = 3000

// CacheMatrix precomputes the full distance matrix for geometric instances
// with at most MaxCacheN cities, turning Dist into an array lookup. It is a
// no-op for larger or EXPLICIT instances. Distances above MaxInt32 are not
// representable and cause a panic (no realistic TSPLIB instance hits this).
func (in *Instance) CacheMatrix() {
	if in.explicit != nil || in.cache != nil || in.n > MaxCacheN {
		return
	}
	c := make([]int32, in.n*in.n)
	for i := 0; i < in.n; i++ {
		for j := i + 1; j < in.n; j++ {
			d := in.Metric.Dist(in.Pts[i], in.Pts[j])
			if d > 1<<31-1 {
				panic("tsp: distance overflows int32 cache")
			}
			c[i*in.n+j] = int32(d)
			c[j*in.n+i] = int32(d)
		}
	}
	in.cache = c
}

// DistFunc returns a closure evaluating distances, binding the fastest
// available path (matrix lookup or metric computation) once.
func (in *Instance) DistFunc() func(i, j int32) int64 {
	switch {
	case in.explicit != nil:
		m, n := in.explicit, in.n
		return func(i, j int32) int64 { return m[int(i)*n+int(j)] }
	case in.cache != nil:
		m, n := in.cache, in.n
		return func(i, j int32) int64 { return int64(m[int(i)*n+int(j)]) }
	default:
		pts, metric := in.Pts, in.Metric
		return func(i, j int32) int64 { return metric.Dist(pts[i], pts[j]) }
	}
}
