package tsp

import (
	"testing"

	"distclk/internal/geom"
)

// TestDescribeDiscriminatesFamilies pins the probe's separating power:
// the thresholds the auto-selector uses (clustered >> uniform in
// ClusterCV, lattice >> continuous in AxisDegeneracy) must hold on the
// synthetic testbed families.
func TestDescribeDiscriminatesFamilies(t *testing.T) {
	uniform := Describe(Generate(FamilyUniform, 1000, 1))
	clustered := Describe(Generate(FamilyClustered, 1000, 1))
	drill := Describe(Generate(FamilyDrill, 1000, 1))
	grid := Describe(Generate(FamilyGrid, 1000, 1))

	if uniform.ClusterCV > 1.5 {
		t.Errorf("uniform ClusterCV = %.2f, want near 1 (Poisson)", uniform.ClusterCV)
	}
	if clustered.ClusterCV < 2.0 {
		t.Errorf("clustered ClusterCV = %.2f, want >> 1", clustered.ClusterCV)
	}
	if clustered.ClusterCV < 1.5*uniform.ClusterCV {
		t.Errorf("clustered CV %.2f not separated from uniform CV %.2f", clustered.ClusterCV, uniform.ClusterCV)
	}
	if drill.AxisDegeneracy < 0.5 {
		t.Errorf("drill AxisDegeneracy = %.2f, want high (exact lattice)", drill.AxisDegeneracy)
	}
	if uniform.AxisDegeneracy > 0.1 {
		t.Errorf("uniform AxisDegeneracy = %.2f, want near 0", uniform.AxisDegeneracy)
	}
	if grid.AxisDegeneracy > 0.1 {
		t.Errorf("grid (jittered) AxisDegeneracy = %.2f, want near 0", grid.AxisDegeneracy)
	}
	for _, st := range []Stats{uniform, clustered, drill, grid} {
		if st.N != 1000 || st.Explicit {
			t.Errorf("bad N/Explicit in %+v", st)
		}
	}
}

// TestDescribeExplicit asserts geometric statistics are zeroed for
// matrix-only instances.
func TestDescribeExplicit(t *testing.T) {
	in, err := NewExplicit("m3", 3, []int64{0, 2, 3, 2, 0, 4, 3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	st := Describe(in)
	if !st.Explicit || st.N != 3 {
		t.Fatalf("got %+v", st)
	}
	if st.ClusterCV != 0 || st.AxisDegeneracy != 0 {
		t.Errorf("geometric stats should be zero for explicit instances: %+v", st)
	}
}

// TestDescribeDegenerateGeometry: collinear and tiny inputs must not
// divide by zero or panic.
func TestDescribeDegenerateGeometry(t *testing.T) {
	line := make([]geom.Point, 10)
	for i := range line {
		line[i] = geom.Point{X: float64(i), Y: 5}
	}
	st := Describe(New("line", geom.Euc2D, line))
	if st.N != 10 {
		t.Fatalf("got %+v", st)
	}
	if st.AxisDegeneracy < 0.4 {
		t.Errorf("collinear points share all y: AxisDegeneracy = %.2f", st.AxisDegeneracy)
	}
	one := Describe(New("one", geom.Euc2D, []geom.Point{{X: 1, Y: 1}}))
	if one.N != 1 || one.ClusterCV != 0 {
		t.Errorf("single point: %+v", one)
	}
}
