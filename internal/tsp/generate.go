package tsp

import (
	"fmt"
	"math"
	"math/rand"

	"distclk/internal/geom"
)

// Family identifies a synthetic instance family. The families mirror the
// structure of the paper's testbed (DESIGN.md §2): TSPLIB files are not
// redistributable, so seeded generators produce stand-ins with the same
// geometric character.
type Family int

const (
	// FamilyUniform scatters cities uniformly in a square, like the DIMACS
	// random uniform Euclidean instances (E1k.1, ...).
	FamilyUniform Family = iota
	// FamilyClustered places cities normally around cluster centres, like
	// the DIMACS clustered instances (C1k.1, ...).
	FamilyClustered
	// FamilyDrill mimics PCB-drilling instances (fl1577, fl3795): dense
	// grids of collinear holes grouped into boards separated by large empty
	// regions — the structure that traps plain CLK in deep local optima.
	FamilyDrill
	// FamilyGrid is a jittered rectangular grid, like pr2392/pcb3038.
	FamilyGrid
	// FamilyNational mixes dense population clusters with sparse uniform
	// background, like the national instances (fi10639, sw24978).
	FamilyNational
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyUniform:
		return "uniform"
	case FamilyClustered:
		return "clustered"
	case FamilyDrill:
		return "drill"
	case FamilyGrid:
		return "grid"
	case FamilyNational:
		return "national"
	}
	return "unknown"
}

// ParseFamily maps a family name to its constant.
func ParseFamily(s string) (Family, error) {
	for _, f := range []Family{FamilyUniform, FamilyClustered, FamilyDrill, FamilyGrid, FamilyNational} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("tsp: unknown family %q", s)
}

const genSide = 1_000_000.0 // coordinate span, DIMACS convention

// Generate produces a deterministic synthetic instance of the family with n
// cities from the given seed.
func Generate(f Family, n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	switch f {
	case FamilyUniform:
		pts = genUniform(rng, n)
	case FamilyClustered:
		pts = genClustered(rng, n, 10)
	case FamilyDrill:
		pts = genDrill(rng, n)
	case FamilyGrid:
		pts = genGrid(rng, n)
	case FamilyNational:
		pts = genNational(rng, n)
	default:
		//lint:ignore nopanic Family is a closed enum validated by ParseFamily; an unknown value is a programming error with no recovery
		panic("tsp: unknown family")
	}
	name := fmt.Sprintf("%s%d-s%d", f, n, seed)
	in := New(name, geom.Euc2D, pts)
	in.Comment = fmt.Sprintf("synthetic %s family stand-in, n=%d seed=%d", f, n, seed)
	return in
}

func genUniform(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * genSide, Y: rng.Float64() * genSide}
	}
	return pts
}

func genClustered(rng *rand.Rand, n, clusters int) []geom.Point {
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * genSide, Y: rng.Float64() * genSide}
	}
	sigma := genSide / (10 * math.Sqrt(float64(clusters)))
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = geom.Point{
			X: clamp(c.X+rng.NormFloat64()*sigma, 0, genSide),
			Y: clamp(c.Y+rng.NormFloat64()*sigma, 0, genSide),
		}
	}
	return pts
}

// genDrill builds PCB-drilling boards in the style of TSPLIB's fl
// instances: each board is a *perfectly regular* lattice of holes (exact
// spacing — the resulting massive cost degeneracy creates the flat, deep
// local optima that trap plain CLK on fl1577/fl3795), and boards sit in
// cells of a macro-grid separated by large empty regions, so the global
// board-crossing routing matters.
func genDrill(rng *rand.Rand, n int) []geom.Point {
	// Macro-grid of 3x3 cells; use 5-7 of them as boards.
	boards := 5 + rng.Intn(3)
	cells := rng.Perm(9)[:boards]
	cell := genSide / 3
	margin := cell * 0.28 // empty border inside each cell

	pts := make([]geom.Point, 0, n)
	perBoard := n / boards
	for b := 0; b < boards; b++ {
		count := perBoard
		if b == boards-1 {
			count = n - len(pts)
		}
		ox := float64(cells[b]%3)*cell + margin
		oy := float64(cells[b]/3)*cell + margin
		w := cell - 2*margin
		h := cell - 2*margin
		// Regular lattice, rows twice as far apart as holes within a row
		// (drilling rows), rounded to hold exactly `count` holes.
		cols := int(math.Max(2, math.Ceil(math.Sqrt(float64(count)*2))))
		rows := (count + cols - 1) / cols
		placed := 0
		for r := 0; r < rows && placed < count; r++ {
			y := oy + h*float64(r)/math.Max(1, float64(rows-1))
			for c := 0; c < cols && placed < count; c++ {
				x := ox + w*float64(c)/math.Max(1, float64(cols-1))
				pts = append(pts, geom.Point{X: x, Y: y})
				placed++
			}
		}
	}
	// Collapse accidental duplicates (degenerate tiny boards) by nudging.
	seen := make(map[geom.Point]bool, n)
	for i := range pts {
		for seen[pts[i]] {
			pts[i].X += 1
		}
		seen[pts[i]] = true
	}
	return pts
}

func genGrid(rng *rand.Rand, n int) []geom.Point {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	cell := genSide / float64(cols)
	jitter := cell * 0.25
	pts := make([]geom.Point, 0, n)
	for i := 0; len(pts) < n; i++ {
		r, c := i/cols, i%cols
		pts = append(pts, geom.Point{
			X: (float64(c)+0.5)*cell + (rng.Float64()*2-1)*jitter,
			Y: (float64(r)+0.5)*cell + (rng.Float64()*2-1)*jitter,
		})
	}
	return pts
}

func genNational(rng *rand.Rand, n int) []geom.Point {
	clusters := 20 + rng.Intn(20)
	centers := make([]geom.Point, clusters)
	weights := make([]float64, clusters)
	var total float64
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * genSide, Y: rng.Float64() * genSide}
		weights[i] = math.Pow(rng.Float64(), 2) // few big cities, many small
		total += weights[i]
	}
	sigma := genSide / 60
	pts := make([]geom.Point, n)
	for i := range pts {
		if rng.Float64() < 0.3 { // rural background
			pts[i] = geom.Point{X: rng.Float64() * genSide, Y: rng.Float64() * genSide}
			continue
		}
		r := rng.Float64() * total
		k := 0
		for ; k < clusters-1 && r > weights[k]; k++ {
			r -= weights[k]
		}
		pts[i] = geom.Point{
			X: clamp(centers[k].X+rng.NormFloat64()*sigma, 0, genSide),
			Y: clamp(centers[k].Y+rng.NormFloat64()*sigma, 0, genSide),
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// StandIn returns the synthetic stand-in for a paper testbed instance name
// (e.g. "fl3795" -> drill family with 3795 cities). Unknown names get the
// uniform family with the numeric suffix as size. The seed fixes geometry so
// repeated calls agree across processes.
func StandIn(paperName string, seed int64) (*Instance, error) {
	fam, n, err := paperInstance(paperName)
	if err != nil {
		return nil, err
	}
	in := Generate(fam, n, seed)
	in.Name = paperName + "-standin"
	in.Comment = fmt.Sprintf("stand-in for %s: %s family, n=%d seed=%d", paperName, fam, n, seed)
	return in, nil
}

func paperInstance(name string) (Family, int, error) {
	switch name {
	case "E1k.1":
		return FamilyUniform, 1000, nil
	case "C1k.1":
		return FamilyClustered, 1000, nil
	case "fl1577":
		return FamilyDrill, 1577, nil
	case "fl3795":
		return FamilyDrill, 3795, nil
	case "pr2392":
		return FamilyGrid, 2392, nil
	case "pcb3038":
		return FamilyGrid, 3038, nil
	case "fnl4461":
		return FamilyGrid, 4461, nil
	case "fi10639":
		return FamilyNational, 10639, nil
	case "usa13509":
		return FamilyNational, 13509, nil
	case "sw24978":
		return FamilyNational, 24978, nil
	case "pla33810":
		return FamilyDrill, 33810, nil
	case "pla85900":
		return FamilyDrill, 85900, nil
	}
	return 0, 0, fmt.Errorf("tsp: no stand-in defined for %q", name)
}
