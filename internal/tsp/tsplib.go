package tsp

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"distclk/internal/geom"
)

// ReadTSPLIB parses a TSPLIB-format .tsp file. Supported EDGE_WEIGHT_TYPEs:
// EUC_2D, CEIL_2D, ATT, GEO, MAN_2D, MAX_2D, and EXPLICIT with
// EDGE_WEIGHT_FORMAT FULL_MATRIX, UPPER_ROW, LOWER_ROW, UPPER_DIAG_ROW, or
// LOWER_DIAG_ROW.
func ReadTSPLIB(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var (
		name, comment    string
		dimension        = -1
		weightType       string
		weightFormat     string
		pts              []geom.Point
		matrixVals       []int64
		inCoords, inEdge bool
	)

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case upper == "EOF":
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "NAME"):
			name = keywordValue(line)
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "COMMENT"):
			comment = keywordValue(line)
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "TYPE"):
			t := strings.ToUpper(keywordValue(line))
			if t != "TSP" && t != "STSP" {
				return nil, fmt.Errorf("tsp: unsupported TYPE %q (only symmetric TSP)", t)
			}
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "DIMENSION"):
			d, err := strconv.Atoi(keywordValue(line))
			if err != nil {
				return nil, fmt.Errorf("tsp: bad DIMENSION: %v", err)
			}
			dimension = d
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "EDGE_WEIGHT_TYPE"):
			weightType = strings.ToUpper(keywordValue(line))
			inCoords, inEdge = false, false
		case strings.HasPrefix(upper, "EDGE_WEIGHT_FORMAT"):
			weightFormat = strings.ToUpper(keywordValue(line))
			inCoords, inEdge = false, false
		case upper == "NODE_COORD_SECTION" || upper == "DISPLAY_DATA_SECTION":
			inCoords, inEdge = upper == "NODE_COORD_SECTION", false
		case upper == "EDGE_WEIGHT_SECTION":
			inCoords, inEdge = false, true
		case strings.HasSuffix(upper, "_SECTION") || strings.HasSuffix(upper, "_SECTION:"):
			// Unknown section (FIXED_EDGES etc.): skip its lines.
			inCoords, inEdge = false, false
		case inCoords:
			fields := strings.Fields(line)
			if len(fields) < 3 {
				return nil, fmt.Errorf("tsp: bad coordinate line %q", line)
			}
			x, err1 := strconv.ParseFloat(fields[1], 64)
			y, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("tsp: bad coordinate line %q", line)
			}
			pts = append(pts, geom.Point{X: x, Y: y})
		case inEdge:
			for _, f := range strings.Fields(line) {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("tsp: bad edge weight %q", f)
				}
				matrixVals = append(matrixVals, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if dimension <= 0 {
		return nil, fmt.Errorf("tsp: missing DIMENSION")
	}

	if weightType == "EXPLICIT" {
		m, err := expandMatrix(dimension, weightFormat, matrixVals)
		if err != nil {
			return nil, err
		}
		inst, err := NewExplicit(name, dimension, m)
		if err != nil {
			return nil, err
		}
		inst.Comment = comment
		return inst, nil
	}

	metric, err := geom.ParseMetric(weightType)
	if err != nil {
		return nil, fmt.Errorf("tsp: %w", err)
	}
	if len(pts) != dimension {
		return nil, fmt.Errorf("tsp: got %d coordinates, DIMENSION %d", len(pts), dimension)
	}
	inst := New(name, metric, pts)
	inst.Comment = comment
	return inst, nil
}

func keywordValue(line string) string {
	if i := strings.IndexByte(line, ':'); i >= 0 {
		return strings.TrimSpace(line[i+1:])
	}
	fields := strings.Fields(line)
	if len(fields) > 1 {
		return fields[1]
	}
	return ""
}

func expandMatrix(n int, format string, vals []int64) ([]int64, error) {
	m := make([]int64, n*n)
	set := func(i, j int, v int64) {
		m[i*n+j] = v
		m[j*n+i] = v
	}
	k := 0
	take := func() (int64, error) {
		if k >= len(vals) {
			return 0, fmt.Errorf("tsp: edge weight section too short (%d values)", len(vals))
		}
		v := vals[k]
		k++
		return v, nil
	}
	var err error
	var v int64
	switch format {
	case "FULL_MATRIX":
		if len(vals) < n*n {
			return nil, fmt.Errorf("tsp: FULL_MATRIX needs %d values, got %d", n*n, len(vals))
		}
		copy(m, vals[:n*n])
	case "UPPER_ROW":
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v, err = take(); err != nil {
					return nil, err
				}
				set(i, j, v)
			}
		}
	case "LOWER_ROW":
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if v, err = take(); err != nil {
					return nil, err
				}
				set(i, j, v)
			}
		}
	case "UPPER_DIAG_ROW":
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if v, err = take(); err != nil {
					return nil, err
				}
				set(i, j, v)
			}
		}
	case "LOWER_DIAG_ROW":
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if v, err = take(); err != nil {
					return nil, err
				}
				set(i, j, v)
			}
		}
	default:
		return nil, fmt.Errorf("tsp: unsupported EDGE_WEIGHT_FORMAT %q", format)
	}
	return m, nil
}

// LoadTSPLIB reads a .tsp file from disk.
func LoadTSPLIB(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSPLIB(f)
}

// WriteTSPLIB writes a geometric instance in TSPLIB format.
func WriteTSPLIB(w io.Writer, in *Instance) error {
	if in.Explicit() {
		return fmt.Errorf("tsp: writing EXPLICIT instances is not supported")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME : %s\n", in.Name)
	if in.Comment != "" {
		fmt.Fprintf(bw, "COMMENT : %s\n", in.Comment)
	}
	fmt.Fprintf(bw, "TYPE : TSP\n")
	fmt.Fprintf(bw, "DIMENSION : %d\n", in.N())
	fmt.Fprintf(bw, "EDGE_WEIGHT_TYPE : %s\n", in.Metric)
	fmt.Fprintf(bw, "NODE_COORD_SECTION\n")
	for i, p := range in.Pts {
		fmt.Fprintf(bw, "%d %g %g\n", i+1, p.X, p.Y)
	}
	fmt.Fprintf(bw, "EOF\n")
	return bw.Flush()
}

// ReadTourFile parses a TSPLIB .tour file (TOUR_SECTION with 1-based city
// numbers terminated by -1 or EOF).
func ReadTourFile(r io.Reader, n int) (Tour, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var tour Tour
	inTour := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		if upper == "TOUR_SECTION" {
			inTour = true
			continue
		}
		if !inTour {
			continue
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("tsp: bad tour entry %q", f)
			}
			if v == -1 {
				inTour = false
				break
			}
			tour = append(tour, int32(v-1))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tour.Validate(n); err != nil {
		return nil, err
	}
	return tour, nil
}

// WriteTourFile writes a tour in TSPLIB .tour format with 1-based cities.
func WriteTourFile(w io.Writer, name string, t Tour) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME : %s\nTYPE : TOUR\nDIMENSION : %d\nTOUR_SECTION\n", name, len(t))
	for _, c := range t {
		fmt.Fprintf(bw, "%d\n", c+1)
	}
	fmt.Fprintf(bw, "-1\nEOF\n")
	return bw.Flush()
}
