package tsp_test

import (
	"strings"
	"testing"

	"distclk/internal/exact"
	"distclk/internal/tsp"
)

// ulysses16 from TSPLIB (GEO metric, 16 sites of Odysseus's journey). Its
// proven optimal tour length is 6859 — a strong end-to-end validation of
// the GEO great-circle metric, the parser, and the exact DP solver at once.
const ulysses16 = `NAME: ulysses16
TYPE: TSP
COMMENT: Odyssey of Ulysses (Groetschel/Padberg)
DIMENSION: 16
EDGE_WEIGHT_TYPE: GEO
NODE_COORD_SECTION
1 38.24 20.42
2 39.57 26.15
3 40.56 25.32
4 36.26 23.12
5 33.48 10.54
6 37.56 12.19
7 38.42 13.11
8 37.52 20.44
9 41.23 9.10
10 41.17 13.05
11 36.08 -5.21
12 38.47 15.13
13 38.15 15.35
14 37.51 15.17
15 35.49 14.32
16 39.36 19.56
EOF`

func TestUlysses16OptimumIs6859(t *testing.T) {
	in, err := tsp.ReadTSPLIB(strings.NewReader(ulysses16))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 16 {
		t.Fatalf("n = %d", in.N())
	}
	_, opt, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 6859 {
		t.Fatalf("ulysses16 optimum computed as %d, TSPLIB's proven optimum is 6859", opt)
	}
}
