package tsp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"distclk/internal/geom"
)

func TestInstanceDistSymmetric(t *testing.T) {
	in := Generate(FamilyUniform, 50, 1)
	for trial := 0; trial < 100; trial++ {
		i, j := trial%50, (trial*7+3)%50
		if in.Dist(i, j) != in.Dist(j, i) {
			t.Fatalf("Dist(%d,%d) != Dist(%d,%d)", i, j, j, i)
		}
	}
}

func TestCacheMatrixAgreesWithMetric(t *testing.T) {
	in := Generate(FamilyClustered, 80, 2)
	var want [][3]int64
	for i := 0; i < 80; i++ {
		for j := 0; j < 80; j++ {
			want = append(want, [3]int64{int64(i), int64(j), in.Dist(i, j)})
		}
	}
	if err := in.CacheMatrix(); err != nil {
		t.Fatal(err)
	}
	if !in.DistCached() {
		t.Fatal("cache not installed")
	}
	for _, w := range want {
		if got := in.Dist(int(w[0]), int(w[1])); got != w[2] {
			t.Fatalf("cached Dist(%d,%d) = %d, want %d", w[0], w[1], got, w[2])
		}
	}
	// DistFunc must use the cache too.
	df := in.DistFunc()
	if df(3, 7) != in.Dist(3, 7) {
		t.Fatal("DistFunc disagrees with Dist")
	}
}

func TestCacheMatrixRefusesLarge(t *testing.T) {
	in := Generate(FamilyUniform, MaxCacheN+1, 3)
	err := in.CacheMatrix()
	if err == nil {
		t.Fatal("CacheMatrix accepted an instance beyond MaxCacheN")
	}
	if in.DistCached() {
		t.Fatal("cache installed beyond MaxCacheN")
	}
	// The refusal must be non-fatal: Dist keeps working via the metric.
	if in.Dist(0, 1) != in.Metric.Dist(in.Pts[0], in.Pts[1]) {
		t.Fatal("Dist fallback broken after CacheMatrix refusal")
	}
	// Raising the per-instance limit lets the same instance cache.
	in.CacheLimit = MaxCacheN + 1
	if err := in.CacheMatrix(); err != nil {
		t.Fatalf("CacheMatrix with raised CacheLimit: %v", err)
	}
	if !in.DistCached() {
		t.Fatal("cache not installed after raising CacheLimit")
	}
}

func TestExplicitInstance(t *testing.T) {
	m := []int64{
		0, 2, 9,
		2, 0, 4,
		9, 4, 0,
	}
	in, err := NewExplicit("tri", 3, m)
	if err != nil {
		t.Fatal(err)
	}
	if in.Dist(0, 2) != 9 || in.Dist(2, 1) != 4 {
		t.Fatal("explicit lookup wrong")
	}
	if !in.Explicit() {
		t.Fatal("Explicit() false")
	}
	if _, err := NewExplicit("bad", 3, m[:8]); err == nil {
		t.Fatal("accepted short matrix")
	}
	tour := Tour{0, 1, 2}
	if got := tour.Length(in); got != 2+4+9 {
		t.Fatalf("tour length %d, want 15", got)
	}
}

func TestTourValidate(t *testing.T) {
	if err := (Tour{0, 1, 2}).Validate(3); err != nil {
		t.Error(err)
	}
	if err := (Tour{0, 1}).Validate(3); err == nil {
		t.Error("short tour accepted")
	}
	if err := (Tour{0, 1, 1}).Validate(3); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (Tour{0, 1, 3}).Validate(3); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := (Tour{0, -1, 2}).Validate(3); err == nil {
		t.Error("negative accepted")
	}
}

func TestTourCanonicalInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		tour := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		// Rotation.
		r := rng.Intn(n)
		rot := make(Tour, n)
		for i := range rot {
			rot[i] = tour[(i+r)%n]
		}
		// Reversal.
		rev := make(Tour, n)
		for i := range rev {
			rev[i] = tour[n-1-i]
		}
		return tour.SameCycle(rot) && tour.SameCycle(rev) &&
			tour.Hash() == rot.Hash() && tour.Hash() == rev.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTourSameCycleDistinguishes(t *testing.T) {
	a := Tour{0, 1, 2, 3, 4}
	b := Tour{0, 2, 1, 3, 4}
	if a.SameCycle(b) {
		t.Fatal("different cycles reported equal")
	}
	if a.SameCycle(Tour{0, 1, 2}) {
		t.Fatal("different lengths reported equal")
	}
}

func TestTSPLIBRoundTrip(t *testing.T) {
	in := Generate(FamilyUniform, 30, 5)
	var buf bytes.Buffer
	if err := WriteTSPLIB(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSPLIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 30 || got.Metric != geom.Euc2D {
		t.Fatalf("round trip: n=%d metric=%v", got.N(), got.Metric)
	}
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			if got.Dist(i, j) != in.Dist(i, j) {
				t.Fatalf("distance (%d,%d) changed in round trip", i, j)
			}
		}
	}
}

func TestReadTSPLIBExplicitFormats(t *testing.T) {
	upperRow := `NAME: t3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_ROW
EDGE_WEIGHT_SECTION
2 9
4
EOF`
	in, err := ReadTSPLIB(strings.NewReader(upperRow))
	if err != nil {
		t.Fatal(err)
	}
	if in.Dist(0, 1) != 2 || in.Dist(0, 2) != 9 || in.Dist(1, 2) != 4 {
		t.Fatal("UPPER_ROW parsed wrong")
	}

	fullMatrix := `NAME: t3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 9 2 0 4 9 4 0
EOF`
	in2, err := ReadTSPLIB(strings.NewReader(fullMatrix))
	if err != nil {
		t.Fatal(err)
	}
	if in2.Dist(2, 0) != 9 {
		t.Fatal("FULL_MATRIX parsed wrong")
	}

	lowerDiag := `NAME: t3
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
2 0
9 4 0
EOF`
	in3, err := ReadTSPLIB(strings.NewReader(lowerDiag))
	if err != nil {
		t.Fatal(err)
	}
	if in3.Dist(0, 2) != 9 || in3.Dist(1, 2) != 4 {
		t.Fatal("LOWER_DIAG_ROW parsed wrong")
	}
}

func TestReadTSPLIBErrors(t *testing.T) {
	cases := []string{
		"TYPE: ATSP\nDIMENSION: 3\n",                                 // asymmetric
		"DIMENSION: x\n",                                             // bad dimension
		"EDGE_WEIGHT_TYPE: EUC_3D\nDIMENSION: 3\n",                   // unsupported metric
		"EDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\nEOF\n", // missing dimension
	}
	for i, src := range cases {
		if _, err := ReadTSPLIB(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadTSPLIBGeoAndAtt(t *testing.T) {
	src := `NAME: geo2
TYPE: TSP
DIMENSION: 2
EDGE_WEIGHT_TYPE: GEO
NODE_COORD_SECTION
1 50.0 8.0
2 51.0 8.0
EOF`
	in, err := ReadTSPLIB(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Metric != geom.Geo {
		t.Fatalf("metric %v", in.Metric)
	}
	if d := in.Dist(0, 1); d < 105 || d > 120 {
		t.Fatalf("geo distance %d", d)
	}
}

func TestTourFileRoundTrip(t *testing.T) {
	tour := Tour{4, 2, 0, 3, 1}
	var buf bytes.Buffer
	if err := WriteTourFile(&buf, "test", tour); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTourFile(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tour {
		if got[i] != tour[i] {
			t.Fatalf("tour file round trip: %v != %v", got, tour)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, f := range []Family{FamilyUniform, FamilyClustered, FamilyDrill, FamilyGrid, FamilyNational} {
		a := Generate(f, 200, 7)
		b := Generate(f, 200, 7)
		c := Generate(f, 200, 8)
		if a.N() != 200 {
			t.Fatalf("%v: n=%d", f, a.N())
		}
		for i := range a.Pts {
			if a.Pts[i] != b.Pts[i] {
				t.Fatalf("%v: same seed differs at %d", f, i)
			}
		}
		same := true
		for i := range a.Pts {
			if a.Pts[i] != c.Pts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical instances", f)
		}
	}
}

func TestGenerateFamiliesHaveDistinctCharacter(t *testing.T) {
	// Clustered instances have much lower mean nearest-neighbour distance
	// than uniform at equal n (points concentrate).
	uni := Generate(FamilyUniform, 500, 3)
	clu := Generate(FamilyClustered, 500, 3)
	mean := func(in *Instance) float64 {
		var sum float64
		for i := 0; i < in.N(); i++ {
			best := int64(1 << 62)
			for j := 0; j < in.N(); j++ {
				if i != j {
					if d := in.Dist(i, j); d < best {
						best = d
					}
				}
			}
			sum += float64(best)
		}
		return sum / float64(in.N())
	}
	mu, mc := mean(uni), mean(clu)
	if mc*2 > mu {
		t.Fatalf("clustered NN distance %.0f not far below uniform %.0f", mc, mu)
	}
}

func TestParseFamily(t *testing.T) {
	for _, f := range []Family{FamilyUniform, FamilyClustered, FamilyDrill, FamilyGrid, FamilyNational} {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFamily("fractal"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestStandInNames(t *testing.T) {
	for _, name := range []string{"E1k.1", "C1k.1", "fl1577", "pr2392", "fi10639"} {
		in, err := StandIn(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if in.N() == 0 {
			t.Fatalf("%s: empty instance", name)
		}
	}
	if _, err := StandIn("nonexistent99", 1); err == nil {
		t.Error("unknown stand-in accepted")
	}
	// Stand-in sizes must match the paper's instance names.
	in, _ := StandIn("fl3795", 1)
	if in.N() != 3795 {
		t.Errorf("fl3795 stand-in has %d cities", in.N())
	}
}
