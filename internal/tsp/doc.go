// Package tsp defines TSP instances and tours: distance evaluation with
// optional matrix caching, TSPLIB file input/output, and seeded synthetic
// instance generators mirroring the families used in the paper's testbed
// (§3.1: uniform, clustered, drilling, grid-like, and national-style
// geometries).
//
// Invariants:
//   - Generate is deterministic for (family, n, seed); stand-in geometry
//     is independent of any run seed.
//   - Dist is symmetric and metric-faithful to TSPLIB whether or not a
//     matrix cache is active.
//   - Tour helpers treat tours as permutations of [0, n); Length is the
//     closed-tour sum.
package tsp
