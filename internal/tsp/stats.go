package tsp

import (
	"math"
	"sort"

	"distclk/internal/geom"
)

// Stats summarizes the instance features the candidate-strategy
// auto-selector keys on. There is exactly one implementation of these
// statistics: cmd/tspstat prints the same numbers the selector reads, so
// users can predict what "auto" will pick.
type Stats struct {
	// N is the city count.
	N int
	// Metric is the instance's TSPLIB edge-weight function.
	Metric geom.MetricKind
	// Explicit reports a matrix-only instance with no coordinates;
	// geometric candidate builders do not apply.
	Explicit bool
	// ClusterCV is the coefficient of variation (stddev/mean) of point
	// counts over a ~sqrt(n) x sqrt(n) occupancy grid covering the
	// bounding box. Uniform scatters sit near 1 (Poisson); strongly
	// clustered instances run far above it. 0 for explicit instances.
	ClusterCV float64
	// AxisDegeneracy is 1 - distinct(x)+distinct(y) / 2n: near 0 for
	// continuous random coordinates, near 1 for exact lattices (the
	// drill/PCB family's shared-coordinate degeneracy, which flattens the
	// cost surface into plateaus). 0 for explicit instances.
	AxisDegeneracy float64
}

// Describe computes the instance statistics in O(n log n).
func Describe(in *Instance) Stats {
	st := Stats{
		N:        in.N(),
		Metric:   in.Metric,
		Explicit: in.Explicit(),
	}
	if st.Explicit || st.N == 0 {
		return st
	}
	st.ClusterCV = occupancyCV(in.Pts)
	st.AxisDegeneracy = axisDegeneracy(in.Pts)
	return st
}

// occupancyCV grids the bounding box into about n cells (mean occupancy
// ~1) and returns stddev/mean of the per-cell counts.
func occupancyCV(pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	min, max := geom.BoundingBox(pts)
	w, h := max.X-min.X, max.Y-min.Y
	g := int(math.Ceil(math.Sqrt(float64(n))))
	gx, gy := g, g
	if w == 0 {
		gx = 1
	}
	if h == 0 {
		gy = 1
	}
	counts := make([]int, gx*gy)
	for _, p := range pts {
		cx, cy := 0, 0
		if gx > 1 {
			cx = int(float64(gx) * (p.X - min.X) / w)
			if cx == gx {
				cx = gx - 1
			}
		}
		if gy > 1 {
			cy = int(float64(gy) * (p.Y - min.Y) / h)
			if cy == gy {
				cy = gy - 1
			}
		}
		counts[cy*gx+cx]++
	}
	mean := float64(n) / float64(len(counts))
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(counts))) / mean
}

// axisDegeneracy measures coordinate sharing: 1 - (distinct x values +
// distinct y values) / 2n.
func axisDegeneracy(pts []geom.Point) float64 {
	n := len(pts)
	if n == 0 {
		return 0
	}
	vals := make([]float64, n)
	distinct := 0
	for axis := 0; axis < 2; axis++ {
		for i, p := range pts {
			if axis == 0 {
				vals[i] = p.X
			} else {
				vals[i] = p.Y
			}
		}
		sort.Float64s(vals)
		distinct++
		for i := 1; i < n; i++ {
			if vals[i] != vals[i-1] {
				distinct++
			}
		}
	}
	return 1 - float64(distinct)/float64(2*n)
}
