package tsp

import (
	"fmt"
	"hash/fnv"
)

// Tour is a permutation of the cities 0..n-1 visited in order, closing back
// to the first city.
type Tour []int32

// IdentityTour returns the tour 0, 1, ..., n-1.
func IdentityTour(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = int32(i)
	}
	return t
}

// Clone returns a copy of the tour.
func (t Tour) Clone() Tour {
	c := make(Tour, len(t))
	copy(c, t)
	return c
}

// Length evaluates the closed tour under the instance metric.
func (t Tour) Length(in *Instance) int64 {
	if len(t) < 2 {
		return 0
	}
	dist := in.DistFunc()
	var sum int64
	prev := t[len(t)-1]
	for _, c := range t {
		sum += dist(prev, c)
		prev = c
	}
	return sum
}

// Validate checks that the tour is a permutation of 0..n-1.
func (t Tour) Validate(n int) error {
	if len(t) != n {
		return fmt.Errorf("tsp: tour has %d cities, want %d", len(t), n)
	}
	seen := make([]bool, n)
	for i, c := range t {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("tsp: tour[%d] = %d out of range [0,%d)", i, c, n)
		}
		if seen[c] {
			return fmt.Errorf("tsp: city %d visited twice", c)
		}
		seen[c] = true
	}
	return nil
}

// Canonical returns the tour rotated so city 0 comes first and oriented so
// the second city is the smaller of city 0's two tour neighbours. Two tours
// describe the same Hamiltonian cycle iff their canonical forms are equal.
func (t Tour) Canonical() Tour {
	n := len(t)
	if n == 0 {
		return Tour{}
	}
	start := 0
	for i, c := range t {
		if c == 0 {
			start = i
			break
		}
	}
	out := make(Tour, n)
	next := t[(start+1)%n]
	prev := t[(start-1+n)%n]
	if n > 2 && prev < next {
		for i := 0; i < n; i++ {
			out[i] = t[(start-i+n)%n]
		}
	} else {
		for i := 0; i < n; i++ {
			out[i] = t[(start+i)%n]
		}
	}
	return out
}

// Hash returns a 64-bit hash of the canonical form, usable to detect
// duplicate cycles regardless of rotation or orientation.
func (t Tour) Hash() uint64 {
	c := t.Canonical()
	h := fnv.New64a()
	var buf [4]byte
	for _, city := range c {
		buf[0] = byte(city)
		buf[1] = byte(city >> 8)
		buf[2] = byte(city >> 16)
		buf[3] = byte(city >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// SameCycle reports whether two tours describe the same Hamiltonian cycle.
func (t Tour) SameCycle(o Tour) bool {
	if len(t) != len(o) {
		return false
	}
	a, b := t.Canonical(), o.Canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
