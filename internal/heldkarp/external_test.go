// External test package: heldkarp is a leaf the candidate builders depend
// on, so tests that drive it with a CLK tour (clk -> neighbor -> heldkarp)
// must live outside the package to avoid an import cycle in the test
// binary.
package heldkarp_test

import (
	"context"
	"testing"

	"distclk/internal/clk"
	"distclk/internal/heldkarp"
	"distclk/internal/tsp"
)

func TestLowerBoundTightOnLarger(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 9)
	s := clk.New(in, clk.DefaultParams(), 1)
	res := s.Run(context.Background(), clk.Budget{MaxKicks: 400})
	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 120, UpperBound: res.Length})
	if hk.Bound <= 0 {
		t.Fatal("non-positive bound")
	}
	if hk.Bound > res.Length {
		t.Fatalf("bound %d above heuristic tour %d", hk.Bound, res.Length)
	}
	gap := float64(res.Length-hk.Bound) / float64(hk.Bound)
	// CLK tour within a few % of optimum and HK within ~1% below: gap
	// should comfortably be under 6%.
	if gap > 0.06 {
		t.Fatalf("HK gap %.1f%% too large — ascent not converging", gap*100)
	}
}
