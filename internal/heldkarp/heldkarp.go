package heldkarp

import (
	"math"

	"distclk/internal/tsp"
)

// OneTree is a minimum 1-tree under modified edge weights: a minimum
// spanning tree over cities 1..n-1 plus the two cheapest edges incident to
// city 0.
type OneTree struct {
	// Parent[i] is i's MST parent (city 0's entries are the special edges;
	// Parent[root]= -1 for the MST root, city 1).
	Parent []int32
	// ParentW[i] is the modified weight of the edge (i, Parent[i]).
	ParentW []float64
	// Special0 are the two endpoints of city 0's 1-tree edges.
	Special0 [2]int32
	// Degree[i] is i's degree in the 1-tree.
	Degree []int32
	// Cost is the total modified weight of the 1-tree.
	Cost float64
}

// MinOneTree builds the minimum 1-tree for the instance under node
// potentials pi (modified weight d(i,j)+pi[i]+pi[j]) with Prim's algorithm
// on the complete graph, O(n^2). pi may be nil for zero potentials.
func MinOneTree(in *tsp.Instance, pi []float64) OneTree {
	n := in.N()
	dist := in.DistFunc()
	w := func(i, j int32) float64 {
		d := float64(dist(i, j))
		if pi != nil {
			d += pi[i] + pi[j]
		}
		return d
	}
	t := OneTree{
		Parent:  make([]int32, n),
		ParentW: make([]float64, n),
		Degree:  make([]int32, n),
	}
	if n < 3 {
		// Degenerate; treat as zero-cost.
		for i := range t.Parent {
			t.Parent[i] = -1
		}
		return t
	}
	// Prim over cities 1..n-1, rooted at city 1.
	const inf = math.MaxFloat64
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int32, n)
	for i := range best {
		best[i] = inf
		from[i] = -1
		t.Parent[i] = -1
	}
	inTree[0] = true // excluded from the MST part
	cur := int32(1)
	inTree[1] = true
	for added := 1; added < n-1; added++ {
		for j := int32(1); j < int32(n); j++ {
			if inTree[j] {
				continue
			}
			if wc := w(cur, j); wc < best[j] {
				best[j] = wc
				from[j] = cur
			}
		}
		next := int32(-1)
		nb := inf
		for j := int32(1); j < int32(n); j++ {
			if !inTree[j] && best[j] < nb {
				nb = best[j]
				next = j
			}
		}
		inTree[next] = true
		t.Parent[next] = from[next]
		t.ParentW[next] = nb
		t.Degree[next]++
		t.Degree[from[next]]++
		t.Cost += nb
		cur = next
	}
	// Two cheapest edges from city 0.
	var e0, e1 int32 = -1, -1
	var w0, w1 = inf, inf
	for j := int32(1); j < int32(n); j++ {
		wc := w(0, j)
		switch {
		case wc < w0:
			e1, w1 = e0, w0
			e0, w0 = j, wc
		case wc < w1:
			e1, w1 = j, wc
		}
	}
	t.Special0 = [2]int32{e0, e1}
	t.Degree[0] = 2
	t.Degree[e0]++
	t.Degree[e1]++
	t.Cost += w0 + w1
	return t
}

// Result reports a bound computation.
type Result struct {
	// Bound is the final (best) Held-Karp lower bound, rounded up — a
	// valid lower bound on the optimal tour length.
	Bound int64
	// Pi are the node potentials at the best iterate.
	Pi []float64
	// Tree is the minimum 1-tree at the best iterate.
	Tree OneTree
	// Iterations actually performed.
	Iterations int
}

// Options tunes the ascent.
type Options struct {
	// Iterations caps subgradient steps (default 100).
	Iterations int
	// UpperBound seeds the step size; pass a heuristic tour length. When
	// zero, a nearest-neighbour tour is constructed internally — the
	// ascent is very sensitive to this seed, and the initial 1-tree cost
	// alone is too weak a proxy. Callers with a better tour at hand (e.g.
	// greedy) should pass its length.
	UpperBound int64
}

// LowerBound runs Held-Karp subgradient ascent and returns the best bound
// found. The bound is exact-valid (every iterate's w(pi) is a lower bound;
// the maximum over iterates is returned).
func LowerBound(in *tsp.Instance, opt Options) Result {
	n := in.N()
	if n < 3 {
		return Result{Bound: 0}
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = 100
	}
	pi := make([]float64, n)
	tree := MinOneTree(in, nil)
	bestW := treeBound(tree, pi)
	best := Result{Bound: int64(math.Ceil(bestW - 1e-9)), Pi: append([]float64(nil), pi...), Tree: tree}

	ub := float64(opt.UpperBound)
	if ub <= 0 {
		ub = float64(nnTourLength(in))
	}

	// Classic two-period subgradient schedule: step length derived from the
	// duality gap, decayed geometrically.
	lambda := 2.0
	for k := 0; k < iters; k++ {
		// Subgradient: degree deviation.
		var norm float64
		for i := 0; i < n; i++ {
			d := float64(tree.Degree[i] - 2)
			norm += d * d
		}
		if norm == 0 {
			// The 1-tree is a tour: bound is tight, stop.
			best.Iterations = k
			return best
		}
		w := treeBound(tree, pi)
		step := lambda * (ub - w) / norm
		if step <= 0 {
			step = 1
		}
		for i := 0; i < n; i++ {
			pi[i] += step * float64(tree.Degree[i]-2)
		}
		tree = MinOneTree(in, pi)
		w = treeBound(tree, pi)
		if w > bestW {
			bestW = w
			best.Pi = append(best.Pi[:0], pi...)
			best.Tree = tree
			best.Bound = int64(math.Ceil(bestW - 1e-9))
		}
		lambda *= 0.95
	}
	best.Iterations = iters
	return best
}

// nnTourLength walks a nearest-neighbour tour from city 0 and returns its
// length — the O(n^2) internal fallback for Options.UpperBound. heldkarp
// deliberately does not depend on the construct/neighbor packages so that
// candidate-set builders can depend on it without an import cycle.
func nnTourLength(in *tsp.Instance) int64 {
	n := in.N()
	dist := in.DistFunc()
	visited := make([]bool, n)
	visited[0] = true
	cur := int32(0)
	var total int64
	for step := 1; step < n; step++ {
		next := int32(-1)
		var bd int64 = math.MaxInt64
		for j := int32(0); j < int32(n); j++ {
			if visited[j] {
				continue
			}
			if d := dist(cur, j); d < bd {
				bd = d
				next = j
			}
		}
		visited[next] = true
		total += bd
		cur = next
	}
	return total + dist(cur, 0)
}

// treeBound computes w(pi) = cost(min 1-tree) - 2*sum(pi).
func treeBound(t OneTree, pi []float64) float64 {
	var sum float64
	for _, p := range pi {
		sum += p
	}
	return t.Cost - 2*sum
}
