// Package heldkarp computes the Held-Karp lower bound via 1-tree
// subgradient ascent. The paper measures tour quality against this bound
// for instances without a known optimum (fi10639, pla33810, pla85900, §3.1);
// this reproduction uses it as the quality denominator throughout Tables
// 4-5 and the figures. The LKH-style baseline also reuses the ascent's
// node potentials for alpha-nearness candidate generation.
//
// Invariants:
//   - LowerBound is deterministic for (instance, Options) — fixed
//     iteration count, no time-based stopping.
//   - The returned bound never exceeds the optimal tour length; it is
//     exact on n <= 3 and within a few percent on uniform geometry
//     (validated against exact optima in tests).
package heldkarp
