package heldkarp

import (
	"testing"

	"distclk/internal/exact"
	"distclk/internal/tsp"
)

func TestOneTreeDegreesAndCost(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 50, 1)
	tree := MinOneTree(in, nil)
	// A 1-tree over n nodes has exactly n edges; sum of degrees = 2n.
	var degSum int32
	for _, d := range tree.Degree {
		degSum += d
	}
	if degSum != 100 {
		t.Fatalf("degree sum %d, want 100", degSum)
	}
	if tree.Degree[0] != 2 {
		t.Fatalf("city 0 degree %d, want 2", tree.Degree[0])
	}
	if tree.Cost <= 0 {
		t.Fatal("non-positive 1-tree cost")
	}
	if tree.Special0[0] == tree.Special0[1] {
		t.Fatal("city 0's two special edges coincide")
	}
}

func TestOneTreeIsMinimalAgainstBruteForce(t *testing.T) {
	// For a small instance, compare MST part against Kruskal brute force.
	in := tsp.Generate(tsp.FamilyUniform, 12, 3)
	tree := MinOneTree(in, nil)
	dist := in.DistFunc()

	// Kruskal over cities 1..11.
	type edge struct {
		w    int64
		a, b int32
	}
	var edges []edge
	for i := int32(1); i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			edges = append(edges, edge{dist(i, j), i, j})
		}
	}
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].w < edges[i].w {
				edges[i], edges[j] = edges[j], edges[i]
			}
		}
	}
	parent := make([]int32, 12)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	var mstCost int64
	count := 0
	for _, e := range edges {
		if find(e.a) != find(e.b) {
			parent[find(e.a)] = find(e.b)
			mstCost += e.w
			count++
		}
	}
	if count != 10 {
		t.Fatal("kruskal failed")
	}
	// Two cheapest from 0.
	var w0, w1 int64 = 1 << 62, 1 << 62
	for j := int32(1); j < 12; j++ {
		w := dist(0, j)
		if w < w0 {
			w1, w0 = w0, w
		} else if w < w1 {
			w1 = w
		}
	}
	want := float64(mstCost + w0 + w1)
	if tree.Cost != want {
		t.Fatalf("1-tree cost %f, want %f", tree.Cost, want)
	}
}

func TestLowerBoundBelowOptimum(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := tsp.Generate(tsp.FamilyUniform, 14, seed)
		_, optLen, err := exact.HeldKarp(in)
		if err != nil {
			t.Fatal(err)
		}
		res := LowerBound(in, Options{Iterations: 150, UpperBound: optLen})
		if res.Bound > optLen {
			t.Fatalf("seed %d: HK bound %d exceeds optimum %d", seed, res.Bound, optLen)
		}
		// HK is a strong bound: expect within 5% on random instances.
		if float64(res.Bound) < float64(optLen)*0.95 {
			t.Errorf("seed %d: HK bound %d weak vs optimum %d", seed, res.Bound, optLen)
		}
	}
}

func TestLowerBoundMonotoneIterations(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 100, 11)
	few := LowerBound(in, Options{Iterations: 5})
	many := LowerBound(in, Options{Iterations: 80})
	if many.Bound < few.Bound {
		t.Fatalf("more iterations worsened bound: %d -> %d", few.Bound, many.Bound)
	}
}

func TestLowerBoundDegenerate(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 2, 1)
	if res := LowerBound(in, Options{}); res.Bound != 0 {
		t.Fatalf("n=2 bound %d, want 0", res.Bound)
	}
}
