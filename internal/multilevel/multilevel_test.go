package multilevel

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"distclk/internal/clk"
	"distclk/internal/tsp"
)

func TestCoarsenShrinks(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 500, 1)
	rng := rand.New(rand.NewSource(2))
	levels := coarsen(in, 16, rng)
	if len(levels) < 4 {
		t.Fatalf("only %d levels for n=500", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		prev, cur := levels[i-1].inst.N(), levels[i].inst.N()
		if cur >= prev {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev, cur)
		}
		// Matching halves the size up to odd leftovers; expect <= ~0.75x.
		if float64(cur) > float64(prev)*0.75 {
			t.Errorf("level %d shrunk too little: %d -> %d", i, prev, cur)
		}
		// Children partition the finer level.
		seen := make([]bool, prev)
		for _, kids := range levels[i].children {
			for _, k := range kids {
				if seen[k] {
					t.Fatalf("level %d: child %d assigned twice", i, k)
				}
				seen[k] = true
			}
		}
		for c, s := range seen {
			if !s {
				t.Fatalf("level %d: city %d unassigned", i, c)
			}
		}
	}
	if levels[len(levels)-1].inst.N() > 16 {
		t.Fatalf("coarsest level has %d cities", levels[len(levels)-1].inst.N())
	}
}

func TestExpandProducesValidTour(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 3)
	rng := rand.New(rand.NewSource(4))
	levels := coarsen(in, 16, rng)
	// Identity tour at the coarsest level, expanded all the way down.
	tour := tsp.IdentityTour(levels[len(levels)-1].inst.N())
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].inst
		tour = expand(levels[li], tour, fine)
		if err := tour.Validate(fine.N()); err != nil {
			t.Fatalf("level %d expansion: %v", li, err)
		}
	}
}

func TestSolveQuality(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 400, 5)
	res := Solve(in, DefaultParams(), 1, time.Time{}, 0)
	if err := res.Tour.Validate(400); err != nil {
		t.Fatal(err)
	}
	if res.Levels < 3 {
		t.Errorf("only %d levels", res.Levels)
	}
	// Compare against a modest plain CLK run: multilevel should be in the
	// same quality ballpark (within 5%).
	s := clk.New(in, clk.DefaultParams(), 2)
	ref := s.Run(context.Background(), clk.Budget{MaxKicks: 200})
	if float64(res.Length) > float64(ref.Length)*1.05 {
		t.Fatalf("multilevel %d much worse than plain CLK %d", res.Length, ref.Length)
	}
}

func TestSolveTinyInstance(t *testing.T) {
	// Instances below the coarsest size must still work (no levels).
	in := tsp.Generate(tsp.FamilyUniform, 12, 7)
	res := Solve(in, DefaultParams(), 1, time.Time{}, 0)
	if err := res.Tour.Validate(12); err != nil {
		t.Fatal(err)
	}
	if res.Levels != 1 {
		t.Errorf("tiny instance produced %d levels", res.Levels)
	}
}
