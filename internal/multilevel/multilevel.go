package multilevel

import (
	"context"
	"math/rand"
	"time"

	"distclk/internal/clk"
	"distclk/internal/geom"
	"distclk/internal/tsp"
)

// Params tunes the multilevel scheme.
type Params struct {
	// CoarsestSize stops coarsening (default 16 cities).
	CoarsestSize int
	// KicksFactor scales per-level CLK kicks: kicks = KicksFactor * n_level.
	// Walshaw's MLC(N/10)LK corresponds to 0.1; MLC(N)LK to 1.0.
	KicksFactor float64
	// CLK configures the per-level refinement solver.
	CLK clk.Params
}

// DefaultParams matches Walshaw's faster MLC(N/10)LK configuration.
func DefaultParams() Params {
	return Params{
		CoarsestSize: 16,
		KicksFactor:  0.1,
		CLK:          clk.DefaultParams(),
	}
}

// Result reports a Solve run.
type Result struct {
	Tour    tsp.Tour
	Length  int64
	Levels  int
	Elapsed time.Duration
}

// level is one coarsening step: a smaller instance plus the mapping from
// its cities to the children in the finer level below.
type level struct {
	inst     *tsp.Instance
	children [][]int32 // per coarse city: 1 or 2 finer-level cities
}

// coarsen builds the level hierarchy. levels[0] is the original instance.
func coarsen(in *tsp.Instance, coarsest int, rng *rand.Rand) []level {
	levels := []level{{inst: in}}
	cur := in
	for cur.N() > coarsest {
		next, ok := coarsenOnce(cur, rng)
		if !ok {
			break // no progress (e.g. pathological geometry)
		}
		levels = append(levels, next)
		cur = next.inst
	}
	return levels
}

// coarsenOnce matches each city with its nearest unmatched neighbour and
// merges pairs into their midpoint.
func coarsenOnce(in *tsp.Instance, rng *rand.Rand) (level, bool) {
	n := in.N()
	tree := geom.NewKDTree(in.Pts)
	matched := make([]int32, n)
	for i := range matched {
		matched[i] = -1
	}
	order := rng.Perm(n)
	var children [][]int32
	var pts []geom.Point
	for _, ci := range order {
		c := int32(ci)
		if matched[c] >= 0 {
			continue
		}
		// Nearest unmatched neighbour among progressively more candidates.
		var mate int32 = -1
		for k := 4; mate < 0 && k <= 64; k *= 2 {
			kk := k
			if kk > n-1 {
				kk = n - 1
			}
			for _, o := range tree.KNearest(in.Pts[c], kk, int(c)) {
				if matched[o] < 0 {
					mate = o
					break
				}
			}
			if kk == n-1 {
				break
			}
		}
		if mate < 0 {
			matched[c] = int32(len(children))
			children = append(children, []int32{c})
			pts = append(pts, in.Pts[c])
			continue
		}
		id := int32(len(children))
		matched[c], matched[mate] = id, id
		children = append(children, []int32{c, mate})
		pts = append(pts, geom.Point{
			X: (in.Pts[c].X + in.Pts[mate].X) / 2,
			Y: (in.Pts[c].Y + in.Pts[mate].Y) / 2,
		})
	}
	if len(pts) >= n {
		return level{}, false
	}
	coarse := tsp.New(in.Name+"*", in.Metric, pts)
	return level{inst: coarse, children: children}, true
}

// expand lifts a tour on the coarse level to the finer level: matched pairs
// are inserted adjacently in whichever order joins their tour neighbours
// more cheaply.
func expand(lv level, coarseTour tsp.Tour, fine *tsp.Instance) tsp.Tour {
	dist := fine.DistFunc()
	n := len(coarseTour)
	out := make(tsp.Tour, 0, fine.N())
	for i, cc := range coarseTour {
		kids := lv.children[cc]
		if len(kids) == 1 {
			out = append(out, kids[0])
			continue
		}
		a, b := kids[0], kids[1]
		// Predecessor is the last emitted city (or the representative of
		// the previous coarse city); successor is the first child of the
		// next coarse city — approximate with its first child.
		var prev, next int32 = -1, -1
		if len(out) > 0 {
			prev = out[len(out)-1]
		} else {
			prevKids := lv.children[coarseTour[n-1]]
			prev = prevKids[0]
		}
		nextKids := lv.children[coarseTour[(i+1)%n]]
		next = nextKids[0]
		costAB := dist(prev, a) + dist(b, next)
		costBA := dist(prev, b) + dist(a, next)
		if costBA < costAB {
			a, b = b, a
		}
		out = append(out, a, b)
	}
	return out
}

// Solve runs the multilevel scheme. deadline (zero disables) and target
// (0 disables) bound the per-level refinement.
func Solve(in *tsp.Instance, p Params, seed int64, deadline time.Time, target int64) Result {
	if p.CoarsestSize == 0 {
		p = DefaultParams()
	}
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	levels := coarsen(in, p.CoarsestSize, rng)

	// Solve the coarsest level from scratch.
	top := levels[len(levels)-1].inst
	solver := clk.New(top, p.CLK, seed)
	res := solver.Run(ctx, clk.Budget{
		MaxKicks: int64(float64(top.N())*p.KicksFactor) + 50,
	})
	tour := res.Tour

	// Uncoarsen with per-level refinement.
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].inst
		tour = expand(levels[li], tour, fine)
		refiner := clk.New(fine, p.CLK, seed+int64(li))
		refiner.SetTour(tour)
		refiner.OptimizeCurrent()
		kicks := int64(float64(fine.N()) * p.KicksFactor)
		if kicks < 10 {
			kicks = 10
		}
		var tgt int64
		if li == 1 {
			tgt = target // only the original level compares to the target
		}
		rres := refiner.Run(ctx, clk.Budget{MaxKicks: kicks, Target: tgt})
		tour = rres.Tour
	}
	return Result{
		Tour:    tour,
		Length:  tour.Length(in),
		Levels:  len(levels),
		Elapsed: time.Since(start),
	}
}
