// Package multilevel implements a Walshaw-style multilevel Chained
// Lin-Kernighan (the ML-C(N)LK row in the paper's Table 2): the instance
// is repeatedly coarsened by matching nearby city pairs, the coarsest
// instance is solved with CLK, and each uncoarsening step expands matched
// pairs back into the tour and refines it with a CLK pass whose kick
// budget scales with the level size.
//
// Invariants:
//   - Every uncoarsening step yields a valid tour over its level's
//     cities; the final tour visits every original city exactly once.
//   - Solve with a zero deadline is deterministic for (instance, Params,
//     seed) (the smoke tier depends on this).
package multilevel
