// Package stats provides the summary statistics the experiment harness
// and the reproduction pipeline report: mean, median, standard deviation,
// min/max, excess-over-reference percentages and ratios over run samples
// (the paper averages each configuration over 10 runs, §3.1).
//
// Invariants:
//   - All functions are pure and allocation-light; empty inputs yield
//     zero values (or NaN where the quantity is undefined), never panics.
package stats
