package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the sample median (mean of the middle pair for even n;
// 0 for an empty sample).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MinMax returns the extrema (zeros for an empty sample).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// ExcessPercent returns the relative excess of value over a reference in
// percent, (value-ref)/ref*100 — the "distance to optimum/HK bound" metric
// of the paper's quality tables. NaN for a non-positive reference.
func ExcessPercent(value, ref float64) float64 {
	if ref <= 0 {
		return math.NaN()
	}
	return (value - ref) / ref * 100
}

// Ratio returns num/den, the speed-up ratio of the paper's Table 1
// (e.g. time(1 node) / time(n nodes)); 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Ints converts integer samples for the helpers above.
func Ints(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
