package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
}

func TestStdDev(t *testing.T) {
	if !approx(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("stddev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev")
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Error("constant stddev")
	}
}

func TestMedian(t *testing.T) {
	if !approx(Median([]float64{5, 1, 3}), 3) {
		t.Error("odd median")
	}
	if !approx(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 {
		t.Error("median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %v %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("empty minmax")
	}
}

func TestExcessPercent(t *testing.T) {
	if !approx(ExcessPercent(101, 100), 1) {
		t.Errorf("ExcessPercent(101,100) = %v", ExcessPercent(101, 100))
	}
	if !approx(ExcessPercent(100, 100), 0) {
		t.Error("zero excess")
	}
	if !math.IsNaN(ExcessPercent(5, 0)) {
		t.Error("non-positive reference must yield NaN")
	}
}

func TestRatio(t *testing.T) {
	if !approx(Ratio(10, 4), 2.5) {
		t.Errorf("Ratio = %v", Ratio(10, 4))
	}
	if Ratio(1, 0) != 0 {
		t.Error("zero denominator")
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int64{1, -2, 3})
	if len(got) != 3 || got[1] != -2 {
		t.Errorf("Ints = %v", got)
	}
}

func TestProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		med := Median(xs)
		// Mean and median lie within [min, max]; stddev non-negative.
		return m >= min-1e-9 && m <= max+1e-9 &&
			med >= min-1e-9 && med <= max+1e-9 &&
			StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
