package lkh

import (
	"testing"
	"time"

	"distclk/internal/exact"
	"distclk/internal/heldkarp"
	"distclk/internal/tsp"
)

func TestAlphaCandidatesStructure(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 120, 1)
	cand, err := AlphaCandidates(in, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cand.N() != 120 {
		t.Fatalf("N = %d", cand.N())
	}
	if cand.K() < 5 {
		t.Fatalf("K = %d, want >= 5 (symmetrization can grow lists)", cand.K())
	}
	for c := int32(0); c < 120; c++ {
		for _, o := range cand.Of(c) {
			if o < 0 || o >= 120 {
				t.Fatalf("city %d has invalid candidate %d", c, o)
			}
		}
	}
}

func TestAlphaCandidatesSymmetric(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 80, 3)
	cand, err := AlphaCandidates(in, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Padding repeats entries, so check one-way membership modulo pads:
	// if j is a distinct candidate of i, i must appear among j's.
	for i := int32(0); i < 80; i++ {
		seen := map[int32]bool{}
		for _, j := range cand.Of(i) {
			if j == i || seen[j] {
				continue
			}
			seen[j] = true
			found := false
			for _, back := range cand.Of(j) {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("candidate edge (%d,%d) not symmetric", i, j)
			}
		}
	}
}

func TestSolveSmallToOptimum(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 15, 5)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(in, DefaultParams(), 1, time.Now().Add(30*time.Second), optLen)
	if res.Length != optLen {
		t.Fatalf("LKH-style reached %d, optimum %d", res.Length, optLen)
	}
	if err := res.Tour.Validate(15); err != nil {
		t.Fatal(err)
	}
}

func TestSolveQualityOnMedium(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 7)
	p := DefaultParams()
	p.Trials = 150
	p.AscentIterations = 40
	res := Solve(in, p, 2, time.Time{}, 0)
	if err := res.Tour.Validate(300); err != nil {
		t.Fatal(err)
	}
	if res.Tour.Length(in) != res.Length {
		t.Fatalf("length mismatch: %d vs %d", res.Tour.Length(in), res.Length)
	}
	// Anchor quality to the Held-Karp lower bound: LKH-style tours on
	// uniform instances should be within ~6% of it (HK itself sits ~1%
	// below the optimum).
	hk := heldkarp.LowerBound(in, heldkarp.Options{Iterations: 100, UpperBound: res.Length})
	gap := float64(res.Length-hk.Bound) / float64(hk.Bound)
	if gap > 0.06 {
		t.Fatalf("LKH-style gap over HK bound %.2f%% too large (len %d, HK %d)",
			gap*100, res.Length, hk.Bound)
	}
}

func TestSolveRespectsDeadline(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 500, 9)
	start := time.Now()
	p := DefaultParams()
	p.AscentIterations = 5
	Solve(in, p, 3, time.Now().Add(300*time.Millisecond), 0)
	// Candidate generation is not interruptible; allow generous slack.
	if time.Since(start) > 15*time.Second {
		t.Fatalf("deadline ignored: %v", time.Since(start))
	}
}
