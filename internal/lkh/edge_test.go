package lkh

import (
	"testing"
	"time"

	"distclk/internal/tsp"
)

func TestAlphaCandidatesTinyInstances(t *testing.T) {
	// k >= n-1 and very small n must not panic or produce self-loops.
	for _, n := range []int{4, 5, 8} {
		in := tsp.Generate(tsp.FamilyUniform, n, int64(n))
		cand, err := AlphaCandidates(in, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		for c := int32(0); c < int32(n); c++ {
			for _, o := range cand.Of(c) {
				if o == c {
					t.Fatalf("n=%d: city %d lists itself", n, c)
				}
				if o < 0 || o >= int32(n) {
					t.Fatalf("n=%d: candidate %d out of range", n, o)
				}
			}
		}
	}
}

func TestAlphaTreeEdgesAreCandidates(t *testing.T) {
	// Alpha of a 1-tree edge is zero, so (almost) every tree edge should
	// appear in the candidate lists — this is what bridges clusters.
	in := tsp.Generate(tsp.FamilyClustered, 120, 5)
	cand, err := AlphaCandidates(in, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Count how many cities have at least one candidate that is "far"
	// relative to their nearest neighbour — cluster bridges.
	dist := in.DistFunc()
	bridges := 0
	for c := int32(0); c < 120; c++ {
		list := cand.Of(c)
		nearest := dist(c, list[0])
		for _, o := range list {
			if dist(c, o) > 5*nearest && nearest > 0 {
				bridges++
				break
			}
		}
	}
	if bridges == 0 {
		t.Error("no long candidate edges at all — alpha lists degenerate to kNN")
	}
}

func TestSolveZeroTrials(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 30, 7)
	p := DefaultParams()
	p.Trials = 1
	res := Solve(in, p, 1, time.Time{}, 0)
	if err := res.Tour.Validate(30); err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1 {
		t.Fatalf("trials = %d", res.Trials)
	}
}

func TestSolveTargetShortCircuits(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 30, 9)
	// An absurdly generous target: the first descent already meets it, so
	// no trials should run.
	res := Solve(in, DefaultParams(), 1, time.Time{}, 1<<60)
	if res.Trials != 0 {
		t.Fatalf("ran %d trials despite met target", res.Trials)
	}
}
