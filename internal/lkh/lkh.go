package lkh

import (
	"math/rand"
	"time"

	"distclk/internal/clk"
	"distclk/internal/construct"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Params tunes the solver.
type Params struct {
	// CandidateK is the alpha-nearness candidate count per city (LKH
	// default 5).
	CandidateK int
	// AscentIterations bounds the Held-Karp ascent that produces the node
	// potentials.
	AscentIterations int
	// LK overrides the deep search schedule.
	LK lk.Params
	// Trials is the number of kick trials; <=0 selects the instance size
	// n, Helsgaun's default.
	Trials int
}

// DefaultParams mirrors LKH defaults where they map onto this engine.
func DefaultParams() Params {
	return Params{
		CandidateK:       5,
		AscentIterations: 60,
		LK: lk.Params{
			MaxDepth: 50,
			Breadth:  []int{8, 5, 3, 2, 2},
		},
	}
}

// AlphaCandidates builds alpha-nearness candidate lists. The
// implementation was promoted to neighbor.BuildAlpha so the candidate
// strategy registry can offer it in the hot path; this wrapper remains the
// lkh-facing name.
func AlphaCandidates(in *tsp.Instance, k int, ascentIters int) (*neighbor.Lists, error) {
	return neighbor.BuildAlpha(in, k, ascentIters)
}

// trialSolver keeps an incumbent and runs kick+deep-LK trials.
type trialSolver struct {
	inst    *tsp.Instance
	opt     *lk.Optimizer
	best    *lk.ArrayTour
	bestLen int64
	kick    func() (int64, [8]int32)
}

func newTrialSolver(in *tsp.Instance, cand *neighbor.Lists, params lk.Params, seed int64) *trialSolver {
	initial := construct.Build(construct.Greedy, in, cand, nil)
	opt := lk.NewOptimizer(in, cand, initial, params)
	opt.OptimizeAll(nil)
	ts := &trialSolver{
		inst:    in,
		opt:     opt,
		best:    lk.NewArrayTour(opt.Tour.Tour()),
		bestLen: opt.Length(),
	}
	rng := rand.New(rand.NewSource(seed))
	dist := in.DistFunc()
	n := in.N()
	ts.kick = func() (int64, [8]int32) {
		var cities [4]int32
		for i := 0; i < 4; {
			c := int32(rng.Intn(n))
			dup := false
			for j := 0; j < i; j++ {
				if cities[j] == c {
					dup = true
					break
				}
			}
			if !dup {
				cities[i] = c
				i++
			}
		}
		return clk.DoubleBridge(ts.opt.Tour, cities, dist)
	}
	return ts
}

func (ts *trialSolver) trial() {
	delta, touched := ts.kickApply()
	ts.opt.SetLength(ts.bestLen + delta)
	ts.opt.QueueCities(touched[:])
	ts.opt.Optimize(nil)
	if ts.opt.Length() <= ts.bestLen {
		ts.bestLen = ts.opt.Length()
		ts.best.CopyFrom(ts.opt.Tour)
	} else {
		ts.opt.Tour.CopyFrom(ts.best)
		ts.opt.SetLength(ts.bestLen)
	}
}

func (ts *trialSolver) kickApply() (int64, [8]int32) { return ts.kick() }

func (ts *trialSolver) bestTour() tsp.Tour { return ts.best.Tour() }

// Result reports a Solve run.
type Result struct {
	Tour    tsp.Tour
	Length  int64
	Trials  int
	Elapsed time.Duration
}

// Solve runs the LKH-style solver: alpha candidates, deep LK over them, and
// double-bridge trials retaining the best tour. deadline (optional, zero to
// disable) and target (optional, 0 to disable) bound the run.
func Solve(in *tsp.Instance, p Params, seed int64, deadline time.Time, target int64) Result {
	if p.CandidateK == 0 {
		p = DefaultParams()
	}
	start := time.Now()
	cand, err := AlphaCandidates(in, p.CandidateK, p.AscentIterations)
	if err != nil {
		// Alpha selection cannot fail on a well-formed instance; fall back
		// to plain nearest neighbours so Solve keeps its no-error contract.
		cand = neighbor.Build(in, p.CandidateK)
	}

	trials := p.Trials
	if trials <= 0 {
		trials = in.N()
	}
	solver := newTrialSolver(in, cand, p.LK, seed)
	done := 0
	for t := 0; t < trials; t++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if target > 0 && solver.bestLen <= target {
			break
		}
		solver.trial()
		done++
	}
	return Result{
		Tour:    solver.bestTour(),
		Length:  solver.bestLen,
		Trials:  done,
		Elapsed: time.Since(start),
	}
}
