package lkh

import (
	"math"
	"math/rand"
	"time"

	"distclk/internal/clk"
	"distclk/internal/construct"
	"distclk/internal/heldkarp"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Params tunes the solver.
type Params struct {
	// CandidateK is the alpha-nearness candidate count per city (LKH
	// default 5).
	CandidateK int
	// AscentIterations bounds the Held-Karp ascent that produces the node
	// potentials.
	AscentIterations int
	// LK overrides the deep search schedule.
	LK lk.Params
	// Trials is the number of kick trials; <=0 selects the instance size
	// n, Helsgaun's default.
	Trials int
}

// DefaultParams mirrors LKH defaults where they map onto this engine.
func DefaultParams() Params {
	return Params{
		CandidateK:       5,
		AscentIterations: 60,
		LK: lk.Params{
			MaxDepth: 50,
			Breadth:  []int{8, 5, 3, 2, 2},
		},
	}
}

type alphaScored struct {
	j int32
	a float64
}

func sortByAlpha(s []alphaScored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j-1].a > s[j].a || (s[j-1].a == s[j].a && s[j-1].j > s[j].j)); j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// AlphaCandidates builds alpha-nearness candidate lists: alpha(i,j) is the
// increase of the minimum 1-tree cost when edge (i,j) is forced into it,
// computed as w(i,j) - beta(i,j), where w is the pi-modified weight and
// beta(i,j) is the maximum edge weight on the 1-tree path between i and j.
// The k candidates with smallest alpha are kept per city (symmetrized).
// Runs the Held-Karp ascent first to obtain good potentials. O(n^2) time.
func AlphaCandidates(in *tsp.Instance, k int, ascentIters int) *neighbor.Lists {
	n := in.N()
	if k > n-1 {
		k = n - 1
	}
	ub := quickUpperBound(in)
	res := heldkarp.LowerBound(in, heldkarp.Options{Iterations: ascentIters, UpperBound: ub})
	tree, pi := res.Tree, res.Pi
	dist := in.DistFunc()
	w := func(i, j int32) float64 { return float64(dist(i, j)) + pi[i] + pi[j] }

	// MST adjacency (cities 1..n-1) with edge weights.
	treeAdj := make([][]int32, n)
	treeWt := make([][]float64, n)
	for i := int32(1); i < int32(n); i++ {
		if p := tree.Parent[i]; p > 0 {
			treeAdj[i] = append(treeAdj[i], p)
			treeWt[i] = append(treeWt[i], tree.ParentW[i])
			treeAdj[p] = append(treeAdj[p], i)
			treeWt[p] = append(treeWt[p], tree.ParentW[i])
		}
	}

	// City 0's forced edge replaces its larger special edge.
	maxOn0 := math.Max(w(0, tree.Special0[0]), w(0, tree.Special0[1]))

	// Pre-select near neighbours cheaply, then alpha-rank them.
	pre := neighbor.Build(in, minInt(3*k+8, n-1))

	adj := make([][]int32, n)
	beta := make([]float64, n)
	visited := make([]bool, n)
	type frame struct {
		node int32
		b    float64
	}
	stack := make([]frame, 0, n)

	for i := int32(0); i < int32(n); i++ {
		cand := pre.Of(i)
		scored := make([]alphaScored, 0, len(cand))
		if i == 0 {
			for _, j := range cand {
				a := w(0, j) - maxOn0
				if j == tree.Special0[0] || j == tree.Special0[1] || a < 0 {
					a = 0
				}
				scored = append(scored, alphaScored{j, a})
			}
		} else {
			// DFS from i over the MST: beta(i, x) = max edge on the path.
			for x := range visited {
				visited[x] = false
			}
			visited[i] = true
			stack = append(stack[:0], frame{i, math.Inf(-1)})
			for len(stack) > 0 {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for e, nb := range treeAdj[f.node] {
					if visited[nb] {
						continue
					}
					visited[nb] = true
					b := math.Max(f.b, treeWt[f.node][e])
					beta[nb] = b
					stack = append(stack, frame{nb, b})
				}
			}
			for _, j := range cand {
				var a float64
				if j == 0 {
					a = w(i, 0) - maxOn0
					if i == tree.Special0[0] || i == tree.Special0[1] {
						a = 0
					}
				} else {
					a = w(i, j) - beta[j]
				}
				if a < 0 {
					a = 0
				}
				scored = append(scored, alphaScored{j, a})
			}
		}
		sortByAlpha(scored)
		lim := minInt(k, len(scored))
		for _, s := range scored[:lim] {
			adj[i] = append(adj[i], s.j)
		}
	}

	// Symmetrize: LK traverses candidate edges from both endpoints.
	seen := make([]map[int32]bool, n)
	for i := range seen {
		seen[i] = map[int32]bool{}
	}
	for i := int32(0); i < int32(n); i++ {
		for _, j := range adj[i] {
			seen[i][j] = true
			seen[j][i] = true
		}
	}
	out := make([][]int32, n)
	for i := range out {
		for j := range seen[i] {
			out[i] = append(out[i], j)
		}
	}
	return neighbor.FromEdges(in, out)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// quickUpperBound builds a greedy tour to seed the ascent's step size.
func quickUpperBound(in *tsp.Instance) int64 {
	nbr := neighbor.Build(in, 8)
	t := construct.Build(construct.Greedy, in, nbr, nil)
	return t.Length(in)
}

// trialSolver keeps an incumbent and runs kick+deep-LK trials.
type trialSolver struct {
	inst    *tsp.Instance
	opt     *lk.Optimizer
	best    *lk.ArrayTour
	bestLen int64
	kick    func() (int64, [8]int32)
}

func newTrialSolver(in *tsp.Instance, cand *neighbor.Lists, params lk.Params, seed int64) *trialSolver {
	initial := construct.Build(construct.Greedy, in, cand, nil)
	opt := lk.NewOptimizer(in, cand, initial, params)
	opt.OptimizeAll(nil)
	ts := &trialSolver{
		inst:    in,
		opt:     opt,
		best:    lk.NewArrayTour(opt.Tour.Tour()),
		bestLen: opt.Length(),
	}
	rng := rand.New(rand.NewSource(seed))
	dist := in.DistFunc()
	n := in.N()
	ts.kick = func() (int64, [8]int32) {
		var cities [4]int32
		for i := 0; i < 4; {
			c := int32(rng.Intn(n))
			dup := false
			for j := 0; j < i; j++ {
				if cities[j] == c {
					dup = true
					break
				}
			}
			if !dup {
				cities[i] = c
				i++
			}
		}
		return clk.DoubleBridge(ts.opt.Tour, cities, dist)
	}
	return ts
}

func (ts *trialSolver) trial() {
	delta, touched := ts.kickApply()
	ts.opt.SetLength(ts.bestLen + delta)
	ts.opt.QueueCities(touched[:])
	ts.opt.Optimize(nil)
	if ts.opt.Length() <= ts.bestLen {
		ts.bestLen = ts.opt.Length()
		ts.best.CopyFrom(ts.opt.Tour)
	} else {
		ts.opt.Tour.CopyFrom(ts.best)
		ts.opt.SetLength(ts.bestLen)
	}
}

func (ts *trialSolver) kickApply() (int64, [8]int32) { return ts.kick() }

func (ts *trialSolver) bestTour() tsp.Tour { return ts.best.Tour() }

// Result reports a Solve run.
type Result struct {
	Tour    tsp.Tour
	Length  int64
	Trials  int
	Elapsed time.Duration
}

// Solve runs the LKH-style solver: alpha candidates, deep LK over them, and
// double-bridge trials retaining the best tour. deadline (optional, zero to
// disable) and target (optional, 0 to disable) bound the run.
func Solve(in *tsp.Instance, p Params, seed int64, deadline time.Time, target int64) Result {
	if p.CandidateK == 0 {
		p = DefaultParams()
	}
	start := time.Now()
	cand := AlphaCandidates(in, p.CandidateK, p.AscentIterations)

	trials := p.Trials
	if trials <= 0 {
		trials = in.N()
	}
	solver := newTrialSolver(in, cand, p.LK, seed)
	done := 0
	for t := 0; t < trials; t++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if target > 0 && solver.bestLen <= target {
			break
		}
		solver.trial()
		done++
	}
	return Result{
		Tour:    solver.bestTour(),
		Length:  solver.bestLen,
		Trials:  done,
		Elapsed: time.Since(start),
	}
}
