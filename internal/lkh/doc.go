// Package lkh is a reduced-fidelity stand-in for Helsgaun's LKH solver
// (the LKH row of the paper's Table 2). It reproduces LKH's two
// distinctive ingredients — alpha-nearness candidate sets derived from
// Held-Karp 1-trees and a deeper Lin-Kernighan search over those
// candidates — on top of this repository's LK engine. Helsgaun's
// sequential 5-opt step is approximated by a wider/deeper breadth
// schedule; DESIGN.md §6 records the substitution.
//
// Invariants:
//   - Solve with a zero deadline is deterministic for (instance, Params,
//     seed): trial budgets only, no wall-clock influence (the smoke tier
//     depends on this).
package lkh
