package merge

import (
	"testing"
	"time"

	"distclk/internal/exact"
	"distclk/internal/tsp"
)

func TestUnionGraphContainsAllTourEdges(t *testing.T) {
	t1 := tsp.Tour{0, 1, 2, 3, 4}
	t2 := tsp.Tour{0, 2, 4, 1, 3}
	adj := UnionGraph(5, []tsp.Tour{t1, t2})
	has := func(a, b int32) bool {
		for _, x := range adj[a] {
			if x == b {
				return true
			}
		}
		return false
	}
	for _, tour := range []tsp.Tour{t1, t2} {
		for i, c := range tour {
			next := tour[(i+1)%5]
			if !has(c, next) || !has(next, c) {
				t.Fatalf("edge (%d,%d) missing from union", c, next)
			}
		}
	}
	// Two disjoint 5-cycles = 10 distinct edges.
	if got := CountEdges(adj); got != 10 {
		t.Fatalf("CountEdges = %d, want 10", got)
	}
}

func TestUnionOfIdenticalToursIsOneTour(t *testing.T) {
	tour := tsp.Tour{3, 1, 4, 0, 2}
	adj := UnionGraph(5, []tsp.Tour{tour, tour.Clone(), tour.Clone()})
	if got := CountEdges(adj); got != 5 {
		t.Fatalf("CountEdges = %d, want 5", got)
	}
	for c, a := range adj {
		if len(a) != 2 {
			t.Fatalf("city %d has degree %d in single-tour union", c, len(a))
		}
	}
}

func TestSolveNeverWorseThanBestBase(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 250, 1)
	p := DefaultParams()
	p.Tours = 5
	p.KicksPerTour = 60
	p.MergeKicks = 50
	res := Solve(in, p, 1, time.Time{}, 0)
	if err := res.Tour.Validate(250); err != nil {
		t.Fatal(err)
	}
	if res.Length > res.BaseBest {
		t.Fatalf("merged %d worse than best base %d", res.Length, res.BaseBest)
	}
	if res.UnionEdges < 250 {
		t.Fatalf("union graph has only %d edges", res.UnionEdges)
	}
	if res.Tour.Length(in) != res.Length {
		t.Fatal("length mismatch")
	}
}

func TestSolveSmallToOptimum(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 14, 3)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Tours = 4
	p.KicksPerTour = 50
	res := Solve(in, p, 2, time.Now().Add(30*time.Second), optLen)
	if res.Length != optLen {
		t.Fatalf("tour merging reached %d, optimum %d", res.Length, optLen)
	}
}
