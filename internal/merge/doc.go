// Package merge implements a Cook & Seymour-style tour merging baseline
// (the TM-CLK row in the paper's Table 2): several independent CLK tours
// are merged into a sparse union graph, and a restricted Lin-Kernighan
// search over exactly the union edges extracts a tour that combines the
// best parts of every input. Cook & Seymour find the optimum in the union
// graph with branch-decomposition dynamic programming; the restricted-LK
// substitution keeps the same search space at reduced fidelity
// (DESIGN.md §6).
//
// Invariants:
//   - The merged tour uses union-graph edges only, and is never worse
//     than the best input tour.
//   - Solve with a zero deadline is deterministic for (instance, Params,
//     seed) — fixed tour counts and kick budgets (the smoke tier depends
//     on this).
package merge
