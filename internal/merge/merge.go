package merge

import (
	"context"
	"math/rand"
	"time"

	"distclk/internal/clk"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Params tunes the merger.
type Params struct {
	// Tours is the number of independent CLK runs (Cook & Seymour use 10).
	Tours int
	// KicksPerTour budgets each base run.
	KicksPerTour int64
	// CLK configures the base runs.
	CLK clk.Params
	// DeepLK configures the restricted merge search.
	DeepLK lk.Params
	// MergeKicks is the number of perturbation trials inside the union
	// graph after the first restricted descent.
	MergeKicks int
}

// DefaultParams follows the paper's setup (10 CLK tours).
func DefaultParams() Params {
	return Params{
		Tours:        10,
		KicksPerTour: 0, // derived from n at Solve time
		CLK:          clk.DefaultParams(),
		DeepLK: lk.Params{
			MaxDepth: 60,
			Breadth:  []int{10, 6, 4, 2},
		},
		MergeKicks: 200,
	}
}

// Result reports a Solve run.
type Result struct {
	Tour   tsp.Tour
	Length int64
	// BaseBest is the best length among the input tours (improvement over
	// it is the value added by merging).
	BaseBest int64
	// UnionEdges is the union graph size.
	UnionEdges int
	Elapsed    time.Duration
}

// UnionGraph builds per-city adjacency over the union of the tours' edges.
// It delegates to neighbor.UnionOfTours, which also feeds the in-node
// elite fusion of clk.Group; adjacency lists come back sorted ascending.
func UnionGraph(n int, tours []tsp.Tour) [][]int32 {
	return neighbor.UnionOfTours(n, tours)
}

// CountEdges tallies distinct undirected edges in an adjacency structure.
func CountEdges(adj [][]int32) int {
	total := 0
	for i, a := range adj {
		for _, j := range a {
			if int32(i) < j {
				total++
			}
		}
	}
	return total
}

// Solve runs tour merging: r independent CLK runs, then restricted LK over
// the union graph starting from the best base tour.
func Solve(in *tsp.Instance, p Params, seed int64, deadline time.Time, target int64) Result {
	if p.Tours == 0 {
		p = DefaultParams()
	}
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	start := time.Now()
	n := in.N()
	kicks := p.KicksPerTour
	if kicks <= 0 {
		kicks = int64(n)
	}

	tours := make([]tsp.Tour, 0, p.Tours)
	var bestBase tsp.Tour
	var bestBaseLen int64
	for r := 0; r < p.Tours; r++ {
		s := clk.New(in, p.CLK, seed+int64(r)*7919)
		res := s.Run(ctx, clk.Budget{MaxKicks: kicks, Target: target})
		tours = append(tours, res.Tour)
		if bestBase == nil || res.Length < bestBaseLen {
			bestBase, bestBaseLen = res.Tour, res.Length
		}
		if target > 0 && bestBaseLen <= target {
			break // a base run already hit the optimum
		}
	}

	adj := UnionGraph(n, tours)
	cand, err := neighbor.FromEdges(in, adj)
	if err != nil {
		// Union graphs of valid tours cannot produce bad edges; return the
		// best base tour rather than merge over corrupt candidates.
		return Result{Tour: bestBase, Length: bestBaseLen, BaseBest: bestBaseLen}
	}

	opt := lk.NewOptimizer(in, cand, bestBase, p.DeepLK)
	opt.OptimizeAll(nil)
	best := lk.NewArrayTour(opt.Tour.Tour())
	bestLen := opt.Length()

	// Perturbation trials confined to the union graph.
	rng := rand.New(rand.NewSource(seed + 13))
	dist := in.DistFunc()
	for trial := 0; trial < p.MergeKicks; trial++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if target > 0 && bestLen <= target {
			break
		}
		var cities [4]int32
		for i := 0; i < 4; {
			c := int32(rng.Intn(n))
			dup := false
			for j := 0; j < i; j++ {
				if cities[j] == c {
					dup = true
					break
				}
			}
			if !dup {
				cities[i] = c
				i++
			}
		}
		delta, touched := clk.DoubleBridge(opt.Tour, cities, dist)
		opt.SetLength(bestLen + delta)
		opt.QueueCities(touched[:])
		opt.Optimize(nil)
		if opt.Length() <= bestLen {
			bestLen = opt.Length()
			best.CopyFrom(opt.Tour)
		} else {
			opt.Tour.CopyFrom(best)
			opt.SetLength(bestLen)
		}
	}

	return Result{
		Tour:       best.Tour(),
		Length:     bestLen,
		BaseBest:   bestBaseLen,
		UnionEdges: CountEdges(adj),
		Elapsed:    time.Since(start),
	}
}
