package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// The ignore audit keeps suppressions honest over time: an ignore whose
// target line no longer triggers the named rule is dead weight — it
// documents a finding that does not exist and would silently swallow a
// future, different finding on the same line. AuditIgnores detects them;
// FixIgnores deletes them from the source.

// DeadIgnore is one (suppression, rule) pair that no longer fires.
type DeadIgnore struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

func (d DeadIgnore) String() string {
	return fmt.Sprintf("%s:%d: //lint:ignore %s is dead: the rule no longer fires here (%s)", d.File, d.Line, d.Rule, d.Reason)
}

// AuditIgnores re-runs the analyzers with suppression disabled and
// returns every ignore rule with no raw diagnostic on its covered lines
// (the ignore's own line or the line below), sorted by file/line/rule.
func AuditIgnores(pkgs []*Package, analyzers []*Analyzer) []DeadIgnore {
	type key struct {
		file string
		line int
		rule string
	}
	raw := make(map[key]bool)
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
		for _, d := range diags {
			raw[key{d.File, d.Line, d.Rule}] = true
		}
	}
	var dead []DeadIgnore
	for _, s := range Ignores(pkgs) {
		for _, r := range s.Rules {
			if raw[key{s.File, s.Line, r}] || raw[key{s.File, s.Line + 1, r}] {
				continue
			}
			dead = append(dead, DeadIgnore{File: s.File, Line: s.Line, Rule: r, Reason: s.Reason})
		}
	}
	sort.Slice(dead, func(i, j int) bool {
		a, b := dead[i], dead[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return dead
}

// FixIgnores removes the dead rules from their //lint:ignore comments in
// place: a comment whose rules all died is deleted (the whole line when
// it stands alone, the trailing comment otherwise); a partially dead one
// has its rule list rewritten. It returns the files rewritten.
func FixIgnores(dead []DeadIgnore) ([]string, error) {
	deadByFile := make(map[string]map[int]map[string]bool)
	for _, d := range dead {
		if deadByFile[d.File] == nil {
			deadByFile[d.File] = make(map[int]map[string]bool)
		}
		if deadByFile[d.File][d.Line] == nil {
			deadByFile[d.File][d.Line] = make(map[string]bool)
		}
		deadByFile[d.File][d.Line][d.Rule] = true
	}
	var changed []string
	for _, file := range sortedKeys(deadByFile) {
		data, err := os.ReadFile(file)
		if err != nil {
			return changed, fmt.Errorf("audit fix: %w", err)
		}
		lines := strings.Split(string(data), "\n")
		out := make([]string, 0, len(lines))
		for i, line := range lines {
			deadRules := deadByFile[file][i+1]
			if len(deadRules) == 0 {
				out = append(out, line)
				continue
			}
			fixed, drop := rewriteIgnoreLine(line, deadRules)
			if !drop {
				out = append(out, fixed)
			}
		}
		if err := os.WriteFile(file, []byte(strings.Join(out, "\n")), 0o644); err != nil {
			return changed, fmt.Errorf("audit fix: %w", err)
		}
		changed = append(changed, file)
	}
	return changed, nil
}

// rewriteIgnoreLine strips the dead rules from the line's //lint:ignore
// comment. It returns the rewritten line, or drop=true when the whole
// line should be removed (a standalone comment whose rules all died).
func rewriteIgnoreLine(line string, deadRules map[string]bool) (string, bool) {
	idx := strings.Index(line, ignorePrefix)
	if idx < 0 {
		return line, false // defensive: the parser said there was a comment here
	}
	comment := line[idx:]
	fields := strings.Fields(strings.TrimPrefix(comment, ignorePrefix))
	if len(fields) < 2 {
		return line, false
	}
	var live []string
	for _, r := range strings.Split(fields[0], ",") {
		if !deadRules[r] {
			live = append(live, r)
		}
	}
	if len(live) > 0 {
		rebuilt := ignorePrefix + " " + strings.Join(live, ",") + " " + strings.Join(fields[1:], " ")
		return line[:idx] + rebuilt, false
	}
	before := strings.TrimRight(line[:idx], " \t")
	if before == "" {
		return "", true // standalone comment line: delete it
	}
	return before, false // trailing comment: keep the code
}
