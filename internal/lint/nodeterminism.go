package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterminism guards the seeded-replay contract: a package that promises
// byte-identical replay (internal/simnet, internal/report, or any package
// whose doc.go carries //distlint:deterministic) must not read wall
// clocks, draw from the global math/rand state, or iterate maps — any of
// the three silently breaks `make repro-smoke` and the simnet replay
// tests.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall clocks, global math/rand, and map iteration in packages with a determinism contract",
	Run:  runNoDeterminism,
}

// detPathSuffixes names the packages with an implicit determinism
// contract; others opt in with a //distlint:deterministic doc directive.
var detPathSuffixes = []string{"internal/simnet", "internal/report"}

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand package-level functions that are fine
// in deterministic code: they build seeded generators rather than drawing
// from the global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func inNoDeterminismScope(pkg *Package) bool {
	for _, s := range detPathSuffixes {
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return pkg.HasDirective("deterministic")
}

func runNoDeterminism(pass *Pass) {
	pkg := pass.Pkg
	if !inNoDeterminismScope(pkg) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleePkgFunc(pkg, n)
				if fn == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; deterministic packages must use the virtual clock or take timestamps as input", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[fn.Name()] {
						pass.Reportf(n.Pos(), "global %s.%s draws from shared unseeded state; draw from an explicitly seeded *rand.Rand", pathBase(fn.Pkg().Path()), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pkg.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; range over a sorted slice of keys instead")
					}
				}
			}
			return true
		})
	}
}

// calleePkgFunc resolves a call to a package-level function (not a method,
// not a builtin, not a func value), or nil.
func calleePkgFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
