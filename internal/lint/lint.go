package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file:line:col.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Package is one loaded, type-checked package as seen by analyzers.
type Package struct {
	Path  string // import path, e.g. distclk/internal/clk
	Name  string // package name
	Dir   string // absolute source directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Info  *types.Info
	Types *types.Package
	// TypeErrors collects soft type-check failures (e.g. a dependency with
	// no export data). Analyzers still run on whatever was resolved.
	TypeErrors []error
}

// TypeOf returns the type of expr, or nil when unresolved.
func (p *Package) TypeOf(expr ast.Expr) types.Type {
	return p.Info.TypeOf(expr)
}

// HasDirective reports whether any file's package doc comment carries a
// `//distlint:<name>` directive (conventionally in doc.go).
func (p *Package) HasDirective(name string) bool {
	for _, f := range p.Files {
		if hasDirective(f.Doc, name) {
			return true
		}
	}
	return false
}

// hasDirective reports whether the comment group contains the directive
// comment `//distlint:<name>`.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//distlint:")
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == name {
			return true
		}
	}
	return false
}

// Analyzer is one named invariant check over a Package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -rules listings and DESIGN.md.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) run.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the registered analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism, HotPathAlloc, CtxHygiene, NoPanic,
		GoroLeak, LockSafety, AtomicHygiene, EventSync,
	}
}

// Check runs the analyzers over the packages, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by file,
// line, column and rule. Malformed or unknown-rule ignore comments are
// reported under the badignore rule. Rule names in ignore comments are
// validated against both the running analyzers and the full registry, so
// a single-analyzer run (as in tests) accepts suppressions for the
// others.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{badIgnoreRule: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
		ignores, bad := parseIgnores(pkg, known)
		diags = append(suppress(diags, ignores), bad...)
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
