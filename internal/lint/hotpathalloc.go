package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc guards the zero-alloc kick loop (PR 2's 1.8x win): inside a
// function annotated //distlint:hotpath it flags every construct that
// allocates or is likely to — fmt calls, make/new, closure literals,
// append onto anything but a struct-field scratch buffer, and conversions
// of concrete values to interfaces. The clk/lk allocation tests catch a
// regression at run time; this catches it at review time with a line
// number.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in functions annotated //distlint:hotpath",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotBody(pass, fd.Body)
		}
	}
}

func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	pkg := pass.Pkg
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path: captured variables escape to the heap; hoist the func or use a method value prepared at construction time")
		case *ast.CallExpr:
			checkHotCall(pass, pkg, n)
		}
		return true
	})
}

func checkHotCall(pass *Pass, pkg *Package, call *ast.CallExpr) {
	// Builtins: make/new allocate; append is fine only onto a struct-field
	// scratch buffer sized at construction time.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path: pre-size the buffer in the constructor and reuse it", b.Name())
			case "append":
				checkHotAppend(pass, call)
			}
			return
		}
	}
	// fmt.* both allocates and boxes its operands; one finding covers it.
	if fn := calleePkgFunc(pkg, call); fn != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates and boxes every operand", fn.Name())
		return
	}
	// A conversion T(x) where T is an interface boxes x.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && isConcrete(pkg.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface %s in hot path allocates", types.TypeString(tv.Type, relativeTo(pkg)))
		}
		return
	}
	// Passing a concrete value where the callee wants an interface is the
	// same box, just implicit.
	sig, ok := pkg.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				param = sig.Params().At(np - 1).Type()
			} else if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < np:
			param = sig.Params().At(i).Type()
		}
		if param == nil || !isInterface(param) {
			continue
		}
		if at := pkg.TypeOf(arg); isConcrete(at) {
			pass.Reportf(arg.Pos(), "passing %s as interface %s in hot path allocates", types.TypeString(at, relativeTo(pkg)), types.TypeString(param, relativeTo(pkg)))
		}
	}
}

// checkHotAppend allows append only onto struct-field scratch buffers
// (s.buf, s.buf[:0], ...): those are pre-sized by the constructor, so a
// steady-state append never grows. A plain local slice has no such
// guarantee.
func checkHotAppend(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	for {
		switch b := base.(type) {
		case *ast.SliceExpr:
			base = b.X
		case *ast.IndexExpr:
			base = b.X
		case *ast.ParenExpr:
			base = b.X
		default:
			if _, ok := base.(*ast.SelectorExpr); !ok {
				pass.Reportf(call.Pos(), "append onto a non-scratch slice in hot path: append only to a pre-sized struct-field buffer")
			}
			return
		}
	}
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isConcrete reports whether t is a real non-interface type (nil and
// untyped nil are not a box).
func isConcrete(t types.Type) bool {
	if t == nil || isInterface(t) {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func relativeTo(pkg *Package) types.Qualifier {
	return types.RelativeTo(pkg.Types)
}
