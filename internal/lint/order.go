package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// declEntry pairs a package-level function object with its declaration.
type declEntry struct {
	fn *types.Func
	fd *ast.FuncDecl
}

// orderedDecls returns the package's function declarations in source
// order (token.Pos is monotone in parse order), so fixpoint loops over
// them visit functions deterministically. The lint package carries a
// determinism contract itself: analyzer output must be byte-stable.
func orderedDecls(pkg *Package) []declEntry {
	var out []declEntry
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, declEntry{fn: fn, fd: fd})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fd.Pos() < out[j].fd.Pos() })
	return out
}

// sortedKeys returns m's keys in sorted order — the package's one
// sanctioned map range, so every analyzer loop that consumes it is
// deterministic by construction.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	//lint:ignore nodeterminism the keys are sorted before the caller sees them; this helper exists so no analyzer ranges a map directly
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
