package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic keeps library packages panic-free: a panic that escapes a node
// goroutine takes down the whole cluster process, so errors must travel as
// values. The one sanctioned exception is the invariant-violation helper —
// a function named must*/Must* whose only job is to crash on a broken
// internal invariant (e.g. neighbor.mustValidate).
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic in library packages outside must*/Must* invariant-violation helpers",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in library code: return an error, or move the check into a must* invariant helper")
				}
				return true
			})
		}
	}
}
