package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 structures — only the slice of the schema distlint emits,
// enough for GitHub code scanning to ingest the findings.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the diagnostics as a SARIF 2.1.0 log. File paths are
// made relative to root (the module root) so the upload matches the
// repository layout GitHub code scanning expects.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: badIgnoreRule, ShortDescription: sarifMessage{Text: "malformed or unknown-rule //lint:ignore comment"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, d.File), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "distlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// relPath makes path relative to root and slash-separated; it falls back
// to the input when the two do not share a prefix.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
