package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// badIgnoreRule labels diagnostics about malformed //lint:ignore comments.
// A suppression that cannot be trusted (no reason, unknown rule) must fail
// the build just like the finding it tried to hide.
const badIgnoreRule = "badignore"

const ignorePrefix = "//lint:ignore"

// ignore is one parsed, well-formed //lint:ignore comment. It suppresses
// diagnostics for the named rules on its own line (trailing comment) or on
// the line directly below (standalone comment).
type ignore struct {
	file   string
	line   int
	rules  []string
	reason string
}

// IgnoreSite is one well-formed //lint:ignore suppression found in the
// tree — the unit the suppressions baseline and the ignore audit work on.
type IgnoreSite struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason"`
}

// Ignores returns every well-formed suppression in pkgs sorted by file
// and line, with rule names validated against the full registry.
func Ignores(pkgs []*Package) []IgnoreSite {
	known := map[string]bool{badIgnoreRule: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []IgnoreSite
	for _, pkg := range pkgs {
		igs, _ := parseIgnores(pkg, known)
		for _, ig := range igs {
			out = append(out, IgnoreSite{File: ig.file, Line: ig.line, Rules: ig.rules, Reason: ig.reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// parseIgnores scans every comment in the package for //lint:ignore
// directives. Well-formed ones (at least one known rule plus a non-empty
// reason) are returned as suppressions; malformed ones are returned as
// badignore diagnostics and suppress nothing. A comment may name several
// rules separated by commas; unknown names are reported individually while
// the known names in the same comment still apply.
func parseIgnores(pkg *Package, known map[string]bool) ([]ignore, []Diagnostic) {
	var igs []ignore
	var bad []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		p := &Pass{Pkg: pkg, analyzer: &Analyzer{Name: badIgnoreRule}, diags: &bad}
		p.Reportf(c.Pos(), format, args...)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignoreXYZ, not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c, "//lint:ignore needs a rule name and a reason")
					continue
				}
				if len(fields) == 1 {
					report(c, "//lint:ignore %s is missing a reason: say why the finding is intentional", fields[0])
					continue
				}
				var rules []string
				for _, r := range strings.Split(fields[0], ",") {
					if r == "" {
						report(c, "//lint:ignore has an empty rule name in %q", fields[0])
						continue
					}
					if !known[r] {
						report(c, "//lint:ignore names unknown rule %q", r)
						continue
					}
					rules = append(rules, r)
				}
				if len(rules) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				igs = append(igs, ignore{file: pos.Filename, line: pos.Line, rules: rules, reason: strings.Join(fields[1:], " ")})
			}
		}
	}
	return igs, bad
}

// suppress drops diagnostics covered by an ignore: same file, matching
// rule, and the diagnostic sits on the ignore's line or the line directly
// below it. An ignore anywhere else (the "wrong line") suppresses nothing.
func suppress(diags []Diagnostic, igs []ignore) []Diagnostic {
	if len(igs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, igs) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(d Diagnostic, igs []ignore) bool {
	for _, ig := range igs {
		if ig.file != d.File {
			continue
		}
		if d.Line != ig.line && d.Line != ig.line+1 {
			continue
		}
		for _, r := range ig.rules {
			if r == d.Rule {
				return true
			}
		}
	}
	return false
}
