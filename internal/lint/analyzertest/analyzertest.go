// Package analyzertest runs lint analyzers over fixture packages and
// checks their diagnostics against golden `// want` comments, the same
// way go/analysis' analysistest does for x/tools analyzers — but built on
// internal/lint's own loader, so fixtures get full type information.
//
// A fixture line asserts its findings with one or more quoted regular
// expressions:
//
//	return time.Now() // want `nodeterminism: time\.Now`
//
// Every diagnostic must be matched by a want on its line and every want
// must match exactly one diagnostic, so fixtures pin both the positives
// and (by omission) the negatives. Both backquoted and double-quoted
// regexps are accepted. The regexp is matched against "rule: message".
package analyzertest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"distclk/internal/lint"
)

// want is one expected-diagnostic assertion parsed from a fixture.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package named by pattern (a path relative to the
// test's working directory, e.g. "./testdata/src/nopanic"), runs the
// analyzers through the full lint.Check pipeline — suppressions included —
// and compares the surviving diagnostics against the fixture's want
// comments.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(".", pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]
	for _, te := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", pattern, te)
	}

	wants := parseWants(t, pkg)
	for _, d := range lint.Check(pkgs, analyzers) {
		if !match(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// match marks and reports the first unmatched want on the diagnostic's
// line whose regexp matches "rule: message".
func match(wants []*want, d lint.Diagnostic) bool {
	text := fmt.Sprintf("%s: %s", d.Rule, d.Message)
	for _, w := range wants {
		if w.matched || w.file != d.File || w.line != d.Line {
			continue
		}
		if w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts want assertions from every comment in the package.
func parseWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWantComment(t, pkg, c)...)
			}
		}
	}
	return wants
}

func parseWantComment(t *testing.T, pkg *lint.Package, c *ast.Comment) []*want {
	t.Helper()
	rest, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var wants []*want
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var expr string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated backquoted want regexp", pos.Filename, pos.Line)
			}
			expr, rest = rest[1:1+end], rest[2+end:]
		case '"':
			quoted, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s:%d: malformed quoted want regexp: %v", pos.Filename, pos.Line, err)
			}
			expr, err = strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("%s:%d: malformed quoted want regexp: %v", pos.Filename, pos.Line, err)
			}
			rest = rest[len(quoted):]
		default:
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", pos.Filename, pos.Line, rest)
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
		}
		wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	return wants
}
