package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicHygiene guards mixed atomic/plain field access, the data race the
// race detector only catches when both sides happen to run in one test:
//
//   - a struct field whose address is ever passed to a sync/atomic
//     function (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...)
//     must never be read or written plainly anywhere else in the package —
//     the plain access races with the atomic one and voids its ordering
//     guarantees;
//   - a field of one of the sync/atomic wrapper types (atomic.Int64,
//     atomic.Pointer[T], atomic.Bool, ...) must only be used through its
//     methods or by address: copying it smuggles an unsynchronized
//     snapshot out of the atomic domain.
//
// Fields are tracked by their types.Var identity, so two structs with a
// same-named field do not contaminate each other. The analysis is
// per-package: the flagged fields are unexported in practice, so package
// scope is module scope for them.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc:  "a field accessed via sync/atomic must never be read or written plainly elsewhere",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return
	}
	atomicFields, atomicUses := collectAtomicFields(pkg)
	if len(atomicFields) == 0 {
		checkAtomicTyped(pass, pkg)
		return
	}
	for _, f := range pkg.Files {
		walkWithParents(f, func(n ast.Node, parents []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !atomicFields[obj] {
				return
			}
			if atomicUses[sel] {
				return // the sanctioned &s.f inside a sync/atomic call
			}
			verb := "read"
			if isWriteContext(sel, parents) {
				verb = "written"
			}
			pass.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere but %s plainly here; use the atomic API for every access", obj.Name(), verb)
		})
	}
	checkAtomicTyped(pass, pkg)
}

// collectAtomicFields finds every struct field whose address is passed to
// a sync/atomic function, plus the selector nodes that constitute those
// sanctioned accesses.
func collectAtomicFields(pkg *Package) (map[*types.Var]bool, map[*ast.SelectorExpr]bool) {
	fields := make(map[*types.Var]bool)
	uses := make(map[*ast.SelectorExpr]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleePkgFunc(pkg, call)
			if fn == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := unary.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
					fields[obj] = true
					uses[sel] = true
				}
			}
			return true
		})
	}
	return fields, uses
}

// checkAtomicTyped flags value copies of sync/atomic wrapper-typed fields
// (atomic.Int64 and friends): the only legal uses are method calls and
// taking the address.
func checkAtomicTyped(pass *Pass, pkg *Package) {
	for _, f := range pkg.Files {
		walkWithParents(f, func(n ast.Node, parents []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() || !isAtomicWrapperType(obj.Type()) {
				return
			}
			if len(parents) == 0 {
				return
			}
			switch p := parents[len(parents)-1].(type) {
			case *ast.SelectorExpr:
				return // receiver of a method call: s.counter.Add(1)
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					return // &s.counter handed to something atomic-aware
				}
			}
			pass.Reportf(sel.Pos(), "atomic value %s is copied; sync/atomic types must be used via their methods or by address", obj.Name())
		})
	}
}

func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isWriteContext reports whether the selector is being assigned to
// (including ++/-- and compound assignment).
func isWriteContext(sel *ast.SelectorExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == ast.Expr(sel)
	}
	return false
}

// walkWithParents runs visit over every node with the stack of its
// ancestors (nearest last).
func walkWithParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
