package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafety guards mutex discipline in library packages, the bug class
// most likely to wedge a long-lived cluster or solve service:
//
//  1. pairing — a Lock()/RLock() must be released by a `defer Unlock()`
//     or an Unlock() on every linear path; a return inside the held
//     region without a deferred release is a finding, as is a lock still
//     held at the end of the function;
//  2. no blocking under a lock — a channel send, a blocking receive, a
//     select without a default case, or a network write while a mutex is
//     held lets one stalled peer freeze every other lock user (the
//     classic fan-out deadlock); non-blocking selects (with default) are
//     the sanctioned shape;
//  3. ordering — an interprocedural per-package lock-acquisition-order
//     graph over mutex identities (Type.field or package var): a cycle
//     (A taken under B and B taken under A, possibly through a call)
//     is a deadlock candidate and is reported on every edge of the cycle.
//
// The analysis is linear in source order inside each function —
// deliberately simple, so a finding always points at a shape a reviewer
// can see. Patterns it cannot prove (a per-connection write mutex whose
// write is bounded by a deadline, a helper that unlocks a caller's lock)
// are silenced with a reasoned //lint:ignore.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc:  "Lock paired with defer/Unlock on every path, no blocking channel/network ops under a mutex, no lock-order cycles",
	Run:  runLockSafety,
}

// lock-event kinds, collected in source order per function.
const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evReturn
	evSend
	evRecv
	evSelect
	evNetWrite
	evCall
)

type lockEvent struct {
	kind  int
	pos   token.Pos
	key   string      // mutex receiver expression, e.g. "b.mu"
	rw    bool        // RLock/RUnlock family
	ident string      // mutex identity for the order graph, e.g. "Broadcaster.mu"
	fn    *types.Func // callee for evCall
	label string      // human label for blocking events
}

// lockEdge is one acquisition-order edge: to was acquired while from was
// held.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name when the edge crosses a call, else ""
}

func runLockSafety(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return
	}
	decls := funcDecls(pkg)
	ordered := orderedDecls(pkg)
	netWriters := netWriterFuncs(pkg, ordered)
	lockSets := lockSetClosure(pkg, decls, ordered)

	var edges []lockEdge
	analyze := func(name string, body *ast.BlockStmt) {
		events := collectLockEvents(pkg, body, netWriters)
		edges = append(edges, checkLockFlow(pass, name, events, lockSets)...)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyze(fd.Name.Name, fd.Body)
			// Function literals are separate execution contexts (often
			// goroutines): each gets its own linear analysis.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyze("func literal in "+fd.Name.Name, lit.Body)
				}
				return true
			})
		}
	}
	reportLockCycles(pass, edges)
}

// mutexCall classifies a call as Lock/Unlock/RLock/RUnlock on a
// sync.Mutex/RWMutex/Locker receiver. It returns the receiver key (the
// printed expression) and identity (Type.field or package var name; ""
// when the mutex is local and cannot participate in the order graph).
func mutexCall(pkg *Package, call *ast.CallExpr) (key, ident string, kind int, rw, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = evLock
	case "RLock":
		kind, rw = evLock, true
	case "Unlock":
		kind = evUnlock
	case "RUnlock":
		kind, rw = evUnlock, true
	default:
		return "", "", 0, false, false
	}
	recv := sel.X
	if !isMutexType(pkg.TypeOf(recv)) {
		return "", "", 0, false, false
	}
	return types.ExprString(recv), mutexIdentity(pkg, recv), kind, rw, true
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexIdentity names a mutex for the package-wide order graph: a struct
// field becomes "Type.field" (instance-independent), a package-level var
// its name. Locals return "".
func mutexIdentity(pkg *Package, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj, ok := pkg.Info.Uses[e.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return ""
		}
		t := pkg.TypeOf(e.X)
		if t == nil {
			return ""
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Var); ok && obj.Parent() == pkg.Types.Scope() {
			return obj.Name()
		}
	}
	return ""
}

// netWriterFuncs computes the same-package functions that perform a
// network write directly or transitively — a call to one of those while
// holding a lock is as bad as the write itself.
func netWriterFuncs(pkg *Package, ordered []declEntry) map[*types.Func]bool {
	writers := make(map[*types.Func]bool)
	// Seed: direct writes.
	for _, d := range ordered {
		direct := false
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isNetWrite(pkg, call) {
				direct = true
			}
			return !direct
		})
		if direct {
			writers[d.fn] = true
		}
	}
	// Fixpoint: propagate through same-package calls.
	for changed := true; changed; {
		changed = false
		for _, d := range ordered {
			if writers[d.fn] {
				continue
			}
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pkg, call); callee != nil && writers[callee] {
					writers[d.fn] = true
					changed = true
					return false
				}
				return true
			})
		}
	}
	return writers
}

// isNetWrite reports a write-ish method call that can block on a peer:
// Write/WriteTo/ReadFrom on a named type from package net, or on any
// interface value (io.Writer, net.Conn, ...). An interface hides a
// socket as easily as a buffer, and only the socket case matters for
// lock discipline, so interface writes count while provably-local
// concrete writers (*bytes.Buffer, *strings.Builder) do not.
func isNetWrite(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteTo", "ReadFrom":
	default:
		return false
	}
	t := pkg.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// collectLockEvents walks the body in source order and flattens the
// lock-relevant operations. Comm operations of a select with a default
// case are non-blocking and produce no events; a select without default
// is one blocking event.
func collectLockEvents(pkg *Package, body *ast.BlockStmt, netWriters map[*types.Func]bool) []lockEvent {
	var events []lockEvent
	skip := make(map[ast.Node]bool) // nodes already classified by a parent
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return !skip[n]
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate goroutine/closure: its own discipline
		case *ast.DeferStmt:
			if key, ident, kind, rw, ok := mutexCall(pkg, n.Call); ok {
				skip[n.Call] = true
				if kind == evUnlock {
					events = append(events, lockEvent{kind: evDeferUnlock, pos: n.Pos(), key: key, rw: rw, ident: ident})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						skip[cc.Comm] = true // the comm op is part of the select
					}
				}
			}
			if !hasDefault {
				events = append(events, lockEvent{kind: evSelect, pos: n.Pos(), label: "select without default"})
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{kind: evSend, pos: n.Pos(), label: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{kind: evRecv, pos: n.Pos(), label: "channel receive"})
			}
		case *ast.RangeStmt:
			if t := pkg.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					events = append(events, lockEvent{kind: evRecv, pos: n.Pos(), label: "range over channel"})
				}
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{kind: evReturn, pos: n.Pos()})
		case *ast.CallExpr:
			if key, ident, kind, rw, ok := mutexCall(pkg, n); ok {
				events = append(events, lockEvent{kind: kind, pos: n.Pos(), key: key, rw: rw, ident: ident})
				return true
			}
			if isNetWrite(pkg, n) {
				events = append(events, lockEvent{kind: evNetWrite, pos: n.Pos(), label: "network write"})
				return true
			}
			if callee := calleeFunc(pkg, n); callee != nil {
				if netWriters[callee] {
					events = append(events, lockEvent{kind: evNetWrite, pos: n.Pos(), label: "network write (via " + callee.Name() + ")"})
				}
				events = append(events, lockEvent{kind: evCall, pos: n.Pos(), fn: callee})
			}
		}
		return true
	})
	return events
}

// heldLock is one currently-held acquisition.
type heldLock struct {
	key      string
	ident    string
	rw       bool
	pos      token.Pos
	deferred bool // released by a deferred Unlock (held to function end)
}

// checkLockFlow runs the linear pairing/blocking analysis over one
// function's events and returns the acquisition-order edges it observed.
func checkLockFlow(pass *Pass, name string, events []lockEvent, lockSets map[*types.Func]map[string]bool) []lockEdge {
	var held []heldLock
	var edges []lockEdge
	find := func(key string, rw bool) int {
		for i, h := range held {
			if h.key == key && h.rw == rw {
				return i
			}
		}
		return -1
	}
	anyHeld := func() (heldLock, bool) {
		if len(held) == 0 {
			return heldLock{}, false
		}
		return held[len(held)-1], true
	}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if i := find(ev.key, ev.rw); i >= 0 {
				pass.Reportf(ev.pos, "%s is locked twice without an intervening unlock in %s (self-deadlock)", ev.key, name)
				continue
			}
			// Order-graph edges: the new lock is acquired under every
			// currently held identity.
			if ev.ident != "" {
				for _, h := range held {
					if h.ident != "" && h.ident != ev.ident {
						edges = append(edges, lockEdge{from: h.ident, to: ev.ident, pos: ev.pos})
					}
				}
			}
			held = append(held, heldLock{key: ev.key, ident: ev.ident, rw: ev.rw, pos: ev.pos})
		case evDeferUnlock:
			if i := find(ev.key, ev.rw); i >= 0 {
				held[i].deferred = true
			} else {
				// defer before the matching Lock (rare but legal): treat
				// the next Lock of this key as defer-paired.
				held = append(held, heldLock{key: ev.key, ident: ev.ident, rw: ev.rw, pos: ev.pos, deferred: true})
			}
		case evUnlock:
			if i := find(ev.key, ev.rw); i >= 0 && !held[i].deferred {
				held = append(held[:i], held[i+1:]...)
			}
			// An unlock with no matching lock (helpers releasing a
			// caller's lock) is out of scope for the linear analysis.
		case evReturn:
			for _, h := range held {
				if !h.deferred {
					pass.Reportf(ev.pos, "return in %s while %s is held with no defer %s.Unlock(); unlock before returning or defer the unlock", name, h.key, h.key)
				}
			}
		case evSend, evRecv, evSelect, evNetWrite:
			if h, ok := anyHeld(); ok {
				pass.Reportf(ev.pos, "%s while holding %s in %s: a stalled counterpart wedges every other user of the lock; move the blocking operation outside the critical section", ev.label, h.key, name)
			}
		case evCall:
			// Interprocedural order edges: everything the callee (and its
			// callees) lock is acquired under the held identities. A call
			// that re-acquires a held identity is an immediate deadlock
			// candidate.
			set := lockSets[ev.fn]
			if len(set) == 0 {
				continue
			}
			targets := sortedKeys(set)
			for _, h := range held {
				if h.ident == "" {
					continue
				}
				for _, to := range targets {
					if to == h.ident {
						pass.Reportf(ev.pos, "%s locks %s, which is already held in %s (self-deadlock through the call)", ev.fn.Name(), h.ident, name)
						continue
					}
					edges = append(edges, lockEdge{from: h.ident, to: to, pos: ev.pos, via: ev.fn.Name()})
				}
			}
		}
	}
	for _, h := range held {
		if !h.deferred {
			pass.Reportf(h.pos, "%s.Lock() in %s has no Unlock on the fall-through path; pair it with a defer or unlock before every exit", h.key, name)
		}
	}
	return edges
}

// lockSetClosure computes, for every same-package function, the set of
// mutex identities it may acquire directly or through same-package calls.
func lockSetClosure(pkg *Package, decls map[*types.Func]*ast.FuncDecl, ordered []declEntry) map[*types.Func]map[string]bool {
	sets := make(map[*types.Func]map[string]bool, len(ordered))
	calls := make(map[*types.Func][]*types.Func, len(ordered))
	for _, d := range ordered {
		set := make(map[string]bool)
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ident, kind, _, ok := mutexCall(pkg, call); ok {
				if kind == evLock && ident != "" {
					set[ident] = true
				}
				return true
			}
			if callee := calleeFunc(pkg, call); callee != nil {
				if _, same := decls[callee]; same {
					calls[d.fn] = append(calls[d.fn], callee)
				}
			}
			return true
		})
		sets[d.fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, d := range ordered {
			for _, callee := range calls[d.fn] {
				for _, id := range sortedKeys(sets[callee]) {
					if !sets[d.fn][id] {
						sets[d.fn][id] = true
						changed = true
					}
				}
			}
		}
	}
	return sets
}

// reportLockCycles finds cycles in the package's acquisition-order graph
// and reports each distinct cycle once, at its lexicographically first
// edge.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	if len(edges) == 0 {
		return
	}
	adj := make(map[string]map[string]lockEdge)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]lockEdge)
		}
		if _, dup := adj[e.from][e.to]; !dup {
			adj[e.from][e.to] = e
		}
	}
	nodes := sortedKeys(adj)
	reported := make(map[string]bool)
	for _, start := range nodes {
		cycle := findCycle(adj, start)
		if cycle == nil {
			continue
		}
		key := canonicalCycle(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		first := adj[cycle[0]][cycle[1]]
		pass.Reportf(first.pos, "lock-order cycle (deadlock candidate): %s; acquire these mutexes in one global order", strings.Join(append(cycle, cycle[0]), " -> "))
	}
}

// findCycle returns a cycle reachable from start as [n0, n1, ... nk]
// (edge nk->n0 closes it), or nil.
func findCycle(adj map[string]map[string]lockEdge, start string) []string {
	var path []string
	onPath := make(map[string]int)
	visited := make(map[string]bool)
	var dfs func(n string) []string
	dfs = func(n string) []string {
		if i, ok := onPath[n]; ok {
			return append([]string(nil), path[i:]...)
		}
		if visited[n] {
			return nil
		}
		visited[n] = true
		onPath[n] = len(path)
		path = append(path, n)
		for _, t := range sortedKeys(adj[n]) {
			if c := dfs(t); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		delete(onPath, n)
		return nil
	}
	return dfs(start)
}

// canonicalCycle rotates the cycle to start at its smallest node so the
// same cycle found from different roots deduplicates.
func canonicalCycle(cycle []string) string {
	min := 0
	for i, n := range cycle {
		if n < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "->")
}
