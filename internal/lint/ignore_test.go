package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds the minimal Package the suppression machinery needs —
// parsed files with comments and a fileset; no type information.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return &Package{Path: "p", Name: "p", Fset: fset, Files: []*ast.File{f}}
}

func knownRules() map[string]bool {
	known := map[string]bool{badIgnoreRule: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// diag fabricates a finding at fixture.go:line for suppression tests.
func diag(rule string, line int) Diagnostic {
	return Diagnostic{File: "fixture.go", Line: line, Col: 1, Rule: rule, Message: "m"}
}

func TestIgnoreMissingReason(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nodeterminism
var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(igs) != 0 {
		t.Fatalf("reason-less ignore must suppress nothing, got %+v", igs)
	}
	if len(bad) != 1 || bad[0].Rule != badIgnoreRule || !strings.Contains(bad[0].Message, "missing a reason") {
		t.Fatalf("want one badignore about the missing reason, got %+v", bad)
	}
	if bad[0].Line != 3 {
		t.Fatalf("badignore reported at line %d, want 3", bad[0].Line)
	}
	if kept := suppress([]Diagnostic{diag("nodeterminism", 4)}, igs); len(kept) != 1 {
		t.Fatal("malformed ignore suppressed a finding")
	}
}

func TestIgnoreMissingEverything(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore
var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(igs) != 0 {
		t.Fatalf("empty ignore must suppress nothing, got %+v", igs)
	}
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "rule name and a reason") {
		t.Fatalf("want one badignore about the empty directive, got %+v", bad)
	}
}

func TestIgnoreUnknownRule(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nosuchrule the reason is sound but the rule is not
var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(igs) != 0 {
		t.Fatalf("unknown-rule ignore must suppress nothing, got %+v", igs)
	}
	if len(bad) != 1 || !strings.Contains(bad[0].Message, `unknown rule "nosuchrule"`) {
		t.Fatalf("want one badignore naming the unknown rule, got %+v", bad)
	}
}

func TestIgnoreMultiRule(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nodeterminism,nopanic one shared reason
var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(bad) != 0 {
		t.Fatalf("well-formed multi-rule ignore reported bad: %+v", bad)
	}
	if len(igs) != 1 || len(igs[0].rules) != 2 {
		t.Fatalf("want one ignore with two rules, got %+v", igs)
	}
	kept := suppress([]Diagnostic{
		diag("nodeterminism", 4),
		diag("nopanic", 4),
		diag("hotpathalloc", 4), // not named: must survive
	}, igs)
	if len(kept) != 1 || kept[0].Rule != "hotpathalloc" {
		t.Fatalf("multi-rule ignore kept %+v, want only the hotpathalloc finding", kept)
	}
}

func TestIgnoreMixedKnownUnknown(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nopanic,bogus reason text
var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(bad) != 1 || !strings.Contains(bad[0].Message, `unknown rule "bogus"`) {
		t.Fatalf("want badignore for the unknown half, got %+v", bad)
	}
	if len(igs) != 1 || len(igs[0].rules) != 1 || igs[0].rules[0] != "nopanic" {
		t.Fatalf("the known half must still apply, got %+v", igs)
	}
}

// TestIgnoreWrongLine pins the adjacency rule: an ignore suppresses its
// own line and the next one, nothing further.
func TestIgnoreWrongLine(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nodeterminism reason placed too far away
var gap = 0

var a = 1
`)
	igs, bad := parseIgnores(pkg, knownRules())
	if len(bad) != 0 {
		t.Fatalf("unexpected badignore: %+v", bad)
	}
	kept := suppress([]Diagnostic{diag("nodeterminism", 6)}, igs)
	if len(kept) != 1 {
		t.Fatal("ignore two lines above the finding must not suppress it")
	}
	if kept := suppress([]Diagnostic{diag("nodeterminism", 4)}, igs); len(kept) != 0 {
		t.Fatal("ignore directly above the finding must suppress it")
	}
}

func TestIgnoreSameLineTrailing(t *testing.T) {
	pkg := parseSrc(t, `package p

var a = 1 //lint:ignore nopanic trailing-comment form
`)
	igs, _ := parseIgnores(pkg, knownRules())
	if kept := suppress([]Diagnostic{diag("nopanic", 3)}, igs); len(kept) != 0 {
		t.Fatal("trailing same-line ignore must suppress the line's finding")
	}
}

func TestIgnoreRuleMismatch(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nopanic suppressing the wrong rule
var a = 1
`)
	igs, _ := parseIgnores(pkg, knownRules())
	if kept := suppress([]Diagnostic{diag("nodeterminism", 4)}, igs); len(kept) != 1 {
		t.Fatal("an ignore must only suppress the rules it names")
	}
}

// TestCheckReportsBadIgnores runs the full Check pipeline to confirm
// malformed ignores surface as findings (and therefore fail the build).
func TestCheckReportsBadIgnores(t *testing.T) {
	pkg := parseSrc(t, `package p

//lint:ignore nodeterminism
var a = 1
`)
	diags := Check([]*Package{pkg}, nil)
	if len(diags) != 1 || diags[0].Rule != badIgnoreRule {
		t.Fatalf("Check must surface the malformed ignore, got %+v", diags)
	}
}
