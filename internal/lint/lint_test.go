package lint_test

import (
	"testing"

	"distclk/internal/lint"
	"distclk/internal/lint/analyzertest"
)

func TestNoDeterminism(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nodeterminism", lint.NoDeterminism)
}

// TestNoDeterminismOutOfScope pins the scoping rule: without the
// //distlint:deterministic directive (or an internal/simnet / internal/report
// path) the analyzer must not fire at all.
func TestNoDeterminismOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nodeterminism_off", lint.NoDeterminism)
}

func TestHotPathAlloc(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/hotpathalloc", lint.HotPathAlloc)
}

func TestCtxHygiene(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/ctxhygiene", lint.CtxHygiene)
}

func TestNoPanic(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nopanic", lint.NoPanic)
}

func TestGoroLeak(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/goroleak", lint.GoroLeak)
}

// TestGoroLeakOutOfScope pins the scoping rule: package main may spawn
// process-lifetime goroutines without findings.
func TestGoroLeakOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/goroleak_off", lint.GoroLeak)
}

func TestLockSafety(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/locksafety", lint.LockSafety)
}

func TestLockSafetyOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/locksafety_off", lint.LockSafety)
}

func TestAtomicHygiene(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/atomichygiene", lint.AtomicHygiene)
}

func TestAtomicHygieneOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/atomichygiene_off", lint.AtomicHygiene)
}

func TestEventSync(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/eventsync", lint.EventSync)
}

// TestEventSyncOutOfScope pins the scoping rule: without the
// //distlint:events directive (or an internal/obs path) skewed kinds and
// counters are not findings.
func TestEventSyncOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/eventsync_off", lint.EventSync)
}

// TestRegistry pins the analyzer set and its stable order: the
// suppressions baseline, SARIF rule list, and DESIGN.md §8 all key off
// these names.
func TestRegistry(t *testing.T) {
	want := []string{
		"nodeterminism", "hotpathalloc", "ctxhygiene", "nopanic",
		"goroleak", "locksafety", "atomichygiene", "eventsync",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

// TestRepoIsClean runs every analyzer over the whole module, mirroring
// CI's `go run ./cmd/distlint ./...` gate so a violation fails plain
// `go test ./...` too. Skipped under -short: it type-checks the entire
// repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; covered by make lint")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, te)
		}
	}
	for _, d := range lint.Check(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
