package lint_test

import (
	"testing"

	"distclk/internal/lint"
	"distclk/internal/lint/analyzertest"
)

func TestNoDeterminism(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nodeterminism", lint.NoDeterminism)
}

// TestNoDeterminismOutOfScope pins the scoping rule: without the
// //distlint:deterministic directive (or an internal/simnet / internal/report
// path) the analyzer must not fire at all.
func TestNoDeterminismOutOfScope(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nodeterminism_off", lint.NoDeterminism)
}

func TestHotPathAlloc(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/hotpathalloc", lint.HotPathAlloc)
}

func TestCtxHygiene(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/ctxhygiene", lint.CtxHygiene)
}

func TestNoPanic(t *testing.T) {
	analyzertest.Run(t, "./testdata/src/nopanic", lint.NoPanic)
}

// TestRepoIsClean runs every analyzer over the whole module, mirroring
// CI's `go run ./cmd/distlint ./...` gate so a violation fails plain
// `go test ./...` too. Skipped under -short: it type-checks the entire
// repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; covered by make lint")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, te)
		}
	}
	for _, d := range lint.Check(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
