package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listErr
}

type listErr struct {
	Err string
}

// Load resolves the package patterns (e.g. "./...") from dir with the go
// command, then parses and type-checks every matched package from source.
// Dependencies are imported from the toolchain's export data, so a load
// costs one `go list -export` plus parsing only the target packages.
// Test files are not loaded: the invariants guard shipped code, and tests
// legitimately reach for wall clocks and panics.
//
// A package that fails to parse is a hard error. Type-check problems are
// soft: they accumulate in Package.TypeErrors and analyzers run on
// whatever was resolved, mirroring `go vet`'s tolerance so one broken
// dependency does not hide every other finding.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles) == 0 {
			if t.Error != nil && len(t.GoFiles) > 0 {
				return nil, fmt.Errorf("load %s: %s", t.ImportPath, t.Error.Err)
			}
			continue
		}
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %v", t.ImportPath, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path: t.ImportPath,
		Name: t.Name,
		Dir:  t.Dir,
		Fset: fset,
		Info: &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error duplicates the first entry of TypeErrors; the
	// collected slice is the complete record.
	pkg.Types, _ = conf.Check(t.ImportPath, fset, files, pkg.Info)
	pkg.Files = files
	return pkg, nil
}
