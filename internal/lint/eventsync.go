package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// EventSync guards the observability vocabulary across artifacts that the
// compiler cannot connect: the obs event-kind constants, their string
// names, the counter structs, and the markdown event tables. Skew here is
// silent — an undocumented kind ships, a counter is added but never
// snapshotted, a doc table describes events that no longer exist. The
// analyzer runs on internal/obs (or any package annotated
// //distlint:events) and checks:
//
//   - every Kind* constant has a non-empty entry in the kindNames array;
//   - every kind name appears in each markdown event table (a table whose
//     header's first column is `kind`) in the package's doc set — the
//     package directory's own README.md/DESIGN.md if present, else the
//     module root's;
//   - every backticked name in those tables is a live kind (stale rows);
//   - the Counters and CounterSnapshot structs agree field-for-field, and
//     the Snapshot() method copies every counter.
var EventSync = &Analyzer{
	Name: "eventsync",
	Doc:  "obs event kinds, counters, and the markdown event tables must agree (names, docs, snapshot coverage)",
	Run:  runEventSync,
}

func inEventSyncScope(pkg *Package) bool {
	return strings.HasSuffix(pkg.Path, "internal/obs") || pkg.HasDirective("events")
}

func runEventSync(pass *Pass) {
	pkg := pass.Pkg
	if !inEventSyncScope(pkg) {
		return
	}
	kinds, kindsPos := kindConstants(pkg)
	names, namesPos := kindNameEntries(pkg)
	if kinds != nil && names != nil {
		for i, k := range kinds {
			if i >= len(names) || names[i] == "" {
				pass.Reportf(kindsPos[i], "kind constant %s has no entry in the kindNames array; its String() would be empty or out of range", k)
			}
		}
		for i := len(kinds); i < len(names); i++ {
			pass.Reportf(namesPos, "kindNames has %d entries but only %d Kind constants; entry %q is orphaned", len(names), len(kinds), names[i])
		}
	}
	if names != nil {
		checkEventDocs(pass, pkg, names, namesPos)
	}
	checkCounterSync(pass, pkg)
}

// kindConstants returns the ordered Kind* constant names of the package's
// iota block (the unexported length sentinel is excluded).
func kindConstants(pkg *Package) ([]string, []token.Pos) {
	var kinds []string
	var poss []token.Pos
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Kind") {
						kinds = append(kinds, name.Name)
						poss = append(poss, name.Pos())
					}
				}
			}
		}
	}
	if len(kinds) == 0 {
		return nil, nil
	}
	return kinds, poss
}

// kindNameEntries returns the string elements of the kindNames composite
// literal and its position, or nil when the package has none.
func kindNameEntries(pkg *Package) ([]string, token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "kindNames" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					var names []string
					for _, elt := range lit.Elts {
						if bl, ok := elt.(*ast.BasicLit); ok && bl.Kind == token.STRING {
							names = append(names, strings.Trim(bl.Value, "`\""))
						}
					}
					return names, lit.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// checkEventDocs diffs the kind vocabulary against every markdown event
// table in the package's doc set.
func checkEventDocs(pass *Pass, pkg *Package, names []string, at token.Pos) {
	docs := eventDocFiles(pkg.Dir)
	if len(docs) == 0 {
		pass.Reportf(at, "no README.md/DESIGN.md found for the event-kind vocabulary; document the kinds in an event table")
		return
	}
	live := make(map[string]bool, len(names))
	for _, n := range names {
		live[n] = true
	}
	sawTable := false
	for _, doc := range docs {
		rows, err := parseEventTable(doc)
		if err != nil {
			pass.Reportf(at, "reading event table: %v", err)
			continue
		}
		if rows == nil {
			continue // this doc has no kind table
		}
		sawTable = true
		documented := make(map[string]bool)
		for _, row := range rows {
			for _, name := range row.kinds {
				documented[name] = true
				if !live[name] {
					pass.Reportf(at, "stale event-table row in %s:%d: %q is not a kind the package emits", filepath.Base(doc), row.line, name)
				}
			}
		}
		for _, n := range names {
			if n != "" && !documented[n] {
				pass.Reportf(at, "kind %q is missing from the event table in %s; add a row describing it", n, filepath.Base(doc))
			}
		}
	}
	if !sawTable {
		pass.Reportf(at, "no event table (header starting `| kind |`) found in %s; the kind vocabulary must be documented", strings.Join(baseNames(docs), ", "))
	}
}

// eventDocFiles resolves the doc set: README.md/DESIGN.md next to the
// package if present (fixtures), else at the module root.
func eventDocFiles(dir string) []string {
	local := docCandidates(dir)
	if len(local) > 0 {
		return local
	}
	root := dir
	for i := 0; i < 12; i++ {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			return docCandidates(root)
		}
		parent := filepath.Dir(root)
		if parent == root {
			break
		}
		root = parent
	}
	return nil
}

func docCandidates(dir string) []string {
	var out []string
	for _, name := range []string{"README.md", "DESIGN.md"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			out = append(out, p)
		}
	}
	return out
}

func baseNames(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = filepath.Base(p)
	}
	return out
}

type eventRow struct {
	line  int
	kinds []string // backticked names in the row's first cell
}

// parseEventTable extracts the rows of the first markdown table whose
// header's first cell is `kind`. It returns nil rows when the file has no
// such table.
func parseEventTable(path string) ([]eventRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", filepath.Base(path), err)
	}
	lines := strings.Split(string(data), "\n")
	var rows []eventRow
	inTable := false
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "|") {
			if inTable {
				break
			}
			continue
		}
		cells := splitTableRow(trimmed)
		if len(cells) == 0 {
			continue
		}
		first := strings.TrimSpace(cells[0])
		if !inTable {
			if first == "kind" {
				inTable = true
				rows = []eventRow{}
			}
			continue
		}
		if strings.HasPrefix(first, "---") || strings.HasPrefix(first, ":-") {
			continue // separator row
		}
		row := eventRow{line: i + 1, kinds: backticked(first)}
		if len(row.kinds) > 0 {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func splitTableRow(line string) []string {
	line = strings.Trim(line, "|")
	return strings.Split(line, "|")
}

// backticked returns the `quoted` tokens in s, in order.
func backticked(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '`')
		if start < 0 {
			return out
		}
		s = s[start+1:]
		end := strings.IndexByte(s, '`')
		if end < 0 {
			return out
		}
		out = append(out, s[:end])
		s = s[end+1:]
	}
}

// checkCounterSync verifies Counters ↔ CounterSnapshot ↔ Snapshot()
// agreement: every counter has a snapshot field and is copied by the
// Snapshot method; every snapshot field (beyond identity fields) has a
// counter behind it.
func checkCounterSync(pass *Pass, pkg *Package) {
	counters, countersPos := structFields(pkg, "Counters")
	snapshot, snapshotPos := structFields(pkg, "CounterSnapshot")
	if counters == nil || snapshot == nil {
		return // the package does not define the counter pair
	}
	snapSet := make(map[string]bool, len(snapshot))
	for _, f := range snapshot {
		snapSet[f] = true
	}
	counterSet := make(map[string]bool, len(counters))
	for _, f := range counters {
		counterSet[f] = true
	}
	for _, f := range counters {
		if !snapSet[f] {
			pass.Reportf(countersPos, "counter %s has no matching CounterSnapshot field; it can never be reported", f)
		}
	}
	identity := map[string]bool{"Node": true, "BestLength": true}
	for _, f := range snapshot {
		if !identity[f] && !counterSet[f] {
			pass.Reportf(snapshotPos, "snapshot field %s has no counter behind it; it serializes as a permanent zero", f)
		}
	}
	copied := snapshotCopiedFields(pkg)
	if copied == nil {
		return // no Snapshot() method to check
	}
	missing := make([]string, 0)
	for _, f := range counters {
		if !copied[f] {
			missing = append(missing, f)
		}
	}
	sort.Strings(missing)
	for _, f := range missing {
		pass.Reportf(countersPos, "counter %s is not copied in Snapshot(); its value is dropped from every report", f)
	}
}

// structFields returns the field names of the named struct type, or nil.
func structFields(pkg *Package, typeName string) ([]string, token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return nil, token.NoPos
				}
				var fields []string
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						fields = append(fields, name.Name)
					}
				}
				return fields, ts.Pos()
			}
		}
	}
	return nil, token.NoPos
}

// snapshotCopiedFields returns the CounterSnapshot composite-literal keys
// assigned inside the Snapshot method, or nil when no Snapshot method
// with a keyed literal exists.
func snapshotCopiedFields(pkg *Package) map[string]bool {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Snapshot" || fd.Body == nil || fd.Recv == nil {
				continue
			}
			// Keys merge across every CounterSnapshot literal in the
			// method: nil-receiver early returns build partial literals.
			var copied map[string]bool
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				id, ok := lit.Type.(*ast.Ident)
				if !ok || id.Name != "CounterSnapshot" {
					return true
				}
				if copied == nil {
					copied = make(map[string]bool)
				}
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							copied[key.Name] = true
						}
					}
				}
				return true
			})
			if copied != nil {
				return copied
			}
		}
	}
	return nil
}
