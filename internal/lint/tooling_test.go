package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distclk/internal/lint"
)

func TestFormatBaseline(t *testing.T) {
	sites := []lint.IgnoreSite{
		{File: "/repo/internal/dist/tcp.go", Line: 10, Rules: []string{"goroleak"}},
		{File: "/repo/internal/dist/tcp.go", Line: 40, Rules: []string{"goroleak", "locksafety"}},
		{File: "/repo/internal/clk/clk.go", Line: 5, Rules: []string{"nodeterminism"}},
	}
	got := lint.FormatBaseline(sites, "/repo")
	want := strings.Join([]string{
		"2 goroleak internal/dist/tcp.go",
		"1 locksafety internal/dist/tcp.go",
		"1 nodeterminism internal/clk/clk.go",
	}, "\n") + "\n"
	var body []string
	for _, line := range strings.Split(got, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body = append(body, line)
	}
	if b := strings.Join(body, "\n") + "\n"; b != want {
		t.Errorf("baseline body:\n%s\nwant:\n%s", b, want)
	}
}

func TestDiffBaseline(t *testing.T) {
	recorded := "1 goroleak internal/dist/tcp.go\n1 nopanic internal/geom/point.go\n"
	cases := []struct {
		name    string
		current string
		want    []string // substrings, one per expected drift line
	}{
		{"in sync", recorded, nil},
		{"comments ignored", "# header\n" + recorded, nil},
		{"new suppression", recorded + "1 locksafety internal/dist/tcp.go\n", []string{"new suppression not in baseline"}},
		{"stale entry", "1 goroleak internal/dist/tcp.go\n", []string{"stale baseline entry"}},
		{"count changed", "2 goroleak internal/dist/tcp.go\n1 nopanic internal/geom/point.go\n", []string{"baseline has 1, tree has 2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drift := lint.DiffBaseline(tc.current, recorded)
			if len(drift) != len(tc.want) {
				t.Fatalf("drift = %q, want %d line(s)", drift, len(tc.want))
			}
			for i, sub := range tc.want {
				if !strings.Contains(drift[i], sub) {
					t.Errorf("drift[%d] = %q, want substring %q", i, drift[i], sub)
				}
			}
		})
	}
}

func TestSARIF(t *testing.T) {
	diags := []lint.Diagnostic{
		{File: "/repo/internal/dist/tcp.go", Line: 12, Col: 3, Rule: "goroleak", Message: "goroutine has no visible lifetime bound"},
	}
	out, err := lint.SARIF(diags, lint.All(), "/repo")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %s, want 2.1.0", log.Version)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "distlint" {
		t.Errorf("driver = %s, want distlint", run.Tool.Driver.Name)
	}
	// every analyzer plus badignore appears in the rule list
	if want := len(lint.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	res := run.Results[0]
	if res.RuleID != "goroleak" || res.Level != "error" {
		t.Errorf("result = %s/%s, want goroleak/error", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/dist/tcp.go" {
		t.Errorf("uri = %s, want repo-relative internal/dist/tcp.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 {
		t.Errorf("startLine = %d, want 12", loc.Region.StartLine)
	}
}

func TestAuditIgnores(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/auditdead")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	dead := lint.AuditIgnores(pkgs, lint.All())
	if len(dead) != 1 {
		t.Fatalf("dead = %v, want exactly the one dead nopanic ignore", dead)
	}
	if dead[0].Rule != "nopanic" || !strings.Contains(dead[0].Reason, "no longer") && !strings.Contains(dead[0].Reason, "any more") {
		t.Errorf("dead[0] = %+v, want the quiet() nopanic ignore", dead[0])
	}
	if filepath.Base(dead[0].File) != "fixture.go" {
		t.Errorf("dead[0].File = %s, want fixture.go", dead[0].File)
	}
}

func TestFixIgnores(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := strings.Join([]string{
		"package f",
		"",
		"func a() {",
		"\t//lint:ignore goroleak dead standalone comment",
		"\tgo f()",
		"}",
		"",
		"func b() int {",
		"\treturn 1 //lint:ignore nopanic dead trailing comment",
		"}",
		"",
		"func c() {",
		"\t//lint:ignore goroleak,nopanic only goroleak is dead here",
		"\tgo f()",
		"}",
		"",
		"func f() {}",
		"",
	}, "\n")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	dead := []lint.DeadIgnore{
		{File: path, Line: 4, Rule: "goroleak"},
		{File: path, Line: 9, Rule: "nopanic"},
		{File: path, Line: 13, Rule: "goroleak"},
	}
	changed, err := lint.FixIgnores(dead)
	if err != nil {
		t.Fatalf("FixIgnores: %v", err)
	}
	if len(changed) != 1 || changed[0] != path {
		t.Fatalf("changed = %v, want [%s]", changed, path)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(got)
	if strings.Contains(text, "dead standalone comment") {
		t.Errorf("standalone dead ignore not deleted:\n%s", text)
	}
	if strings.Contains(text, "dead trailing comment") {
		t.Errorf("trailing dead ignore not stripped:\n%s", text)
	}
	if !strings.Contains(text, "\treturn 1\n") {
		t.Errorf("code before the trailing comment was lost:\n%s", text)
	}
	if !strings.Contains(text, "//lint:ignore nopanic only goroleak is dead here") {
		t.Errorf("partially dead ignore not rewritten to the surviving rule:\n%s", text)
	}
}

// TestSuppressionsBaselineIsCurrent mirrors CI's suppressions-budget
// gate: the committed lint/suppressions.txt must describe exactly the
// tree's //lint:ignore comments. Skipped under -short with the rest of
// the whole-module checks.
func TestSuppressionsBaselineIsCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; covered by make lint")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := os.ReadFile(filepath.Join(root, "lint", "suppressions.txt"))
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	current := lint.FormatBaseline(lint.Ignores(pkgs), root)
	for _, line := range lint.DiffBaseline(current, string(recorded)) {
		t.Errorf("suppressions baseline drift: %s", line)
	}
}
