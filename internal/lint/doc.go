// Package lint is a from-scratch, stdlib-only static-analysis framework
// (go/parser + go/ast + go/types; no golang.org/x/tools dependency) that
// machine-checks the invariants the reproduction depends on: seeded
// byte-identical replay (paper §3, CI's repro-smoke gate), the zero-alloc
// kick loop behind the throughput numbers (§2.1), context-driven
// cancellation, and panic-free library code.
//
// The framework loads packages via `go list -e -export -deps -json`,
// parses their non-test Go files, and type-checks them against the
// toolchain's export data, so analyzers see full type information without
// compiling anything themselves. Analyzers implement a single Run(*Pass)
// hook and report file:line:col diagnostics; cmd/distlint drives them and
// exits non-zero on findings.
//
// Analyzers:
//   - nodeterminism: forbids wall-clock reads (time.Now/Since/Sleep/...),
//     global math/rand draws, and map iteration in packages that declare a
//     determinism contract (internal/simnet, internal/report, or any
//     package whose doc.go carries a //distlint:deterministic directive).
//   - hotpathalloc: forbids fmt calls, make/new, closures, appends to
//     non-scratch (non-struct-field) slices, and interface conversions
//     inside functions annotated //distlint:hotpath.
//   - ctxhygiene: in internal/core, internal/dist and internal/clk (or
//     packages annotated //distlint:ctx), a context.Context parameter must
//     come first and context.Background()/TODO() are forbidden.
//   - nopanic: forbids panic in library (non-main) packages outside
//     must*/Must* invariant-violation helpers.
//
// Findings are suppressed one at a time with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: an ignore without one (or naming an unknown rule) is
// itself reported under the badignore rule.
//
// Invariants:
//   - Output is deterministic: diagnostics are sorted by file, line,
//     column and rule; nothing iterates a map.
//   - Analyzers are pure functions of the loaded package: no file writes,
//     no environment reads.
//
//distlint:deterministic
package lint
