package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak guards goroutine lifetimes in library packages: the paper's
// distributed CLK and the PR 8 solve service are long-lived processes, so
// a fire-and-forget `go` statement is a slow leak — every spawned
// goroutine must carry visible evidence that something bounds it. The
// analyzer accepts any of:
//
//   - the goroutine observes a context.Context (uses a ctx-typed value
//     anywhere in its body, or receives one as an argument),
//   - it blocks on a channel (receive, range, or select) — the idiomatic
//     done/stop-channel and closed-work-queue worker shapes,
//   - it participates in a sync.WaitGroup (calls Done, or blocks in Wait),
//   - or, for `go f(...)`, the same-package callee's body satisfies one of
//     the above.
//
// A goroutine bounded by something the analyzer cannot see (a listener
// whose Close unblocks Accept, a read deadline) is silenced with a
// reasoned //lint:ignore — the reason documents the actual bound.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in library packages must observe a ctx, a channel, or a WaitGroup (or carry a reasoned ignore)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return
	}
	decls := funcDecls(pkg)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goBounded(pkg, decls, g.Call, make(map[*ast.FuncDecl]bool)) {
				pass.Reportf(g.Pos(), "goroutine has no visible lifetime bound: make it observe a context, a done/stop channel, or a waited sync.WaitGroup (or document the bound in a //lint:ignore reason)")
			}
			return true
		})
	}
}

// funcDecls maps each package-level function/method object to its
// declaration so callee bodies can be inspected interprocedurally.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// goBounded reports whether the spawned call shows lifetime-bound
// evidence: a bounding argument, a bounded function-literal body, or a
// same-package callee whose body is bounded.
func goBounded(pkg *Package, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, visited map[*ast.FuncDecl]bool) bool {
	for _, arg := range call.Args {
		if isBoundingType(pkg.TypeOf(arg)) {
			return true
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyBounded(pkg, decls, lit.Body, visited)
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		if fd, ok := decls[fn]; ok {
			if visited[fd] {
				return false
			}
			visited[fd] = true
			return bodyBounded(pkg, decls, fd.Body, visited)
		}
	}
	return false
}

// bodyBounded scans a function body for lifetime-bound evidence. Calls to
// same-package functions are followed (cycle-safe), so a goroutine whose
// loop delegates its blocking to a helper still passes.
func bodyBounded(pkg *Package, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[*ast.FuncDecl]bool) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isContextType(pkg.TypeOf(n)) {
				bounded = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				bounded = true
			}
		case *ast.RangeStmt:
			if t := pkg.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					bounded = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
					name := fn.Name()
					if (name == "Done" || name == "Wait") && isWaitGroupRecv(fn) {
						bounded = true
						return false
					}
					if fd, ok := decls[fn]; ok && !visited[fd] {
						visited[fd] = true
						if bodyBounded(pkg, decls, fd.Body, visited) {
							bounded = true
						}
					}
				}
			} else if id, ok := n.Fun.(*ast.Ident); ok {
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					if fd, ok := decls[fn]; ok && !visited[fd] {
						visited[fd] = true
						if bodyBounded(pkg, decls, fd.Body, visited) {
							bounded = true
						}
					}
				}
			}
		}
		return !bounded
	})
	return bounded
}

// isBoundingType reports whether an argument of type t hands the goroutine
// a lifetime signal: a context, a channel, or a WaitGroup pointer.
func isBoundingType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isWaitGroupType(u.Elem())
	}
	return false
}

func isWaitGroupType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isWaitGroupRecv reports whether fn is a method on sync.WaitGroup.
func isWaitGroupRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isWaitGroupType(t)
}

// calleeFunc resolves `go f(...)` / `go x.m(...)` to the called function
// object (package function or method), or nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
