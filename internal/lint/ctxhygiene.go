package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxHygiene guards the context-driven cancellation redesign (PR 1): in
// the packages that thread cancellation end-to-end (internal/core,
// internal/dist, internal/clk, or any package annotated //distlint:ctx) a
// context.Context parameter must come first, and library code must not
// mint its own root context with context.Background()/TODO() — that
// detaches the subtree from the caller's cancellation and deadlines.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "context.Context first in the signature; no context.Background()/TODO() outside main and tests",
	Run:  runCtxHygiene,
}

var ctxPathSuffixes = []string{"internal/core", "internal/dist", "internal/clk"}

func inCtxScope(pkg *Package) bool {
	if pkg.Name == "main" {
		return false
	}
	for _, s := range ctxPathSuffixes {
		if strings.HasSuffix(pkg.Path, s) {
			return true
		}
	}
	return pkg.HasDirective("ctx")
}

func runCtxHygiene(pass *Pass) {
	pkg := pass.Pkg
	if !inCtxScope(pkg) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkCtxFirst(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleePkgFunc(pkg, call)
			if fn == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() in library code detaches cancellation; accept a ctx parameter and pass it down", fn.Name())
			}
			return true
		})
	}
}

// checkCtxFirst reports a context.Context parameter anywhere but position
// zero (the receiver does not count).
func checkCtxFirst(pass *Pass, fd *ast.FuncDecl) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if isContextType(pass.Pkg.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		idx += width
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
