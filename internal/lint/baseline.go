package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// The suppressions baseline is the committed ledger of every
// //lint:ignore in the tree, counted per (file, rule). CI regenerates it
// from the source and diffs against the committed copy, so a new ignore
// cannot land silently: the author must touch lint/suppressions.txt in
// the same change, which puts the growth in front of a reviewer.
//
// The format is one `<count> <rule> <file>` line per (file, rule) pair,
// sorted, with `#` comments ignored:
//
//	2 goroleak internal/dist/tcp.go
//	1 locksafety internal/dist/tcp.go

// FormatBaseline renders the suppression sites as baseline text. Paths
// are made relative to root.
func FormatBaseline(sites []IgnoreSite, root string) string {
	counts := make(map[string]int)
	for _, s := range sites {
		for _, r := range s.Rules {
			counts[r+" "+relPath(root, s.File)]++
		}
	}
	var b strings.Builder
	b.WriteString("# distlint suppressions baseline: one `<count> <rule> <file>` line per suppressed rule.\n")
	b.WriteString("# Regenerate with `go run ./cmd/distlint -write-baseline lint/suppressions.txt ./...`.\n")
	for _, key := range sortedKeys(counts) {
		fmt.Fprintf(&b, "%d %s\n", counts[key], key)
	}
	return b.String()
}

// DiffBaseline compares the baseline generated from the current tree
// against the committed one and returns one human-readable line per
// mismatch (empty means in sync). Both unexplained growth and stale
// entries fail: the baseline must describe exactly the tree.
func DiffBaseline(current, recorded string) []string {
	cur := parseBaseline(current)
	rec := parseBaseline(recorded)
	keys := make(map[string]bool, len(cur)+len(rec))
	for _, k := range sortedKeys(cur) {
		keys[k] = true
	}
	for _, k := range sortedKeys(rec) {
		keys[k] = true
	}
	var out []string
	for _, k := range sortedKeys(keys) {
		c, r := cur[k], rec[k]
		switch {
		case c == r:
		case r == 0:
			out = append(out, fmt.Sprintf("new suppression not in baseline: %d × %s", c, k))
		case c == 0:
			out = append(out, fmt.Sprintf("stale baseline entry (no such suppression in the tree): %s", k))
		default:
			out = append(out, fmt.Sprintf("suppression count changed for %s: baseline has %d, tree has %d", k, r, c))
		}
	}
	return out
}

// parseBaseline reads `<count> <rule> <file>` lines into a map keyed
// "rule file". Blank lines and # comments are skipped; malformed lines
// are kept as impossible keys so they surface in the diff.
func parseBaseline(text string) map[string]int {
	out := make(map[string]int)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			out["<malformed line> "+line] = -1
			continue
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			out["<malformed line> "+line] = -1
			continue
		}
		out[fields[1]+" "+fields[2]] += n
	}
	return out
}
