// Package fixture carries one live and one dead suppression for the
// ignore-audit tests: the first still has a panic behind it, the second
// suppresses a rule that no longer fires on its line.
package fixture

func lib() {
	//lint:ignore nopanic deliberate invariant crash kept for the audit test
	panic("boom")
}

func quiet() int {
	//lint:ignore nopanic nothing panics here any more
	return 1
}
