// Package fixture exercises the atomichygiene analyzer: a field touched
// via sync/atomic must never be accessed plainly, and atomic wrapper
// values must never be copied.
package fixture

import "sync/atomic"

type counter struct {
	n    int64
	hits atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) good() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) bad() int64 {
	c.n = 4    // want `atomichygiene: field n is accessed via sync/atomic elsewhere but written plainly here`
	c.n++      // want `atomichygiene: field n is accessed via sync/atomic elsewhere but written plainly here`
	return c.n // want `atomichygiene: field n is accessed via sync/atomic elsewhere but read plainly here`
}

func (c *counter) copyWrapper() atomic.Int64 {
	return c.hits // want `atomichygiene: atomic value hits is copied`
}

func (c *counter) useWrapper() int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

func takesPtr(v *atomic.Int64) {
	v.Add(1)
}

func (c *counter) byAddress() {
	takesPtr(&c.hits)
}
