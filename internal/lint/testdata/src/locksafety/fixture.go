// Package fixture exercises the locksafety analyzer: Lock/Unlock
// pairing, blocking operations under a held mutex, and the
// interprocedural lock-acquisition-order graph.
package fixture

import (
	"io"
	"sync"
)

type box struct {
	mu sync.Mutex
	n  int
}

func lockTwice(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want `locksafety: b\.mu is locked twice without an intervening unlock in lockTwice`
	b.mu.Unlock()
}

func returnsHeld(b *box) int {
	b.mu.Lock()
	if b.n > 0 {
		return b.n // want `locksafety: return in returnsHeld while b\.mu is held with no defer`
	}
	b.mu.Unlock()
	return 0
}

func neverUnlocks(b *box) {
	b.mu.Lock() // want `locksafety: b\.mu\.Lock\(\) in neverUnlocks has no Unlock on the fall-through path`
	b.n++
}

func sendHeld(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- b.n // want `locksafety: channel send while holding b\.mu in sendHeld`
}

func writeHeld(b *box, w io.Writer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w.Write(nil) // want `locksafety: network write while holding b\.mu in writeHeld`
}

// tryNotify is the sanctioned shape: a select with a default case never
// blocks, so holding the lock across it is fine.
func tryNotify(b *box, ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case ch <- b.n:
	default:
	}
}

// deferred is the canonical clean pairing.
func deferred(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// rlocked pins the RLock/RUnlock family pairing.
func rlocked(b *box, mu *sync.RWMutex) int {
	mu.RLock()
	defer mu.RUnlock()
	return b.n
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `locksafety: lock-order cycle \(deadlock candidate\): pair\.a -> pair\.b -> pair\.a`
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

func (p *pair) lockA() {
	p.a.Lock()
	defer p.a.Unlock()
}

func callsWhileHeld(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockA() // want `locksafety: lockA locks pair\.a, which is already held in callsWhileHeld`
}
