// Package main is out of atomichygiene scope, so the mixed access below
// is not a finding.
package main

import "sync/atomic"

var n int64

func main() {
	atomic.AddInt64(&n, 1)
	n++
}
