// Package fixture exercises the ctxhygiene analyzer; the directive below
// stands in for living under internal/core, internal/dist or internal/clk.
//
//distlint:ctx
package fixture

import "context"

type server struct{}

func First(ctx context.Context, n int) {}

func NoCtx(a, b int) {}

func Second(n int, ctx context.Context) {} // want `ctxhygiene: context\.Context must be the first parameter of Second`

func (s *server) MethodSecond(name string, ctx context.Context) {} // want `ctxhygiene: context\.Context must be the first parameter of MethodSecond`

func unexportedSecond(n int, ctx context.Context) {} // want `ctxhygiene: context\.Context must be the first parameter of unexportedSecond`

func Mint() context.Context {
	return context.Background() // want `ctxhygiene: context\.Background\(\) in library code`
}

func MintTODO() context.Context {
	return context.TODO() // want `ctxhygiene: context\.TODO\(\) in library code`
}

// PassThrough is the sanctioned shape: ctx first, derived — not minted.
func PassThrough(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
