// Package main is out of locksafety scope: short-lived binaries are not
// held to library lock discipline, so nothing below is a finding.
package main

import "sync"

var mu sync.Mutex

func main() {
	mu.Lock()
	ch := make(chan int, 1)
	ch <- 1
}
