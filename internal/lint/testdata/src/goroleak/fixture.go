// Package fixture exercises the goroleak analyzer: every go statement in
// a library package must show a visible lifetime bound — a context, a
// channel, or a waited WaitGroup.
package fixture

import (
	"context"
	"sync"
)

func leaky() {
	go func() { // want `goroleak: goroutine has no visible lifetime bound`
		for {
		}
	}()
}

func spawnsUnbounded() {
	go spin() // want `goroleak: goroutine has no visible lifetime bound`
}

func spin() {
	for {
	}
}

func ctxBody(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func ctxArg(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) {
	<-ctx.Done()
}

func stopChan(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

func waited(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

type node struct {
	stop chan struct{}
}

// start's goroutine is bounded through the same-package callee: loop
// ranges over the stop channel.
func (n *node) start() {
	go n.loop()
}

func (n *node) loop() {
	for range n.stop {
	}
}

// listener's bound (a Close that fails the accept) is invisible to the
// analyzer; the reasoned ignore is the sanctioned escape hatch.
func listener() {
	//lint:ignore goroleak bounded by the listener: Close unblocks the accept and the loop returns
	go accept()
}

func accept() {
	for {
	}
}
