// Package main is out of goroleak scope: a binary may spawn
// process-lifetime goroutines freely, so nothing below is a finding.
package main

func main() {
	go func() {
		for {
		}
	}()
	go spin()
}

func spin() {
	for {
	}
}
