// Package fixture exercises the nodeterminism analyzer: the directive
// below opts it into the determinism contract.
//
//distlint:deterministic
package fixture

import (
	"math/rand"
	"time"
)

func Clock() time.Time {
	return time.Now() // want `nodeterminism: time\.Now reads the wall clock`
}

func Sleepy() {
	time.Sleep(time.Millisecond) // want `nodeterminism: time\.Sleep`
}

func Lag(t0 time.Time) time.Duration {
	return time.Since(t0) // want `nodeterminism: time\.Since`
}

func Timer() {
	<-time.After(time.Second) // want `nodeterminism: time\.After`
}

func GlobalDraw() int {
	return rand.Intn(10) // want `nodeterminism: global rand\.Intn`
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `nodeterminism: global rand\.Shuffle`
}

// SeededDraw is the sanctioned pattern: rand.New/NewSource build a seeded
// generator, and method draws on it are deterministic.
func SeededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func MapOrder(m map[string]int) string {
	out := ""
	for k := range m { // want `nodeterminism: map iteration order`
		out += k
	}
	return out
}

// SliceOrder iterates a slice: deterministic, no finding.
func SliceOrder(xs []string) string {
	out := ""
	for _, x := range xs {
		out += x
	}
	return out
}

// SuppressedMapOrder shows a reasoned suppression surviving lint.Check.
func SuppressedMapOrder(m map[string]int) int {
	sum := 0
	//lint:ignore nodeterminism summing is commutative; order cannot reach the output
	for _, v := range m {
		sum += v
	}
	return sum
}

// ConstantsOK: referencing time types and constants is fine; only the
// wall-clock reads are flagged.
func ConstantsOK() time.Duration {
	return 3 * time.Millisecond
}
