// Package fixture exercises the hotpathalloc analyzer. Only functions
// annotated //distlint:hotpath are checked; Cold below proves the scoping.
package fixture

import "fmt"

type solver struct {
	scratch []int32
	sink    fmt.Stringer
}

type city int32

func (c city) String() string { return "city" }

func consume(s fmt.Stringer) {}

func consumeMany(prefix string, vs ...any) {}

//distlint:hotpath
func (s *solver) Hot(xs []int32, n int) {
	s.scratch = append(s.scratch, xs...)    // scratch field: allowed
	s.scratch = append(s.scratch[:0], 1, 2) // resliced scratch field: allowed
	var local []int32
	local = append(local, xs...) // want `hotpathalloc: append onto a non-scratch slice`
	_ = local
	buf := make([]int32, n) // want `hotpathalloc: make in hot path`
	_ = buf
	p := new(solver) // want `hotpathalloc: new in hot path`
	_ = p
}

//distlint:hotpath
func (s *solver) HotFmt(n int) {
	fmt.Println(n) // want `hotpathalloc: fmt\.Println in hot path`
}

//distlint:hotpath
func (s *solver) HotClosure(xs []int32) int32 {
	f := func() int32 { return xs[0] } // want `hotpathalloc: closure literal in hot path`
	return f()
}

//distlint:hotpath
func (s *solver) HotBox(c city) {
	consume(c)          // want `hotpathalloc: passing city as interface fmt\.Stringer`
	consume(s.sink)     // interface-typed value: no box, allowed
	_ = fmt.Stringer(c) // want `hotpathalloc: conversion to interface fmt\.Stringer`
	consumeMany("x", c) // want `hotpathalloc: passing city as interface any`
	consumeMany("y")    // no variadic args: allowed
	_ = int64(c)        // concrete-to-concrete conversion: allowed
	s.suppressed(c)     // helper is annotated itself; call is fine
}

//distlint:hotpath
func (s *solver) suppressed(c city) {
	//lint:ignore hotpathalloc boxing here is once per Close kick, outside the per-dive loop
	consume(c)
}

// Cold has no annotation: the same constructs draw no findings.
func Cold(n int) []int32 {
	buf := make([]int32, n)
	fmt.Println(n)
	f := func() int { return n }
	_ = f
	return buf
}
