// Package fixture has no determinism contract — no //distlint:deterministic
// directive and no implicit path — so nodeterminism must stay silent even
// over wall clocks, global rand and map iteration.
package fixture

import (
	"math/rand"
	"time"
)

func Clock() time.Time { return time.Now() }

func GlobalDraw() int { return rand.Intn(10) }

func MapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
