// Package fixture is out of eventsync scope: no //distlint:events
// directive and not internal/obs, so the skew below is not a finding.
package fixture

type Kind uint8

const (
	KindStart Kind = iota
	KindLost
)

var kindNames = [...]string{"start"}

type Counters struct {
	Started int64
}

type CounterSnapshot struct {
	Ghost int64
}
