package fixture

import "sync/atomic"

// Kind is the fixture's event vocabulary. KindOrphan deliberately has no
// kindNames entry; the README's table documents a kind that no longer
// exists (`gone`) and omits `stop`.
type Kind uint8

const (
	KindStart Kind = iota
	KindStop
	KindOrphan // want `eventsync: kind constant KindOrphan has no entry in the kindNames array`
)

var kindNames = [...]string{ // want `eventsync: stale event-table row in README\.md:\d+: "gone" is not a kind the package emits` `eventsync: kind "stop" is missing from the event table in README\.md`
	"start",
	"stop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Counters: Orphaned has no snapshot field, and Dropped is never copied
// by Snapshot.
type Counters struct { // want `eventsync: counter Orphaned has no matching CounterSnapshot field` `eventsync: counter Dropped is not copied in Snapshot\(\)` `eventsync: counter Orphaned is not copied in Snapshot\(\)`
	Started  atomic.Int64
	Dropped  atomic.Int64
	Orphaned atomic.Int64
}

// CounterSnapshot: Ghost has no counter behind it. Node is an identity
// field and exempt.
type CounterSnapshot struct { // want `eventsync: snapshot field Ghost has no counter behind it`
	Node    int
	Started int64
	Dropped int64
	Ghost   int64
}

func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{Node: -1}
	}
	return CounterSnapshot{
		Node:    0,
		Started: c.Started.Load(),
	}
}
