// Package fixture exercises the eventsync analyzer: the directive below
// opts it into the event-vocabulary contract normally carried by
// internal/obs.
//
//distlint:events
package fixture
