// Package fixture exercises the nopanic analyzer: library code must not
// panic outside must*/Must* invariant-violation helpers.
package fixture

import "errors"

func Lib() error {
	if true {
		panic("boom") // want `nopanic: panic in library code`
	}
	return nil
}

func nested() {
	f := func() {
		panic("in closure") // want `nopanic: panic in library code`
	}
	f()
}

// mustValidate is an invariant-violation helper: allowed.
func mustValidate(err error) {
	if err != nil {
		panic(err)
	}
}

// MustParse is the exported flavour of the same convention: allowed.
func MustParse(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}

// Errors travel as values everywhere else.
func Checked(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

// Suppressed shows the escape hatch for a deliberate library panic.
func Suppressed() {
	//lint:ignore nopanic closed-enum default arm; a new variant must extend the switch
	panic("unreachable")
}
