// Package simnet is a deterministic, fault-injecting network simulator
// for the distributed EA (it stands in for the paper's eight-machine
// cluster, §3.1, and powers the smoke-tier reproduction in
// internal/report). It is the third transport next to dist.ChanNetwork
// and the TCP path: Network hands out the same core.Comm surface, but the
// whole cluster runs on a seeded discrete-event scheduler with a virtual
// clock — per-link latency distributions, probabilistic loss, duplication,
// reordering, bandwidth-proportional delivery delay, scripted partitions
// that heal, and node crash/restart churn, every draw taken from one
// rand.Source.
//
// Invariants:
//   - Replay: a (topology, fault schedule, seed) triple replays
//     byte-identically — same event log, same result. CI's repro-smoke
//     gate and the §3 experiments depend on this.
//   - Single-threaded by design: only Run's event loop may touch a
//     Network, so there are no locks and no interleavings.
//   - Faults surface through internal/obs (msg-dropped, msg-delivered,
//     partition-start, node-crash, ...) and are tallied in FaultStats;
//     nothing is silently lost.
//
//distlint:deterministic
package simnet
