package simnet

import (
	"context"
	"math/rand"
	"time"

	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// faultSeedSalt decorrelates the network's fault stream from the per-node
// search seeds (which are Seed + i*1e9+7, matching dist.RunCluster).
const faultSeedSalt = 0x5137_CAFE

// Config describes one simulated cluster run.
type Config struct {
	// Nodes is the virtual cluster size (default 8, the paper's).
	Nodes int
	// Topo is the overlay topology.
	Topo topology.Kind
	// EA configures each node's evolutionary loop.
	EA core.Config
	// Budget bounds each node (Target / MaxIterations); virtual wall time
	// is bounded separately by VirtualTime.
	Budget core.Budget
	// NodeIterations, when non-nil, overrides Budget.MaxIterations per node
	// (entries <= 0 keep the shared budget) — heterogeneous lifetimes.
	NodeIterations []int64
	// VirtualTime stops every node once the virtual clock passes it
	// (0 = unbounded; then Budget or Target must terminate the run).
	VirtualTime time.Duration
	// Seed drives everything: per-node search seeds and the fault stream.
	// Same (instance, Config) ⇒ byte-identical event log.
	Seed int64
	// Link is the fault model applied to every overlay edge.
	Link Link
	// Exchange selects the wire protocol (tour-diff broadcast, queued
	// message coalescing, gossip peer sampling). The zero value is the
	// legacy full-tour protocol, which replays existing runs
	// byte-identically — delta mode consumes the same fault stream but
	// different bandwidth delays, so enabling it changes virtual
	// timelines by design.
	Exchange dist.ExchangeConfig
	// InboxCapacity bounds each node's queue (default 1024, matching
	// dist.InboxCapacity); overflow drops are counted and evented.
	InboxCapacity int
	// Partitions and Crashes are the scripted fault schedule.
	Partitions []Partition
	Crashes    []Crash
	// StepCost is the virtual CPU cost charged per EA iteration (default
	// 100ms). Real CPU time is not measured — a deterministic cost model is
	// what makes replays exact.
	StepCost time.Duration
	// SpeedFactors scales StepCost per node (heterogeneous hardware);
	// entries <= 0 mean 1.0.
	SpeedFactors []float64
	// Obs, when set, supplies the observer — it must stamp with this run's
	// clock, so normally leave it nil and let Run build a virtual one.
	Obs *obs.Observer
}

// Result aggregates a simulated run; it mirrors dist.ClusterResult plus the
// fault ledger and virtual-clock readings.
type Result struct {
	BestTour   tsp.Tour
	BestLength int64
	Stats      []core.Stats
	// Events is the merged event stream, stamped with virtual time and
	// byte-identical across replays of the same (instance, Config).
	Events   []obs.Event
	Counters []obs.CounterSnapshot
	// Faults is the network's tally of everything it did to traffic.
	Faults FaultStats
	// VirtualElapsed is the virtual clock when the simulation ended.
	VirtualElapsed time.Duration
	// TargetReachedAt is the virtual time of the first optimum
	// announcement (0 = target never reached).
	TargetReachedAt time.Duration
	// Nodes echoes the configured node count.
	Nodes int
}

// Broadcasts sums node broadcast counts.
func (r Result) Broadcasts() int64 {
	var total int64
	for _, s := range r.Stats {
		total += s.Broadcasts
	}
	return total
}

// Iterations sums EA iterations across nodes.
func (r Result) Iterations() int64 {
	var total int64
	for _, s := range r.Stats {
		total += s.Iterations
	}
	return total
}

// Run executes the distributed algorithm on the simulated network and
// returns the aggregated result. Every node is stepped one EA iteration at
// a time by the discrete-event loop — a single goroutine — with message
// deliveries, partitions and crashes interleaved at their virtual times.
// ctx is a real-time escape hatch (cancellation aborts mid-run and makes
// the replay guarantee void); determinism assumes ctx never fires.
func Run(ctx context.Context, inst *tsp.Instance, cfg Config) Result {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.StepCost <= 0 {
		cfg.StepCost = 100 * time.Millisecond
	}
	if cfg.InboxCapacity <= 0 {
		cfg.InboxCapacity = 1024
	}
	// Candidate lists are shared across nodes, as in dist.RunCluster.
	if cfg.EA.CLK.Neighbors == nil {
		k := cfg.EA.CLK.NeighborK
		if k == 0 {
			k = clk.DefaultParams().NeighborK
		}
		cfg.EA.CLK.Neighbors = neighbor.Build(inst, k)
	}

	sched := &scheduler{}
	observer := cfg.Obs
	if observer == nil {
		observer = obs.NewVirtualObserver(cfg.Nodes, nil, sched.Now)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + faultSeedSalt))
	nw := newNetwork(cfg.Nodes, cfg.Topo, cfg.Link, cfg.InboxCapacity, cfg.Exchange, sched, rng, observer)

	nodes := make([]*core.Node, cfg.Nodes)
	stats := make([]core.Stats, cfg.Nodes)
	finished := make([]bool, cfg.Nodes)
	// gen guards against double-stepping: a crash invalidates the pending
	// step chain (generation bump); restart starts a fresh chain.
	gen := make([]int, cfg.Nodes)

	stepCost := func(i int) time.Duration {
		// Each in-node worker charges one StepCost share: a 4-worker node
		// burns virtual time 4x faster, keeping virtual-second budgets
		// comparable across EA.Workers settings. (Replay determinism still
		// requires EA.Workers <= 1 — see core.Config.Workers.)
		d := cfg.StepCost * time.Duration(nodes[i].CostFactor())
		if i < len(cfg.SpeedFactors) && cfg.SpeedFactors[i] > 0 {
			d = time.Duration(float64(d) * cfg.SpeedFactors[i])
		}
		if d <= 0 {
			d = 1
		}
		return d
	}
	finish := func(i int) {
		if !finished[i] {
			finished[i] = true
			stats[i] = nodes[i].Finish()
		}
	}
	var step func(i, g int)
	step = func(i, g int) {
		if finished[i] || nw.crashed[i] || gen[i] != g {
			return
		}
		if cfg.VirtualTime > 0 && sched.now >= cfg.VirtualTime {
			finish(i)
			return
		}
		if !nodes[i].Step(ctx) {
			finish(i)
			return
		}
		sched.after(stepCost(i), func() { step(i, g) })
	}

	for i := 0; i < cfg.Nodes; i++ {
		seed := cfg.Seed + int64(i)*1_000_000_007
		node := core.NewNode(i, inst, cfg.EA, nw.Comm(i), seed)
		node.SetRecorder(observer.Recorder(i))
		nodes[i] = node
		b := cfg.Budget
		if i < len(cfg.NodeIterations) && cfg.NodeIterations[i] > 0 {
			b.MaxIterations = cfg.NodeIterations[i]
		}
		i, b := i, b
		sched.schedule(0, func() {
			nodes[i].Begin(ctx, b)
			sched.after(stepCost(i), func() { step(i, gen[i]) })
		})
	}
	for _, p := range cfg.Partitions {
		p := p
		sched.schedule(p.At, func() { nw.applyPartition(p) })
		if p.Heal > p.At {
			sched.schedule(p.Heal, func() { nw.healPartition() })
		}
	}
	for _, c := range cfg.Crashes {
		c := c
		if c.Node < 0 || c.Node >= cfg.Nodes {
			continue
		}
		sched.schedule(c.At, func() {
			if nw.crashed[c.Node] || finished[c.Node] {
				return
			}
			gen[c.Node]++
			nw.crash(c.Node)
		})
		if c.Restart > c.At {
			sched.schedule(c.Restart, func() {
				if !nw.crashed[c.Node] || finished[c.Node] {
					return
				}
				nw.restart(c.Node, c.Fresh)
				if c.Fresh {
					nodes[c.Node].CrashRecover()
				}
				sched.after(stepCost(c.Node), func() { step(c.Node, gen[c.Node]) })
			})
		}
	}

	// Run until the queue drains: nodes stop rescheduling once their budget
	// is spent, and in-flight deliveries land so the fault ledger balances
	// (every sent copy is eventually delivered or accounted as dropped).
	sched.run(func() bool { return ctx.Err() != nil })
	// Crashed-forever nodes and early aborts still owe their final stats.
	for i := range nodes {
		finish(i)
	}

	res := Result{
		Stats:           stats,
		Events:          observer.Events(),
		Counters:        observer.Counters(),
		Faults:          nw.stats,
		VirtualElapsed:  sched.now,
		TargetReachedAt: nw.stoppedAt,
		Nodes:           cfg.Nodes,
	}
	for _, n := range nodes {
		tour, l := n.Best()
		if res.BestTour == nil || l < res.BestLength {
			res.BestTour, res.BestLength = tour, l
		}
	}
	return res
}
