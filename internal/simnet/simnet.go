package simnet

import (
	"math"
	"math/rand"
	"time"

	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// LatencyKind selects a per-message latency distribution.
type LatencyKind int

const (
	// LatencyFixed delivers every message after exactly Base.
	LatencyFixed LatencyKind = iota
	// LatencyUniform draws uniformly from [Base, Base+Spread).
	LatencyUniform
	// LatencyLognormal draws Base·exp(σ·N(0,1)) — median Base with the
	// heavy right tail measured on real WANs.
	LatencyLognormal
)

// Latency is a samplable one-way link delay.
type Latency struct {
	Kind   LatencyKind
	Base   time.Duration // fixed value / uniform lower bound / lognormal median
	Spread time.Duration // uniform width (ignored otherwise)
	Sigma  float64       // lognormal shape; <= 0 means 0.5
}

func (l Latency) sample(rng *rand.Rand) time.Duration {
	switch l.Kind {
	case LatencyUniform:
		if l.Spread <= 0 {
			return l.Base
		}
		return l.Base + time.Duration(rng.Int63n(int64(l.Spread)))
	case LatencyLognormal:
		sigma := l.Sigma
		if sigma <= 0 {
			sigma = 0.5
		}
		return time.Duration(float64(l.Base) * math.Exp(rng.NormFloat64()*sigma))
	default:
		return l.Base
	}
}

// Link is the fault model applied to every directed overlay edge.
type Link struct {
	// Latency delays each delivery.
	Latency Latency
	// DropProb loses each copy independently.
	DropProb float64
	// DupProb delivers a second copy of the frame.
	DupProb float64
	// ReorderProb adds a second latency sample to a message, letting later
	// sends overtake it even under near-fixed latency.
	ReorderProb float64
	// Bandwidth, in bytes per virtual second, adds a transfer delay
	// proportional to the encoded payload — 16 header + 4 bytes/city for
	// the legacy protocol, the actual WireTour size (segment diffs are
	// far smaller) under delta exchange. 0 = infinite.
	Bandwidth int64
}

// Partition isolates node groups from each other during [At, Heal):
// messages crossing a group boundary are dropped at send time. Nodes not
// listed in Groups form one implicit extra group. Heal <= At means the
// partition never heals.
type Partition struct {
	At, Heal time.Duration
	Groups   [][]int
}

// Crash stops a node at At: it stops stepping, its queued inbox is lost,
// and traffic to it is dropped. Restart > At revives it then; Fresh makes
// it come back with reconstructed search state (a real process restart)
// instead of resuming from its checkpoint.
type Crash struct {
	Node    int
	At      time.Duration
	Restart time.Duration
	Fresh   bool
}

// FaultStats tallies what the simulated network did to traffic. The
// distributed EA is designed to tolerate loss, so honest counters — not
// silent drops — are the whole point.
type FaultStats struct {
	Sent             int64 `json:"sent"`
	Delivered        int64 `json:"delivered"`
	Duplicated       int64 `json:"duplicated"`
	Reordered        int64 `json:"reordered"`
	DroppedLink      int64 `json:"dropped_link"`
	DroppedPartition int64 `json:"dropped_partition"`
	DroppedCrash     int64 `json:"dropped_crash"`
	DroppedInbox     int64 `json:"dropped_inbox"`

	// Delta-exchange ledger (zero unless Config.Exchange.Delta is on).
	// FullTours/DeltaTours count what senders encoded; WireBytes is the
	// payload total the bandwidth model charged; DeltaGaps counts
	// delivered deltas discarded for a base-generation mismatch (loss,
	// reorder, dup, or restart upstream); Coalesced counts queued tours
	// merged away before drain. DeltaMismatches counts reconstructions
	// that differed from the sender's tour — the always-on full-tour
	// oracle; any non-zero value is a wire-protocol bug.
	FullTours       int64 `json:"full_tours,omitempty"`
	DeltaTours      int64 `json:"delta_tours,omitempty"`
	WireBytes       int64 `json:"wire_bytes,omitempty"`
	DeltaGaps       int64 `json:"delta_gaps,omitempty"`
	Coalesced       int64 `json:"coalesced,omitempty"`
	DeltaMismatches int64 `json:"delta_mismatches,omitempty"`
}

// Drops sums every drop class.
func (f FaultStats) Drops() int64 {
	return f.DroppedLink + f.DroppedPartition + f.DroppedCrash + f.DroppedInbox
}

// Network is the virtual-time transport. It satisfies dist.Network
// structurally (Comm + Drops) but must only be touched from Run's event
// loop — it is deliberately lock-free and single-threaded.
type Network struct {
	n    int
	topo topology.Kind
	link Link
	cap  int
	ex   dist.ExchangeConfig

	sched *scheduler
	rng   *rand.Rand
	obs   *obs.Observer

	inboxes     [][]core.Incoming
	crashed     []bool
	partitioned bool
	groupOf     []int

	// Delta-protocol codec state: encs[sender][peer] and
	// decs[receiver][sender]. Maps are key-accessed only (never ranged),
	// and a crash clears the crashed node's whole row — its
	// reconstruction state and its send streams die with the process, so
	// it resumes with full tours on restart.
	encs []map[int]*dist.DeltaEncoder
	decs []map[int]*dist.DeltaDecoder

	stopped   bool
	stoppedAt time.Duration

	stats FaultStats
}

func newNetwork(n int, topo topology.Kind, link Link, capacity int, ex dist.ExchangeConfig, sched *scheduler, rng *rand.Rand, o *obs.Observer) *Network {
	nw := &Network{
		n:       n,
		topo:    topo,
		link:    link,
		cap:     capacity,
		ex:      ex,
		sched:   sched,
		rng:     rng,
		obs:     o,
		inboxes: make([][]core.Incoming, n),
		crashed: make([]bool, n),
		groupOf: make([]int, n),
	}
	if ex.Delta {
		nw.encs = make([]map[int]*dist.DeltaEncoder, n)
		nw.decs = make([]map[int]*dist.DeltaDecoder, n)
	}
	return nw
}

// Comm returns node id's view of the network.
func (nw *Network) Comm(id int) core.Comm {
	return &comm{nw: nw, id: id, neighbors: topology.Neighbors(nw.topo, nw.n, id)}
}

func (nw *Network) encoder(from, to int) *dist.DeltaEncoder {
	if nw.encs[from] == nil {
		nw.encs[from] = make(map[int]*dist.DeltaEncoder, 4)
	}
	e := nw.encs[from][to]
	if e == nil {
		e = &dist.DeltaEncoder{}
		nw.encs[from][to] = e
	}
	return e
}

func (nw *Network) decoder(to, from int) *dist.DeltaDecoder {
	if nw.decs[to] == nil {
		nw.decs[to] = make(map[int]*dist.DeltaDecoder, 4)
	}
	d := nw.decs[to][from]
	if d == nil {
		d = &dist.DeltaDecoder{}
		nw.decs[to][from] = d
	}
	return d
}

// Drops reports how many tours were discarded in transit, all causes.
func (nw *Network) Drops() int64 { return nw.stats.Drops() }

// Stats returns the fault tallies so far.
func (nw *Network) Stats() FaultStats { return nw.stats }

// wireMsg is one in-flight delta-protocol frame: the encoded form plus
// the sender's actual tour at encode time, kept as the reconstruction
// oracle (decoded tours are compared against it; any mismatch is a
// protocol bug and lands in FaultStats.DeltaMismatches).
type wireMsg struct {
	from   int
	length int64
	wire   dist.WireTour
	oracle tsp.Tour // shared read-only across peers of one broadcast
}

// send pushes one copy of the tour onto the from→to edge, applying the
// fault model in a fixed draw order (partition, loss, latency, bandwidth,
// reorder) so replays consume the rand stream identically. w is non-nil
// under delta exchange; bandwidth then charges the encoded wire size.
func (nw *Network) send(from, to int, t tsp.Tour, length int64, w *dist.WireTour, oracle tsp.Tour) {
	if nw.partitioned && nw.groupOf[from] != nw.groupOf[to] {
		nw.stats.DroppedPartition++
		nw.obs.Recorder(to).MsgDropped(length, from)
		return
	}
	if nw.link.DropProb > 0 && nw.rng.Float64() < nw.link.DropProb {
		nw.stats.DroppedLink++
		nw.obs.Recorder(to).MsgDropped(length, from)
		return
	}
	delay := nw.link.Latency.sample(nw.rng)
	if nw.link.Bandwidth > 0 {
		bytes := int64(16 + 4*len(t))
		if w != nil {
			bytes = int64(w.WireBytes())
		}
		delay += time.Duration(bytes * int64(time.Second) / nw.link.Bandwidth)
	}
	if nw.link.ReorderProb > 0 && nw.rng.Float64() < nw.link.ReorderProb {
		delay += nw.link.Latency.sample(nw.rng)
		nw.stats.Reordered++
	}
	if w != nil {
		msg := wireMsg{from: from, length: length, wire: *w, oracle: oracle}
		nw.sched.after(delay, func() { nw.deliverWire(to, msg) })
		return
	}
	msg := core.Incoming{From: from, Tour: t.Clone(), Length: length}
	nw.sched.after(delay, func() { nw.deliver(to, msg) })
}

// deliver lands a legacy full-tour message at its (possibly meanwhile
// crashed or congested) destination.
func (nw *Network) deliver(to int, msg core.Incoming) {
	switch {
	case nw.crashed[to]:
		nw.stats.DroppedCrash++
		nw.obs.Recorder(to).MsgDropped(msg.Length, msg.From)
	case nw.ex.Coalesce && nw.coalesce(to, msg):
	case len(nw.inboxes[to]) >= nw.cap:
		nw.stats.DroppedInbox++
		nw.obs.Recorder(to).MsgDropped(msg.Length, msg.From)
	default:
		nw.inboxes[to] = append(nw.inboxes[to], msg)
		nw.stats.Delivered++
		nw.obs.Recorder(to).MsgDelivered(msg.Length, msg.From)
	}
}

// deliverWire lands a delta-protocol frame: the receiver's stream state
// decodes it (mirroring a TCP node's readLoop, which decodes before the
// inbox bound applies), then coalescing and the capacity bound run on
// the reconstructed tour.
func (nw *Network) deliverWire(to int, msg wireMsg) {
	if nw.crashed[to] {
		nw.stats.DroppedCrash++
		nw.obs.Recorder(to).MsgDropped(msg.length, msg.from)
		return
	}
	tour, ok := nw.decoder(to, msg.from).Decode(msg.wire)
	if !ok {
		// The link delivered the frame; the protocol discarded it
		// (base-generation gap after loss/reorder/dup/restart upstream).
		nw.stats.Delivered++
		nw.stats.DeltaGaps++
		nw.obs.Recorder(to).DeltaGap(msg.from)
		return
	}
	if !sameTour(tour, msg.oracle) {
		nw.stats.DeltaMismatches++
	}
	in := core.Incoming{From: msg.from, Tour: tour, Length: msg.length}
	switch {
	case nw.ex.Coalesce && nw.coalesce(to, in):
	case len(nw.inboxes[to]) >= nw.cap:
		nw.stats.DroppedInbox++
		nw.obs.Recorder(to).MsgDropped(in.Length, in.From)
	default:
		nw.inboxes[to] = append(nw.inboxes[to], in)
		nw.stats.Delivered++
		nw.obs.Recorder(to).MsgDelivered(in.Length, in.From)
	}
}

// coalesce merges msg into an already-queued message from the same
// sender, keeping the better tour. It reports whether a merge happened.
func (nw *Network) coalesce(to int, msg core.Incoming) bool {
	box := nw.inboxes[to]
	for i := range box {
		if box[i].From != msg.From {
			continue
		}
		if msg.Length < box[i].Length {
			box[i] = msg
		}
		nw.stats.Delivered++
		nw.stats.Coalesced++
		nw.obs.Recorder(to).MsgDelivered(msg.Length, msg.From)
		nw.obs.Recorder(to).CoalescedMsg(box[i].Length, msg.From)
		return true
	}
	return false
}

// sameTour reports whether a and b are the same cycle as the wire codec
// transmits it: both normalized to start at city 0, in either traversal
// orientation (the encoder picks whichever orientation diffs smaller).
func sameTour(a, b tsp.Tour) bool {
	n := len(a)
	if n != len(b) {
		return false
	}
	fwd := true
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			fwd = false
			break
		}
	}
	if fwd {
		return true
	}
	if n < 2 || a[0] != b[0] {
		return false
	}
	for i := 1; i < n; i++ {
		if a[i] != b[n-i] {
			return false
		}
	}
	return true
}

// applyPartition activates a scripted split. Listed groups get ids 1..k;
// everyone else shares group 0.
func (nw *Network) applyPartition(p Partition) {
	nw.partitioned = true
	for i := range nw.groupOf {
		nw.groupOf[i] = 0
	}
	groups := 1
	for g, nodes := range p.Groups {
		for _, id := range nodes {
			if id >= 0 && id < nw.n {
				nw.groupOf[id] = g + 1
			}
		}
		groups++
	}
	nw.obs.Record(obs.KindPartitionStart, -1, int64(groups), -1)
}

func (nw *Network) healPartition() {
	nw.partitioned = false
	nw.obs.Record(obs.KindPartitionHeal, -1, 0, -1)
}

// crash kills a node: pending inbox lost, future traffic dropped, and
// its delta-protocol state (reconstruction bases and send streams) dies
// with the process — after a restart it sends full tours again, and its
// peers' deltas gap until their next keyframe.
func (nw *Network) crash(id int) {
	nw.crashed[id] = true
	nw.inboxes[id] = nil
	if nw.ex.Delta {
		nw.encs[id] = nil
		nw.decs[id] = nil
	}
	nw.obs.Record(obs.KindNodeCrash, id, 0, -1)
}

func (nw *Network) restart(id int, fresh bool) {
	nw.crashed[id] = false
	v := int64(0)
	if fresh {
		v = 1
	}
	nw.obs.Record(obs.KindNodeRestart, id, v, -1)
}

// comm is one node's endpoint.
type comm struct {
	nw        *Network
	id        int
	neighbors []int
	scratch   []int // gossip sample reuse; event loop is single-threaded
}

// Broadcast sends a copy of the tour toward every topology neighbour —
// or a gossip sample of the whole cluster — running each copy through
// the link fault model. Under delta exchange each peer stream encodes
// its own diff; a duplicated frame is the same WireTour twice (the
// second copy gaps at the decoder, as on a real wire).
func (c *comm) Broadcast(t tsp.Tour, length int64) {
	nw := c.nw
	peers := c.neighbors
	if nw.ex.Gossip {
		c.scratch = dist.SamplePeers(nw.rng, nw.n, c.id, nw.ex.GossipFanout(), c.scratch)
		peers = c.scratch
	}
	var oracle tsp.Tour
	if nw.ex.Delta {
		// The codec transmits the canonical form, so the reconstruction
		// oracle is the canonical form too (same cycle, same length).
		oracle = t.Canonical()
	}
	for _, o := range peers {
		nw.stats.Sent++
		var w *dist.WireTour
		if nw.ex.Delta {
			wt := nw.encoder(c.id, o).Encode(c.id, t, length, nw.ex.Keyframe())
			w = &wt
			bytes := int64(wt.WireBytes())
			nw.stats.WireBytes += bytes
			if wt.Full {
				nw.stats.FullTours++
				nw.obs.Recorder(c.id).FullSent(bytes, o)
			} else {
				nw.stats.DeltaTours++
				nw.obs.Recorder(c.id).DeltaSent(bytes, o)
			}
		}
		copies := 1
		if nw.link.DupProb > 0 && nw.rng.Float64() < nw.link.DupProb {
			copies = 2
			nw.stats.Duplicated++
			nw.obs.Recorder(o).MsgDuplicated(length, c.id)
		}
		for k := 0; k < copies; k++ {
			nw.send(c.id, o, t, length, w, oracle)
		}
	}
}

// Drain empties the node's inbox.
func (c *comm) Drain() []core.Incoming {
	out := c.nw.inboxes[c.id]
	c.nw.inboxes[c.id] = nil
	return out
}

// AnnounceOptimum stops the whole network (the paper's criterion (2)). The
// virtual timestamp of the first announcement is the run's time-to-target.
func (c *comm) AnnounceOptimum(int64) {
	if !c.nw.stopped {
		c.nw.stopped = true
		c.nw.stoppedAt = c.nw.sched.now
	}
}

// Stopped reports whether any node announced the optimum.
func (c *comm) Stopped() bool { return c.nw.stopped }
