package simnet

import (
	"math"
	"math/rand"
	"time"

	"distclk/internal/core"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// LatencyKind selects a per-message latency distribution.
type LatencyKind int

const (
	// LatencyFixed delivers every message after exactly Base.
	LatencyFixed LatencyKind = iota
	// LatencyUniform draws uniformly from [Base, Base+Spread).
	LatencyUniform
	// LatencyLognormal draws Base·exp(σ·N(0,1)) — median Base with the
	// heavy right tail measured on real WANs.
	LatencyLognormal
)

// Latency is a samplable one-way link delay.
type Latency struct {
	Kind   LatencyKind
	Base   time.Duration // fixed value / uniform lower bound / lognormal median
	Spread time.Duration // uniform width (ignored otherwise)
	Sigma  float64       // lognormal shape; <= 0 means 0.5
}

func (l Latency) sample(rng *rand.Rand) time.Duration {
	switch l.Kind {
	case LatencyUniform:
		if l.Spread <= 0 {
			return l.Base
		}
		return l.Base + time.Duration(rng.Int63n(int64(l.Spread)))
	case LatencyLognormal:
		sigma := l.Sigma
		if sigma <= 0 {
			sigma = 0.5
		}
		return time.Duration(float64(l.Base) * math.Exp(rng.NormFloat64()*sigma))
	default:
		return l.Base
	}
}

// Link is the fault model applied to every directed overlay edge.
type Link struct {
	// Latency delays each delivery.
	Latency Latency
	// DropProb loses each copy independently.
	DropProb float64
	// DupProb delivers a second copy of the frame.
	DupProb float64
	// ReorderProb adds a second latency sample to a message, letting later
	// sends overtake it even under near-fixed latency.
	ReorderProb float64
	// Bandwidth, in bytes per virtual second, adds a transfer delay
	// proportional to the tour payload (16 header + 4 bytes/city, the TCP
	// frame shape). 0 = infinite.
	Bandwidth int64
}

// Partition isolates node groups from each other during [At, Heal):
// messages crossing a group boundary are dropped at send time. Nodes not
// listed in Groups form one implicit extra group. Heal <= At means the
// partition never heals.
type Partition struct {
	At, Heal time.Duration
	Groups   [][]int
}

// Crash stops a node at At: it stops stepping, its queued inbox is lost,
// and traffic to it is dropped. Restart > At revives it then; Fresh makes
// it come back with reconstructed search state (a real process restart)
// instead of resuming from its checkpoint.
type Crash struct {
	Node    int
	At      time.Duration
	Restart time.Duration
	Fresh   bool
}

// FaultStats tallies what the simulated network did to traffic. The
// distributed EA is designed to tolerate loss, so honest counters — not
// silent drops — are the whole point.
type FaultStats struct {
	Sent             int64 `json:"sent"`
	Delivered        int64 `json:"delivered"`
	Duplicated       int64 `json:"duplicated"`
	Reordered        int64 `json:"reordered"`
	DroppedLink      int64 `json:"dropped_link"`
	DroppedPartition int64 `json:"dropped_partition"`
	DroppedCrash     int64 `json:"dropped_crash"`
	DroppedInbox     int64 `json:"dropped_inbox"`
}

// Drops sums every drop class.
func (f FaultStats) Drops() int64 {
	return f.DroppedLink + f.DroppedPartition + f.DroppedCrash + f.DroppedInbox
}

// Network is the virtual-time transport. It satisfies dist.Network
// structurally (Comm + Drops) but must only be touched from Run's event
// loop — it is deliberately lock-free and single-threaded.
type Network struct {
	n    int
	topo topology.Kind
	link Link
	cap  int

	sched *scheduler
	rng   *rand.Rand
	obs   *obs.Observer

	inboxes     [][]core.Incoming
	crashed     []bool
	partitioned bool
	groupOf     []int

	stopped   bool
	stoppedAt time.Duration

	stats FaultStats
}

func newNetwork(n int, topo topology.Kind, link Link, capacity int, sched *scheduler, rng *rand.Rand, o *obs.Observer) *Network {
	return &Network{
		n:       n,
		topo:    topo,
		link:    link,
		cap:     capacity,
		sched:   sched,
		rng:     rng,
		obs:     o,
		inboxes: make([][]core.Incoming, n),
		crashed: make([]bool, n),
		groupOf: make([]int, n),
	}
}

// Comm returns node id's view of the network.
func (nw *Network) Comm(id int) core.Comm {
	return &comm{nw: nw, id: id, neighbors: topology.Neighbors(nw.topo, nw.n, id)}
}

// Drops reports how many tours were discarded in transit, all causes.
func (nw *Network) Drops() int64 { return nw.stats.Drops() }

// Stats returns the fault tallies so far.
func (nw *Network) Stats() FaultStats { return nw.stats }

// send pushes one copy of the tour onto the from→to edge, applying the
// fault model in a fixed draw order (partition, loss, latency, bandwidth,
// reorder) so replays consume the rand stream identically.
func (nw *Network) send(from, to int, t tsp.Tour, length int64) {
	if nw.partitioned && nw.groupOf[from] != nw.groupOf[to] {
		nw.stats.DroppedPartition++
		nw.obs.Recorder(to).MsgDropped(length, from)
		return
	}
	if nw.link.DropProb > 0 && nw.rng.Float64() < nw.link.DropProb {
		nw.stats.DroppedLink++
		nw.obs.Recorder(to).MsgDropped(length, from)
		return
	}
	delay := nw.link.Latency.sample(nw.rng)
	if nw.link.Bandwidth > 0 {
		bytes := int64(16 + 4*len(t))
		delay += time.Duration(bytes * int64(time.Second) / nw.link.Bandwidth)
	}
	if nw.link.ReorderProb > 0 && nw.rng.Float64() < nw.link.ReorderProb {
		delay += nw.link.Latency.sample(nw.rng)
		nw.stats.Reordered++
	}
	msg := core.Incoming{From: from, Tour: t.Clone(), Length: length}
	nw.sched.after(delay, func() { nw.deliver(to, msg) })
}

// deliver lands a message at its (possibly meanwhile crashed or congested)
// destination.
func (nw *Network) deliver(to int, msg core.Incoming) {
	switch {
	case nw.crashed[to]:
		nw.stats.DroppedCrash++
		nw.obs.Recorder(to).MsgDropped(msg.Length, msg.From)
	case len(nw.inboxes[to]) >= nw.cap:
		nw.stats.DroppedInbox++
		nw.obs.Recorder(to).MsgDropped(msg.Length, msg.From)
	default:
		nw.inboxes[to] = append(nw.inboxes[to], msg)
		nw.stats.Delivered++
		nw.obs.Recorder(to).MsgDelivered(msg.Length, msg.From)
	}
}

// applyPartition activates a scripted split. Listed groups get ids 1..k;
// everyone else shares group 0.
func (nw *Network) applyPartition(p Partition) {
	nw.partitioned = true
	for i := range nw.groupOf {
		nw.groupOf[i] = 0
	}
	groups := 1
	for g, nodes := range p.Groups {
		for _, id := range nodes {
			if id >= 0 && id < nw.n {
				nw.groupOf[id] = g + 1
			}
		}
		groups++
	}
	nw.obs.Record(obs.KindPartitionStart, -1, int64(groups), -1)
}

func (nw *Network) healPartition() {
	nw.partitioned = false
	nw.obs.Record(obs.KindPartitionHeal, -1, 0, -1)
}

// crash kills a node: pending inbox lost, future traffic dropped.
func (nw *Network) crash(id int) {
	nw.crashed[id] = true
	nw.inboxes[id] = nil
	nw.obs.Record(obs.KindNodeCrash, id, 0, -1)
}

func (nw *Network) restart(id int, fresh bool) {
	nw.crashed[id] = false
	v := int64(0)
	if fresh {
		v = 1
	}
	nw.obs.Record(obs.KindNodeRestart, id, v, -1)
}

// comm is one node's endpoint.
type comm struct {
	nw        *Network
	id        int
	neighbors []int
}

// Broadcast sends a copy of the tour toward every topology neighbour,
// running each copy through the link fault model.
func (c *comm) Broadcast(t tsp.Tour, length int64) {
	nw := c.nw
	for _, o := range c.neighbors {
		nw.stats.Sent++
		copies := 1
		if nw.link.DupProb > 0 && nw.rng.Float64() < nw.link.DupProb {
			copies = 2
			nw.stats.Duplicated++
			nw.obs.Recorder(o).MsgDuplicated(length, c.id)
		}
		for k := 0; k < copies; k++ {
			nw.send(c.id, o, t, length)
		}
	}
}

// Drain empties the node's inbox.
func (c *comm) Drain() []core.Incoming {
	out := c.nw.inboxes[c.id]
	c.nw.inboxes[c.id] = nil
	return out
}

// AnnounceOptimum stops the whole network (the paper's criterion (2)). The
// virtual timestamp of the first announcement is the run's time-to-target.
func (c *comm) AnnounceOptimum(int64) {
	if !c.nw.stopped {
		c.nw.stopped = true
		c.nw.stoppedAt = c.nw.sched.now
	}
}

// Stopped reports whether any node announced the optimum.
func (c *comm) Stopped() bool { return c.nw.stopped }
