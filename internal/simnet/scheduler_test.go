package simnet

import (
	"testing"
	"time"
)

// The heap must order by virtual time, then by insertion sequence — FIFO
// among ties is what makes replays exact.
func TestSchedulerOrdering(t *testing.T) {
	s := &scheduler{}
	var got []int
	s.schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.schedule(10*time.Millisecond, func() { got = append(got, 2) }) // tie: after 1
	s.schedule(20*time.Millisecond, func() {
		got = append(got, 4)
		// Nested scheduling in the past is clamped to now, not dropped.
		s.schedule(5*time.Millisecond, func() { got = append(got, 5) })
	})
	s.run(nil)

	want := []int{1, 2, 4, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := &scheduler{}
	n := 0
	for i := 0; i < 10; i++ {
		s.schedule(time.Duration(i)*time.Millisecond, func() { n++ })
	}
	s.run(func() bool { return n >= 3 })
	if n != 3 {
		t.Fatalf("executed %d events past the stop condition, want 3", n)
	}
}

func TestLatencySampling(t *testing.T) {
	rng := newTestRNG()
	fixed := Latency{Kind: LatencyFixed, Base: 7 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if d := fixed.sample(rng); d != 7*time.Millisecond {
			t.Fatalf("fixed latency = %v, want 7ms", d)
		}
	}
	uni := Latency{Kind: LatencyUniform, Base: 5 * time.Millisecond, Spread: 10 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := uni.sample(rng)
		if d < 5*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("uniform latency %v outside [5ms, 15ms)", d)
		}
	}
	logn := Latency{Kind: LatencyLognormal, Base: 5 * time.Millisecond, Sigma: 0.5}
	var above int
	for i := 0; i < 1000; i++ {
		d := logn.sample(rng)
		if d <= 0 {
			t.Fatalf("lognormal latency %v not positive", d)
		}
		if d > 5*time.Millisecond {
			above++
		}
	}
	// Base is the median; both tails must be populated.
	if above < 300 || above > 700 {
		t.Fatalf("lognormal: %d/1000 samples above the median, want ~500", above)
	}
}
