package simnet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/exact"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// The simulator must be swappable for the channel/TCP transports.
var _ dist.Network = (*Network)(nil)

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func testConfig(nodes int) Config {
	ea := core.DefaultConfig()
	ea.KicksPerCall = 5 // cheap EA iterations; the network is under test here
	return Config{
		Nodes:  nodes,
		Topo:   topology.Hypercube,
		EA:     ea,
		Budget: core.Budget{MaxIterations: 6},
		Seed:   42,
	}
}

// chaosLink exercises every fault class and rand draw in one schedule.
func chaosLink() Link {
	return Link{
		Latency:     Latency{Kind: LatencyLognormal, Base: 20 * time.Millisecond, Sigma: 0.7},
		DropProb:    0.15,
		DupProb:     0.10,
		ReorderProb: 0.20,
		Bandwidth:   1 << 20, // 1 MiB/s: payload-proportional delay
	}
}

// marshalLog renders the event stream the way `-trace` would: one JSON line
// per event, in order. Byte-identical logs are the determinism contract.
func marshalLog(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode event: %v", err)
		}
	}
	return buf.Bytes()
}

// Same (instance, Config) ⇒ byte-identical event log, fault tallies, and
// result — the acceptance criterion for the whole subsystem.
func TestDeterministicReplay(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 80, 27)
	cfg := testConfig(8)
	cfg.Budget.MaxIterations = 8
	cfg.Link = chaosLink()
	cfg.Partitions = []Partition{{
		At:     200 * time.Millisecond,
		Heal:   450 * time.Millisecond,
		Groups: [][]int{{0, 1, 2, 3}},
	}}
	cfg.Crashes = []Crash{
		{Node: 5, At: 150 * time.Millisecond, Restart: 400 * time.Millisecond, Fresh: true},
		{Node: 2, At: 300 * time.Millisecond}, // never restarts
	}
	cfg.SpeedFactors = []float64{1, 1.5, 1, 2, 1, 1, 0.5, 1}

	a := Run(context.Background(), in, cfg)
	b := Run(context.Background(), in, cfg)

	logA, logB := marshalLog(t, a.Events), marshalLog(t, b.Events)
	if len(logA) == 0 {
		t.Fatal("run produced no events")
	}
	if !bytes.Equal(logA, logB) {
		t.Fatalf("event logs differ between replays:\n--- run A (%d bytes)\n%.2000s\n--- run B (%d bytes)\n%.2000s",
			len(logA), logA, len(logB), logB)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault stats differ: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.BestLength != b.BestLength || a.VirtualElapsed != b.VirtualElapsed {
		t.Fatalf("results differ: best %d/%d elapsed %v/%v",
			a.BestLength, b.BestLength, a.VirtualElapsed, b.VirtualElapsed)
	}
	if len(a.BestTour) != len(b.BestTour) {
		t.Fatal("best tours differ between replays")
	}
	for i := range a.BestTour {
		if a.BestTour[i] != b.BestTour[i] {
			t.Fatal("best tours differ between replays")
		}
	}
}

// A different seed must actually change the run — otherwise the replay test
// proves nothing.
func TestSeedChangesOutcome(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 80, 27)
	cfg := testConfig(4)
	cfg.Link = chaosLink()
	a := Run(context.Background(), in, cfg)
	cfg.Seed = 43
	b := Run(context.Background(), in, cfg)
	if bytes.Equal(marshalLog(t, a.Events), marshalLog(t, b.Events)) {
		t.Fatal("different seeds produced identical event logs")
	}
}

// The cluster must still find the known optimum through a lossy, reordering
// network — the paper's core robustness claim.
func TestConvergesUnderFaults(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 14, 21)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatalf("HeldKarp: %v", err)
	}
	cfg := testConfig(4)
	cfg.Budget = core.Budget{Target: optLen, MaxIterations: 400}
	cfg.Link = chaosLink()
	res := Run(context.Background(), in, cfg)
	if res.BestLength != optLen {
		t.Fatalf("best length %d, want optimum %d", res.BestLength, optLen)
	}
	if res.TargetReachedAt <= 0 {
		t.Fatal("optimum reached but TargetReachedAt not stamped")
	}
	if res.TargetReachedAt > res.VirtualElapsed {
		t.Fatalf("TargetReachedAt %v after end of run %v", res.TargetReachedAt, res.VirtualElapsed)
	}
}

func countKind(events []obs.Event, k obs.Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestPartitionDropsAndHeals(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(4)
	cfg.Budget.MaxIterations = 12
	// Split {0,1} | {2,3} for most of the run, then heal.
	cfg.Partitions = []Partition{{
		At:     50 * time.Millisecond,
		Heal:   900 * time.Millisecond,
		Groups: [][]int{{0, 1}, {2, 3}},
	}}
	res := Run(context.Background(), in, cfg)
	if res.Faults.DroppedPartition == 0 {
		t.Fatal("no messages dropped at the partition boundary")
	}
	if got := countKind(res.Events, obs.KindPartitionStart); got != 1 {
		t.Fatalf("partition-start events = %d, want 1", got)
	}
	if got := countKind(res.Events, obs.KindPartitionHeal); got != 1 {
		t.Fatalf("partition-heal events = %d, want 1", got)
	}
	if res.Faults.Delivered == 0 {
		t.Fatal("nothing delivered despite healed partition")
	}
}

func TestCrashRestartChurn(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(4)
	cfg.Budget.MaxIterations = 15
	cfg.Link.Latency = Latency{Kind: LatencyFixed, Base: 40 * time.Millisecond}
	cfg.Crashes = []Crash{
		{Node: 1, At: 250 * time.Millisecond, Restart: 700 * time.Millisecond, Fresh: true},
		{Node: 3, At: 300 * time.Millisecond}, // permanent
	}
	res := Run(context.Background(), in, cfg)

	if got := countKind(res.Events, obs.KindNodeCrash); got != 2 {
		t.Fatalf("node-crash events = %d, want 2", got)
	}
	if got := countKind(res.Events, obs.KindNodeRestart); got != 1 {
		t.Fatalf("node-restart events = %d, want 1", got)
	}
	if res.Stats[1].Restarts == 0 {
		t.Fatal("fresh restart did not count as a search restart on node 1")
	}
	// Node 3 died mid-run: it must have stepped less than the survivors.
	if res.Stats[3].Iterations >= res.Stats[0].Iterations {
		t.Fatalf("permanently crashed node iterated %d >= survivor's %d",
			res.Stats[3].Iterations, res.Stats[0].Iterations)
	}
	if res.Faults.DroppedCrash == 0 {
		t.Fatal("no traffic dropped at the crashed nodes")
	}
	// Node 1 kept stepping after its fresh restart.
	if res.Stats[1].Iterations == 0 {
		t.Fatal("restarted node never iterated")
	}
}

func TestDuplicationAndReordering(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(4)
	cfg.Budget.MaxIterations = 12
	cfg.Link = Link{
		Latency:     Latency{Kind: LatencyUniform, Base: 5 * time.Millisecond, Spread: 30 * time.Millisecond},
		DupProb:     0.5,
		ReorderProb: 0.5,
	}
	res := Run(context.Background(), in, cfg)
	if res.Faults.Duplicated == 0 {
		t.Fatal("DupProb=0.5 produced no duplicates")
	}
	if res.Faults.Reordered == 0 {
		t.Fatal("ReorderProb=0.5 produced no reordered messages")
	}
	// Duplicates traverse the link individually, so deliveries can exceed
	// logical sends; at minimum the dup copies must show up somewhere.
	if res.Faults.Delivered+res.Faults.Drops() != res.Faults.Sent+res.Faults.Duplicated {
		t.Fatalf("conservation violated: delivered %d + dropped %d != sent %d + duplicated %d",
			res.Faults.Delivered, res.Faults.Drops(), res.Faults.Sent, res.Faults.Duplicated)
	}
	if got := countKind(res.Events, obs.KindMsgDuplicated); int64(got) != res.Faults.Duplicated {
		t.Fatalf("msg-duplicated events = %d, stats say %d", got, res.Faults.Duplicated)
	}
}

// Degraded (non-power-of-two) hypercubes must still connect the cluster:
// tours propagate and every node both sends and receives.
func TestDegradedHypercubeSizes(t *testing.T) {
	for _, n := range []int{6, 12} {
		in := tsp.Generate(tsp.FamilyUniform, 60, 25)
		cfg := testConfig(n)
		cfg.Budget.MaxIterations = 10
		res := Run(context.Background(), in, cfg)
		if res.Faults.Sent == 0 || res.Faults.Delivered == 0 {
			t.Fatalf("n=%d: no traffic on degraded hypercube (%+v)", n, res.Faults)
		}
		for i, s := range res.Stats {
			if s.Broadcasts == 0 {
				t.Fatalf("n=%d: node %d never broadcast", n, i)
			}
		}
		var received int64
		for _, s := range res.Stats {
			received += s.Received
		}
		if received == 0 {
			t.Fatalf("n=%d: no node drained any tour", n)
		}
	}
}

// VirtualTime bounds the run on the virtual clock, and SpeedFactors skew
// per-node progress deterministically.
func TestVirtualTimeAndSpeedFactors(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(2)
	cfg.Budget = core.Budget{MaxIterations: 1_000_000}
	cfg.VirtualTime = 2 * time.Second
	cfg.StepCost = 100 * time.Millisecond
	cfg.SpeedFactors = []float64{1, 4} // node 1 is 4x slower
	res := Run(context.Background(), in, cfg)

	if res.VirtualElapsed > cfg.VirtualTime+cfg.StepCost*4 {
		t.Fatalf("virtual clock ran to %v, bound was %v", res.VirtualElapsed, cfg.VirtualTime)
	}
	fast, slow := res.Stats[0].Iterations, res.Stats[1].Iterations
	if fast <= slow {
		t.Fatalf("fast node iterated %d <= slow node's %d", fast, slow)
	}
	// ~20 fast steps vs ~5 slow steps in 2 virtual seconds.
	if fast < 3*slow {
		t.Fatalf("speed factor 4 yielded only %dx progress (%d vs %d)", fast/slow, fast, slow)
	}
}

// NodeIterations gives each node its own budget — the virtual-clock port of
// the heterogeneous-lifetime churn scenario.
func TestHeterogeneousIterationBudgets(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(4)
	cfg.Budget = core.Budget{MaxIterations: 12}
	cfg.NodeIterations = []int64{2, 2, 0, 0} // nodes 0,1 retire early
	res := Run(context.Background(), in, cfg)

	for _, i := range []int{0, 1} {
		if res.Stats[i].Iterations != 2 {
			t.Fatalf("node %d iterated %d, want its private budget 2", i, res.Stats[i].Iterations)
		}
	}
	for _, i := range []int{2, 3} {
		if res.Stats[i].Iterations != 12 {
			t.Fatalf("node %d iterated %d, want the shared budget 12", i, res.Stats[i].Iterations)
		}
	}
}

// Dropped messages must be visible: counted in FaultStats, bumped on the
// obs counters, and evented with the receiver as Node.
func TestDropAccounting(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(2)
	cfg.Budget.MaxIterations = 10
	cfg.Link.DropProb = 1.0 // lose everything
	res := Run(context.Background(), in, cfg)

	if res.Faults.Delivered != 0 {
		t.Fatalf("DropProb=1 delivered %d messages", res.Faults.Delivered)
	}
	if res.Faults.DroppedLink != res.Faults.Sent {
		t.Fatalf("dropped %d of %d sent", res.Faults.DroppedLink, res.Faults.Sent)
	}
	var counterDrops int64
	for _, c := range res.Counters {
		counterDrops += c.MsgDrops
	}
	if counterDrops != res.Faults.Sent {
		t.Fatalf("obs counters saw %d drops, network dropped %d", counterDrops, res.Faults.Sent)
	}
	for _, e := range res.Events {
		if e.Kind == obs.KindMsgDropped && (e.Node < 0 || e.Node >= 2 || e.From < 0) {
			t.Fatalf("malformed drop event: %+v", e)
		}
	}
}

// Event timestamps come from the virtual clock: monotone, and bounded by
// the final virtual time.
func TestEventTimestampsAreVirtual(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(2)
	cfg.Budget.MaxIterations = 5
	cfg.StepCost = time.Hour // virtual hours elapse in wall-clock milliseconds
	start := time.Now()
	res := Run(context.Background(), in, cfg)
	wall := time.Since(start)

	if res.VirtualElapsed < 4*time.Hour {
		t.Fatalf("virtual clock only advanced to %v", res.VirtualElapsed)
	}
	if wall > time.Minute {
		t.Fatalf("simulation took %v of wall time", wall)
	}
	var prev time.Duration
	for _, e := range res.Events {
		if e.At < prev {
			t.Fatalf("event timestamps not monotone: %v after %v", e.At, prev)
		}
		prev = e.At
		if e.At > res.VirtualElapsed {
			t.Fatalf("event at %v beyond end of run %v", e.At, res.VirtualElapsed)
		}
	}
}

// Cancelling ctx aborts the event loop without hanging or panicking.
func TestContextCancellation(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)
	cfg := testConfig(2)
	cfg.Budget = core.Budget{MaxIterations: 1_000_000}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(ctx, in, cfg)
	if res.Nodes != 2 || len(res.Stats) != 2 {
		t.Fatalf("aborted run returned malformed result: %+v", res)
	}
}
