package simnet

import (
	"bytes"
	"context"
	"testing"
	"time"

	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// deltaExchange is the scaled wire protocol under test: tour-diff
// broadcast with a short keyframe interval (more delta traffic per run)
// plus queued-message coalescing.
func deltaExchange() dist.ExchangeConfig {
	return dist.ExchangeConfig{Delta: true, KeyframeEvery: 8, Coalesce: true}
}

// TestDeltaExchangeUnderFaults is the wire-protocol correctness harness:
// drop, dup, reorder, bandwidth, a partition, and crash/restarts all hit
// the delta streams at once, and every delivered tour must still
// reconstruct byte-for-byte — the simulator carries each sender's full
// tour alongside the encoded form as an oracle, so a single divergence
// lands in FaultStats.DeltaMismatches.
func TestDeltaExchangeUnderFaults(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 120, 91)
	ea := core.DefaultConfig()
	// One kick per call: broadcasts fire on *local* improvements, and
	// gentle kicks keep each node's lineage alive long enough for its
	// diffs to stay small — a ring (sparse exchange) for the same reason.
	// Dense topologies make every improvement foreign-lineage, which
	// correctly falls back to full frames but starves the delta path
	// this test exists to exercise.
	ea.KicksPerCall = 1
	cfg := Config{
		Nodes:    16,
		Topo:     topology.Ring,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: 150},
		Seed:     7,
		Link:     chaosLink(),
		Exchange: deltaExchange(),
		Partitions: []Partition{{
			At:     300 * time.Millisecond,
			Heal:   700 * time.Millisecond,
			Groups: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}},
		}},
		Crashes: []Crash{
			{Node: 3, At: 250 * time.Millisecond, Restart: 600 * time.Millisecond, Fresh: true},
			{Node: 11, At: 400 * time.Millisecond}, // never restarts
		},
	}

	res := Run(context.Background(), in, cfg)

	if res.Faults.DeltaMismatches != 0 {
		t.Fatalf("delta reconstruction diverged from the sender's tour %d times",
			res.Faults.DeltaMismatches)
	}
	if res.Faults.DeltaTours == 0 {
		t.Fatal("no delta frames sent — the protocol under test never engaged")
	}
	if res.Faults.FullTours == 0 {
		t.Fatal("no full keyframes sent — fallback path never engaged")
	}
	if res.Faults.DeltaGaps == 0 {
		t.Fatal("chaos schedule produced no generation gaps — fault coverage too weak")
	}
	if res.Faults.WireBytes == 0 {
		t.Fatal("bandwidth model charged zero wire bytes")
	}
	if res.BestTour == nil {
		t.Fatal("cluster produced no best tour under delta exchange")
	}
	if err := res.BestTour.Validate(in.N()); err != nil {
		t.Fatalf("best tour invalid under delta exchange: %v", err)
	}

	// Replay determinism must survive the extra codec machinery: the event
	// log, fault ledger, and result stay byte-identical.
	res2 := Run(context.Background(), in, cfg)
	if res.Faults != res2.Faults {
		t.Fatalf("fault ledgers diverged:\n  %+v\n  %+v", res.Faults, res2.Faults)
	}
	if res.BestLength != res2.BestLength || res.VirtualElapsed != res2.VirtualElapsed {
		t.Fatalf("results diverged: %d/%v vs %d/%v",
			res.BestLength, res.VirtualElapsed, res2.BestLength, res2.VirtualElapsed)
	}
	if !bytes.Equal(marshalLog(t, res.Events), marshalLog(t, res2.Events)) {
		t.Fatal("event logs diverged between replays under delta exchange")
	}
}

// TestDeltaCrashRestartFallsBackToFull pins the restart contract: a fresh
// node has no decoder state, so the first frame it accepts from each
// neighbour after restart must be a full tour (deltas against generations
// it never saw are discarded as gaps, then the stream heals at the next
// keyframe). The oracle check doubles as the assertion that healing is
// exact, not merely plausible.
func TestDeltaCrashRestartFallsBackToFull(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 120, 19)
	ea := core.DefaultConfig()
	ea.KicksPerCall = 5
	cfg := Config{
		Nodes:    8,
		Topo:     topology.Ring,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: 16},
		Seed:     3,
		Exchange: dist.ExchangeConfig{Delta: true, KeyframeEvery: 64},
		// Generous keyframe interval: without the crash below, streams
		// would send one full frame then deltas for the whole run.
		Crashes: []Crash{
			{Node: 2, At: 400 * time.Millisecond, Restart: 500 * time.Millisecond, Fresh: true},
		},
	}

	res := Run(context.Background(), in, cfg)

	if res.Faults.DeltaMismatches != 0 {
		t.Fatalf("reconstruction mismatches after crash/restart: %d",
			res.Faults.DeltaMismatches)
	}
	// 8 ring nodes = 16 directed streams = 16 initial fulls; the restarted
	// node re-keys its outbound streams, so strictly more fulls than that.
	if res.Faults.FullTours <= 16 {
		t.Fatalf("restart did not force extra keyframes: %d full tours (want > 16)",
			res.Faults.FullTours)
	}
	if res.Faults.DeltaTours == 0 {
		t.Fatal("no deltas flowed on the healthy streams")
	}
}

// TestGossipExchangeDeterministic runs gossip peer sampling (random
// fanout over the whole cluster instead of topology neighbours) through
// the simulator twice: the samples draw from the single fault rng, so
// replays must stay byte-identical.
func TestGossipExchangeDeterministic(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 100, 55)
	ea := core.DefaultConfig()
	ea.KicksPerCall = 5
	cfg := Config{
		Nodes:    12,
		Topo:     topology.Ring,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: 8},
		Seed:     13,
		Link:     Link{Latency: Latency{Kind: LatencyFixed, Base: 10 * time.Millisecond}},
		Exchange: dist.ExchangeConfig{Delta: true, KeyframeEvery: 8, Gossip: true, Fanout: 3},
	}

	a := Run(context.Background(), in, cfg)
	b := Run(context.Background(), in, cfg)

	if a.Faults != b.Faults {
		t.Fatalf("gossip fault ledgers diverged:\n  %+v\n  %+v", a.Faults, b.Faults)
	}
	if !bytes.Equal(marshalLog(t, a.Events), marshalLog(t, b.Events)) {
		t.Fatal("gossip event logs diverged between replays")
	}
	if a.Faults.DeltaMismatches != 0 {
		t.Fatalf("gossip reconstruction mismatches: %d", a.Faults.DeltaMismatches)
	}
	// Gossip with fanout 3 on 12 nodes must reach beyond the 2 ring
	// neighbours; Sent growing past deterministic ring traffic is implied
	// by the ledger equality above, so just sanity-check volume.
	if a.Faults.DeltaTours+a.Faults.FullTours == 0 {
		t.Fatal("gossip sent no tours")
	}
}
