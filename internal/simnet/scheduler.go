package simnet

import (
	"container/heap"
	"time"
)

// event is one scheduled callback on the virtual clock.
type event struct {
	at  time.Duration
	seq uint64 // insertion order; breaks timestamp ties so replay is exact
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// scheduler is the discrete-event core: a priority queue of callbacks keyed
// by (virtual time, insertion order). Everything in a simulation — node EA
// steps, message deliveries, partitions, crashes — runs as one of these
// callbacks on a single goroutine, so a fixed seed replays the whole run
// byte-identically: no wall clocks, no goroutine interleaving.
type scheduler struct {
	h   eventHeap
	now time.Duration
	seq uint64
}

// Now reads the virtual clock. It only advances between events.
func (s *scheduler) Now() time.Duration { return s.now }

// schedule queues fn at absolute virtual time `at` (clamped to now:
// the past is immutable).
func (s *scheduler) schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.h, &event{at: at, seq: s.seq, fn: fn})
}

// after queues fn `d` after the current virtual time.
func (s *scheduler) after(d time.Duration, fn func()) { s.schedule(s.now+d, fn) }

// run pops and executes events in (time, seq) order until the queue drains
// or stop reports true (checked before each event).
func (s *scheduler) run(stop func() bool) {
	for len(s.h) > 0 {
		if stop != nil && stop() {
			return
		}
		ev := heap.Pop(&s.h).(*event)
		s.now = ev.at
		ev.fn()
	}
}
