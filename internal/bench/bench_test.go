package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps harness tests fast: minimal budgets, two instances max.
func tinyOptions() Options {
	return Options{
		Runs:         1,
		CLKBudget:    800 * time.Millisecond,
		Nodes:        4,
		Seed:         1,
		SizeScale:    16,
		HKIters:      20,
		MaxInstances: 2,
	}
}

func TestSeriesAtAndTimeToReach(t *testing.T) {
	s := Series{Points: []Point{
		{T: 1 * time.Second, Len: 100},
		{T: 2 * time.Second, Len: 90},
		{T: 5 * time.Second, Len: 80},
	}, Final: 80}
	if got := s.At(0); got != 100 {
		t.Errorf("At(0) = %d", got)
	}
	if got := s.At(3 * time.Second); got != 90 {
		t.Errorf("At(3s) = %d", got)
	}
	if got := s.At(10 * time.Second); got != 80 {
		t.Errorf("At(10s) = %d", got)
	}
	if tt, ok := s.TimeToReach(90); !ok || tt != 2*time.Second {
		t.Errorf("TimeToReach(90) = %v %v", tt, ok)
	}
	if tt, ok := s.TimeToReach(85); !ok || tt != 5*time.Second {
		t.Errorf("TimeToReach(85) = %v %v", tt, ok)
	}
	if _, ok := s.TimeToReach(79); ok {
		t.Error("reached unreachable target")
	}
}

func TestSeriesScale(t *testing.T) {
	s := Series{Points: []Point{{T: 8 * time.Second, Len: 10}}, Final: 10}
	scaled := s.Scale(0.125)
	if scaled.Points[0].T != time.Second {
		t.Errorf("scaled T = %v", scaled.Points[0].T)
	}
}

func TestMeanHelpers(t *testing.T) {
	runs := []Series{
		{Points: []Point{{T: time.Second, Len: 100}}, Final: 100},
		{Points: []Point{{T: time.Second, Len: 200}}, Final: 200},
	}
	if got := MeanFinal(runs); got != 150 {
		t.Errorf("MeanFinal = %f", got)
	}
	if got := BestFinal(runs); got != 100 {
		t.Errorf("BestFinal = %d", got)
	}
	if got := MeanAt(runs, 2*time.Second); got != 150 {
		t.Errorf("MeanAt = %f", got)
	}
	mean, reached := MeanTimeToReach(runs, 150)
	if reached != 1 || mean != time.Second {
		t.Errorf("MeanTimeToReach = %v %d", mean, reached)
	}
}

func TestGapPercent(t *testing.T) {
	if got := GapPercent(101, 100); got != 1.0 {
		t.Errorf("GapPercent = %f", got)
	}
}

func TestTextTable(t *testing.T) {
	tbl := &TextTable{
		Title:  "demo",
		Header: []string{"a", "bee"},
	}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer", 2.5)
	tbl.Note("footnote %d", 7)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bee", "longer", "2.500", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTestbedScaling(t *testing.T) {
	opt := tinyOptions()
	specs := opt.Testbed()
	if len(specs) != 12 {
		t.Fatalf("testbed has %d specs", len(specs))
	}
	for _, s := range specs {
		if s.N < 120 {
			t.Errorf("%s scaled below floor: %d", s.Paper, s.N)
		}
	}
	full := PaperOptions().Testbed()
	if full[5].Paper != "fl3795" || full[5].N != 3795 {
		t.Errorf("paper testbed wrong: %+v", full[5])
	}
}

func TestRunCLKTraceMonotone(t *testing.T) {
	b := New(tinyOptions())
	spec, err := b.Opt.SpecByName("E1k.1")
	if err != nil {
		t.Fatal(err)
	}
	in := b.Instance(spec)
	s := b.RunCLK(in, 3, 500*time.Millisecond, 0, 1)
	if len(s.Points) == 0 || s.Final == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Len > s.Points[i-1].Len {
			t.Fatal("CLK trace not monotone non-increasing")
		}
		if s.Points[i].T < s.Points[i-1].T {
			t.Fatal("CLK trace timestamps not ordered")
		}
	}
}

func TestRunDistTrace(t *testing.T) {
	b := New(tinyOptions())
	spec, err := b.Opt.SpecByName("C1k.1")
	if err != nil {
		t.Fatal(err)
	}
	in := b.Instance(spec)
	res, s := b.RunDist(in, 2, 400*time.Millisecond, 3, 0, 1)
	if res.BestLength == 0 || s.Final != res.BestLength {
		t.Fatalf("result %d, trace final %d", res.BestLength, s.Final)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Len > s.Points[i-1].Len {
			t.Fatal("cluster trace not monotone")
		}
	}
}

func TestHKBoundCached(t *testing.T) {
	b := New(tinyOptions())
	spec, _ := b.Opt.SpecByName("E1k.1")
	first := b.HKBound(spec)
	second := b.HKBound(spec)
	if first != second || first <= 0 {
		t.Fatalf("HK bound unstable: %d %d", first, second)
	}
}

func TestCheckpointsSpanBudget(t *testing.T) {
	cps := Checkpoints(10*time.Second, 5)
	if len(cps) != 5 {
		t.Fatalf("%d checkpoints", len(cps))
	}
	if cps[4] != 10*time.Second {
		t.Errorf("last checkpoint %v", cps[4])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Error("checkpoints not increasing")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Series{{
		Label:  "x",
		Points: []Point{{T: time.Second, Len: 5}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,1.000,5") {
		t.Fatalf("csv: %q", buf.String())
	}
}

// TestExperimentsSmoke runs every experiment once at minimal scale and
// checks that each produces non-empty, well-formed output.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test is slow")
	}
	opt := tinyOptions()
	opt.OutDir = t.TempDir()
	b := New(opt)
	experiments := []struct {
		name string
		run  func(*Bench, *bytes.Buffer) error
	}{
		{"table1", func(b *Bench, w *bytes.Buffer) error { return b.Table1(w) }},
		{"table3", func(b *Bench, w *bytes.Buffer) error { return b.Table3(w) }},
		{"table4", func(b *Bench, w *bytes.Buffer) error { return b.Table4(w) }},
		{"table5", func(b *Bench, w *bytes.Buffer) error { return b.Table5(w) }},
		{"figure3", func(b *Bench, w *bytes.Buffer) error { return b.Figure3(w) }},
		{"messages", func(b *Bench, w *bytes.Buffer) error { return b.Messages(w) }},
		{"variator", func(b *Bench, w *bytes.Buffer) error { return b.Variator(w) }},
	}
	for _, e := range experiments {
		var buf bytes.Buffer
		if err := e.run(b, &buf); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", e.name)
		}
		t.Logf("%s:\n%s", e.name, buf.String())
	}
}
