package bench

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"distclk/internal/clk"
	"distclk/internal/obs"
)

// parallelRow is one JSONL line of the in-node parallelism experiment.
// Field order is fixed by the struct; wall-clock fields are honest and
// therefore machine-dependent, so this experiment is not part of the
// byte-stable reproduction tier.
type parallelRow struct {
	Experiment  string  `json:"experiment"`
	Instance    string  `json:"instance"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Seed        int64   `json:"seed"`
	Kicks       int64   `json:"kicks"`
	Merges      int64   `json:"merges"`
	Best        int64   `json:"best"`
	WallMS      float64 `json:"wall_ms"`
	KicksPerSec float64 `json:"kicks_per_sec"`
}

// Parallel runs the in-node parallel CLK group (DESIGN.md §9) at 1, 2, 4
// and 8 workers over one shared candidate table, a fixed group kick budget
// per worker count, and a merge cadence tight enough that elite fusion
// fires at smoke scale. One JSONL row per worker count.
//
// When b.Trace is set, every per-worker kick and LK-improvement event and
// every group-level merge/adopt event streams to it with the worker index
// in the node field — the -trace JSONL shows the full shared-memory search,
// not just the winner.
func (b *Bench) Parallel(w io.Writer) error {
	spec, err := b.Opt.SpecByName("E1k.1")
	if err != nil {
		return err
	}
	in := b.Instance(spec)
	enc := json.NewEncoder(w)

	const groupKicks = 600
	for _, workers := range []int{1, 2, 4, 8} {
		g := clk.NewGroup(context.Background(), in, clk.DefaultParams(),
			clk.GroupParams{Workers: workers, MergeEvery: 100}, b.Opt.Seed)
		o := obs.NewObserver(workers, b.Trace)
		for i := 0; i < g.Workers(); i++ {
			g.SetRecorder(i, o.Recorder(i))
		}
		start := time.Now()
		res := g.Run(context.Background(), clk.Budget{MaxKicks: groupKicks})
		wall := time.Since(start)
		row := parallelRow{
			Experiment: "parallel-workers",
			Instance:   spec.Paper,
			N:          in.N(),
			Workers:    workers,
			Seed:       b.Opt.Seed,
			Kicks:      res.Kicks,
			Merges:     g.Merges(),
			Best:       res.Length,
			WallMS:     float64(wall) / float64(time.Millisecond),
		}
		if wall > 0 {
			row.KicksPerSec = float64(res.Kicks) / wall.Seconds()
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
