package bench

import (
	"fmt"
	"io"
	"strings"
)

// TextTable renders aligned plain-text tables in the style of the paper.
type TextTable struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *TextTable) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *TextTable) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Write renders the table.
func (t *TextTable) Write(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var total int
	for _, wd := range width {
		total += wd + 2
	}
	line := strings.Repeat("-", total)

	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, line); err != nil {
			return err
		}
	}
	writeRow := func(r []string) error {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
