// Package bench is the experiment harness: it re-runs every table and
// figure of the paper's evaluation (§3 "Distributed Optimization Results",
// §4 "Analysis of the Algorithm") on the synthetic testbed, records
// quality-versus-time traces, and renders paper-style tables. Absolute
// numbers differ from the paper (different hardware, scaled budgets,
// synthetic instances); the reproduction targets are the *shapes*: who
// wins, by what factor, and where crossovers fall. EXPERIMENTS.md records
// paper-versus-measured for every experiment. (The deterministic smoke
// tier that CI regenerates lives in internal/report, not here: this
// package's traces are wall-clock-denominated and vary between hosts.)
//
// Invariants:
//   - Run r of any configuration derives its seed as Seed + 101*r, so
//     adding runs never reshuffles earlier ones.
//   - Table/figure renderers iterate slices in declared order, never maps.
//   - Paper instance names resolve through Options.SpecByName; a scaled
//     spec keeps the paper name with a "-standin" suffix on the instance.
package bench
