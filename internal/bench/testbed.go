package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/heldkarp"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// Spec names one testbed instance: a paper instance name, the synthetic
// family standing in for it, and the (possibly scaled-down) size.
type Spec struct {
	Paper  string
	Family tsp.Family
	N      int
}

// Options control experiment scale so the same code serves sub-minute smoke
// benchmarks and long paper-shaped runs.
type Options struct {
	// Runs per configuration (paper: 10).
	Runs int
	// CLKBudget is the wall/CPU budget per plain-CLK run; the distributed
	// algorithm gets CLKBudget/10 of CPU per node, the paper's ratio.
	CLKBudget time.Duration
	// Nodes is the cluster size (paper: 8).
	Nodes int
	// Seed fixes instance geometry and run randomness.
	Seed int64
	// SizeScale divides the paper's instance sizes (1 = full size).
	SizeScale int
	// HKIters bounds Held-Karp ascent iterations for quality denominators.
	HKIters int
	// MaxInstances truncates each experiment's instance list (0 = all),
	// used by smoke benchmarks.
	MaxInstances int
	// OutDir, when set, receives CSV trace files for the figures.
	OutDir string
	// CV and CR are the EA's perturbation-strength divisor and restart
	// threshold. The paper's c_v=64/c_r=256 assume hundreds of EA
	// iterations per run; scaled-budget runs compress the time axis, so
	// quick mode scales these down proportionally (see EXPERIMENTS.md).
	CV, CR int
	// KicksPerCall bounds the embedded CLK run per EA iteration.
	KicksPerCall int64
	// Candidates names the candidate-set strategy threaded into every CLK
	// engine ("" keeps the engine's knn default; "auto" probes).
	Candidates string
	// RelaxDepth is the relaxed-gain depth threaded into every LK search
	// (0 = classic strictly-positive rule).
	RelaxDepth int
}

// QuickOptions is the default sub-minute-per-experiment configuration.
func QuickOptions() Options {
	return Options{
		Runs:         2,
		CLKBudget:    4 * time.Second,
		Nodes:        8,
		Seed:         1,
		SizeScale:    8,
		HKIters:      60,
		CV:           4,
		CR:           16,
		KicksPerCall: 10,
	}
}

// PaperOptions approaches the paper's setup (still with reduced budgets:
// the paper burned 10^4-10^5 CPU seconds per run).
func PaperOptions() Options {
	return Options{
		Runs:      10,
		CLKBudget: 60 * time.Second,
		Nodes:     8,
		Seed:      1,
		SizeScale: 1,
		HKIters:   100,
		CV:        64,
		CR:        256,
	}
}

// DistBudget is the per-node CPU budget for the distributed algorithm:
// one tenth of the plain CLK budget, as in the paper (§3.1).
func (o Options) DistBudget() time.Duration { return o.CLKBudget / 10 }

// paperTestbed lists the paper's instances in evaluation order.
var paperTestbed = []Spec{
	{"C1k.1", tsp.FamilyClustered, 1000},
	{"E1k.1", tsp.FamilyUniform, 1000},
	{"fl1577", tsp.FamilyDrill, 1577},
	{"pr2392", tsp.FamilyGrid, 2392},
	{"pcb3038", tsp.FamilyGrid, 3038},
	{"fl3795", tsp.FamilyDrill, 3795},
	{"fnl4461", tsp.FamilyGrid, 4461},
	{"fi10639", tsp.FamilyNational, 10639},
	{"usa13509", tsp.FamilyNational, 13509},
	{"sw24978", tsp.FamilyNational, 24978},
	{"pla33810", tsp.FamilyDrill, 33810},
	{"pla85900", tsp.FamilyDrill, 85900},
}

// Testbed returns instance specs scaled by o.SizeScale, keeping a floor of
// 120 cities so local search still has structure to exploit.
func (o Options) Testbed() []Spec {
	scale := o.SizeScale
	if scale < 1 {
		scale = 1
	}
	out := make([]Spec, len(paperTestbed))
	for i, s := range paperTestbed {
		n := s.N / scale
		if n < 120 {
			n = 120
		}
		out[i] = Spec{Paper: s.Paper, Family: s.Family, N: n}
	}
	return out
}

// SpecByName finds a testbed spec by paper name.
func (o Options) SpecByName(name string) (Spec, error) {
	for _, s := range o.Testbed() {
		if s.Paper == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown testbed instance %q", name)
}

// Bench owns instantiated testbed instances and cached HK bounds so
// experiments sharing an instance do not recompute them.
type Bench struct {
	Opt       Options
	instances map[string]*tsp.Instance
	hk        map[string]int64

	// Trace, when set, receives every obs event of every run (e.g. a
	// JSONLSink for offline analysis of the experiment's search behaviour).
	Trace obs.Sink

	runCache     map[runKey][]Series
	clusterCache map[runKey][]dist.ClusterResult
}

// New prepares a harness.
func New(opt Options) *Bench {
	if opt.Runs <= 0 {
		opt.Runs = 2
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 8
	}
	return &Bench{
		Opt:       opt,
		instances: map[string]*tsp.Instance{},
		hk:        map[string]int64{},
	}
}

// Instance materializes (and caches) a testbed instance.
func (b *Bench) Instance(s Spec) *tsp.Instance {
	key := fmt.Sprintf("%s/%d", s.Paper, s.N)
	if in, ok := b.instances[key]; ok {
		return in
	}
	in := tsp.Generate(s.Family, s.N, b.Opt.Seed)
	in.Name = s.Paper + "-standin"
	b.instances[key] = in
	return in
}

// HKBound computes (and caches) the Held-Karp lower bound for a spec. For
// very large instances the O(n^2)-per-iteration ascent is trimmed.
func (b *Bench) HKBound(s Spec) int64 {
	key := fmt.Sprintf("%s/%d", s.Paper, s.N)
	if v, ok := b.hk[key]; ok {
		return v
	}
	in := b.Instance(s)
	iters := b.Opt.HKIters
	if in.N() > 4000 {
		iters = iters / 4
		if iters < 10 {
			iters = 10
		}
	}
	res := heldkarp.LowerBound(in, heldkarp.Options{Iterations: iters})
	b.hk[key] = res.Bound
	return res.Bound
}

// RunCLK executes one plain Chained LK run under the budget, recording a
// quality trace. target (0 = none) stops early, mirroring the paper's
// known-optimum termination.
func (b *Bench) RunCLK(in *tsp.Instance, kick clk.KickStrategy, budget time.Duration, target int64, seed int64) Series {
	p := clk.DefaultParams()
	p.Kick = kick
	p.Candidates = b.Opt.Candidates
	p.LK.RelaxDepth = b.Opt.RelaxDepth
	start := time.Now()
	s := clk.New(in, p, seed)
	series := Series{Label: fmt.Sprintf("CLK/%s", kick)}
	series.Points = append(series.Points, Point{T: time.Since(start), Len: s.BestLength()})
	// Trace every LK improvement straight off the event stream. Run is
	// single-goroutine, so appending from the sink is race-free.
	var sink obs.Sink = obs.SinkFunc(func(e obs.Event) {
		if e.Kind == obs.KindLKImprove {
			series.Points = append(series.Points, Point{T: time.Since(start), Len: e.Value})
		}
	})
	if b.Trace != nil {
		sink = obs.Multi(sink, b.Trace)
	}
	s.Rec = obs.NewRecorder(0, sink)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	res := s.Run(ctx, clk.Budget{Target: target})
	series.Final = res.Length
	series.Points = append(series.Points, Point{T: time.Since(start), Len: res.Length})
	return series
}

// ClusterCPUFactor converts wall time of an in-process cluster run into
// approximate per-node CPU time: nodes time-share min(nodes, GOMAXPROCS)
// cores, so each receives procs/nodes of the wall clock.
func ClusterCPUFactor(nodes int) float64 {
	procs := runtime.GOMAXPROCS(0)
	if procs > nodes {
		procs = nodes
	}
	return float64(procs) / float64(nodes)
}

// RunDist executes one distributed run with the given node count and
// per-node CPU budget. The wall-clock deadline is stretched by the inverse
// CPU factor so every node receives the intended CPU share even when nodes
// time-share cores; the returned trace is expressed in per-node CPU time,
// directly comparable with plain CLK traces and with the paper's
// "CPU time per node" axes.
func (b *Bench) RunDist(in *tsp.Instance, nodes int, perNodeCPU time.Duration, kick clk.KickStrategy, target int64, seed int64) (dist.ClusterResult, Series) {
	factor := ClusterCPUFactor(nodes)
	wall := time.Duration(float64(perNodeCPU) / factor)
	ea := core.DefaultConfig()
	ea.CLK.Kick = kick
	ea.CLK.Candidates = b.Opt.Candidates
	ea.CLK.LK.RelaxDepth = b.Opt.RelaxDepth
	if b.Opt.CV > 0 {
		ea.CV = b.Opt.CV
	}
	if b.Opt.CR > 0 {
		ea.CR = b.Opt.CR
	}
	if b.Opt.KicksPerCall > 0 {
		ea.KicksPerCall = b.Opt.KicksPerCall
	}
	ctx, cancel := context.WithTimeout(context.Background(), wall)
	defer cancel()
	res := dist.RunCluster(ctx, in, dist.ClusterConfig{
		Nodes:  nodes,
		Topo:   topology.Hypercube,
		EA:     ea,
		Budget: core.Budget{Target: target},
		Seed:   seed,
		Obs:    obs.NewObserver(nodes, b.Trace),
	})
	series := Series{Label: fmt.Sprintf("DistCLK/%d", nodes), Final: res.BestLength}
	// The cluster trace is global (best across nodes improves over time as
	// nodes improve locally); keep the running minimum over the improvement
	// events of all nodes.
	best := int64(1 << 62)
	for _, e := range res.Events {
		if e.Kind != obs.KindImprove && e.Kind != obs.KindImproveReceived {
			continue
		}
		if e.Value < best {
			best = e.Value
			series.Points = append(series.Points, Point{T: e.At, Len: e.Value})
		}
	}
	series.Points = append(series.Points, Point{T: res.Elapsed, Len: res.BestLength})
	return res, series.Scale(factor)
}
