package bench

import (
	"time"

	"distclk/internal/lkh"
	"distclk/internal/merge"
	"distclk/internal/multilevel"
	"distclk/internal/tsp"
)

// lkhSolve runs the LKH-style baseline with trial count scaled to the
// harness budget.
func lkhSolve(in *tsp.Instance, deadline time.Time, seed int64) lkh.Result {
	p := lkh.DefaultParams()
	p.AscentIterations = 40
	return lkh.Solve(in, p, seed, deadline, 0)
}

// runMultilevel runs the Walshaw-style baseline with its default
// MLC(N/10)LK configuration.
func (b *Bench) runMultilevel(in *tsp.Instance) int64 {
	res := multilevel.Solve(in, multilevel.DefaultParams(), b.Opt.Seed,
		time.Now().Add(b.Opt.CLKBudget), 0)
	return res.Length
}

// runMerge runs Cook & Seymour-style tour merging with base-run budgets
// shrunk so the whole procedure fits within the CLK budget.
func (b *Bench) runMerge(in *tsp.Instance) int64 {
	p := merge.DefaultParams()
	p.Tours = 5
	p.KicksPerTour = int64(in.N() / 4)
	p.MergeKicks = 100
	res := merge.Solve(in, p, b.Opt.Seed, time.Now().Add(b.Opt.CLKBudget), 0)
	return res.Length
}
