package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Point is one observation of a run's incumbent tour length.
type Point struct {
	T   time.Duration
	Len int64
}

// Series is a non-increasing quality trace of one run (step function: the
// incumbent between points is the earlier point's value).
type Series struct {
	Label  string
	Points []Point
	// Final is the length at the end of the run (trailing value).
	Final int64
}

// At evaluates the step function at time t; before the first point it
// returns the first point's value (the initial tour), and 0 for an empty
// series.
func (s Series) At(t time.Duration) int64 {
	if len(s.Points) == 0 {
		return 0
	}
	cur := s.Points[0].Len
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		cur = p.Len
	}
	return cur
}

// TimeToReach returns the first time the trace is <= target, or ok=false.
func (s Series) TimeToReach(target int64) (time.Duration, bool) {
	for _, p := range s.Points {
		if p.Len <= target {
			return p.T, true
		}
	}
	return 0, false
}

// Scale returns a copy with all timestamps multiplied by f — used to
// convert wall-clock traces of time-shared cluster runs into per-node CPU
// time (see ClusterCPUFactor).
func (s Series) Scale(f float64) Series {
	out := Series{Label: s.Label, Final: s.Final}
	out.Points = make([]Point, len(s.Points))
	for i, p := range s.Points {
		out.Points[i] = Point{T: time.Duration(float64(p.T) * f), Len: p.Len}
	}
	return out
}

// MeanAt averages several runs' traces at time t, ignoring empty series.
func MeanAt(runs []Series, t time.Duration) float64 {
	var sum float64
	var n int
	for _, s := range runs {
		if v := s.At(t); v > 0 {
			sum += float64(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanFinal averages final lengths.
func MeanFinal(runs []Series) float64 {
	var sum float64
	var n int
	for _, s := range runs {
		if s.Final > 0 {
			sum += float64(s.Final)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BestFinal returns the minimum final length across runs (0 if none).
func BestFinal(runs []Series) int64 {
	var best int64
	for _, s := range runs {
		if s.Final > 0 && (best == 0 || s.Final < best) {
			best = s.Final
		}
	}
	return best
}

// MeanTimeToReach averages the time to reach target over the runs that do
// reach it; reached reports how many did.
func MeanTimeToReach(runs []Series, target int64) (mean time.Duration, reached int) {
	var sum time.Duration
	for _, s := range runs {
		if t, ok := s.TimeToReach(target); ok {
			sum += t
			reached++
		}
	}
	if reached == 0 {
		return 0, 0
	}
	return sum / time.Duration(reached), reached
}

// MedianTimeToReach is the median over reaching runs (0 if none reach it).
func MedianTimeToReach(runs []Series, target int64) (time.Duration, int) {
	var ts []time.Duration
	for _, s := range runs {
		if t, ok := s.TimeToReach(target); ok {
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return 0, 0
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[len(ts)/2], len(ts)
}

// GapPercent is the relative excess of length over the reference bound.
func GapPercent(length int64, ref int64) float64 {
	if ref <= 0 {
		return math.NaN()
	}
	return float64(length-ref) / float64(ref) * 100
}

// WriteCSV dumps series as rows "label,seconds,length" for plotting.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "label,seconds,length"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%d\n", s.Label, p.T.Seconds(), p.Len); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoints returns log-spaced sampling times in (0, max], used to print
// compact figure summaries.
func Checkpoints(max time.Duration, count int) []time.Duration {
	if count < 2 {
		return []time.Duration{max}
	}
	out := make([]time.Duration, count)
	lo := math.Log(float64(max) / 64)
	hi := math.Log(float64(max))
	for i := range out {
		f := lo + (hi-lo)*float64(i)/float64(count-1)
		out[i] = time.Duration(math.Exp(f))
	}
	out[count-1] = max
	return out
}
