package bench

import (
	"context"
	"encoding/json"
	"io"
	"time"

	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/simnet"
	"distclk/internal/topology"
)

// simnetRow is one JSONL line of the simulated-cluster experiment. Field
// order is fixed by the struct, so the output is byte-stable per seed.
type simnetRow struct {
	Experiment  string            `json:"experiment"`
	Instance    string            `json:"instance"`
	N           int               `json:"n"`
	Nodes       int               `json:"nodes"`
	Seed        int64             `json:"seed"`
	Target      int64             `json:"target,omitempty"`
	Best        int64             `json:"best"`
	Iterations  int64             `json:"iterations"`
	Broadcasts  int64             `json:"broadcasts"`
	VirtualMS   float64           `json:"virtual_ms"`
	TargetMS    float64           `json:"target_ms,omitempty"`
	Speedup     float64           `json:"speedup,omitempty"`
	Faults      simnet.FaultStats `json:"faults"`
	Partitions  int               `json:"partitions,omitempty"`
	Crashes     int               `json:"crashes,omitempty"`
	DropProb    float64           `json:"drop_prob,omitempty"`
	ReorderProb float64           `json:"reorder_prob,omitempty"`
}

// Simnet reproduces the paper's node-scaling experiment (§3.2, speed-up at
// 1/2/4/8 nodes) on the deterministic network simulator, then pushes past
// the paper's hardware with a 1024-virtual-node chaos run — drop,
// duplication, reordering, a healing partition and node churn over the
// tour-diff wire protocol — all on one machine, in virtual time. One JSONL
// row per run.
//
// Methodology: a single-node calibration run fixes a target tour quality,
// then each cluster size races to that target on the virtual clock. The
// speed-up column is t(1 node)/t(n nodes) in virtual time, the simulation's
// analogue of the paper's CPU-time ratios.
func (b *Bench) Simnet(w io.Writer) error {
	spec, err := b.Opt.SpecByName("E1k.1")
	if err != nil {
		return err
	}
	in := b.Instance(spec)
	enc := json.NewEncoder(w)

	ea := core.DefaultConfig()
	ea.CV, ea.CR = b.Opt.CV, b.Opt.CR
	ea.KicksPerCall = b.Opt.KicksPerCall

	base := simnet.Config{
		Topo: topology.Hypercube,
		EA:   ea,
		Seed: b.Opt.Seed,
		Link: simnet.Link{
			Latency: simnet.Latency{Kind: simnet.LatencyFixed, Base: 5 * time.Millisecond},
		},
	}

	// Calibration: what one node reaches in a modest budget becomes the
	// target every cluster size must hit.
	calib := base
	calib.Nodes = 1
	calib.Budget = core.Budget{MaxIterations: 24}
	target := simnet.Run(context.Background(), in, calib).BestLength

	var t1 time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Nodes = n
		cfg.Budget = core.Budget{Target: target, MaxIterations: 2000}
		res := simnet.Run(context.Background(), in, cfg)
		row := simnetRow{
			Experiment: "simnet-speedup",
			Instance:   spec.Paper,
			N:          in.N(),
			Nodes:      n,
			Seed:       b.Opt.Seed,
			Target:     target,
			Best:       res.BestLength,
			Iterations: res.Iterations(),
			Broadcasts: res.Broadcasts(),
			VirtualMS:  float64(res.VirtualElapsed) / float64(time.Millisecond),
			TargetMS:   float64(res.TargetReachedAt) / float64(time.Millisecond),
			Faults:     res.Faults,
		}
		if n == 1 {
			t1 = res.TargetReachedAt
		}
		if t1 > 0 && res.TargetReachedAt > 0 {
			row.Speedup = float64(t1) / float64(res.TargetReachedAt)
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}

	// 1024 virtual nodes under a hostile WAN: the paper stopped at 8 real
	// machines; the simulator keeps the same algorithm honest at scales and
	// fault rates no lab cluster reproduces deterministically. The run
	// exercises the full scaled exchange stack — a flat-degree hierarchical
	// overlay, tour-diff broadcast with keyframes, and queued-tour
	// coalescing — with an iteration budget small enough for CI.
	chaos := base
	chaos.Nodes = 1024
	chaos.Topo = topology.TreeOfRings
	chaos.Exchange = dist.ExchangeConfig{Delta: true, KeyframeEvery: 16, Coalesce: true}
	chaos.Budget = core.Budget{Target: target, MaxIterations: 60}
	chaos.Link = simnet.Link{
		Latency:     simnet.Latency{Kind: simnet.LatencyLognormal, Base: 20 * time.Millisecond, Sigma: 0.7},
		DropProb:    0.05,
		DupProb:     0.02,
		ReorderProb: 0.10,
		Bandwidth:   4 << 20,
	}
	chaos.Partitions = []simnet.Partition{{
		At:     2 * time.Second,
		Heal:   6 * time.Second,
		Groups: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}},
	}}
	chaos.Crashes = []simnet.Crash{
		{Node: 9, At: 1 * time.Second, Restart: 4 * time.Second, Fresh: true},
		{Node: 17, At: 3 * time.Second},
	}
	res := simnet.Run(context.Background(), in, chaos)
	row := simnetRow{
		Experiment:  "simnet-chaos",
		Instance:    spec.Paper,
		N:           in.N(),
		Nodes:       chaos.Nodes,
		Seed:        b.Opt.Seed,
		Target:      target,
		Best:        res.BestLength,
		Iterations:  res.Iterations(),
		Broadcasts:  res.Broadcasts(),
		VirtualMS:   float64(res.VirtualElapsed) / float64(time.Millisecond),
		TargetMS:    float64(res.TargetReachedAt) / float64(time.Millisecond),
		Faults:      res.Faults,
		Partitions:  len(chaos.Partitions),
		Crashes:     len(chaos.Crashes),
		DropProb:    chaos.Link.DropProb,
		ReorderProb: chaos.Link.ReorderProb,
	}
	if t1 > 0 && res.TargetReachedAt > 0 {
		row.Speedup = float64(t1) / float64(res.TargetReachedAt)
	}
	return enc.Encode(row)
}
