package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"distclk/internal/clk"
	"distclk/internal/dist"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// runKey caches completed runs so experiments sharing a configuration
// (e.g. Tables 3 and 4 both need plain-CLK runs per kicking strategy)
// do not repeat work.
type runKey struct {
	paper string
	algo  string
	kick  clk.KickStrategy
	nodes int
}

func (b *Bench) cacheGet(k runKey) ([]Series, bool) {
	if b.runCache == nil {
		b.runCache = map[runKey][]Series{}
	}
	s, ok := b.runCache[k]
	return s, ok
}

func (b *Bench) cachePut(k runKey, s []Series) {
	if b.runCache == nil {
		b.runCache = map[runKey][]Series{}
	}
	b.runCache[k] = s
}

// CLKRuns returns (cached) plain-CLK traces for the spec and strategy.
func (b *Bench) CLKRuns(s Spec, kick clk.KickStrategy) []Series {
	key := runKey{s.Paper, "clk", kick, 1}
	if runs, ok := b.cacheGet(key); ok {
		return runs
	}
	in := b.Instance(s)
	runs := make([]Series, b.Opt.Runs)
	for r := 0; r < b.Opt.Runs; r++ {
		runs[r] = b.RunCLK(in, kick, b.Opt.CLKBudget, 0, b.Opt.Seed+int64(r)*101)
	}
	b.cachePut(key, runs)
	return runs
}

// DistRuns returns (cached) distributed traces (per-node CPU time axis).
func (b *Bench) DistRuns(s Spec, nodes int, perNodeCPU time.Duration, kick clk.KickStrategy) ([]Series, []dist.ClusterResult) {
	key := runKey{s.Paper, fmt.Sprintf("dist/%v", perNodeCPU), kick, nodes}
	if runs, ok := b.cacheGet(key); ok {
		return runs, b.clusterCache[key]
	}
	in := b.Instance(s)
	runs := make([]Series, b.Opt.Runs)
	results := make([]dist.ClusterResult, b.Opt.Runs)
	for r := 0; r < b.Opt.Runs; r++ {
		res, series := b.RunDist(in, nodes, perNodeCPU, kick, 0, b.Opt.Seed+int64(r)*757)
		runs[r] = series
		results[r] = res
	}
	b.cachePut(key, runs)
	if b.clusterCache == nil {
		b.clusterCache = map[runKey][]dist.ClusterResult{}
	}
	b.clusterCache[key] = results
	return runs, results
}

// subset limits the testbed to the first max entries matching the filter.
func (b *Bench) subset(filter func(Spec) bool, max int) []Spec {
	var out []Spec
	for _, s := range b.Opt.Testbed() {
		if filter != nil && !filter(s) {
			continue
		}
		out = append(out, s)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// reference is the success target for an instance: the best final length
// over every run the harness performed on it (the paper counts runs that
// found the known optimum; optima of synthetic instances are unknown, so
// the global best stands in — see DESIGN.md).
func reference(runGroups ...[]Series) int64 {
	var best int64
	for _, g := range runGroups {
		if v := BestFinal(g); v > 0 && (best == 0 || v < best) {
			best = v
		}
	}
	return best
}

func fmtSecs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

func fmtGap(length float64, ref int64) string {
	if length <= 0 || ref <= 0 {
		return "-"
	}
	g := (length - float64(ref)) / float64(ref) * 100
	if g <= 0.0005 {
		return "OPT*"
	}
	return fmt.Sprintf("%.3f%%", g)
}

// Table1 reproduces the speed-up comparison: time for ABCC-CLK, DistCLK(1)
// and DistCLK(8) to reach fixed quality levels. All three configurations
// receive the same total CPU; the factor column is DistCLK(1) time over
// DistCLK(8) per-node time (values above the node count indicate the
// paper's super-linear cooperation effect).
func (b *Bench) Table1(w io.Writer) error {
	specs := b.instancesFor([]string{"pr2392", "fl3795", "fi10639"})
	levels := []float64{1.0, 0.5, 0.25} // percent above the reference
	tbl := &TextTable{
		Title:  "Table 1: CPU time (s) to reach quality levels; speed-up DistCLK(1) vs DistCLK(8)",
		Header: []string{"instance", "level", "ABCC-CLK", "1 node", "8 nodes", "factor"},
	}
	for _, s := range specs {
		clkRuns := b.CLKRuns(s, clk.KickRandomWalk)
		one, _ := b.DistRuns(s, 1, b.Opt.CLKBudget, clk.KickRandomWalk)
		eight, _ := b.DistRuns(s, b.Opt.Nodes, b.Opt.CLKBudget/time.Duration(b.Opt.Nodes), clk.KickRandomWalk)
		ref := reference(clkRuns, one, eight)
		for _, lv := range levels {
			target := int64(float64(ref) * (1 + lv/100))
			tc, nc := MeanTimeToReach(clkRuns, target)
			t1, n1 := MeanTimeToReach(one, target)
			t8, n8 := MeanTimeToReach(eight, target)
			cell := func(t time.Duration, n int) string {
				if n == 0 {
					return "-"
				}
				return fmtSecs(t)
			}
			factor := "-"
			if n1 > 0 && n8 > 0 && t8 > 0 {
				factor = fmt.Sprintf("%.2f", float64(t1)/float64(t8))
			}
			tbl.AddRow(s.Paper, fmt.Sprintf("+%.2f%%", lv),
				cell(tc, nc), cell(t1, n1), cell(t8, n8), factor)
		}
	}
	tbl.Note("reference = best tour over all runs; per-node CPU; total CPU equal across configs")
	tbl.Note("factor > %d reproduces the paper's super-linear speed-up", b.Opt.Nodes)
	return tbl.Write(w)
}

// Table2 compares DistCLK with the reimplemented LKH-style, multilevel and
// tour-merging baselines: each baseline's final quality and runtime, plus
// the (total) CPU time DistCLK needs to reach that quality.
func (b *Bench) Table2(w io.Writer) error {
	specs := b.instancesFor([]string{"pr2392", "fl3795", "fnl4461"})
	tbl := &TextTable{
		Title:  "Table 2: baselines vs DistCLK (times in CPU seconds; DistCLK time = per-node x nodes)",
		Header: []string{"instance", "solver", "distance", "time", "DistCLK-to-match"},
	}
	for _, s := range specs {
		in := b.Instance(s)
		eight, _ := b.DistRuns(s, b.Opt.Nodes, b.Opt.DistBudget(), clk.KickRandomWalk)
		deadline := time.Now().Add(b.Opt.CLKBudget)

		type baseRes struct {
			name string
			len  int64
			dur  time.Duration
		}
		var rows []baseRes
		lr := b.runLKH(in, deadline)
		rows = append(rows, baseRes{"LKH-style", lr.len, lr.dur})
		mlStart := time.Now()
		ml := b.runMultilevel(in)
		rows = append(rows, baseRes{"ML-CLK", ml, time.Since(mlStart)})
		tmStart := time.Now()
		tm := b.runMerge(in)
		rows = append(rows, baseRes{"TM-CLK", tm, time.Since(tmStart)})

		ref := reference(eight)
		if ref <= 0 {
			continue
		}
		for _, r := range rows {
			if r.len > 0 && r.len < ref {
				ref = r.len
			}
		}
		for _, r := range rows {
			match := "-"
			if t, n := MeanTimeToReach(eight, r.len); n > 0 {
				match = fmtSecs(time.Duration(float64(t) * float64(b.Opt.Nodes)))
			}
			tbl.AddRow(s.Paper, r.name, fmtGap(float64(r.len), ref), fmtSecs(r.dur), match)
		}
		tbl.AddRow(s.Paper, "DistCLK(8)", fmtGap(MeanFinal(eight), ref),
			fmtSecs(time.Duration(float64(b.Opt.DistBudget())*float64(b.Opt.Nodes))), "")
	}
	tbl.Note("distance = gap over the best tour any solver found for the instance")
	return tbl.Write(w)
}

// Table3 reproduces the success-count comparison: how many runs reach the
// reference tour per kicking strategy, CLK (budget T) vs DistCLK (T/10 per
// node on 8 nodes).
func (b *Bench) Table3(w io.Writer) error {
	specs := b.table3Specs()
	tbl := &TextTable{
		Title: fmt.Sprintf("Table 3: runs (of %d) reaching the reference tour; CLK budget %v, DistCLK %v/node x %d",
			b.Opt.Runs, b.Opt.CLKBudget, b.Opt.DistBudget(), b.Opt.Nodes),
		Header: []string{"instance",
			"rnd CLK", "rnd Dist", "geo CLK", "geo Dist",
			"close CLK", "close Dist", "walk CLK", "walk Dist"},
	}
	for _, s := range specs {
		groups := make(map[clk.KickStrategy][2][]Series)
		var all [][]Series
		for _, kick := range clk.AllKickStrategies {
			cr := b.CLKRuns(s, kick)
			dr, _ := b.DistRuns(s, b.Opt.Nodes, b.Opt.DistBudget(), kick)
			groups[kick] = [2][]Series{cr, dr}
			all = append(all, cr, dr)
		}
		ref := reference(all...)
		count := func(runs []Series) string {
			n := 0
			for _, r := range runs {
				if r.Final == ref {
					n++
				}
			}
			return fmt.Sprintf("%d/%d", n, len(runs))
		}
		row := []interface{}{s.Paper}
		for _, kick := range clk.AllKickStrategies {
			g := groups[kick]
			row = append(row, count(g[0]), count(g[1]))
		}
		tbl.AddRow(row...)
	}
	tbl.Note("reference = best tour over all runs of the instance (optima of synthetic stand-ins are unknown)")
	return tbl.Write(w)
}

// Table4 reproduces CLK mean tour quality per kicking strategy at an early
// checkpoint (budget/100) and at the time limit, as distance to the HK
// lower bound.
func (b *Bench) Table4(w io.Writer) error {
	specs := b.table3Specs()
	early := b.Opt.CLKBudget / 100
	tbl := &TextTable{
		Title: fmt.Sprintf("Table 4: ABCC-CLK mean distance to HK bound after %v and %v", early, b.Opt.CLKBudget),
		Header: []string{"instance",
			"rnd early", "rnd late", "geo early", "geo late",
			"close early", "close late", "walk early", "walk late"},
	}
	for _, s := range specs {
		hk := b.HKBound(s)
		row := []interface{}{s.Paper}
		for _, kick := range clk.AllKickStrategies {
			runs := b.CLKRuns(s, kick)
			row = append(row, fmtGap(MeanAt(runs, early), hk), fmtGap(MeanFinal(runs), hk))
		}
		tbl.AddRow(row...)
	}
	tbl.Note("OPT* marks averages within 0.0005%% of the HK bound (bound met)")
	return tbl.Write(w)
}

// Table5 is Table4's distributed counterpart: DistCLK(8) quality at
// budget/100 and at the per-node time limit (per-node CPU axis).
func (b *Bench) Table5(w io.Writer) error {
	specs := b.table3Specs()
	perNode := b.Opt.DistBudget()
	early := perNode / 100
	tbl := &TextTable{
		Title: fmt.Sprintf("Table 5: DistCLK(%d) mean distance to HK bound after %v and %v per node",
			b.Opt.Nodes, early, perNode),
		Header: []string{"instance",
			"rnd early", "rnd late", "geo early", "geo late",
			"close early", "close late", "walk early", "walk late"},
	}
	for _, s := range specs {
		hk := b.HKBound(s)
		row := []interface{}{s.Paper}
		for _, kick := range clk.AllKickStrategies {
			runs, _ := b.DistRuns(s, b.Opt.Nodes, perNode, kick)
			row = append(row, fmtGap(MeanAt(runs, early), hk), fmtGap(MeanFinal(runs), hk))
		}
		tbl.AddRow(row...)
	}
	tbl.Note("compare against Table 4: the distributed variant reaches CLK's final quality with a tenth of the per-node time")
	return tbl.Write(w)
}

// Figure2 regenerates the convergence plots: (a,b) CLK tour length vs CPU
// time for the four kicking strategies; (c,d) DistCLK(8) vs plain CLK with
// the Random-walk kick. Traces go to CSV when OutDir is set; a checkpoint
// table is printed either way.
func (b *Bench) Figure2(w io.Writer) error {
	specs := b.instancesFor([]string{"fl1577", "sw24978"})
	for _, s := range specs {
		hk := b.HKBound(s)
		var all []Series

		tbl := &TextTable{
			Title:  fmt.Sprintf("Figure 2 (%s): mean distance to HK bound over CPU time", s.Paper),
			Header: []string{"time", "random", "geometric", "close", "random-walk", "DistCLK(8)"},
		}
		checkpoints := Checkpoints(b.Opt.CLKBudget, 6)
		distRuns, _ := b.DistRuns(s, b.Opt.Nodes, b.Opt.DistBudget(), clk.KickRandomWalk)
		kickRuns := map[clk.KickStrategy][]Series{}
		for _, kick := range clk.AllKickStrategies {
			kickRuns[kick] = b.CLKRuns(s, kick)
			for i, r := range kickRuns[kick] {
				r.Label = fmt.Sprintf("%s/CLK-%s/run%d", s.Paper, kick, i)
				all = append(all, r)
			}
		}
		for i, r := range distRuns {
			r.Label = fmt.Sprintf("%s/DistCLK8/run%d", s.Paper, i)
			all = append(all, r)
		}
		for _, cp := range checkpoints {
			row := []interface{}{fmtSecs(cp)}
			for _, kick := range clk.AllKickStrategies {
				row = append(row, fmtGap(MeanAt(kickRuns[kick], cp), hk))
			}
			row = append(row, fmtGap(MeanAt(distRuns, cp), hk))
			tbl.AddRow(row...)
		}
		tbl.Note("DistCLK time axis is per-node CPU; its budget ends at %v", b.Opt.DistBudget())
		if err := tbl.Write(w); err != nil {
			return err
		}
		if err := b.writeCSV(fmt.Sprintf("figure2_%s.csv", s.Paper), all); err != nil {
			return err
		}
	}
	return nil
}

// Figure3 regenerates the parallelization plots: DistCLK with 8 nodes vs 1
// node vs plain CLK on the fl3795 and fi10639 stand-ins.
func (b *Bench) Figure3(w io.Writer) error {
	specs := b.instancesFor([]string{"fl3795", "fi10639"})
	for _, s := range specs {
		hk := b.HKBound(s)
		clkRuns := b.CLKRuns(s, clk.KickRandomWalk)
		one, _ := b.DistRuns(s, 1, b.Opt.CLKBudget, clk.KickRandomWalk)
		eight, _ := b.DistRuns(s, b.Opt.Nodes, b.Opt.CLKBudget/time.Duration(b.Opt.Nodes), clk.KickRandomWalk)

		tbl := &TextTable{
			Title:  fmt.Sprintf("Figure 3 (%s): mean distance to HK bound over per-node CPU time", s.Paper),
			Header: []string{"time", "ABCC-CLK", "DistCLK(1)", fmt.Sprintf("DistCLK(%d)", b.Opt.Nodes)},
		}
		for _, cp := range Checkpoints(b.Opt.CLKBudget, 6) {
			tbl.AddRow(fmtSecs(cp),
				fmtGap(MeanAt(clkRuns, cp), hk),
				fmtGap(MeanAt(one, cp), hk),
				fmtGap(MeanAt(eight, cp), hk))
		}
		tbl.Note("all configurations receive the same total CPU; the 8-node curve ends at %v per node",
			b.Opt.CLKBudget/time.Duration(b.Opt.Nodes))
		if err := tbl.Write(w); err != nil {
			return err
		}
		var all []Series
		label := func(name string, runs []Series) {
			for i, r := range runs {
				r.Label = fmt.Sprintf("%s/%s/run%d", s.Paper, name, i)
				all = append(all, r)
			}
		}
		label("CLK", clkRuns)
		label("Dist1", one)
		label("Dist8", eight)
		if err := b.writeCSV(fmt.Sprintf("figure3_%s.csv", s.Paper), all); err != nil {
			return err
		}
	}
	return nil
}

// Messages reproduces the §4 communication analysis: broadcasts per run,
// messages per node, and the early-phase concentration of traffic.
func (b *Bench) Messages(w io.Writer) error {
	s, err := b.Opt.SpecByName("sw24978")
	if err != nil {
		return err
	}
	_, results := b.DistRuns(s, b.Opt.Nodes, b.Opt.DistBudget(), clk.KickRandomWalk)
	tbl := &TextTable{
		Title:  fmt.Sprintf("Messages (%s, %d nodes): broadcast statistics", s.Paper, b.Opt.Nodes),
		Header: []string{"run", "broadcasts", "per node", "in first 20% of time", "first 10 sent by"},
	}
	var totalBroadcasts int64
	for i, res := range results {
		// The broadcast ledger is the broadcast-sent slice of the obs event
		// stream (already ordered by run-clock offset).
		var sent []obs.Event
		for _, e := range res.Events {
			if e.Kind == obs.KindBroadcastSent {
				sent = append(sent, e)
			}
		}
		early := 0
		cutoff := time.Duration(float64(res.Elapsed) * 0.2)
		for _, e := range sent {
			if e.At <= cutoff {
				early++
			}
		}
		frac := "-"
		if len(sent) > 0 {
			frac = fmt.Sprintf("%.0f%%", float64(early)/float64(len(sent))*100)
		}
		// The paper: "the first 10 messages of a run were sent by nodes
		// that had consumed less than 1116 CPU seconds" — report the time
		// by which the 10th broadcast happened, as a fraction of the run.
		tenth := "-"
		if len(sent) >= 10 {
			tenth = fmt.Sprintf("%.0f%% of run", float64(sent[9].At)/float64(res.Elapsed)*100)
		}
		tbl.AddRow(i, len(sent), fmt.Sprintf("%.1f", float64(len(sent))/float64(b.Opt.Nodes)), frac, tenth)
		totalBroadcasts += int64(len(sent))
	}
	tbl.Note("average %.1f broadcasts per run; the paper reports 84.9 on sw24978 with most sent early",
		float64(totalBroadcasts)/float64(len(results)))
	return tbl.Write(w)
}

// Variator reproduces the §4.2.1 analysis: the NumPerturbations escalation
// and restart timeline of a distributed run. The paper narrates fi10639
// runs; the drilling stand-in is used here because it produces the long
// stagnation phases that engage the escalation at compressed time scales.
func (b *Bench) Variator(w io.Writer) error {
	s, err := b.Opt.SpecByName("fl3795")
	if err != nil {
		return err
	}
	_, results := b.DistRuns(s, b.Opt.Nodes, b.Opt.DistBudget(), clk.KickRandomWalk)
	tbl := &TextTable{
		Title:  fmt.Sprintf("Variator strength (%s): per-run event summary", s.Paper),
		Header: []string{"run", "improvements", "max perturb level", "level-ups", "restarts"},
	}
	for i, res := range results {
		improves, levelUps, restarts := 0, 0, 0
		maxLevel := int64(1)
		for _, e := range res.Events {
			switch e.Kind {
			case obs.KindImprove, obs.KindImproveReceived:
				improves++
			case obs.KindPerturbLevel:
				if e.Value > 1 {
					levelUps++
				}
				if e.Value > maxLevel {
					maxLevel = e.Value
				}
			case obs.KindRestart:
				restarts++
			}
		}
		tbl.AddRow(i, improves, maxLevel, levelUps, restarts)
	}
	cv, cr := b.Opt.CV, b.Opt.CR
	if cv == 0 {
		cv = 64
	}
	if cr == 0 {
		cr = 256
	}
	tbl.Note("levels follow NumPerturbations = NumNoImprovements/%d + 1; restart when the counter exceeds %d", cv, cr)
	return tbl.Write(w)
}

// instancesFor resolves a list of paper names against the testbed.
func (b *Bench) instancesFor(names []string) []Spec {
	var out []Spec
	for _, n := range names {
		if s, err := b.Opt.SpecByName(n); err == nil {
			out = append(out, s)
		}
	}
	if b.Opt.MaxInstances > 0 && len(out) > b.Opt.MaxInstances {
		out = out[:b.Opt.MaxInstances]
	}
	return out
}

// table3Specs: the paper's Table 3 covers the small instances (<= fnl4461).
func (b *Bench) table3Specs() []Spec {
	names := []string{"C1k.1", "E1k.1", "fl1577", "pr2392", "pcb3038", "fl3795", "fnl4461"}
	return b.instancesFor(names)
}

func (b *Bench) writeCSV(name string, series []Series) error {
	if b.Opt.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(b.Opt.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(b.Opt.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSV(f, series)
}

type lkhRow struct {
	len int64
	dur time.Duration
}

func (b *Bench) runLKH(in *tsp.Instance, deadline time.Time) lkhRow {
	res := lkhSolve(in, deadline, b.Opt.Seed)
	return lkhRow{res.Length, res.Elapsed}
}
