package exact

import (
	"fmt"
	"math"

	"distclk/internal/tsp"
)

// MaxHeldKarpN bounds the DP solver; the table is O(n * 2^n).
const MaxHeldKarpN = 20

// HeldKarp computes an optimal tour with the Held-Karp DP. It returns the
// tour (starting at city 0) and its length.
func HeldKarp(in *tsp.Instance) (tsp.Tour, int64, error) {
	n := in.N()
	if n > MaxHeldKarpN {
		return nil, 0, fmt.Errorf("exact: n=%d exceeds Held-Karp limit %d", n, MaxHeldKarpN)
	}
	if n == 0 {
		return tsp.Tour{}, 0, nil
	}
	if n == 1 {
		return tsp.Tour{0}, 0, nil
	}
	dist := in.DistFunc()
	// dp[mask][j]: shortest path starting at 0, visiting exactly the set
	// mask (which always contains 0 and j), ending at j.
	size := 1 << uint(n)
	const inf = math.MaxInt64 / 4
	dp := make([]int64, size*n)
	parent := make([]int32, size*n)
	for i := range dp {
		dp[i] = inf
		parent[i] = -1
	}
	dp[(1<<0)*n+0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) == 0 || dp[mask*n+j] >= inf {
				continue
			}
			base := dp[mask*n+j]
			for k := 1; k < n; k++ {
				if mask&(1<<uint(k)) != 0 {
					continue
				}
				nm := mask | 1<<uint(k)
				cand := base + dist(int32(j), int32(k))
				if cand < dp[nm*n+k] {
					dp[nm*n+k] = cand
					parent[nm*n+k] = int32(j)
				}
			}
		}
	}
	full := size - 1
	bestLen := int64(inf)
	bestEnd := -1
	for j := 1; j < n; j++ {
		cand := dp[full*n+j] + dist(int32(j), 0)
		if cand < bestLen {
			bestLen = cand
			bestEnd = j
		}
	}
	// Reconstruct.
	tour := make(tsp.Tour, n)
	mask, j := full, int32(bestEnd)
	for i := n - 1; i >= 0; i-- {
		tour[i] = j
		p := parent[mask*n+int(j)]
		mask &^= 1 << uint(j)
		j = p
	}
	return tour, bestLen, nil
}

// MaxBruteForceN bounds BruteForce; enumeration is O((n-1)!).
const MaxBruteForceN = 10

// BruteForce enumerates all tours (city 0 fixed first) and returns an
// optimal one with its length.
func BruteForce(in *tsp.Instance) (tsp.Tour, int64, error) {
	n := in.N()
	if n > MaxBruteForceN {
		return nil, 0, fmt.Errorf("exact: n=%d exceeds brute-force limit %d", n, MaxBruteForceN)
	}
	if n <= 1 {
		return tsp.IdentityTour(n), 0, nil
	}
	perm := make([]int32, 0, n)
	used := make([]bool, n)
	perm = append(perm, 0)
	used[0] = true
	best := tsp.IdentityTour(n)
	bestLen := best.Length(in)
	dist := in.DistFunc()
	var rec func(partial int64)
	rec = func(partial int64) {
		if partial >= bestLen {
			return // prune: extensions cannot shrink a nonneg-metric path
		}
		if len(perm) == n {
			total := partial + dist(perm[n-1], 0)
			if total < bestLen {
				bestLen = total
				copy(best, perm)
			}
			return
		}
		last := perm[len(perm)-1]
		for c := int32(1); c < int32(n); c++ {
			if used[c] {
				continue
			}
			used[c] = true
			perm = append(perm, c)
			rec(partial + dist(last, c))
			perm = perm[:len(perm)-1]
			used[c] = false
		}
	}
	rec(0)
	return best, bestLen, nil
}
