package exact

import (
	"testing"

	"distclk/internal/geom"
	"distclk/internal/tsp"
)

func TestHeldKarpMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 5 + int(seed)%5
		in := tsp.Generate(tsp.FamilyUniform, n, seed)
		dpTour, dpLen, err := HeldKarp(in)
		if err != nil {
			t.Fatal(err)
		}
		bfTour, bfLen, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		if dpLen != bfLen {
			t.Fatalf("seed %d n=%d: DP %d != brute force %d", seed, n, dpLen, bfLen)
		}
		if err := dpTour.Validate(n); err != nil {
			t.Fatal(err)
		}
		if err := bfTour.Validate(n); err != nil {
			t.Fatal(err)
		}
		if dpTour.Length(in) != dpLen {
			t.Fatalf("DP tour length %d != reported %d", dpTour.Length(in), dpLen)
		}
	}
}

func TestHeldKarpUnitSquare(t *testing.T) {
	// Four corners of a 10x10 square: the optimal tour is the perimeter.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}
	in := tsp.New("square", geom.Euc2D, pts)
	_, l, err := HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	if l != 40 {
		t.Fatalf("square optimum %d, want 40", l)
	}
}

func TestSizeLimits(t *testing.T) {
	big := tsp.Generate(tsp.FamilyUniform, MaxHeldKarpN+1, 1)
	if _, _, err := HeldKarp(big); err == nil {
		t.Error("HeldKarp accepted oversized instance")
	}
	big2 := tsp.Generate(tsp.FamilyUniform, MaxBruteForceN+1, 1)
	if _, _, err := BruteForce(big2); err == nil {
		t.Error("BruteForce accepted oversized instance")
	}
}

func TestDegenerateSizes(t *testing.T) {
	for n := 0; n <= 2; n++ {
		in := tsp.Generate(tsp.FamilyUniform, n, 1)
		if _, _, err := HeldKarp(in); n > 0 && err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	one := tsp.Generate(tsp.FamilyUniform, 1, 1)
	tour, l, err := HeldKarp(one)
	if err != nil || l != 0 || len(tour) != 1 {
		t.Errorf("n=1: %v %d %v", tour, l, err)
	}
}
