// Package exact provides exact TSP solvers for tiny instances, used as
// test oracles: Held-Karp dynamic programming (n <= ~20) and brute-force
// enumeration (n <= ~10). The heuristic stack (LK, CLK, the distributed
// EA) is validated against these optima in the test suite, anchoring the
// reproduction's quality measurements to ground truth.
package exact
