package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad, the built-in load-test harness behind
// `solved -loadtest`. Zero values take the documented defaults.
type LoadConfig struct {
	// Workers lists the worker-pool sizes to sweep — the multi-core
	// scaling column of the BENCH_PR8.json schema (default [1]).
	Workers []int `json:"workers"`
	// Clients is the number of concurrent clients per scenario
	// (default 4).
	Clients int `json:"clients"`
	// Requests is the total request count per scenario (default 32).
	Requests int `json:"requests"`
	// N is the generated instance size (default 200).
	N int `json:"n"`
	// MaxKicks bounds each solve by kick count so run time tracks load,
	// not wall-clock budgets (default 30).
	MaxKicks int64 `json:"max_kicks"`
	// QueueDepth is the service queue bound per priority class
	// (default 2*Clients, so bursts shed load visibly but retries land).
	QueueDepth int `json:"queue_depth"`
}

func (c LoadConfig) withDefaults() LoadConfig {
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	if c.Clients < 1 {
		c.Clients = 4
	}
	if c.Requests < 1 {
		c.Requests = 32
	}
	if c.N < minCities {
		c.N = 200
	}
	if c.MaxKicks < 1 {
		c.MaxKicks = 30
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Clients
	}
	return c
}

// LatencyMS summarizes one scenario's request latencies.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Scenario is one load-test cell: a worker count crossed with a traffic
// shape.
type Scenario struct {
	// Name is the traffic shape: "distinct" (every request a fresh
	// instance — pure solve throughput) or "repeat" (one instance
	// resubmitted — cache-hit path).
	Name          string    `json:"name"`
	Workers       int       `json:"workers"`
	Clients       int       `json:"clients"`
	Requests      int       `json:"requests"`
	Completed     int       `json:"completed"`
	Rejected      int       `json:"rejected"`
	Errors        int       `json:"errors"`
	CacheHits     int       `json:"cache_hits"`
	ThroughputRPS float64   `json:"throughput_rps"`
	Latency       LatencyMS `json:"latency_ms"`
}

// Report is the BENCH_PR8.json document (see results/README.md).
type Report struct {
	SchemaVersion int        `json:"schema_version"`
	GeneratedAt   string     `json:"generated_at"`
	GoVersion     string     `json:"go_version"`
	GOOS          string     `json:"goos"`
	GOARCH        string     `json:"goarch"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	NumCPU        int        `json:"num_cpu"`
	Note          string     `json:"note,omitempty"`
	Config        LoadConfig `json:"config"`
	Scenarios     []Scenario `json:"scenarios"`
}

// RunLoad boots one ephemeral service per configured worker count,
// drives it with concurrent HTTP clients over a real TCP listener, and
// reports latency percentiles and throughput per scenario.
func RunLoad(ctx context.Context, cfg LoadConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Config:        cfg,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: the worker-scaling column cannot show parallel speedup here; re-record on multi-core hardware for the scaling comparison"
	}
	for _, workers := range cfg.Workers {
		for _, shape := range []string{"distinct", "repeat"} {
			sc, err := runScenario(ctx, cfg, workers, shape)
			if err != nil {
				return nil, err
			}
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}
	return rep, nil
}

// runScenario boots a fresh service (empty cache, cold pool) and pushes
// cfg.Requests requests through cfg.Clients concurrent clients.
func runScenario(ctx context.Context, cfg LoadConfig, workers int, shape string) (Scenario, error) {
	sc := Scenario{Name: shape, Workers: workers, Clients: cfg.Clients, Requests: cfg.Requests}
	srvCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	svc := New(srvCtx, Options{
		Workers:    workers,
		QueueDepth: cfg.QueueDepth,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sc, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	//lint:ignore goroleak bounded by the deferred hs.Close below: Serve returns when the listener is torn down at loadtest exit
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var (
		mu        sync.Mutex
		latencies []float64
	)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < cfg.Requests; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	client := &http.Client{Timeout: 2 * time.Minute}
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				seed := int64(1)
				if shape == "distinct" {
					seed = int64(i + 1)
				}
				body := loadBody(cfg, seed)
				elapsed, hit, rejected, err := oneRequest(ctx, client, base, body)
				mu.Lock()
				sc.Rejected += rejected
				if err != nil {
					sc.Errors++
				} else {
					sc.Completed++
					if hit {
						sc.CacheHits++
					}
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	wall := time.Since(start).Seconds()
	if wall > 0 {
		sc.ThroughputRPS = float64(sc.Completed) / wall
	}
	sc.Latency = summarize(latencies)
	if err := svc.Shutdown(ctx); err != nil {
		return sc, err
	}
	return sc, nil
}

// loadBody builds the request JSON for one synthetic instance: uniform
// random coordinates, deterministic per seed so "repeat" always submits
// identical bytes.
func loadBody(cfg LoadConfig, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	coords := make([][2]float64, cfg.N)
	for i := range coords {
		coords[i] = [2]float64{rng.Float64() * 10000, rng.Float64() * 10000}
	}
	req := SolveRequest{
		Name:   fmt.Sprintf("load-%d", seed),
		Coords: coords,
		Params: SolveParams{Seed: seed, MaxKicks: cfg.MaxKicks, BudgetMS: 30_000},
	}
	body, _ := json.Marshal(req)
	return body
}

// oneRequest POSTs one solve, retrying on 429/503 load-shed responses.
// Latency covers the final, successful attempt only; shed attempts are
// counted separately so the report shows admission pressure.
func oneRequest(ctx context.Context, client *http.Client, base string, body []byte) (ms float64, cacheHit bool, rejected int, err error) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			return 0, false, rejected, err
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, false, rejected, err
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		func() {
			defer resp.Body.Close()
			var out SolveResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
		}()
		switch resp.StatusCode {
		case http.StatusOK:
			return elapsed, resp.Header.Get("X-Cache") == "hit", rejected, err
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
			if attempt > 100 {
				return 0, false, rejected, fmt.Errorf("load: shed %d times, giving up", rejected)
			}
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return 0, false, rejected, ctx.Err()
			}
		default:
			return 0, false, rejected, fmt.Errorf("load: status %d", resp.StatusCode)
		}
	}
}

// summarize sorts and extracts the latency percentiles.
func summarize(ms []float64) LatencyMS {
	if len(ms) == 0 {
		return LatencyMS{}
	}
	sort.Float64s(ms)
	pick := func(p float64) float64 {
		i := int(p*float64(len(ms))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	return LatencyMS{P50: pick(0.50), P95: pick(0.95), P99: pick(0.99), Max: ms[len(ms)-1]}
}
