package serve

import (
	"container/list"
	"sync"
)

// cache is an LRU over marshaled response bodies, keyed by instance
// hash + canonical params. Storing bytes (not structs) is what makes
// repeat submissions byte-identical: a hit replays exactly what the
// first solve wrote.
type cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recent
	m      map[string]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and bumps its recency.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry
// beyond capacity. Re-putting an existing key refreshes it.
func (c *cache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *cache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
