package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"distclk/internal/obs"
)

// wireEvent is the streaming wire form of one solve event, shared by the
// SSE and JSONL formats (the same vocabulary as the obs JSONL traces).
type wireEvent struct {
	AtMS  float64 `json:"at_ms"`
	Kind  string  `json:"kind"`
	Node  int     `json:"node"`
	Value int64   `json:"value,omitempty"`
	From  *int    `json:"from,omitempty"`
}

func toWire(e obs.Event) wireEvent {
	we := wireEvent{
		AtMS:  float64(e.At.Microseconds()) / 1000,
		Kind:  e.Kind.String(),
		Node:  e.Node,
		Value: e.Value,
	}
	if e.From >= 0 {
		from := e.From
		we.From = &from
	}
	return we
}

// handleJobEvents streams a job's progress events until the job reaches
// a terminal state or the client disconnects. Default format is SSE
// (text/event-stream); ?format=jsonl switches to newline-delimited
// JSON. Subscribers attach with a bounded buffer: a stalled client
// loses events (counted in /v1/stats) instead of stalling the solver.
//
// The stream always ends with one final event of kind "job" carrying the
// terminal JobStatus, so consumers need no side-channel poll.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		s.writeError(w, &apiError{http.StatusNotFound, "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, &apiError{http.StatusInternalServerError, "streaming unsupported"})
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Subscribe before inspecting state: a job finishing between the
	// check and the subscription would otherwise lose its terminal
	// notification. A closed broadcaster returns a closed channel, so a
	// finished job falls straight through to the final event.
	sub := j.bcast.Subscribe(sseBuffer)
	defer sub.Cancel()
	for {
		select {
		case e, open := <-sub.Events():
			if !open {
				writeFinal(w, j, jsonl)
				flusher.Flush()
				return
			}
			writeEvent(w, toWire(e), jsonl)
			flusher.Flush()
		case <-r.Context().Done():
			return // client went away; Cancel detaches the subscription
		}
	}
}

// sseBuffer is each subscriber's event buffer. Snapshot cadence is
// ~10/s and EA-level events are sparse, so 256 rides out multi-second
// client stalls before dropping.
const sseBuffer = 256

func writeEvent(w http.ResponseWriter, we wireEvent, jsonl bool) {
	data, err := json.Marshal(we)
	if err != nil {
		return // plain fields; cannot happen
	}
	if jsonl {
		w.Write(data)
		w.Write([]byte("\n"))
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", we.Kind, data)
}

// writeFinal emits the closing "job" event with the terminal status.
func writeFinal(w http.ResponseWriter, j *job, jsonl bool) {
	data, err := json.Marshal(j.status())
	if err != nil {
		return
	}
	if jsonl {
		w.Write(data)
		w.Write([]byte("\n"))
		return
	}
	fmt.Fprintf(w, "event: job\ndata: %s\n\n", data)
}
