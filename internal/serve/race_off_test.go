//go:build !race

package serve

// raceEnabled gates assertions that depend on sync.Pool determinism;
// see race_on_test.go.
const raceEnabled = false
