package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"distclk/internal/clk"
)

// Admission errors; the HTTP layer maps them to 429 and 503.
var (
	errQueueFull = errors.New("serve: queue full")
	errDraining  = errors.New("serve: draining, not accepting jobs")
)

// pool runs admitted jobs on a fixed set of workers. Two bounded FIFO
// classes implement the priority scheme: workers always prefer
// interactive jobs and fall back to batch. Per-job scratch memory comes
// from a sync.Pool so steady-state traffic recycles the CSR tables and
// LK/kick buffers instead of re-allocating them per job (the refactor
// ROADMAP item 1 flags as in-scope).
type pool struct {
	interactive chan *job
	batch       chan *job
	stop        chan struct{} // closed by shutdown: drain and exit
	wg          sync.WaitGroup
	run         func(ctx context.Context, j *job, sc *clk.Scratch)

	draining atomic.Bool
	active   atomic.Int64
	complete atomic.Int64
	rejected atomic.Int64

	scratch       sync.Pool
	scratchGets   atomic.Int64
	scratchMisses atomic.Int64
}

// newPool starts `workers` goroutines under ctx (the server's root
// context, NOT a request context). run executes one job synchronously.
func newPool(ctx context.Context, workers, depth int, run func(ctx context.Context, j *job, sc *clk.Scratch)) *pool {
	p := &pool{
		interactive: make(chan *job, depth),
		batch:       make(chan *job, depth),
		stop:        make(chan struct{}),
		run:         run,
	}
	// The pool miss counter lives in New: every Get that cannot recycle
	// lands here, so gets - misses = pool hits.
	p.scratch.New = func() any {
		p.scratchMisses.Add(1)
		return new(clk.Scratch)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(ctx)
	}
	return p
}

// enqueue admits j into its priority class without blocking: a full
// queue or a draining pool refuses immediately.
func (p *pool) enqueue(j *job) error {
	if p.draining.Load() {
		p.rejected.Add(1)
		return errDraining
	}
	q := p.interactive
	if j.priority == "batch" {
		q = p.batch
	}
	select {
	case q <- j:
		return nil
	default:
		p.rejected.Add(1)
		return errQueueFull
	}
}

// worker pulls jobs until shutdown, always preferring the interactive
// class. After stop closes it drains both queues empty, then exits —
// queued jobs run to completion during a drain, they are not dropped.
func (p *pool) worker(ctx context.Context) {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.interactive:
			p.execute(ctx, j)
			continue
		default:
		}
		select {
		case j := <-p.interactive:
			p.execute(ctx, j)
		case j := <-p.batch:
			p.execute(ctx, j)
		case <-p.stop:
			for {
				select {
				case j := <-p.interactive:
					p.execute(ctx, j)
				case j := <-p.batch:
					p.execute(ctx, j)
				default:
					return
				}
			}
		}
	}
}

// execute runs one job with pooled scratch. The scratch returns to the
// pool on every path — including deadline-cancelled and failed solves —
// so a cancelled job frees its buffers for the next one.
func (p *pool) execute(ctx context.Context, j *job) {
	p.active.Add(1)
	defer p.active.Add(-1)
	defer p.complete.Add(1)
	p.scratchGets.Add(1)
	sc := p.scratch.Get().(*clk.Scratch)
	defer p.scratch.Put(sc)
	p.run(ctx, j, sc)
}

// beginDrain stops admissions and tells workers to exit once the queues
// are empty.
func (p *pool) beginDrain() {
	if p.draining.CompareAndSwap(false, true) {
		close(p.stop)
	}
}

// wait blocks until every worker has exited or ctx is done.
func (p *pool) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sweepQueued cancels every job still sitting in the queues — the
// shutdown path after a drain deadline expired.
func (p *pool) sweepQueued() {
	for {
		select {
		case j := <-p.interactive:
			j.requestCancel()
		case j := <-p.batch:
			j.requestCancel()
		default:
			return
		}
	}
}
