package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"
)

// testServer boots a service over httptest, tearing both down with the
// test.
func testServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	svc := New(ctx, opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
		defer scancel()
		svc.Shutdown(sctx)
		cancel()
	})
	return svc, ts
}

// reqBody builds a solve request over n deterministic random cities.
func reqBody(t *testing.T, n int, seed int64, params SolveParams, priority string) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coords := make([][2]float64, n)
	for i := range coords {
		coords[i] = [2]float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	body, err := json.Marshal(SolveRequest{
		Name:     fmt.Sprintf("test-%d-%d", n, seed),
		Coords:   coords,
		Priority: priority,
		Params:   params,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func checkTour(t *testing.T, raw []byte, n int) SolveResponse {
	t.Helper()
	var out SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad response %q: %v", raw, err)
	}
	if out.Status != stateDone {
		t.Fatalf("status %q, want done (error: %s)", out.Status, out.Error)
	}
	if len(out.Tour) != n || out.Length <= 0 {
		t.Fatalf("tour len %d length %d, want %d cities and positive length", len(out.Tour), out.Length, n)
	}
	seen := make([]bool, n)
	for _, c := range out.Tour {
		if c < 0 || int(c) >= n || seen[c] {
			t.Fatalf("tour is not a permutation of 0..%d", n-1)
		}
		seen[c] = true
	}
	return out
}

// The core e2e path: solve returns a valid tour; the identical repeat
// submission is a byte-identical cache hit that skips the queue.
func TestSolveEndToEndAndCacheHit(t *testing.T) {
	svc, ts := testServer(t, Options{})
	body := reqBody(t, 60, 1, SolveParams{MaxKicks: 10}, "")

	resp1, raw1 := post(t, ts.URL+"/v1/solve", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, raw1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first submission X-Cache %q, want miss", got)
	}
	checkTour(t, raw1, 60)

	resp2, raw2 := post(t, ts.URL+"/v1/solve", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat submission X-Cache %q, want hit", got)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cached result not byte-identical:\n%s\n%s", raw1, raw2)
	}
	if hits, _, _ := svc.cache.stats(); hits != 1 {
		t.Fatalf("cache hits %d, want 1", hits)
	}
}

// Two uploads of the same geometry under different names and input
// forms (inline coords vs TSPLIB text) must share one cache entry: the
// hash covers content, not labels.
func TestCacheKeyIsContentAddressed(t *testing.T) {
	_, ts := testServer(t, Options{})
	coords := [][2]float64{{0, 0}, {10, 0}, {20, 0}, {20, 10}, {20, 20}, {10, 20}, {0, 20}, {0, 10}}
	params := SolveParams{MaxKicks: 5}
	inline, _ := json.Marshal(SolveRequest{Name: "ring-a", Coords: coords, Params: params})

	var tsplib strings.Builder
	tsplib.WriteString("NAME : ring-b\nTYPE : TSP\nDIMENSION : 8\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n")
	for i, c := range coords {
		fmt.Fprintf(&tsplib, "%d %g %g\n", i+1, c[0], c[1])
	}
	tsplib.WriteString("EOF\n")
	upload, _ := json.Marshal(SolveRequest{TSPLIB: tsplib.String(), Params: params})

	resp1, raw1 := post(t, ts.URL+"/v1/solve", inline)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("inline status %d: %s", resp1.StatusCode, raw1)
	}
	resp2, raw2 := post(t, ts.URL+"/v1/solve", upload)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d: %s", resp2.StatusCode, raw2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("TSPLIB upload of identical geometry X-Cache %q, want hit", got)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("content-addressed replay not byte-identical")
	}
}

func submitAsync(t *testing.T, url string, body []byte) JobStatus {
	t.Helper()
	resp, raw := post(t, url+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var js JobStatus
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}
	return js
}

func jobStatus(t *testing.T, url, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

func waitState(t *testing.T, url, id string, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		js := jobStatus(t, url, id)
		for _, w := range want {
			if js.Status == w {
				return js
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return JobStatus{}
}

func cancelJob(t *testing.T, url, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// With one worker and a depth-1 queue, a third concurrent job must be
// shed with 429 + Retry-After — admission control fails fast instead of
// stacking goroutines.
func TestAdmissionControl429(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1, QueueDepth: 1})
	slow := SolveParams{BudgetMS: 10_000}

	running := submitAsync(t, ts.URL, reqBody(t, 400, 1, slow, ""))
	waitState(t, ts.URL, running.JobID, stateRunning)
	queued := submitAsync(t, ts.URL, reqBody(t, 400, 2, slow, ""))

	resp, _ := post(t, ts.URL+"/v1/solve", reqBody(t, 400, 3, slow, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	cancelJob(t, ts.URL, running.JobID)
	cancelJob(t, ts.URL, queued.JobID)
	waitState(t, ts.URL, running.JobID, stateCancelled)
	waitState(t, ts.URL, queued.JobID, stateCancelled, stateDone)
}

// Workers must prefer the interactive class: with the single worker
// busy and one job queued per class, the interactive one runs first.
func TestInteractivePriority(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1, QueueDepth: 2})
	slow := SolveParams{BudgetMS: 10_000}
	running := submitAsync(t, ts.URL, reqBody(t, 400, 1, slow, ""))
	waitState(t, ts.URL, running.JobID, stateRunning)

	batch := submitAsync(t, ts.URL, reqBody(t, 400, 2, SolveParams{MaxKicks: 5}, "batch"))
	inter := submitAsync(t, ts.URL, reqBody(t, 400, 3, SolveParams{BudgetMS: 2_000}, "interactive"))
	cancelJob(t, ts.URL, running.JobID)

	got := waitState(t, ts.URL, inter.JobID, stateRunning, stateDone)
	if got.Status == stateRunning {
		if bs := jobStatus(t, ts.URL, batch.JobID); bs.Status != stateQueued {
			t.Fatalf("batch job %q while interactive running, want queued", bs.Status)
		}
	}
	cancelJob(t, ts.URL, inter.JobID)
	waitState(t, ts.URL, batch.JobID, stateDone)
	waitState(t, ts.URL, inter.JobID, stateDone, stateCancelled)
}

// SSE must deliver progress events while the solve is still running,
// then a terminal "job" event.
func TestEventStreamMidSolve(t *testing.T) {
	_, ts := testServer(t, Options{})
	js := submitAsync(t, ts.URL, reqBody(t, 400, 4, SolveParams{BudgetMS: 5_000}, ""))

	resp, err := http.Get(ts.URL + "/v1/jobs/" + js.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sawMidSolve := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if strings.Contains(line, `"kind"`) {
			// A progress event arrived over the live stream; the job must
			// still be running for it to count as mid-solve.
			if jobStatus(t, ts.URL, js.JobID).Status == stateRunning {
				sawMidSolve = true
				cancelJob(t, ts.URL, js.JobID)
			}
		}
		if strings.Contains(line, `"job_id"`) {
			break // terminal event
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawMidSolve {
		t.Fatalf("no progress event observed while the job was running")
	}
}

// The JSONL stream variant carries the same events as parseable lines.
func TestEventStreamJSONL(t *testing.T) {
	_, ts := testServer(t, Options{})
	js := submitAsync(t, ts.URL, reqBody(t, 200, 5, SolveParams{MaxKicks: 20, BudgetMS: 5_000}, ""))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + js.JobID + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatalf("empty JSONL stream")
	}
}

// A subscriber that disconnects mid-stream must not leak goroutines or
// stall the pool: later jobs still run to completion.
func TestStreamClientDisconnectNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		_, ts := testServer(t, Options{})
		js := submitAsync(t, ts.URL, reqBody(t, 400, 6, SolveParams{BudgetMS: 3_000}, ""))
		waitState(t, ts.URL, js.JobID, stateRunning)

		// Open the stream, read a little, then slam the connection shut.
		resp, err := http.Get(ts.URL + "/v1/jobs/" + js.JobID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		resp.Body.Read(buf)
		resp.Body.Close()
		cancelJob(t, ts.URL, js.JobID)
		waitState(t, ts.URL, js.JobID, stateCancelled, stateDone)

		// The pool must not be stalled by the vanished subscriber.
		resp2, raw := post(t, ts.URL+"/v1/solve", reqBody(t, 60, 7, SolveParams{MaxKicks: 5}, ""))
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("post-disconnect solve status %d: %s", resp2.StatusCode, raw)
		}
		checkTour(t, raw, 60)
	}()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// A cancelled job must return its pooled scratch for reuse: with one
// worker, the follow-up jobs hit the scratch pool instead of allocating
// fresh buffers.
func TestCancelledJobFreesScratchForReuse(t *testing.T) {
	// sync.Pool is emptied by GC; pin it off so the hit/miss counts are
	// deterministic rather than dependent on collection timing.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	svc, ts := testServer(t, Options{Workers: 1})
	js := submitAsync(t, ts.URL, reqBody(t, 400, 8, SolveParams{BudgetMS: 10_000}, ""))
	waitState(t, ts.URL, js.JobID, stateRunning)
	cancelJob(t, ts.URL, js.JobID)
	waitState(t, ts.URL, js.JobID, stateCancelled)

	for seed := int64(20); seed < 23; seed++ {
		resp, raw := post(t, ts.URL+"/v1/solve", reqBody(t, 60, seed, SolveParams{MaxKicks: 5}, ""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follow-up solve status %d: %s", resp.StatusCode, raw)
		}
	}
	gets, misses := svc.pool.scratchGets.Load(), svc.pool.scratchMisses.Load()
	if gets != 4 {
		t.Fatalf("scratch gets %d, want 4", gets)
	}
	// Under -race the runtime drops a random fraction of sync.Pool Puts
	// on purpose, so the exact reuse count only holds in normal builds.
	if !raceEnabled && misses != 1 {
		t.Fatalf("scratch misses %d, want 1 (steady-state jobs must reuse the pooled scratch)", misses)
	}
}

// Shutdown must stop admissions (503 + Retry-After) and drain queued
// jobs to completion within the deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc := New(ctx, Options{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	quick := SolveParams{MaxKicks: 5, BudgetMS: 5_000}
	a := submitAsync(t, ts.URL, reqBody(t, 200, 9, quick, ""))
	b := submitAsync(t, ts.URL, reqBody(t, 200, 10, quick, "batch"))

	done := make(chan error, 1)
	go func() {
		sctx, scancel := context.WithTimeout(ctx, 20*time.Second)
		defer scancel()
		done <- svc.Shutdown(sctx)
	}()

	// Admissions must close promptly once draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts.URL+"/v1/solve", reqBody(t, 60, 11, quick, ""))
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admissions still open after Shutdown began (status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{a.JobID, b.JobID} {
		if js := jobStatus(t, ts.URL, id); js.Status != stateDone {
			t.Fatalf("job %s state %q after drain, want done", id, js.Status)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := testServer(t, Options{MaxN: 500})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both forms", `{"coords":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7]],"tsplib":"NAME : x"}`},
		{"bad metric", `{"coords":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7]],"metric":"hyperbolic"}`},
		{"too small", `{"coords":[[0,0],[1,1],[2,2]]}`},
		{"bad priority", `{"coords":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7]],"priority":"turbo"}`},
		{"bad kick", `{"coords":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7]],"params":{"kick":"sideways"}}`},
		{"budget too large", `{"coords":[[0,0],[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7]],"params":{"budget_ms":99999999}}`},
		{"unknown field", `{"coordz":[[0,0]]}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts.URL+"/v1/solve", []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
		}
	}
	if resp, _ := post(t, ts.URL+"/v1/solve", reqBody(t, 600, 1, SolveParams{}, "")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized instance: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v %d, want 404", err, resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := testServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	post(t, ts.URL+"/v1/solve", reqBody(t, 60, 30, SolveParams{MaxKicks: 5}, ""))
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Workers != 1 || st.ScratchGets != 1 {
		t.Fatalf("stats %+v, want one completed job on one worker", st)
	}
}

// The params canonicalizer must treat spelled-out defaults and zero
// values identically, and distinct seeds as distinct keys.
func TestParamsCanonicalization(t *testing.T) {
	opt := Options{}.withDefaults()
	zero, err := SolveParams{}.normalize(opt)
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := SolveParams{Kick: "random-walk", Candidates: "auto", Seed: 1, BudgetMS: opt.DefaultBudget.Milliseconds()}.normalize(opt)
	if err != nil {
		t.Fatal(err)
	}
	if zero.canonical() != spelled.canonical() {
		t.Fatalf("defaults canonicalize differently:\n%s\n%s", zero.canonical(), spelled.canonical())
	}
	other, _ := SolveParams{Seed: 2}.normalize(opt)
	if zero.canonical() == other.canonical() {
		t.Fatalf("different seeds share a canonical key")
	}
}
