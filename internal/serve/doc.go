// Package serve is the multi-tenant solve service: a stdlib-only JSON
// HTTP API that accepts TSP solve jobs, runs them on a bounded worker
// pool over the root distclk Solver, streams per-job progress from the
// internal/obs event spine as SSE or JSONL, and caches completed results
// by instance hash + canonicalized parameters so repeat submissions
// return instantly and byte-identically (ROADMAP item 1).
//
// Request flow: admission → queue → pool → cache.
//
//   - Admission: a draining server refuses new jobs with 503; a full
//     priority queue refuses with 429 + Retry-After. Admission control is
//     non-blocking — a burst beyond queue capacity fails fast instead of
//     stacking goroutines.
//   - Queue: two bounded FIFO classes, "interactive" and "batch". Workers
//     always prefer interactive jobs; batch jobs run when no interactive
//     work is queued.
//   - Pool: a fixed set of worker goroutines, each solving one job at a
//     time with per-job scratch memory (CSR candidate tables, LK buffers,
//     kick buffers) drawn from a sync.Pool so steady-state traffic reuses
//     buffers instead of re-allocating them per job.
//   - Cache: an LRU over marshaled response bodies keyed by the SHA-256
//     instance hash plus the canonical parameter string; a hit replays
//     the stored bytes without touching the queue.
//
// Every job derives its context from the root context handed to New —
// not from the submitting HTTP request — so a client that disconnects
// after submission does not cancel a solve whose result is about to be
// cached. DELETE /v1/jobs/{id} cancels explicitly; Shutdown stops
// admissions, drains the queues within a deadline, then force-cancels.
//
//distlint:ctx
package serve
