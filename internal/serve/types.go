package serve

import (
	"fmt"
	"strings"
	"time"

	"distclk/internal/geom"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"

	"distclk/internal/clk"
)

// SolveParams selects the solver configuration for one job. The zero
// value means "service defaults"; normalize resolves them so two
// requests that spell the defaults differently share one cache entry.
type SolveParams struct {
	// Kick names the double-bridge kicking strategy (default random-walk).
	Kick string `json:"kick,omitempty"`
	// Candidates names the candidate-set strategy (default auto).
	Candidates string `json:"candidates,omitempty"`
	// Seed fixes the random seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// BudgetMS bounds the solve duration in milliseconds (default and cap
	// come from the service Options).
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// MaxKicks bounds the solve by kick count; 0 = time-bounded only.
	MaxKicks int64 `json:"max_kicks,omitempty"`
	// Target stops the solve at this tour length; 0 = none.
	Target int64 `json:"target,omitempty"`
	// RelaxDepth sets the relaxed-gain depth; nil follows the candidate
	// strategy's recommendation.
	RelaxDepth *int `json:"relax_depth,omitempty"`
}

// normalize fills defaults and validates ranges against the service
// limits, returning the resolved params used for both solving and cache
// keying.
func (p SolveParams) normalize(opt Options) (SolveParams, error) {
	if p.Kick == "" {
		p.Kick = "random-walk"
	}
	if _, err := clk.ParseKick(p.Kick); err != nil {
		return p, err
	}
	if p.Candidates == "" {
		p.Candidates = "auto"
	}
	if p.Candidates != "auto" {
		if _, err := neighbor.ByName(p.Candidates); err != nil {
			return p, err
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BudgetMS == 0 {
		p.BudgetMS = opt.DefaultBudget.Milliseconds()
	}
	if p.BudgetMS < 0 {
		return p, fmt.Errorf("negative budget_ms %d", p.BudgetMS)
	}
	if max := opt.MaxBudget.Milliseconds(); p.BudgetMS > max {
		return p, fmt.Errorf("budget_ms %d exceeds the service cap %d", p.BudgetMS, max)
	}
	if p.MaxKicks < 0 {
		return p, fmt.Errorf("negative max_kicks %d", p.MaxKicks)
	}
	if p.Target < 0 {
		return p, fmt.Errorf("negative target %d", p.Target)
	}
	if p.RelaxDepth != nil && *p.RelaxDepth < 0 {
		return p, fmt.Errorf("negative relax_depth %d", *p.RelaxDepth)
	}
	return p, nil
}

// canonical renders the normalized params as the deterministic cache-key
// fragment. Fields are fixed-order key=value pairs, so equal params
// always yield equal strings.
func (p SolveParams) canonical() string {
	relax := "auto"
	if p.RelaxDepth != nil {
		relax = fmt.Sprintf("%d", *p.RelaxDepth)
	}
	return fmt.Sprintf("kick=%s&candidates=%s&seed=%d&budget_ms=%d&max_kicks=%d&target=%d&relax=%s",
		p.Kick, p.Candidates, p.Seed, p.BudgetMS, p.MaxKicks, p.Target, relax)
}

// SolveRequest is the POST body for /v1/solve and /v1/jobs. Exactly one
// of Coords or TSPLIB must carry the instance.
type SolveRequest struct {
	// Name labels the instance in responses; it does not affect solving
	// or caching.
	Name string `json:"name,omitempty"`
	// Coords is the inline form: one [x, y] pair per city.
	Coords [][2]float64 `json:"coords,omitempty"`
	// Metric is the TSPLIB edge-weight type for Coords ("euc2d" default;
	// also ceil2d, att, geo, man2d, max2d).
	Metric string `json:"metric,omitempty"`
	// TSPLIB is the upload form: a complete TSPLIB .tsp file as text.
	TSPLIB string `json:"tsplib,omitempty"`
	// Priority is the admission class: "interactive" (default) or "batch".
	Priority string `json:"priority,omitempty"`
	// Params tunes the solve; zero value = service defaults.
	Params SolveParams `json:"params"`
}

// instance materializes the request's instance and validates its size.
func (r *SolveRequest) instance(maxN int) (*tsp.Instance, error) {
	var in *tsp.Instance
	switch {
	case r.TSPLIB != "" && len(r.Coords) > 0:
		return nil, fmt.Errorf("give either coords or tsplib, not both")
	case r.TSPLIB != "":
		var err error
		in, err = tsp.ReadTSPLIB(strings.NewReader(r.TSPLIB))
		if err != nil {
			return nil, err
		}
	case len(r.Coords) > 0:
		metric, err := geom.ParseMetric(r.Metric)
		if err != nil {
			return nil, err
		}
		pts := make([]geom.Point, len(r.Coords))
		for i, c := range r.Coords {
			pts[i] = geom.Point{X: c[0], Y: c[1]}
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("inline%d", len(pts))
		}
		in = tsp.New(name, metric, pts)
	default:
		return nil, fmt.Errorf("empty request: give coords or tsplib")
	}
	if n := in.N(); n < minCities {
		return nil, fmt.Errorf("instance has %d cities, need at least %d", n, minCities)
	} else if n > maxN {
		return nil, fmt.Errorf("instance has %d cities, service limit is %d", n, maxN)
	}
	return in, nil
}

// minCities is the smallest accepted instance: the double-bridge kick
// rewires four distinct tour positions, and anything this small is
// cheaper to solve client-side anyway.
const minCities = 8

// SolveResponse reports one solved job. Cached replays return these
// bytes verbatim, so the body carries no per-request fields; cache
// status travels in the X-Cache header instead.
type SolveResponse struct {
	Status       string  `json:"status"`
	Name         string  `json:"name,omitempty"`
	N            int     `json:"n"`
	InstanceHash string  `json:"instance_hash"`
	Params       string  `json:"params"`
	Tour         []int32 `json:"tour,omitempty"`
	Length       int64   `json:"length,omitempty"`
	Kicks        int64   `json:"kicks,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} projection of a job.
type JobStatus struct {
	JobID    string         `json:"job_id"`
	Status   string         `json:"status"`
	Priority string         `json:"priority"`
	Result   *SolveResponse `json:"result,omitempty"`
}

// Stats is the GET /v1/stats snapshot.
type Stats struct {
	Workers       int   `json:"workers"`
	Active        int64 `json:"active"`
	QueuedInter   int   `json:"queued_interactive"`
	QueuedBatch   int   `json:"queued_batch"`
	Completed     int64 `json:"completed"`
	Rejected      int64 `json:"rejected"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheEntries  int   `json:"cache_entries"`
	ScratchGets   int64 `json:"scratch_gets"`
	ScratchMisses int64 `json:"scratch_misses"`
	EventsDropped int64 `json:"events_dropped"`
	Draining      bool  `json:"draining"`
}

// parsePriority maps the request class to a queue, defaulting to
// interactive.
func parsePriority(p string) (string, error) {
	switch p {
	case "", "interactive":
		return "interactive", nil
	case "batch":
		return "batch", nil
	}
	return "", fmt.Errorf("unknown priority %q (want interactive or batch)", p)
}

// retryAfterSeconds is the hint sent with 429/503: roughly one default
// budget, the time one queued slot takes to free up.
func retryAfterSeconds(opt Options) int {
	s := int(opt.DefaultBudget / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
