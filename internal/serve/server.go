package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distclk"
	"distclk/internal/clk"
	"distclk/internal/obs"
)

// Options configures the service; zero values take the documented
// defaults.
type Options struct {
	// Workers is the worker-pool size — the number of jobs solved
	// concurrently (default 1).
	Workers int
	// QueueDepth bounds each priority class's queue; an admission beyond
	// it gets 429 (default 8).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 128).
	CacheEntries int
	// MaxN rejects instances above this city count (default 20000).
	MaxN int
	// DefaultBudget is the per-job solve budget when the request does not
	// set budget_ms (default 2s).
	DefaultBudget time.Duration
	// MaxBudget caps the per-job budget a request may ask for
	// (default 30s).
	MaxBudget time.Duration
	// JobsRetained bounds the in-memory job registry; beyond it the
	// oldest terminal jobs are forgotten (default 256).
	JobsRetained int
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 8
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 128
	}
	if o.MaxN < 1 {
		o.MaxN = 20000
	}
	if o.DefaultBudget <= 0 {
		o.DefaultBudget = 2 * time.Second
	}
	if o.MaxBudget <= 0 {
		o.MaxBudget = 30 * time.Second
	}
	if o.MaxBudget < o.DefaultBudget {
		o.MaxBudget = o.DefaultBudget
	}
	if o.JobsRetained < 1 {
		o.JobsRetained = 256
	}
	return o
}

// maxBodyBytes bounds request bodies; a 20k-city TSPLIB upload is well
// under 2 MiB, so 16 MiB leaves generous headroom.
const maxBodyBytes = 16 << 20

// Server is the solve service. Build it with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	opt        Options
	cancelJobs context.CancelFunc
	pool       *pool
	cache      *cache
	mux        *http.ServeMux

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // registration order, for pruning
	seq   atomic.Int64
}

// New builds the service and starts its worker pool under ctx — the
// server's root: every job context derives from it, NOT from the
// submitting HTTP request, so client disconnects never cancel an
// admitted solve. Cancel it (or call Shutdown) to stop.
func New(ctx context.Context, opt Options) *Server {
	opt = opt.withDefaults()
	jobCtx, cancel := context.WithCancel(ctx)
	s := &Server{
		opt:        opt,
		cancelJobs: cancel,
		cache:      newCache(opt.CacheEntries),
		jobs:       make(map[string]*job),
	}
	s.pool = newPool(jobCtx, opt.Workers, opt.QueueDepth, s.runJob)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler { return s.mux }

// shutdownGrace bounds the post-force-cancel wait for workers after the
// caller's drain deadline already expired.
const shutdownGrace = 3 * time.Second

// Shutdown stops admissions, lets the workers drain the queues, and
// waits until they exit or ctx is done. On deadline it force-cancels
// running solves (they return their best-so-far and finish quickly) and
// waits a short grace for the workers to wind down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.pool.beginDrain()
	if err := s.pool.wait(ctx); err == nil {
		return nil
	}
	s.cancelJobs()
	done := make(chan struct{})
	go func() {
		s.pool.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(shutdownGrace)
	defer t.Stop()
	select {
	case <-done:
		s.pool.sweepQueued()
		return nil
	case <-t.C:
		return fmt.Errorf("serve: workers did not exit within the drain deadline")
	}
}

// admit validates the request, consults the cache, and enqueues a job.
// Exactly one of (cachedBody, j, err) is non-zero.
func (s *Server) admit(req *SolveRequest) (cachedBody []byte, j *job, err error) {
	prio, err := parsePriority(req.Priority)
	if err != nil {
		return nil, nil, &apiError{http.StatusBadRequest, err.Error()}
	}
	params, err := req.Params.normalize(s.opt)
	if err != nil {
		return nil, nil, &apiError{http.StatusBadRequest, err.Error()}
	}
	in, err := req.instance(s.opt.MaxN)
	if err != nil {
		return nil, nil, &apiError{http.StatusBadRequest, err.Error()}
	}
	key := hashInstance(in) + "|" + params.canonical()
	if body, ok := s.cache.get(key); ok {
		return body, nil, nil
	}
	id := fmt.Sprintf("j%08d", s.seq.Add(1))
	j = newJob(id, prio, key, in, params)
	s.register(j)
	if err := s.pool.enqueue(j); err != nil {
		s.unregister(id)
		switch err {
		case errDraining:
			return nil, nil, &apiError{http.StatusServiceUnavailable, err.Error()}
		default:
			return nil, nil, &apiError{http.StatusTooManyRequests, err.Error()}
		}
	}
	return nil, j, nil
}

// apiError carries an HTTP status through the admission path.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

// writeError renders err as a JSON error body, attaching Retry-After to
// load-shedding statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if ae, ok := err.(*apiError); ok {
		code = ae.code
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opt)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*SolveRequest, error) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &apiError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	return &req, nil
}

// handleSolve is the synchronous endpoint: admit, wait for the job, and
// return its result. A cache hit replays the stored bytes immediately.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, j, err := s.admit(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if body != nil {
		writeResult(w, body, "hit")
		return
	}
	select {
	case <-j.done:
		writeResult(w, j.terminalBody(), "miss")
	case <-r.Context().Done():
		// Client gone; the job keeps running and will populate the cache.
	}
}

// handleSubmit is the asynchronous endpoint: admit and return the job id
// immediately (202). A cache hit short-circuits with the stored result.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, j, err := s.admit(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if body != nil {
		writeResult(w, body, "hit")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.status())
}

func writeResult(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	w.Write(body)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		s.writeError(w, &apiError{http.StatusNotFound, "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		s.writeError(w, &apiError{http.StatusNotFound, "unknown job"})
		return
	}
	j.requestCancel()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.pool.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.cache.stats()
	var dropped int64
	s.mu.Lock()
	for _, j := range s.jobs {
		dropped += j.bcast.Dropped()
	}
	s.mu.Unlock()
	st := Stats{
		Workers:       s.opt.Workers,
		Active:        s.pool.active.Load(),
		QueuedInter:   len(s.pool.interactive),
		QueuedBatch:   len(s.pool.batch),
		Completed:     s.pool.complete.Load(),
		Rejected:      s.pool.rejected.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEntries:  entries,
		ScratchGets:   s.pool.scratchGets.Load(),
		ScratchMisses: s.pool.scratchMisses.Load(),
		EventsDropped: dropped,
		Draining:      s.pool.draining.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// register adds j to the registry, pruning the oldest terminal jobs
// beyond the retention bound.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.opt.JobsRetained {
		return
	}
	keep := s.order[:0]
	pruned := 0
	excess := len(s.order) - s.opt.JobsRetained
	for _, id := range s.order {
		old, ok := s.jobs[id]
		if ok && pruned < excess {
			old.mu.Lock()
			terminal := old.state == stateDone || old.state == stateFailed || old.state == stateCancelled
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				pruned++
				continue
			}
		}
		keep = append(keep, id)
	}
	s.order = keep
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// streamKind selects which solve events reach streaming subscribers:
// the EA-level decision points plus LK chain improvements. The raw
// kick-accepted/kick-reverted firehose (one event per kick, potentially
// thousands per second) stays out of the stream; its totals are in the
// per-job counters.
func streamKind(k obs.Kind) bool {
	return k == obs.KindLKImprove || k.EALevel()
}

// runJob executes one admitted job on a pool worker. ctx is the
// server's root job context; the per-job context layered on it is what
// DELETE and shutdown cancel. The solve budget itself is enforced by
// the facade (WithBudget), so a well-behaved job ends on its own.
func (s *Server) runJob(ctx context.Context, j *job, sc *clk.Scratch) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if !j.setRunning(cancel) {
		return // cancelled while queued
	}
	opts := []distclk.Option{
		distclk.WithKick(j.params.Kick),
		distclk.WithCandidates(j.params.Candidates),
		distclk.WithSeed(j.params.Seed),
		distclk.WithBudget(time.Duration(j.params.BudgetMS) * time.Millisecond),
		distclk.WithScratch(sc),
		distclk.WithEventSink(obs.Filter(j.bcast, streamKind)),
	}
	if j.params.MaxKicks > 0 {
		opts = append(opts, distclk.WithMaxKicks(j.params.MaxKicks))
	}
	if j.params.Target > 0 {
		opts = append(opts, distclk.WithTarget(j.params.Target))
	}
	if j.params.RelaxDepth != nil {
		opts = append(opts, distclk.WithRelaxedGain(*j.params.RelaxDepth))
	}
	solver, err := distclk.New(j.in, opts...)
	if err != nil {
		s.finishJob(j, stateFailed, &SolveResponse{
			Status:       stateFailed,
			Name:         j.in.Name,
			N:            j.in.N(),
			InstanceHash: j.instanceHash(),
			Params:       j.params.canonical(),
			Error:        err.Error(),
		}, false)
		return
	}

	// Forward periodic progress snapshots into the event stream: the
	// facade's collector keeps snapshot events to itself, so streaming
	// clients get them re-emitted here.
	progress := solver.Progress()
	var fwd sync.WaitGroup
	fwd.Add(1)
	go func() {
		defer fwd.Done()
		for snap := range progress {
			j.bcast.Emit(obs.Event{
				At:    snap.Elapsed,
				Node:  -1,
				Kind:  obs.KindSnapshot,
				Value: snap.BestLength,
				From:  -1,
			})
		}
	}()

	res, err := solver.Solve(jctx)
	fwd.Wait()
	cancelled := jctx.Err() != nil
	if err != nil {
		s.finishJob(j, stateFailed, &SolveResponse{
			Status:       stateFailed,
			Name:         j.in.Name,
			N:            j.in.N(),
			InstanceHash: j.instanceHash(),
			Params:       j.params.canonical(),
			Error:        err.Error(),
		}, false)
		return
	}
	state := stateDone
	if cancelled {
		state = stateCancelled
	}
	resp := &SolveResponse{
		Status:       state,
		Name:         j.in.Name,
		N:            j.in.N(),
		InstanceHash: j.instanceHash(),
		Params:       j.params.canonical(),
		Tour:         res.Tour,
		Length:       res.Length,
		Kicks:        kicksOf(res),
		ElapsedMS:    float64(res.Elapsed.Microseconds()) / 1000,
	}
	// Only an uninterrupted solve is the canonical result for its
	// parameters: cancelled best-so-far tours must not poison the cache.
	s.finishJob(j, state, resp, !cancelled)
}

// finishJob marshals the terminal response, optionally caches it, and
// completes the job.
func (s *Server) finishJob(j *job, state string, resp *SolveResponse, cacheIt bool) {
	body, err := json.Marshal(resp)
	if err != nil {
		// Marshaling a SolveResponse cannot fail (plain fields only);
		// degrade to an error body rather than wedging the waiters.
		state = stateFailed
		body = []byte(`{"status":"failed","error":"internal: marshal"}`)
		cacheIt = false
	}
	if cacheIt {
		s.cache.put(j.key, body)
	}
	j.finish(state, resp, body)
}

func kicksOf(res distclk.Result) int64 {
	var kicks int64
	for _, n := range res.PerNode {
		kicks += n.Kicks
	}
	return kicks
}
