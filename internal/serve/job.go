package serve

import (
	"context"
	"sync"

	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// Job states; transitions are queued → running → one terminal state.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one admitted solve. Its lifetime outlives the submitting HTTP
// request: the worker pool runs it under the server's root context, and
// any number of SSE/JSONL subscribers attach to its broadcaster.
type job struct {
	id       string
	priority string
	key      string // instance hash + canonical params (cache key)
	in       *tsp.Instance
	params   SolveParams

	// bcast fans solve events out to streaming subscribers; closed when
	// the job reaches a terminal state.
	bcast *obs.Broadcaster

	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu     sync.Mutex
	state  string
	resp   *SolveResponse // terminal result (done/failed/cancelled)
	body   []byte         // marshaled resp, the bytes served and cached
	cancel context.CancelFunc
}

func newJob(id, priority, key string, in *tsp.Instance, params SolveParams) *job {
	return &job{
		id:       id,
		priority: priority,
		key:      key,
		in:       in,
		params:   params,
		bcast:    obs.NewBroadcaster(),
		done:     make(chan struct{}),
		state:    stateQueued,
	}
}

// instanceHash is the hex instance digest (the cache key's first part).
func (j *job) instanceHash() string { return j.key[:64] }

// status snapshots the job for GET /v1/jobs/{id}.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{JobID: j.id, Status: j.state, Priority: j.priority, Result: j.resp}
}

// setRunning records the worker's cancel hook and flips to running.
// Returns false if the job was cancelled while queued — the worker must
// then skip it.
func (j *job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	j.cancel = cancel
	return true
}

// finish records the terminal state and result, closes the broadcaster
// and the done channel. Idempotent: the first terminal state wins.
func (j *job) finish(state string, resp *SolveResponse, body []byte) {
	j.mu.Lock()
	if j.state == stateDone || j.state == stateFailed || j.state == stateCancelled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.resp = resp
	j.body = body
	j.cancel = nil
	j.mu.Unlock()
	j.bcast.Close()
	close(j.done)
}

// requestCancel cancels a running solve or marks a queued job cancelled.
// Safe to call at any time, including after completion.
func (j *job) requestCancel() {
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == stateQueued
	j.mu.Unlock()
	switch {
	case cancel != nil:
		cancel() // worker observes and finishes the job
	case queued:
		j.finish(stateCancelled, &SolveResponse{
			Status:       stateCancelled,
			Name:         j.in.Name,
			N:            j.in.N(),
			InstanceHash: j.instanceHash(),
			Params:       j.params.canonical(),
		}, nil)
	}
}

// terminalBody returns the marshaled terminal response, nil before the
// job finishes.
func (j *job) terminalBody() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}
