//go:build race

package serve

// raceEnabled gates assertions that depend on sync.Pool determinism:
// under the race detector the runtime intentionally drops a random
// fraction of pool Puts to surface races, so exact hit/miss counts only
// hold in non-race builds.
const raceEnabled = true
