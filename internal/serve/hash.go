package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"distclk/internal/tsp"
)

// hashInstance derives the canonical content hash of an instance: the
// metric plus the exact float64 bit patterns of every coordinate for
// geometric instances, or every upper-triangle distance for explicit
// ones. The instance name is deliberately excluded — it does not affect
// the solve, and two uploads of the same geometry under different names
// must share a cache entry.
func hashInstance(in *tsp.Instance) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	n := in.N()
	if in.Explicit() {
		h.Write([]byte("explicit"))
		w(uint64(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w(uint64(in.Dist(i, j)))
			}
		}
	} else {
		h.Write([]byte("geom"))
		w(uint64(in.Metric))
		w(uint64(n))
		for _, p := range in.Pts {
			w(math.Float64bits(p.X))
			w(math.Float64bits(p.Y))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
