package neighbor

// Storage recycles the CSR backing arrays of a Lists across builds. The
// candidate tables are the largest per-solve allocation (off is n+1 int32,
// flat/dist are ~n*k int32/int64), so a long-lived service that solves one
// instance after another pools Storage objects instead of re-allocating
// them per job (ROADMAP item 1; see internal/serve).
//
// A Storage backs AT MOST ONE live Lists at a time: the storage-aware
// builders slice the recycled arrays directly into the Lists they return,
// so building again from the same Storage overwrites the previous table.
// The zero value is ready to use. A nil *Storage is accepted everywhere
// and means "allocate fresh", which is how the storage-oblivious wrappers
// (Build, BuildQuadrant, FromEdges, Select) behave.
type Storage struct {
	off  []int32
	flat []int32
	dist []int64
}

// offsets returns a length-nOff int32 slice backed by recycled memory,
// growing the backing array when the capacity does not suffice. Contents
// are unspecified; every builder overwrites the full slice.
func (st *Storage) offsets(nOff int) []int32 {
	if st == nil {
		return make([]int32, nOff)
	}
	if cap(st.off) < nOff {
		st.off = make([]int32, nOff)
	}
	st.off = st.off[:nOff]
	return st.off
}

// payload returns length-total flat/dist slices backed by recycled memory.
func (st *Storage) payload(total int) ([]int32, []int64) {
	if st == nil {
		return make([]int32, total), make([]int64, total)
	}
	if cap(st.flat) < total {
		st.flat = make([]int32, total)
	}
	if cap(st.dist) < total {
		st.dist = make([]int64, total)
	}
	st.flat = st.flat[:total]
	st.dist = st.dist[:total]
	return st.flat, st.dist
}

// Owns reports whether l's backing arrays came from this Storage — the
// pool-hit assertion used by scratch-reuse tests.
func (st *Storage) Owns(l *Lists) bool {
	if st == nil || l == nil || len(st.off) == 0 || len(l.off) == 0 {
		return false
	}
	return &st.off[0] == &l.off[0]
}
