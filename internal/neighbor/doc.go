// Package neighbor builds candidate edge sets for local search (paper
// §2.1 runs LK over nearest-neighbour candidates): k-nearest neighbour
// lists (via k-d tree for geometric instances, brute force for EXPLICIT
// ones) and quadrant neighbour lists as used by Concorde.
//
// Lists are stored in a flat CSR-style layout — one contiguous candidate
// array with per-city offsets — together with a parallel table of
// precomputed candidate distances. The distance of every (city, candidate)
// pair is fixed the moment a list is built, so the Lin-Kernighan inner
// loop reads distances from the table instead of re-evaluating the
// instance metric (which for GEO/ATT means trigonometry) on every chain
// extension.
//
// Invariants:
//   - Candidate lists are symmetric-free CSR: for city c, candidates are
//     Cand[Off[c]:Off[c+1]], sorted by distance, self-loops excluded.
//   - The distance table is exact: Dist[i] == instance distance of the
//     i-th (city, candidate) pair, for every metric.
package neighbor
