package neighbor

import (
	"sort"

	"distclk/internal/tsp"
)

// UnionOfTours builds per-city adjacency over the union of the tours'
// edges — the restricted search graph for tour merging (Cook & Seymour's
// union-graph LK, used by internal/merge and the in-node elite fusion of
// internal/clk). Each adjacency list is sorted ascending and deduplicated,
// so the result is deterministic for a given tour list (no map iteration).
func UnionOfTours(n int, tours []tsp.Tour) [][]int32 {
	adj := make([][]int32, n)
	for i := range adj {
		adj[i] = make([]int32, 0, 2*len(tours))
	}
	for _, t := range tours {
		for i, c := range t {
			next := t[(i+1)%len(t)]
			adj[c] = append(adj[c], next)
			adj[next] = append(adj[next], c)
		}
	}
	for c := range adj {
		s := adj[c]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		k := 0
		for i, v := range s {
			if i == 0 || v != s[k-1] {
				s[k] = v
				k++
			}
		}
		adj[c] = s[:k]
	}
	return adj
}
