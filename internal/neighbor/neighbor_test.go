package neighbor

import (
	"math/rand"
	"strings"
	"testing"

	"distclk/internal/geom"
	"distclk/internal/tsp"
)

func TestBuildSortedByDistance(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 1)
	l := Build(in, 10)
	if l.K() != 10 || l.N() != 200 {
		t.Fatalf("K=%d N=%d", l.K(), l.N())
	}
	dist := in.DistFunc()
	for c := int32(0); c < 200; c++ {
		nb := l.Of(c)
		for i := 1; i < len(nb); i++ {
			if dist(c, nb[i-1]) > dist(c, nb[i]) {
				t.Fatalf("city %d: candidates not ascending", c)
			}
		}
		for _, o := range nb {
			if o == c {
				t.Fatalf("city %d lists itself", c)
			}
		}
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 150, 3)
	fast := Build(in, 6)
	dist := in.DistFunc()
	for c := int32(0); c < 150; c++ {
		// Brute-force 6 nearest by distance.
		var best []int32
		for j := int32(0); j < 150; j++ {
			if j != c {
				best = append(best, j)
			}
		}
		for i := 0; i < 6; i++ {
			for j := i + 1; j < len(best); j++ {
				di, dj := dist(c, best[i]), dist(c, best[j])
				if dj < di || (dj == di && best[j] < best[i]) {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		got := fast.Of(c)
		for i := 0; i < 6; i++ {
			// Compare by distance (ties may order differently only if
			// tie-break differs, but both tie-break by index).
			if dist(c, got[i]) != dist(c, best[i]) {
				t.Fatalf("city %d rank %d: got %d (d=%d), want %d (d=%d)",
					c, i, got[i], dist(c, got[i]), best[i], dist(c, best[i]))
			}
		}
	}
}

func TestBuildClampsK(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 10, 5)
	l := Build(in, 50)
	if l.K() != 9 {
		t.Fatalf("K = %d, want 9", l.K())
	}
}

func TestBuildExplicit(t *testing.T) {
	m := []int64{
		0, 1, 5, 9,
		1, 0, 2, 7,
		5, 2, 0, 3,
		9, 7, 3, 0,
	}
	in, err := tsp.NewExplicit("m4", 4, m)
	if err != nil {
		t.Fatal(err)
	}
	l := Build(in, 2)
	if got := l.Of(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("city 0 candidates %v, want [1 2]", got)
	}
	if got := l.Of(3); got[0] != 2 || got[1] != 1 {
		t.Fatalf("city 3 candidates %v, want [2 1]", got)
	}
}

func TestQuadrantCoversDirections(t *testing.T) {
	// A cross-shaped instance: quadrant lists must include neighbours in
	// all four directions even when one direction is denser.
	in := tsp.Generate(tsp.FamilyClustered, 400, 7)
	q := BuildQuadrant(in, 3)
	if q.K() != 12 {
		t.Fatalf("K = %d, want 12", q.K())
	}
	for c := int32(0); c < 400; c++ {
		nb := q.Of(c)
		if len(nb) != 12 {
			t.Fatalf("city %d has %d candidates", c, len(nb))
		}
		for _, o := range nb {
			if o == c || o < 0 || o >= 400 {
				t.Fatalf("city %d has bad candidate %d", c, o)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 20, 9)
	adj := make([][]int32, 20)
	for i := int32(0); i < 20; i++ {
		adj[i] = []int32{(i + 1) % 20, (i + 19) % 20}
	}
	adj[5] = append(adj[5], 10, 15) // one larger list: the layout is ragged
	l, err := FromEdges(in, adj)
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 4 {
		t.Fatalf("K = %d, want 4 (maximum degree)", l.K())
	}
	if got := l.Len(5); got != 4 {
		t.Fatalf("Len(5) = %d, want 4", got)
	}
	if got := l.Len(3); got != 2 {
		t.Fatalf("Len(3) = %d, want 2 (no padding entries)", got)
	}
	dist := in.DistFunc()
	for c := int32(0); c < 20; c++ {
		nb := l.Of(c)
		for i := 1; i < len(nb); i++ {
			if dist(c, nb[i-1]) > dist(c, nb[i]) {
				t.Fatalf("city %d: FromEdges candidates not ascending", c)
			}
		}
	}
	if err := l.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDedupes(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 12, 13)
	adj := make([][]int32, 12)
	for i := int32(0); i < 12; i++ {
		// Duplicates and shuffled order on every list.
		adj[i] = []int32{(i + 1) % 12, (i + 2) % 12, (i + 1) % 12, (i + 2) % 12}
	}
	l, err := FromEdges(in, adj)
	if err != nil {
		t.Fatal(err)
	}
	for c := int32(0); c < 12; c++ {
		if got := l.Len(c); got != 2 {
			t.Fatalf("city %d: Len = %d, want 2 after dedupe", c, got)
		}
		for _, o := range l.Of(c) {
			if o == c {
				t.Fatalf("city %d kept its self-edge", c)
			}
		}
	}
	if err := l.Validate(in); err != nil {
		t.Fatal(err)
	}
}

// TestDistanceTableMatchesInstance is the consistency check for the
// precomputed candidate-distance table: for every stored (city, candidate)
// pair, under every supported metric, the table must agree exactly with
// Instance.Dist — dive()'s gain computation reads only the table.
func TestDistanceTableMatchesInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	metrics := []geom.MetricKind{geom.Euc2D, geom.Ceil2D, geom.Att, geom.Geo, geom.Man2D, geom.Max2D}
	for _, m := range metrics {
		t.Run(m.String(), func(t *testing.T) {
			n := 150
			pts := make([]geom.Point, n)
			for i := range pts {
				if m == geom.Geo {
					// Latitude/longitude in TSPLIB DDD.MM encoding.
					pts[i] = geom.Point{X: rng.Float64()*140 - 70, Y: rng.Float64()*300 - 150}
				} else {
					pts[i] = geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
				}
			}
			in := tsp.New("table-"+m.String(), m, pts)
			for name, l := range map[string]*Lists{
				"knn":      Build(in, 8),
				"quadrant": BuildQuadrant(in, 2),
			} {
				if err := l.Validate(in); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				for c := int32(0); c < int32(n); c++ {
					cand, d := l.Cand(c)
					if len(cand) != len(d) {
						t.Fatalf("%s: city %d: %d candidates, %d distances", name, c, len(cand), len(d))
					}
					for i, o := range cand {
						if want := in.Dist(int(c), int(o)); d[i] != want {
							t.Fatalf("%s: table dist(%d,%d) = %d, Instance.Dist = %d", name, c, o, d[i], want)
						}
					}
				}
			}
		})
	}
}

func TestFromEdgesEmptyAdjacency(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 5, 11)
	adj := make([][]int32, 5)
	adj[2] = []int32{4}
	l, err := FromEdges(in, adj)
	if err != nil {
		t.Fatal(err)
	}
	for c := int32(0); c < 5; c++ {
		for _, o := range l.Of(c) {
			if o == c {
				t.Fatalf("city %d listed itself", c)
			}
		}
	}
}

// TestFromEdgesRejectsMalformed pins the error contract: self-loops,
// out-of-range vertices and mis-sized adjacency return descriptive errors
// instead of being silently skipped (or panicking in mustValidate).
func TestFromEdgesRejectsMalformed(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 6, 17)
	good := func() [][]int32 {
		adj := make([][]int32, 6)
		for i := int32(0); i < 6; i++ {
			adj[i] = []int32{(i + 1) % 6}
		}
		return adj
	}

	selfLoop := good()
	selfLoop[3] = append(selfLoop[3], 3)
	if _, err := FromEdges(in, selfLoop); err == nil || !strings.Contains(err.Error(), "lists itself") {
		t.Errorf("self-loop: got %v, want 'lists itself' error", err)
	}

	outOfRange := good()
	outOfRange[1] = append(outOfRange[1], 6)
	if _, err := FromEdges(in, outOfRange); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("out-of-range: got %v, want 'out-of-range' error", err)
	}

	negative := good()
	negative[0] = append(negative[0], -1)
	if _, err := FromEdges(in, negative); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("negative vertex: got %v, want 'out-of-range' error", err)
	}

	if _, err := FromEdges(in, good()[:5]); err == nil {
		t.Error("short adjacency: want size-mismatch error")
	}
}
