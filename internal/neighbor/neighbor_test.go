package neighbor

import (
	"testing"

	"distclk/internal/tsp"
)

func TestBuildSortedByDistance(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 1)
	l := Build(in, 10)
	if l.K() != 10 || l.N() != 200 {
		t.Fatalf("K=%d N=%d", l.K(), l.N())
	}
	dist := in.DistFunc()
	for c := int32(0); c < 200; c++ {
		nb := l.Of(c)
		for i := 1; i < len(nb); i++ {
			if dist(c, nb[i-1]) > dist(c, nb[i]) {
				t.Fatalf("city %d: candidates not ascending", c)
			}
		}
		for _, o := range nb {
			if o == c {
				t.Fatalf("city %d lists itself", c)
			}
		}
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 150, 3)
	fast := Build(in, 6)
	dist := in.DistFunc()
	for c := int32(0); c < 150; c++ {
		// Brute-force 6 nearest by distance.
		var best []int32
		for j := int32(0); j < 150; j++ {
			if j != c {
				best = append(best, j)
			}
		}
		for i := 0; i < 6; i++ {
			for j := i + 1; j < len(best); j++ {
				di, dj := dist(c, best[i]), dist(c, best[j])
				if dj < di || (dj == di && best[j] < best[i]) {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		got := fast.Of(c)
		for i := 0; i < 6; i++ {
			// Compare by distance (ties may order differently only if
			// tie-break differs, but both tie-break by index).
			if dist(c, got[i]) != dist(c, best[i]) {
				t.Fatalf("city %d rank %d: got %d (d=%d), want %d (d=%d)",
					c, i, got[i], dist(c, got[i]), best[i], dist(c, best[i]))
			}
		}
	}
}

func TestBuildClampsK(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 10, 5)
	l := Build(in, 50)
	if l.K() != 9 {
		t.Fatalf("K = %d, want 9", l.K())
	}
}

func TestBuildExplicit(t *testing.T) {
	m := []int64{
		0, 1, 5, 9,
		1, 0, 2, 7,
		5, 2, 0, 3,
		9, 7, 3, 0,
	}
	in, err := tsp.NewExplicit("m4", 4, m)
	if err != nil {
		t.Fatal(err)
	}
	l := Build(in, 2)
	if got := l.Of(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("city 0 candidates %v, want [1 2]", got)
	}
	if got := l.Of(3); got[0] != 2 || got[1] != 1 {
		t.Fatalf("city 3 candidates %v, want [2 1]", got)
	}
}

func TestQuadrantCoversDirections(t *testing.T) {
	// A cross-shaped instance: quadrant lists must include neighbours in
	// all four directions even when one direction is denser.
	in := tsp.Generate(tsp.FamilyClustered, 400, 7)
	q := BuildQuadrant(in, 3)
	if q.K() != 12 {
		t.Fatalf("K = %d, want 12", q.K())
	}
	for c := int32(0); c < 400; c++ {
		nb := q.Of(c)
		if len(nb) != 12 {
			t.Fatalf("city %d has %d candidates", c, len(nb))
		}
		for _, o := range nb {
			if o == c || o < 0 || o >= 400 {
				t.Fatalf("city %d has bad candidate %d", c, o)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 20, 9)
	adj := make([][]int32, 20)
	for i := int32(0); i < 20; i++ {
		adj[i] = []int32{(i + 1) % 20, (i + 19) % 20}
	}
	adj[5] = append(adj[5], 10, 15) // one larger list forces padding
	l := FromEdges(in, adj)
	if l.K() != 4 {
		t.Fatalf("K = %d, want 4", l.K())
	}
	dist := in.DistFunc()
	for c := int32(0); c < 20; c++ {
		nb := l.Of(c)
		for i := 1; i < len(nb); i++ {
			if dist(c, nb[i-1]) > dist(c, nb[i]) {
				t.Fatalf("city %d: FromEdges candidates not ascending", c)
			}
		}
	}
	// Padded entries repeat but never list the city itself.
	for _, o := range l.Of(3) {
		if o == 3 {
			t.Fatal("padding produced self-loop")
		}
	}
}

func TestFromEdgesEmptyAdjacency(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 5, 11)
	adj := make([][]int32, 5)
	adj[2] = []int32{4}
	l := FromEdges(in, adj)
	for c := int32(0); c < 5; c++ {
		for _, o := range l.Of(c) {
			if o == c {
				t.Fatalf("city %d listed itself", c)
			}
		}
	}
}
