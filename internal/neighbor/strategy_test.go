package neighbor

import (
	"math/rand"
	"strings"
	"testing"

	"distclk/internal/geom"
	"distclk/internal/tsp"
)

// TestStrategyRegistry pins the registry contract: fixed order, lookup by
// name, "auto" is not a registered strategy but appears in the flag names.
func TestStrategyRegistry(t *testing.T) {
	want := []string{"knn", "quadrant", "alpha", "delaunay"}
	got := Strategies()
	if len(got) != len(want) {
		t.Fatalf("registry has %d strategies, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, s.Name, want[i])
		}
		if s.Doc == "" || s.Cost == "" || s.Build == nil {
			t.Errorf("strategy %q missing Doc/Cost/Build", s.Name)
		}
		byName, err := ByName(s.Name)
		if err != nil || byName.Name != s.Name {
			t.Errorf("ByName(%q) = %v, %v", s.Name, byName.Name, err)
		}
	}
	if _, err := ByName("auto"); err == nil {
		t.Error("ByName(auto) should fail: auto is a selector, not a builder")
	}
	if _, err := ByName("voronoi"); err == nil || !strings.Contains(err.Error(), "voronoi") {
		t.Errorf("unknown name: got %v, want error naming it", err)
	}
	names := StrategyNames()
	if names[0] != "auto" || len(names) != len(want)+1 {
		t.Errorf("StrategyNames() = %v", names)
	}
}

// TestStrategyDistanceTablesMatchInstance extends the knn/quadrant
// six-metric cross-check to the two new builders: for every supported
// metric, every stored (city, candidate) distance must agree exactly with
// Instance.Dist, and the full Lists contract must validate. This is the
// guarantee that lets dive() stay a pure table read whichever strategy
// built the lists.
func TestStrategyDistanceTablesMatchInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	metrics := []geom.MetricKind{geom.Euc2D, geom.Ceil2D, geom.Att, geom.Geo, geom.Man2D, geom.Max2D}
	for _, m := range metrics {
		t.Run(m.String(), func(t *testing.T) {
			n := 150
			pts := make([]geom.Point, n)
			for i := range pts {
				if m == geom.Geo {
					// Latitude/longitude in TSPLIB DDD.MM encoding.
					pts[i] = geom.Point{X: rng.Float64()*140 - 70, Y: rng.Float64()*300 - 150}
				} else {
					pts[i] = geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
				}
			}
			in := tsp.New("strat-"+m.String(), m, pts)
			for _, s := range Strategies() {
				l, err := s.Build(nil, in, 8)
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				if err := l.Validate(in); err != nil {
					t.Errorf("%s: %v", s.Name, err)
				}
				for c := int32(0); c < int32(n); c++ {
					cand, d := l.Cand(c)
					for i, o := range cand {
						if want := in.Dist(int(c), int(o)); d[i] != want {
							t.Fatalf("%s: table dist(%d,%d) = %d, Instance.Dist = %d", s.Name, c, o, d[i], want)
						}
					}
				}
			}
		})
	}
}

// TestBuildDelaunayRejectsExplicit: matrix-only instances have no
// coordinates to triangulate.
func TestBuildDelaunayRejectsExplicit(t *testing.T) {
	in, err := tsp.NewExplicit("m4", 4, []int64{
		0, 1, 2, 3,
		1, 0, 4, 5,
		2, 4, 0, 6,
		3, 5, 6, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDelaunay(in, 8); err == nil || !strings.Contains(err.Error(), "matrix-only") {
		t.Errorf("got %v, want matrix-only error", err)
	}
}

// TestBuildDelaunayDuplicatePoints: co-located cities (the clustered
// generator clamps outliers to the domain boundary; TSPLIB files repeat
// rows) must not abort the build. Duplicates are grafted onto their
// representative's neighbourhood, and the result still satisfies the full
// Lists contract.
func TestBuildDelaunayDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 0, 130)
	for i := 0; i < 120; i++ {
		pts = append(pts, geom.Point{X: rng.Float64() * 1e6, Y: rng.Float64() * 1e6})
	}
	// Three cities on one corner (a duplicate group) and one repeated
	// interior point.
	corner := geom.Point{X: 1e6, Y: 1e6}
	pts = append(pts, corner, corner, corner, pts[17])
	in := tsp.New("dup", geom.Euc2D, pts)
	l, err := BuildDelaunay(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(in); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < in.N(); c++ {
		if ids, _ := l.Cand(int32(c)); len(ids) == 0 {
			t.Errorf("city %d has no candidates", c)
		}
	}
	// A duplicate's first candidate is its zero-distance representative.
	ids, ds := l.Cand(121)
	if ds[0] != 0 || ids[0] != 120 {
		t.Errorf("duplicate city 121: first candidate %d at distance %d, want 120 at 0", ids[0], ds[0])
	}
}

// TestAutoPolicy pins the selector's verdict on the synthetic families and
// the degenerate cases. The thresholds live in Auto; tsp.Describe's
// separating power is pinned in internal/tsp.
func TestAutoPolicy(t *testing.T) {
	cases := []struct {
		name     string
		st       tsp.Stats
		strategy string
		relaxed  bool
	}{
		{"explicit", tsp.Stats{N: 5000, Explicit: true}, "knn", false},
		{"tiny", tsp.Stats{N: 32}, "knn", false},
		{"clustered", tsp.Stats{N: 5000, ClusterCV: 4.2}, "quadrant", false},
		{"lattice", tsp.Stats{N: 5000, AxisDegeneracy: 0.9}, "delaunay", true},
		{"uniform", tsp.Stats{N: 5000, ClusterCV: 1.0}, "delaunay", false},
	}
	for _, c := range cases {
		ch := Auto(c.st)
		if ch.Strategy != c.strategy {
			t.Errorf("%s: Auto picked %q, want %q", c.name, ch.Strategy, c.strategy)
		}
		if (ch.RelaxDepth > 0) != c.relaxed {
			t.Errorf("%s: RelaxDepth = %d, relaxed want %v", c.name, ch.RelaxDepth, c.relaxed)
		}
		if ch.Reason == "" {
			t.Errorf("%s: empty Reason", c.name)
		}
		if _, err := ByName(ch.Strategy); err != nil {
			t.Errorf("%s: Auto picked unregistered strategy %q", c.name, ch.Strategy)
		}
	}
}

// TestSelectAutoEndToEnd: Select("auto") must produce valid lists on every
// generator family, and the choice must match Auto over Describe.
func TestSelectAutoEndToEnd(t *testing.T) {
	for _, fam := range []tsp.Family{tsp.FamilyUniform, tsp.FamilyClustered, tsp.FamilyDrill, tsp.FamilyGrid} {
		in := tsp.Generate(fam, 600, 7)
		l, ch, err := Select(in, "auto", 8)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if want := Auto(tsp.Describe(in)); ch.Strategy != want.Strategy {
			t.Errorf("%v: Select chose %q, Auto says %q", fam, ch.Strategy, want.Strategy)
		}
		if err := l.Validate(in); err != nil {
			t.Errorf("%v (%s): %v", fam, ch.Strategy, err)
		}
	}
	// Unknown names surface an error.
	if _, _, err := Select(tsp.Generate(tsp.FamilyUniform, 64, 1), "voronoi", 8); err == nil {
		t.Error("unknown strategy: want error")
	}
	// An explicit request for a coordinate strategy on a matrix instance
	// fails; auto on the same instance falls back to knn.
	ex, err := tsp.NewExplicit("m3", 3, []int64{0, 2, 3, 2, 0, 4, 3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Select(ex, "delaunay", 8); err == nil {
		t.Error("delaunay on explicit: want error")
	}
	l, ch, err := Select(ex, "auto", 2)
	if err != nil || ch.Strategy != "knn" {
		t.Fatalf("auto on explicit: %v %v", ch, err)
	}
	if err := l.Validate(ex); err != nil {
		t.Error(err)
	}
}

// TestSelectDeterministic: two Select("auto") calls on the same instance
// produce byte-identical CSR arrays.
func TestSelectDeterministic(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 800, 5)
	a, _, err := Select(in, "auto", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Select(in, "auto", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.K() != b.K() {
		t.Fatal("shape differs between runs")
	}
	for c := int32(0); c < int32(a.N()); c++ {
		ca, da := a.Cand(c)
		cb, db := b.Cand(c)
		if len(ca) != len(cb) {
			t.Fatalf("city %d: list length differs", c)
		}
		for i := range ca {
			if ca[i] != cb[i] || da[i] != db[i] {
				t.Fatalf("city %d rank %d differs between runs", c, i)
			}
		}
	}
}
