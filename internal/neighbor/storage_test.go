package neighbor

import (
	"testing"

	"distclk/internal/tsp"
)

// Rebuilding from the same Storage must reuse the CSR backing arrays
// (pointer identity), not allocate new ones — the pool-hit contract the
// solve service relies on.
func TestStorageReusesCSRBackingArrays(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 1)
	st := &Storage{}

	l1 := BuildWith(st, in, 8)
	if !st.Owns(l1) {
		t.Fatalf("first build: Lists not backed by Storage")
	}
	first := &l1.flat[0]

	l2 := BuildWith(st, in, 8)
	if !st.Owns(l2) {
		t.Fatalf("rebuild: Lists not backed by Storage")
	}
	if &l2.flat[0] != first {
		t.Fatalf("rebuild allocated a fresh flat array instead of recycling")
	}

	// A smaller build must also recycle (capacity suffices).
	small := tsp.Generate(tsp.FamilyUniform, 50, 2)
	l3 := BuildWith(st, small, 8)
	if !st.Owns(l3) || &l3.flat[0] != first {
		t.Fatalf("smaller rebuild did not recycle the backing arrays")
	}

	// Every storage-aware builder draws from the same Storage.
	if l := BuildQuadrantWith(st, in, 2); !st.Owns(l) {
		t.Fatalf("BuildQuadrantWith: Lists not backed by Storage")
	}
	if l, _, err := SelectWith(st, in, "auto", 8); err != nil || !st.Owns(l) {
		t.Fatalf("SelectWith(auto): err=%v owned=%v", err, st.Owns(l))
	}
	if l, err := BuildAlphaWith(st, in, 6, 50); err != nil || !st.Owns(l) {
		t.Fatalf("BuildAlphaWith: err=%v owned=%v", err, st.Owns(l))
	}
}

// A nil Storage must behave exactly like the storage-oblivious builders:
// fresh arrays, Owns reports false.
func TestNilStorageAllocatesFresh(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 100, 3)
	var st *Storage
	l := BuildWith(st, in, 8)
	if st.Owns(l) {
		t.Fatalf("nil Storage claims ownership")
	}
	l2 := Build(in, 8)
	if l.n != l2.n || len(l.flat) != len(l2.flat) {
		t.Fatalf("nil-storage build differs from plain Build")
	}
}

// Lists built from the same instance with and without a Storage must be
// identical: recycling may not change candidate content.
func TestStorageBuildMatchesPlainBuild(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 7)
	st := &Storage{}
	// Warm the storage with a different instance first so stale contents
	// would surface as a diff.
	BuildWith(st, tsp.Generate(tsp.FamilyUniform, 400, 8), 10)

	a := Build(in, 10)
	b := BuildWith(st, in, 10)
	if a.n != b.n {
		t.Fatalf("n mismatch: %d vs %d", a.n, b.n)
	}
	for i := range a.off {
		if a.off[i] != b.off[i] {
			t.Fatalf("off[%d] mismatch", i)
		}
	}
	for i := range a.flat {
		if a.flat[i] != b.flat[i] || a.dist[i] != b.dist[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}
