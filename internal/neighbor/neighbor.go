// Package neighbor builds candidate edge sets for local search: k-nearest
// neighbour lists (via k-d tree for geometric instances, brute force for
// EXPLICIT ones) and quadrant neighbour lists as used by Concorde.
package neighbor

import (
	"sort"

	"distclk/internal/geom"
	"distclk/internal/tsp"
)

// Lists holds fixed-size candidate neighbour lists for every city, sorted by
// increasing instance distance. Local search only considers candidate edges,
// which is what makes Lin-Kernighan subquadratic in practice.
type Lists struct {
	k    int
	flat []int32
	n    int
}

// K reports the per-city list length.
func (l *Lists) K() int { return l.k }

// N reports the number of cities.
func (l *Lists) N() int { return l.n }

// Of returns city's candidates ordered by increasing distance. The returned
// slice aliases internal storage; callers must not modify it.
func (l *Lists) Of(city int32) []int32 {
	return l.flat[int(city)*l.k : int(city)*l.k+l.k]
}

// Build constructs k-nearest-neighbour candidate lists. k is clamped to n-1.
func Build(in *tsp.Instance, k int) *Lists {
	n := in.N()
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	l := &Lists{k: k, n: n, flat: make([]int32, n*k)}
	dist := in.DistFunc()
	if in.Explicit() || n <= 64 {
		buildBrute(l, n, k, dist)
		return l
	}
	tree := geom.NewKDTree(in.Pts)
	// Fetch extra Euclidean neighbours, then re-sort by the instance metric:
	// rounding (EUC_2D/ATT/GEO) can permute near-ties.
	fetch := k + 4
	if fetch > n-1 {
		fetch = n - 1
	}
	for c := 0; c < n; c++ {
		cand := tree.KNearest(in.Pts[c], fetch, c)
		ci := int32(c)
		sort.Slice(cand, func(i, j int) bool {
			di, dj := dist(ci, cand[i]), dist(ci, cand[j])
			if di != dj {
				return di < dj
			}
			return cand[i] < cand[j]
		})
		copy(l.flat[c*k:(c+1)*k], cand[:k])
	}
	return l
}

func buildBrute(l *Lists, n, k int, dist func(i, j int32) int64) {
	idx := make([]int32, 0, n-1)
	for c := 0; c < n; c++ {
		idx = idx[:0]
		for j := 0; j < n; j++ {
			if j != c {
				idx = append(idx, int32(j))
			}
		}
		ci := int32(c)
		sort.Slice(idx, func(i, j int) bool {
			di, dj := dist(ci, idx[i]), dist(ci, idx[j])
			if di != dj {
				return di < dj
			}
			return idx[i] < idx[j]
		})
		copy(l.flat[c*k:(c+1)*k], idx[:k])
	}
}

// BuildQuadrant constructs quadrant neighbour lists: for each city, up to
// perQuad nearest neighbours from each of the four coordinate quadrants
// around it, padded with globally nearest cities when quadrants are sparse.
// Quadrant lists avoid candidate starvation in strongly clustered instances.
func BuildQuadrant(in *tsp.Instance, perQuad int) *Lists {
	n := in.N()
	k := 4 * perQuad
	if k > n-1 {
		k = n - 1
	}
	if in.Explicit() {
		return Build(in, k)
	}
	l := &Lists{k: k, n: n, flat: make([]int32, n*k)}
	tree := geom.NewKDTree(in.Pts)
	dist := in.DistFunc()
	fetch := 4 * k
	if fetch > n-1 {
		fetch = n - 1
	}
	var quad [4][]int32
	for c := 0; c < n; c++ {
		cand := tree.KNearest(in.Pts[c], fetch, c)
		for q := range quad {
			quad[q] = quad[q][:0]
		}
		p := in.Pts[c]
		chosen := make([]int32, 0, k)
		seen := make(map[int32]bool, k)
		for _, o := range cand {
			op := in.Pts[o]
			q := 0
			if op.X >= p.X {
				q |= 1
			}
			if op.Y >= p.Y {
				q |= 2
			}
			if len(quad[q]) < perQuad {
				quad[q] = append(quad[q], o)
				chosen = append(chosen, o)
				seen[o] = true
			}
		}
		// Pad with nearest unused candidates.
		for _, o := range cand {
			if len(chosen) >= k {
				break
			}
			if !seen[o] {
				chosen = append(chosen, o)
				seen[o] = true
			}
		}
		ci := int32(c)
		sort.Slice(chosen, func(i, j int) bool {
			di, dj := dist(ci, chosen[i]), dist(ci, chosen[j])
			if di != dj {
				return di < dj
			}
			return chosen[i] < chosen[j]
		})
		copy(l.flat[c*k:], chosen)
		// If still short (tiny n), fill from brute force.
		for len(chosen) < k {
			for j := 0; j < n && len(chosen) < k; j++ {
				if int32(j) != ci && !seen[int32(j)] {
					chosen = append(chosen, int32(j))
					seen[int32(j)] = true
				}
			}
			copy(l.flat[c*k:], chosen)
		}
	}
	return l
}

// FromEdges builds candidate lists from an explicit edge set (e.g. the union
// graph in tour merging or alpha-nearness selections). adj maps each city to
// candidate endpoints; lists are truncated/padded to the maximum degree and
// sorted by instance distance. Cities with fewer candidates are padded by
// repeating their nearest candidate, keeping the flat layout rectangular.
func FromEdges(in *tsp.Instance, adj [][]int32) *Lists {
	n := in.N()
	k := 1
	for _, a := range adj {
		if len(a) > k {
			k = len(a)
		}
	}
	dist := in.DistFunc()
	l := &Lists{k: k, n: n, flat: make([]int32, n*k)}
	for c := 0; c < n; c++ {
		a := append([]int32(nil), adj[c]...)
		ci := int32(c)
		sort.Slice(a, func(i, j int) bool {
			di, dj := dist(ci, a[i]), dist(ci, a[j])
			if di != dj {
				return di < dj
			}
			return a[i] < a[j]
		})
		if len(a) == 0 {
			// Degenerate; point at an arbitrary different city.
			other := int32(0)
			if ci == 0 {
				other = 1 % int32(n)
			}
			a = append(a, other)
		}
		for len(a) < k {
			a = append(a, a[len(a)-1])
		}
		copy(l.flat[c*k:], a[:k])
	}
	return l
}
