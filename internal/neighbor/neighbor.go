package neighbor

import (
	"fmt"
	"sort"

	"distclk/internal/geom"
	"distclk/internal/par"
	"distclk/internal/tsp"
)

// Lists holds candidate neighbour lists for every city in CSR form, each
// list sorted by increasing instance distance (ties by city id). Local
// search only considers candidate edges, which is what makes Lin-Kernighan
// subquadratic in practice. Lists built by Build/BuildQuadrant are uniform
// (every city has exactly K candidates); FromEdges lists are ragged.
//
// Invariants, asserted at build time: no self-edges, no duplicates, and
// per-city distances ascending — dive()'s gain-criterion early break
// depends on the ascending order.
type Lists struct {
	k    int     // maximum per-city list length
	n    int     // number of cities
	off  []int32 // len n+1; city c's candidates are flat[off[c]:off[c+1]]
	flat []int32 // candidate cities, sorted by ascending distance per city
	dist []int64 // dist[i] = instance distance(owner city, flat[i])
}

// K reports the maximum per-city list length (the exact length for
// Build/BuildQuadrant lists).
func (l *Lists) K() int { return l.k }

// N reports the number of cities.
func (l *Lists) N() int { return l.n }

// Len reports city's list length.
func (l *Lists) Len(city int32) int { return int(l.off[city+1] - l.off[city]) }

// Of returns city's candidates ordered by increasing distance. The returned
// slice aliases internal storage; callers must not modify it.
func (l *Lists) Of(city int32) []int32 {
	return l.flat[l.off[city]:l.off[city+1]]
}

// DistsOf returns the precomputed distances parallel to Of(city):
// DistsOf(city)[i] == Instance.Dist(city, Of(city)[i]). The slice aliases
// internal storage; callers must not modify it.
func (l *Lists) DistsOf(city int32) []int64 {
	return l.dist[l.off[city]:l.off[city+1]]
}

// Cand returns city's candidates and their precomputed distances in one
// call — the hot-path accessor used by the LK inner loop.
func (l *Lists) Cand(city int32) ([]int32, []int64) {
	lo, hi := l.off[city], l.off[city+1]
	return l.flat[lo:hi], l.dist[lo:hi]
}

// Validate checks every build-time invariant plus agreement of the stored
// distance table with in.Dist for every stored pair. Builders assert the
// structural part automatically; tests use Validate for the full check.
func (l *Lists) Validate(in *tsp.Instance) error {
	if err := l.validateStructure(); err != nil {
		return err
	}
	for c := 0; c < l.n; c++ {
		ci := int32(c)
		cand, d := l.Cand(ci)
		for i, o := range cand {
			if want := in.Dist(c, int(o)); d[i] != want {
				return fmt.Errorf("neighbor: city %d candidate %d: stored distance %d, instance says %d", c, o, d[i], want)
			}
		}
	}
	return nil
}

// validateStructure asserts offsets, self-edges, duplicates, bounds and
// ascending distances in O(n + total candidates).
func (l *Lists) validateStructure() error {
	if len(l.off) != l.n+1 || len(l.flat) != len(l.dist) || int(l.off[l.n]) != len(l.flat) {
		return fmt.Errorf("neighbor: inconsistent CSR arrays (n=%d off=%d flat=%d dist=%d)", l.n, len(l.off), len(l.flat), len(l.dist))
	}
	stamp := make([]int32, l.n) // stamp[o] == c+1 iff o already seen for city c
	for c := 0; c < l.n; c++ {
		ci := int32(c)
		if l.off[c] > l.off[c+1] {
			return fmt.Errorf("neighbor: city %d has negative list length", c)
		}
		cand, d := l.Cand(ci)
		for i, o := range cand {
			if o < 0 || int(o) >= l.n {
				return fmt.Errorf("neighbor: city %d candidate %d out of range", c, o)
			}
			if o == ci {
				return fmt.Errorf("neighbor: city %d lists itself", c)
			}
			if stamp[o] == ci+1 {
				return fmt.Errorf("neighbor: city %d lists %d twice", c, o)
			}
			stamp[o] = ci + 1
			if i > 0 && d[i] < d[i-1] {
				return fmt.Errorf("neighbor: city %d candidates not ascending at rank %d", c, i)
			}
		}
	}
	return nil
}

func (l *Lists) mustValidate() {
	if err := l.validateStructure(); err != nil {
		panic(err.Error())
	}
}

// candDist pairs a candidate with its precomputed instance distance.
type candDist struct {
	c int32
	d int64
}

// sortCands orders by (distance, id) — the tie-break every builder uses.
func sortCands(s []candDist) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].d != s[j].d {
			return s[i].d < s[j].d
		}
		return s[i].c < s[j].c
	})
}

// newUniform builds a Lists where every city has exactly k candidates,
// drawing the backing arrays from st (nil = allocate fresh).
func newUniform(st *Storage, n, k int) *Lists {
	l := &Lists{
		k:   k,
		n:   n,
		off: st.offsets(n + 1),
	}
	l.flat, l.dist = st.payload(n * k)
	for c := 0; c <= n; c++ {
		l.off[c] = int32(c * k)
	}
	return l
}

// fill writes city's sorted candidate pairs into the CSR arrays.
func (l *Lists) fill(city int32, pairs []candDist) {
	base := l.off[city]
	for i, p := range pairs {
		l.flat[base+int32(i)] = p.c
		l.dist[base+int32(i)] = p.d
	}
}

// Build constructs k-nearest-neighbour candidate lists with precomputed
// distances. k is clamped to n-1. Construction is parallel across
// GOMAXPROCS workers (the k-d tree is built once and queried read-only).
func Build(in *tsp.Instance, k int) *Lists { return BuildWith(nil, in, k) }

// BuildWith is Build drawing the CSR backing arrays from st (nil =
// allocate fresh). The returned Lists aliases st; see Storage.
func BuildWith(st *Storage, in *tsp.Instance, k int) *Lists {
	n := in.N()
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	l := newUniform(st, n, k)
	dist := in.DistFunc()
	if in.Explicit() || n <= 64 {
		par.For(n, func(lo, hi int) {
			pairs := make([]candDist, 0, n-1)
			for c := lo; c < hi; c++ {
				ci := int32(c)
				pairs = pairs[:0]
				for j := 0; j < n; j++ {
					if j != c {
						pairs = append(pairs, candDist{int32(j), dist(ci, int32(j))})
					}
				}
				sortCands(pairs)
				l.fill(ci, pairs[:k])
			}
		})
		l.mustValidate()
		return l
	}
	tree := geom.NewKDTree(in.Pts)
	// Fetch extra Euclidean neighbours, then re-sort by the instance metric:
	// rounding (EUC_2D/ATT/GEO) can permute near-ties.
	fetch := k + 4
	if fetch > n-1 {
		fetch = n - 1
	}
	par.For(n, func(lo, hi int) {
		pairs := make([]candDist, 0, fetch)
		for c := lo; c < hi; c++ {
			ci := int32(c)
			cand := tree.KNearest(in.Pts[c], fetch, c)
			pairs = pairs[:0]
			for _, o := range cand {
				pairs = append(pairs, candDist{o, dist(ci, o)})
			}
			sortCands(pairs)
			l.fill(ci, pairs[:k])
		}
	})
	l.mustValidate()
	return l
}

// BuildQuadrant constructs quadrant neighbour lists: for each city, up to
// perQuad nearest neighbours from each of the four coordinate quadrants
// around it, padded with globally nearest cities when quadrants are sparse.
// Quadrant lists avoid candidate starvation in strongly clustered instances.
func BuildQuadrant(in *tsp.Instance, perQuad int) *Lists {
	return BuildQuadrantWith(nil, in, perQuad)
}

// BuildQuadrantWith is BuildQuadrant drawing the CSR backing arrays from
// st (nil = allocate fresh). The returned Lists aliases st; see Storage.
func BuildQuadrantWith(st *Storage, in *tsp.Instance, perQuad int) *Lists {
	n := in.N()
	k := 4 * perQuad
	if k > n-1 {
		k = n - 1
	}
	if in.Explicit() {
		return BuildWith(st, in, k)
	}
	l := newUniform(st, n, k)
	tree := geom.NewKDTree(in.Pts)
	dist := in.DistFunc()
	fetch := 4 * k
	if fetch > n-1 {
		fetch = n - 1
	}
	par.For(n, func(lo, hi int) {
		var quad [4][]int32
		pairs := make([]candDist, 0, k)
		seen := make(map[int32]bool, k)
		for c := lo; c < hi; c++ {
			ci := int32(c)
			cand := tree.KNearest(in.Pts[c], fetch, c)
			for q := range quad {
				quad[q] = quad[q][:0]
			}
			for o := range seen {
				delete(seen, o)
			}
			p := in.Pts[c]
			chosen := pairs[:0]
			for _, o := range cand {
				op := in.Pts[o]
				q := 0
				if op.X >= p.X {
					q |= 1
				}
				if op.Y >= p.Y {
					q |= 2
				}
				if len(quad[q]) < perQuad {
					quad[q] = append(quad[q], o)
					chosen = append(chosen, candDist{o, dist(ci, o)})
					seen[o] = true
				}
			}
			// Pad with nearest unused candidates.
			for _, o := range cand {
				if len(chosen) >= k {
					break
				}
				if !seen[o] {
					chosen = append(chosen, candDist{o, dist(ci, o)})
					seen[o] = true
				}
			}
			// If still short (tiny n), fill from brute force.
			for j := 0; j < n && len(chosen) < k; j++ {
				if int32(j) != ci && !seen[int32(j)] {
					chosen = append(chosen, candDist{int32(j), dist(ci, int32(j))})
					seen[int32(j)] = true
				}
			}
			sortCands(chosen)
			l.fill(ci, chosen[:k])
			pairs = chosen
		}
	})
	l.mustValidate()
	return l
}

// FromEdges builds candidate lists from an explicit edge set (e.g. the
// union graph in tour merging or alpha-nearness selections). adj maps each
// city to candidate endpoints; duplicates are deduplicated, then each list
// is sorted by instance distance so the dive() early-break assumption
// holds for edge-set candidate lists too. The CSR layout keeps the lists
// ragged — no padding entries are invented. A city with no usable
// candidates gets one arbitrary other city so random walks over the
// candidate graph never strand.
//
// Malformed input — a self-loop, an out-of-range vertex, or an adjacency
// slice whose length disagrees with the instance — returns a descriptive
// error rather than being silently skipped: every producer (union graphs,
// alpha selection, Delaunay adjacency) is supposed to emit clean edges, so
// a bad entry is a bug worth surfacing at the boundary.
func FromEdges(in *tsp.Instance, adj [][]int32) (*Lists, error) {
	return FromEdgesWith(nil, in, adj)
}

// FromEdgesWith is FromEdges drawing the CSR backing arrays from st (nil =
// allocate fresh). The returned Lists aliases st; see Storage.
func FromEdgesWith(st *Storage, in *tsp.Instance, adj [][]int32) (*Lists, error) {
	n := in.N()
	if len(adj) != n {
		return nil, fmt.Errorf("neighbor: FromEdges: adjacency has %d cities, instance has %d", len(adj), n)
	}
	for c := range adj {
		ci := int32(c)
		for _, o := range adj[c] {
			if o < 0 || int(o) >= n {
				return nil, fmt.Errorf("neighbor: FromEdges: city %d lists out-of-range candidate %d (n=%d)", c, o, n)
			}
			if o == ci {
				return nil, fmt.Errorf("neighbor: FromEdges: city %d lists itself", c)
			}
		}
	}
	dist := in.DistFunc()
	perCity := make([][]candDist, n)
	par.For(n, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			ci := int32(c)
			s := make([]candDist, 0, len(adj[c])+1)
			for _, o := range adj[c] {
				s = append(s, candDist{o, dist(ci, o)})
			}
			sortCands(s)
			// Duplicates share (distance, id), so they are adjacent now.
			w := 0
			for i, p := range s {
				if i > 0 && p.c == s[w-1].c {
					continue
				}
				s[w] = p
				w++
			}
			s = s[:w]
			if len(s) == 0 && n > 1 {
				// Degenerate; point at an arbitrary different city.
				other := int32((c + 1) % n)
				s = append(s, candDist{other, dist(ci, other)})
			}
			perCity[c] = s
		}
	})
	l := &Lists{n: n, off: st.offsets(n + 1)}
	total := 0
	for c, s := range perCity {
		l.off[c] = int32(total)
		total += len(s)
		if len(s) > l.k {
			l.k = len(s)
		}
	}
	l.off[n] = int32(total)
	l.flat, l.dist = st.payload(total)
	for c, s := range perCity {
		l.fill(int32(c), s)
	}
	l.mustValidate()
	return l, nil
}
