package neighbor

import (
	"math"

	"distclk/internal/heldkarp"
	"distclk/internal/par"
	"distclk/internal/tsp"
)

// DefaultAscentIterations is the Held-Karp subgradient budget BuildAlpha
// uses when callers pass ascentIters <= 0. Matches the lkh engine default.
const DefaultAscentIterations = 60

// alphaScored pairs a candidate with its alpha value for ranking.
type alphaScored struct {
	j int32
	a float64
}

// sortByAlpha orders by (alpha, id) — insertion sort, the lists are short.
func sortByAlpha(s []alphaScored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j-1].a > s[j].a || (s[j-1].a == s[j].a && s[j-1].j > s[j].j)); j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// BuildAlpha builds alpha-nearness candidate lists: alpha(i,j) is the
// increase of the minimum 1-tree cost when edge (i,j) is forced into it,
// computed as w(i,j) - beta(i,j), where w is the pi-modified weight and
// beta(i,j) is the maximum edge weight on the 1-tree path between i and j.
// The k candidates with smallest alpha are kept per city (symmetrized).
// Runs the Held-Karp ascent first to obtain good potentials, then ranks a
// cheap 3k+8 nearest-neighbour pre-selection per city. The per-city beta
// DFS is parallel across par.For chunks with chunk-local scratch; the
// result is deterministic regardless of chunk boundaries. O(n^2) time
// overall (dominated by the ascent's Prim runs), so the auto-selector
// never picks it — it is an explicit opt-in for hard instances.
func BuildAlpha(in *tsp.Instance, k, ascentIters int) (*Lists, error) {
	return BuildAlphaWith(nil, in, k, ascentIters)
}

// BuildAlphaWith is BuildAlpha drawing the final CSR backing arrays from
// st (nil = allocate fresh; the transient pre-selection lists stay
// unpooled). The returned Lists aliases st; see Storage.
func BuildAlphaWith(st *Storage, in *tsp.Instance, k, ascentIters int) (*Lists, error) {
	n := in.N()
	if k > n-1 {
		k = n - 1
	}
	if ascentIters <= 0 {
		ascentIters = DefaultAscentIterations
	}
	res := heldkarp.LowerBound(in, heldkarp.Options{Iterations: ascentIters})
	tree, pi := res.Tree, res.Pi
	dist := in.DistFunc()
	w := func(i, j int32) float64 { return float64(dist(i, j)) + pi[i] + pi[j] }

	// MST adjacency (cities 1..n-1) with edge weights.
	treeAdj := make([][]int32, n)
	treeWt := make([][]float64, n)
	for i := int32(1); i < int32(n); i++ {
		if p := tree.Parent[i]; p > 0 {
			treeAdj[i] = append(treeAdj[i], p)
			treeWt[i] = append(treeWt[i], tree.ParentW[i])
			treeAdj[p] = append(treeAdj[p], i)
			treeWt[p] = append(treeWt[p], tree.ParentW[i])
		}
	}

	// City 0's forced edge replaces its larger special edge.
	maxOn0 := math.Max(w(0, tree.Special0[0]), w(0, tree.Special0[1]))

	// Pre-select near neighbours cheaply, then alpha-rank them.
	pre := Build(in, min(3*k+8, n-1))

	adj := make([][]int32, n)
	type frame struct {
		node int32
		b    float64
	}
	par.For(n, func(lo, hi int) {
		beta := make([]float64, n)
		visited := make([]bool, n)
		stack := make([]frame, 0, n)
		var scored []alphaScored
		for c := lo; c < hi; c++ {
			i := int32(c)
			cand := pre.Of(i)
			scored = scored[:0]
			if i == 0 {
				for _, j := range cand {
					a := w(0, j) - maxOn0
					if j == tree.Special0[0] || j == tree.Special0[1] || a < 0 {
						a = 0
					}
					scored = append(scored, alphaScored{j, a})
				}
			} else {
				// DFS from i over the MST: beta(i, x) = max edge on the path.
				for x := range visited {
					visited[x] = false
				}
				visited[i] = true
				stack = append(stack[:0], frame{i, math.Inf(-1)})
				for len(stack) > 0 {
					f := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for e, nb := range treeAdj[f.node] {
						if visited[nb] {
							continue
						}
						visited[nb] = true
						b := math.Max(f.b, treeWt[f.node][e])
						beta[nb] = b
						stack = append(stack, frame{nb, b})
					}
				}
				for _, j := range cand {
					var a float64
					if j == 0 {
						a = w(i, 0) - maxOn0
						if i == tree.Special0[0] || i == tree.Special0[1] {
							a = 0
						}
					} else {
						a = w(i, j) - beta[j]
					}
					if a < 0 {
						a = 0
					}
					scored = append(scored, alphaScored{j, a})
				}
			}
			sortByAlpha(scored)
			lim := min(k, len(scored))
			sel := make([]int32, 0, lim)
			for _, s := range scored[:lim] {
				sel = append(sel, s.j)
			}
			adj[c] = sel
		}
	})

	// Symmetrize: LK traverses candidate edges from both endpoints.
	// FromEdges re-sorts by (distance, id) and dedupes, so the map
	// iteration order here does not affect the final Lists.
	seen := make([]map[int32]bool, n)
	for i := range seen {
		seen[i] = map[int32]bool{}
	}
	for i := int32(0); i < int32(n); i++ {
		for _, j := range adj[i] {
			seen[i][j] = true
			seen[j][i] = true
		}
	}
	out := make([][]int32, n)
	for i := range out {
		for j := range seen[i] {
			out[i] = append(out[i], j)
		}
	}
	return FromEdgesWith(st, in, out)
}
