package neighbor

import (
	"fmt"
	"strings"

	"distclk/internal/geom"
	"distclk/internal/tsp"
)

// Strategy describes one candidate-set construction algorithm. Every
// strategy produces the same CSR Lists contract (per-city ascending
// instance distance, no self-edges, no duplicates), so the LK hot path is
// oblivious to which one built its lists.
type Strategy struct {
	// Name is the stable identifier used by flags and facade options.
	Name string
	// Doc is a one-line description for -help output and docs tables.
	Doc string
	// NeedsCoords reports whether the builder requires city coordinates;
	// such strategies return an error on explicit (matrix-only) instances.
	NeedsCoords bool
	// Cost is the asymptotic build cost, for documentation.
	Cost string
	// Build constructs the lists, drawing CSR backing arrays from st (nil
	// = allocate fresh; see Storage). k is the per-city candidate budget;
	// strategies with a natural degree (delaunay) may ignore it.
	Build func(st *Storage, in *tsp.Instance, k int) (*Lists, error)
}

// strategies is the fixed registry, in documentation order. A slice, not a
// map: iteration order is part of the CLI/docs contract.
var strategies = []Strategy{
	{
		Name: "knn",
		Doc:  "k nearest neighbours per city (k-d tree); the historical default",
		Cost: "O(n log n)",
		Build: func(st *Storage, in *tsp.Instance, k int) (*Lists, error) {
			return BuildWith(st, in, k), nil
		},
	},
	{
		Name:        "quadrant",
		Doc:         "ceil(k/4) nearest per coordinate quadrant; resists candidate starvation on clustered instances",
		NeedsCoords: false, // falls back to knn on explicit instances, like BuildQuadrant
		Cost:        "O(n log n)",
		Build: func(st *Storage, in *tsp.Instance, k int) (*Lists, error) {
			return BuildQuadrantWith(st, in, (k+3)/4), nil
		},
	},
	{
		Name: "alpha",
		Doc:  "LKH alpha-nearness ranking from a Held-Karp 1-tree; strongest lists, quadratic build",
		Cost: "O(n^2)",
		Build: func(st *Storage, in *tsp.Instance, k int) (*Lists, error) {
			return BuildAlphaWith(st, in, k, DefaultAscentIterations)
		},
	},
	{
		Name:        "delaunay",
		Doc:         "Delaunay triangulation edges (natural degree ~6, ignores k); planar connectivity without tuning",
		NeedsCoords: true,
		Cost:        "O(n log n)",
		Build:       BuildDelaunayWith,
	},
}

// Strategies returns the registered strategies in fixed order. The slice
// is a copy; mutating it does not affect the registry.
func Strategies() []Strategy {
	out := make([]Strategy, len(strategies))
	copy(out, strategies)
	return out
}

// StrategyNames returns the registered names plus "auto", for flag help.
func StrategyNames() []string {
	names := make([]string, 0, len(strategies)+1)
	names = append(names, "auto")
	for _, s := range strategies {
		names = append(names, s.Name)
	}
	return names
}

// ByName looks up a registered strategy.
func ByName(name string) (Strategy, error) {
	for _, s := range strategies {
		if s.Name == name {
			return s, nil
		}
	}
	return Strategy{}, fmt.Errorf("neighbor: unknown candidate strategy %q (have %s)", name, strings.Join(StrategyNames(), ", "))
}

// BuildDelaunay builds candidate lists from the Delaunay triangulation of
// the instance's coordinates. Each city's candidates are its triangulation
// neighbours (average degree ~6 by Euler's formula), re-sorted by the
// instance metric so the CSR ascending contract holds for every TSPLIB
// metric, not just EUC_2D. The k budget is ignored — the triangulation
// determines its own degree. Co-located cities (clamped generator output,
// repeated TSPLIB rows) would abort the triangulation, so only unique
// coordinates are triangulated and each duplicate city is grafted onto its
// representative's neighbourhood (plus a zero-length edge to the
// representative itself). Errors on explicit instances and on all-collinear
// geometry.
func BuildDelaunay(in *tsp.Instance, k int) (*Lists, error) {
	return BuildDelaunayWith(nil, in, k)
}

// BuildDelaunayWith is BuildDelaunay drawing the CSR backing arrays from
// st (nil = allocate fresh). The returned Lists aliases st; see Storage.
func BuildDelaunayWith(st *Storage, in *tsp.Instance, k int) (*Lists, error) {
	_ = k
	if in.Explicit() {
		return nil, fmt.Errorf("neighbor: delaunay strategy needs coordinates; instance %q is matrix-only", in.Name)
	}
	n := in.N()
	rep := make([]int32, n) // city -> first city with identical coordinates
	var uniqPts []geom.Point
	var uniqCity []int32 // triangulation index -> city id
	seen := make(map[geom.Point]int32, n)
	dups := 0
	for i := int32(0); i < int32(n); i++ {
		p := in.Pts[i]
		if r, ok := seen[p]; ok {
			rep[i] = r
			dups++
			continue
		}
		seen[p] = i
		rep[i] = i
		uniqPts = append(uniqPts, p)
		uniqCity = append(uniqCity, i)
	}
	tri, err := geom.Delaunay(uniqPts)
	if err != nil {
		return nil, fmt.Errorf("neighbor: delaunay strategy: %w", err)
	}
	uadj := tri.Adjacency(len(uniqPts))
	adj := make([][]int32, n)
	for u, nbrs := range uadj {
		mapped := make([]int32, len(nbrs))
		for j, v := range nbrs {
			mapped[j] = uniqCity[v]
		}
		adj[uniqCity[u]] = mapped
	}
	if dups > 0 {
		for i := int32(0); i < int32(n); i++ {
			if r := rep[i]; r != i {
				adj[i] = append([]int32{r}, adj[r]...)
				adj[r] = append(adj[r], i)
			}
		}
	}
	return FromEdgesWith(st, in, adj)
}

// Choice is the auto-selector's decision: which strategy to build and
// whether to enable the relaxed LK gain rule (depth 0 = classic strict
// positive-gain).
type Choice struct {
	// Strategy is a registered strategy name.
	Strategy string
	// RelaxDepth is the recommended lk.Params.RelaxDepth: chain depths
	// below it may carry a bounded non-positive partial gain.
	RelaxDepth int
	// Reason is a one-line human-readable justification, printed by
	// cmd/tspstat so users can predict and audit the selection.
	Reason string
}

// Auto maps instance statistics to a strategy and gain rule. The policy is
// deliberately simple and inspectable — cmd/tspstat prints the same Stats
// and this function's verdict:
//
//   - explicit or tiny instances: knn (geometry unavailable or irrelevant);
//   - strongly clustered (ClusterCV >= 3): quadrant, which guarantees
//     candidates in all four directions and so keeps inter-cluster edges
//     that pure kNN starves out;
//   - lattice-like coordinate sharing (AxisDegeneracy >= 0.5): delaunay
//     plus a relaxed gain rule — drilling-pattern plateaus of equal-length
//     moves need sideways steps the strict rule rejects;
//   - otherwise: delaunay, whose natural ~6 degree gives knn-quality tours
//     with smaller lists and no k to tune.
//
// alpha is never auto-selected: its O(n^2) build only pays off on hard
// instances where the user opts in explicitly.
func Auto(st tsp.Stats) Choice {
	switch {
	case st.Explicit:
		return Choice{Strategy: "knn", Reason: "matrix-only instance: geometric builders do not apply"}
	case st.N < 64:
		return Choice{Strategy: "knn", Reason: "tiny instance: brute-force knn is exact and cheapest"}
	case st.ClusterCV >= 3.0:
		return Choice{Strategy: "quadrant", Reason: fmt.Sprintf("strongly clustered (occupancy CV %.1f >= 3.0): quadrant lists keep inter-cluster edges", st.ClusterCV)}
	case st.AxisDegeneracy >= 0.5:
		return Choice{Strategy: "delaunay", RelaxDepth: 3, Reason: fmt.Sprintf("lattice-like coordinates (axis degeneracy %.2f >= 0.5): delaunay + relaxed gain escapes equal-length plateaus", st.AxisDegeneracy)}
	default:
		return Choice{Strategy: "delaunay", Reason: "continuous geometry: delaunay's natural degree needs no k tuning"}
	}
}

// Select resolves a strategy name ("auto" or a registered name) and builds
// the lists. For "auto" it probes the instance with tsp.Describe, applies
// Auto, and falls back to knn if the chosen geometric builder fails on
// degenerate geometry (e.g. all-collinear points break delaunay) — auto
// must always produce usable lists. An explicitly named strategy that fails
// returns its error instead: the caller asked for exactly that builder.
func Select(in *tsp.Instance, name string, k int) (*Lists, Choice, error) {
	return SelectWith(nil, in, name, k)
}

// SelectWith is Select drawing the CSR backing arrays from storage (nil =
// allocate fresh). The returned Lists aliases storage; see Storage.
func SelectWith(storage *Storage, in *tsp.Instance, name string, k int) (*Lists, Choice, error) {
	if name == "" || name == "auto" {
		ch := Auto(tsp.Describe(in))
		st, err := ByName(ch.Strategy)
		if err != nil {
			return nil, Choice{}, err
		}
		l, err := st.Build(storage, in, k)
		if err != nil {
			ch = Choice{Strategy: "knn", Reason: fmt.Sprintf("fallback: %s failed (%v)", st.Name, err)}
			l = BuildWith(storage, in, k)
		}
		return l, ch, nil
	}
	st, err := ByName(name)
	if err != nil {
		return nil, Choice{}, err
	}
	l, err := st.Build(storage, in, k)
	if err != nil {
		return nil, Choice{}, err
	}
	return l, Choice{Strategy: st.Name, Reason: "explicitly requested"}, nil
}
