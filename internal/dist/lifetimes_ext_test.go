// External test package: it imports simnet, which itself imports dist
// for the exchange protocol, so keeping this test in package dist would
// form an import cycle.
package dist_test

import (
	"context"
	"testing"
	"time"

	"distclk/internal/core"
	"distclk/internal/simnet"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// TestHeterogeneousNodeLifetimes reproduces the paper's end-of-run
// degeneration: "due to different running times on the nodes at the end of
// a simulation more and more nodes might become inactive" — remaining
// nodes must keep working as their neighbourhood drains. It runs on
// simnet's virtual clock, so the lifetimes are exact iteration counts
// instead of wall-clock races.
func TestHeterogeneousNodeLifetimes(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 150, 31)
	cfg := func() core.Config {
		c := core.DefaultConfig()
		c.KicksPerCall = 5
		return c
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	res := simnet.Run(ctx, in, simnet.Config{
		Nodes:  4,
		Topo:   topology.Hypercube,
		EA:     cfg,
		Budget: core.Budget{MaxIterations: 12},
		// Nodes 0 and 1 stop after 2 iterations; 2 and 3 run the full 12.
		NodeIterations: []int64{2, 2, 0, 0},
		Seed:           1,
	})

	for i, s := range res.Stats {
		if s.BestLength == 0 {
			t.Fatalf("node %d produced no result", i)
		}
	}
	if res.Stats[2].Iterations != 12 || res.Stats[3].Iterations != 12 {
		t.Fatalf("long-lived nodes cut short: %d, %d iterations",
			res.Stats[2].Iterations, res.Stats[3].Iterations)
	}
	// Messages to inactive nodes pile up in their inboxes harmlessly (the
	// paper's nodes simply stop reading); the network must not drop them.
	if res.Faults.Drops() != 0 {
		t.Fatalf("network dropped %d messages under churn", res.Faults.Drops())
	}
}
