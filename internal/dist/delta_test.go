package dist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"distclk/internal/core"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

func randTour(rng *rand.Rand, n int) tsp.Tour {
	t := make(tsp.Tour, n)
	for i := range t {
		t[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { t[i], t[j] = t[j], t[i] })
	return t
}

// wantWire asserts got is the wire image of sent: the canonical form
// (city 0 first) in either traversal orientation, since the encoder
// normalizes rotation before diffing and then keeps whichever
// orientation produces the smaller delta.
func wantWire(t *testing.T, tag string, got, sent tsp.Tour) {
	t.Helper()
	want := sent.Canonical()
	n := len(want)
	if len(got) != n {
		t.Fatalf("%s: reconstructed tour has %d cities, want %d", tag, len(got), n)
	}
	fwd := true
	for i := range want {
		if got[i] != want[i] {
			fwd = false
			break
		}
	}
	if fwd {
		return
	}
	if n < 2 || got[0] != want[0] {
		t.Fatalf("%s: reconstructed tour does not start at the canonical city", tag)
	}
	for i := 1; i < n; i++ {
		if got[i] != want[n-i] {
			t.Fatalf("%s: reconstructed tour differs at %d in both orientations", tag, i)
		}
	}
}

// mutate applies k random segment reversals — the shape of kick/LK edits.
func mutate(rng *rand.Rand, t tsp.Tour, k int) {
	for ; k > 0; k-- {
		i, j := rng.Intn(len(t)), rng.Intn(len(t))
		if i > j {
			i, j = j, i
		}
		for i < j {
			t[i], t[j] = t[j], t[i]
			i++
			j--
		}
	}
}

func TestDiffSegsReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(200)
		old := randTour(rng, n)
		cur := old.Clone()
		mutate(rng, cur, 1+rng.Intn(4))
		segs := diffSegs(old, cur)
		rebuilt := old.Clone()
		for _, s := range segs {
			copy(rebuilt[s.Pos:], s.Cities)
		}
		for i := range cur {
			if rebuilt[i] != cur[i] {
				t.Fatalf("trial %d: position %d = %d, want %d", trial, i, rebuilt[i], cur[i])
			}
		}
	}
}

func TestDiffSegsIdentical(t *testing.T) {
	old := tsp.Tour{0, 1, 2, 3, 4}
	if segs := diffSegs(old, old.Clone()); len(segs) != 0 {
		t.Fatalf("identical tours produced segs %v", segs)
	}
}

// TestEncoderDecoderStream: a fault-free stream reconstructs the
// sender's tour exactly at every generation, and sends deltas for
// everything but the first message and keyframes.
func TestEncoderDecoderStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc, dec := &DeltaEncoder{}, &DeltaDecoder{}
	cur := randTour(rng, 120)
	fulls, deltas := 0, 0
	for gen := 0; gen < 50; gen++ {
		w := enc.Encode(3, cur, int64(1000+gen), 16)
		if w.Full {
			fulls++
		} else {
			deltas++
		}
		got, ok := dec.Decode(w)
		if !ok {
			t.Fatalf("gen %d: decode failed on a loss-free stream", gen)
		}
		wantWire(t, fmt.Sprintf("gen %d", gen), got, cur)
		mutate(rng, cur, 2)
	}
	// 50 sends, keyframe 16 (a full after every 16 deltas): sends 1, 18,
	// and 35 are full.
	if fulls != 3 || deltas != 47 {
		t.Fatalf("fulls=%d deltas=%d, want 3/47", fulls, deltas)
	}
}

// TestGenerationGapFallback is the satellite unit test: a lost delta
// must make the next delta gap (discarded, not misapplied), and the
// next full tour must heal the stream.
func TestGenerationGapFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc, dec := &DeltaEncoder{}, &DeltaDecoder{}
	cur := randTour(rng, 80)

	if _, ok := dec.Decode(enc.Encode(0, cur, 100, 8)); !ok {
		t.Fatal("first (full) message rejected")
	}
	mutate(rng, cur, 2)
	lost := enc.Encode(0, cur, 99, 8) // delta, never delivered
	if lost.Full {
		t.Fatal("second message should be a delta")
	}
	mutate(rng, cur, 2)
	next := enc.Encode(0, cur, 98, 8) // delta on top of the lost one
	if next.Full {
		t.Fatal("third message should be a delta")
	}
	if _, ok := dec.Decode(next); ok {
		t.Fatal("delta applied across a generation gap")
	}
	// A duplicate of an already-applied generation must also gap, not
	// double-apply.
	if _, ok := dec.Decode(next); ok {
		t.Fatal("duplicate delta applied")
	}
	// The stream stays gapped until the keyframe full tour heals it.
	for i := 0; i < 10; i++ {
		mutate(rng, cur, 1)
		w := enc.Encode(0, cur, int64(90-i), 8)
		got, ok := dec.Decode(w)
		if !ok {
			if w.Full {
				t.Fatal("full tour rejected")
			}
			continue
		}
		if !w.Full {
			t.Fatal("a delta decoded while the stream was gapped")
		}
		wantWire(t, "healed stream", got, cur)
		// Healed: the following delta applies again.
		mutate(rng, cur, 1)
		if _, ok := dec.Decode(enc.Encode(0, cur, 80, 8)); !ok {
			t.Fatal("delta after heal rejected")
		}
		return
	}
	t.Fatal("stream never healed within the keyframe cadence")
}

// TestDecoderFreshStateFallsBackToFull: a receiver that lost its state
// (crash/restart, TCP reconnect) discards deltas until a full arrives —
// the "after peer crash/restart" fallback rule.
func TestDecoderFreshStateFallsBackToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	enc := &DeltaEncoder{}
	cur := randTour(rng, 60)
	enc.Encode(1, cur, 50, 32)
	mutate(rng, cur, 1)
	w := enc.Encode(1, cur, 49, 32)
	fresh := &DeltaDecoder{} // restarted receiver
	if _, ok := fresh.Decode(w); ok {
		t.Fatal("fresh decoder accepted a delta with no base state")
	}
}

func TestEncoderFallsBackWhenDeltaIsNotSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	enc := &DeltaEncoder{}
	cur := randTour(rng, 100)
	enc.Encode(0, cur, 10, 1000)
	// A completely reshuffled tour diffs everywhere; the encoder must
	// notice the delta would not be smaller and send full.
	next := randTour(rng, 100)
	w := enc.Encode(0, next, 9, 1000)
	if !w.Full {
		t.Fatalf("whole-tour change encoded as %d segs (%d bytes)", len(w.Segs), w.WireBytes())
	}
}

func TestDecoderRejectsCorruptPermutation(t *testing.T) {
	dec := &DeltaDecoder{}
	bad := WireTour{From: 0, N: 4, Gen: 1, Full: true, Tour: tsp.Tour{0, 1, 1, 3}}
	if _, ok := dec.Decode(bad); ok {
		t.Fatal("decoder accepted a non-permutation full tour")
	}
}

// TestChanNetworkDeltaExchange runs a delta-enabled ChanNetwork by hand
// and checks reconstruction plus the obs counters.
func TestChanNetworkDeltaExchange(t *testing.T) {
	ex := ExchangeConfig{Delta: true, KeyframeEvery: 8}
	nw := NewChanNetworkEx(2, topology.Ring, ex, 1)
	observer := obs.NewObserver(2, nil)
	nw.SetObserver(observer)
	sender, receiver := nw.Comm(0), nw.Comm(1)

	rng := rand.New(rand.NewSource(23))
	cur := randTour(rng, 90)
	for i := 0; i < 20; i++ {
		sender.Broadcast(cur, int64(500-i))
		got := receiver.Drain()
		if len(got) != 1 {
			t.Fatalf("round %d: drained %d messages, want 1", i, len(got))
		}
		wantWire(t, fmt.Sprintf("round %d", i), got[0].Tour, cur)
		mutate(rng, cur, 2)
	}
	snap := observer.Recorder(0).Snapshot()
	// 20 broadcasts, keyframe 8: gens 1, 9, 17 full → 3 full, 17 delta.
	if snap.FullSends != 3 || snap.DeltaSends != 17 {
		t.Fatalf("full=%d delta=%d, want 3/17", snap.FullSends, snap.DeltaSends)
	}
	if snap.WireBytes == 0 {
		t.Fatal("wire bytes not counted")
	}
}

// TestChanNetworkCoalesce: queued tours from the same sender merge down
// to the single best one.
func TestChanNetworkCoalesce(t *testing.T) {
	ex := ExchangeConfig{Coalesce: true}
	nw := NewChanNetworkEx(2, topology.Ring, ex, 1)
	observer := obs.NewObserver(2, nil)
	nw.SetObserver(observer)
	sender, receiver := nw.Comm(0), nw.Comm(1)

	rng := rand.New(rand.NewSource(29))
	worse, better := randTour(rng, 40), randTour(rng, 40)
	sender.Broadcast(worse, 900)
	sender.Broadcast(better, 700)
	sender.Broadcast(worse, 800) // worse than queued best: merged away
	got := receiver.Drain()
	if len(got) != 1 {
		t.Fatalf("drained %d messages, want 1 after coalescing", len(got))
	}
	if got[0].Length != 700 {
		t.Fatalf("survivor length %d, want the best (700)", got[0].Length)
	}
	if c := observer.Recorder(1).Snapshot().Coalesced; c != 2 {
		t.Fatalf("coalesced=%d, want 2", c)
	}
}

// TestChanNetworkGossipSamplesWholeCluster: gossip mode must reach peers
// outside the fixed topology neighbourhood, never self, and respect the
// fanout.
func TestChanNetworkGossipSamplesWholeCluster(t *testing.T) {
	const n = 16
	ex := ExchangeConfig{Gossip: true, Fanout: 3}
	nw := NewChanNetworkEx(n, topology.Ring, ex, 42)
	comms := make([]core.Comm, n)
	for i := range comms {
		comms[i] = nw.Comm(i)
	}
	tour := randTour(rand.New(rand.NewSource(31)), 30)
	reached := make(map[int]bool)
	for round := 0; round < 40; round++ {
		comms[0].Broadcast(tour, 100)
		for i := 1; i < n; i++ {
			for _, in := range comms[i].Drain() {
				if in.From != 0 {
					t.Fatalf("node %d got message from %d", i, in.From)
				}
				reached[i] = true
			}
		}
		if got := comms[0].Drain(); len(got) != 0 {
			t.Fatal("gossip delivered to self")
		}
	}
	// 40 rounds × fanout 3 over 15 peers: every ring-distant peer should
	// have been sampled (probability of missing one is ~(12/15)^120).
	if len(reached) < n-2 {
		t.Fatalf("gossip reached only %d/%d peers", len(reached), n-1)
	}
}

// TestRunClusterDeltaGossip: the full cluster loop works end to end on
// the scaled protocol and still produces a valid tour.
func TestRunClusterDeltaGossip(t *testing.T) {
	inst := tsp.Generate(tsp.FamilyUniform, 60, 3)
	ea := core.DefaultConfig()
	ea.CV, ea.CR, ea.KicksPerCall = 4, 16, 5
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res := RunCluster(ctx, inst, ClusterConfig{
		Nodes:    6,
		Topo:     topology.Ring,
		EA:       ea,
		Budget:   core.Budget{MaxIterations: 8},
		Seed:     3,
		Exchange: ExchangeConfig{Delta: true, Gossip: true, Fanout: 2, Coalesce: true, KeyframeEvery: 4},
	})
	if err := res.BestTour.Validate(inst.N()); err != nil {
		t.Fatalf("best tour invalid: %v", err)
	}
	var full, delta int64
	for _, c := range res.Counters {
		full += c.FullSends
		delta += c.DeltaSends
	}
	if full+delta == 0 {
		t.Fatal("no instrumented sends recorded")
	}
}

// tcpPair builds a connected 2-node TCP overlay with the given config
// and returns both nodes.
func tcpPair(t *testing.T, instN int, cfg TCPConfig) (*TCPNode, *TCPNode) {
	t.Helper()
	hub, err := NewHub("127.0.0.1:0", 2, topology.Ring)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	t.Cleanup(func() { hub.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	a, err := JoinTCPConfig(ctx, hub.Addr(), "127.0.0.1:0", instN, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := JoinTCPConfig(ctx, hub.Addr(), "127.0.0.1:0", instN, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	hub.Wait()
	if err := a.WaitPeers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitPeers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestTCPDeltaExchange: the delta protocol runs over real sockets —
// first send full, later sends as segment diffs, reconstruction exact.
func TestTCPDeltaExchange(t *testing.T) {
	const n = 70
	cfg := TCPConfig{Exchange: ExchangeConfig{Delta: true, KeyframeEvery: 32}}
	a, b := tcpPair(t, n, cfg)
	rec := obs.NewRecorder(a.ID, nil)
	a.SetRecorder(rec)

	rng := rand.New(rand.NewSource(37))
	cur := randTour(rng, n)
	deadline := time.After(20 * time.Second)
	for i := 0; i < 12; i++ {
		a.Broadcast(cur, int64(900-i))
		select {
		case m := <-b.Incoming():
			if m.From != a.ID || m.Length != int64(900-i) {
				t.Fatalf("round %d: unexpected message from=%d len=%d", i, m.From, m.Length)
			}
			wantWire(t, fmt.Sprintf("round %d", i), m.Tour, cur)
		case <-deadline:
			t.Fatalf("round %d: no delivery", i)
		}
		mutate(rng, cur, 2)
	}
	snap := rec.Snapshot()
	// 12 sends: only the first is full. One seeded mutation flips the
	// canonical orientation (a reversal through city 0's neighbourhood),
	// but the encoder diffs both orientations and keeps the small one,
	// so the flip still ships as a delta.
	if snap.FullSends != 1 || snap.DeltaSends != 11 {
		t.Fatalf("full=%d delta=%d, want 1/11", snap.FullSends, snap.DeltaSends)
	}
}

// TestTCPBatchWindowCoalesces: tours sent within one batch window
// collapse to the single best on the wire.
func TestTCPBatchWindowCoalesces(t *testing.T) {
	const n = 40
	cfg := TCPConfig{BatchWindow: 150 * time.Millisecond}
	a, b := tcpPair(t, n, cfg)
	rec := obs.NewRecorder(a.ID, nil)
	a.SetRecorder(rec)

	rng := rand.New(rand.NewSource(41))
	worse, better := randTour(rng, n), randTour(rng, n)
	a.Broadcast(worse, 800)
	a.Broadcast(better, 600) // same window: replaces the queued tour
	a.Broadcast(worse, 700)  // same window: loses to the queued best

	select {
	case m := <-b.Incoming():
		if m.Length != 600 {
			t.Fatalf("survivor length %d, want 600", m.Length)
		}
		for j := range better {
			if m.Tour[j] != better[j] {
				t.Fatalf("survivor tour differs at %d", j)
			}
		}
	case <-time.After(20 * time.Second):
		t.Fatal("batched broadcast never flushed")
	}
	// Nothing else should arrive: the window coalesced three sends to one.
	select {
	case m := <-b.Incoming():
		t.Fatalf("unexpected second delivery len=%d", m.Length)
	case <-time.After(400 * time.Millisecond):
	}
	if c := rec.Snapshot().Coalesced; c != 2 {
		t.Fatalf("coalesced=%d, want 2", c)
	}
}
