package dist

import (
	"encoding/binary"
	"fmt"
	"io"

	"distclk/internal/tsp"
)

// Message type tags on the wire.
const (
	msgJoin      = byte(1) // node -> hub: listen address
	msgNeighbors = byte(2) // hub -> node: assigned id + neighbour addresses
	msgHello     = byte(3) // node -> node: sender id
	msgTour      = byte(4) // node -> node: sender id + tour
	msgOptimum   = byte(5) // node -> node: target reached, shut down
	msgTourFull  = byte(6) // node -> node: generation-stamped full tour (delta protocol keyframe)
	msgTourDelta = byte(7) // node -> node: changed segments against a base generation
)

// maxFrame bounds accepted frame sizes (4 bytes per city on million-city
// instances plus headers fits comfortably).
const maxFrame = 1 << 26

// writeFrame emits [type][uint32 length][payload].
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame; it rejects oversized payloads.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeTour serializes (from, length, tour) for a msgTour frame.
func encodeTour(from int, length int64, t tsp.Tour) []byte {
	buf := make([]byte, 16+4*len(t))
	binary.LittleEndian.PutUint32(buf[0:], uint32(from))
	binary.LittleEndian.PutUint64(buf[4:], uint64(length))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(t)))
	for i, c := range t {
		binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(c))
	}
	return buf
}

// decodeTour parses a msgTour payload and validates the permutation length.
func decodeTour(buf []byte) (from int, length int64, t tsp.Tour, err error) {
	if len(buf) < 16 {
		return 0, 0, nil, fmt.Errorf("dist: short tour payload (%d bytes)", len(buf))
	}
	from = int(binary.LittleEndian.Uint32(buf[0:]))
	length = int64(binary.LittleEndian.Uint64(buf[4:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if len(buf) != 16+4*n {
		return 0, 0, nil, fmt.Errorf("dist: tour payload size %d does not match n=%d", len(buf), n)
	}
	t = make(tsp.Tour, n)
	for i := range t {
		t[i] = int32(binary.LittleEndian.Uint32(buf[16+4*i:]))
	}
	return from, length, t, nil
}

// encodeWireTour serializes a delta-protocol message. Full tours
// (msgTourFull) carry [from u32][length u64][gen u32][n u32][cities];
// deltas (msgTourDelta) carry [from u32][length u64][gen u32]
// [basegen u32][segcount u32] then [pos u32][count u32][cities] per
// segment. Payload sizes match WireTour.WireBytes by construction, so
// obs byte counters and simnet bandwidth agree with real TCP frames.
func encodeWireTour(w WireTour) (byte, []byte) {
	if w.Full {
		buf := make([]byte, fullHeaderBytes+4*len(w.Tour))
		binary.LittleEndian.PutUint32(buf[0:], uint32(w.From))
		binary.LittleEndian.PutUint64(buf[4:], uint64(w.Length))
		binary.LittleEndian.PutUint32(buf[12:], w.Gen)
		binary.LittleEndian.PutUint32(buf[16:], uint32(len(w.Tour)))
		for i, c := range w.Tour {
			binary.LittleEndian.PutUint32(buf[fullHeaderBytes+4*i:], uint32(c))
		}
		return msgTourFull, buf
	}
	buf := make([]byte, 0, w.WireBytes())
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put32(uint32(w.From))
	binary.LittleEndian.PutUint64(tmp[:], uint64(w.Length))
	buf = append(buf, tmp[:]...)
	put32(w.Gen)
	put32(w.BaseGen)
	put32(uint32(len(w.Segs)))
	for _, s := range w.Segs {
		put32(uint32(s.Pos))
		put32(uint32(len(s.Cities)))
		for _, c := range s.Cities {
			put32(uint32(c))
		}
	}
	return msgTourDelta, buf
}

// decodeWireTour parses a msgTourFull/msgTourDelta payload. n is the
// expected instance size; deltas inherit it (their frames do not repeat
// it), and full tours are checked against it.
func decodeWireTour(typ byte, buf []byte, n int) (WireTour, error) {
	var w WireTour
	if typ == msgTourFull {
		if len(buf) < fullHeaderBytes {
			return w, fmt.Errorf("dist: short full-tour payload (%d bytes)", len(buf))
		}
		w.Full = true
		w.From = int(binary.LittleEndian.Uint32(buf[0:]))
		w.Length = int64(binary.LittleEndian.Uint64(buf[4:]))
		w.Gen = binary.LittleEndian.Uint32(buf[12:])
		w.N = int(binary.LittleEndian.Uint32(buf[16:]))
		if w.N != n || len(buf) != fullHeaderBytes+4*w.N {
			return w, fmt.Errorf("dist: full-tour payload size %d does not match n=%d", len(buf), w.N)
		}
		w.Tour = make(tsp.Tour, w.N)
		for i := range w.Tour {
			w.Tour[i] = int32(binary.LittleEndian.Uint32(buf[fullHeaderBytes+4*i:]))
		}
		return w, nil
	}
	if len(buf) < deltaHeaderBytes {
		return w, fmt.Errorf("dist: short delta payload (%d bytes)", len(buf))
	}
	w.From = int(binary.LittleEndian.Uint32(buf[0:]))
	w.Length = int64(binary.LittleEndian.Uint64(buf[4:]))
	w.Gen = binary.LittleEndian.Uint32(buf[12:])
	w.BaseGen = binary.LittleEndian.Uint32(buf[16:])
	segs := int(binary.LittleEndian.Uint32(buf[20:]))
	w.N = n
	off := deltaHeaderBytes
	for i := 0; i < segs; i++ {
		if off+segHeaderBytes > len(buf) {
			return w, fmt.Errorf("dist: truncated delta segment header")
		}
		pos := int32(binary.LittleEndian.Uint32(buf[off:]))
		count := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += segHeaderBytes
		if count < 0 || off+4*count > len(buf) {
			return w, fmt.Errorf("dist: truncated delta segment body")
		}
		cities := make([]int32, count)
		for j := range cities {
			cities[j] = int32(binary.LittleEndian.Uint32(buf[off+4*j:]))
		}
		off += 4 * count
		w.Segs = append(w.Segs, Seg{Pos: pos, Cities: cities})
	}
	if off != len(buf) {
		return w, fmt.Errorf("dist: delta payload has %d trailing bytes", len(buf)-off)
	}
	return w, nil
}

// encodeNeighbors serializes the hub's reply: assigned id, total expected
// nodes, and the neighbour list as (id, addr) pairs.
func encodeNeighbors(id, total int, ids []int, addrs []string) []byte {
	var buf []byte
	var tmp [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint32(id))
	put(uint32(total))
	put(uint32(len(ids)))
	for i := range ids {
		put(uint32(ids[i]))
		put(uint32(len(addrs[i])))
		buf = append(buf, addrs[i]...)
	}
	return buf
}

func decodeNeighbors(buf []byte) (id, total int, ids []int, addrs []string, err error) {
	off := 0
	get := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("dist: truncated neighbour payload")
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	var v uint32
	if v, err = get(); err != nil {
		return
	}
	id = int(v)
	if v, err = get(); err != nil {
		return
	}
	total = int(v)
	if v, err = get(); err != nil {
		return
	}
	count := int(v)
	for i := 0; i < count; i++ {
		if v, err = get(); err != nil {
			return
		}
		ids = append(ids, int(v))
		if v, err = get(); err != nil {
			return
		}
		alen := int(v)
		if off+alen > len(buf) {
			err = fmt.Errorf("dist: truncated neighbour address")
			return
		}
		addrs = append(addrs, string(buf[off:off+alen]))
		off += alen
	}
	return
}
