package dist

import (
	"encoding/binary"
	"fmt"
	"io"

	"distclk/internal/tsp"
)

// Message type tags on the wire.
const (
	msgJoin      = byte(1) // node -> hub: listen address
	msgNeighbors = byte(2) // hub -> node: assigned id + neighbour addresses
	msgHello     = byte(3) // node -> node: sender id
	msgTour      = byte(4) // node -> node: sender id + tour
	msgOptimum   = byte(5) // node -> node: target reached, shut down
)

// maxFrame bounds accepted frame sizes (4 bytes per city on million-city
// instances plus headers fits comfortably).
const maxFrame = 1 << 26

// writeFrame emits [type][uint32 length][payload].
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame; it rejects oversized payloads.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeTour serializes (from, length, tour) for a msgTour frame.
func encodeTour(from int, length int64, t tsp.Tour) []byte {
	buf := make([]byte, 16+4*len(t))
	binary.LittleEndian.PutUint32(buf[0:], uint32(from))
	binary.LittleEndian.PutUint64(buf[4:], uint64(length))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(t)))
	for i, c := range t {
		binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(c))
	}
	return buf
}

// decodeTour parses a msgTour payload and validates the permutation length.
func decodeTour(buf []byte) (from int, length int64, t tsp.Tour, err error) {
	if len(buf) < 16 {
		return 0, 0, nil, fmt.Errorf("dist: short tour payload (%d bytes)", len(buf))
	}
	from = int(binary.LittleEndian.Uint32(buf[0:]))
	length = int64(binary.LittleEndian.Uint64(buf[4:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if len(buf) != 16+4*n {
		return 0, 0, nil, fmt.Errorf("dist: tour payload size %d does not match n=%d", len(buf), n)
	}
	t = make(tsp.Tour, n)
	for i := range t {
		t[i] = int32(binary.LittleEndian.Uint32(buf[16+4*i:]))
	}
	return from, length, t, nil
}

// encodeNeighbors serializes the hub's reply: assigned id, total expected
// nodes, and the neighbour list as (id, addr) pairs.
func encodeNeighbors(id, total int, ids []int, addrs []string) []byte {
	var buf []byte
	var tmp [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(uint32(id))
	put(uint32(total))
	put(uint32(len(ids)))
	for i := range ids {
		put(uint32(ids[i]))
		put(uint32(len(addrs[i])))
		buf = append(buf, addrs[i]...)
	}
	return buf
}

func decodeNeighbors(buf []byte) (id, total int, ids []int, addrs []string, err error) {
	off := 0
	get := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("dist: truncated neighbour payload")
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	var v uint32
	if v, err = get(); err != nil {
		return
	}
	id = int(v)
	if v, err = get(); err != nil {
		return
	}
	total = int(v)
	if v, err = get(); err != nil {
		return
	}
	count := int(v)
	for i := 0; i < count; i++ {
		if v, err = get(); err != nil {
			return
		}
		ids = append(ids, int(v))
		if v, err = get(); err != nil {
			return
		}
		alen := int(v)
		if off+alen > len(buf) {
			err = fmt.Errorf("dist: truncated neighbour address")
			return
		}
		addrs = append(addrs, string(buf[off:off+alen]))
		off += alen
	}
	return
}
