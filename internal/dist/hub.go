package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"distclk/internal/topology"
)

// Hub is the bootstrap node. It is the only central component and is used
// only during initialization: each node connects once, announces its listen
// address, and receives its hypercube slot plus the addresses of the
// neighbours that already joined. Later joiners contact earlier ones
// directly, which adds the reverse edges — after the last join the overlay
// is the full topology and the hub is idle (paper §2.2).
type Hub struct {
	ln        net.Listener
	expected  int
	topo      topology.Kind
	ioTimeout time.Duration

	mu     sync.Mutex
	joined []string // addr by node id, in join order

	done chan struct{}
}

// NewHub listens on addr (e.g. "127.0.0.1:0") for `expected` nodes.
func NewHub(addr string, expected int, topo topology.Kind) (*Hub, error) {
	if expected <= 0 {
		return nil, fmt.Errorf("dist: hub needs a positive node count")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Hub{ln: ln, expected: expected, topo: topo, ioTimeout: DefaultIOTimeout, done: make(chan struct{})}, nil
}

// SetIOTimeout overrides the per-join handshake deadline (default
// DefaultIOTimeout). Call before Serve.
func (h *Hub) SetIOTimeout(d time.Duration) {
	if d > 0 {
		h.ioTimeout = d
	}
}

// Addr returns the hub's listen address for nodes to dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Joined reports how many nodes have registered so far.
func (h *Hub) Joined() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.joined)
}

// Serve accepts joins until all expected nodes registered, ctx is done, or
// the listener closes, then returns. Run it in its own goroutine.
func (h *Hub) Serve(ctx context.Context) error {
	defer close(h.done)
	if ctx.Done() != nil {
		// Accept has no context form; closing the listener is the idiomatic
		// unblocking mechanism.
		stop := context.AfterFunc(ctx, func() { h.ln.Close() })
		defer stop()
	}
	for {
		h.mu.Lock()
		full := len(h.joined) >= h.expected
		h.mu.Unlock()
		if full {
			return nil
		}
		conn, err := h.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := h.handle(conn); err != nil {
			conn.Close()
			continue
		}
		conn.Close()
	}
}

func (h *Hub) handle(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(h.ioTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != msgJoin {
		return fmt.Errorf("dist: hub expected join, got type %d", typ)
	}
	addr := string(payload)

	h.mu.Lock()
	id := len(h.joined)
	h.joined = append(h.joined, addr)
	// Neighbours among already-joined nodes only; the contact-back step
	// completes the symmetric edges.
	var ids []int
	var addrs []string
	for _, o := range topology.Neighbors(h.topo, h.expected, id) {
		if o < id {
			ids = append(ids, o)
			addrs = append(addrs, h.joined[o])
		}
	}
	h.mu.Unlock()

	return writeFrame(conn, msgNeighbors, encodeNeighbors(id, h.expected, ids, addrs))
}

// Wait blocks until Serve finished (all nodes joined or listener closed).
func (h *Hub) Wait() { <-h.done }

// Close shuts the listener down.
func (h *Hub) Close() error { return h.ln.Close() }
