package dist

import (
	"context"
	"testing"
	"time"

	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// TestHeterogeneousNodeLifetimes lives in lifetimes_ext_test.go (external
// test package): it drives simnet, which imports dist for the exchange
// protocol, so it cannot live in package dist without an import cycle.

// TestTCPPeerDeath kills one TCP node mid-run; the survivors must drop the
// dead peer and keep exchanging.
func TestTCPPeerDeath(t *testing.T) {
	const nodes = 3
	in := tsp.Generate(tsp.FamilyUniform, 40, 33)
	ctx := testCtx(t, 30*time.Second)

	hub, err := NewHub("127.0.0.1:0", nodes, topology.Complete)
	if err != nil {
		t.Fatal(err)
	}
	// Short I/O timeout so the write to the dead peer errors quickly.
	hub.SetIOTimeout(2 * time.Second)
	go hub.Serve(context.Background())
	defer hub.Close()

	tcpNodes := make([]*TCPNode, nodes)
	for i := range tcpNodes {
		n, err := JoinTCPConfig(ctx, hub.Addr(), "127.0.0.1:0", in.N(),
			TCPConfig{IOTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		tcpNodes[i] = n
	}
	hub.Wait()
	for i, n := range tcpNodes {
		if err := n.WaitPeers(ctx, nodes-1); err != nil {
			t.Fatalf("node %d peers never connected: %v", i, err)
		}
	}

	// Kill node 2.
	tcpNodes[2].Close()

	// Broadcast from node 0: node 1 receives; the write to the dead peer
	// eventually errors and removes it without wedging the sender.
	tour := tsp.IdentityTour(in.N())
	tcpNodes[0].Broadcast(tour, 7)
	select {
	case msg := <-tcpNodes[1].Incoming():
		if msg.From != tcpNodes[0].ID || msg.Length != 7 {
			t.Fatalf("survivor got unexpected message %v", msg)
		}
	case <-ctx.Done():
		t.Fatal("survivor stopped receiving after peer death")
	}
	tcpNodes[0].Close()
	tcpNodes[1].Close()
}

// TestTCPDuplicateOptimumAnnouncements checks the flood guard: multiple
// announcements must not loop forever.
func TestTCPDuplicateOptimumAnnouncements(t *testing.T) {
	const nodes = 3
	ctx := testCtx(t, 30*time.Second)
	hub, err := NewHub("127.0.0.1:0", nodes, topology.Complete)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	defer hub.Close()

	tcpNodes := make([]*TCPNode, nodes)
	for i := range tcpNodes {
		n, err := JoinTCP(ctx, hub.Addr(), "127.0.0.1:0", 10)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		tcpNodes[i] = n
	}
	hub.Wait()
	for i, n := range tcpNodes {
		if err := n.WaitPeers(ctx, nodes-1); err != nil {
			t.Fatalf("node %d peers never connected: %v", i, err)
		}
	}

	// Two nodes announce simultaneously.
	tcpNodes[0].AnnounceOptimum(100)
	tcpNodes[1].AnnounceOptimum(100)
	for i, n := range tcpNodes {
		select {
		case <-n.StoppedChan():
		case <-ctx.Done():
			t.Fatalf("optimum flood did not reach node %d", i)
		}
	}
}
