package dist

import (
	"context"
	"sync"
	"testing"
	"time"

	"distclk/internal/core"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// TestHeterogeneousNodeLifetimes reproduces the paper's end-of-run
// degeneration: "due to different running times on the nodes at the end of
// a simulation more and more nodes might become inactive" — remaining
// nodes must keep working as their neighbourhood drains.
func TestHeterogeneousNodeLifetimes(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 150, 31)
	nw := NewChanNetwork(4, topology.Hypercube)

	var wg sync.WaitGroup
	results := make([]core.Stats, 4)
	for i := 0; i < 4; i++ {
		cfg := core.DefaultConfig()
		cfg.KicksPerCall = 5
		node := core.NewNode(i, in, cfg, nw.Comm(i), int64(i+1))
		// Nodes 0 and 1 stop after 2 iterations; 2 and 3 run 12.
		iters := int64(2)
		if i >= 2 {
			iters = 12
		}
		wg.Add(1)
		go func(idx int, n *core.Node, maxIters int64) {
			defer wg.Done()
			results[idx] = n.Run(testCtx(t, 60*time.Second), core.Budget{
				MaxIterations: maxIters,
			})
		}(i, node, iters)
	}
	wg.Wait()

	for i, s := range results {
		if s.BestLength == 0 {
			t.Fatalf("node %d produced no result", i)
		}
	}
	if results[2].Iterations != 12 || results[3].Iterations != 12 {
		t.Fatalf("long-lived nodes cut short: %d, %d iterations",
			results[2].Iterations, results[3].Iterations)
	}
	// Messages to inactive nodes pile up in their inboxes harmlessly (the
	// paper's nodes simply stop reading); the network must not deadlock.
	if nw.Drops() > 0 && results[2].BestLength == 0 {
		t.Fatal("network degraded fatally under churn")
	}
}

// TestTCPPeerDeath kills one TCP node mid-run; the survivors must drop the
// dead peer and keep exchanging.
func TestTCPPeerDeath(t *testing.T) {
	const nodes = 3
	in := tsp.Generate(tsp.FamilyUniform, 40, 33)

	hub, err := NewHub("127.0.0.1:0", nodes, topology.Complete)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	defer hub.Close()

	tcpNodes := make([]*TCPNode, nodes)
	for i := range tcpNodes {
		n, err := JoinTCP(context.Background(), hub.Addr(), "127.0.0.1:0", in.N())
		if err != nil {
			t.Fatal(err)
		}
		tcpNodes[i] = n
	}
	hub.Wait()
	waitPeers(t, tcpNodes, nodes-1)

	// Kill node 2.
	tcpNodes[2].Close()

	// Broadcast from node 0: node 1 receives; the write to the dead peer
	// eventually errors and removes it without wedging the sender.
	tour := tsp.IdentityTour(in.N())
	deadline := time.Now().Add(5 * time.Second)
	got := false
	for !got && time.Now().Before(deadline) {
		tcpNodes[0].Broadcast(tour, 7)
		time.Sleep(20 * time.Millisecond)
		if msgs := tcpNodes[1].Drain(); len(msgs) > 0 {
			got = true
		}
	}
	if !got {
		t.Fatal("survivor stopped receiving after peer death")
	}
	tcpNodes[0].Close()
	tcpNodes[1].Close()
}

// TestTCPDuplicateOptimumAnnouncements checks the flood guard: multiple
// announcements must not loop forever.
func TestTCPDuplicateOptimumAnnouncements(t *testing.T) {
	const nodes = 3
	hub, err := NewHub("127.0.0.1:0", nodes, topology.Complete)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	defer hub.Close()

	tcpNodes := make([]*TCPNode, nodes)
	for i := range tcpNodes {
		n, err := JoinTCP(context.Background(), hub.Addr(), "127.0.0.1:0", 10)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		tcpNodes[i] = n
	}
	hub.Wait()
	waitPeers(t, tcpNodes, nodes-1)

	// Two nodes announce simultaneously.
	tcpNodes[0].AnnounceOptimum(100)
	tcpNodes[1].AnnounceOptimum(100)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range tcpNodes {
			if !n.Stopped() {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("optimum flood did not converge")
}

func waitPeers(t *testing.T, ns []*TCPNode, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, n := range ns {
			if n.PeerCount() < want {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("peers never connected")
}
