package dist

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"distclk/internal/core"
	"distclk/internal/exact"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// testCtx bounds a test run the way Deadline budgets used to.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(typ byte, payload []byte) bool {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			return false
		}
		gotType, gotPayload, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return gotType == typ && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{msgTour, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTourCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		tour := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		from := rng.Intn(64)
		length := rng.Int63()
		buf := encodeTour(from, length, tour)
		gotFrom, gotLen, gotTour, err := decodeTour(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotFrom != from || gotLen != length || len(gotTour) != n {
			t.Fatalf("header mismatch: %d/%d/%d", gotFrom, gotLen, len(gotTour))
		}
		for i := range tour {
			if tour[i] != gotTour[i] {
				t.Fatal("tour corrupted in codec")
			}
		}
	}
}

func TestTourCodecRejectsCorrupt(t *testing.T) {
	tour := tsp.IdentityTour(10)
	buf := encodeTour(1, 100, tour)
	if _, _, _, err := decodeTour(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated tour accepted")
	}
	if _, _, _, err := decodeTour(buf[:8]); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestNeighborsCodecRoundTrip(t *testing.T) {
	buf := encodeNeighbors(5, 8, []int{1, 4, 7}, []string{"a:1", "b:22", "c:333"})
	id, total, ids, addrs, err := decodeNeighbors(buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 || total != 8 || len(ids) != 3 || len(addrs) != 3 {
		t.Fatalf("decoded %d/%d/%v/%v", id, total, ids, addrs)
	}
	if ids[2] != 7 || addrs[2] != "c:333" {
		t.Fatalf("wrong entries: %v %v", ids, addrs)
	}
	if _, _, _, _, err := decodeNeighbors(buf[:5]); err == nil {
		t.Fatal("truncated neighbour payload accepted")
	}
}

func TestChanNetworkBroadcastReachesNeighborsOnly(t *testing.T) {
	nw := NewChanNetwork(8, topology.Hypercube)
	comms := make([]core.Comm, 8)
	for i := range comms {
		comms[i] = nw.Comm(i)
	}
	tour := tsp.IdentityTour(5)
	comms[0].Broadcast(tour, 123)
	// Node 0's hypercube neighbours are 1, 2, 4.
	for id := 1; id < 8; id++ {
		got := comms[id].Drain()
		isNeighbor := id == 1 || id == 2 || id == 4
		if isNeighbor && (len(got) != 1 || got[0].From != 0 || got[0].Length != 123) {
			t.Errorf("neighbour %d received %v", id, got)
		}
		if !isNeighbor && len(got) != 0 {
			t.Errorf("non-neighbour %d received %v", id, got)
		}
	}
}

func TestChanNetworkBroadcastCopiesTour(t *testing.T) {
	nw := NewChanNetwork(2, topology.Complete)
	a, b := nw.Comm(0), nw.Comm(1)
	tour := tsp.IdentityTour(4)
	a.Broadcast(tour, 10)
	tour[0], tour[1] = tour[1], tour[0] // mutate after send
	got := b.Drain()
	if len(got) != 1 {
		t.Fatal("no message")
	}
	if got[0].Tour[0] != 0 || got[0].Tour[1] != 1 {
		t.Fatal("broadcast aliased the sender's tour")
	}
}

func TestChanNetworkOptimumStopsEveryone(t *testing.T) {
	nw := NewChanNetwork(4, topology.Ring)
	nw.Comm(2).AnnounceOptimum(42)
	for i := 0; i < 4; i++ {
		if !nw.Comm(i).Stopped() {
			t.Errorf("node %d not stopped", i)
		}
	}
}

func TestChanNetworkDropsWhenFull(t *testing.T) {
	nw := NewChanNetwork(2, topology.Complete)
	observer := obs.NewObserver(2, nil)
	nw.SetObserver(observer)
	a := nw.Comm(0)
	tour := tsp.IdentityTour(3)
	for i := 0; i < InboxCapacity+10; i++ {
		a.Broadcast(tour, int64(i))
	}
	if nw.Drops() != 10 {
		t.Errorf("drops = %d, want 10", nw.Drops())
	}
	if got := nw.Comm(1).Drain(); len(got) != InboxCapacity {
		t.Errorf("drained %d, want %d", len(got), InboxCapacity)
	}
	// Overflow drops are observable: counter on the receiver plus one
	// msg-dropped event per lost tour, attributed receiver<-sender.
	counters := observer.Counters()
	if counters[1].MsgDrops != 10 {
		t.Errorf("receiver counted %d drops, want 10", counters[1].MsgDrops)
	}
	dropped := 0
	for _, e := range observer.Events() {
		if e.Kind == obs.KindMsgDropped {
			dropped++
			if e.Node != 1 || e.From != 0 {
				t.Errorf("drop event misattributed: %+v", e)
			}
		}
	}
	if dropped != 10 {
		t.Errorf("%d msg-dropped events, want 10", dropped)
	}
}

func TestRunClusterFindsOptimumAndStops(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 14, 21)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClusterConfig{
		Nodes: 4,
		Topo:  topology.Hypercube,
		EA:    core.DefaultConfig(),
		Budget: core.Budget{
			Target:        optLen,
			MaxIterations: 500,
		},
		Seed: 1,
	}
	res := RunCluster(testCtx(t, 30*time.Second), in, cfg)
	if res.BestLength != optLen {
		t.Fatalf("cluster reached %d, optimum %d", res.BestLength, optLen)
	}
	if err := res.BestTour.Validate(14); err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d nodes", len(res.Stats))
	}
}

func TestRunClusterCooperationSpreadsTours(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 23)
	cfg := ClusterConfig{
		Nodes: 4,
		Topo:  topology.Complete,
		EA: func() core.Config {
			c := core.DefaultConfig()
			c.KicksPerCall = 10
			return c
		}(),
		Budget: core.Budget{
			MaxIterations: 15,
		},
		Seed: 2,
	}
	res := RunCluster(testCtx(t, 60*time.Second), in, cfg)
	if res.Broadcasts() == 0 {
		t.Fatal("no broadcasts in a cooperative run")
	}
	var received int64
	for _, s := range res.Stats {
		received += s.Received
	}
	if received == 0 {
		t.Fatal("no node ever received a tour")
	}
	sent := 0
	for _, e := range res.Events {
		if e.Kind == obs.KindBroadcastSent {
			sent++
		}
	}
	if sent == 0 {
		t.Fatal("no broadcast-sent events recorded")
	}
	// All nodes should end close to the global best thanks to exchange.
	for _, s := range res.Stats {
		if float64(s.BestLength) > float64(res.BestLength)*1.2 {
			t.Errorf("node %d ended at %d, global best %d — no cooperation?",
				s.NodeID, s.BestLength, res.BestLength)
		}
	}
}

func TestTCPClusterIntegration(t *testing.T) {
	const nodes = 4
	in := tsp.Generate(tsp.FamilyUniform, 60, 25)

	hub, err := NewHub("127.0.0.1:0", nodes, topology.Hypercube)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	defer hub.Close()

	tcpNodes := make([]*TCPNode, nodes)
	for i := 0; i < nodes; i++ {
		n, err := JoinTCP(context.Background(), hub.Addr(), "127.0.0.1:0", in.N())
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		defer n.Close()
		tcpNodes[i] = n
	}
	hub.Wait()

	// Wait for contact-back connections to settle: every node in a 2-bit
	// hypercube has exactly 2 peers.
	ctx := testCtx(t, 30*time.Second)
	for i, n := range tcpNodes {
		if err := n.WaitPeers(ctx, 2); err != nil {
			t.Fatalf("node %d peers never connected: %v", i, err)
		}
		if n.PeerCount() != 2 {
			t.Fatalf("node %d has %d peers, want 2", i, n.PeerCount())
		}
	}

	// Broadcast a tour from node 0; exactly its hypercube neighbours must
	// get it, signalled on their inbox channels (no polling).
	tour := tsp.IdentityTour(in.N())
	sender := tcpNodes[0].ID
	wantRecv := map[int]bool{}
	for _, o := range topology.Neighbors(topology.Hypercube, nodes, sender) {
		wantRecv[o] = true
	}
	tcpNodes[0].Broadcast(tour, 999)
	need := len(wantRecv)
	for got := 0; got < need; got++ {
		select {
		case m := <-tcpNodes[1].Incoming():
			checkDelivery(t, tcpNodes[1].ID, m, sender, wantRecv, in.N())
		case m := <-tcpNodes[2].Incoming():
			checkDelivery(t, tcpNodes[2].ID, m, sender, wantRecv, in.N())
		case m := <-tcpNodes[3].Incoming():
			checkDelivery(t, tcpNodes[3].ID, m, sender, wantRecv, in.N())
		case <-ctx.Done():
			t.Fatalf("only %d of %d neighbour deliveries arrived", got, need)
		}
	}

	// Optimum notification floods to every node.
	tcpNodes[1].AnnounceOptimum(12345)
	for i, n := range tcpNodes {
		select {
		case <-n.StoppedChan():
		case <-ctx.Done():
			t.Fatalf("optimum notification did not flood to node %d", i)
		}
	}
}

// checkDelivery asserts one broadcast landed on an expected neighbour and
// marks it received.
func checkDelivery(t *testing.T, id int, m core.Incoming, sender int, want map[int]bool, instN int) {
	t.Helper()
	if !want[id] {
		t.Fatalf("unexpected delivery to node %d: %v", id, m)
	}
	if m.From != sender || m.Length != 999 {
		t.Fatalf("node %d got unexpected message %v", id, m)
	}
	if err := m.Tour.Validate(instN); err != nil {
		t.Fatal(err)
	}
	delete(want, id)
}

func TestTCPNodesRunDistributedEA(t *testing.T) {
	const nodes = 2
	in := tsp.Generate(tsp.FamilyUniform, 80, 27)

	hub, err := NewHub("127.0.0.1:0", nodes, topology.Complete)
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(context.Background())
	defer hub.Close()

	results := make(chan core.Stats, nodes)
	for i := 0; i < nodes; i++ {
		go func(idx int) {
			tn, err := JoinTCP(context.Background(), hub.Addr(), "127.0.0.1:0", in.N())
			if err != nil {
				t.Errorf("join: %v", err)
				results <- core.Stats{}
				return
			}
			defer tn.Close()
			cfg := core.DefaultConfig()
			cfg.KicksPerCall = 10
			node := core.NewNode(tn.ID, in, cfg, tn, int64(idx+1))
			results <- node.Run(testCtx(t, 60*time.Second), core.Budget{
				MaxIterations: 10,
			})
		}(i)
	}
	var best int64 = 1 << 62
	for i := 0; i < nodes; i++ {
		s := <-results
		if s.BestLength > 0 && s.BestLength < best {
			best = s.BestLength
		}
	}
	if best == 1<<62 {
		t.Fatal("no node produced a result")
	}
}
