package dist

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distclk/internal/core"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// DefaultIOTimeout bounds handshake reads and every frame write unless
// TCPConfig (or Hub.SetIOTimeout) overrides it. A peer that stops reading
// cannot wedge a broadcaster: the write deadline fires, the send errors,
// and the peer is dropped (P2P churn tolerance).
const DefaultIOTimeout = 10 * time.Second

// TCPConfig tunes a TCP node. The zero value gives defaults.
type TCPConfig struct {
	// IOTimeout bounds handshake reads and frame writes (0 = the package
	// DefaultIOTimeout). Tests shorten it to fail fast; deployments over
	// slow links raise it.
	IOTimeout time.Duration
	// Exchange selects the wire protocol. Delta runs the tour-diff codec
	// per peer connection; the stream state lives with the connection, so
	// a reconnect (peer crash/restart) naturally restarts with a full
	// tour. Gossip is not available over TCP — nodes only know the
	// hub-assigned neighbour addresses, not the whole cluster.
	Exchange ExchangeConfig
	// BatchWindow, when positive, batches outgoing broadcasts per peer:
	// tours produced within one window are coalesced and only the best
	// goes on the wire when the window closes.
	BatchWindow time.Duration
}

func (c TCPConfig) ioTimeout() time.Duration {
	if c.IOTimeout > 0 {
		return c.IOTimeout
	}
	return DefaultIOTimeout
}

// TCPNode is a core.Comm over real TCP connections. Nodes form a
// peer-to-peer overlay: each maintains persistent connections to its
// topology neighbours, broadcasts improved tours as length-prefixed binary
// frames, and floods an optimum notification for distributed termination.
type TCPNode struct {
	ID    int
	Total int

	instN     int
	ln        net.Listener
	ioTimeout time.Duration
	ex        ExchangeConfig
	batch     time.Duration
	rec       *obs.Recorder // nil-safe; counts wire-protocol events

	mu       sync.Mutex
	peerCond *sync.Cond // broadcast on every peer add/remove
	peers    map[int]*tcpPeer

	inbox     chan core.Incoming
	stopped   atomic.Bool
	stoppedCh chan struct{}
	stopOnce  sync.Once
	forwarded atomic.Bool
	closed    atomic.Bool
}

type tcpPeer struct {
	id      int
	conn    net.Conn
	timeout time.Duration
	wmu     sync.Mutex

	// Delta-protocol stream state, scoped to this connection: a
	// reconnect builds a fresh tcpPeer, so both sides restart from a
	// full tour — the crash/restart fallback needs no extra signalling.
	enc DeltaEncoder // guarded by wmu (encode order = write order)
	dec DeltaDecoder // readLoop only (single goroutine)

	// Batch-window slot: the best tour produced within the open window.
	pmu        sync.Mutex
	pendTour   tsp.Tour
	pendLength int64
	pendArmed  bool
}

func (p *tcpPeer) send(typ byte, payload []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(p.timeout))
	//lint:ignore locksafety wmu exists to serialize frame writes on this one connection and the write is bounded by the deadline above
	err := writeFrame(p.conn, typ, payload)
	p.conn.SetWriteDeadline(time.Time{})
	return err
}

// JoinTCP bootstraps a node: it starts listening on listenAddr (use
// "127.0.0.1:0" to auto-pick a port), registers with the hub, and dials the
// neighbours the hub reported. instN is the instance size used to validate
// incoming tours. ctx bounds the bootstrap (hub dial + handshake + peer
// dials); once joined, the node lives until Close.
func JoinTCP(ctx context.Context, hubAddr, listenAddr string, instN int) (*TCPNode, error) {
	return JoinTCPConfig(ctx, hubAddr, listenAddr, instN, TCPConfig{})
}

// JoinTCPConfig is JoinTCP with explicit tuning.
func JoinTCPConfig(ctx context.Context, hubAddr, listenAddr string, instN int, cfg TCPConfig) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	n := &TCPNode{
		instN:     instN,
		ln:        ln,
		ioTimeout: cfg.ioTimeout(),
		ex:        cfg.Exchange,
		batch:     cfg.BatchWindow,
		peers:     make(map[int]*tcpPeer),
		inbox:     make(chan core.Incoming, InboxCapacity),
		stoppedCh: make(chan struct{}),
	}
	n.peerCond = sync.NewCond(&n.mu)
	//lint:ignore goroleak bounded by the listener: Close() in TCPNode.Close unblocks Accept and the loop returns
	go n.acceptLoop()

	var d net.Dialer
	hub, err := d.DialContext(ctx, "tcp", hubAddr)
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer hub.Close()
	hub.SetDeadline(handshakeDeadline(ctx, n.ioTimeout))
	if err := writeFrame(hub, msgJoin, []byte(ln.Addr().String())); err != nil {
		ln.Close()
		return nil, err
	}
	typ, payload, err := readFrame(hub)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if typ != msgNeighbors {
		ln.Close()
		return nil, fmt.Errorf("dist: expected neighbour list, got type %d", typ)
	}
	id, total, ids, addrs, err := decodeNeighbors(payload)
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.ID, n.Total = id, total

	for i := range ids {
		if err := n.dialPeer(ctx, ids[i], addrs[i]); err != nil {
			// A neighbour that vanished is tolerated: P2P networks are
			// designed for churn; remaining edges keep the overlay usable.
			continue
		}
	}
	return n, nil
}

// handshakeDeadline clips the IO timeout by the context deadline.
func handshakeDeadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if ctxDL, ok := ctx.Deadline(); ok && ctxDL.Before(dl) {
		dl = ctxDL
	}
	return dl
}

// Addr returns the node's listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// PeerCount reports the number of live peer connections.
func (n *TCPNode) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// WaitPeers blocks until at least `want` peer connections are live or ctx
// is done — the event-driven replacement for PeerCount polling loops.
func (n *TCPNode) WaitPeers(ctx context.Context, want int) error {
	// Wake the cond wait when ctx fires; sync.Cond has no context form.
	stop := context.AfterFunc(ctx, func() {
		n.mu.Lock()
		n.peerCond.Broadcast()
		n.mu.Unlock()
	})
	defer stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.peers) < want {
		if err := ctx.Err(); err != nil {
			return err
		}
		n.peerCond.Wait()
	}
	return nil
}

func (n *TCPNode) dialPeer(ctx context.Context, id int, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(n.ID))
	conn.SetWriteDeadline(handshakeDeadline(ctx, n.ioTimeout))
	if err := writeFrame(conn, msgHello, hello[:]); err != nil {
		conn.Close()
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	n.addPeer(id, conn)
	return nil
}

func (n *TCPNode) addPeer(id int, conn net.Conn) {
	p := &tcpPeer{id: id, conn: conn, timeout: n.ioTimeout}
	n.mu.Lock()
	if old, ok := n.peers[id]; ok {
		old.conn.Close()
	}
	n.peers[id] = p
	n.peerCond.Broadcast()
	n.mu.Unlock()
	//lint:ignore goroleak bounded by the connection: Close (via removePeer or TCPNode.Close) fails the blocking read and the loop returns
	go n.readLoop(p)
}

func (n *TCPNode) removePeer(p *tcpPeer) {
	n.mu.Lock()
	if n.peers[p.id] == p {
		delete(n.peers, p.id)
	}
	n.peerCond.Broadcast()
	n.mu.Unlock()
	p.conn.Close()
}

func (n *TCPNode) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		//lint:ignore goroleak bounded by the read deadline: the handshake read times out after ioTimeout and the goroutine exits
		go func(c net.Conn) {
			c.SetReadDeadline(time.Now().Add(n.ioTimeout))
			typ, payload, err := readFrame(c)
			if err != nil || typ != msgHello || len(payload) != 4 {
				c.Close()
				return
			}
			c.SetReadDeadline(time.Time{})
			from := int(binary.LittleEndian.Uint32(payload))
			n.addPeer(from, c)
		}(conn)
	}
}

func (n *TCPNode) readLoop(p *tcpPeer) {
	for {
		typ, payload, err := readFrame(p.conn)
		if err != nil {
			n.removePeer(p)
			return
		}
		switch typ {
		case msgTour:
			from, length, tour, err := decodeTour(payload)
			if err != nil || tour.Validate(n.instN) != nil {
				continue // corrupt tours are dropped, not fatal
			}
			n.enqueue(core.Incoming{From: from, Tour: tour, Length: length})
		case msgTourFull, msgTourDelta:
			w, err := decodeWireTour(typ, payload, n.instN)
			if err != nil {
				continue // corrupt frames are dropped, not fatal
			}
			tour, ok := p.dec.Decode(w)
			if !ok {
				// Generation gap (lost frame, or we reconnected and the
				// sender has not keyframed yet): discard, heal on the
				// next full tour.
				n.rec.DeltaGap(w.From)
				continue
			}
			n.enqueue(core.Incoming{From: w.From, Tour: tour, Length: w.Length})
		case msgOptimum:
			n.setStopped()
			n.forwardOptimum(payload)
		}
	}
}

func (n *TCPNode) forwardOptimum(payload []byte) {
	if !n.forwarded.CompareAndSwap(false, true) {
		return
	}
	n.mu.Lock()
	peers := make([]*tcpPeer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		if err := p.send(msgOptimum, payload); err != nil {
			n.removePeer(p)
		}
	}
}

func (n *TCPNode) enqueue(in core.Incoming) {
	select {
	case n.inbox <- in:
	default:
		// Inbox full: drop; fresher tours will follow.
	}
}

// Broadcast implements core.Comm: send the tour to every connected peer,
// through the batch window and delta codec when configured.
func (n *TCPNode) Broadcast(t tsp.Tour, length int64) {
	n.mu.Lock()
	peers := make([]*tcpPeer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	if n.batch > 0 {
		for _, p := range peers {
			n.pend(p, t, length)
		}
		return
	}
	var payload []byte
	if !n.ex.Delta {
		payload = encodeTour(n.ID, length, t)
	}
	for _, p := range peers {
		if err := n.sendTour(p, t, length, payload); err != nil {
			n.removePeer(p)
		}
	}
}

// pend stores the tour in the peer's batch slot, keeping only the best
// per window; the first pend of a window arms the flush timer.
func (n *TCPNode) pend(p *tcpPeer, t tsp.Tour, length int64) {
	p.pmu.Lock()
	arm := !p.pendArmed
	switch {
	case p.pendTour == nil:
		p.pendTour, p.pendLength = t.Clone(), length
	case length < p.pendLength:
		p.pendTour, p.pendLength = t.Clone(), length
		n.rec.CoalescedMsg(length, p.id)
	default:
		n.rec.CoalescedMsg(p.pendLength, p.id)
	}
	p.pendArmed = true
	p.pmu.Unlock()
	if arm {
		time.AfterFunc(n.batch, func() { n.flush(p) })
	}
}

// flush closes the peer's batch window and sends the surviving tour.
func (n *TCPNode) flush(p *tcpPeer) {
	p.pmu.Lock()
	t, length := p.pendTour, p.pendLength
	p.pendTour, p.pendArmed = nil, false
	p.pmu.Unlock()
	if t == nil || n.closed.Load() {
		return
	}
	var payload []byte
	if !n.ex.Delta {
		payload = encodeTour(n.ID, length, t)
	}
	if err := n.sendTour(p, t, length, payload); err != nil {
		n.removePeer(p)
	}
}

// sendTour writes one tour to one peer. legacyPayload is the shared
// msgTour encoding for the non-delta protocol (nil under delta, where
// every peer stream encodes its own diff under wmu so that generation
// order matches write order).
func (n *TCPNode) sendTour(p *tcpPeer, t tsp.Tour, length int64, legacyPayload []byte) error {
	if !n.ex.Delta {
		return p.send(msgTour, legacyPayload)
	}
	p.wmu.Lock()
	w := p.enc.Encode(n.ID, t, length, n.ex.Keyframe())
	typ, payload := encodeWireTour(w)
	p.conn.SetWriteDeadline(time.Now().Add(p.timeout))
	//lint:ignore locksafety wmu serializes encoder state and frame writes per connection; the write is bounded by the deadline above
	err := writeFrame(p.conn, typ, payload)
	p.conn.SetWriteDeadline(time.Time{})
	p.wmu.Unlock()
	if err == nil {
		if w.Full {
			n.rec.FullSent(int64(len(payload)), p.id)
		} else {
			n.rec.DeltaSent(int64(len(payload)), p.id)
		}
	}
	return err
}

// SetRecorder attaches an obs recorder so wire-protocol events (full vs
// delta sends, generation gaps, batch coalescing) are counted. Call
// before Broadcast traffic starts; nil is allowed.
func (n *TCPNode) SetRecorder(rec *obs.Recorder) { n.rec = rec }

// Drain implements core.Comm.
func (n *TCPNode) Drain() []core.Incoming {
	var out []core.Incoming
	for {
		select {
		case in := <-n.inbox:
			out = append(out, in)
		default:
			return out
		}
	}
}

// AnnounceOptimum implements core.Comm: flood the termination notice.
func (n *TCPNode) AnnounceOptimum(length int64) {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(length))
	n.setStopped()
	n.forwardOptimum(payload[:])
}

func (n *TCPNode) setStopped() {
	n.stopped.Store(true)
	n.stopOnce.Do(func() { close(n.stoppedCh) })
}

// Stopped implements core.Comm.
func (n *TCPNode) Stopped() bool { return n.stopped.Load() }

// StoppedChan is closed when an optimum/shutdown notice arrives — the
// event-driven form of polling Stopped.
func (n *TCPNode) StoppedChan() <-chan struct{} { return n.stoppedCh }

// Incoming exposes the receive channel for event-driven consumers (select
// with a timeout instead of Drain-and-sleep polling). Consume either via
// this channel or via Drain, not both concurrently.
func (n *TCPNode) Incoming() <-chan core.Incoming { return n.inbox }

// Close tears the node down.
func (n *TCPNode) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := n.ln.Close()
	n.mu.Lock()
	for _, p := range n.peers {
		p.conn.Close()
	}
	n.peers = map[int]*tcpPeer{}
	n.mu.Unlock()
	return err
}
