package dist

import (
	"distclk/internal/core"
	"distclk/internal/obs"
)

// Network hands out per-node Comm endpoints over a shared overlay and
// reports how many tours it had to drop. Three transports exist:
// ChanNetwork (in-process, goroutine-per-node real time), the TCP path
// (Hub + TCPNode, one endpoint per process, so no single Network value),
// and simnet.Network (virtual-time, fault-injecting, driven by simnet.Run's
// discrete-event loop). ChanNetwork and simnet.Network satisfy this
// interface directly.
type Network interface {
	// Comm returns node id's view of the network.
	Comm(id int) core.Comm
	// Drops reports how many tours were discarded in transit.
	Drops() int64
}

// ObservableNetwork is satisfied by networks that can report
// transport-level events (inbox overflows, link faults) through a run's
// observer. SetObserver must be called before any Comm is used.
type ObservableNetwork interface {
	Network
	SetObserver(*obs.Observer)
}

var _ ObservableNetwork = (*ChanNetwork)(nil)
