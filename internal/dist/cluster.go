package dist

import (
	"context"
	"sync"
	"time"

	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// ClusterConfig describes an in-process distributed run.
type ClusterConfig struct {
	// Nodes is the network size (the paper uses 8).
	Nodes int
	// Topo is the overlay topology (the paper uses Hypercube).
	Topo topology.Kind
	// EA configures each node's evolutionary loop.
	EA core.Config
	// Budget bounds each node's run (the same budget is applied per node,
	// matching the paper's per-node CPU-time limit). Wall-clock limits come
	// from the RunCluster context.
	Budget core.Budget
	// Seed derives per-node seeds (node i uses Seed + i*1e9+7i).
	Seed int64
	// Exchange selects the wire protocol (tour-diff broadcast, queued
	// message coalescing, gossip peer sampling). The zero value is the
	// legacy full-tour protocol. Ignored when Net is supplied — the
	// caller configures its own transport then.
	Exchange ExchangeConfig
	// Obs, when set, supplies the run's observer (it must have at least
	// Nodes recorders). When nil, RunCluster creates one internally so
	// events and counters are always available on the result.
	Obs *obs.Observer
	// Net, when set, supplies the transport. It must be safe for concurrent
	// goroutine-per-node use (ChanNetwork is; simnet.Network is not — its
	// virtual clock needs simnet.Run's single-threaded event loop). When
	// nil, a ChanNetwork over Topo is created.
	Net Network
}

// ClusterResult aggregates a distributed run.
type ClusterResult struct {
	BestTour   tsp.Tour
	BestLength int64
	Stats      []core.Stats
	// Events is the merged EA-level event stream of all nodes, ordered by
	// run-clock offset. The paper's §4 message analysis and §4.2.1 variator
	// timeline are computed from it.
	Events []obs.Event
	// Counters is the per-node counter snapshot at run end.
	Counters []obs.CounterSnapshot
	Elapsed  time.Duration
	// Nodes echoes the configured node count.
	Nodes int
}

// Broadcasts sums node broadcast counts.
func (r ClusterResult) Broadcasts() int64 {
	var total int64
	for _, s := range r.Stats {
		total += s.Broadcasts
	}
	return total
}

// RunCluster executes the distributed algorithm with one goroutine per node
// over an in-process channel network and returns the aggregated result.
// The best result "has to be collected from the local output of each node"
// (paper §2.3) — RunCluster does exactly that after all nodes stop. The
// run ends when every node's budget expires or ctx is cancelled/expired;
// cancellation still returns the best-so-far tour.
func RunCluster(ctx context.Context, inst *tsp.Instance, cfg ClusterConfig) ClusterResult {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	start := time.Now()
	// Candidate lists are identical across nodes (deterministic build on a
	// shared instance), so build them once. The paper's machines each
	// computed their own, but each had a dedicated CPU; in a time-shared
	// simulation the duplicated setup would unfairly tax the cluster.
	if cfg.EA.CLK.Neighbors == nil {
		k := cfg.EA.CLK.NeighborK
		if k == 0 {
			k = clk.DefaultParams().NeighborK
		}
		cfg.EA.CLK.Neighbors = neighbor.Build(inst, k)
	}
	observer := cfg.Obs
	if observer == nil {
		observer = obs.NewObserver(cfg.Nodes, nil)
	}
	nw := cfg.Net
	if nw == nil {
		nw = NewChanNetworkEx(cfg.Nodes, cfg.Topo, cfg.Exchange, cfg.Seed)
	}
	if on, ok := nw.(ObservableNetwork); ok {
		on.SetObserver(observer)
	}

	nodes := make([]*core.Node, cfg.Nodes)
	stats := make([]core.Stats, cfg.Nodes)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Nodes; i++ {
		seed := cfg.Seed + int64(i)*1_000_000_007
		node := core.NewNode(i, inst, cfg.EA, nw.Comm(i), seed)
		node.SetRecorder(observer.Recorder(i))
		nodes[i] = node
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			stats[idx] = nodes[idx].Run(ctx, cfg.Budget)
		}(i)
	}
	wg.Wait()

	res := ClusterResult{
		Stats:    stats,
		Events:   observer.Events(),
		Counters: observer.Counters(),
		Elapsed:  time.Since(start),
		Nodes:    cfg.Nodes,
	}
	for _, n := range nodes {
		tour, l := n.Best()
		if res.BestTour == nil || l < res.BestLength {
			res.BestTour, res.BestLength = tour, l
		}
	}
	return res
}
