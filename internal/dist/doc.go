// Package dist provides the distributed runtime for the EA in
// internal/core: an in-process channel network for simulation and
// benchmarking, and a real TCP transport with a bootstrap hub that
// assembles the hypercube exactly as described in the paper (§2.2: nodes
// join the hub, receive a neighbour list over the already-joined nodes,
// then contact neighbours directly, forming a peer-to-peer network in
// which the hub plays no further role).
//
// Invariants:
//   - Both transports satisfy core.Comm with the same semantics: best-
//     effort broadcast to overlay neighbours, non-blocking receive.
//   - Message framing is versioned and symmetric (Encode/Decode round-
//     trip); a malformed frame drops the connection, never the process.
//   - The hub is bootstrap-only: after join, no data path touches it.
package dist
