package dist

import (
	"distclk/internal/tsp"
)

// Tour-diff broadcast: after the first exchange, consecutive tours on a
// (sender → peer) stream differ only where kicks and LK moves touched
// them, so the transports send just the changed position runs — the wire
// form of lk.ArrayTour.SetSeg — against the peer's last-known
// generation. Tours are canonicalized (tsp.Tour.Canonical: city 0 first,
// fixed orientation) before diffing: the LK engine hands out arrays with
// arbitrary rotation and direction, so without the normalization two
// nearly identical cycles can disagree at every single position and the
// diff degenerates to a full tour. Every stream falls back to a full tour
// on first contact, on a keyframe cadence, whenever the diff would not be
// smaller, and implicitly after a crash/restart or TCP reconnect (fresh
// codec state on either side shows up as a generation gap that the next
// keyframe heals). The codec is transport-agnostic: ChanNetwork, the TCP
// transport, and simnet all run the same encoder/decoder pair, which is
// why simnet's fault matrix doubles as the wire-protocol harness.

// ExchangeConfig selects how tours travel between nodes. The zero value
// is the legacy protocol — full tour to every topology neighbour on
// every broadcast — which existing runs replay byte-identically.
type ExchangeConfig struct {
	// Delta turns on tour-diff broadcast with full-tour fallback.
	Delta bool
	// KeyframeEvery forces a full tour every K sends per peer stream so
	// gap-stalled receivers resync (0 = DefaultKeyframe).
	KeyframeEvery int
	// Gossip replaces fixed-neighbour push with random peer sampling:
	// each broadcast goes to Fanout peers drawn uniformly from the whole
	// cluster. Topology still defines the id space; it no longer bounds
	// who talks to whom.
	Gossip bool
	// Fanout is the number of peers sampled per gossip broadcast
	// (0 = DefaultFanout). Ignored unless Gossip is set.
	Fanout int
	// Coalesce merges queued undrained tours per sender, keeping only
	// the best — the batching window is "until the receiver next
	// drains", which bounds inbox growth at high node counts.
	Coalesce bool
}

// Defaults for ExchangeConfig's zero fields.
const (
	DefaultKeyframe = 64
	DefaultFanout   = 3
)

// Keyframe returns the effective keyframe cadence.
func (ex ExchangeConfig) Keyframe() int {
	if ex.KeyframeEvery > 0 {
		return ex.KeyframeEvery
	}
	return DefaultKeyframe
}

// GossipFanout returns the effective gossip fanout.
func (ex ExchangeConfig) GossipFanout() int {
	if ex.Fanout > 0 {
		return ex.Fanout
	}
	return DefaultFanout
}

// Seg is one run of consecutive tour positions overwritten by a delta —
// exactly the (start, cities) pair lk.ArrayTour.SetSeg applies.
type Seg struct {
	Pos    int32
	Cities []int32
}

// Wire-size model, shared by the TCP serializer, simnet's bandwidth
// accounting, and the obs byte counters so "bytes on wire" means the
// same thing everywhere.
const (
	fullHeaderBytes  = 20 // from u32 + length u64 + gen u32 + n u32
	deltaHeaderBytes = 24 // from u32 + length u64 + gen u32 + basegen u32 + segcount u32 ... (n implicit)
	segHeaderBytes   = 8  // pos u32 + count u32
)

// FullWireBytes is the encoded size of a full n-city tour message — what
// the legacy protocol charges for every exchange, and the fallback cost a
// delta must beat to go on the wire.
func FullWireBytes(n int) int { return fullHeaderBytes + 4*n }

// WireTour is one encoded exchange message: either a whole tour (Full)
// or the segment diff against the sender's previous generation.
type WireTour struct {
	From    int
	Length  int64
	N       int
	Gen     uint32 // generation this message produces
	BaseGen uint32 // generation a delta applies on top of
	Full    bool
	Tour    tsp.Tour // Full payload; treated as immutable once encoded
	Segs    []Seg    // delta payload; cities alias the encoder's snapshot
}

// WireBytes is the encoded payload size, the unit the obs counters and
// simnet's bandwidth model charge.
func (w *WireTour) WireBytes() int {
	if w.Full {
		return fullHeaderBytes + 4*w.N
	}
	b := deltaHeaderBytes
	for _, s := range w.Segs {
		b += segHeaderBytes + 4*len(s.Cities)
	}
	return b
}

// diffSegs returns the position runs where cur differs from old, merging
// runs separated by ≤2 equal positions (a seg header costs 8 bytes, two
// repeated cities cost the same — merging never loses and keeps the seg
// count low). Returned cities alias cur.
func diffSegs(old, cur tsp.Tour) []Seg {
	var segs []Seg
	i := 0
	for i < len(cur) {
		if cur[i] == old[i] {
			i++
			continue
		}
		start := i
		end := i + 1 // one past the last mismatch in this run
		for j := i + 1; j < len(cur); j++ {
			if cur[j] != old[j] {
				end = j + 1
				continue
			}
			// Equal position: close the run only if the next mismatch is
			// more than 2 equal positions away.
			if j-end >= 2 {
				break
			}
		}
		segs = append(segs, Seg{Pos: int32(start), Cities: cur[start:end]})
		i = end
	}
	return segs
}

// segBytes is the wire cost of a segment list alone, used to compare
// candidate diffs before a WireTour is committed.
func segBytes(segs []Seg) int {
	b := 0
	for _, s := range segs {
		b += segHeaderBytes + 4*len(s.Cities)
	}
	return b
}

// DeltaEncoder holds the sender side of one (sender → peer) stream: the
// last tour put on that wire and its generation. The zero value is
// ready; the first Encode emits a full tour.
type DeltaEncoder struct {
	last      tsp.Tour
	gen       uint32
	sinceFull int
}

// reversed returns the other traversal orientation of a canonical tour:
// city 0 stays first, the rest of the cycle is walked backwards. Both
// orientations are the same Hamiltonian cycle at the same length.
func reversed(c tsp.Tour) tsp.Tour {
	n := len(c)
	out := make(tsp.Tour, n)
	if n == 0 {
		return out
	}
	out[0] = c[0]
	for i := 1; i < n; i++ {
		out[i] = c[n-i]
	}
	return out
}

// Encode turns (t, length) into the next message for this stream,
// choosing delta vs full per the fallback rules. It snapshots t in
// canonical form (receivers reconstruct the same cycle at the same
// length, normalized to start at city 0), so the caller may keep
// mutating its tour. When the previous snapshot exists the encoder
// diffs both traversal orientations against it and keeps the smaller:
// a kick or LK move through city 0's neighbourhood flips which
// orientation tsp.Tour.Canonical picks, and without the second diff
// that flip masquerades as a whole-tour change.
func (e *DeltaEncoder) Encode(from int, t tsp.Tour, length int64, keyframe int) WireTour {
	w := WireTour{From: from, Length: length, N: len(t)}
	snap := t.Canonical()
	full := e.last == nil || len(e.last) != len(t) || e.sinceFull >= keyframe
	if !full {
		w.Segs = diffSegs(e.last, snap)
		w.BaseGen = e.gen
		rev := reversed(snap)
		if rsegs := diffSegs(e.last, rev); segBytes(rsegs) < segBytes(w.Segs) {
			snap, w.Segs = rev, rsegs
		}
		if w.WireBytes() >= fullHeaderBytes+4*w.N {
			full = true
			w.Segs = nil
		}
	}
	e.gen++
	w.Gen = e.gen
	if full {
		w.Full = true
		w.Tour = snap
		e.sinceFull = 0
	} else {
		e.sinceFull++
	}
	e.last = snap
	return w
}

// DeltaDecoder holds the receiver side of one (sender → receiver)
// stream. The zero value is ready; it discards deltas until the first
// full tour arrives.
type DeltaDecoder struct {
	last tsp.Tour
	gen  uint32
	seen []bool // permutation-check scratch
}

// Decode reconstructs the sender's tour from w. The returned tour is an
// independent copy the caller owns. ok is false on a generation gap —
// the delta's base is not the state this decoder holds (loss, reorder,
// duplicate, or restart) — or on a corrupt payload; the message must
// then be discarded and the stream heals at the sender's next full tour.
func (d *DeltaDecoder) Decode(w WireTour) (t tsp.Tour, ok bool) {
	if w.Full {
		if !d.validPerm(w.Tour) {
			return nil, false
		}
		d.last = w.Tour.Clone()
		d.gen = w.Gen
		return d.last.Clone(), true
	}
	if d.last == nil || len(d.last) != w.N || w.BaseGen != d.gen {
		return nil, false
	}
	next := d.last.Clone()
	for _, s := range w.Segs {
		if s.Pos < 0 || int(s.Pos)+len(s.Cities) > len(next) {
			return nil, false
		}
		copy(next[s.Pos:], s.Cities) // ArrayTour.SetSeg semantics
	}
	if !d.validPerm(next) {
		// A delta that passed the generation check but broke the
		// permutation means corruption; drop the stream state so later
		// deltas gap until a full tour restores a trusted base.
		d.last = nil
		return nil, false
	}
	d.last = next
	d.gen = w.Gen
	return next.Clone(), true
}

// Generation returns the decoder's current stream generation.
func (d *DeltaDecoder) Generation() uint32 { return d.gen }

func (d *DeltaDecoder) validPerm(t tsp.Tour) bool {
	if len(d.seen) != len(t) {
		d.seen = make([]bool, len(t))
	}
	for i := range d.seen {
		d.seen[i] = false
	}
	for _, c := range t {
		if c < 0 || int(c) >= len(t) || d.seen[c] {
			return false
		}
		d.seen[c] = true
	}
	return true
}
