package dist

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"distclk/internal/core"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// ChanNetwork is the in-process network: every node is a goroutine and
// tours travel through mutex-guarded per-node inboxes. It reproduces the
// paper's communication pattern exactly (asynchronous broadcast to
// topology neighbours, drain-on-demand) without sockets, so simulations
// and tests are deterministic in structure and fast. With an
// ExchangeConfig it additionally runs the scaled wire protocol:
// tour-diff broadcast, queued-message coalescing, and gossip peer
// sampling. Message-flow telemetry for the legacy path is not recorded
// here: nodes emit broadcast-sent/received events through their
// obs.Recorder, which sees every transport identically.
type ChanNetwork struct {
	n       int
	topo    topology.Kind
	ex      ExchangeConfig
	seed    int64
	inboxes []*chanInbox
	stopped atomic.Bool
	drops   atomic.Int64

	// obs, when set, receives an event (and bumps the receiver's MsgDrops
	// counter) for every inbox-full drop, plus the delta/coalesce kinds
	// when the exchange protocol is on. Set before handing out Comms.
	obs *obs.Observer
}

// chanInbox is one node's receive side: queued messages plus, when delta
// exchange is on, the per-sender reconstruction state. The mutex also
// serializes decodes per (sender → receiver) stream, which preserves
// generation order (each sender broadcasts from a single goroutine).
type chanInbox struct {
	mu   sync.Mutex
	msgs []core.Incoming
	decs map[int]*DeltaDecoder
}

// InboxCapacity is the per-node inbox bound. The EA drains its inbox
// every iteration, so even aggressive broadcast rates stay far below
// this; if a node stalls, excess tours are dropped (stale tours are
// harmless — newer, better ones follow).
const InboxCapacity = 1024

// NewChanNetwork creates the network for n nodes on the given topology,
// speaking the legacy full-tour protocol.
func NewChanNetwork(n int, topo topology.Kind) *ChanNetwork {
	return NewChanNetworkEx(n, topo, ExchangeConfig{}, 0)
}

// NewChanNetworkEx creates the network with an explicit exchange
// protocol. seed feeds gossip peer sampling (per-node streams derive
// from it), and is unused otherwise.
func NewChanNetworkEx(n int, topo topology.Kind, ex ExchangeConfig, seed int64) *ChanNetwork {
	nw := &ChanNetwork{
		n:       n,
		topo:    topo,
		ex:      ex,
		seed:    seed,
		inboxes: make([]*chanInbox, n),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = &chanInbox{}
		if ex.Delta {
			nw.inboxes[i].decs = make(map[int]*DeltaDecoder, 4)
		}
	}
	return nw
}

// Comm returns node id's view of the network.
func (nw *ChanNetwork) Comm(id int) core.Comm {
	c := &chanComm{nw: nw, id: id, neighbors: topology.Neighbors(nw.topo, nw.n, id)}
	if nw.ex.Delta {
		c.encs = make(map[int]*DeltaEncoder, len(c.neighbors))
	}
	if nw.ex.Gossip {
		c.rng = rand.New(rand.NewSource(nw.seed ^ (int64(id)+1)*0x9E3779B9))
	}
	return c
}

// SetObserver attaches the run's observer so inbox-full drops (and the
// delta/coalesce exchange events) surface as obs events instead of only
// counters. The observer must have at least n recorders. Call before any
// Comm is used.
func (nw *ChanNetwork) SetObserver(o *obs.Observer) { nw.obs = o }

// Drops reports how many tours were discarded on full inboxes.
func (nw *ChanNetwork) Drops() int64 { return nw.drops.Load() }

func (nw *ChanNetwork) recorder(id int) *obs.Recorder {
	if nw.obs == nil {
		return nil
	}
	return nw.obs.Recorder(id)
}

type chanComm struct {
	nw        *ChanNetwork
	id        int
	neighbors []int
	encs      map[int]*DeltaEncoder // per-peer send streams; single-goroutine
	rng       *rand.Rand            // gossip peer sampling; single-goroutine
}

// Broadcast sends the tour to every topology neighbour — or, in gossip
// mode, to a random sample of the whole cluster.
func (c *chanComm) Broadcast(t tsp.Tour, length int64) {
	peers := c.neighbors
	if c.rng != nil {
		peers = SamplePeers(c.rng, c.nw.n, c.id, c.nw.ex.GossipFanout(), nil)
	}
	for _, o := range peers {
		c.send(o, t, length)
	}
}

// send delivers one copy to peer o, running the delta codec and
// coalescing rules when configured.
func (c *chanComm) send(o int, t tsp.Tour, length int64) {
	nw := c.nw
	msg := core.Incoming{From: c.id, Length: length}
	if c.encs != nil {
		enc := c.encs[o]
		if enc == nil {
			enc = &DeltaEncoder{}
			c.encs[o] = enc
		}
		w := enc.Encode(c.id, t, length, nw.ex.Keyframe())
		bytes := int64(w.WireBytes())
		if w.Full {
			nw.recorder(c.id).FullSent(bytes, o)
		} else {
			nw.recorder(c.id).DeltaSent(bytes, o)
		}
		// Decode on the receiver's stream state under its inbox lock:
		// in-process "transmission" is the codec round-trip itself.
		ib := nw.inboxes[o]
		ib.mu.Lock()
		dec := ib.decs[c.id]
		if dec == nil {
			dec = &DeltaDecoder{}
			ib.decs[c.id] = dec
		}
		tour, ok := dec.Decode(w)
		if !ok {
			ib.mu.Unlock()
			nw.recorder(o).DeltaGap(c.id)
			return
		}
		msg.Tour = tour
		nw.enqueueLocked(ib, o, msg)
		ib.mu.Unlock()
		return
	}
	msg.Tour = t.Clone()
	ib := nw.inboxes[o]
	ib.mu.Lock()
	nw.enqueueLocked(ib, o, msg)
	ib.mu.Unlock()
}

// enqueueLocked applies coalescing and the capacity bound; the caller
// holds ib.mu.
func (nw *ChanNetwork) enqueueLocked(ib *chanInbox, o int, msg core.Incoming) {
	if nw.ex.Coalesce {
		for i := range ib.msgs {
			if ib.msgs[i].From != msg.From {
				continue
			}
			// Keep the better of the queued and the new tour; a batch
			// window here is "until the receiver next drains".
			if msg.Length < ib.msgs[i].Length {
				ib.msgs[i] = msg
			}
			nw.recorder(o).CoalescedMsg(ib.msgs[i].Length, msg.From)
			return
		}
	}
	if len(ib.msgs) >= InboxCapacity {
		nw.drops.Add(1)
		if rec := nw.recorder(o); rec != nil {
			// Attribute the drop to the receiver whose inbox is full;
			// MsgDropped is safe from the sender's goroutine.
			rec.MsgDropped(msg.Length, msg.From)
		}
		return
	}
	ib.msgs = append(ib.msgs, msg)
}

// SamplePeers draws k distinct gossip peers ≠ self from [0, n) using
// the caller's rand stream (simnet passes its single-threaded fault rng
// so replays stay deterministic). The optional scratch slice lets
// single-threaded callers avoid reallocation.
func SamplePeers(rng *rand.Rand, n, self, k int, scratch []int) []int {
	if k > n-1 {
		k = n - 1
	}
	out := scratch[:0]
	for len(out) < k {
		p := rng.Intn(n - 1)
		if p >= self {
			p++
		}
		dup := false
		for _, q := range out {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// Drain empties the node's inbox.
func (c *chanComm) Drain() []core.Incoming {
	ib := c.nw.inboxes[c.id]
	ib.mu.Lock()
	out := ib.msgs
	ib.msgs = nil
	ib.mu.Unlock()
	return out
}

// AnnounceOptimum stops the whole network (the paper's criterion (2)).
func (c *chanComm) AnnounceOptimum(int64) { c.nw.stopped.Store(true) }

// Stopped reports whether any node announced the optimum.
func (c *chanComm) Stopped() bool { return c.nw.stopped.Load() }
