package dist

import (
	"sync/atomic"

	"distclk/internal/core"
	"distclk/internal/obs"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

// ChanNetwork is the in-process network: every node is a goroutine and
// tours travel over buffered channels. It reproduces the paper's
// communication pattern exactly (asynchronous broadcast to topology
// neighbours, drain-on-demand) without sockets, so simulations and tests
// are deterministic in structure and fast. Message-flow telemetry is not
// recorded here: nodes emit broadcast-sent/received events through their
// obs.Recorder, which sees every transport identically.
type ChanNetwork struct {
	n       int
	topo    topology.Kind
	inboxes []chan core.Incoming
	stopped atomic.Bool
	drops   atomic.Int64

	// obs, when set, receives an event (and bumps the receiver's MsgDrops
	// counter) for every inbox-full drop. Set before handing out Comms.
	obs *obs.Observer
}

// InboxCapacity is the per-node buffered channel size. The EA drains its
// inbox every iteration, so even aggressive broadcast rates stay far below
// this; if a node stalls, excess tours are dropped (stale tours are
// harmless — newer, better ones follow).
const InboxCapacity = 1024

// NewChanNetwork creates the network for n nodes on the given topology.
func NewChanNetwork(n int, topo topology.Kind) *ChanNetwork {
	nw := &ChanNetwork{
		n:       n,
		topo:    topo,
		inboxes: make([]chan core.Incoming, n),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = make(chan core.Incoming, InboxCapacity)
	}
	return nw
}

// Comm returns node id's view of the network.
func (nw *ChanNetwork) Comm(id int) core.Comm {
	return &chanComm{nw: nw, id: id, neighbors: topology.Neighbors(nw.topo, nw.n, id)}
}

// SetObserver attaches the run's observer so inbox-full drops surface as
// obs events instead of only a counter. The observer must have at least n
// recorders. Call before any Comm is used.
func (nw *ChanNetwork) SetObserver(o *obs.Observer) { nw.obs = o }

// Drops reports how many tours were discarded on full inboxes.
func (nw *ChanNetwork) Drops() int64 { return nw.drops.Load() }

type chanComm struct {
	nw        *ChanNetwork
	id        int
	neighbors []int
}

// Broadcast sends a copy of the tour to every topology neighbour.
func (c *chanComm) Broadcast(t tsp.Tour, length int64) {
	for _, o := range c.neighbors {
		msg := core.Incoming{From: c.id, Tour: t.Clone(), Length: length}
		select {
		case c.nw.inboxes[o] <- msg:
		default:
			c.nw.drops.Add(1)
			if c.nw.obs != nil {
				// Attribute the drop to the receiver whose inbox is full;
				// MsgDropped is safe from the sender's goroutine.
				c.nw.obs.Recorder(o).MsgDropped(length, c.id)
			}
		}
	}
}

// Drain empties the node's inbox.
func (c *chanComm) Drain() []core.Incoming {
	var out []core.Incoming
	for {
		select {
		case in := <-c.nw.inboxes[c.id]:
			out = append(out, in)
		default:
			return out
		}
	}
}

// AnnounceOptimum stops the whole network (the paper's criterion (2)).
func (c *chanComm) AnnounceOptimum(int64) { c.nw.stopped.Store(true) }

// Stopped reports whether any node announced the optimum.
func (c *chanComm) Stopped() bool { return c.nw.stopped.Load() }
