package clk

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// workerSeedSalt decorrelates worker RNG streams. Worker 0's seed is the
// group seed itself, which is what makes a one-worker Group byte-identical
// to a plain Solver Run with the same seed.
const workerSeedSalt = 104_729

// GroupParams configures a parallel CLK group. The zero value asks for
// GOMAXPROCS workers with default merge cadence.
type GroupParams struct {
	// Workers is the number of concurrent kickers (<= 0 means GOMAXPROCS).
	Workers int
	// MergeEvery triggers an elite merge pass every MergeEvery group-total
	// kicks. 0 picks a default proportional to instance size; negative
	// disables merging. Merging is also skipped when Workers == 1 — fusing
	// needs tours from at least two searchers, and skipping it keeps the
	// one-worker group deterministic.
	MergeEvery int64
	// EliteK bounds the elite pool (default 5): the tours fused by a merge
	// pass are the best EliteK distinct-length tours published so far.
	EliteK int
	// MergeLK tunes the restricted LK run over the elite union graph
	// (default: the deep parameters tour merging uses, depth 60).
	MergeLK lk.Params
}

// elite is an immutable published tour: once stored in the group's slot or
// pool it is never mutated, so readers need no locks — the atomic pointer
// publication establishes the happens-before edge.
type elite struct {
	tour   tsp.Tour
	length int64
	// gen is the slot generation: it increments on every publication, so a
	// worker comparing gen against the last value it saw knows whether the
	// global best moved since its last look.
	gen uint64
	// wid is the publishing worker, or -1 for the merge goroutine.
	wid int
}

// elitePool keeps the best EliteK distinct-length published tours, ordered
// ascending by length. Distinct lengths double as a cheap tour-diversity
// filter: fusing byte-identical tours adds nothing to the union graph.
type elitePool struct {
	mu     sync.Mutex
	limit  int
	elites []*elite
}

func (p *elitePool) offer(e *elite) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := 0
	for i < len(p.elites) && p.elites[i].length < e.length {
		i++
	}
	if i < len(p.elites) && p.elites[i].length == e.length {
		return
	}
	if i >= p.limit {
		return
	}
	p.elites = append(p.elites, nil)
	copy(p.elites[i+1:], p.elites[i:])
	p.elites[i] = e
	if len(p.elites) > p.limit {
		p.elites = p.elites[:p.limit]
	}
}

func (p *elitePool) snapshot() []*elite {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*elite, len(p.elites))
	copy(out, p.elites)
	return out
}

// worker is one concurrent kicker: a full Solver (own RNG, own LK scratch,
// own incumbent) chained to the group through the shared best-tour slot.
type worker struct {
	id      int
	g       *Group
	s       *Solver
	lastGen uint64
}

// Group runs Workers concurrent CLK searchers over one instance. They share
// the read-only CSR candidate table; everything mutable is per-worker.
// Improvements flow through a lock-free slot (atomic pointer + generation
// counter); stale workers restart from the global best; a merge goroutine
// periodically fuses the elite pool with union-graph restricted LK.
//
// A Group is single-use: build, optionally SetRecorder, Run once.
type Group struct {
	inst    *tsp.Instance
	gp      GroupParams
	workers []*worker

	slot     atomic.Pointer[elite]
	kicks    atomic.Int64
	improves atomic.Int64
	merges   atomic.Int64
	mergeReq chan struct{}
	pool     elitePool
}

// NewGroup builds the workers concurrently (construction cost is one full
// LK pass per worker, aborted early if ctx is cancelled — the workers then
// start from less-optimized tours, which only matters if Run is still
// called). Candidate lists are built once and shared; pass p.Neighbors to
// share them wider still (e.g. across benchmark configs).
func NewGroup(ctx context.Context, inst *tsp.Instance, p Params, gp GroupParams, seed int64) *Group {
	stop := cancelPoll(ctx)
	p = p.normalize()
	p.Neighbors = resolveNeighbors(nil, inst, p)
	if gp.Workers <= 0 {
		gp.Workers = runtime.GOMAXPROCS(0)
	}
	if gp.EliteK <= 0 {
		gp.EliteK = 5
	}
	if gp.MergeEvery == 0 {
		// Default cadence: merge work stays a small fraction of kick work.
		gp.MergeEvery = int64(8 * inst.N())
	}
	if gp.MergeEvery < 0 {
		gp.MergeEvery = 0 // disabled
	}
	if gp.MergeLK.MaxDepth == 0 {
		gp.MergeLK = lk.Params{MaxDepth: 60, Breadth: []int{10, 6, 4, 2}}
	}
	g := &Group{
		inst:     inst,
		gp:       gp,
		workers:  make([]*worker, gp.Workers),
		mergeReq: make(chan struct{}, 1),
		pool:     elitePool{limit: gp.EliteK},
	}
	var wg sync.WaitGroup
	for i := range g.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.workers[i] = &worker{
				id: i,
				g:  g,
				s:  newSolver(nil, inst, p, seed+int64(i)*workerSeedSalt, stop),
			}
		}(i)
	}
	wg.Wait()
	return g
}

// Workers returns the resolved worker count.
func (g *Group) Workers() int { return len(g.workers) }

// SetRecorder attaches a recorder to worker i and publishes its initial
// incumbent length, mirroring what the facade does for a plain Solver.
func (g *Group) SetRecorder(i int, rec *obs.Recorder) {
	g.workers[i].s.Rec = rec
	rec.SetBest(g.workers[i].s.BestLength())
}

// Merges returns how many elite merge passes completed.
func (g *Group) Merges() int64 { return g.merges.Load() }

// Kicks returns the group-total kick count.
func (g *Group) Kicks() int64 { return g.kicks.Load() }

// BestLength returns the published global best length (the slot's), or the
// best initial incumbent before Run seeds the slot.
func (g *Group) BestLength() int64 {
	if cur := g.slot.Load(); cur != nil {
		return cur.length
	}
	return g.bestWorker().s.BestLength()
}

func (g *Group) bestWorker() *worker {
	best := g.workers[0]
	for _, w := range g.workers[1:] {
		if w.s.bestLen < best.s.bestLen {
			best = w
		}
	}
	return best
}

// Run chains kicks on all workers until the budget expires or ctx is done.
// The budget is group-scoped: MaxKicks counts kicks across all workers
// (each worker checks before kicking, so the total overshoots by at most
// Workers-1), and Target stops everyone once the shared best reaches it.
//
// With one worker the result is byte-identical to Solver.Run under the
// same seed; with more, kick interleaving makes results schedule-dependent
// (see DESIGN.md §9).
func (g *Group) Run(ctx context.Context, b Budget) Result {
	//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
	start := time.Now()
	// Seed the shared slot with the best initial incumbent. Worker lastGen
	// starts at 0, so everyone observes generation 1 on their first step and
	// the losers of the construction race restart from the winner's tour.
	bw := g.bestWorker()
	t0, l0 := bw.s.Best()
	first := &elite{tour: t0, length: l0, gen: 1, wid: bw.id}
	g.slot.Store(first)
	g.pool.offer(first)

	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	var mwg sync.WaitGroup
	if len(g.workers) > 1 && g.gp.MergeEvery > 0 {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			g.mergeLoop(mctx)
		}()
	}

	var wg sync.WaitGroup
	for _, w := range g.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(ctx, b)
		}(w)
	}
	wg.Wait()
	mcancel()
	mwg.Wait()

	// Prefer the best worker incumbent: ties accepted after the last strict
	// improvement live there, not in the slot, and for one worker that is
	// exactly what Solver.Run would return. A merged tour can still win.
	bw = g.bestWorker()
	tour, length := bw.s.Best()
	if cur := g.slot.Load(); cur != nil && cur.length < length {
		tour, length = cur.tour.Clone(), cur.length
	}
	return Result{
		Tour:     tour,
		Length:   length,
		Kicks:    g.kicks.Load(),
		Improves: g.improves.Load(),
		//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
		Elapsed: time.Since(start),
	}
}

// run is one worker's loop: observe the slot, kick, repeat.
func (w *worker) run(ctx context.Context, b Budget) {
	stop := cancelPoll(ctx)
	g := w.g
	for {
		cur := g.slot.Load()
		if b.expired(ctx, g.kicks.Load(), cur.length) {
			return
		}
		w.step(cur, stop)
	}
}

// step is the steady-state worker iteration: adopt the global best if it
// moved and beats our incumbent, kick once, publish on improvement, and
// request a merge on cadence. Everything on the happy path is allocation-
// free; publication and adoption (rare) pay for their copies off-path.
//
//distlint:hotpath
func (w *worker) step(cur *elite, stop func() bool) {
	if cur.gen != w.lastGen {
		w.lastGen = cur.gen
		if cur.length < w.s.bestLen {
			w.adopt(cur)
		}
	}
	if w.s.kickOnce(stop) {
		w.g.improves.Add(1)
		w.s.Rec.LKImprove(w.s.bestLen)
		w.publishBest()
	}
	k := w.g.kicks.Add(1)
	if w.g.gp.MergeEvery > 0 && k%w.g.gp.MergeEvery == 0 {
		w.g.requestMerge()
	}
}

// adopt restarts this worker's chain from the published global best.
func (w *worker) adopt(cur *elite) {
	w.s.SetTour(cur.tour)
	w.s.Rec.Adopted(cur.length, cur.wid)
}

// publishBest offers this worker's incumbent to the shared slot if it is a
// strict global improvement. The cheap length check runs before the O(n)
// tour copy so losing the race costs nothing.
func (w *worker) publishBest() {
	length := w.s.bestLen
	if cur := w.g.slot.Load(); cur != nil && length >= cur.length {
		return
	}
	tour, _ := w.s.Best()
	if e := w.g.publish(tour, length, w.id); e != nil {
		w.lastGen = e.gen
	}
}

// publish CASes a new elite into the slot iff it strictly improves on the
// current one, and offers it to the elite pool. Returns nil if a better
// tour won the race.
func (g *Group) publish(tour tsp.Tour, length int64, wid int) *elite {
	for {
		cur := g.slot.Load()
		if cur != nil && length >= cur.length {
			return nil
		}
		var gen uint64 = 1
		if cur != nil {
			gen = cur.gen + 1
		}
		e := &elite{tour: tour, length: length, gen: gen, wid: wid}
		if g.slot.CompareAndSwap(cur, e) {
			g.pool.offer(e)
			return e
		}
	}
}

// requestMerge nudges the merge goroutine; a pass already pending or
// running absorbs the request.
func (g *Group) requestMerge() {
	select {
	case g.mergeReq <- struct{}{}:
	default:
	}
}

// mergeLoop serves merge requests until ctx is cancelled (Run cancels it
// once all workers stop).
func (g *Group) mergeLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.mergeReq:
			g.mergeOnce(ctx)
		}
	}
}

// mergeOnce fuses the elite pool: restricted LK over the union graph of
// the elite tours, started from the global best. A strictly better fused
// tour is published like any worker improvement (wid -1). Events land on
// worker 0's recorder.
func (g *Group) mergeOnce(ctx context.Context) {
	elites := g.pool.snapshot()
	if len(elites) < 2 {
		return
	}
	cur := g.slot.Load()
	tours := make([]tsp.Tour, len(elites))
	for i, e := range elites {
		tours[i] = e.tour
	}
	adj := neighbor.UnionOfTours(g.inst.N(), tours)
	cand, err := neighbor.FromEdges(g.inst, adj)
	if err != nil {
		// Union graphs of valid tours cannot produce bad edges; skip the
		// merge rather than corrupt the incumbent if that invariant breaks.
		return
	}
	opt := lk.NewOptimizer(g.inst, cand, cur.tour, g.gp.MergeLK)
	opt.OptimizeAll(cancelPoll(ctx))
	length := opt.Length()
	g.merges.Add(1)
	g.workers[0].s.Rec.Merged(length)
	if length >= cur.length {
		return
	}
	g.publish(opt.Tour.Tour(), length, -1)
}
