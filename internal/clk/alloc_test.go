package clk

import (
	"testing"

	"distclk/internal/tsp"
)

// TestKickLoopZeroAlloc pins the zero-allocation contract of the
// steady-state kick→optimize loop: after warm-up, KickOnce must not
// allocate under any of the four kicking strategies. Every scratch buffer
// (optimizer queue, chain paths, double-bridge segment buffer, kick city
// selection) is pre-sized at construction, so an allocation here means a
// hot-path regression.
func TestKickLoopZeroAlloc(t *testing.T) {
	for _, kick := range AllKickStrategies {
		t.Run(kick.String(), func(t *testing.T) {
			in := tsp.Generate(tsp.FamilyUniform, 400, 3)
			p := DefaultParams()
			p.Kick = kick
			s := New(in, p, 5)
			for i := 0; i < 30; i++ {
				s.KickOnce() // reach steady state
			}
			if allocs := testing.AllocsPerRun(200, func() { s.KickOnce() }); allocs != 0 {
				t.Errorf("KickOnce allocates %.1f objects per kick in steady state, want 0", allocs)
			}
		})
	}
}

// TestKickLoopZeroAllocPerCandidateStrategy extends the zero-allocation
// contract across candidate-set strategies: whichever builder produced the
// CSR lists (and with the relaxed gain rule on), the steady-state kick
// loop must not allocate — the strategies differ only in construction,
// never in the hot path.
func TestKickLoopZeroAllocPerCandidateStrategy(t *testing.T) {
	for _, cand := range []string{"knn", "quadrant", "alpha", "delaunay"} {
		t.Run(cand, func(t *testing.T) {
			in := tsp.Generate(tsp.FamilyDrill, 400, 3)
			p := DefaultParams()
			p.Candidates = cand
			p.LK.RelaxDepth = 3
			s := New(in, p, 5)
			for i := 0; i < 30; i++ {
				s.KickOnce() // reach steady state
			}
			if allocs := testing.AllocsPerRun(200, func() { s.KickOnce() }); allocs != 0 {
				t.Errorf("KickOnce allocates %.1f objects per kick with %s candidates, want 0", allocs, cand)
			}
		})
	}
}

// TestKickOnceMatchesSeededBaseline guards reproducibility: identical
// seeds must give identical kick sequences and incumbent lengths run over
// run, which the benchmark harness relies on to compare BENCH_*.json
// snapshots across commits.
func TestKickOnceMatchesSeededBaseline(t *testing.T) {
	run := func() []int64 {
		in := tsp.Generate(tsp.FamilyDrill, 300, 11)
		s := New(in, DefaultParams(), 17)
		lens := []int64{s.BestLength()}
		for i := 0; i < 40; i++ {
			s.KickOnce()
			lens = append(lens, s.BestLength())
		}
		return lens
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kick %d: lengths diverge (%d vs %d) for identical seeds", i, a[i], b[i])
		}
	}
}
