package clk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distclk/internal/lk"
	"distclk/internal/tsp"
)

// TestDoubleBridgePropertyValidPermutation: any four distinct cities yield
// a valid tour with a correct delta.
func TestDoubleBridgePropertyValidPermutation(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 64, 3)
	dist := in.DistFunc()
	f := func(seed int64, raw [4]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := tsp.IdentityTour(64)
		rng.Shuffle(64, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var cities [4]int32
		used := map[int32]bool{}
		for i, r := range raw {
			c := int32(r) % 64
			for used[c] {
				c = (c + 1) % 64
			}
			used[c] = true
			cities[i] = c
		}
		at := lk.NewArrayTour(perm)
		before := perm.Length(in)
		delta, touched := DoubleBridge(at, cities, dist)
		out := at.Tour()
		if out.Validate(64) != nil {
			return false
		}
		if out.Length(in) != before+delta {
			return false
		}
		// Touched cities must include all four cut cities.
		for _, c := range cities {
			found := false
			for _, tc := range touched {
				if tc == c {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleBridgeIsInvolutionClass: applying the move never changes the
// multiset of cities (trivially) and never produces the identical cycle
// when the four cut positions are pairwise non-adjacent.
func TestDoubleBridgeChangesCycle(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 32, 5)
	dist := in.DistFunc()
	perm := tsp.IdentityTour(32)
	at := lk.NewArrayTour(perm)
	DoubleBridge(at, [4]int32{3, 11, 19, 27}, dist)
	if at.Tour().SameCycle(perm) {
		t.Fatal("double bridge left the cycle unchanged")
	}
}

// TestPerturbDeltaConsistency: Perturb's internal length bookkeeping must
// match a recomputation for any perturbation count.
func TestPerturbDeltaConsistency(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 120, 7)
	s := New(in, DefaultParams(), 3)
	for count := 1; count <= 6; count++ {
		s.Perturb(count)
		got := s.opt.Tour.Tour().Length(in)
		if got != s.opt.Length() {
			t.Fatalf("count %d: cached %d, actual %d", count, s.opt.Length(), got)
		}
	}
}

// TestKickOnceKeepsWorkingTourInSync: after any accept/revert decision the
// working tour equals the incumbent.
func TestKickOnceKeepsWorkingTourInSync(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 150, 9)
	s := New(in, DefaultParams(), 5)
	for i := 0; i < 30; i++ {
		s.KickOnce()
		wt := s.opt.Tour.Tour()
		bt, bl := s.Best()
		if wt.Length(in) != bl {
			t.Fatalf("kick %d: working tour %d, incumbent %d", i, wt.Length(in), bl)
		}
		if !wt.SameCycle(bt) {
			t.Fatalf("kick %d: working tour is not the incumbent cycle", i)
		}
	}
}
