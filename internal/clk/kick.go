// Package clk implements Chained Lin-Kernighan: Lin-Kernighan local search
// restarted from double-bridge perturbations ("kicks") of the incumbent
// tour, with the four kicking strategies of Applegate, Cook & Rohe
// (Random, Geometric, Close, Random-walk) and accept-if-not-worse chaining.
package clk

import (
	"fmt"
	"math/rand"

	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// KickStrategy selects how the four double-bridge cities are chosen.
type KickStrategy int

const (
	// KickRandom picks the four cities uniformly at random.
	KickRandom KickStrategy = iota
	// KickGeometric picks a random city v and the other three from v's k
	// nearest neighbours, giving a spatially local kick.
	KickGeometric
	// KickClose samples a subset of size beta*n, then picks the other
	// three cities from the six subset members nearest to v.
	KickClose
	// KickRandomWalk starts three independent random walks on the
	// neighbour graph from v; the walk endpoints are the other cities.
	KickRandomWalk
)

// String names the strategy as in the paper.
func (k KickStrategy) String() string {
	switch k {
	case KickRandom:
		return "random"
	case KickGeometric:
		return "geometric"
	case KickClose:
		return "close"
	case KickRandomWalk:
		return "random-walk"
	}
	return "unknown"
}

// AllKickStrategies lists the four strategies in paper order.
var AllKickStrategies = []KickStrategy{KickRandom, KickGeometric, KickClose, KickRandomWalk}

// ParseKick maps a strategy name to its constant.
func ParseKick(s string) (KickStrategy, error) {
	for _, k := range AllKickStrategies {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("clk: unknown kick strategy %q", s)
}

// kicker selects double-bridge cities and applies the move.
type kicker struct {
	strategy KickStrategy
	nbr      *neighbor.Lists
	rng      *rand.Rand
	geomK    int
	beta     float64
	walkLen  int
	dist     func(i, j int32) int64

	subset []int32 // scratch for Close
}

// selectCities returns four distinct cities per the strategy.
func (k *kicker) selectCities(n int) [4]int32 {
	var cs [4]int32
	switch k.strategy {
	case KickRandom:
		k.distinctRandom(n, cs[:])
	case KickGeometric:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		kk := k.geomK
		if kk > k.nbr.K() {
			kk = k.nbr.K()
		}
		cand := k.nbr.Of(v)[:kk]
		k.pickDistinct(cand, cs[:], n)
	case KickClose:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		size := int(k.beta * float64(n))
		if size < 8 {
			size = 8
		}
		if size > n-1 {
			size = n - 1
		}
		k.subset = k.subset[:0]
		for len(k.subset) < size {
			c := int32(k.rng.Intn(n))
			if c != v {
				k.subset = append(k.subset, c)
			}
		}
		// Six subset members nearest to v.
		six := nearestSix(k.subset, v, k.dist)
		k.pickDistinct(six, cs[:], n)
	case KickRandomWalk:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		for i := 1; i < 4; i++ {
			e := k.walk(v)
			// Ensure distinctness; fall back to random cities.
			for tries := 0; contains(cs[:i], e) || e == v; tries++ {
				if tries > 8 {
					e = int32(k.rng.Intn(n))
					continue
				}
				e = k.walk(v)
			}
			cs[i] = e
		}
	}
	return cs
}

// distinctRandom fills out with distinct random cities.
func (k *kicker) distinctRandom(n int, out []int32) {
	for i := range out {
		for {
			c := int32(k.rng.Intn(n))
			if !contains(out[:i], c) {
				out[i] = c
				break
			}
		}
	}
}

// pickDistinct fills out[1:] with distinct members of cand not equal to
// out[0], topping up with random cities if cand is too small.
func (k *kicker) pickDistinct(cand []int32, out []int32, n int) {
	idx := k.rng.Perm(len(cand))
	j := 0
	for i := 1; i < len(out); i++ {
		out[i] = -1
		for ; j < len(idx); j++ {
			c := cand[idx[j]]
			if c != out[0] && !contains(out[1:i], c) {
				out[i] = c
				j++
				break
			}
		}
		if out[i] < 0 {
			for {
				c := int32(k.rng.Intn(n))
				if !contains(out[:i], c) {
					out[i] = c
					break
				}
			}
		}
	}
}

func (k *kicker) walk(from int32) int32 {
	c := from
	for i := 0; i < k.walkLen; i++ {
		nb := k.nbr.Of(c)
		c = nb[k.rng.Intn(len(nb))]
	}
	return c
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func nearestSix(subset []int32, v int32, dist func(i, j int32) int64) []int32 {
	type cd struct {
		c int32
		d int64
	}
	best := make([]cd, 0, 7)
	for _, c := range subset {
		if c == v {
			continue
		}
		d := dist(v, c)
		pos := len(best)
		for pos > 0 && best[pos-1].d > d {
			pos--
		}
		if pos < 6 {
			best = append(best, cd{})
			copy(best[pos+1:], best[pos:])
			best[pos] = cd{c, d}
			if len(best) > 6 {
				best = best[:6]
			}
		}
	}
	out := make([]int32, len(best))
	for i, b := range best {
		out[i] = b.c
	}
	return out
}

// DoubleBridge applies the Martin–Otto–Felten double-bridge move defined by
// the four given cities to the array tour: with cut positions q1<q2<q3<q4
// (the cities' tour positions), the segments A|B|C|D (each starting just
// after a cut) are reordered A·D·C·B, all kept forward. Exactly four edges
// are exchanged and no segment is reversed. It returns the length delta
// (new minus old) and the eight endpoint cities of the changed edges.
func DoubleBridge(t *lk.ArrayTour, cities [4]int32, dist func(i, j int32) int64) (int64, [8]int32) {
	n := int32(t.N())
	var q [4]int32
	for i, c := range cities {
		q[i] = t.Pos(c)
	}
	// Sort the four positions.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && q[j-1] > q[j]; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
	next := func(p int32) int32 {
		p++
		if p == n {
			p = 0
		}
		return p
	}
	o := func(p int32) int32 { return t.At(p) }
	// Old boundary edges (q_i, q_i+1); new boundaries per A·D·C·B.
	removed := dist(o(q[0]), o(next(q[0]))) +
		dist(o(q[1]), o(next(q[1]))) +
		dist(o(q[2]), o(next(q[2]))) +
		dist(o(q[3]), o(next(q[3])))
	added := dist(o(q[0]), o(next(q[2]))) + // end A -> start D
		dist(o(q[3]), o(next(q[1]))) + // end D -> start C
		dist(o(q[2]), o(next(q[0]))) + // end C -> start B
		dist(o(q[1]), o(next(q[3]))) // end B -> start A

	touched := [8]int32{
		o(q[0]), o(next(q[0])),
		o(q[1]), o(next(q[1])),
		o(q[2]), o(next(q[2])),
		o(q[3]), o(next(q[3])),
	}

	// Rebuild the order: A = (q4..q1], D = (q3..q4], C = (q2..q3],
	// B = (q1..q2], emitted as A D C B.
	newOrder := make([]int32, 0, n)
	appendSeg := func(from, to int32) { // cities at positions (from..to] cyclic
		for p := next(from); ; p = next(p) {
			newOrder = append(newOrder, o(p))
			if p == to {
				break
			}
		}
	}
	appendSeg(q[3], q[0]) // A
	appendSeg(q[2], q[3]) // D
	appendSeg(q[1], q[2]) // C
	appendSeg(q[0], q[1]) // B
	t.SetTour(tsp.Tour(newOrder))
	return added - removed, touched
}
