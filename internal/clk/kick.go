package clk

import (
	"fmt"
	"math/rand"

	"distclk/internal/lk"
	"distclk/internal/neighbor"
)

// KickStrategy selects how the four double-bridge cities are chosen.
type KickStrategy int

const (
	// KickRandom picks the four cities uniformly at random.
	KickRandom KickStrategy = iota
	// KickGeometric picks a random city v and the other three from v's k
	// nearest neighbours, giving a spatially local kick.
	KickGeometric
	// KickClose samples a subset of size beta*n, then picks the other
	// three cities from the six subset members nearest to v.
	KickClose
	// KickRandomWalk starts three independent random walks on the
	// neighbour graph from v; the walk endpoints are the other cities.
	KickRandomWalk
)

// String names the strategy as in the paper.
func (k KickStrategy) String() string {
	switch k {
	case KickRandom:
		return "random"
	case KickGeometric:
		return "geometric"
	case KickClose:
		return "close"
	case KickRandomWalk:
		return "random-walk"
	}
	return "unknown"
}

// AllKickStrategies lists the four strategies in paper order.
var AllKickStrategies = []KickStrategy{KickRandom, KickGeometric, KickClose, KickRandomWalk}

// ParseKick maps a strategy name to its constant.
func ParseKick(s string) (KickStrategy, error) {
	for _, k := range AllKickStrategies {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("clk: unknown kick strategy %q", s)
}

// kicker selects double-bridge cities and applies the move. All scratch
// buffers live on the kicker so steady-state kicking allocates nothing.
type kicker struct {
	strategy KickStrategy
	nbr      *neighbor.Lists
	rng      *rand.Rand
	geomK    int
	beta     float64
	walkLen  int
	dist     func(i, j int32) int64

	subset []int32  // scratch for Close
	perm   []int32  // scratch for pickDistinct's shuffle
	six    [6]int32 // scratch for Close's nearest-subset selection
	segBuf []int32  // scratch for the double-bridge segment rewrite
}

// selectCities returns four distinct cities per the strategy.
//
//distlint:hotpath
func (k *kicker) selectCities(n int) [4]int32 {
	var cs [4]int32
	switch k.strategy {
	case KickRandom:
		k.distinctRandom(n, cs[:])
	case KickGeometric:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		cand := k.nbr.Of(v)
		kk := k.geomK
		if kk > len(cand) {
			kk = len(cand)
		}
		k.pickDistinct(cand[:kk], cs[:], n)
	case KickClose:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		size := int(k.beta * float64(n))
		if size < 8 {
			size = 8
		}
		if size > n-1 {
			size = n - 1
		}
		k.subset = k.subset[:0]
		for len(k.subset) < size {
			c := int32(k.rng.Intn(n))
			if c != v {
				k.subset = append(k.subset, c)
			}
		}
		// Six subset members nearest to v.
		six := k.nearestSix(k.subset, v)
		k.pickDistinct(six, cs[:], n)
	case KickRandomWalk:
		v := int32(k.rng.Intn(n))
		cs[0] = v
		for i := 1; i < 4; i++ {
			e := k.walk(v)
			// Ensure distinctness; fall back to random cities.
			for tries := 0; contains(cs[:i], e) || e == v; tries++ {
				if tries > 8 {
					e = int32(k.rng.Intn(n))
					continue
				}
				e = k.walk(v)
			}
			cs[i] = e
		}
	}
	return cs
}

// distinctRandom fills out with distinct random cities.
//
//distlint:hotpath
func (k *kicker) distinctRandom(n int, out []int32) {
	for i := range out {
		for {
			c := int32(k.rng.Intn(n))
			if !contains(out[:i], c) {
				out[i] = c
				break
			}
		}
	}
}

// shuffled returns a random permutation of 0..m-1 in a reusable buffer
// (rand.Perm allocates; the kick loop must not).
//
//distlint:hotpath
func (k *kicker) shuffled(m int) []int32 {
	if cap(k.perm) < m {
		//lint:ignore hotpathalloc one-time growth to the largest candidate list; steady-state kicks reuse the buffer
		k.perm = make([]int32, m)
	}
	p := k.perm[:m]
	for i := range p {
		p[i] = int32(i)
	}
	for i := m - 1; i > 0; i-- {
		j := k.rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// pickDistinct fills out[1:] with distinct members of cand not equal to
// out[0], topping up with random cities if cand is too small.
//
//distlint:hotpath
func (k *kicker) pickDistinct(cand []int32, out []int32, n int) {
	idx := k.shuffled(len(cand))
	j := 0
	for i := 1; i < len(out); i++ {
		out[i] = -1
		for ; j < len(idx); j++ {
			c := cand[idx[j]]
			if c != out[0] && !contains(out[1:i], c) {
				out[i] = c
				j++
				break
			}
		}
		if out[i] < 0 {
			for {
				c := int32(k.rng.Intn(n))
				if !contains(out[:i], c) {
					out[i] = c
					break
				}
			}
		}
	}
}

//distlint:hotpath
func (k *kicker) walk(from int32) int32 {
	c := from
	for i := 0; i < k.walkLen; i++ {
		nb := k.nbr.Of(c)
		c = nb[k.rng.Intn(len(nb))]
	}
	return c
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// nearestSix selects the up-to-six subset members closest to v by
// insertion into the kicker's fixed scratch arrays (no allocation).
//
//distlint:hotpath
func (k *kicker) nearestSix(subset []int32, v int32) []int32 {
	var d6 [6]int64
	cnt := 0
	for _, c := range subset {
		if c == v {
			continue
		}
		d := k.dist(v, c)
		pos := cnt
		for pos > 0 && d6[pos-1] > d {
			pos--
		}
		if pos >= 6 {
			continue
		}
		if cnt < 6 {
			cnt++
		}
		copy(k.six[pos+1:cnt], k.six[pos:cnt-1])
		copy(d6[pos+1:cnt], d6[pos:cnt-1])
		k.six[pos] = c
		d6[pos] = d
	}
	return k.six[:cnt]
}

// DoubleBridge applies the Martin–Otto–Felten double-bridge move defined by
// the four given cities to the array tour: with cut positions q1<q2<q3<q4
// (the cities' tour positions), the segments A|B|C|D (each starting just
// after a cut) are reordered A·D·C·B, all kept forward. Exactly four edges
// are exchanged and no segment is reversed. It returns the length delta
// (new minus old) and the eight endpoint cities of the changed edges.
func DoubleBridge(t *lk.ArrayTour, cities [4]int32, dist func(i, j int32) int64) (int64, [8]int32) {
	delta, touched, _ := doubleBridge(t, cities, dist, nil)
	return delta, touched
}

// doubleBridge is DoubleBridge with a caller-owned scratch buffer. Segment
// A (the arc from the last cut back to the first) keeps its positions;
// only the range (q1..q4] is rewritten in place as D·C·B, so the move
// costs O(span of the cuts) instead of O(n) plus an allocation. The
// (possibly grown) scratch buffer is returned for reuse.
//
//distlint:hotpath
func doubleBridge(t *lk.ArrayTour, cities [4]int32, dist func(i, j int32) int64, scratch []int32) (int64, [8]int32, []int32) {
	n := int32(t.N())
	var q [4]int32
	for i, c := range cities {
		q[i] = t.Pos(c)
	}
	// Sort the four positions.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && q[j-1] > q[j]; j-- {
			q[j-1], q[j] = q[j], q[j-1]
		}
	}
	// s[i] is the wrapped successor position of cut q[i].
	var s [4]int32
	for i, p := range q {
		p++
		if p == n {
			p = 0
		}
		s[i] = p
	}
	// Old boundary edges (q_i, q_i+1); new boundaries per A·D·C·B.
	removed := dist(t.At(q[0]), t.At(s[0])) +
		dist(t.At(q[1]), t.At(s[1])) +
		dist(t.At(q[2]), t.At(s[2])) +
		dist(t.At(q[3]), t.At(s[3]))
	added := dist(t.At(q[0]), t.At(s[2])) + // end A -> start D
		dist(t.At(q[3]), t.At(s[1])) + // end D -> start C
		dist(t.At(q[2]), t.At(s[0])) + // end C -> start B
		dist(t.At(q[1]), t.At(s[3])) // end B -> start A

	touched := [8]int32{
		t.At(q[0]), t.At(s[0]),
		t.At(q[1]), t.At(s[1]),
		t.At(q[2]), t.At(s[2]),
		t.At(q[3]), t.At(s[3]),
	}

	// Positions are sorted, so the range (q1..q4] is contiguous (no wrap).
	// A = (q4..q1] stays put; the range is rewritten as D = (q3..q4],
	// C = (q2..q3], B = (q1..q2].
	span := int(q[3] - q[0])
	if cap(scratch) < span {
		//lint:ignore hotpathalloc one-time growth to the instance size; New pre-sizes segBuf so steady-state kicks never land here
		scratch = make([]int32, 0, int(n))
	}
	buf := scratch[:span]
	w := 0
	for p := q[2] + 1; p <= q[3]; p++ { // D
		buf[w] = t.At(p)
		w++
	}
	for p := q[1] + 1; p <= q[2]; p++ { // C
		buf[w] = t.At(p)
		w++
	}
	for p := q[0] + 1; p <= q[1]; p++ { // B
		buf[w] = t.At(p)
		w++
	}
	t.SetSeg(q[0]+1, buf)
	return added - removed, touched, buf
}
