// Package clk implements Chained Lin-Kernighan (paper §2.1): Lin-Kernighan
// local search restarted from double-bridge perturbations ("kicks") of the
// incumbent tour, with the four kicking strategies of Applegate, Cook &
// Rohe (Random, Geometric, Close, Random-walk — compared in the paper's
// Tables 3-5) and accept-if-not-worse chaining.
//
// A Group runs several Solvers concurrently over the shared candidate
// table, cooperating through a lock-free best-tour slot and periodic
// elite-tour merging (DESIGN.md §9).
//
// Invariants:
//   - A Solver is a pure function of (instance, Params, seed): KickOnce
//     sequences are deterministic and single-goroutine. A Group confines
//     each Solver to one worker goroutine; cross-worker state is immutable
//     once published. A one-worker Group reproduces Solver.Run byte for
//     byte; with more workers, kick interleaving is schedule-dependent.
//   - BestLength never increases; KickOnce reports true only when it
//     strictly improved the incumbent.
//   - The kick loop is allocation-free after New (verified by allocation
//     tests, including the Group worker step), so budgets measured in
//     kicks are comparable across configurations.
//
//distlint:deterministic
package clk
