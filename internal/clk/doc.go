// Package clk implements Chained Lin-Kernighan (paper §2.1): Lin-Kernighan
// local search restarted from double-bridge perturbations ("kicks") of the
// incumbent tour, with the four kicking strategies of Applegate, Cook &
// Rohe (Random, Geometric, Close, Random-walk — compared in the paper's
// Tables 3-5) and accept-if-not-worse chaining.
//
// Invariants:
//   - A Solver is a pure function of (instance, Params, seed): KickOnce
//     sequences are deterministic and single-goroutine.
//   - BestLength never increases; KickOnce reports true only when it
//     strictly improved the incumbent.
//   - The kick loop is allocation-free after New (verified by an
//     allocation test), so budgets measured in kicks are comparable
//     across configurations.
//
//distlint:deterministic
package clk
