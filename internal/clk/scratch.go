package clk

import (
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Scratch bundles the per-solve scratch a Solver needs — CSR candidate
// tables, LK optimizer buffers, and kick buffers — so a long-lived
// service can recycle them across jobs (the sync.Pool in internal/serve)
// instead of re-allocating per solve. The zero-alloc steady-state
// contract is untouched: buffers are still fixed for the lifetime of one
// Solver, they just come from recycled memory instead of fresh heap.
//
// A Scratch backs AT MOST ONE live Solver at a time: building another
// solver from the same Scratch re-slices the same arrays. The zero value
// is ready to use; a nil *Scratch means "allocate fresh" (what New does).
type Scratch struct {
	csr    neighbor.Storage
	opt    lk.Scratch
	segBuf []int32
	subset []int32
}

// ints returns a length-0, capacity-≥n int32 slice backed by recycled
// memory from buf, growing it when needed.
func (sc *Scratch) ints(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, 0, n)
	}
	return (*buf)[:0]
}

// CSR exposes the scratch's CSR storage so callers that build candidate
// lists themselves (the root facade) can draw them from the same pool
// before passing them in via Params.Neighbors. Nil-safe.
func (sc *Scratch) CSR() *neighbor.Storage {
	if sc == nil {
		return nil
	}
	return &sc.csr
}

// Owns reports whether s's candidate table is backed by sc's recycled
// CSR arrays — the pool-hit assertion used by scratch-reuse tests. False
// when the solver was handed explicit Params.Neighbors (nothing pooled).
func (sc *Scratch) Owns(s *Solver) bool {
	if sc == nil || s == nil {
		return false
	}
	return sc.csr.Owns(s.Nbr)
}

// NewWith is New drawing the per-solve scratch from sc (nil = allocate
// fresh). The returned solver aliases sc until the next NewWith on it.
func NewWith(sc *Scratch, inst *tsp.Instance, p Params, seed int64) *Solver {
	return newSolver(sc, inst, p, seed, nil)
}
