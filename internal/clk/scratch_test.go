package clk

import (
	"testing"

	"distclk/internal/tsp"
)

// A Solver rebuilt from the same Scratch must draw its CSR candidate
// table from recycled memory (pool hit) and still solve correctly.
func TestScratchReuseAcrossSolvers(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 1)
	sc := &Scratch{}

	s1 := NewWith(sc, in, DefaultParams(), 1)
	if !sc.Owns(s1) {
		t.Fatalf("first solver not backed by scratch")
	}
	first := &s1.Nbr.Of(0)[0]
	l1 := s1.BestLength()

	s2 := NewWith(sc, in, DefaultParams(), 1)
	if !sc.Owns(s2) {
		t.Fatalf("rebuilt solver not backed by scratch")
	}
	if &s2.Nbr.Of(0)[0] != first {
		t.Fatalf("rebuild allocated fresh CSR arrays instead of recycling")
	}
	if got := s2.BestLength(); got != l1 {
		t.Fatalf("scratch reuse changed the deterministic result: %d vs %d", got, l1)
	}

	// Kicking still works on the recycled buffers.
	for i := 0; i < 20; i++ {
		s2.KickOnce()
	}
	tour, _ := s2.Best()
	if err := tour.Validate(in.N()); err != nil {
		t.Fatalf("invalid tour after kicks on recycled scratch: %v", err)
	}
}

// A Scratch warmed on one instance must produce correct results on a
// different (smaller and larger) instance — stale contents may never
// leak into a later solve.
func TestScratchReuseAcrossInstances(t *testing.T) {
	sc := &Scratch{}
	sizes := []int{400, 100, 250}
	for i, n := range sizes {
		in := tsp.Generate(tsp.FamilyClustered, n, int64(i+1))
		fresh := New(in, DefaultParams(), 7)
		pooled := NewWith(sc, in, DefaultParams(), 7)
		if !sc.Owns(pooled) {
			t.Fatalf("n=%d: pooled solver not backed by scratch", n)
		}
		if f, p := fresh.BestLength(), pooled.BestLength(); f != p {
			t.Fatalf("n=%d: pooled result %d differs from fresh %d", n, p, f)
		}
	}
}

// nil Scratch must be exactly New.
func TestNewWithNilScratch(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 150, 3)
	a := New(in, DefaultParams(), 5)
	b := NewWith(nil, in, DefaultParams(), 5)
	if a.BestLength() != b.BestLength() {
		t.Fatalf("NewWith(nil) diverges from New: %d vs %d", b.BestLength(), a.BestLength())
	}
	var sc *Scratch
	if sc.Owns(b) {
		t.Fatalf("nil scratch claims ownership")
	}
}
