package clk

import (
	"context"
	"math/rand"
	"time"

	"distclk/internal/construct"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// Params configures a Chained Lin-Kernighan solver.
type Params struct {
	// Kick selects the double-bridge city selection strategy. The paper's
	// (and linkern's) default is Random-walk.
	Kick KickStrategy
	// GeomK is the neighbourhood size for the Geometric strategy.
	GeomK int
	// CloseBeta is the subset fraction beta for the Close strategy.
	CloseBeta float64
	// WalkLen is the number of steps per random walk for Random-walk.
	WalkLen int
	// LK tunes the embedded Lin-Kernighan search.
	LK lk.Params
	// NeighborK is the candidate list size (ignored when Neighbors set).
	NeighborK int
	// Neighbors overrides the candidate lists (e.g. quadrant or alpha).
	Neighbors *neighbor.Lists
	// Candidates names the candidate-set strategy ("auto", "knn",
	// "quadrant", "alpha", "delaunay") used when Neighbors is nil. Empty
	// keeps the historical knn default. New/NewGroup cannot return an
	// error, so an unknown name or a failing builder falls back to knn;
	// callers that need the error surfaced resolve via neighbor.Select
	// first and pass Neighbors (the facade does).
	Candidates string
	// Construct picks the initial tour heuristic (default Quick-Borůvka).
	Construct construct.Method
}

// DefaultParams mirrors linkern's defaults where the paper relies on them.
func DefaultParams() Params {
	return Params{
		Kick:      KickRandomWalk,
		GeomK:     16,
		CloseBeta: 0.10,
		WalkLen:   30,
		LK:        lk.DefaultParams(),
		NeighborK: 10,
		Construct: construct.QuickBoruvka,
	}
}

// Budget bounds a Run. Zero values disable the respective bound. Time
// limits and external shutdown arrive through the Run context (deadline or
// cancellation), not through Budget.
type Budget struct {
	// MaxKicks stops after this many kicks.
	MaxKicks int64
	// Target stops as soon as the incumbent is <= Target (e.g. a known
	// optimum, the paper's extra termination criterion).
	Target int64
}

func (b Budget) expired(ctx context.Context, kicks int64, best int64) bool {
	if b.MaxKicks > 0 && kicks >= b.MaxKicks {
		return true
	}
	if b.Target > 0 && best <= b.Target {
		return true
	}
	if ctx.Err() != nil {
		return true
	}
	return false
}

// cancelPoll adapts a context to the lk.Optimizer abort hook, making a
// cancellation cut short even a single in-flight LK pass (the optimizer
// polls every 64 cities).
func cancelPoll(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool {
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// Result reports a Run's outcome.
type Result struct {
	Tour     tsp.Tour
	Length   int64
	Kicks    int64
	Improves int64
	Elapsed  time.Duration
}

// Solver is a Chained Lin-Kernighan engine over one instance. It keeps the
// incumbent tour between Run calls, so the distributed EA can kick, run,
// replace, and resume. Not safe for concurrent use.
type Solver struct {
	Inst   *tsp.Instance
	Nbr    *neighbor.Lists
	params Params
	rng    *rand.Rand

	opt     *lk.Optimizer // working tour
	best    *lk.ArrayTour // incumbent snapshot
	bestLen int64

	kicker kicker

	// Rec, when set, receives kick and improvement events and keeps the
	// solver's counters. A nil recorder costs one nil check per kick.
	Rec *obs.Recorder

	kicks int64
}

// normalize fills zero-valued fields with defaults so callers can set only
// what they care about.
func (p Params) normalize() Params {
	def := DefaultParams()
	if p.GeomK == 0 {
		p.GeomK = def.GeomK
	}
	if p.CloseBeta == 0 {
		p.CloseBeta = def.CloseBeta
	}
	if p.WalkLen == 0 {
		p.WalkLen = def.WalkLen
	}
	if p.LK.MaxDepth == 0 {
		p.LK = def.LK
	}
	if p.NeighborK == 0 {
		p.NeighborK = def.NeighborK
	}
	return p
}

// New builds a solver. It constructs candidate lists (unless provided), the
// initial tour, and runs a full LK pass so Best starts at a local optimum.
func New(inst *tsp.Instance, p Params, seed int64) *Solver {
	return newSolver(nil, inst, p, seed, nil)
}

// resolveNeighbors picks the candidate lists for a solver: an explicit
// Neighbors override wins; otherwise the named strategy is built (its
// CSR arrays drawn from st when non-nil), with a documented knn fallback
// on unknown names or builder errors because the engine constructors
// have no error path.
func resolveNeighbors(st *neighbor.Storage, inst *tsp.Instance, p Params) *neighbor.Lists {
	if p.Neighbors != nil {
		return p.Neighbors
	}
	if p.Candidates == "" || p.Candidates == "knn" {
		return neighbor.BuildWith(st, inst, p.NeighborK)
	}
	l, _, err := neighbor.SelectWith(st, inst, p.Candidates, p.NeighborK)
	if err != nil {
		return neighbor.BuildWith(st, inst, p.NeighborK)
	}
	return l
}

// newSolver is New with an abort hook threaded into the construction LK
// pass, so a cancelled Group stops building promptly. An aborted pass
// still leaves a valid (just less optimized) initial incumbent.
func newSolver(sc *Scratch, inst *tsp.Instance, p Params, seed int64, stop func() bool) *Solver {
	p = p.normalize()
	var st *neighbor.Storage
	var optSc *lk.Scratch
	if sc != nil {
		st, optSc = &sc.csr, &sc.opt
	}
	nbr := resolveNeighbors(st, inst, p)
	rng := rand.New(rand.NewSource(seed))
	s := &Solver{
		Inst:   inst,
		Nbr:    nbr,
		params: p,
		rng:    rng,
	}
	s.kicker = kicker{
		strategy: p.Kick,
		nbr:      nbr,
		rng:      rng,
		geomK:    p.GeomK,
		beta:     p.CloseBeta,
		walkLen:  p.WalkLen,
		dist:     inst.DistFunc(),
	}
	// Scratch is sized once here so the steady-state kick loop never
	// allocates: the double-bridge rewrite needs at most n cities and the
	// Close strategy's subset at most n-1. With a Scratch the arrays come
	// from recycled memory instead.
	if sc != nil {
		s.kicker.segBuf = sc.ints(&sc.segBuf, inst.N())
	} else {
		s.kicker.segBuf = make([]int32, 0, inst.N())
	}
	if p.Kick == KickClose {
		if sc != nil {
			s.kicker.subset = sc.ints(&sc.subset, inst.N())
		} else {
			s.kicker.subset = make([]int32, 0, inst.N())
		}
	}
	initial := construct.Build(p.Construct, inst, nbr, rng)
	s.opt = lk.NewOptimizerWith(optSc, inst, nbr, initial, p.LK)
	s.opt.OptimizeAll(stop)
	s.best = lk.NewArrayTour(s.opt.Tour.Tour())
	s.bestLen = s.opt.Length()
	return s
}

// Best returns the incumbent tour (copied) and its length.
func (s *Solver) Best() (tsp.Tour, int64) {
	return s.best.Tour(), s.bestLen
}

// BestLength returns the incumbent length.
func (s *Solver) BestLength() int64 { return s.bestLen }

// Kicks returns the cumulative number of kicks applied.
func (s *Solver) Kicks() int64 { return s.kicks }

// SetTour replaces the incumbent with the given tour (not re-optimized).
func (s *Solver) SetTour(t tsp.Tour) {
	s.best.SetTour(t)
	s.bestLen = t.Length(s.Inst)
	s.opt.SetTour(t)
}

// Reconstruct discards the incumbent, builds a fresh initial tour with the
// given method, LK-optimizes it, and installs it as the new incumbent. The
// distributed EA's restart rule (NumNoImprovements > c_r) uses this.
func (s *Solver) Reconstruct(m construct.Method) int64 {
	initial := construct.Build(m, s.Inst, s.Nbr, s.rng)
	s.opt.SetTour(initial)
	s.opt.OptimizeAll(nil)
	s.best.CopyFrom(s.opt.Tour)
	s.bestLen = s.opt.Length()
	return s.bestLen
}

// OptimizeCurrent runs a full LK pass on the incumbent (used after an
// externally supplied tour) and returns the new length.
func (s *Solver) OptimizeCurrent() int64 {
	s.opt.OptimizeAll(nil)
	if s.opt.Length() < s.bestLen {
		s.best.CopyFrom(s.opt.Tour)
		s.bestLen = s.opt.Length()
	}
	return s.bestLen
}

// KickOnce perturbs the working tour with one double-bridge (per strategy)
// and locally re-optimizes. It accepts the result as the new incumbent iff
// it is no longer than the incumbent (linkern accepts ties to drift across
// plateaus); otherwise the working tour reverts to the incumbent.
// It reports whether the incumbent strictly improved.
func (s *Solver) KickOnce() bool { return s.kickOnce(nil) }

// kickOnce is KickOnce with an abort hook threaded into the embedded LK
// pass; an aborted pass still leaves a valid working tour, so acceptance
// logic is unchanged.
//
//distlint:hotpath
func (s *Solver) kickOnce(stop func() bool) bool {
	var delta int64
	var touched [8]int32
	delta, touched, s.kicker.segBuf = doubleBridge(s.opt.Tour, s.kicker.selectCities(s.Inst.N()), s.kicker.dist, s.kicker.segBuf)
	s.opt.SetLength(s.bestLen + delta)
	s.opt.QueueCities(touched[:])
	s.opt.Optimize(stop)
	s.kicks++
	if s.opt.Length() <= s.bestLen {
		improved := s.opt.Length() < s.bestLen
		s.bestLen = s.opt.Length()
		s.best.CopyFrom(s.opt.Tour)
		s.Rec.KickAccepted(s.bestLen)
		return improved
	}
	// Revert the working tour to the incumbent.
	s.opt.Tour.CopyFrom(s.best)
	s.opt.SetLength(s.bestLen)
	s.Rec.KickReverted()
	return false
}

// Run chains kicks until the budget expires or ctx is done, and returns
// the incumbent. Cancellation is responsive mid-kick: the context is also
// polled inside the LK pass.
func (s *Solver) Run(ctx context.Context, b Budget) Result {
	//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
	start := time.Now()
	startKicks := s.kicks
	stop := cancelPoll(ctx)
	var improves int64
	for !b.expired(ctx, s.kicks-startKicks, s.bestLen) {
		if s.kickOnce(stop) {
			improves++
			s.Rec.LKImprove(s.bestLen)
		}
	}
	tour, l := s.Best()
	return Result{
		Tour:     tour,
		Length:   l,
		Kicks:    s.kicks - startKicks,
		Improves: improves,
		//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
		Elapsed: time.Since(start),
	}
}

// Perturb applies `count` double-bridge moves to the incumbent *without*
// re-optimizing or acceptance, placing the perturbed tour in the working
// state with kick endpoints queued. The distributed EA uses this as its
// variable-strength VARIATETOUR step; the caller then runs Run/Optimize.
func (s *Solver) Perturb(count int) {
	s.opt.Tour.CopyFrom(s.best)
	length := s.bestLen
	for i := 0; i < count; i++ {
		var delta int64
		var touched [8]int32
		delta, touched, s.kicker.segBuf = doubleBridge(s.opt.Tour, s.kicker.selectCities(s.Inst.N()), s.kicker.dist, s.kicker.segBuf)
		length += delta
		s.opt.QueueCities(touched[:])
	}
	s.opt.SetLength(length)
	s.Rec.Perturb(count)
}

// RunPerturbed re-optimizes the (already perturbed) working tour with LK,
// then chains kicks under the budget. Unlike Run, the first acceptance
// comparison is against the perturbed tour's optimum, so a worse-than-
// incumbent result can still be adopted — the EA decides what to keep.
// It returns the best tour reached from the perturbed start.
func (s *Solver) RunPerturbed(ctx context.Context, b Budget) Result {
	//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
	start := time.Now()
	s.opt.Optimize(cancelPoll(ctx))
	// Adopt the re-optimized perturbed tour as the chain incumbent even if
	// worse than the previous one: the EA's SELECTBESTTOUR owns acceptance.
	s.bestLen = s.opt.Length()
	s.best.CopyFrom(s.opt.Tour)
	res := s.Run(ctx, b)
	//lint:ignore nodeterminism Elapsed is reporting-only; it never feeds back into the seeded search
	res.Elapsed = time.Since(start)
	return res
}
