package clk

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"distclk/internal/exact"
	"distclk/internal/lk"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func TestParseKick(t *testing.T) {
	for _, k := range AllKickStrategies {
		got, err := ParseKick(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKick(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKick("bogus"); err == nil {
		t.Error("ParseKick accepted bogus strategy")
	}
}

func TestDoubleBridgeExchangesFourEdges(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 40, 1)
	dist := in.DistFunc()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		perm := tsp.IdentityTour(40)
		rng.Shuffle(40, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		at := lk.NewArrayTour(perm)
		before := perm.Length(in)
		beforeEdges := tourEdges(at)

		var cities [4]int32
		seen := map[int32]bool{}
		for i := 0; i < 4; {
			c := int32(rng.Intn(40))
			if !seen[c] {
				seen[c] = true
				cities[i] = c
				i++
			}
		}
		delta, _ := DoubleBridge(at, cities, dist)
		got := at.Tour()
		if err := got.Validate(40); err != nil {
			t.Fatalf("double bridge broke tour: %v", err)
		}
		if got.Length(in) != before+delta {
			t.Fatalf("delta %d inconsistent: %d -> %d", delta, before, got.Length(in))
		}
		afterEdges := tourEdges(at)
		removed := 0
		for e := range beforeEdges {
			if !afterEdges[e] {
				removed++
			}
		}
		added := 0
		for e := range afterEdges {
			if !beforeEdges[e] {
				added++
			}
		}
		// The Martin–Otto–Felten double bridge exchanges exactly 4 edges
		// whenever the 4 cut positions are pairwise non-adjacent; with
		// adjacency some exchanged edges coincide, but never fewer than 2.
		if removed != added {
			t.Fatalf("removed %d != added %d", removed, added)
		}
		if removed > 4 || removed < 2 {
			t.Fatalf("double bridge exchanged %d edges, want 2..4", removed)
		}
	}
}

func TestDoubleBridgeWellSeparatedIsFourExchange(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 20, 3)
	at := lk.NewArrayTour(tsp.IdentityTour(20))
	before := tourEdges(at)
	_, _ = DoubleBridge(at, [4]int32{2, 7, 12, 17}, in.DistFunc())
	after := tourEdges(at)
	removed := 0
	for e := range before {
		if !after[e] {
			removed++
		}
	}
	if removed != 4 {
		t.Fatalf("well-separated double bridge exchanged %d edges, want exactly 4", removed)
	}
	// Segment order must become A D C B with all segments forward:
	// cuts after positions 2,7,12,17 -> A=18..2, B=3..7, C=8..12, D=13..17.
	want := tsp.Tour{18, 19, 0, 1, 2, 13, 14, 15, 16, 17, 8, 9, 10, 11, 12, 3, 4, 5, 6, 7}
	if !at.Tour().SameCycle(want) {
		t.Fatalf("double bridge produced %v, want cycle %v", at.Tour(), want)
	}
}

func tourEdges(at *lk.ArrayTour) map[[2]int32]bool {
	set := make(map[[2]int32]bool)
	n := int32(at.N())
	for i := int32(0); i < n; i++ {
		a := at.At(i)
		b := at.At((i + 1) % n)
		if a > b {
			a, b = b, a
		}
		set[[2]int32{a, b}] = true
	}
	return set
}

func TestKickStrategiesSelectDistinctCities(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 300, 5)
	nbr := neighbor.Build(in, 10)
	for _, strat := range AllKickStrategies {
		k := kicker{
			strategy: strat,
			nbr:      nbr,
			rng:      rand.New(rand.NewSource(7)),
			geomK:    8,
			beta:     0.1,
			walkLen:  20,
			dist:     in.DistFunc(),
		}
		for trial := 0; trial < 50; trial++ {
			cs := k.selectCities(300)
			seen := map[int32]bool{}
			for _, c := range cs {
				if c < 0 || c >= 300 {
					t.Fatalf("%v: city %d out of range", strat, c)
				}
				if seen[c] {
					t.Fatalf("%v: duplicate city %d in %v", strat, c, cs)
				}
				seen[c] = true
			}
		}
	}
}

func TestGeometricKickIsLocal(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 1000, 11)
	nbr := neighbor.Build(in, 10)
	k := kicker{
		strategy: KickGeometric,
		nbr:      nbr,
		rng:      rand.New(rand.NewSource(13)),
		geomK:    8,
		dist:     in.DistFunc(),
	}
	dist := in.DistFunc()
	var kickSpan, randSpan float64
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		cs := k.selectCities(1000)
		for _, c := range cs[1:] {
			kickSpan += float64(dist(cs[0], c))
		}
		v := int32(rng.Intn(1000))
		for i := 0; i < 3; i++ {
			randSpan += float64(dist(v, int32(rng.Intn(1000))))
		}
	}
	if kickSpan*5 > randSpan {
		t.Fatalf("geometric kick not local: kick span %.0f vs random span %.0f", kickSpan, randSpan)
	}
}

func TestCLKSolvesSmallToOptimum(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 16, 23)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	s := New(in, DefaultParams(), 1)
	res := s.Run(context.Background(), Budget{MaxKicks: 300, Target: optLen})
	if res.Length != optLen {
		t.Fatalf("CLK reached %d, optimum is %d", res.Length, optLen)
	}
	if err := res.Tour.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestCLKMonotoneIncumbent(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 29)
	s := New(in, DefaultParams(), 2)
	prev := s.BestLength()
	for i := 0; i < 60; i++ {
		s.KickOnce()
		if s.BestLength() > prev {
			t.Fatalf("incumbent worsened %d -> %d at kick %d", prev, s.BestLength(), i)
		}
		prev = s.BestLength()
	}
	tour, l := s.Best()
	if err := tour.Validate(200); err != nil {
		t.Fatal(err)
	}
	if tour.Length(in) != l {
		t.Fatalf("incumbent length mismatch: cached %d, actual %d", l, tour.Length(in))
	}
}

func TestCLKKickStrategiesAllRun(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 150, 31)
	for _, strat := range AllKickStrategies {
		p := DefaultParams()
		p.Kick = strat
		s := New(in, p, 3)
		res := s.Run(context.Background(), Budget{MaxKicks: 40})
		if err := res.Tour.Validate(150); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Kicks != 40 {
			t.Fatalf("%v: ran %d kicks, want 40", strat, res.Kicks)
		}
	}
}

func TestCLKDeadline(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 37)
	s := New(in, DefaultParams(), 4)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Run(ctx, Budget{})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline overrun: %v", elapsed)
	}
}

func TestCLKCancellation(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 500, 53)
	s := New(in, DefaultParams(), 8)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := s.Run(ctx, Budget{})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation ignored: ran %v", elapsed)
	}
	if err := res.Tour.Validate(500); err != nil {
		t.Fatalf("cancelled run returned invalid tour: %v", err)
	}
}

func TestPerturbAndRunPerturbed(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 200, 41)
	s := New(in, DefaultParams(), 5)
	base := s.BestLength()
	s.Perturb(3)
	res := s.RunPerturbed(context.Background(), Budget{MaxKicks: 10})
	if err := res.Tour.Validate(200); err != nil {
		t.Fatal(err)
	}
	// After perturb+reopt, the result should be within a few percent of the
	// pre-perturbation incumbent (perturbation must not destroy the tour).
	if float64(res.Length) > float64(base)*1.10 {
		t.Fatalf("perturbed result %d more than 10%% worse than base %d", res.Length, base)
	}
}

func TestSetTourAdoptsExternalTour(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 100, 43)
	a := New(in, DefaultParams(), 6)
	b := New(in, DefaultParams(), 7)
	ta, la := a.Best()
	b.SetTour(ta)
	if b.BestLength() != la {
		t.Fatalf("adopted tour length %d, want %d", b.BestLength(), la)
	}
	res := b.Run(context.Background(), Budget{MaxKicks: 5})
	if res.Length > la {
		t.Fatalf("run from adopted tour worsened incumbent %d -> %d", la, res.Length)
	}
}
