package clk

import (
	"context"
	"testing"
	"time"

	"distclk/internal/tsp"
)

// TestGroupOneWorkerMatchesSolverRun pins the determinism contract at the
// engine level: a one-worker Group must reproduce Solver.Run byte for byte
// under the same seed — same kick count, same length, same tour order.
func TestGroupOneWorkerMatchesSolverRun(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 300, 11)
	b := Budget{MaxKicks: 200}

	ref := New(in, DefaultParams(), 17)
	want := ref.Run(context.Background(), b)

	g := NewGroup(context.Background(), in, DefaultParams(), GroupParams{Workers: 1}, 17)
	got := g.Run(context.Background(), b)

	if got.Length != want.Length {
		t.Fatalf("one-worker group length %d != solver length %d", got.Length, want.Length)
	}
	if got.Kicks != want.Kicks {
		t.Fatalf("one-worker group kicks %d != solver kicks %d", got.Kicks, want.Kicks)
	}
	if len(got.Tour) != len(want.Tour) {
		t.Fatalf("tour lengths differ: %d vs %d", len(got.Tour), len(want.Tour))
	}
	for i := range got.Tour {
		if got.Tour[i] != want.Tour[i] {
			t.Fatalf("tours diverge at position %d: %d vs %d", i, got.Tour[i], want.Tour[i])
		}
	}
}

// TestGroupRunMultiWorker checks the cooperative path end to end: all
// workers kick, the group total respects the budget (overshoot bounded by
// the worker count), and the returned tour is valid and no worse than the
// published best.
func TestGroupRunMultiWorker(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 400, 7)
	g := NewGroup(context.Background(), in, DefaultParams(), GroupParams{Workers: 4, MergeEvery: 100}, 3)
	res := g.Run(context.Background(), Budget{MaxKicks: 600})
	if err := res.Tour.Validate(400); err != nil {
		t.Fatal(err)
	}
	if res.Kicks < 600 || res.Kicks >= 600+4 {
		t.Fatalf("group kicks = %d, want [600, 604)", res.Kicks)
	}
	if res.Length != res.Tour.Length(in) {
		t.Fatalf("reported length %d != recomputed %d", res.Length, res.Tour.Length(in))
	}
	if best := g.BestLength(); res.Length > best {
		t.Fatalf("result length %d worse than published best %d", res.Length, best)
	}
}

// TestGroupCancellation checks that cancelling the context stops all
// workers and the merge goroutine promptly.
func TestGroupCancellation(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 1000, 5)
	g := NewGroup(context.Background(), in, DefaultParams(), GroupParams{Workers: 4, MergeEvery: 50}, 9)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	done := make(chan Result, 1)
	go func() { done <- g.Run(ctx, Budget{}) }()
	select {
	case res := <-done:
		if err := res.Tour.Validate(1000); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Group.Run did not return after cancellation")
	}
}

// TestWorkerStepZeroAlloc pins the per-worker steady-state allocation
// contract: with the shared slot unchanged (gen matches) and unbeatable
// (length 1 blocks publication), a worker step must not allocate.
func TestWorkerStepZeroAlloc(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 400, 3)
	g := NewGroup(context.Background(), in, DefaultParams(), GroupParams{Workers: 2}, 5)
	for _, w := range g.workers {
		w := w
		// An unbeatable published tour: adopt never fires (gen matches) and
		// publishBest bails before the tour copy (length >= 1 always).
		g.slot.Store(&elite{length: 1, gen: 42})
		w.lastGen = 42
		cur := g.slot.Load()
		for i := 0; i < 30; i++ {
			w.step(cur, nil) // reach steady state
		}
		if allocs := testing.AllocsPerRun(200, func() { w.step(cur, nil) }); allocs != 0 {
			t.Errorf("worker %d step allocates %.1f objects per kick in steady state, want 0", w.id, allocs)
		}
	}
}

// TestGroupMergeFusesElites drives a merge pass directly: after a short
// cooperative run has populated the elite pool, mergeOnce must complete,
// count itself, and leave the published best no worse than before.
func TestGroupMergeFusesElites(t *testing.T) {
	in := tsp.Generate(tsp.FamilyClustered, 500, 13)
	g := NewGroup(context.Background(), in, DefaultParams(), GroupParams{Workers: 3, MergeEvery: -1}, 21)
	g.Run(context.Background(), Budget{MaxKicks: 900})
	if len(g.pool.snapshot()) < 2 {
		t.Skip("run published fewer than 2 distinct elites; nothing to fuse")
	}
	before := g.slot.Load().length
	g.mergeOnce(context.Background())
	if g.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", g.Merges())
	}
	after := g.slot.Load().length
	if after > before {
		t.Fatalf("merge worsened the published best: %d -> %d", before, after)
	}
	if cur := g.slot.Load(); cur.length < before && cur.wid != -1 {
		t.Fatalf("improving merge published wid %d, want -1", cur.wid)
	}
}

// TestElitePool checks ordering, distinct-length dedup, and the size cap.
func TestElitePool(t *testing.T) {
	p := elitePool{limit: 3}
	for _, l := range []int64{50, 30, 40, 30, 60, 20} {
		p.offer(&elite{length: l})
	}
	got := p.snapshot()
	want := []int64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("pool kept %d elites, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.length != want[i] {
			t.Fatalf("pool[%d] = %d, want %d", i, e.length, want[i])
		}
	}
}
