package par

import (
	"runtime"
	"sync"
)

// For splits [0, n) into contiguous chunks and runs fn(lo, hi) on up to
// GOMAXPROCS goroutines. It returns when all chunks are done. For small n
// (or a single-CPU machine) it degenerates to a direct call, so callers
// can use it unconditionally without a size check.
func For(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	if workers <= 1 || n < 256 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
