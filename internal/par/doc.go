// Package par provides a minimal data-parallel loop helper used by setup
// paths (candidate list construction, distance matrix caching). It is not
// meant for the solver hot loop, which is single-threaded per node by
// design — parallelism there comes from running many nodes (paper §2.2).
//
// Invariants:
//   - For associates the same index ranges to workers regardless of
//     GOMAXPROCS, so parallel setup never changes results, only speed.
package par
