package cli

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"distclk/internal/obs"
)

// ServeDebug starts the long-running binaries' debug endpoints, governed by
// the -pprof and -metrics flags (empty string disables either):
//
//   - pprofAddr serves net/http/pprof under /debug/pprof/
//   - metricsAddr serves an expvar-style JSON snapshot of snap() under
//     /metrics
//
// Listeners bind immediately (so port 0 works and misconfiguration fails
// fast); serving happens on background goroutines that live for the
// process lifetime. The bound addresses are announced on stderr.
func ServeDebug(pprofAddr, metricsAddr string, snap func() any) error {
	if pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if err := serveBackground("pprof", pprofAddr, mux); err != nil {
			return err
		}
	}
	if metricsAddr != "" {
		if snap == nil {
			return fmt.Errorf("cli: -metrics requires a snapshot source")
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(snap))
		if err := serveBackground("metrics", metricsAddr, mux); err != nil {
			return err
		}
	}
	return nil
}

func serveBackground(name, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cli: %s listener: %w", name, err)
	}
	fmt.Fprintf(os.Stderr, "%s: serving on http://%s\n", name, ln.Addr())
	//lint:ignore goroleak debug server lives for the whole process by design; Serve returns when the listener dies with it
	go func() {
		srv := &http.Server{Handler: h}
		_ = srv.Serve(ln)
	}()
	return nil
}
