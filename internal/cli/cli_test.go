package cli

import (
	"os"
	"path/filepath"
	"testing"

	"distclk/internal/tsp"
)

func TestLoadInstanceSources(t *testing.T) {
	// Family.
	in, err := LoadInstance("", "", "uniform", 30, 1)
	if err != nil || in.N() != 30 {
		t.Fatalf("family: %v %v", in, err)
	}
	// Stand-in.
	in, err = LoadInstance("", "fl1577", "", 0, 1)
	if err != nil || in.N() != 1577 {
		t.Fatalf("standin: %v", err)
	}
	// File.
	path := filepath.Join(t.TempDir(), "x.tsp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tsp.WriteTSPLIB(f, tsp.Generate(tsp.FamilyGrid, 20, 2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in, err = LoadInstance(path, "", "", 0, 1)
	if err != nil || in.N() != 20 {
		t.Fatalf("file: %v", err)
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	if _, err := LoadInstance("", "", "", 0, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := LoadInstance("a.tsp", "fl1577", "", 0, 1); err == nil {
		t.Error("two sources accepted")
	}
	if _, err := LoadInstance("", "", "plasma", 10, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := LoadInstance("", "", "uniform", 0, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := LoadInstance("/nonexistent/x.tsp", "", "", 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteTour(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tour")
	tour := tsp.Tour{2, 0, 1}
	if err := WriteTour(path, "x", tour); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := tsp.ReadTourFile(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tour {
		if got[i] != tour[i] {
			t.Fatalf("round trip %v != %v", got, tour)
		}
	}
}
