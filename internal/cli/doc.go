// Package cli holds shared helpers for the cmd/ binaries: instance
// resolution from the common -tsp/-standin/-family flag triple and tour
// output. It exists so every binary resolves instances identically —
// a TSPLIB path, a paper stand-in name (bench testbed), or a generator
// family string always mean the same thing across cmd/clk, cmd/distclk,
// cmd/tspgen and cmd/tspstat.
package cli
