package cli

import (
	"fmt"
	"os"

	"distclk/internal/tsp"
)

// LoadInstance resolves the instance source flags shared by cmd/clk and
// cmd/distclk: a TSPLIB file path, a paper-instance stand-in name, or a
// generated family (with size n). Exactly one source must be given.
func LoadInstance(path, standin, family string, n int, seed int64) (*tsp.Instance, error) {
	given := 0
	for _, s := range []string{path, standin, family} {
		if s != "" {
			given++
		}
	}
	if given == 0 {
		return nil, fmt.Errorf("one of -tsp, -standin, -family is required")
	}
	if given > 1 {
		return nil, fmt.Errorf("only one of -tsp, -standin, -family may be given")
	}
	switch {
	case path != "":
		return tsp.LoadTSPLIB(path)
	case standin != "":
		return tsp.StandIn(standin, seed)
	default:
		f, err := tsp.ParseFamily(family)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("-n must be positive, got %d", n)
		}
		return tsp.Generate(f, n, seed), nil
	}
}

// WriteTour writes the tour to path in TSPLIB .tour format.
func WriteTour(path, name string, t tsp.Tour) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tsp.WriteTourFile(f, name, t)
}
