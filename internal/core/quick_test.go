package core

import (
	"testing"
	"testing/quick"
	"time"

	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// TestPerturbationLevelFormulaProperty checks Figure 1's formula over the
// whole counter range: level = noImprove/cv + 1, always >= 1, monotone in
// noImprove, and restarts strictly beyond cr.
func TestPerturbationLevelFormulaProperty(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 1)
	cfg := DefaultConfig()
	cfg.CV = 7
	cfg.CR = 50
	node := NewNode(0, in, cfg, NopComm{}, 1)
	node.SeedBest()
	f := func(raw uint8) bool {
		noImp := int(raw) % 51 // stay at or below CR: no restart
		node.ForceNoImprove(noImp)
		node.Perturbate()
		want := noImp/7 + 1
		return node.PerturbLevel() == want && node.NoImprove() == noImp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAccounting: iterations, broadcasts and receive counts must be
// internally consistent after a run.
func TestStatsAccounting(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 80, 3)
	comm := &recordingComm{}
	cfg := DefaultConfig()
	cfg.KicksPerCall = 4
	node := NewNode(0, in, cfg, comm, 2)
	stats := node.Run(testCtx(t, 30*time.Second), Budget{MaxIterations: 8})
	if stats.Broadcasts != int64(len(comm.sent)) {
		t.Fatalf("stats.Broadcasts=%d, comm saw %d", stats.Broadcasts, len(comm.sent))
	}
	if stats.Iterations != 8 {
		t.Fatalf("iterations %d", stats.Iterations)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	// Broadcast lengths must be non-increasing (only new bests are sent).
	for i := 1; i < len(comm.sent); i++ {
		if comm.sent[i] > comm.sent[i-1] {
			t.Fatalf("broadcast %d (%d) worse than previous (%d)",
				i, comm.sent[i], comm.sent[i-1])
		}
	}
}

// TestReceivedWorseToursIgnored: tours longer than the incumbent must not
// displace it.
func TestReceivedWorseToursIgnored(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 5)
	comm := &recordingComm{}
	cfg := DefaultConfig()
	cfg.KicksPerCall = 3
	node := NewNode(0, in, cfg, comm, 3)

	// A deliberately bad received tour: identity permutation.
	bad := tsp.IdentityTour(60)
	comm.pending = append(comm.pending, Incoming{From: 9, Tour: bad, Length: bad.Length(in)})
	node.Run(testCtx(t, 30*time.Second), Budget{MaxIterations: 2})
	_, best := node.Best()
	if best >= bad.Length(in) {
		t.Fatalf("node adopted a worse received tour: %d vs %d", best, bad.Length(in))
	}
}

// TestEventOrderingAndKinds: every event stream starts with the initial
// local improvement and contains only known kinds.
func TestEventOrderingAndKinds(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 60, 7)
	cfg := DefaultConfig()
	cfg.CV = 1 // escalate every iteration without improvement
	cfg.CR = 4
	cfg.KicksPerCall = 2
	node := NewNode(0, in, cfg, NopComm{}, 4)
	sink := observe(node)
	node.Run(testCtx(t, 30*time.Second), Budget{MaxIterations: 20})
	sawLevel := false
	for _, e := range sink.Events() {
		if e.Kind.String() == "unknown" {
			t.Fatalf("unknown event kind %d", e.Kind)
		}
		if e.Kind == obs.KindPerturbLevel {
			sawLevel = true
			if e.Value < 1 {
				t.Fatalf("perturbation level %d < 1", e.Value)
			}
		}
	}
	if !sawLevel {
		t.Error("aggressive cv=1 run never changed perturbation level")
	}
}

// TestNopComm covers the single-node communication stub.
func TestNopComm(t *testing.T) {
	var c NopComm
	c.Broadcast(tsp.Tour{0}, 1)
	c.AnnounceOptimum(1)
	if c.Drain() != nil || c.Stopped() {
		t.Fatal("NopComm misbehaves")
	}
}
