package core

import (
	"context"
	"testing"
	"time"

	"distclk/internal/exact"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

func smallInstance(n int, seed int64) *tsp.Instance {
	return tsp.Generate(tsp.FamilyUniform, n, seed)
}

// testCtx bounds a test run the way Deadline budgets used to.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// observe attaches a fresh EA-level event collector to the node and
// returns it.
func observe(n *Node) *obs.MemorySink {
	sink := obs.NewMemorySink()
	n.SetRecorder(obs.NewRecorder(n.ID, obs.Filter(sink, obs.Kind.EALevel)))
	return sink
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CV != 64 {
		t.Errorf("CV = %d, want 64 (paper §3.1)", cfg.CV)
	}
	if cfg.CR != 256 {
		t.Errorf("CR = %d, want 256 (paper §3.1)", cfg.CR)
	}
}

func TestSingleNodeReachesOptimumSmall(t *testing.T) {
	in := smallInstance(16, 3)
	_, optLen, err := exact.HeldKarp(in)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(0, in, DefaultConfig(), NopComm{}, 1)
	sink := observe(node)
	stats := node.Run(testCtx(t, 20*time.Second), Budget{
		Target:        optLen,
		MaxIterations: 200,
	})
	if stats.BestLength != optLen {
		t.Fatalf("node reached %d, optimum %d", stats.BestLength, optLen)
	}
	tour, l := node.Best()
	if err := tour.Validate(16); err != nil {
		t.Fatal(err)
	}
	if tour.Length(in) != l {
		t.Fatalf("best length mismatch: %d vs %d", tour.Length(in), l)
	}
	// Optimum event must be recorded.
	found := false
	for _, e := range sink.Events() {
		if e.Kind == obs.KindOptimum {
			found = true
		}
	}
	if !found {
		t.Error("no optimum event recorded despite reaching target")
	}
}

func TestVariableStrengthFormula(t *testing.T) {
	// NumPerturbations = NumNoImprovements / c_v + 1 (Figure 1).
	in := smallInstance(100, 5)
	cfg := DefaultConfig()
	cfg.CV = 10
	cfg.CR = 1000
	node := NewNode(0, in, cfg, NopComm{}, 2)
	node.SeedBest()
	cases := []struct{ noImp, wantLevel int }{
		{0, 1}, {5, 1}, {9, 1}, {10, 2}, {25, 3}, {99, 10},
	}
	for _, tc := range cases {
		node.ForceNoImprove(tc.noImp)
		node.Perturbate()
		if got := node.PerturbLevel(); got != tc.wantLevel {
			t.Errorf("noImprove=%d: level %d, want %d", tc.noImp, got, tc.wantLevel)
		}
	}
}

func TestRestartAfterCR(t *testing.T) {
	in := smallInstance(100, 7)
	cfg := DefaultConfig()
	cfg.CR = 16
	node := NewNode(0, in, cfg, NopComm{}, 3)
	sink := observe(node)
	node.SeedBest()
	node.ForceNoImprove(17) // > CR
	node.Perturbate()
	if node.NoImprove() != 0 {
		t.Errorf("counters not reset after restart: %d", node.NoImprove())
	}
	restarted := false
	for _, e := range sink.Events() {
		if e.Kind == obs.KindRestart {
			restarted = true
		}
	}
	if !restarted {
		t.Error("restart not recorded")
	}
	// The solver must hold a valid optimized tour after reconstruction.
	tour, _ := node.Solver().Best()
	if err := tour.Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestNoRestartAtOrBelowCR(t *testing.T) {
	in := smallInstance(80, 9)
	cfg := DefaultConfig()
	cfg.CR = 16
	node := NewNode(0, in, cfg, NopComm{}, 4)
	sink := observe(node)
	node.SeedBest()
	node.ForceNoImprove(16) // == CR: Figure 1 uses strict >
	node.Perturbate()
	for _, e := range sink.Events() {
		if e.Kind == obs.KindRestart {
			t.Fatal("restarted at noImprove == CR; pseudocode requires strict >")
		}
	}
	if node.NoImprove() != 16 {
		t.Errorf("counter clobbered: %d", node.NoImprove())
	}
}

// recordingComm captures broadcasts and injects received tours.
type recordingComm struct {
	sent    []int64
	pending []Incoming
}

func (r *recordingComm) Broadcast(t tsp.Tour, l int64) { r.sent = append(r.sent, l) }
func (r *recordingComm) Drain() []Incoming {
	out := r.pending
	r.pending = nil
	return out
}
func (r *recordingComm) AnnounceOptimum(int64) {}
func (r *recordingComm) Stopped() bool         { return false }

func TestReceivedBetterTourAdoptedNotRebroadcast(t *testing.T) {
	in := smallInstance(60, 11)
	comm := &recordingComm{}
	cfg := DefaultConfig()
	cfg.KicksPerCall = 5
	node := NewNode(0, in, cfg, comm, 5)

	// Build a much better tour with a second, longer-running node.
	helper := NewNode(1, in, DefaultConfig(), NopComm{}, 6)
	helperStats := helper.Run(testCtx(t, 10*time.Second), Budget{MaxIterations: 30})
	better, betterLen := helper.Best()

	comm.pending = append(comm.pending, Incoming{From: 1, Tour: better, Length: betterLen})
	node.Run(testCtx(t, 10*time.Second), Budget{MaxIterations: 1})

	_, got := node.Best()
	if got > betterLen {
		t.Fatalf("node best %d did not adopt received tour %d", got, betterLen)
	}
	// The received tour must not be re-broadcast (only own CLK results are).
	for _, l := range comm.sent[1:] { // first send is the initial broadcast
		if l == betterLen && got == betterLen {
			t.Fatalf("node re-broadcast a received tour (len %d)", l)
		}
	}
	_ = helperStats
}

func TestEventsTimeline(t *testing.T) {
	in := smallInstance(120, 13)
	node := NewNode(0, in, DefaultConfig(), NopComm{}, 7)
	sink := observe(node)
	node.Run(testCtx(t, 20*time.Second), Budget{MaxIterations: 10})
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var prev time.Duration
	for _, e := range events {
		if e.At < prev {
			t.Fatalf("events out of order: %v after %v", e.At, prev)
		}
		prev = e.At
	}
	if events[0].Kind != obs.KindImprove {
		t.Errorf("first event %v, want initial improve", events[0].Kind)
	}
}

func TestDisablePerturbationAblation(t *testing.T) {
	in := smallInstance(80, 15)
	cfg := DefaultConfig()
	cfg.DisablePerturbation = true
	cfg.KicksPerCall = 5
	node := NewNode(0, in, cfg, NopComm{}, 8)
	stats := node.Run(testCtx(t, 10*time.Second), Budget{MaxIterations: 5})
	if stats.Iterations != 5 {
		t.Fatalf("ran %d iterations, want 5", stats.Iterations)
	}
	tour, _ := node.Best()
	if err := tour.Validate(80); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetMaxIterations(t *testing.T) {
	in := smallInstance(60, 17)
	cfg := DefaultConfig()
	cfg.KicksPerCall = 3
	node := NewNode(0, in, cfg, NopComm{}, 9)
	stats := node.Run(testCtx(t, 10*time.Second), Budget{MaxIterations: 7})
	if stats.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", stats.Iterations)
	}
}

// TestSteppingAPIMatchesRun drives one node through Begin/Step/Finish and
// another identically-seeded node through Run; the trajectories must be
// identical — the simnet event loop depends on that equivalence.
func TestSteppingAPIMatchesRun(t *testing.T) {
	in := smallInstance(100, 21)
	cfg := DefaultConfig()
	cfg.KicksPerCall = 5
	ctx := testCtx(t, 30*time.Second)
	b := Budget{MaxIterations: 8}

	ran := NewNode(0, in, cfg, NopComm{}, 77)
	want := ran.Run(ctx, b)

	stepped := NewNode(0, in, cfg, NopComm{}, 77)
	stepped.Begin(ctx, b)
	steps := 0
	for stepped.Step(ctx) {
		steps++
	}
	got := stepped.Finish()

	if got.BestLength != want.BestLength || got.Iterations != want.Iterations {
		t.Fatalf("stepped run diverged: best %d/%d, iterations %d/%d",
			got.BestLength, want.BestLength, got.Iterations, want.Iterations)
	}
	if int64(steps) != got.Iterations {
		t.Fatalf("Step returned true %d times for %d iterations", steps, got.Iterations)
	}
}

func TestBeginTwicePanics(t *testing.T) {
	in := smallInstance(40, 23)
	node := NewNode(0, in, DefaultConfig(), NopComm{}, 1)
	ctx := testCtx(t, 10*time.Second)
	node.Begin(ctx, Budget{MaxIterations: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("second Begin did not panic")
		}
	}()
	node.Begin(ctx, Budget{MaxIterations: 1})
}

func TestCrashRecoverRebuildsState(t *testing.T) {
	in := smallInstance(80, 25)
	cfg := DefaultConfig()
	cfg.KicksPerCall = 3
	node := NewNode(0, in, cfg, NopComm{}, 5)
	sink := observe(node)
	ctx := testCtx(t, 20*time.Second)
	node.Begin(ctx, Budget{MaxIterations: 6})
	for i := 0; i < 2; i++ {
		if !node.Step(ctx) {
			t.Fatal("budget expired prematurely")
		}
	}
	node.ForceNoImprove(3)
	node.CrashRecover()
	if node.NoImprove() != 0 {
		t.Errorf("stagnation counter survived the crash: %d", node.NoImprove())
	}
	// The node must keep stepping on the rebuilt state.
	for node.Step(ctx) {
	}
	stats := node.Finish()
	if stats.Restarts == 0 {
		t.Error("crash recovery not counted as a restart")
	}
	restarts := 0
	for _, e := range sink.Events() {
		if e.Kind == obs.KindRestart {
			restarts++
		}
	}
	if restarts == 0 {
		t.Error("crash recovery emitted no restart event")
	}
	tour, l := node.Best()
	if err := tour.Validate(80); err != nil {
		t.Fatal(err)
	}
	if tour.Length(in) != l {
		t.Fatalf("best length mismatch after recovery: %d vs %d", tour.Length(in), l)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	in := smallInstance(400, 19)
	node := NewNode(0, in, DefaultConfig(), NopComm{}, 10)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats := node.Run(ctx, Budget{})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation ignored: ran %v", elapsed)
	}
	if stats.BestLength == 0 {
		t.Fatal("cancelled run lost its best tour")
	}
	tour, _ := node.Best()
	if err := tour.Validate(400); err != nil {
		t.Fatal(err)
	}
}

func TestNodeWorkersParallel(t *testing.T) {
	in := smallInstance(200, 21)
	cfg := DefaultConfig()
	cfg.Workers = 3
	cfg.KicksPerCall = 30
	node := NewNode(0, in, cfg, NopComm{}, 1)
	if node.CostFactor() != 3 {
		t.Fatalf("CostFactor = %d, want 3", node.CostFactor())
	}
	observe(node)
	stats := node.Run(testCtx(t, 20*time.Second), Budget{MaxIterations: 4})
	tour, l := node.Best()
	if err := tour.Validate(200); err != nil {
		t.Fatal(err)
	}
	if l != stats.BestLength {
		t.Fatalf("Best length %d != stats best %d", l, stats.BestLength)
	}
	// Begin + 4 iterations, 3 workers, 30 kicks each: the aggregate kick
	// count must reflect every worker, not just the primary chain.
	if want := int64(5 * 3 * 30); stats.Kicks < want {
		t.Fatalf("stats.Kicks = %d, want >= %d (all workers counted)", stats.Kicks, want)
	}
}

func TestNodeWorkersDefaultCostFactor(t *testing.T) {
	in := smallInstance(50, 22)
	node := NewNode(0, in, DefaultConfig(), NopComm{}, 1)
	if node.CostFactor() != 1 {
		t.Fatalf("CostFactor = %d, want 1 for the classic single kicker", node.CostFactor())
	}
}
