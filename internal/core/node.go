package core

import (
	"context"
	"sync"
	"time"

	"distclk/internal/clk"
	"distclk/internal/construct"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

// Config carries the EA parameters. The paper's experiments use CV=64 and
// CR=256 with unlimited CLK calls under a per-node time bound.
type Config struct {
	// CV divides the no-improvement counter to yield the perturbation
	// strength: NumPerturbations = NumNoImprovements/CV + 1.
	CV int
	// CR is the restart threshold: when NumNoImprovements exceeds it, the
	// incumbent is discarded and a fresh initial tour is constructed.
	CR int
	// KicksPerCall bounds the embedded CLK run in each EA iteration
	// (<= 0 selects max(20, n/10), scaling work with instance size).
	KicksPerCall int64
	// CLK configures the underlying Chained Lin-Kernighan solver.
	CLK clk.Params
	// RestartConstruct picks the construction heuristic for restarts
	// (default NearestNeighbor from a random city, for diversity —
	// Quick-Borůvka is deterministic and would always restart identically).
	RestartConstruct construct.Method
	// DisablePerturbation turns PERTURBATE into the identity, for the
	// paper's "running without DBMs" ablation (§4.2).
	DisablePerturbation bool
	// Workers is the number of concurrent in-node CLK searchers backing
	// each EA iteration (<= 1 = the classic single kicker). Extra workers
	// chain kicks from their own incumbents while the primary runs the
	// perturbed chain; the best result wins the iteration. Each worker
	// charges virtual CPU in stepping drivers (see Node.CostFactor), so
	// simnet budgets stay comparable; with Workers > 1 the iteration
	// *content* becomes schedule-dependent, so simnet replay determinism
	// holds only for Workers <= 1.
	Workers int
}

// DefaultConfig returns the paper's parameter setting.
func DefaultConfig() Config {
	return Config{
		CV:               64,
		CR:               256,
		CLK:              clk.DefaultParams(),
		RestartConstruct: construct.NearestNeighbor,
	}
}

// Incoming is a tour received from a neighbouring node.
type Incoming struct {
	From   int
	Tour   tsp.Tour
	Length int64
}

// Comm abstracts the node's view of the network. Implementations must be
// safe for use by the node goroutine while the network delivers concurrently.
type Comm interface {
	// Broadcast sends the node's new best tour to all neighbours.
	Broadcast(t tsp.Tour, length int64)
	// Drain returns all tours received since the previous call.
	Drain() []Incoming
	// AnnounceOptimum notifies the network that the target was reached.
	AnnounceOptimum(length int64)
	// Stopped reports whether a remote optimum/shutdown notice arrived.
	Stopped() bool
}

// NopComm is the single-node Comm: no neighbours, nothing received. It is
// the paper's 1-node configuration used to isolate cooperation effects.
type NopComm struct{}

// Broadcast discards the tour.
func (NopComm) Broadcast(tsp.Tour, int64) {}

// Drain returns nothing.
func (NopComm) Drain() []Incoming { return nil }

// AnnounceOptimum does nothing.
func (NopComm) AnnounceOptimum(int64) {}

// Stopped reports false.
func (NopComm) Stopped() bool { return false }

// Stats summarizes a node's run.
type Stats struct {
	NodeID     int
	BestLength int64
	Iterations int64
	Kicks      int64 // double-bridge kicks attempted by the embedded CLK
	Broadcasts int64 // tours broadcast to neighbours
	Received   int64 // tours drained from the inbox
	Accepted   int64 // received tours adopted as node best
	Restarts   int64
	Elapsed    time.Duration
}

// extraSeedSalt decorrelates in-node worker seeds from the per-node seeds
// (Seed + i*1e9+7 in dist.RunCluster) and from clk.Group's worker salt.
const extraSeedSalt = 15_485_863

// Node is one EA participant: a CLK solver plus the Figure 1 control loop.
type Node struct {
	ID     int
	cfg    Config
	solver *clk.Solver
	comm   Comm
	rec    *obs.Recorder

	// extras are the additional in-node workers (Config.Workers - 1 of
	// them); extraRes is their preallocated per-iteration result buffer.
	extras   []*clk.Solver
	extraRes []clk.Result

	sBest    tsp.Tour
	sBestLen int64

	noImprove    int
	perturbLevel int

	budget   Budget
	sPrevLen int64
	began    bool

	stats Stats
	start time.Time
}

// NewNode builds a node over a fresh CLK solver. seed must differ across
// nodes so their searches diverge.
func NewNode(id int, inst *tsp.Instance, cfg Config, comm Comm, seed int64) *Node {
	if cfg.CV <= 0 {
		cfg.CV = 64
	}
	if cfg.CR <= 0 {
		cfg.CR = 256
	}
	if cfg.KicksPerCall <= 0 {
		cfg.KicksPerCall = int64(inst.N() / 10)
		if cfg.KicksPerCall < 20 {
			cfg.KicksPerCall = 20
		}
	}
	solver := clk.New(inst, cfg.CLK, seed)
	n := &Node{
		ID:     id,
		cfg:    cfg,
		solver: solver,
		comm:   comm,
	}
	if cfg.Workers > 1 {
		// Extra workers share the primary's candidate table; only their RNG
		// streams and incumbents differ.
		p := cfg.CLK
		p.Neighbors = solver.Nbr
		n.extras = make([]*clk.Solver, cfg.Workers-1)
		n.extraRes = make([]clk.Result, cfg.Workers-1)
		for j := range n.extras {
			n.extras[j] = clk.New(inst, p, seed+int64(j+1)*extraSeedSalt)
		}
	}
	n.stats.NodeID = id
	return n
}

// CostFactor is the virtual CPU multiplier a stepping driver charges per
// EA iteration: one per in-node worker. simnet multiplies StepCost by it
// so a 4-worker node consumes virtual time 4x faster — budgets measured
// in virtual seconds stay comparable across worker counts.
func (n *Node) CostFactor() int { return 1 + len(n.extras) }

// SetRecorder attaches the node's observability recorder (nil is fine) and
// threads it into the embedded CLK solver. Call before Run.
func (n *Node) SetRecorder(rec *obs.Recorder) {
	n.rec = rec
	n.solver.Rec = rec
	// Extra workers share the node's recorder: counters are atomic and
	// sinks serialize, so concurrent kick events from them are safe.
	for _, ex := range n.extras {
		ex.Rec = rec
	}
}

// Recorder returns the attached recorder (possibly nil).
func (n *Node) Recorder() *obs.Recorder { return n.rec }

// Solver exposes the underlying CLK engine (read-mostly; used by tests and
// the harness).
func (n *Node) Solver() *clk.Solver { return n.solver }

// Best returns the node's best tour and length.
func (n *Node) Best() (tsp.Tour, int64) {
	if n.sBest == nil {
		return n.solver.Best()
	}
	return n.sBest.Clone(), n.sBestLen
}

// Budget bounds a node's Run. Time limits and external shutdown arrive
// through the Run context.
type Budget struct {
	// Target stops the loop once the best tour is <= Target and triggers
	// AnnounceOptimum (the paper's known-optimum termination criterion).
	Target int64
	// MaxIterations bounds EA iterations (0 = unlimited).
	MaxIterations int64
}

func (b Budget) done(ctx context.Context, iter int64, best int64, comm Comm) bool {
	if ctx.Err() != nil {
		return true
	}
	if b.Target > 0 && best <= b.Target {
		return true
	}
	if b.MaxIterations > 0 && iter >= b.MaxIterations {
		return true
	}
	return comm.Stopped()
}

// Run executes the Figure 1 loop until the budget expires or ctx is done,
// and returns the node's statistics. It must be called at most once per
// Node. Callers that need one-iteration granularity (the simnet
// discrete-event driver) use Begin/Step/Finish directly instead.
func (n *Node) Run(ctx context.Context, b Budget) Stats {
	n.Begin(ctx, b)
	for n.Step(ctx) {
	}
	return n.Finish()
}

// Begin runs the first line of the Figure 1 pseudocode — the initial
// chained LK pass and broadcast — and arms the budget for Step. It must be
// called exactly once, before any Step.
func (n *Node) Begin(ctx context.Context, b Budget) {
	if n.began {
		//lint:ignore nopanic API-misuse invariant: a second Begin would silently corrupt budget accounting, and no error path exists
		panic("core: Node.Begin called twice")
	}
	n.began = true
	n.budget = b
	//lint:ignore nodeterminism Stats.Elapsed is reporting-only; simnet replays run on the virtual clock and never read it
	n.start = time.Now()

	// s_prev := INITIALTOUR; s_best := CHAINEDLINKERNIGHAN(s_prev).
	// NewNode already constructed + LK-optimized the initial tour; the
	// initial chained run completes the first line of the pseudocode.
	n.runCLK(ctx, b)
	n.sBest, n.sBestLen = n.solver.Best()
	n.rec.Improve(n.sBestLen)
	n.broadcast(n.sBest, n.sBestLen)
	n.perturbLevel = 1
	n.sPrevLen = n.sBestLen
}

// Step executes one EA iteration: perturb, chained LK, drain the inbox,
// SELECTBESTTOUR, broadcast on improvement. It reports false — without
// running an iteration — once the budget expired, the target was reached,
// ctx was cancelled, or the network announced shutdown.
func (n *Node) Step(ctx context.Context) bool {
	b := n.budget
	if b.done(ctx, n.stats.Iterations, n.sBestLen, n.comm) {
		return false
	}
	n.stats.Iterations++

	// s := CHAINEDLINKERNIGHAN(PERTURBATE(s_best))
	n.perturbate()
	res := n.runCLK(ctx, b)
	s, sLen := res.Tour, res.Length

	// S_received := ALLRECEIVEDTOURS
	received := n.comm.Drain()
	n.stats.Received += int64(len(received))
	for _, in := range received {
		n.rec.BroadcastReceived(in.Length, in.From)
	}

	// s_best := SELECTBESTTOUR(S_received ∪ {s} ∪ {s_prev})
	bestLen := sLen
	bestTour := s
	fromLocal := true
	bestFrom := -1
	for _, in := range received {
		if in.Length < bestLen {
			bestLen = in.Length
			bestTour = in.Tour
			fromLocal = false
			bestFrom = in.From
		}
	}
	if n.sBestLen < bestLen {
		bestLen = n.sBestLen
		bestTour = n.sBest
		fromLocal = false
		bestFrom = -1
	} else if n.sBestLen == bestLen && !fromLocal {
		// Tie with the previous best: keep it, no broadcast.
		bestTour = n.sBest
		bestFrom = -1
	}

	if bestLen == n.sPrevLen {
		n.noImprove++
	} else if bestLen < n.sPrevLen {
		// Counter resets when a better tour is found or received.
		n.noImprove = 0
		n.setPerturbLevel(1)
		if fromLocal {
			n.rec.Improve(bestLen)
			n.broadcast(bestTour, bestLen)
		} else {
			if bestFrom >= 0 {
				n.stats.Accepted++
			}
			n.rec.ImproveReceived(bestLen, bestFrom)
		}
	} else {
		// Perturbation made things worse and nothing received beats
		// s_prev: keep the previous best as incumbent.
		bestLen = n.sPrevLen
		bestTour = n.sBest
		n.noImprove++
	}

	n.sBest = bestTour.Clone()
	n.sBestLen = bestLen
	n.sPrevLen = bestLen
	return true
}

// Finish announces the optimum when the target was reached and returns the
// node's final statistics. Call once, after the last Step. On a node whose
// Begin never ran (aborted before its first event) it is a no-op.
func (n *Node) Finish() Stats {
	if !n.began {
		return n.stats
	}
	if n.budget.Target > 0 && n.sBestLen <= n.budget.Target {
		n.rec.Optimum(n.sBestLen)
		n.comm.AnnounceOptimum(n.sBestLen)
	}
	n.stats.BestLength = n.sBestLen
	n.stats.Kicks = n.solver.Kicks()
	for _, ex := range n.extras {
		n.stats.Kicks += ex.Kicks()
	}
	//lint:ignore nodeterminism Stats.Elapsed is reporting-only; simnet replays run on the virtual clock and never read it
	n.stats.Elapsed = time.Since(n.start)
	return n.stats
}

// CrashRecover simulates a process restart with lost volatile state: the
// incumbent is discarded and the search resumes from a freshly constructed,
// LK-optimized tour, as a rejoining machine would. Stagnation counters
// reset and the event is recorded like a stagnation restart. Call between
// Steps only (the simnet churn scheduler does).
func (n *Node) CrashRecover() {
	n.noImprove = 0
	n.setPerturbLevel(1)
	n.stats.Restarts++
	n.rec.Restart()
	n.solver.Reconstruct(n.cfg.RestartConstruct)
	n.sBest, n.sBestLen = n.solver.Best()
	n.sPrevLen = n.sBestLen
	// The crash lost every worker's volatile state: extras restart from the
	// reconstructed tour too.
	for _, ex := range n.extras {
		ex.SetTour(n.sBest)
	}
}

func (n *Node) broadcast(t tsp.Tour, length int64) {
	n.comm.Broadcast(t, length)
	n.stats.Broadcasts++
	n.rec.BroadcastSent(length)
}

// perturbate implements PERTURBATE(s): either restart from a fresh tour
// (NumNoImprovements > c_r) or apply NumPerturbations double-bridge moves.
func (n *Node) perturbate() {
	if n.noImprove > n.cfg.CR {
		n.noImprove = 0
		n.setPerturbLevel(1)
		n.stats.Restarts++
		n.rec.Restart()
		n.solver.Reconstruct(n.cfg.RestartConstruct)
		return
	}
	n.solver.SetTour(n.sBest)
	if n.cfg.DisablePerturbation {
		return
	}
	level := n.noImprove/n.cfg.CV + 1
	n.setPerturbLevel(level)
	n.solver.Perturb(level)
}

func (n *Node) setPerturbLevel(level int) {
	if level != n.perturbLevel {
		n.perturbLevel = level
		n.rec.PerturbLevel(level)
	}
}

// runCLK runs the embedded CLK under the per-iteration kick budget, clipped
// by the global context/target. With Workers > 1, the extra workers chain
// kicks concurrently from their own incumbents (re-rooted at the node best
// when strictly behind it) while the primary runs the perturbed chain; the
// shortest result wins and kick counts aggregate.
func (n *Node) runCLK(ctx context.Context, b Budget) clk.Result {
	kb := clk.Budget{
		MaxKicks: n.cfg.KicksPerCall,
		Target:   b.Target,
	}
	if len(n.extras) == 0 {
		return n.solver.RunPerturbed(ctx, kb)
	}
	for _, ex := range n.extras {
		if n.sBest != nil && ex.BestLength() > n.sBestLen {
			ex.SetTour(n.sBest)
		}
	}
	var wg sync.WaitGroup
	for j := range n.extras {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			n.extraRes[j] = n.extras[j].Run(ctx, kb)
		}(j)
	}
	res := n.solver.RunPerturbed(ctx, kb)
	wg.Wait()
	for _, r := range n.extraRes {
		res.Kicks += r.Kicks
		res.Improves += r.Improves
		if r.Length < res.Length {
			res.Tour, res.Length = r.Tour, r.Length
		}
	}
	return res
}
