// Package core implements the paper's primary contribution: the
// distributed evolutionary algorithm of Fischer & Merz (Figure 1, §2.2)
// that embeds Chained Lin-Kernighan on every node, perturbs the incumbent
// with a variable-strength double-bridge move (§4.2.1), exchanges improved
// tours with neighbouring nodes, and restarts from a fresh tour after
// prolonged stagnation. The package is transport-agnostic: networking is
// behind the Comm interface, implemented by internal/dist (channels, TCP)
// and internal/simnet (virtual-clock simulation). Search telemetry flows
// through an optional obs.Recorder.
//
// Invariants:
//   - A node's decisions are a pure function of (instance, Config, seed,
//     message arrival order): no wall-clock reads influence the search,
//     which is what makes simnet replays byte-identical.
//   - NumPerturbations = NumNoImprovements/c_v + 1, reset on improvement;
//     restart when the no-improvement counter exceeds c_r (§4.2.1).
//   - Budgets are expressed in EA iterations or a target length
//     (core.Budget); deadlines are the caller's concern.
//
//distlint:deterministic
package core
