package core

// Test-only accessors for the EA's internal perturbation state.

// ForceNoImprove sets the stagnation counter (testing the variator rule).
func (n *Node) ForceNoImprove(v int) { n.noImprove = v }

// NoImprove reads the stagnation counter.
func (n *Node) NoImprove() int { return n.noImprove }

// Perturbate exposes the PERTURBATE step.
func (n *Node) Perturbate() { n.perturbate() }

// PerturbLevel reads the current NumPerturbations level.
func (n *Node) PerturbLevel() int { return n.perturbLevel }

// SeedBest installs a best tour directly (bypassing the run loop).
func (n *Node) SeedBest() {
	n.sBest, n.sBestLen = n.solver.Best()
	n.perturbLevel = 1
}
