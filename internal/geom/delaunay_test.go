package geom

import (
	"math"
	"math/rand"
	"testing"
)

func delaunayPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1e6, Y: rng.Float64() * 1e6}
	}
	return pts
}

func clusteredPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, 5)
	for i := range centers {
		centers[i] = Point{X: rng.Float64() * 1e6, Y: rng.Float64() * 1e6}
	}
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		pts[i] = Point{X: c.X + rng.NormFloat64()*2e4, Y: c.Y + rng.NormFloat64()*2e4}
	}
	return pts
}

func latticePoints(cols, rows int) []Point {
	pts := make([]Point, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * 100, Y: float64(r) * 200})
		}
	}
	return pts
}

// convexHullBrute computes the convex hull with the monotone chain
// algorithm — an independent oracle for the triangulation's Hull.
func convexHullBrute(pts []Point) []int32 {
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := pts[idx[j-1]], pts[idx[j]]
			if a.X < b.X || (a.X == b.X && a.Y <= b.Y) {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	// Pop only on strict right turns: collinear boundary points stay, so
	// oracle hull edges connect *adjacent* boundary points — which is what
	// a triangulation of collinear boundary chains actually contains.
	var hull []int32
	for _, i := range idx { // lower
		for len(hull) >= 2 && cross(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[i]) < 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	lower := len(hull) + 1
	for k := len(idx) - 2; k >= 0; k-- { // upper
		i := idx[k]
		for len(hull) >= lower && cross(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[i]) < 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	return hull[:len(hull)-1]
}

func edgeSet(t *Triangulation) map[[2]int32]bool {
	set := map[[2]int32]bool{}
	for e := 0; e < len(t.Triangles); e++ {
		a, b := t.Triangles[e], t.Triangles[nextHalfedge(e)]
		if a > b {
			a, b = b, a
		}
		set[[2]int32{a, b}] = true
	}
	return set
}

// TestDelaunayHullEdges asserts every convex-hull edge (computed by an
// independent oracle) is an edge of the triangulation, for three point
// distributions including an exactly regular lattice.
func TestDelaunayHullEdges(t *testing.T) {
	cases := map[string][]Point{
		"uniform":   delaunayPoints(400, 1),
		"clustered": clusteredPoints(400, 2),
		"lattice":   latticePoints(20, 15),
	}
	for name, pts := range cases {
		tri, err := Delaunay(pts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		edges := edgeSet(tri)
		hull := convexHullBrute(pts)
		for i, a := range hull {
			b := hull[(i+1)%len(hull)]
			key := [2]int32{a, b}
			if a > b {
				key = [2]int32{b, a}
			}
			if !edges[key] {
				t.Errorf("%s: hull edge (%d,%d) missing from triangulation", name, a, b)
			}
		}
		if len(tri.Hull) != len(hull) {
			// The triangulation's hull may keep collinear boundary points the
			// strict oracle drops; it must never have fewer.
			if len(tri.Hull) < len(hull) {
				t.Errorf("%s: triangulation hull has %d points, oracle %d", name, len(tri.Hull), len(hull))
			}
		}
	}
}

// TestDelaunayAdjacencySymmetric asserts the adjacency expansion is
// symmetric, self-loop-free and duplicate-free.
func TestDelaunayAdjacencySymmetric(t *testing.T) {
	pts := delaunayPoints(500, 3)
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	adj := tri.Adjacency(len(pts))
	for i, list := range adj {
		seen := map[int32]bool{}
		for _, j := range list {
			if int(j) == i {
				t.Fatalf("point %d lists itself", i)
			}
			if seen[j] {
				t.Fatalf("point %d lists %d twice", i, j)
			}
			seen[j] = true
			back := false
			for _, k := range adj[j] {
				if int(k) == i {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("edge (%d,%d) present but (%d,%d) missing", i, j, j, i)
			}
		}
	}
}

// TestDelaunayEmptyCircumcircle exhaustively verifies the defining
// property on a small instance: no point lies strictly inside any
// triangle's circumcircle.
func TestDelaunayEmptyCircumcircle(t *testing.T) {
	pts := delaunayPoints(80, 4)
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < len(tri.Triangles); e += 3 {
		a, b, c := pts[tri.Triangles[e]], pts[tri.Triangles[e+1]], pts[tri.Triangles[e+2]]
		x, y := circumcenter(a, b, c)
		r2 := sq(a.X-x) + sq(a.Y-y)
		for i, p := range pts {
			d2 := sq(p.X-x) + sq(p.Y-y)
			if d2 < r2*(1-1e-9) {
				t.Fatalf("point %d inside circumcircle of triangle %d (d2=%g r2=%g)", i, e/3, d2, r2)
			}
		}
	}
}

// TestDelaunayDegenerateInputs asserts degenerate inputs produce clear
// errors, never panics.
func TestDelaunayDegenerateInputs(t *testing.T) {
	if _, err := Delaunay(nil); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := Delaunay([]Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("two points: want error")
	}
	collinear := make([]Point, 50)
	for i := range collinear {
		collinear[i] = Point{X: float64(i) * 10, Y: float64(i) * 5}
	}
	if _, err := Delaunay(collinear); err != ErrCollinear {
		t.Errorf("collinear input: got %v, want ErrCollinear", err)
	}
	dup := []Point{{0, 0}, {100, 0}, {50, 80}, {100, 0}}
	if _, err := Delaunay(dup); err == nil {
		t.Error("duplicate points: want error")
	}
}

// TestDelaunayDeterministic asserts byte-identical output across runs.
func TestDelaunayDeterministic(t *testing.T) {
	pts := clusteredPoints(300, 7)
	t1, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Triangles) != len(t2.Triangles) || len(t1.Hull) != len(t2.Hull) {
		t.Fatal("triangulations differ in size between runs")
	}
	for i := range t1.Triangles {
		if t1.Triangles[i] != t2.Triangles[i] || t1.Halfedges[i] != t2.Halfedges[i] {
			t.Fatalf("triangulations differ at halfedge %d", i)
		}
	}
}

// TestDelaunayEdgeCountEuler sanity-checks edge/triangle counts against
// Euler's formula: for n points with h on the hull, triangles = 2n-2-h
// and edges = 3n-3-h (degenerate collinearities may lower both, never
// raise them).
func TestDelaunayEdgeCountEuler(t *testing.T) {
	pts := delaunayPoints(1000, 9)
	tri, err := Delaunay(pts)
	if err != nil {
		t.Fatal(err)
	}
	n := len(pts)
	h := len(tri.Hull)
	triangles := len(tri.Triangles) / 3
	if want := 2*n - 2 - h; triangles != want {
		t.Errorf("triangle count %d, Euler predicts %d (n=%d hull=%d)", triangles, want, n, h)
	}
	if edges := len(edgeSet(tri)); edges != 3*n-3-h {
		t.Errorf("edge count %d, Euler predicts %d", edges, 3*n-3-h)
	}
	if math.MaxInt32 < n {
		t.Fatal("unreachable")
	}
}
