package geom

import "sort"

// KDTree is a static 2-d tree over a point set, built once and queried for
// k-nearest-neighbour and fixed-radius searches. Points are referenced by
// their index in the slice passed to NewKDTree, so callers can map results
// back to city identifiers.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	idx         int32 // index into pts
	left, right int32 // node indices, -1 if absent
	axis        uint8 // 0 = split on X, 1 = split on Y
}

// NewKDTree builds a balanced k-d tree over pts. The slice is retained (not
// copied); callers must not mutate it while the tree is in use.
func NewKDTree(pts []Point) *KDTree {
	t := &KDTree{
		pts:   pts,
		nodes: make([]kdNode, 0, len(pts)),
	}
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	t.root = t.build(order, 0)
	return t
}

func (t *KDTree) build(order []int32, depth int) int32 {
	if len(order) == 0 {
		return -1
	}
	axis := uint8(depth & 1)
	sort.Slice(order, func(i, j int) bool {
		a, b := t.pts[order[i]], t.pts[order[j]]
		if axis == 0 {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	mid := len(order) / 2
	node := kdNode{idx: order[mid], axis: axis}
	pos := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)
	left := t.build(order[:mid], depth+1)
	right := t.build(order[mid+1:], depth+1)
	t.nodes[pos].left = left
	t.nodes[pos].right = right
	return pos
}

// Len reports the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// knnHeap is a bounded max-heap of (squared distance, index) pairs keeping
// the k closest candidates seen so far.
type knnHeap struct {
	d   []float64
	idx []int32
	k   int
}

func (h *knnHeap) worst() float64 { return h.d[0] }

func (h *knnHeap) push(dist float64, idx int32) {
	if len(h.d) < h.k {
		h.d = append(h.d, dist)
		h.idx = append(h.idx, idx)
		h.up(len(h.d) - 1)
		return
	}
	if dist >= h.d[0] {
		return
	}
	h.d[0], h.idx[0] = dist, idx
	h.down(0)
}

func (h *knnHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] >= h.d[i] {
			break
		}
		h.d[p], h.d[i] = h.d[i], h.d[p]
		h.idx[p], h.idx[i] = h.idx[i], h.idx[p]
		i = p
	}
}

func (h *knnHeap) down(i int) {
	n := len(h.d)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.d[l] > h.d[big] {
			big = l
		}
		if r < n && h.d[r] > h.d[big] {
			big = r
		}
		if big == i {
			return
		}
		h.d[big], h.d[i] = h.d[i], h.d[big]
		h.idx[big], h.idx[i] = h.idx[i], h.idx[big]
		i = big
	}
}

// KNearest returns the indices of the k points nearest to query, excluding
// the point with index exclude (pass -1 to exclude nothing), ordered by
// increasing Euclidean distance. Fewer than k indices are returned when the
// tree holds fewer eligible points.
func (t *KDTree) KNearest(query Point, k int, exclude int) []int32 {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := knnHeap{
		d:   make([]float64, 0, k),
		idx: make([]int32, 0, k),
		k:   k,
	}
	t.search(t.root, query, int32(exclude), &h)
	// Heap-sort ascending: repeatedly pop the max to the back.
	out := make([]int32, len(h.idx))
	for n := len(h.d); n > 0; n-- {
		out[n-1] = h.idx[0]
		h.d[0], h.idx[0] = h.d[n-1], h.idx[n-1]
		h.d = h.d[:n-1]
		h.idx = h.idx[:n-1]
		h.down(0)
	}
	return out
}

func (t *KDTree) search(ni int32, q Point, exclude int32, h *knnHeap) {
	if ni < 0 {
		return
	}
	node := &t.nodes[ni]
	p := t.pts[node.idx]
	if node.idx != exclude {
		h.push(SqDist(p, q), node.idx)
	}
	var delta float64
	if node.axis == 0 {
		delta = q.X - p.X
	} else {
		delta = q.Y - p.Y
	}
	near, far := node.left, node.right
	if delta > 0 {
		near, far = far, near
	}
	t.search(near, q, exclude, h)
	if len(h.d) < h.k || delta*delta < h.worst() {
		t.search(far, q, exclude, h)
	}
}

// Nearest returns the index of the point nearest to query, excluding index
// exclude (-1 for none). It returns -1 on an empty tree.
func (t *KDTree) Nearest(query Point, exclude int) int32 {
	r := t.KNearest(query, 1, exclude)
	if len(r) == 0 {
		return -1
	}
	return r[0]
}

// WithinRadius appends to dst the indices of all points within Euclidean
// distance r of query (excluding index exclude; -1 for none) and returns the
// extended slice. Order is unspecified.
func (t *KDTree) WithinRadius(query Point, r float64, exclude int, dst []int32) []int32 {
	return t.radius(t.root, query, r*r, int32(exclude), dst)
}

func (t *KDTree) radius(ni int32, q Point, r2 float64, exclude int32, dst []int32) []int32 {
	if ni < 0 {
		return dst
	}
	node := &t.nodes[ni]
	p := t.pts[node.idx]
	if node.idx != exclude && SqDist(p, q) <= r2 {
		dst = append(dst, node.idx)
	}
	var delta float64
	if node.axis == 0 {
		delta = q.X - p.X
	} else {
		delta = q.Y - p.Y
	}
	near, far := node.left, node.right
	if delta > 0 {
		near, far = far, near
	}
	dst = t.radius(near, q, r2, exclude, dst)
	if delta*delta <= r2 {
		dst = t.radius(far, q, r2, exclude, dst)
	}
	return dst
}
