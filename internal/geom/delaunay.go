package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Triangulation is a Delaunay triangulation of a point set in halfedge
// form (the representation popularized by the delaunator family of
// implementations):
//
//   - Triangles holds triples of point indices; triangle t occupies
//     Triangles[3t:3t+3], wound clockwise in screen coordinates.
//   - Halfedges[e] is the twin halfedge of e in the adjacent triangle, or
//     -1 when edge e lies on the convex hull.
//   - Hull lists the convex-hull point indices in boundary order.
//
// The triangulation is deterministic: the same point slice always yields
// the same arrays (ties in the insertion order are broken by point index,
// and all arithmetic is straight float64 with an epsilon-guarded
// orientation test).
type Triangulation struct {
	Triangles []int32
	Halfedges []int32
	Hull      []int32
}

// Adjacency expands the triangulation into per-point neighbour lists over
// the Delaunay edges. Every edge appears from both endpoints; lists are
// sorted ascending by point index. Points skipped as near-coincident
// duplicates (closer than machine epsilon) get empty lists.
func (t *Triangulation) Adjacency(n int) [][]int32 {
	adj := make([][]int32, n)
	for e := 0; e < len(t.Triangles); e++ {
		// Emit each undirected edge once, from its canonical halfedge.
		if o := t.Halfedges[e]; o > int32(e) || o == -1 {
			a := t.Triangles[e]
			b := t.Triangles[nextHalfedge(e)]
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	for i := range adj {
		s := adj[i]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	}
	return adj
}

// nextHalfedge steps to the next halfedge within the same triangle.
func nextHalfedge(e int) int {
	if e%3 == 2 {
		return e - 2
	}
	return e + 1
}

// ErrCollinear reports a point set whose points all lie on one line: no
// triangle exists, so no Delaunay triangulation does either.
var ErrCollinear = errors.New("geom: all points are collinear, no Delaunay triangulation exists")

// Delaunay triangulates pts via the sweep-hull algorithm (incremental
// insertion in order of distance from the seed triangle's circumcenter,
// with an angular hash over the advancing convex hull and local edge
// flips restoring the in-circle property): O(n log n) and allocation-light.
//
// Degenerate inputs produce errors, never panics: fewer than three
// points, exactly duplicated points, and fully collinear inputs are
// rejected with descriptive errors.
func Delaunay(pts []Point) (*Triangulation, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("geom: Delaunay needs at least 3 points, got %d", n)
	}
	if i, j, ok := findDuplicate(pts); ok {
		return nil, fmt.Errorf("geom: duplicate points %d and %d at (%g, %g)", i, j, pts[i].X, pts[i].Y)
	}
	d := &delaunator{pts: pts}
	if err := d.run(); err != nil {
		return nil, err
	}
	hull := make([]int32, 0, d.hullSize)
	e := d.hullStart
	for i := 0; i < d.hullSize; i++ {
		hull = append(hull, e)
		e = d.hullNext[e]
	}
	return &Triangulation{
		Triangles: d.triangles[:d.trianglesLen],
		Halfedges: d.halfedges[:d.trianglesLen],
		Hull:      hull,
	}, nil
}

// findDuplicate reports the first pair of exactly coincident points.
func findDuplicate(pts []Point) (int32, int32, bool) {
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b]
	})
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if pts[a].X == pts[b].X && pts[a].Y == pts[b].Y {
			return a, b, true
		}
	}
	return 0, 0, false
}

// delaunator holds the working state of one triangulation run.
type delaunator struct {
	pts []Point

	triangles    []int32
	halfedges    []int32
	trianglesLen int

	hullPrev  []int32
	hullNext  []int32
	hullTri   []int32
	hullHash  []int32
	hullStart int32
	hullSize  int
	hashSize  int

	cx, cy float64 // seed circumcenter, the angular-hash origin

	edgeStack [512]int32
}

func (d *delaunator) run() error {
	n := len(d.pts)
	maxTriangles := 2*n - 5
	d.triangles = make([]int32, maxTriangles*3)
	d.halfedges = make([]int32, maxTriangles*3)
	d.hashSize = int(math.Ceil(math.Sqrt(float64(n))))
	d.hullPrev = make([]int32, n)
	d.hullNext = make([]int32, n)
	d.hullTri = make([]int32, n)
	d.hullHash = make([]int32, d.hashSize)

	// Seed: the point closest to the bounding-box centre, its nearest
	// neighbour, and the third point minimizing the circumradius.
	min, max := BoundingBox(d.pts)
	cx, cy := (min.X+max.X)/2, (min.Y+max.Y)/2
	i0 := int32(0)
	minDist := math.Inf(1)
	for i, p := range d.pts {
		dd := sq(p.X-cx) + sq(p.Y-cy)
		if dd < minDist {
			i0 = int32(i)
			minDist = dd
		}
	}
	p0 := d.pts[i0]
	i1 := int32(0)
	minDist = math.Inf(1)
	for i, p := range d.pts {
		if int32(i) == i0 {
			continue
		}
		dd := sq(p.X-p0.X) + sq(p.Y-p0.Y)
		if dd < minDist {
			i1 = int32(i)
			minDist = dd
		}
	}
	p1 := d.pts[i1]
	i2 := int32(0)
	minRadius := math.Inf(1)
	for i, p := range d.pts {
		if int32(i) == i0 || int32(i) == i1 {
			continue
		}
		r := circumradius(p0, p1, p)
		if r < minRadius {
			i2 = int32(i)
			minRadius = r
		}
	}
	if math.IsInf(minRadius, 1) {
		return ErrCollinear
	}
	p2 := d.pts[i2]
	if orient(p0.X, p0.Y, p1.X, p1.Y, p2.X, p2.Y) {
		i1, i2 = i2, i1
		p1, p2 = p2, p1
	}
	d.cx, d.cy = circumcenter(p0, p1, p2)

	// Insertion order: ascending distance from the seed circumcenter,
	// ties by point index so the run is reproducible.
	dists := make([]float64, n)
	ids := make([]int32, n)
	for i, p := range d.pts {
		dists[i] = sq(p.X-d.cx) + sq(p.Y-d.cy)
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := dists[ids[a]], dists[ids[b]]
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})

	d.hullStart = i0
	d.hullSize = 3
	d.hullNext[i0], d.hullPrev[i2] = i1, i1
	d.hullNext[i1], d.hullPrev[i0] = i2, i2
	d.hullNext[i2], d.hullPrev[i1] = i0, i0
	d.hullTri[i0] = 0
	d.hullTri[i1] = 1
	d.hullTri[i2] = 2
	for i := range d.hullHash {
		d.hullHash[i] = -1
	}
	d.hullHash[d.hashKey(p0.X, p0.Y)] = i0
	d.hullHash[d.hashKey(p1.X, p1.Y)] = i1
	d.hullHash[d.hashKey(p2.X, p2.Y)] = i2

	d.addTriangle(i0, i1, i2, -1, -1, -1)

	var xp, yp float64
	for k, i := range ids {
		p := d.pts[i]
		// Near-coincident with the previously inserted point (closer than
		// machine epsilon): indistinguishable under float64, skip it. Exact
		// duplicates were already rejected with an error.
		if k > 0 && math.Abs(p.X-xp) <= 1e-14 && math.Abs(p.Y-yp) <= 1e-14 {
			continue
		}
		xp, yp = p.X, p.Y
		if i == i0 || i == i1 || i == i2 {
			continue
		}

		// Locate a visible hull edge via the angular hash.
		start := int32(0)
		key := d.hashKey(p.X, p.Y)
		for j := 0; j < d.hashSize; j++ {
			start = d.hullHash[(key+j)%d.hashSize]
			if start != -1 && start != d.hullNext[start] {
				break
			}
		}
		start = d.hullPrev[start]
		e := start
		var q int32
		for {
			q = d.hullNext[e]
			if orient(p.X, p.Y, d.pts[e].X, d.pts[e].Y, d.pts[q].X, d.pts[q].Y) {
				break
			}
			e = q
			if e == start {
				e = -1
				break
			}
		}
		if e == -1 {
			continue // a near-duplicate landed exactly on the hull walk
		}

		// First triangle from the visible edge.
		t := d.addTriangle(e, i, d.hullNext[e], -1, -1, d.hullTri[e])
		d.hullTri[i] = d.legalize(t + 2)
		d.hullTri[e] = int32(t)
		d.hullSize++

		// Walk forward while subsequent hull edges stay visible.
		next := d.hullNext[e]
		for {
			q = d.hullNext[next]
			if !orient(p.X, p.Y, d.pts[next].X, d.pts[next].Y, d.pts[q].X, d.pts[q].Y) {
				break
			}
			t = d.addTriangle(next, i, q, d.hullTri[i], -1, d.hullTri[next])
			d.hullTri[i] = d.legalize(t + 2)
			d.hullNext[next] = next // mark as removed
			d.hullSize--
			next = q
		}

		// Walk backward likewise (only possible from the first found edge).
		if e == start {
			for {
				q = d.hullPrev[e]
				if !orient(p.X, p.Y, d.pts[q].X, d.pts[q].Y, d.pts[e].X, d.pts[e].Y) {
					break
				}
				t = d.addTriangle(q, i, e, -1, d.hullTri[e], d.hullTri[q])
				d.legalize(t + 2)
				d.hullTri[q] = int32(t)
				d.hullNext[e] = e // mark as removed
				d.hullSize--
				e = q
			}
		}

		d.hullStart = e
		d.hullPrev[i] = e
		d.hullNext[e] = i
		d.hullPrev[next] = i
		d.hullNext[i] = next

		d.hullHash[d.hashKey(p.X, p.Y)] = i
		d.hullHash[d.hashKey(d.pts[e].X, d.pts[e].Y)] = e
	}
	return nil
}

// hashKey maps a point to a slot by pseudo-angle around the seed center.
func (d *delaunator) hashKey(x, y float64) int {
	return int(math.Floor(pseudoAngle(x-d.cx, y-d.cy)*float64(d.hashSize))) % d.hashSize
}

// pseudoAngle maps a direction to [0, 1), monotone in true angle.
func pseudoAngle(dx, dy float64) float64 {
	p := dx / (math.Abs(dx) + math.Abs(dy))
	if dy > 0 {
		return (3 - p) / 4
	}
	return (1 + p) / 4
}

// addTriangle appends triangle (i0, i1, i2) with twin halfedges a, b, c.
func (d *delaunator) addTriangle(i0, i1, i2, a, b, c int32) int {
	t := d.trianglesLen
	d.triangles[t] = i0
	d.triangles[t+1] = i1
	d.triangles[t+2] = i2
	d.link(int32(t), a)
	d.link(int32(t)+1, b)
	d.link(int32(t)+2, c)
	d.trianglesLen += 3
	return t
}

func (d *delaunator) link(a, b int32) {
	d.halfedges[a] = b
	if b != -1 {
		d.halfedges[b] = a
	}
}

// legalize recursively flips edges that violate the in-circle property,
// using an explicit stack (bounded cascades, no recursion).
func (d *delaunator) legalize(a int) int32 {
	stack := 0
	ar := 0
	for {
		b := d.halfedges[a]
		a0 := a - a%3
		ar = a0 + (a+2)%3
		if b == -1 {
			if stack == 0 {
				break
			}
			stack--
			a = int(d.edgeStack[stack])
			continue
		}
		b0 := int(b) - int(b)%3
		al := a0 + (a+1)%3
		bl := b0 + (int(b)+2)%3

		pt0 := d.triangles[ar]
		ptr := d.triangles[a]
		ptl := d.triangles[al]
		pt1 := d.triangles[bl]
		illegal := inCircle(d.pts[pt0], d.pts[ptr], d.pts[ptl], d.pts[pt1])
		if illegal {
			d.triangles[a] = pt1
			d.triangles[b] = pt0
			hbl := d.halfedges[bl]
			// The flipped edge bl may lie on the hull; repoint its hullTri.
			if hbl == -1 {
				e := d.hullStart
				for {
					if d.hullTri[e] == int32(bl) {
						d.hullTri[e] = int32(a)
						break
					}
					e = d.hullPrev[e]
					if e == d.hullStart {
						break
					}
				}
			}
			d.link(int32(a), hbl)
			d.link(b, d.halfedges[ar])
			d.link(int32(ar), int32(bl))

			br := b0 + (int(b)+1)%3
			if stack < len(d.edgeStack) {
				d.edgeStack[stack] = int32(br)
				stack++
			}
		} else {
			if stack == 0 {
				break
			}
			stack--
			a = int(d.edgeStack[stack])
		}
	}
	return int32(ar)
}

func sq(v float64) float64 { return v * v }

// orientIfSure computes the robust-enough orientation sign: the double of
// the signed triangle area, zeroed when within rounding error of zero.
func orientIfSure(px, py, rx, ry, qx, qy float64) float64 {
	l := (ry - py) * (qx - px)
	r := (rx - px) * (qy - py)
	if math.Abs(l-r) >= 3.3306690738754716e-16*math.Abs(l+r) {
		return l - r
	}
	return 0
}

// orient reports whether (r, q, p) winds clockwise, trying all three
// cyclic orderings so near-degenerate triples get a consistent answer.
func orient(rx, ry, qx, qy, px, py float64) bool {
	s := orientIfSure(px, py, rx, ry, qx, qy)
	if s == 0 {
		s = orientIfSure(rx, ry, qx, qy, px, py)
	}
	if s == 0 {
		s = orientIfSure(qx, qy, px, py, rx, ry)
	}
	return s < 0
}

// inCircle reports whether p lies strictly inside the circumcircle of the
// clockwise triangle (a, b, c).
func inCircle(a, b, c, p Point) bool {
	dx := a.X - p.X
	dy := a.Y - p.Y
	ex := b.X - p.X
	ey := b.Y - p.Y
	fx := c.X - p.X
	fy := c.Y - p.Y
	ap := dx*dx + dy*dy
	bp := ex*ex + ey*ey
	cp := fx*fx + fy*fy
	return dx*(ey*cp-bp*fy)-dy*(ex*cp-bp*fx)+ap*(ex*fy-ey*fx) < 0
}

func circumradius(a, b, c Point) float64 {
	dx := b.X - a.X
	dy := b.Y - a.Y
	ex := c.X - a.X
	ey := c.Y - a.Y
	bl := dx*dx + dy*dy
	cl := ex*ex + ey*ey
	det := dx*ey - dy*ex
	if det == 0 {
		return math.Inf(1)
	}
	d := 0.5 / det
	x := (ey*bl - dy*cl) * d
	y := (dx*cl - ex*bl) * d
	if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
		return math.Inf(1)
	}
	return x*x + y*y
}

func circumcenter(a, b, c Point) (float64, float64) {
	dx := b.X - a.X
	dy := b.Y - a.Y
	ex := c.X - a.X
	ey := c.Y - a.Y
	bl := dx*dx + dy*dy
	cl := ex*ex + ey*ey
	d := 0.5 / (dx*ey - dy*ex)
	return a.X + (ey*bl-dy*cl)*d, a.Y + (dx*cl-ex*bl)*d
}
