package geom

// HilbertOrder is the number of bits per axis used when mapping points onto
// the Hilbert curve; 16 bits gives a 65536x65536 lattice, ample resolution
// for tour construction.
const HilbertOrder = 16

// HilbertD converts lattice coordinates (x, y) in [0, 2^order) to the
// distance along the Hilbert curve of the given order. The classic
// rotate-and-fold iteration runs in O(order).
func HilbertD(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertKeys maps every point to its Hilbert-curve index after scaling the
// bounding box onto the lattice. Identical points receive identical keys.
func HilbertKeys(pts []Point) []uint64 {
	keys := make([]uint64, len(pts))
	if len(pts) == 0 {
		return keys
	}
	min, max := BoundingBox(pts)
	spanX := max.X - min.X
	spanY := max.Y - min.Y
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	side := float64(uint32(1)<<HilbertOrder - 1)
	for i, p := range pts {
		x := uint32((p.X - min.X) / spanX * side)
		y := uint32((p.Y - min.Y) / spanY * side)
		keys[i] = HilbertD(HilbertOrder, x, y)
	}
	return keys
}
