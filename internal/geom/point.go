package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a city location in the plane. GEO instances store latitude and
// longitude in TSPLIB's DDD.MM degree-minute encoding in X and Y.
type Point struct {
	X, Y float64
}

// MetricKind identifies a TSPLIB edge-weight function.
type MetricKind int

const (
	// Euc2D is TSPLIB EUC_2D: Euclidean distance rounded to nearest int.
	Euc2D MetricKind = iota
	// Ceil2D is TSPLIB CEIL_2D: Euclidean distance rounded up.
	Ceil2D
	// Att is TSPLIB ATT: pseudo-Euclidean distance (pr/att instances).
	Att
	// Geo is TSPLIB GEO: great-circle distance on the RRR earth ellipsoid.
	Geo
	// Man2D is TSPLIB MAN_2D: Manhattan distance rounded to nearest int.
	Man2D
	// Max2D is TSPLIB MAX_2D: Chebyshev distance rounded to nearest int.
	Max2D
)

// String returns the TSPLIB EDGE_WEIGHT_TYPE keyword for the metric.
func (m MetricKind) String() string {
	switch m {
	case Euc2D:
		return "EUC_2D"
	case Ceil2D:
		return "CEIL_2D"
	case Att:
		return "ATT"
	case Geo:
		return "GEO"
	case Man2D:
		return "MAN_2D"
	case Max2D:
		return "MAX_2D"
	}
	return "UNKNOWN"
}

// ParseMetric resolves a TSPLIB EDGE_WEIGHT_TYPE keyword to its metric.
// Matching is case-insensitive and tolerates the underscore-free
// spellings ("euc2d") used by JSON APIs; the empty string defaults to
// Euc2D, mirroring ReadTSPLIB. EXPLICIT is not a metric — matrix-backed
// instances carry no edge-weight function — and is rejected here.
func ParseMetric(name string) (MetricKind, error) {
	switch strings.ReplaceAll(strings.ToUpper(strings.TrimSpace(name)), "_", "") {
	case "EUC2D", "":
		return Euc2D, nil
	case "CEIL2D":
		return Ceil2D, nil
	case "ATT":
		return Att, nil
	case "GEO":
		return Geo, nil
	case "MAN2D":
		return Man2D, nil
	case "MAX2D":
		return Max2D, nil
	}
	return 0, fmt.Errorf("geom: unsupported EDGE_WEIGHT_TYPE %q", name)
}

// Dist computes the integral TSPLIB distance between two points under the
// metric. All TSPLIB metrics yield non-negative integers.
func (m MetricKind) Dist(a, b Point) int64 {
	switch m {
	case Euc2D:
		dx, dy := a.X-b.X, a.Y-b.Y
		return int64(math.Sqrt(dx*dx+dy*dy) + 0.5)
	case Ceil2D:
		dx, dy := a.X-b.X, a.Y-b.Y
		return int64(math.Ceil(math.Sqrt(dx*dx + dy*dy)))
	case Att:
		dx, dy := a.X-b.X, a.Y-b.Y
		r := math.Sqrt((dx*dx + dy*dy) / 10.0)
		t := int64(r + 0.5)
		if float64(t) < r {
			return t + 1
		}
		return t
	case Geo:
		return geoDist(a, b)
	case Man2D:
		return int64(math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y) + 0.5)
	case Max2D:
		return int64(math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y)) + 0.5)
	}
	//lint:ignore nopanic Metric is a closed enum fixed at instance construction; Dist sits on the distance hot path and cannot return an error
	panic("geom: unknown metric")
}

// Euclidean returns the exact (unrounded) Euclidean distance. Spatial index
// structures use this regardless of the instance metric; TSPLIB planar
// metrics are monotone in it, so nearest-neighbour orderings agree closely.
func Euclidean(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance, avoiding the square root.
func SqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

const (
	geoPi     = 3.141592
	geoRadius = 6378.388
)

// geoLatLong converts TSPLIB DDD.MM coordinates to radians.
func geoRad(x float64) float64 {
	deg := math.Trunc(x)
	min := x - deg
	return geoPi * (deg + 5.0*min/3.0) / 180.0
}

func geoDist(a, b Point) int64 {
	latA, lonA := geoRad(a.X), geoRad(a.Y)
	latB, lonB := geoRad(b.X), geoRad(b.Y)
	q1 := math.Cos(lonA - lonB)
	q2 := math.Cos(latA - latB)
	q3 := math.Cos(latA + latB)
	return int64(geoRadius*math.Acos(0.5*((1.0+q1)*q2-(1.0-q1)*q3)) + 1.0)
}

// BoundingBox returns the minimal axis-aligned rectangle covering pts.
// It returns zero points for an empty slice.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return
}
