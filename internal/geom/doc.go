// Package geom provides geometric primitives for TSP instances: points,
// TSPLIB distance metrics (EUC_2D, CEIL_2D, ATT, GEO), a k-d tree for
// nearest-neighbour queries, and a Hilbert space-filling curve used by
// construction heuristics. Metric implementations follow the TSPLIB
// specification exactly — the GEO metric is validated against ulysses16's
// proven optimum — so instances shared with other solvers score
// identically here.
package geom
