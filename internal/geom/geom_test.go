package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMetricKnownValues(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	cases := []struct {
		m    MetricKind
		want int64
	}{
		{Euc2D, 5},
		{Ceil2D, 5},
		{Man2D, 7},
		{Max2D, 4},
	}
	for _, tc := range cases {
		if got := tc.m.Dist(a, b); got != tc.want {
			t.Errorf("%v.Dist = %d, want %d", tc.m, got, tc.want)
		}
	}
	// EUC_2D rounds to nearest: distance sqrt(2) ~ 1.41 -> 1.
	if got := Euc2D.Dist(Point{0, 0}, Point{1, 1}); got != 1 {
		t.Errorf("EUC_2D(unit diagonal) = %d, want 1", got)
	}
	// CEIL_2D rounds up: sqrt(2) -> 2.
	if got := Ceil2D.Dist(Point{0, 0}, Point{1, 1}); got != 2 {
		t.Errorf("CEIL_2D(unit diagonal) = %d, want 2", got)
	}
}

func TestAttMatchesTSPLIBFormula(t *testing.T) {
	// ATT: rij = sqrt((dx^2+dy^2)/10); tij = round(rij); if tij < rij
	// then tij+1.
	a := Point{X: 0, Y: 0}
	b := Point{X: 10, Y: 0}
	// r = sqrt(100/10) = sqrt(10) = 3.162..., round -> 3, 3 < r -> 4.
	if got := Att.Dist(a, b); got != 4 {
		t.Errorf("ATT = %d, want 4", got)
	}
}

func TestGeoDistanceSanity(t *testing.T) {
	// Two points one degree of latitude apart ~ 111 km on the TSPLIB
	// earth model.
	a := Point{X: 50.0, Y: 8.0}
	b := Point{X: 51.0, Y: 8.0}
	d := Geo.Dist(a, b)
	if d < 105 || d > 120 {
		t.Errorf("GEO 1-degree distance = %d km, want ~111", d)
	}
	if Geo.Dist(a, a) != 0 && Geo.Dist(a, a) != 1 {
		// Acos rounding can produce 0 or the +1.0 constant floor.
		t.Errorf("GEO self-distance = %d", Geo.Dist(a, a))
	}
}

func TestMetricProperties(t *testing.T) {
	metrics := []MetricKind{Euc2D, Ceil2D, Att, Man2D, Max2D}
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane coordinate range.
		clampf := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clampf(ax), clampf(ay)}
		b := Point{clampf(bx), clampf(by)}
		for _, m := range metrics {
			if m.Dist(a, b) != m.Dist(b, a) {
				return false // symmetry
			}
			if m.Dist(a, b) < 0 {
				return false // non-negativity
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricStrings(t *testing.T) {
	for _, m := range []MetricKind{Euc2D, Ceil2D, Att, Geo, Man2D, Max2D} {
		if m.String() == "UNKNOWN" {
			t.Errorf("metric %d has no name", m)
		}
	}
}

func randomPoints(n int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(200)
		pts := randomPoints(n, rng)
		tree := NewKDTree(pts)
		q := rng.Intn(n)
		k := 1 + rng.Intn(10)
		got := tree.KNearest(pts[q], k, q)

		// Brute force.
		type dc struct {
			d float64
			i int32
		}
		var all []dc
		for i := range pts {
			if i == q {
				continue
			}
			all = append(all, dc{SqDist(pts[q], pts[i]), int32(i)})
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[i].d {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("n=%d k=%d: got %d results, want %d", n, k, len(got), want)
		}
		for i := range got {
			gd := SqDist(pts[q], pts[got[i]])
			if math.Abs(gd-all[i].d) > 1e-9 {
				t.Fatalf("n=%d k=%d: rank %d distance %f, want %f", n, k, i, gd, all[i].d)
			}
		}
	}
}

func TestKDTreeOrderedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(500, rng)
	tree := NewKDTree(pts)
	res := tree.KNearest(Point{500, 500}, 20, -1)
	for i := 1; i < len(res); i++ {
		if SqDist(Point{500, 500}, pts[res[i-1]]) > SqDist(Point{500, 500}, pts[res[i]]) {
			t.Fatal("KNearest results not ascending")
		}
	}
}

func TestKDTreeWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(300, rng)
	tree := NewKDTree(pts)
	q := Point{500, 500}
	r := 150.0
	got := tree.WithinRadius(q, r, -1, nil)
	want := map[int32]bool{}
	for i, p := range pts {
		if Euclidean(q, p) <= r {
			want[int32(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("WithinRadius found %d, want %d", len(got), len(want))
	}
	for _, i := range got {
		if !want[i] {
			t.Fatalf("point %d outside radius", i)
		}
	}
}

func TestKDTreeNearestExcludes(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {5, 5}}
	tree := NewKDTree(pts)
	if got := tree.Nearest(pts[0], 0); got != 1 {
		t.Errorf("Nearest excluding self = %d, want 1", got)
	}
	if got := tree.Nearest(pts[0], -1); got != 0 {
		t.Errorf("Nearest including self = %d, want 0", got)
	}
}

func TestKDTreeEmptyAndSingle(t *testing.T) {
	empty := NewKDTree(nil)
	if got := empty.Nearest(Point{}, -1); got != -1 {
		t.Errorf("empty tree Nearest = %d", got)
	}
	single := NewKDTree([]Point{{1, 2}})
	if got := single.Nearest(Point{0, 0}, -1); got != 0 {
		t.Errorf("single tree Nearest = %d", got)
	}
	if got := single.KNearest(Point{0, 0}, 5, 0); len(got) != 0 {
		t.Errorf("single tree excluding self returned %v", got)
	}
}

func TestHilbertDistinctAndLocal(t *testing.T) {
	// Adjacent lattice points must have close Hilbert indices on average;
	// the curve is a bijection so all indices in a small grid are distinct.
	seen := map[uint64]bool{}
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := HilbertD(4, x, y)
			if d >= 256 {
				t.Fatalf("Hilbert index %d out of range", d)
			}
			if seen[d] {
				t.Fatalf("duplicate Hilbert index %d", d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertCurveIsContinuous(t *testing.T) {
	// Successive curve positions are adjacent lattice cells: invert by
	// scanning all cells of a small grid.
	order := uint(4)
	size := uint32(1) << order
	posOf := make([][2]uint32, size*size)
	for x := uint32(0); x < size; x++ {
		for y := uint32(0); y < size; y++ {
			posOf[HilbertD(order, x, y)] = [2]uint32{x, y}
		}
	}
	for d := 1; d < len(posOf); d++ {
		dx := int(posOf[d][0]) - int(posOf[d-1][0])
		dy := int(posOf[d][1]) - int(posOf[d-1][1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jumps at %d: %v -> %v", d, posOf[d-1], posOf[d])
		}
	}
}

func TestHilbertKeysDegenerate(t *testing.T) {
	// All-identical points must not divide by zero.
	pts := []Point{{5, 5}, {5, 5}, {5, 5}}
	keys := HilbertKeys(pts)
	if len(keys) != 3 || keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("degenerate keys %v", keys)
	}
	if got := HilbertKeys(nil); len(got) != 0 {
		t.Fatal("nil points produced keys")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{3, 7}, {-1, 2}, {5, 0}}
	min, max := BoundingBox(pts)
	if min.X != -1 || min.Y != 0 || max.X != 5 || max.Y != 7 {
		t.Fatalf("bbox (%v, %v)", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Fatal("empty bbox not zero")
	}
}
