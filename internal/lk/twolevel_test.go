package lk

import (
	"math/rand"
	"testing"

	"distclk/internal/tsp"
)

// naiveFlip reverses the forward arc a..b on a plain slice representation,
// the reference semantics for TwoLevelTour.Flip.
type naiveTour struct {
	order []int32
	pos   map[int32]int
}

func newNaive(t tsp.Tour) *naiveTour {
	n := &naiveTour{order: append([]int32(nil), t...), pos: map[int32]int{}}
	for i, c := range n.order {
		n.pos[c] = i
	}
	return n
}

func (n *naiveTour) flip(a, b int32) {
	if a == b {
		return
	}
	var seg []int32
	i := n.pos[a]
	for {
		seg = append(seg, n.order[i])
		if n.order[i] == b {
			break
		}
		i = (i + 1) % len(n.order)
	}
	i = n.pos[a]
	for k := len(seg) - 1; k >= 0; k-- {
		n.order[i] = seg[k]
		n.pos[seg[k]] = i
		i = (i + 1) % len(n.order)
	}
}

func (n *naiveTour) next(c int32) int32 { return n.order[(n.pos[c]+1)%len(n.order)] }
func (n *naiveTour) prev(c int32) int32 {
	return n.order[(n.pos[c]-1+len(n.order))%len(n.order)]
}

func TestTwoLevelBasics(t *testing.T) {
	perm := tsp.Tour{3, 1, 4, 0, 2}
	tl := NewTwoLevelTour(perm)
	if tl.N() != 5 {
		t.Fatalf("N = %d", tl.N())
	}
	for i, c := range perm {
		if got := tl.Pos(c); got != int32(i) {
			t.Errorf("Pos(%d) = %d, want %d", c, got, i)
		}
	}
	if tl.Next(3) != 1 || tl.Prev(3) != 2 || tl.Next(2) != 3 {
		t.Fatal("next/prev wrong on fresh structure")
	}
	got := tl.Tour()
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatalf("Tour() = %v, want %v", got, perm)
		}
	}
}

func TestTwoLevelMatchesNaiveUnderRandomFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(200)
		perm := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		tl := NewTwoLevelTour(perm)
		ref := newNaive(perm)
		for op := 0; op < 30; op++ {
			a := int32(rng.Intn(n))
			b := int32(rng.Intn(n))
			tl.Flip(a, b)
			ref.flip(a, b)
			// Spot-check a few cities after every op; full check at end.
			for probe := 0; probe < 5; probe++ {
				c := int32(rng.Intn(n))
				if tl.Next(c) != ref.next(c) {
					t.Fatalf("trial %d op %d: Next(%d) = %d, want %d",
						trial, op, c, tl.Next(c), ref.next(c))
				}
				if tl.Prev(c) != ref.prev(c) {
					t.Fatalf("trial %d op %d: Prev(%d) = %d, want %d",
						trial, op, c, tl.Prev(c), ref.prev(c))
				}
			}
		}
		got := tl.Tour()
		if err := got.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The cycles must be identical including orientation: compare
		// rotated to the reference.
		refTour := tsp.Tour(ref.order)
		if !got.SameCycle(refTour) {
			t.Fatalf("trial %d: cycle diverged\n got %v\nwant %v", trial, got, refTour)
		}
		// Orientation check: Next agreement for every city.
		for c := int32(0); c < int32(n); c++ {
			if tl.Next(c) != ref.next(c) {
				t.Fatalf("trial %d: final Next(%d) mismatch", trial, c)
			}
		}
	}
}

func TestTwoLevelPosConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 150
	perm := tsp.IdentityTour(n)
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	tl := NewTwoLevelTour(perm)
	for op := 0; op < 50; op++ {
		tl.Flip(int32(rng.Intn(n)), int32(rng.Intn(n)))
		tour := tl.Tour()
		for i, c := range tour {
			if tl.Pos(c) != int32(i) {
				t.Fatalf("op %d: Pos(%d) = %d, tour index %d", op, c, tl.Pos(c), i)
			}
		}
	}
}

func TestTwoLevelBetweenMatchesArrayTour(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	perm := tsp.IdentityTour(n)
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	tl := NewTwoLevelTour(perm)
	at := NewArrayTour(perm)
	for trial := 0; trial < 500; trial++ {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		c := int32(rng.Intn(n))
		if a == b || b == c || a == c {
			continue
		}
		if tl.Between(a, b, c) != at.Between(a, b, c) {
			t.Fatalf("Between(%d,%d,%d) disagrees with ArrayTour", a, b, c)
		}
	}
}

func TestTwoLevelFullCycleFlip(t *testing.T) {
	// Flipping the arc from a to Prev(a) reverses the entire cycle.
	perm := tsp.Tour{0, 1, 2, 3, 4, 5, 6}
	tl := NewTwoLevelTour(perm)
	tl.Flip(1, 0) // arc 1..0 = whole cycle starting at 1
	got := tl.Tour()
	if !got.SameCycle(perm) {
		t.Fatalf("full flip changed the cycle: %v", got)
	}
	if tl.Next(0) != 6 {
		t.Fatalf("orientation not reversed: Next(0) = %d, want 6", tl.Next(0))
	}
}

func TestTwoLevelRebalances(t *testing.T) {
	// Many flips force splits; the structure must keep segment count
	// bounded via rebuilds and stay correct.
	rng := rand.New(rand.NewSource(13))
	n := 400
	perm := tsp.IdentityTour(n)
	tl := NewTwoLevelTour(perm)
	for op := 0; op < 300; op++ {
		tl.Flip(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	if got := len(tl.segs); int32(got)*tl.ideal > 4*int32(n) {
		t.Fatalf("segment count %d not rebalanced (ideal %d)", got, tl.ideal)
	}
	if err := tl.Tour().Validate(n); err != nil {
		t.Fatal(err)
	}
}
