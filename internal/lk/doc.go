// Package lk implements the Lin-Kernighan local search (paper §2.1's
// inner engine): an array-based tour with O(1) neighbour queries and
// segment-reversal flips, plus the variable-depth sequential edge exchange
// with candidate lists, don't-look bits, and a backtracking breadth
// schedule.
//
// Invariants:
//   - Optimize never worsens the tour: every accepted chain has positive
//     total gain.
//   - The tour array and its position index stay mutually consistent
//     across flips (City(Pos(c)) == c).
//   - Search order is deterministic for a fixed (instance, candidates,
//     Params, seed).
//
//distlint:deterministic
package lk
