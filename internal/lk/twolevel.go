package lk

import (
	"math"

	"distclk/internal/tsp"
)

// TwoLevelTour is the classic two-level doubly-linked tour representation
// for very large instances: cities are grouped into ~sqrt(n) segments held
// in tour order, each segment carrying a reversal flag. A flip costs
// O(sqrt(n)) — up to two segment splits plus a segment-range reversal —
// instead of the ArrayTour's O(n) worst case. Concorde uses this structure
// for instances the size of pla85900; this repository's optimizer defaults
// to ArrayTour (simpler, faster at the testbed's scale) and exposes
// TwoLevelTour for the large-instance regime, benchmarked against
// ArrayTour in bench_test.go.
type TwoLevelTour struct {
	n     int32
	segs  []*tlSegment // in tour order
	segOf []*tlSegment // city -> its segment
	offOf []int32      // city -> offset into the segment's cities slice
	ideal int32        // target segment size
}

type tlSegment struct {
	cities []int32
	rev    bool
	pos    int32 // index in TwoLevelTour.segs
	base   int32 // number of cities in earlier segments
}

// NewTwoLevelTour builds the structure from a permutation (copied).
func NewTwoLevelTour(t tsp.Tour) *TwoLevelTour {
	n := int32(len(t))
	tl := &TwoLevelTour{
		n:     n,
		segOf: make([]*tlSegment, n),
		offOf: make([]int32, n),
	}
	tl.ideal = int32(math.Sqrt(float64(n))) + 1
	tl.rebuild(t)
	return tl
}

// rebuild repartitions the given city order into fresh segments. O(n).
func (t *TwoLevelTour) rebuild(order []int32) {
	t.segs = t.segs[:0]
	for start := int32(0); start < t.n; start += t.ideal {
		end := start + t.ideal
		if end > t.n {
			end = t.n
		}
		seg := &tlSegment{cities: append([]int32(nil), order[start:end]...)}
		t.segs = append(t.segs, seg)
		t.adopt(seg)
	}
	t.renumber()
}

// adopt points the city index entries of seg at it. O(len(seg.cities)).
func (t *TwoLevelTour) adopt(seg *tlSegment) {
	for off, c := range seg.cities {
		t.segOf[c] = seg
		t.offOf[c] = int32(off)
	}
}

// renumber refreshes segment positions and prefix sums. O(#segments).
func (t *TwoLevelTour) renumber() {
	total := int32(0)
	for i, seg := range t.segs {
		seg.pos = int32(i)
		seg.base = total
		total += int32(len(seg.cities))
	}
}

// N reports the number of cities.
func (t *TwoLevelTour) N() int { return int(t.n) }

// SegmentCount is exported for rebalancing tests.
func (t *TwoLevelTour) SegmentCount() int { return len(t.segs) }

// logOff is c's logical position inside its segment (reversal-aware).
func (t *TwoLevelTour) logOff(c int32) int32 {
	seg := t.segOf[c]
	if seg.rev {
		return int32(len(seg.cities)) - 1 - t.offOf[c]
	}
	return t.offOf[c]
}

// cityAt returns the city at logical offset k of seg.
func cityAt(seg *tlSegment, k int32) int32 {
	if seg.rev {
		return seg.cities[int32(len(seg.cities))-1-k]
	}
	return seg.cities[k]
}

// Pos returns c's global sequence position (0-based, in tour order).
func (t *TwoLevelTour) Pos(c int32) int32 {
	return t.segOf[c].base + t.logOff(c)
}

// Next returns the city after c.
func (t *TwoLevelTour) Next(c int32) int32 {
	seg := t.segOf[c]
	k := t.logOff(c) + 1
	if k < int32(len(seg.cities)) {
		return cityAt(seg, k)
	}
	si := seg.pos + 1
	if si == int32(len(t.segs)) {
		si = 0
	}
	return cityAt(t.segs[si], 0)
}

// Prev returns the city before c.
func (t *TwoLevelTour) Prev(c int32) int32 {
	seg := t.segOf[c]
	k := t.logOff(c) - 1
	if k >= 0 {
		return cityAt(seg, k)
	}
	si := seg.pos
	if si == 0 {
		si = int32(len(t.segs))
	}
	prev := t.segs[si-1]
	return cityAt(prev, int32(len(prev.cities))-1)
}

// Between reports whether b lies on the forward path from a to c
// (exclusive), mirroring ArrayTour.Between.
func (t *TwoLevelTour) Between(a, b, c int32) bool {
	pa, pb, pc := t.Pos(a), t.Pos(b), t.Pos(c)
	if pa < pc {
		return pa < pb && pb < pc
	}
	return pb > pa || pb < pc
}

// splitBefore ensures city c is the logical head of its segment, splitting
// its segment if needed. O(segment size + #segments).
func (t *TwoLevelTour) splitBefore(c int32) {
	seg := t.segOf[c]
	k := t.logOff(c)
	if k == 0 {
		return
	}
	var left, right []int32
	if seg.rev {
		// Logical order is the reverse of storage: logical [0..k) is the
		// storage tail [cut..).
		cut := int32(len(seg.cities)) - k
		left = append([]int32(nil), seg.cities[cut:]...)
		right = append([]int32(nil), seg.cities[:cut]...)
	} else {
		left = append([]int32(nil), seg.cities[:k]...)
		right = append([]int32(nil), seg.cities[k:]...)
	}
	lseg := &tlSegment{cities: left, rev: seg.rev}
	rseg := &tlSegment{cities: right, rev: seg.rev}
	si := seg.pos
	t.segs = append(t.segs, nil)
	copy(t.segs[si+2:], t.segs[si+1:])
	t.segs[si] = lseg
	t.segs[si+1] = rseg
	t.adopt(lseg)
	t.adopt(rseg)
	t.renumber()
}

// Flip reverses the forward segment from a to b inclusive (same semantics
// as ArrayTour.Flip without the shorter-side substitution: the stated arc
// is reversed and the remainder's stored orientation is untouched).
// Amortized O(sqrt(n)).
func (t *TwoLevelTour) Flip(a, b int32) {
	if a == b {
		return
	}
	t.splitBefore(a)
	nb := t.Next(b)
	if nb != a { // nb == a means flipping the whole cycle
		t.splitBefore(nb)
	}
	sa := t.segOf[a].pos
	sb := t.segOf[b].pos
	// Rotate the segment list so a's segment is first; then the arc is the
	// contiguous range [0..sb']. O(#segments).
	if sa != 0 {
		rot := append(append([]*tlSegment(nil), t.segs[sa:]...), t.segs[:sa]...)
		t.segs = rot
		sb = (sb - sa + int32(len(t.segs))) % int32(len(t.segs))
	}
	for i, j := int32(0), sb; i < j; i, j = i+1, j-1 {
		t.segs[i], t.segs[j] = t.segs[j], t.segs[i]
	}
	for i := int32(0); i <= sb; i++ {
		t.segs[i].rev = !t.segs[i].rev
	}
	t.renumber()
	// Amortized rebalance: splits shrink segments; rebuild once the
	// segment count grows well past the ideal partition.
	if int32(len(t.segs)) > 3*(t.n/t.ideal+1) {
		t.rebuild(t.Tour())
	}
}

// Tour extracts the current cycle as a permutation. O(n).
func (t *TwoLevelTour) Tour() tsp.Tour {
	out := make(tsp.Tour, 0, t.n)
	for _, seg := range t.segs {
		if seg.rev {
			for i := len(seg.cities) - 1; i >= 0; i-- {
				out = append(out, seg.cities[i])
			}
		} else {
			out = append(out, seg.cities...)
		}
	}
	return out
}
