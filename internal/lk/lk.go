package lk

import (
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Params tunes the Lin-Kernighan search.
type Params struct {
	// MaxDepth bounds the length of one sequential exchange chain.
	MaxDepth int
	// Breadth[i] is the number of candidate extensions explored at chain
	// depth i; depths beyond the slice use breadth 1 (greedy dive).
	Breadth []int
	// RelaxDepth enables the relaxed gain rule: at chain depths below it,
	// the cumulative partial gain may dip as low as -slack instead of
	// having to stay strictly positive, letting chains cross equal-length
	// plateaus (lattice instances) the classic rule cannot. 0 (or
	// negative) keeps the classic strictly-positive criterion everywhere.
	// Accepted moves still strictly improve the tour: only the closing
	// test decides acceptance, and it is unchanged.
	RelaxDepth int
	// RelaxSlackPerMille bounds the dip as thousandths of the chain's
	// first removed edge g0 (slack = g0*RelaxSlackPerMille/1000). <= 0
	// selects the default of 100 (10% of g0) when RelaxDepth > 0.
	RelaxSlackPerMille int
}

// defaultRelaxSlackPerMille is the slack used when RelaxDepth > 0 but no
// explicit per-mille bound is given: 10% of the first removed edge.
const defaultRelaxSlackPerMille = 100

// DefaultParams matches the breadth schedule used in practice by
// Concorde-style implementations: wide at the first levels, then a greedy
// deep dive.
func DefaultParams() Params {
	return Params{
		MaxDepth: 30,
		Breadth:  []int{5, 3, 2},
	}
}

func (p Params) breadth(depth int) int {
	if depth < len(p.Breadth) {
		return p.Breadth[depth]
	}
	return 1
}

// step is one link of an exchange chain: with anchor t1 and current loose
// end `loose`, the move removes edges (t1,loose) and (v,y), and adds
// (loose,y) and (v,t1), making v the new loose end. Steps are recorded
// orientation-free: apply/undo re-derive the array direction from Next(t1),
// because shorter-side flips may mirror the stored orientation.
type step struct {
	loose, v int32
}

// Optimizer runs Lin-Kernighan over an ArrayTour. It maintains don't-look
// bits and an active-city queue so that repeated optimization after a kick
// only examines the perturbed region. All scratch state is pre-sized at
// NewOptimizer time; the steady-state kick→optimize loop allocates nothing
// and reads candidate-edge distances from the neighbor.Lists table instead
// of evaluating the instance metric.
type Optimizer struct {
	inst   *tsp.Instance
	nbr    *neighbor.Lists
	params Params

	Tour   *ArrayTour
	length int64

	dist    func(i, j int32) int64
	queue   []int32 // FIFO backing array; live entries are queue[qhead:]
	qhead   int
	inQueue []bool

	// chain state
	t1       int32
	bestGain int64
	bestLen  int
	path     []step
	bestPath []step
	touched  []int32

	// relaxed-gain state: relaxDepth/relaxPerMille are fixed at
	// construction; relaxLimit is recomputed once per chain from g0 and
	// read (not recomputed) on every dive level.
	relaxDepth    int
	relaxPerMille int64
	relaxLimit    int64

	// Moves counts accepted improving exchanges (for instrumentation).
	Moves int64
}

// NewOptimizer prepares an optimizer over the given tour. The tour is
// adopted (copied into the internal array form); Optimize mutates it.
// Every scratch buffer the search can need is allocated here, pre-sized
// from the instance and MaxDepth, so Optimize never grows a slice.
func NewOptimizer(inst *tsp.Instance, nbr *neighbor.Lists, tour tsp.Tour, params Params) *Optimizer {
	return NewOptimizerWith(nil, inst, nbr, tour, params)
}

// Length returns the current tour length (maintained incrementally).
func (o *Optimizer) Length() int64 { return o.length }

// SetTour replaces the working tour, resetting queue state.
func (o *Optimizer) SetTour(t tsp.Tour) {
	o.Tour.SetTour(t)
	o.length = t.Length(o.inst)
	for i := range o.inQueue {
		o.inQueue[i] = false
	}
	o.queue = o.queue[:0]
	o.qhead = 0
}

// SetLength overrides the cached length after the caller mutated the tour
// externally with a known delta (used by kick moves).
func (o *Optimizer) SetLength(l int64) { o.length = l }

// push enqueues c unless already queued. The backing array never grows
// past its initial capacity n: at most n-1 other cities can be live when a
// new one arrives, so compacting the consumed prefix always makes room.
//
//distlint:hotpath
func (o *Optimizer) push(c int32) {
	if o.inQueue[c] {
		return
	}
	o.inQueue[c] = true
	if len(o.queue) == cap(o.queue) && o.qhead > 0 {
		live := copy(o.queue, o.queue[o.qhead:])
		o.queue = o.queue[:live]
		o.qhead = 0
	}
	o.queue = append(o.queue, c)
}

// QueueAll enqueues every city for examination.
func (o *Optimizer) QueueAll() {
	for c := int32(0); c < int32(o.inst.N()); c++ {
		o.push(c)
	}
}

// QueueCities enqueues specific cities (e.g. kick endpoints).
func (o *Optimizer) QueueCities(cities []int32) {
	for _, c := range cities {
		o.push(c)
	}
}

// Optimize processes the active queue to exhaustion, applying improving
// variable-depth exchanges until no queued city yields one. It returns the
// total gain (length decrease). stop, when non-nil, is polled between
// cities; a true return aborts early (used for wall-clock budgets).
//
//distlint:hotpath
func (o *Optimizer) Optimize(stop func() bool) int64 {
	var total int64
	checked := 0
	for o.qhead < len(o.queue) {
		c := o.queue[o.qhead]
		o.qhead++
		if o.qhead == len(o.queue) {
			o.queue = o.queue[:0]
			o.qhead = 0
		}
		o.inQueue[c] = false
		for {
			gain := o.improveCity(c)
			if gain <= 0 {
				break
			}
			total += gain
			o.Moves++
			for _, tc := range o.touched {
				o.push(tc)
			}
		}
		if stop != nil {
			checked++
			if checked&63 == 0 && stop() {
				break
			}
		}
	}
	return total
}

// OptimizeAll runs Optimize starting from every city.
func (o *Optimizer) OptimizeAll(stop func() bool) int64 {
	o.QueueAll()
	return o.Optimize(stop)
}

// improveCity attempts one accepted improving chain anchored at t1, trying
// both orientations; returns the realized gain (0 if none).
//
//distlint:hotpath
func (o *Optimizer) improveCity(t1 int32) int64 {
	for orient := 0; orient < 2; orient++ {
		var loose int32
		if orient == 0 {
			loose = o.Tour.Next(t1)
		} else {
			loose = o.Tour.Prev(t1)
		}
		if gain := o.tryChain(t1, loose); gain > 0 {
			return gain
		}
	}
	return 0
}

// applyStep performs the 2-opt flip for s given the current array state.
// Precondition: edge (t1, s.loose) is in the cycle.
//
//distlint:hotpath
func (o *Optimizer) applyStep(s step) {
	if o.Tour.Next(o.t1) == s.loose {
		o.Tour.Flip(s.loose, s.v)
	} else {
		o.Tour.Flip(s.v, s.loose)
	}
}

// undoStep reverses applyStep. Precondition: edge (t1, s.v) is in the cycle.
//
//distlint:hotpath
func (o *Optimizer) undoStep(s step) {
	if o.Tour.Next(o.t1) == s.v {
		o.Tour.Flip(s.v, s.loose)
	} else {
		o.Tour.Flip(s.loose, s.v)
	}
}

// tryChain explores sequential exchanges starting by (virtually) removing
// edge (t1, loose). The array always holds a valid cycle containing the
// temporary closing edge (t1, current loose); each step is a 2-opt flip.
// On success the best chain prefix is re-applied and its gain returned.
//
//distlint:hotpath
func (o *Optimizer) tryChain(t1, loose int32) int64 {
	o.t1 = t1
	o.path = o.path[:0]
	o.bestGain = 0
	o.bestLen = 0

	g0 := o.dist(t1, loose)
	if o.relaxDepth > 0 {
		// One multiply/divide per chain, never per candidate: dive reads
		// the precomputed limit.
		o.relaxLimit = -(g0 * o.relaxPerMille / 1000)
	}
	o.dive(loose, g0, 0)

	if o.bestGain <= 0 {
		return 0
	}
	// Re-apply the winning prefix and collect touched cities.
	o.touched = o.touched[:0]
	o.touched = append(o.touched, t1, loose)
	for _, s := range o.bestPath[:o.bestLen] {
		o.applyStep(s)
		o.touched = append(o.touched, s.loose, s.v)
	}
	o.length -= o.bestGain
	return o.bestGain
}

// dive extends the chain from the current loose end. G is the cumulative
// gain of removed-minus-added real edges so far (> relaxLimit on entry;
// always > 0 under the classic rule). The tour state is restored before
// dive returns.
//
//distlint:hotpath
func (o *Optimizer) dive(loose int32, G int64, depth int) {
	if depth >= o.params.MaxDepth {
		return
	}
	t := o.Tour
	t1 := o.t1
	width := o.params.breadth(depth)
	tried := 0
	// Classic rule: the partial gain must stay strictly positive. Relaxed
	// rule (shallow depths only): it may dip to the per-chain limit, so
	// equal-length candidate edges do not dead-end the chain.
	limit := int64(0)
	if depth < o.relaxDepth {
		limit = o.relaxLimit
	}
	// Candidate distances come from the precomputed table: the gain test
	// costs one array read, never a metric evaluation (the break below
	// relies on the table's ascending order).
	cands, cdist := o.nbr.Cand(loose)
	for i, y := range cands {
		if y == t1 || y == loose {
			continue
		}
		g := G - cdist[i]
		if g <= limit {
			break // candidates sorted by distance: later ones fail too
		}
		// v is y's path-neighbour on the loose side, derived from the
		// current orientation of the temporary edge (t1, loose).
		var v int32
		if t.Next(t1) == loose {
			v = t.Prev(y)
		} else {
			v = t.Next(y)
		}
		if v == loose {
			continue // degenerate: y is loose's path successor
		}
		newG := g + o.dist(y, v)
		closeGain := newG - o.dist(v, t1)

		s := step{loose: loose, v: v}
		o.path = append(o.path, s)
		if closeGain > o.bestGain {
			o.bestGain = closeGain
			o.bestLen = len(o.path)
			o.bestPath = append(o.bestPath[:0], o.path...)
		}
		if depth+1 < o.params.MaxDepth {
			// The 2-opt flip is only needed so the deeper dive sees the
			// updated cycle; at the last level the pair of flips would be
			// pure wasted work, so it is skipped.
			o.applyStep(s)
			o.dive(v, newG, depth+1)
			o.undoStep(s)
		}
		o.path = o.path[:len(o.path)-1]

		tried++
		if tried >= width {
			break
		}
	}
}
