package lk

import "distclk/internal/tsp"

// ArrayTour is a tour stored as a permutation plus its inverse: order[i] is
// the city at position i and pos[c] is city c's position. Next/Prev are O(1)
// and Flip reverses a segment, always walking the shorter side, so a flip
// costs O(min(len, n-len)). The cycle it represents is orientation-free:
// flips may invert the stored direction of parts of the tour, and callers
// must re-derive directions from Next/Prev rather than caching them.
type ArrayTour struct {
	order []int32
	pos   []int32
	n     int32
}

// NewArrayTour builds the structure from a tour permutation (copied).
func NewArrayTour(t tsp.Tour) *ArrayTour {
	n := int32(len(t))
	at := &ArrayTour{
		order: make([]int32, n),
		pos:   make([]int32, n),
		n:     n,
	}
	copy(at.order, t)
	for i, c := range at.order {
		at.pos[c] = int32(i)
	}
	return at
}

// N reports the number of cities.
func (t *ArrayTour) N() int { return int(t.n) }

// Next returns the city after c in the stored orientation.
func (t *ArrayTour) Next(c int32) int32 {
	i := t.pos[c] + 1
	if i == t.n {
		i = 0
	}
	return t.order[i]
}

// Prev returns the city before c in the stored orientation.
func (t *ArrayTour) Prev(c int32) int32 {
	i := t.pos[c] - 1
	if i < 0 {
		i = t.n - 1
	}
	return t.order[i]
}

// Pos returns city c's current position.
func (t *ArrayTour) Pos(c int32) int32 { return t.pos[c] }

// At returns the city at position i.
func (t *ArrayTour) At(i int32) int32 { return t.order[i] }

// Between reports whether b lies on the forward path from a to c
// (exclusive of a and c). All three must be distinct.
func (t *ArrayTour) Between(a, b, c int32) bool {
	pa, pb, pc := t.pos[a], t.pos[b], t.pos[c]
	if pa < pc {
		return pa < pb && pb < pc
	}
	return pb > pa || pb < pc
}

// SeqLen returns the number of cities on the forward path from a to b,
// inclusive of both endpoints.
func (t *ArrayTour) SeqLen(a, b int32) int32 {
	d := t.pos[b] - t.pos[a]
	if d < 0 {
		d += t.n
	}
	return d + 1
}

// Flip reverses the forward segment from a to b (inclusive). When the
// complement is shorter it reverses that instead, which yields the same
// Hamiltonian cycle but may invert the stored orientation. Because of
// that, undoing a flip requires re-deriving the direction from a fixed
// reference edge (see Optimizer.undoStep); Flip(b, a) alone is not a
// reliable inverse.
//
//distlint:hotpath
func (t *ArrayTour) Flip(a, b int32) {
	if a == b {
		return
	}
	pa, pb := t.pos[a], t.pos[b]
	inLen := pb - pa
	if inLen < 0 {
		inLen += t.n
	}
	inLen++
	if inLen*2 > t.n {
		// Reverse the complement [next(b) .. prev(a)] instead.
		pa = pb + 1
		if pa == t.n {
			pa = 0
		}
		pb = t.pos[a] - 1
		if pb < 0 {
			pb = t.n - 1
		}
		inLen = t.n - inLen
		if inLen == 0 {
			return
		}
	}
	if pa <= pb {
		// Common case: the reversed range is contiguous in the array, so
		// the two cursors never wrap — a tight loop with no modular
		// arithmetic.
		order, pos := t.order, t.pos
		for i, j := pa, pb; i < j; i, j = i+1, j-1 {
			ci, cj := order[i], order[j]
			order[i], order[j] = cj, ci
			pos[ci], pos[cj] = j, i
		}
		return
	}
	i, j := pa, pb
	for k := inLen / 2; k > 0; k-- {
		ci, cj := t.order[i], t.order[j]
		t.order[i], t.order[j] = cj, ci
		t.pos[ci], t.pos[cj] = j, i
		i++
		if i == t.n {
			i = 0
		}
		j--
		if j < 0 {
			j = t.n - 1
		}
	}
}

// SetSeg overwrites the cities at consecutive positions start, start+1, …
// (no wrap-around; start+len(cities) must be ≤ n) and refreshes the inverse
// index for the rewritten range. The caller is responsible for the result
// remaining a permutation — it is the allocation-free primitive behind the
// double-bridge kick, which rewrites only the affected position range
// instead of rebuilding the whole order array.
//
//distlint:hotpath
func (t *ArrayTour) SetSeg(start int32, cities []int32) {
	copy(t.order[start:], cities)
	for i, c := range cities {
		t.pos[c] = start + int32(i)
	}
}

// Tour copies the current cycle out as a permutation.
func (t *ArrayTour) Tour() tsp.Tour {
	out := make(tsp.Tour, t.n)
	copy(out, t.order)
	return out
}

// CopyFrom overwrites this tour's state with src's. Both must have equal n.
//
//distlint:hotpath
func (t *ArrayTour) CopyFrom(src *ArrayTour) {
	copy(t.order, src.order)
	copy(t.pos, src.pos)
}

// SetTour overwrites the state with the given permutation.
func (t *ArrayTour) SetTour(tour tsp.Tour) {
	copy(t.order, tour)
	for i, c := range t.order {
		t.pos[c] = int32(i)
	}
}
