package lk

import (
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// Scratch recycles an Optimizer's working buffers across solves. The
// buffers (active-city queue, don't-look bits, chain paths) are sized by
// instance N and Params.MaxDepth; a long-lived service reuses a Scratch
// per job instead of re-allocating them (see internal/serve). A Scratch
// backs AT MOST ONE live Optimizer at a time. The zero value is ready to
// use; a nil *Scratch means "allocate fresh".
type Scratch struct {
	queue    []int32
	inQueue  []bool
	path     []step
	bestPath []step
	touched  []int32
}

// owns reports whether o's queue backing array came from sc — the
// pool-hit assertion used by scratch-reuse tests.
func (sc *Scratch) owns(o *Optimizer) bool {
	if sc == nil || o == nil || cap(sc.queue) == 0 || cap(o.queue) == 0 {
		return false
	}
	return &sc.queue[:1][0] == &o.queue[:1][0]
}

// NewOptimizerWith is NewOptimizer drawing the scratch buffers from sc
// (nil = allocate fresh). Buffers grow to fit and are retained by sc, so
// the optimizer aliases sc until the next NewOptimizerWith call.
func NewOptimizerWith(sc *Scratch, inst *tsp.Instance, nbr *neighbor.Lists, tour tsp.Tour, params Params) *Optimizer {
	if sc == nil {
		sc = &Scratch{}
	}
	n := inst.N()
	if cap(sc.queue) < n {
		sc.queue = make([]int32, 0, n)
	}
	if cap(sc.inQueue) < n {
		sc.inQueue = make([]bool, n)
	}
	sc.inQueue = sc.inQueue[:n]
	clear(sc.inQueue)
	if cap(sc.path) < params.MaxDepth {
		sc.path = make([]step, 0, params.MaxDepth)
	}
	if cap(sc.bestPath) < params.MaxDepth {
		sc.bestPath = make([]step, 0, params.MaxDepth)
	}
	if t := 2*params.MaxDepth + 2; cap(sc.touched) < t {
		sc.touched = make([]int32, 0, t)
	}
	o := &Optimizer{
		inst:     inst,
		nbr:      nbr,
		params:   params,
		Tour:     NewArrayTour(tour),
		dist:     inst.DistFunc(),
		inQueue:  sc.inQueue,
		queue:    sc.queue[:0],
		path:     sc.path[:0],
		bestPath: sc.bestPath[:0],
		touched:  sc.touched[:0],
	}
	o.length = tour.Length(inst)
	if params.RelaxDepth > 0 {
		o.relaxDepth = params.RelaxDepth
		o.relaxPerMille = int64(params.RelaxSlackPerMille)
		if o.relaxPerMille <= 0 {
			o.relaxPerMille = defaultRelaxSlackPerMille
		}
	}
	return o
}
