package lk

import (
	"math/rand"
	"testing"

	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func relaxedParams() Params {
	p := DefaultParams()
	p.RelaxDepth = 3
	return p
}

// TestRelaxedGainNeverWorsens: the relaxed rule only widens the *search*;
// acceptance still requires a strictly positive closing gain, so the tour
// length must be non-increasing move by move.
func TestRelaxedGainNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, fam := range []tsp.Family{tsp.FamilyUniform, tsp.FamilyDrill} {
		in := tsp.Generate(fam, 300, 7)
		nbr := neighbor.Build(in, 8)
		start := randomTourOf(in.N(), rng)
		o := NewOptimizer(in, nbr, start, relaxedParams())
		before := o.Length()
		o.OptimizeAll(nil)
		after := o.Length()
		if after > before {
			t.Fatalf("%v: relaxed LK worsened tour: %d -> %d", fam, before, after)
		}
		got := o.Tour.Tour()
		if err := got.Validate(in.N()); err != nil {
			t.Fatalf("%v: invalid tour: %v", fam, err)
		}
		if got.Length(in) != after {
			t.Fatalf("%v: cached length %d, actual %d", fam, after, got.Length(in))
		}
	}
}

// TestRelaxedGainMatchesClassicQuality: on a plateau-heavy drill instance
// the relaxed rule must reach at least the classic rule's quality from the
// same start (it strictly widens the explored neighbourhood; acceptance is
// unchanged, but it can only find more closing moves, not fewer).
func TestRelaxedGainFindsMovesOnPlateaus(t *testing.T) {
	in := tsp.Generate(tsp.FamilyDrill, 400, 3)
	nbr := neighbor.Build(in, 8)
	rng := rand.New(rand.NewSource(9))
	start := randomTourOf(in.N(), rng)

	classic := NewOptimizer(in, nbr, start, DefaultParams())
	classic.OptimizeAll(nil)
	relaxed := NewOptimizer(in, nbr, start, relaxedParams())
	relaxed.OptimizeAll(nil)

	// Not a strict dominance guarantee per-instance (search order differs
	// once extra candidates survive the break), but the relaxed rule must
	// stay within a hair of classic and actually explore: a large
	// regression means the limit plumbing is wrong.
	if float64(relaxed.Length()) > float64(classic.Length())*1.01 {
		t.Fatalf("relaxed %d much worse than classic %d", relaxed.Length(), classic.Length())
	}
	if relaxed.Moves == 0 {
		t.Fatal("relaxed optimizer accepted no moves")
	}
}

// TestRelaxedGainDeterministic: same seed, same params => byte-identical
// tours, the contract the facade's auto mode relies on.
func TestRelaxedGainDeterministic(t *testing.T) {
	run := func() tsp.Tour {
		in := tsp.Generate(tsp.FamilyDrill, 350, 21)
		nbr := neighbor.Build(in, 8)
		rng := rand.New(rand.NewSource(4))
		o := NewOptimizer(in, nbr, randomTourOf(in.N(), rng), relaxedParams())
		o.OptimizeAll(nil)
		return o.Tour.Tour()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("tour lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tours diverge at position %d for identical seeds", i)
		}
	}
}

// TestRelaxedDiveZeroAlloc pins the hot-path contract for the relaxed
// rule: the per-chain limit is one integer computed in tryChain, so the
// steady-state optimize loop must stay allocation-free exactly like the
// classic rule.
func TestRelaxedDiveZeroAlloc(t *testing.T) {
	in := tsp.Generate(tsp.FamilyDrill, 400, 6)
	nbr := neighbor.Build(in, 8)
	rng := rand.New(rand.NewSource(2))
	o := NewOptimizer(in, nbr, randomTourOf(in.N(), rng), relaxedParams())
	o.OptimizeAll(nil)
	cities := []int32{1, 2, 3, 4}
	if allocs := testing.AllocsPerRun(200, func() {
		o.QueueCities(cities)
		o.Optimize(nil)
	}); allocs != 0 {
		t.Errorf("relaxed optimize loop allocates %.1f objects per run, want 0", allocs)
	}
}
