package lk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distclk/internal/tsp"
)

func edgeSet(t *ArrayTour) map[[2]int32]bool {
	set := make(map[[2]int32]bool)
	n := int32(t.N())
	for i := int32(0); i < n; i++ {
		a, b := t.At(i), t.At((i+1)%n)
		if a > b {
			a, b = b, a
		}
		set[[2]int32{a, b}] = true
	}
	return set
}

func sameEdges(a, b map[[2]int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

func TestArrayTourBasics(t *testing.T) {
	at := NewArrayTour(tsp.Tour{3, 1, 4, 0, 2})
	if at.N() != 5 {
		t.Fatalf("N = %d, want 5", at.N())
	}
	if got := at.Next(3); got != 1 {
		t.Errorf("Next(3) = %d, want 1", got)
	}
	if got := at.Prev(3); got != 2 {
		t.Errorf("Prev(3) = %d, want 2", got)
	}
	if got := at.Next(2); got != 3 {
		t.Errorf("Next(2) = %d, want 3 (wrap)", got)
	}
	if got := at.Pos(4); got != 2 {
		t.Errorf("Pos(4) = %d, want 2", got)
	}
	if got := at.SeqLen(3, 2); got != 5 {
		t.Errorf("SeqLen(3,2) = %d, want 5", got)
	}
	if got := at.SeqLen(1, 1); got != 1 {
		t.Errorf("SeqLen(1,1) = %d, want 1", got)
	}
}

func TestArrayTourFlipSmall(t *testing.T) {
	at := NewArrayTour(tsp.Tour{0, 1, 2, 3, 4, 5})
	at.Flip(1, 4) // reverse 1..4 -> 0 4 3 2 1 5
	want := tsp.Tour{0, 4, 3, 2, 1, 5}
	got := at.Tour()
	wantSet := edgeSet(NewArrayTour(want))
	if !sameEdges(edgeSet(at), wantSet) {
		t.Fatalf("Flip(1,4) = %v, want cycle of %v", got, want)
	}
	// Positions must stay consistent.
	for i := int32(0); i < 6; i++ {
		if at.At(at.Pos(i)) != i {
			t.Fatalf("pos/order inconsistent for city %d", i)
		}
	}
}

func TestArrayTourFlipUndo(t *testing.T) {
	// The inverse of a flip must be derived from a reference edge because
	// shorter-side flips can mirror the stored orientation: with u=Prev(a)
	// recorded before Flip(a,b), the undo is Flip(b,a) when Next(u)==b
	// afterwards, else Flip(a,b).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(30)
		perm := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		at := NewArrayTour(perm)
		before := edgeSet(at)
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if a == b || at.Prev(a) == b {
			continue // identity or full-cycle flip; nothing to undo
		}
		u := at.Prev(a)
		at.Flip(a, b)
		if err := at.Tour().Validate(n); err != nil {
			t.Fatalf("flip broke permutation: %v", err)
		}
		if at.Next(u) == b {
			at.Flip(b, a)
		} else {
			at.Flip(a, b)
		}
		if !sameEdges(edgeSet(at), before) {
			t.Fatalf("orientation-aware undo of Flip(%d,%d) failed (n=%d)", a, b, n)
		}
	}
}

func TestArrayTourFlipMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(20)
		perm := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		at := NewArrayTour(perm)
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))

		// Naive reference: reverse forward segment a..b on a copy.
		ref := NewArrayTour(perm)
		var seg []int32
		for c := a; ; c = ref.Next(c) {
			seg = append(seg, c)
			if c == b {
				break
			}
		}
		naive := perm.Clone()
		pos := make(map[int32]int)
		for i, c := range naive {
			pos[c] = i
		}
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			pi, pj := pos[seg[i]], pos[seg[j]]
			naive[pi], naive[pj] = naive[pj], naive[pi]
			pos[seg[i]], pos[seg[j]] = pj, pi
		}

		at.Flip(a, b)
		if !sameEdges(edgeSet(at), edgeSet(NewArrayTour(naive))) {
			t.Fatalf("Flip(%d,%d) on %v: got cycle %v, want %v", a, b, perm, at.Tour(), naive)
		}
	}
}

func TestArrayTourBetween(t *testing.T) {
	at := NewArrayTour(tsp.Tour{0, 1, 2, 3, 4, 5})
	cases := []struct {
		a, b, c int32
		want    bool
	}{
		{0, 2, 4, true},
		{0, 4, 2, false},
		{4, 5, 1, true},
		{4, 0, 1, true},
		{4, 2, 1, false},
		{5, 0, 3, true},
	}
	for _, tc := range cases {
		if got := at.Between(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

// naiveFlip reverses the forward segment a..b of perm by the textbook
// definition, ignoring the shorter-side optimization — the oracle the
// property tests compare Flip against.
func naiveFlip(perm tsp.Tour, a, b int32) tsp.Tour {
	ref := NewArrayTour(perm)
	var seg []int32
	for c := a; ; c = ref.Next(c) {
		seg = append(seg, c)
		if c == b {
			break
		}
	}
	out := perm.Clone()
	pos := make(map[int32]int)
	for i, c := range out {
		pos[c] = i
	}
	for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
		pi, pj := pos[seg[i]], pos[seg[j]]
		out[pi], out[pj] = out[pj], out[pi]
		pos[seg[i]], pos[seg[j]] = pj, pi
	}
	return out
}

// TestArrayTourFlipWrapAround pins the cases the shorter-side substitution
// must get right: segments crossing the array end, segments whose
// complement is the shorter side (so the complement is reversed instead),
// and the exact-half split where either side may be chosen.
func TestArrayTourFlipWrapAround(t *testing.T) {
	cases := []struct {
		name string
		n    int
		a, b int32
	}{
		{"wraps-array-end", 8, 6, 2},     // forward segment 6,7,0,1,2 wraps
		{"complement-shorter", 10, 1, 8}, // 8-city segment: complement side reversed
		{"wrap-and-longer", 9, 7, 5},     // wrapping and longer than complement
		{"exact-half", 8, 2, 5},          // both sides length 4
		{"two-cities", 6, 5, 0},          // minimal wrapping segment
		{"all-but-one", 7, 1, 6},         // complement is a single city
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perm := tsp.IdentityTour(tc.n)
			at := NewArrayTour(perm)
			want := naiveFlip(perm, tc.a, tc.b)
			at.Flip(tc.a, tc.b)
			if !sameEdges(edgeSet(at), edgeSet(NewArrayTour(want))) {
				t.Fatalf("Flip(%d,%d) on n=%d: got cycle %v, want %v", tc.a, tc.b, tc.n, at.Tour(), want)
			}
			for c := int32(0); c < int32(tc.n); c++ {
				if at.At(at.Pos(c)) != c {
					t.Fatalf("pos/order inconsistent for city %d", c)
				}
			}
		})
	}
}

// TestArrayTourFlipShorterSideProperty drives random flips whose forward
// segment is deliberately the *longer* side, so every iteration exercises
// the complement-reversal path, and checks the cycle against the naive
// oracle.
func TestArrayTourFlipShorterSideProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		n := 5 + rng.Intn(40)
		perm := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		at := NewArrayTour(perm)
		// Pick a forward segment longer than n/2 (position span > n/2).
		pa := int32(rng.Intn(n))
		span := int32(n/2 + 1 + rng.Intn(n-n/2-1))
		pb := (pa + span) % int32(n)
		a, b := at.At(pa), at.At(pb)
		want := naiveFlip(perm, a, b)
		at.Flip(a, b)
		if !sameEdges(edgeSet(at), edgeSet(NewArrayTour(want))) {
			t.Fatalf("long-side Flip(%d,%d) on %v: got %v, want %v", a, b, perm, at.Tour(), want)
		}
	}
}

func TestArrayTourSetSeg(t *testing.T) {
	at := NewArrayTour(tsp.Tour{0, 1, 2, 3, 4, 5})
	// Rewrite positions 1..4 with the same cities in a new order.
	at.SetSeg(1, []int32{4, 3, 1, 2})
	want := tsp.Tour{0, 4, 3, 1, 2, 5}
	got := at.Tour()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetSeg result %v, want %v", got, want)
		}
	}
	for c := int32(0); c < 6; c++ {
		if at.At(at.Pos(c)) != c {
			t.Fatalf("pos/order inconsistent for city %d after SetSeg", c)
		}
	}
}

// TestFlipSequenceStaysPermutation is the property test: any sequence of
// flips leaves a valid permutation with consistent pos/order arrays.
func TestFlipSequenceStaysPermutation(t *testing.T) {
	f := func(seedRaw int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		n := 3 + rng.Intn(40)
		perm := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		at := NewArrayTour(perm)
		for _, op := range opsRaw {
			a := int32(int(op) % n)
			b := int32(int(op>>8) % n)
			at.Flip(a, b)
		}
		if err := at.Tour().Validate(n); err != nil {
			return false
		}
		for c := int32(0); c < int32(n); c++ {
			if at.At(at.Pos(c)) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
