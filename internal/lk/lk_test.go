package lk

import (
	"math/rand"
	"testing"

	"distclk/internal/exact"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func randomInstance(n int, seed int64) *tsp.Instance {
	return tsp.Generate(tsp.FamilyUniform, n, seed)
}

func randomTourOf(n int, rng *rand.Rand) tsp.Tour {
	t := tsp.IdentityTour(n)
	rng.Shuffle(n, func(i, j int) { t[i], t[j] = t[j], t[i] })
	return t
}

// twoOptLength runs plain full 2-opt to local optimality (oracle quality bar).
func twoOptLength(in *tsp.Instance, start tsp.Tour) int64 {
	n := in.N()
	tour := start.Clone()
	dist := in.DistFunc()
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				a, b := tour[i], tour[(i+1)%n]
				c, d := tour[j], tour[(j+1)%n]
				if a == c || a == d || b == c {
					continue
				}
				delta := dist(a, c) + dist(b, d) - dist(a, b) - dist(c, d)
				if delta < 0 {
					for x, y := i+1, j; x < y; x, y = x+1, y-1 {
						tour[x], tour[y] = tour[y], tour[x]
					}
					improved = true
				}
			}
		}
	}
	return tour.Length(in)
}

func TestLKProducesValidTour(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{10, 50, 200} {
		in := randomInstance(n, int64(n))
		nbr := neighbor.Build(in, 8)
		start := randomTourOf(n, rng)
		o := NewOptimizer(in, nbr, start, DefaultParams())
		o.OptimizeAll(nil)
		got := o.Tour.Tour()
		if err := got.Validate(n); err != nil {
			t.Fatalf("n=%d: invalid tour after LK: %v", n, err)
		}
		if got.Length(in) != o.Length() {
			t.Fatalf("n=%d: cached length %d != recomputed %d", n, o.Length(), got.Length(in))
		}
	}
}

func TestLKImprovesRandomTour(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(150, 42)
	nbr := neighbor.Build(in, 8)
	start := randomTourOf(150, rng)
	startLen := start.Length(in)
	o := NewOptimizer(in, nbr, start, DefaultParams())
	gain := o.OptimizeAll(nil)
	if o.Length() >= startLen {
		t.Fatalf("LK did not improve: start %d, end %d", startLen, o.Length())
	}
	if gain != startLen-o.Length() {
		t.Fatalf("reported gain %d != actual %d", gain, startLen-o.Length())
	}
	// LK should be far better than random: random uniform tours are ~O(n)
	// times worse than optimal; expect at least 3x improvement.
	if o.Length()*3 > startLen {
		t.Fatalf("LK result %d suspiciously weak vs random start %d", o.Length(), startLen)
	}
}

func TestLKNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(60)
		in := randomInstance(n, int64(trial+100))
		nbr := neighbor.Build(in, 6)
		start := randomTourOf(n, rng)
		before := start.Length(in)
		o := NewOptimizer(in, nbr, start, DefaultParams())
		o.OptimizeAll(nil)
		if o.Length() > before {
			t.Fatalf("trial %d (n=%d): LK worsened tour %d -> %d", trial, n, before, o.Length())
		}
	}
}

func TestLKBeatsOrMatchesTwoOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var lkTotal, twoOptTotal int64
	for trial := 0; trial < 6; trial++ {
		n := 60 + rng.Intn(60)
		in := randomInstance(n, int64(trial+7))
		nbr := neighbor.Build(in, 10)
		start := randomTourOf(n, rng)
		o := NewOptimizer(in, nbr, start, DefaultParams())
		o.OptimizeAll(nil)
		lkTotal += o.Length()
		twoOptTotal += twoOptLength(in, start)
	}
	// LK explores a superset of 2-opt moves per chain; aggregate quality
	// must not be worse than plain 2-opt by more than 2%.
	if float64(lkTotal) > float64(twoOptTotal)*1.02 {
		t.Fatalf("LK total %d much worse than 2-opt total %d", lkTotal, twoOptTotal)
	}
}

func TestLKFindsOptimumSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	found := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		n := 8 + rng.Intn(5) // 8..12
		in := randomInstance(n, int64(trial+31))
		_, optLen, err := exact.HeldKarp(in)
		if err != nil {
			t.Fatal(err)
		}
		nbr := neighbor.Build(in, n-1)
		o := NewOptimizer(in, nbr, randomTourOf(n, rng), DefaultParams())
		o.OptimizeAll(nil)
		if o.Length() < optLen {
			t.Fatalf("LK found %d below proven optimum %d — length bookkeeping is broken", o.Length(), optLen)
		}
		if o.Length() == optLen {
			found++
		}
	}
	// A single LK descent from a random tour finds the optimum on most
	// tiny instances; require a clear majority.
	if found < trials*2/3 {
		t.Fatalf("LK found optimum on only %d/%d tiny instances", found, trials)
	}
}

func TestLKQueueTargeted(t *testing.T) {
	// After full optimization, re-queuing all cities must yield zero gain
	// (local optimum is stable), and the queue must drain.
	in := randomInstance(120, 77)
	nbr := neighbor.Build(in, 8)
	rng := rand.New(rand.NewSource(21))
	o := NewOptimizer(in, nbr, randomTourOf(120, rng), DefaultParams())
	o.OptimizeAll(nil)
	settled := o.Length()
	if gain := o.OptimizeAll(nil); gain != 0 {
		t.Fatalf("second full pass found gain %d; expected stable local optimum", gain)
	}
	if o.Length() != settled {
		t.Fatalf("length drifted %d -> %d on no-op pass", settled, o.Length())
	}
}

func TestLKStopFunction(t *testing.T) {
	in := randomInstance(400, 99)
	nbr := neighbor.Build(in, 8)
	rng := rand.New(rand.NewSource(23))
	o := NewOptimizer(in, nbr, randomTourOf(400, rng), DefaultParams())
	calls := 0
	o.OptimizeAll(func() bool {
		calls++
		return true // abort at first poll
	})
	if calls == 0 {
		t.Fatal("stop function never polled")
	}
	// Tour must still be valid after an aborted pass.
	if err := o.Tour.Tour().Validate(400); err != nil {
		t.Fatalf("aborted optimize left invalid tour: %v", err)
	}
	if o.Tour.Tour().Length(in) != o.Length() {
		t.Fatal("aborted optimize left inconsistent cached length")
	}
}
