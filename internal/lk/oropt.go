package lk

import (
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

// OrOptPass improves a tour with Or-opt moves: segments of one to three
// consecutive cities are relocated between a candidate city and its tour
// successor, in either segment orientation. Or-opt moves are 3-exchanges
// outside the sequential 2-opt-chain neighbourhood, so this pass can
// improve tours that are Lin-Kernighan-stable; linkern-class solvers
// include them for exactly that reason. The pass repeats until no Or-opt
// move improves and returns the improved tour and the total gain.
func OrOptPass(in *tsp.Instance, nbr *neighbor.Lists, tour tsp.Tour) (tsp.Tour, int64) {
	n := len(tour)
	if n < 5 {
		return tour.Clone(), 0
	}
	dist := in.DistFunc()
	cur := tour.Clone()
	pos := make([]int32, n)
	for i, c := range cur {
		pos[c] = int32(i)
	}
	var total int64

	idx := func(i int32) int32 {
		i %= int32(n)
		if i < 0 {
			i += int32(n)
		}
		return i
	}

	improved := true
	for improved {
		improved = false
		for c0 := int32(0); c0 < int32(n); c0++ {
			for segLen := int32(1); segLen <= 3; segLen++ {
				p := pos[c0]
				// Segment s = cur[p .. p+segLen-1], with neighbours
				// a = predecessor, b = successor.
				a := cur[idx(p-1)]
				segEnd := cur[idx(p+segLen-1)]
				b := cur[idx(p+segLen)]
				if a == segEnd || b == c0 {
					continue // segment wraps the whole tour
				}
				removed := dist(a, c0) + dist(segEnd, b)
				closeUp := dist(a, b)

				// Insertion point: after candidate y (y-next(y) edge),
				// y outside the segment and not a.
				bestGain := int64(0)
				var bestY int32 = -1
				bestRev := false
				ys, yd := nbr.Cand(c0)
				for yi, y := range ys {
					py := pos[y]
					// y inside segment or adjacent-left?
					dp := idx(py - p)
					if dp < segLen || y == a {
						continue
					}
					z := cur[idx(py+1)]
					if z == c0 {
						continue
					}
					base := removed - closeUp + dist(y, z)
					// Forward: y -> c0 ... segEnd -> z. The (c0,y) candidate
					// edge reads its length from the precomputed table.
					if g := base - yd[yi] - dist(segEnd, z); g > bestGain {
						bestGain, bestY, bestRev = g, y, false
					}
					// Reversed: y -> segEnd ... c0 -> z
					if g := base - dist(y, segEnd) - dist(c0, z); g > bestGain {
						bestGain, bestY, bestRev = g, y, true
					}
				}
				if bestY < 0 {
					continue
				}
				cur = applyOrOpt(cur, pos, p, segLen, pos[bestY], bestRev)
				total += bestGain
				improved = true
			}
		}
	}
	return cur, total
}

// applyOrOpt rebuilds the tour with segment [p, p+segLen) moved to just
// after position py (positions in the old tour), optionally reversed, and
// refreshes pos. O(n) per accepted move — Or-opt is a polish pass, not the
// inner loop.
func applyOrOpt(cur tsp.Tour, pos []int32, p, segLen, py int32, rev bool) tsp.Tour {
	n := int32(len(cur))
	idx := func(i int32) int32 {
		i %= n
		if i < 0 {
			i += n
		}
		return i
	}
	seg := make([]int32, segLen)
	inSeg := make(map[int32]bool, segLen)
	for i := int32(0); i < segLen; i++ {
		seg[i] = cur[idx(p+i)]
		inSeg[seg[i]] = true
	}
	if rev {
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
	}
	anchor := cur[py]
	out := make(tsp.Tour, 0, n)
	for i := int32(0); i < n; i++ {
		c := cur[i]
		if inSeg[c] {
			continue
		}
		out = append(out, c)
		if c == anchor {
			out = append(out, seg...)
		}
	}
	copy(cur, out)
	for i, c := range cur {
		pos[c] = int32(i)
	}
	return cur
}
