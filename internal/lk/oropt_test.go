package lk

import (
	"math/rand"
	"testing"

	"distclk/internal/geom"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func TestOrOptNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(150)
		in := tsp.Generate(tsp.FamilyUniform, n, int64(trial))
		nbr := neighbor.Build(in, 8)
		tour := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		before := tour.Length(in)
		out, gain := OrOptPass(in, nbr, tour)
		if err := out.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		after := out.Length(in)
		if after > before {
			t.Fatalf("trial %d: Or-opt worsened %d -> %d", trial, before, after)
		}
		if before-after != gain {
			t.Fatalf("trial %d: reported gain %d, actual %d", trial, gain, before-after)
		}
	}
}

func TestOrOptImprovesCraftedRelocation(t *testing.T) {
	// Cities on a line with one city visited badly out of order: the tour
	// 0-1-2-6-3-4-5 (positions on a line at x=0..6) improves by relocating
	// city 6 between 5 and 0's wrap — an Or-opt move of segment length 1.
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 300, Y: 0},
		{X: 400, Y: 0}, {X: 500, Y: 0}, {X: 600, Y: 0},
	}
	in := tsp.New("line", geom.Euc2D, pts)
	nbr := neighbor.Build(in, 6)
	bad := tsp.Tour{0, 1, 2, 6, 3, 4, 5}
	out, gain := OrOptPass(in, nbr, bad)
	if gain <= 0 {
		t.Fatalf("no gain on crafted instance; tour %v", out)
	}
	want := tsp.Tour{0, 1, 2, 3, 4, 5, 6}
	if out.Length(in) != want.Length(in) {
		t.Fatalf("Or-opt reached %d, optimum is %d (%v)", out.Length(in), want.Length(in), out)
	}
}

func TestOrOptAfterLKCanStillImprove(t *testing.T) {
	// Statistically, Or-opt should find at least one extra improvement on
	// some LK-stable tours (it searches a move class LK chains miss).
	rng := rand.New(rand.NewSource(7))
	improvedAny := false
	for trial := 0; trial < 10; trial++ {
		n := 200
		in := tsp.Generate(tsp.FamilyClustered, n, int64(trial+50))
		nbr := neighbor.Build(in, 6)
		tour := tsp.IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		o := NewOptimizer(in, nbr, tour, Params{MaxDepth: 6, Breadth: []int{3, 2}})
		o.OptimizeAll(nil)
		_, gain := OrOptPass(in, nbr, o.Tour.Tour())
		if gain > 0 {
			improvedAny = true
			break
		}
	}
	if !improvedAny {
		t.Error("Or-opt never improved any shallow-LK-stable tour across 10 trials")
	}
}

func TestOrOptTinyTours(t *testing.T) {
	in := tsp.Generate(tsp.FamilyUniform, 4, 1)
	nbr := neighbor.Build(in, 3)
	tour := tsp.IdentityTour(4)
	out, gain := OrOptPass(in, nbr, tour)
	if gain != 0 {
		t.Fatalf("gain %d on n=4 (pass should skip n<5)", gain)
	}
	if err := out.Validate(4); err != nil {
		t.Fatal(err)
	}
}
