#!/bin/sh
# Service smoke test: build cmd/solved, boot it on an ephemeral port,
# POST a small instance, assert a 200 with a done/valid tour, assert the
# identical repeat POST is a byte-identical cache hit, then drain via
# SIGINT and require a clean exit 0. CI runs this after the unit suites;
# `make service-smoke` runs it locally.
set -eu

PORT="${SOLVED_PORT:-18943}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/solved" ./cmd/solved
"$TMP/solved" -listen "$ADDR" -workers 1 >"$TMP/solved.log" 2>&1 &
PID=$!

# Wait for the listener.
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "service-smoke: solved never came up"; cat "$TMP/solved.log"; exit 1
    fi
    sleep 0.2
done

BODY='{"coords":[[0,0],[10,0],[20,0],[20,10],[20,20],[10,20],[0,20],[0,10]],"params":{"max_kicks":5,"seed":7}}'

code=$(curl -s -o "$TMP/r1" -D "$TMP/h1" -w '%{http_code}' -X POST -d "$BODY" "http://$ADDR/v1/solve")
[ "$code" = 200 ] || { echo "service-smoke: first POST got $code"; cat "$TMP/r1"; exit 1; }
grep -q '"status":"done"' "$TMP/r1" || { echo "service-smoke: solve not done"; cat "$TMP/r1"; exit 1; }
# The 8-city ring above has exactly one optimal tour (length 80); the
# solver must find it, which also proves the tour is a real permutation.
grep -q '"length":80' "$TMP/r1" || { echo "service-smoke: expected length 80"; cat "$TMP/r1"; exit 1; }
grep -qi '^x-cache: miss' "$TMP/h1" || { echo "service-smoke: first POST should be a cache miss"; cat "$TMP/h1"; exit 1; }

code=$(curl -s -o "$TMP/r2" -D "$TMP/h2" -w '%{http_code}' -X POST -d "$BODY" "http://$ADDR/v1/solve")
[ "$code" = 200 ] || { echo "service-smoke: repeat POST got $code"; exit 1; }
grep -qi '^x-cache: hit' "$TMP/h2" || { echo "service-smoke: repeat POST should be a cache hit"; cat "$TMP/h2"; exit 1; }
cmp -s "$TMP/r1" "$TMP/r2" || { echo "service-smoke: cached result not byte-identical"; exit 1; }

# Graceful shutdown: SIGINT drains and exits 0.
kill -INT "$PID"
EXIT=0
wait "$PID" || EXIT=$?
[ "$EXIT" = 0 ] || { echo "service-smoke: solved exited $EXIT after SIGINT"; cat "$TMP/solved.log"; exit 1; }

echo "service-smoke: OK (solve 200, cache hit byte-identical, clean drain)"
