GO ?= go

# bench: which benchmarks feed the perf snapshot, and where it lands.
# Covers the LK hot-path trio (raw Flip cost, the zero-alloc
# Optimize-after-kick acceptance benchmark, full CLK kick throughput on the
# synthetic E1k/C3k testbed instances), the in-node parallel group at
# 1/2/4/8 workers, and the candidate-strategy x gain-rule cross-product
# (kNN/quadrant/alpha/Delaunay x strict/relaxed on three families).
BENCH_PATTERN ?= ^(BenchmarkFlip|BenchmarkOptimizeAfterKick|BenchmarkCLKKicksPerSec|BenchmarkParallelCLK|BenchmarkCandidateStrategies)$$
BENCH_OUT     ?= BENCH_PR7.json
BENCH_TIME    ?= 1s

.PHONY: check build vet fmt lint distlint ignore-audit suppressions test race bench repro repro-smoke doc-links loadtest service-smoke

# loadtest: worker counts the solve-service load test sweeps, and where
# its latency/throughput report lands (see results/README.md).
LOAD_WORKERS ?= 1,2
LOAD_OUT     ?= results/BENCH_PR8.json

## check: everything CI runs — lint, full tests, race tests
check: lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt: fail if any file is not gofmt-clean
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## distlint: the repo's own invariant analyzers (determinism, hot-path
## allocations, context hygiene, no library panics, goroutine lifetimes,
## lock discipline, atomic hygiene, event/counter sync) gated against the
## committed suppressions baseline — see DESIGN.md §8
distlint:
	$(GO) run ./cmd/distlint -baseline lint/suppressions.txt ./...

## ignore-audit: report //lint:ignore comments whose rule no longer fires
## (use `go run ./cmd/distlint -fix-ignore-audit ./...` to delete them)
ignore-audit:
	$(GO) run ./cmd/distlint -ignore-audit ./...

## suppressions: regenerate the committed suppressions baseline
suppressions:
	$(GO) run ./cmd/distlint -write-baseline lint/suppressions.txt ./...

## lint: the one static gate CI runs — invariant analyzers + vet + gofmt
lint: distlint vet fmt

test:
	$(GO) test ./...

## race: the full suite under the race detector (latency assertions widen
## via the raceSlack build-tag constant)
race:
	$(GO) test -race ./...

## bench: run the hot-path benchmarks and emit the $(BENCH_OUT) snapshot
## (ns/op, allocs/op, kicks/sec, seeded final tour length) for the perf
## trajectory future PRs regress against
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) -count 1 -timeout 30m . > bench.out 2>&1 || { cat bench.out; rm -f bench.out; exit 1; }
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < bench.out
	@rm -f bench.out

## loadtest: drive the solve service with concurrent clients and emit the
## $(LOAD_OUT) report (p50/p95/p99 latency + throughput per worker count)
loadtest:
	$(GO) run ./cmd/solved -loadtest -lt-workers $(LOAD_WORKERS) -out $(LOAD_OUT)

## service-smoke: build cmd/solved, boot it, and exercise the e2e contract
## (200 + optimal tour, byte-identical cache hit, clean SIGINT drain)
service-smoke:
	sh scripts/service_smoke.sh

## repro: regenerate the deterministic smoke tier — the marked sections of
## EXPERIMENTS.md, results/smoke/*.csv, and REPRODUCTION.md
repro:
	$(GO) run ./cmd/repro

## repro-smoke: CI drift gate — regenerate in memory and fail on any byte
## difference against the committed artifacts
repro-smoke:
	$(GO) run ./cmd/repro -check

## doc-links: fail on dead intra-repo links in the markdown docs
doc-links:
	$(GO) run ./cmd/repro -links
