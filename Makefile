GO ?= go

.PHONY: check build vet fmt test race

## check: everything CI runs — vet, formatting, full tests, race tests
check: vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt: fail if any file is not gofmt-clean
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

## race: the concurrency-heavy packages under the race detector
race:
	$(GO) test -race ./internal/dist/... ./internal/core/...
