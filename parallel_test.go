package distclk

// Tests of the parallel-solve facade: the options matrix, the multi-error
// build contract, one-worker determinism, worker cancellation, and
// per-worker statistics.

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestBuildCollectsAllOptionErrors(t *testing.T) {
	in, _ := Generate("uniform", 30, 8)
	_, err := New(in,
		WithBudget(-time.Second),
		WithMaxKicks(-1),
		WithTarget(-5),
		WithWorkers(-2),
	)
	if err == nil {
		t.Fatal("four invalid options accepted")
	}
	for _, want := range []string{"budget", "max kicks", "target", "worker count"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("multi-error misses %q: %v", want, err)
		}
	}
}

func TestOptionMatrixValidation(t *testing.T) {
	in, _ := Generate("uniform", 30, 8)
	cases := []struct {
		name string
		opts []Option
		want string // substring of the expected error, "" = must succeed
	}{
		{"topology without nodes", []Option{WithTopology("ring")}, "WithTopology requires WithNodes"},
		{"ea parameters without nodes", []Option{WithEAParameters(4, 16)}, "WithEAParameters requires WithNodes"},
		{"kicks per call without nodes", []Option{WithKicksPerCall(10)}, "WithKicksPerCall requires WithNodes"},
		{"max kicks with nodes", []Option{WithNodes(2), WithMaxKicks(10)}, "WithMaxKicks bounds plain CLK"},
		{"merge cadence with nodes", []Option{WithNodes(2), WithMergeEvery(100)}, "WithMergeEvery applies to parallel plain-CLK"},
		{"auto workers with nodes", []Option{WithNodes(2), WithWorkers(0)}, "auto-sizing conflicts with WithNodes"},
		{"merge cadence at one worker", []Option{WithWorkers(1), WithMergeEvery(100)}, "requires WithWorkers(n > 1)"},
		{"merge cadence without workers", []Option{WithMergeEvery(100)}, "requires WithWorkers(n > 1)"},
		{"negative merge cadence", []Option{WithWorkers(2), WithMergeEvery(-1)}, "negative merge cadence"},
		{"explicit workers with nodes", []Option{WithNodes(2), WithWorkers(2)}, ""},
		{"auto workers plain", []Option{WithWorkers(0)}, ""},
		{"merge cadence with workers", []Option{WithWorkers(4), WithMergeEvery(100)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(in, tc.opts...)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid combination accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParallelCLKDeterminismAtOneWorker pins the compatibility contract:
// WithWorkers(1) — the default — must return the byte-identical tour the
// facade returned before the parallel path existed, for a given seed.
func TestParallelCLKDeterminismAtOneWorker(t *testing.T) {
	in, _ := Generate("uniform", 300, 11)
	solve := func(opts ...Option) Result {
		t.Helper()
		s, err := New(in, append([]Option{WithMaxKicks(150), WithSeed(17)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := solve()
	got := solve(WithWorkers(1))
	if got.Length != want.Length {
		t.Fatalf("WithWorkers(1) length %d != default length %d", got.Length, want.Length)
	}
	for i := range want.Tour {
		if got.Tour[i] != want.Tour[i] {
			t.Fatalf("tours diverge at position %d", i)
		}
	}
}

// TestParallelCLKNoLeaks checks the cancellation contract for a parallel
// solve: all workers and the merge goroutine stop promptly and nothing
// leaks.
func TestParallelCLKNoLeaks(t *testing.T) {
	in, _ := Generate("uniform", 1500, 11)
	s, err := New(in,
		WithWorkers(4),
		WithMergeEvery(500),
		WithBudget(30*time.Second),
		WithProgressInterval(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	progress := s.Progress()
	go func() {
		for range progress {
		}
	}()
	cancelMidSolve(t, s, 1500, 300*time.Millisecond)
}

// TestParallelSolveFacade checks the redesigned surface end to end:
// per-worker PerNode statistics, the resolved worker count in snapshots,
// and the group-total kick budget.
func TestParallelSolveFacade(t *testing.T) {
	in, _ := Generate("uniform", 300, 9)
	s, err := New(in,
		WithWorkers(2),
		WithMaxKicks(400),
		WithBudget(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tour.Validate(300); err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries, want one per worker (2)", len(res.PerNode))
	}
	var kicks int64
	for i, ns := range res.PerNode {
		if ns.Node != i {
			t.Errorf("PerNode[%d].Node = %d, want %d", i, ns.Node, i)
		}
		kicks += ns.Kicks
	}
	if kicks < 400 {
		t.Errorf("workers kicked %d times in total, want >= the 400 group budget", kicks)
	}
}

// TestParallelSnapshotReportsWorkers runs a time-bounded parallel solve so
// the progress pump ticks many times, and checks the new Snapshot fields.
func TestParallelSnapshotReportsWorkers(t *testing.T) {
	in, _ := Generate("uniform", 500, 9)
	// raceSlack keeps the kick phase alive under -race, where group
	// construction alone can eat 500ms.
	s, err := New(in,
		WithWorkers(2),
		WithBudget(500*time.Millisecond*raceSlack),
		WithProgressInterval(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	progress := s.Progress()
	var lastSnap Snapshot
	snaps := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for snap := range progress {
			lastSnap = snap
			snaps++
		}
	}()
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	if snaps == 0 {
		t.Fatal("no progress snapshots during a 500ms parallel solve")
	}
	if lastSnap.Workers != 2 {
		t.Errorf("Snapshot.Workers = %d, want 2", lastSnap.Workers)
	}
	if len(lastSnap.WorkerKicks) != 2 {
		t.Errorf("Snapshot.WorkerKicks has %d entries, want 2", len(lastSnap.WorkerKicks))
	}
	var kicks int64
	for _, k := range lastSnap.WorkerKicks {
		kicks += k
	}
	if kicks == 0 {
		t.Error("WorkerKicks all zero in a 500ms parallel solve")
	}
}
