//go:build !race

package distclk

// raceSlack is 1 without the race detector; see race_on_test.go.
const raceSlack = 1
