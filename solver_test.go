package distclk

// Tests of the Solver facade: construction, progress reporting, and the
// cancellation contract (best-so-far within 500ms, valid tour, no leaked
// goroutines).

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func TestNewRejectsNilInstance(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil instance accepted")
	}
}

func TestSolveOncePerSolver(t *testing.T) {
	in, _ := Generate("uniform", 30, 8)
	s, err := New(in, WithMaxKicks(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err == nil {
		t.Fatal("second Solve on the same Solver accepted")
	}
}

func TestSolverReportsProgressAndStats(t *testing.T) {
	in, _ := Generate("uniform", 500, 9)
	s, err := New(in, WithBudget(700*time.Millisecond), WithProgressInterval(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	progress := s.Progress()
	snaps := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for snap := range progress {
			snaps++
			if snap.Elapsed <= 0 {
				t.Errorf("snapshot with non-positive elapsed %v", snap.Elapsed)
			}
		}
	}()
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if snaps == 0 {
		t.Error("no progress snapshots during a 700ms solve")
	}
	if res.Elapsed <= 0 {
		t.Error("Result.Elapsed not measured")
	}
	if len(res.PerNode) != 1 {
		t.Fatalf("PerNode has %d entries, want 1", len(res.PerNode))
	}
	if res.PerNode[0].Kicks == 0 {
		t.Error("no kicks counted in a 700ms solve")
	}
	if res.PerNode[0].BestLength != res.Length {
		t.Errorf("PerNode best %d != result length %d", res.PerNode[0].BestLength, res.Length)
	}
}

func TestDistributedSolverPerNodeStats(t *testing.T) {
	in, _ := Generate("uniform", 200, 10)
	s, err := New(in,
		WithNodes(4),
		WithBudget(500*time.Millisecond),
		WithEAParameters(4, 16),
		WithKicksPerCall(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 4 || len(res.PerNode) != 4 {
		t.Fatalf("nodes=%d, per-node entries=%d, want 4/4", res.Nodes, len(res.PerNode))
	}
	var sent int64
	for _, ns := range res.PerNode {
		sent += ns.BroadcastsSent
	}
	if sent == 0 {
		t.Error("no broadcasts counted in a cooperative run")
	}
	if err := res.Tour.Validate(200); err != nil {
		t.Fatal(err)
	}
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus slack for runtime helpers), failing the test otherwise.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// cancelMidSolve runs Solve with a context cancelled after delay and
// checks the cancellation contract.
func cancelMidSolve(t *testing.T, s *Solver, n int, delay time.Duration) Result {
	t.Helper()
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := make(chan time.Time, 1)
	go func() {
		time.Sleep(delay)
		cancelled <- time.Now()
		cancel()
	}()
	res, err := s.Solve(ctx)
	returned := time.Now()
	if err != nil {
		t.Fatal(err)
	}
	if lag, limit := returned.Sub(<-cancelled), 500*time.Millisecond*raceSlack; lag > limit {
		t.Fatalf("Solve returned %v after cancellation, want < %v", lag, limit)
	}
	if err := res.Tour.Validate(n); err != nil {
		t.Fatalf("cancelled solve returned invalid tour: %v", err)
	}
	if res.Length <= 0 {
		t.Fatal("cancelled solve lost the best-so-far length")
	}
	waitGoroutines(t, baseline)
	return res
}

func TestCancelMidSolveCLK(t *testing.T) {
	in, _ := Generate("uniform", 1500, 11)
	s, err := New(in, WithBudget(30*time.Second), WithProgressInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	progress := s.Progress()
	go func() {
		for range progress {
		}
	}()
	cancelMidSolve(t, s, 1500, 300*time.Millisecond)
}

func TestCancelMidSolveCluster(t *testing.T) {
	in, _ := Generate("uniform", 600, 12)
	s, err := New(in,
		WithNodes(8),
		WithBudget(30*time.Second),
		WithEAParameters(4, 16),
		WithKicksPerCall(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	cancelMidSolve(t, s, 600, 400*time.Millisecond)
}
