// Command benchjson converts `go test -bench` output into a structured
// JSON perf snapshot (the BENCH_*.json files tracked across PRs). It reads
// benchmark output on stdin, echoes it to stdout unchanged (so it can sit
// at the end of a pipeline without hiding results), and writes the parsed
// snapshot to the -out path.
//
// Snapshot schema (BENCH_*.json):
//
//	{
//	  "schema_version": 2,
//	  "generated_at":   "RFC3339 timestamp",
//	  "go_version":     "go1.24.0",
//	  "goos":           "linux",   // from the benchmark preamble
//	  "goarch":         "amd64",
//	  "cpu":            "...",     // as printed by the testing package
//	  "gomaxprocs":     1,         // of the recording host (schema v2)
//	  "num_cpu":        1,         // so snapshots are comparable across machines
//	  "benchmarks": [
//	    {
//	      "name":          "BenchmarkOptimizeAfterKick",
//	      "iterations":    1234,
//	      "ns_per_op":     1054455,
//	      "bytes_per_op":  0,        // present with -benchmem
//	      "allocs_per_op": 0,        // present with -benchmem
//	      "metrics":       {"kicks/sec": 948.2, "tourlen": 23456789}
//	    }, ...
//	  ]
//	}
//
// ns_per_op/bytes_per_op/allocs_per_op are pulled out of the unit soup for
// convenience; any custom b.ReportMetric unit (kicks/sec, tourlen, gap%)
// lands in "metrics" verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type snapshot struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos,omitempty"`
	GOARCH        string      `json:"goarch,omitempty"`
	CPU           string      `json:"cpu,omitempty"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	NumCPU        int         `json:"num_cpu"`
	Benchmarks    []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "path of the JSON snapshot to write")
	flag.Parse()

	snap := snapshot{
		SchemaVersion: 2,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		// Worker-scaling columns only compare across snapshots recorded on
		// machines with the same parallel headroom, so pin it in the file.
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	failed := false

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("benchjson: reading stdin: %v", err)
	}
	if failed {
		fatal("benchjson: benchmark run FAILed; not writing %s", *out)
	}
	if len(snap.Benchmarks) == 0 {
		fatal("benchjson: no benchmark result lines found on stdin; not writing %s", *out)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal("benchjson: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(snap.Benchmarks), *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFlip-8  1332506  2357 ns/op  0 B/op  0 allocs/op  948 kicks/sec
//
// The trailing -8 (GOMAXPROCS) is kept out of the name so snapshots from
// machines with different core counts compare by name.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
