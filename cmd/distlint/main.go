// Command distlint runs the repository's invariant analyzers
// (internal/lint) over the given package patterns and exits 1 on any
// finding. It is the static half of the determinism / zero-alloc /
// context-hygiene / concurrency-safety contracts; `make lint` and the CI
// lint job run it as
//
//	go run ./cmd/distlint -baseline lint/suppressions.txt ./...
//
// Output is one `file:line:col: rule: message` line per finding, sorted
// and stable. -json emits the findings as a JSON array, -sarif as a
// SARIF 2.1.0 log for GitHub code scanning. Suppress an intentional
// finding at its line (or the line above) with
// `//lint:ignore <rule> <reason>` — the reason is mandatory, and every
// suppression must be recorded in the committed baseline
// (lint/suppressions.txt): -baseline diffs the tree against it and fails
// on drift in either direction, -write-baseline regenerates it.
// -ignore-audit reports suppressions whose rule no longer fires at their
// line; -fix-ignore-audit deletes those dead suppressions in place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distclk/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for code scanning")
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	baseline := flag.String("baseline", "", "suppressions baseline `file` to gate against; mismatches fail the run")
	writeBaseline := flag.String("write-baseline", "", "regenerate the suppressions baseline into `file` and exit")
	ignoreAudit := flag.Bool("ignore-audit", false, "report //lint:ignore comments whose rule no longer fires; any dead ignore fails the run")
	fixIgnoreAudit := flag.Bool("fix-ignore-audit", false, "delete dead //lint:ignore rules from the source in place")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distlint [-json|-sarif] [-baseline file] [-write-baseline file] [-ignore-audit|-fix-ignore-audit] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fatal(err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "distlint: warning: %s: %v\n", p.Path, te)
		}
	}
	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		text := lint.FormatBaseline(lint.Ignores(pkgs), root)
		if err := os.WriteFile(*writeBaseline, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "distlint: wrote %s\n", *writeBaseline)
		return
	}

	if *ignoreAudit || *fixIgnoreAudit {
		dead := lint.AuditIgnores(pkgs, analyzers)
		for _, d := range dead {
			fmt.Println(d)
		}
		if *fixIgnoreAudit {
			changed, err := lint.FixIgnores(dead)
			if err != nil {
				fatal(err)
			}
			for _, f := range changed {
				fmt.Fprintf(os.Stderr, "distlint: rewrote %s\n", f)
			}
			return
		}
		if len(dead) > 0 {
			fmt.Fprintf(os.Stderr, "distlint: %d dead ignore(s); run -fix-ignore-audit to delete them\n", len(dead))
			os.Exit(1)
		}
		return
	}

	diags := lint.Check(pkgs, analyzers)
	failed := len(diags) > 0

	switch {
	case *sarifOut:
		out, err := lint.SARIF(diags, analyzers, root)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(out, '\n'))
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "distlint: %d finding(s)\n", len(diags))
		}
	}

	if *baseline != "" {
		recorded, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		current := lint.FormatBaseline(lint.Ignores(pkgs), root)
		if drift := lint.DiffBaseline(current, string(recorded)); len(drift) > 0 {
			for _, line := range drift {
				fmt.Fprintf(os.Stderr, "distlint: baseline: %s\n", line)
			}
			fmt.Fprintf(os.Stderr, "distlint: suppressions drifted from %s; regenerate with -write-baseline and commit the diff\n", *baseline)
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
	os.Exit(2)
}
