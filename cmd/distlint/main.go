// Command distlint runs the repository's invariant analyzers
// (internal/lint) over the given package patterns and exits 1 on any
// finding. It is the static half of the determinism / zero-alloc / context
// hygiene contracts; `make lint` and the CI lint job run it as
//
//	go run ./cmd/distlint ./...
//
// Output is one `file:line:col: rule: message` line per finding, sorted
// and stable. -json emits the same findings as a JSON array for tooling.
// Suppress an intentional finding at its line (or the line above) with
// `//lint:ignore <rule> <reason>` — the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distclk/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distlint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "distlint: warning: %s: %v\n", p.Path, te)
		}
	}

	diags := lint.Check(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "distlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
