// Command tspgen generates synthetic TSP instances in TSPLIB format.
//
// Usage:
//
//	tspgen -family uniform -n 1000 -seed 1 -o E1k.tsp
//	tspgen -standin fl3795 -o fl3795-standin.tsp
//
// Families mirror the paper testbed's structure: uniform (DIMACS E*),
// clustered (DIMACS C*), drill (fl*/pla*), grid (pr*/pcb*/fnl*), national
// (fi*/sw*/usa*).
package main

import (
	"flag"
	"fmt"
	"os"

	"distclk/internal/tsp"
)

func main() {
	var (
		family  = flag.String("family", "uniform", "instance family: uniform|clustered|drill|grid|national")
		n       = flag.Int("n", 1000, "number of cities")
		seed    = flag.Int64("seed", 1, "random seed")
		standin = flag.String("standin", "", "generate the stand-in for a paper instance name (e.g. fl3795); overrides -family/-n")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *tsp.Instance
	var err error
	if *standin != "" {
		in, err = tsp.StandIn(*standin, *seed)
	} else {
		var f tsp.Family
		f, err = tsp.ParseFamily(*family)
		if err == nil {
			in = tsp.Generate(f, *n, *seed)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tspgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tsp.WriteTSPLIB(w, in); err != nil {
		fmt.Fprintln(os.Stderr, "tspgen:", err)
		os.Exit(1)
	}
}
