// Command tspstat inspects instances and tours: it reports instance
// statistics (the exact features the candidate-strategy auto-selector
// reads, plus its predicted choice), computes Held-Karp lower bounds, and
// validates/evaluates tour files.
//
// Usage:
//
//	tspstat -tsp inst.tsp                  # instance summary + auto-selector preview
//	tspstat -tsp inst.tsp -hk -hkiters 100 # with Held-Karp bound
//	tspstat -tsp inst.tsp -tour out.tour   # tour length + gap
package main

import (
	"flag"
	"fmt"
	"os"

	"distclk/internal/construct"
	"distclk/internal/heldkarp"
	"distclk/internal/neighbor"
	"distclk/internal/tsp"
)

func main() {
	var (
		tspPath  = flag.String("tsp", "", "TSPLIB instance file")
		standin  = flag.String("standin", "", "use the synthetic stand-in for a paper instance name")
		seed     = flag.Int64("seed", 1, "seed for -standin")
		tourPath = flag.String("tour", "", "TSPLIB tour file to evaluate")
		hk       = flag.Bool("hk", false, "compute the Held-Karp lower bound")
		hkIters  = flag.Int("hkiters", 80, "Held-Karp ascent iterations")
	)
	flag.Parse()

	var in *tsp.Instance
	var err error
	switch {
	case *tspPath != "":
		in, err = tsp.LoadTSPLIB(*tspPath)
	case *standin != "":
		in, err = tsp.StandIn(*standin, *seed)
	default:
		err = fmt.Errorf("one of -tsp, -standin is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspstat:", err)
		os.Exit(1)
	}

	fmt.Printf("name: %s\nn: %d\nmetric: %v\n", in.Name, in.N(), in.Metric)
	if in.Comment != "" {
		fmt.Printf("comment: %s\n", in.Comment)
	}

	// The probe below IS the auto-selector's input — one shared
	// implementation (tsp.Describe feeding neighbor.Auto), so this preview
	// always matches what WithCandidates("auto") will do.
	st := tsp.Describe(in)
	fmt.Printf("explicit: %v\n", st.Explicit)
	if !st.Explicit {
		fmt.Printf("cluster cv: %.2f (occupancy grid stddev/mean; ~1 uniform, >>1 clustered)\n", st.ClusterCV)
		fmt.Printf("axis degeneracy: %.2f (coordinate sharing; ~0 continuous, ~1 exact lattice)\n", st.AxisDegeneracy)
	}
	choice := neighbor.Auto(st)
	fmt.Printf("auto candidates: %s (relax depth %d)\n", choice.Strategy, choice.RelaxDepth)
	fmt.Printf("auto reason: %s\n", choice.Reason)

	// Quick construction lengths as reference points.
	nbr := neighbor.Build(in, 8)
	for _, m := range []construct.Method{construct.Greedy, construct.SpaceFilling} {
		t := construct.Build(m, in, nbr, nil)
		fmt.Printf("%s tour: %d\n", m, t.Length(in))
	}

	var bound int64
	if *hk {
		res := heldkarp.LowerBound(in, heldkarp.Options{Iterations: *hkIters})
		bound = res.Bound
		fmt.Printf("held-karp bound: %d (%d iterations)\n", res.Bound, res.Iterations)
	}

	if *tourPath != "" {
		f, err := os.Open(*tourPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tspstat:", err)
			os.Exit(1)
		}
		tour, err := tsp.ReadTourFile(f, in.N())
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tspstat:", err)
			os.Exit(1)
		}
		l := tour.Length(in)
		fmt.Printf("tour length: %d\n", l)
		if bound > 0 {
			fmt.Printf("gap over HK bound: %.3f%%\n", float64(l-bound)/float64(bound)*100)
		}
	}
}
