// Command clk is a linkern-like standalone Chained Lin-Kernighan solver.
//
// Usage:
//
//	clk -tsp instance.tsp -time 10s -kick random-walk -tour out.tour
//	clk -standin pr2392 -kicks 5000
//
// It prints improvement lines (kick count, tour length, elapsed) and the
// final tour length; with -tour it writes a TSPLIB .tour file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distclk/internal/cli"
	"distclk/internal/clk"
	"distclk/internal/obs"
	"distclk/internal/tsp"
)

func main() {
	var (
		tspPath = flag.String("tsp", "", "TSPLIB instance file")
		standin = flag.String("standin", "", "solve the synthetic stand-in for a paper instance name")
		family  = flag.String("family", "", "generate and solve: family name (with -n)")
		n       = flag.Int("n", 1000, "size for -family")
		seed    = flag.Int64("seed", 1, "random seed")
		kick    = flag.String("kick", "random-walk", "kicking strategy: random|geometric|close|random-walk")
		budget  = flag.Duration("time", 10*time.Second, "time limit")
		kicks   = flag.Int64("kicks", 0, "kick limit (0 = unlimited)")
		target  = flag.Int64("target", 0, "stop at this tour length (0 = none)")
		tourOut = flag.String("tour", "", "write the best tour to this file")
		quiet   = flag.Bool("q", false, "suppress improvement lines")
	)
	flag.Parse()

	in, err := cli.LoadInstance(*tspPath, *standin, *family, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clk:", err)
		os.Exit(1)
	}

	strategy, err := clk.ParseKick(*kick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clk:", err)
		os.Exit(1)
	}
	params := clk.DefaultParams()
	params.Kick = strategy

	start := time.Now()
	solver := clk.New(in, params, *seed)
	fmt.Printf("%s: n=%d, initial tour %d (%.2fs construct+LK)\n",
		in.Name, in.N(), solver.BestLength(), time.Since(start).Seconds())
	if !*quiet {
		solver.Rec = obs.NewRecorder(0, obs.SinkFunc(func(e obs.Event) {
			if e.Kind == obs.KindLKImprove {
				fmt.Printf("  kick %8d  len %12d  %8.2fs\n",
					solver.Kicks(), e.Value, time.Since(start).Seconds())
			}
		}))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *budget)
	defer cancel()
	res := solver.Run(ctx, clk.Budget{
		MaxKicks: *kicks,
		Target:   *target,
	})
	fmt.Printf("final: len=%d kicks=%d improves=%d elapsed=%.2fs\n",
		res.Length, res.Kicks, res.Improves, time.Since(start).Seconds())

	if *tourOut != "" {
		f, err := os.Create(*tourOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clk:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tsp.WriteTourFile(f, in.Name, res.Tour); err != nil {
			fmt.Fprintln(os.Stderr, "clk:", err)
			os.Exit(1)
		}
	}
}
