// Command experiments regenerates the paper's tables and figures on the
// synthetic testbed.
//
// Usage:
//
//	experiments                      # all experiments, quick scale
//	experiments -exp table3          # one experiment
//	experiments -mode paper -runs 10 # paper-shaped scale (hours)
//	experiments -csv results/        # also write figure traces as CSV
//	experiments -simnet              # virtual-cluster speed-up table (JSONL)
//	experiments -parallel            # in-node worker scaling (JSONL)
//
// Experiments: table1 table2 table3 table4 table5 fig2 fig3 messages
// variator. See DESIGN.md §3 for the experiment-to-paper mapping and
// EXPERIMENTS.md for recorded results.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distclk/internal/bench"
	"distclk/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all'")
		mode   = flag.String("mode", "quick", "quick|paper")
		runs   = flag.Int("runs", 0, "override runs per configuration")
		budget = flag.Duration("time", 0, "override plain-CLK budget (DistCLK gets 1/10 per node)")
		nodes  = flag.Int("nodes", 0, "override cluster size")
		scale  = flag.Int("scale", 0, "override instance size divisor (1 = paper sizes)")
		seed   = flag.Int64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "write figure traces as CSV into this directory")
		maxIns = flag.Int("instances", 0, "truncate each experiment's instance list (0 = all)")
		trace  = flag.String("trace", "", "write every solver event as JSONL to this file")
		simnet = flag.Bool("simnet", false, "run the simulated-cluster speed-up experiment (JSONL to stdout) and exit")
		par    = flag.Bool("parallel", false, "run the in-node worker-scaling experiment (JSONL to stdout) and exit")
		cand   = flag.String("candidates", "", "candidate-set strategy: auto|knn|quadrant|alpha|delaunay (empty = engine default knn)")
		relax  = flag.Int("relax", 0, "relaxed-gain depth for the LK search (0 = classic rule)")
	)
	flag.Parse()

	var opt bench.Options
	switch *mode {
	case "quick":
		opt = bench.QuickOptions()
	case "paper":
		opt = bench.PaperOptions()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *budget > 0 {
		opt.CLKBudget = *budget
	}
	if *nodes > 0 {
		opt.Nodes = *nodes
	}
	if *scale > 0 {
		opt.SizeScale = *scale
	}
	if *maxIns > 0 {
		opt.MaxInstances = *maxIns
	}
	opt.Seed = *seed
	opt.OutDir = *csvDir
	opt.Candidates = *cand
	opt.RelaxDepth = *relax

	h := bench.New(opt)
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		sink := obs.NewJSONLSink(w)
		h.Trace = sink
		defer func() {
			w.Flush()
			f.Close()
			if err := sink.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: trace write: %v\n", err)
			}
		}()
	}
	if *simnet {
		if err := h.Simnet(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: simnet: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *par {
		if err := h.Parallel(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: parallel: %v\n", err)
			os.Exit(1)
		}
		return
	}
	all := []struct {
		id  string
		run func(*bench.Bench) error
	}{
		{"table1", func(b *bench.Bench) error { return b.Table1(os.Stdout) }},
		{"table2", func(b *bench.Bench) error { return b.Table2(os.Stdout) }},
		{"table3", func(b *bench.Bench) error { return b.Table3(os.Stdout) }},
		{"table4", func(b *bench.Bench) error { return b.Table4(os.Stdout) }},
		{"table5", func(b *bench.Bench) error { return b.Table5(os.Stdout) }},
		{"fig2", func(b *bench.Bench) error { return b.Figure2(os.Stdout) }},
		{"fig3", func(b *bench.Bench) error { return b.Figure3(os.Stdout) }},
		{"messages", func(b *bench.Bench) error { return b.Messages(os.Stdout) }},
		{"variator", func(b *bench.Bench) error { return b.Variator(os.Stdout) }},
	}

	fmt.Printf("testbed: %d runs/config, CLK budget %v, DistCLK %v/node, %d nodes, size scale 1/%d\n\n",
		opt.Runs, opt.CLKBudget, opt.DistBudget(), opt.Nodes, opt.SizeScale)

	ran := 0
	for _, e := range all {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		start := time.Now()
		if err := e.run(h); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.id, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
