// Command distclk runs the distributed Chained Lin-Kernighan algorithm.
//
// In-process mode (default) simulates the whole cluster with goroutines
// and channels — the configuration used by the paper-reproduction
// experiments:
//
//	distclk -standin fl3795 -nodes 8 -time 60s
//
// TCP mode runs ONE node of a real multi-machine deployment; start
// cmd/hub first, then one distclk per machine:
//
//	hub     -listen :7070 -nodes 8 &
//	distclk -tsp inst.tsp -hub host:7070 -listen :0 -time 600s
//
// Every node writes its local best; collect the minimum across nodes, as
// the paper does.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distclk/internal/cli"
	"distclk/internal/clk"
	"distclk/internal/core"
	"distclk/internal/dist"
	"distclk/internal/topology"
	"distclk/internal/tsp"
)

func main() {
	var (
		tspPath = flag.String("tsp", "", "TSPLIB instance file")
		standin = flag.String("standin", "", "solve the synthetic stand-in for a paper instance name")
		family  = flag.String("family", "", "generate and solve: family name (with -n)")
		n       = flag.Int("n", 1000, "size for -family")
		seed    = flag.Int64("seed", 1, "random seed")
		nodes   = flag.Int("nodes", 8, "cluster size (in-process mode)")
		topoStr = flag.String("topology", "hypercube", "overlay: hypercube|ring|grid|complete")
		kick    = flag.String("kick", "random-walk", "kicking strategy")
		budget  = flag.Duration("time", 10*time.Second, "per-node time limit")
		target  = flag.Int64("target", 0, "stop at this tour length (0 = none)")
		cv      = flag.Int("cv", 64, "perturbation strength divisor c_v (scale down for short runs)")
		cr      = flag.Int("cr", 256, "restart threshold c_r (scale down for short runs)")
		kpc     = flag.Int64("kpc", 0, "CLK kicks per EA iteration (0 = n/10)")
		hubAddr = flag.String("hub", "", "TCP mode: hub address (runs one node)")
		listen  = flag.String("listen", "127.0.0.1:0", "TCP mode: this node's listen address")
		tourOut = flag.String("tour", "", "write the best tour to this file")
	)
	flag.Parse()

	in, err := cli.LoadInstance(*tspPath, *standin, *family, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	kind, err := topology.Parse(*topoStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	strategy, err := clk.ParseKick(*kick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distclk:", err)
		os.Exit(1)
	}
	ea := core.DefaultConfig()
	ea.CV, ea.CR = *cv, *cr
	ea.CLK.Kick = strategy
	ea.KicksPerCall = *kpc

	var best tsp.Tour
	var bestLen int64
	if *hubAddr != "" {
		best, bestLen, err = runTCPNode(in, *hubAddr, *listen, ea, *budget, *target, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
	} else {
		res := dist.RunCluster(in, dist.ClusterConfig{
			Nodes: *nodes,
			Topo:  kind,
			EA:    ea,
			Budget: core.Budget{
				Deadline: time.Now().Add(*budget),
				Target:   *target,
			},
			Seed: *seed,
		})
		best, bestLen = res.BestTour, res.BestLength
		fmt.Printf("cluster: %d nodes, %d broadcasts, best %d in %.2fs wall\n",
			*nodes, res.Broadcasts(), bestLen, res.Elapsed.Seconds())
		for _, s := range res.Stats {
			fmt.Printf("  node %d: best=%d iters=%d sent=%d recv=%d restarts=%d\n",
				s.NodeID, s.BestLength, s.Iterations, s.Broadcasts, s.Received, s.Restarts)
		}
	}
	fmt.Printf("final: len=%d\n", bestLen)

	if *tourOut != "" {
		f, err := os.Create(*tourOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tsp.WriteTourFile(f, in.Name, best); err != nil {
			fmt.Fprintln(os.Stderr, "distclk:", err)
			os.Exit(1)
		}
	}
}

func runTCPNode(in *tsp.Instance, hubAddr, listen string, ea core.Config, budget time.Duration, target, seed int64) (tsp.Tour, int64, error) {
	tn, err := dist.JoinTCP(hubAddr, listen, in.N())
	if err != nil {
		return nil, 0, err
	}
	defer tn.Close()
	fmt.Printf("node %d/%d: listening on %s, %d peers\n", tn.ID, tn.Total, tn.Addr(), tn.PeerCount())
	node := core.NewNode(tn.ID, in, ea, tn, seed+int64(tn.ID)*1_000_000_007)
	node.OnImprove = func(length int64, at time.Duration) {
		fmt.Printf("  %8.2fs  len %d\n", at.Seconds(), length)
	}
	stats := node.Run(core.Budget{
		Deadline: time.Now().Add(budget),
		Target:   target,
	})
	fmt.Printf("node %d: best=%d iters=%d sent=%d recv=%d restarts=%d\n",
		stats.NodeID, stats.BestLength, stats.Iterations, stats.Broadcasts, stats.Received, stats.Restarts)
	tour, l := node.Best()
	return tour, l, nil
}
